package arm2gc

import (
	"context"
	"fmt"
	"sync"
	"testing"
)

// TestSessionTraceReuseLocal pins the WithTraceReuse lifecycle in
// process: the first Run records the classification trace, later Runs
// replay it (no SkipGate pass), Count is served from the cache, and the
// outputs and cost accounting never change.
func TestSessionTraceReuseLocal(t *testing.T) {
	eng := NewEngine()
	prog := compileAdd(t)
	mk := func() *Session {
		s, err := eng.Session(prog, WithMaxCycles(10_000), WithTraceReuse())
		if err != nil {
			t.Fatal(err)
		}
		return s
	}

	first, err := mk().Run(context.Background(), []uint32{40}, []uint32{2})
	if err != nil {
		t.Fatal(err)
	}
	if first.Outputs[0] != 42 || first.Outputs[1] != 40 {
		t.Fatalf("first run outputs %v, want [42 40]", first.Outputs)
	}
	if eng.TraceRecordings() != 1 || eng.TraceReplays() != 0 {
		t.Fatalf("after first run: recordings %d replays %d, want 1 and 0",
			eng.TraceRecordings(), eng.TraceReplays())
	}

	second, err := mk().Run(context.Background(), []uint32{40}, []uint32{2})
	if err != nil {
		t.Fatal(err)
	}
	if eng.TraceReplays() != 1 {
		t.Fatalf("second run did not replay: replays = %d", eng.TraceReplays())
	}
	if second.Outputs[0] != first.Outputs[0] || second.Outputs[1] != first.Outputs[1] ||
		second.Cycles != first.Cycles || second.GarbledTables != first.GarbledTables {
		t.Fatalf("replayed run diverged: %+v vs %+v", second, first)
	}

	// Private inputs may change between replays — the schedule depends
	// only on public data.
	other, err := mk().Run(context.Background(), []uint32{7}, []uint32{35})
	if err != nil {
		t.Fatal(err)
	}
	if other.Outputs[0] != 42 || other.Outputs[1] != 35 {
		t.Fatalf("replay with fresh inputs: outputs %v, want [42 35]", other.Outputs)
	}
	if other.Cycles != first.Cycles || other.GarbledTables != first.GarbledTables {
		t.Fatal("replay with fresh inputs changed the cost accounting")
	}

	// Count is served straight from the cached trace.
	replays := eng.TraceReplays()
	ci, err := mk().Count(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if ci.Cycles != first.Cycles || ci.GarbledTables != first.GarbledTables {
		t.Fatalf("cached Count %d cycles/%d tables, run had %d/%d",
			ci.Cycles, ci.GarbledTables, first.Cycles, first.GarbledTables)
	}
	if eng.TraceReplays() != replays+1 {
		t.Fatal("Count did not hit the trace cache")
	}

	// A different cycle budget is a different schedule — it must not
	// replay the cached trace.
	s2, err := eng.Session(prog, WithMaxCycles(9_999), WithTraceReuse())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Run(context.Background(), []uint32{1}, []uint32{2}); err != nil {
		t.Fatal(err)
	}
	if eng.TraceRecordings() != 2 {
		t.Fatalf("changed budget reused the trace: recordings = %d, want 2", eng.TraceRecordings())
	}

	// Cross-check the replayed outputs against native execution.
	if _, err := eng.Verify(context.Background(), prog, []uint32{40}, []uint32{2},
		WithMaxCycles(10_000), WithTraceReuse()); err != nil {
		t.Fatal(err)
	}
}

// TestSessionTraceReuseConcurrent races N first runs of one program: the
// recording must singleflight (exactly one SkipGate pass records; the
// rest classify without recording, never blocking), and every later run
// replays. Run under -race in CI.
func TestSessionTraceReuseConcurrent(t *testing.T) {
	eng := NewEngine()
	prog := compileAdd(t)
	const n = 8
	run := func(i int) error {
		sess, err := eng.Session(prog, WithMaxCycles(10_000), WithTraceReuse())
		if err != nil {
			return err
		}
		a, b := uint32(100+i), uint32(i)
		info, err := sess.Run(context.Background(), []uint32{a}, []uint32{b})
		if err != nil {
			return err
		}
		if info.Outputs[0] != a+b || info.Outputs[1] != a {
			return fmt.Errorf("run %d: outputs %v, want [%d %d]", i, info.Outputs, a+b, a)
		}
		return nil
	}
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = run(i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := eng.TraceRecordings(); got != 1 {
		t.Fatalf("%d concurrent first runs recorded %d traces, want exactly 1", n, got)
	}
	replays := eng.TraceReplays()
	for i := 0; i < n; i++ {
		if err := run(i); err != nil {
			t.Fatal(err)
		}
	}
	if got := eng.TraceReplays(); got != replays+n {
		t.Fatalf("%d warm runs produced %d replays", n, got-replays)
	}
}

// TestSessionTraceReuseNetworked drives two-party sessions sharing one
// Engine: the first pair records (one side wins the slot), the second
// pair replays on both roles, and outputs stay identical — including
// when the replaying garbler pipelines.
func TestSessionTraceReuseNetworked(t *testing.T) {
	eng := NewEngine()
	prog := compileAdd(t)
	mk := func(opts ...Option) *Session {
		s, err := eng.Session(prog,
			append([]Option{WithMaxCycles(10_000), WithTraceReuse()}, opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}

	ga, ev := runTwoParty(t, mk(), mk(), []uint32{30}, []uint32{12})
	if ga.Outputs[0] != 42 || ev.Outputs[0] != 42 {
		t.Fatalf("cold pair outputs %v / %v", ga.Outputs, ev.Outputs)
	}
	if got := eng.TraceRecordings(); got != 1 {
		t.Fatalf("cold pair recorded %d traces, want 1 (singleflight across roles)", got)
	}

	ga2, ev2 := runTwoParty(t, mk(WithPipeline(4)), mk(), []uint32{30}, []uint32{12})
	if eng.TraceReplays() < 2 {
		t.Fatalf("warm pair replays = %d, want both roles served", eng.TraceReplays())
	}
	if ga2.Outputs[0] != ga.Outputs[0] || ev2.Outputs[0] != ev.Outputs[0] {
		t.Fatal("replayed pair outputs diverged")
	}
	if ga2.GarbledTables != ga.GarbledTables || ga2.TableFrames != ga.TableFrames ||
		ga2.Cycles != ga.Cycles {
		t.Fatalf("replayed pair cost diverged: %+v vs %+v", ga2, ga)
	}
}

// TestSessionTraceReuseStatsSink pins that a replayed run still streams
// per-cycle stats: the sink fires once per cycle, in order, with the
// same stats the recording run reported.
func TestSessionTraceReuseStatsSink(t *testing.T) {
	eng := NewEngine()
	prog := compileAdd(t)
	collect := func() []CycleUpdate {
		var ups []CycleUpdate
		s, err := eng.Session(prog, WithMaxCycles(10_000), WithTraceReuse(),
			WithStatsSink(func(u CycleUpdate) { ups = append(ups, u) }))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Run(context.Background(), []uint32{40}, []uint32{2}); err != nil {
			t.Fatal(err)
		}
		return ups
	}
	rec := collect()
	if eng.TraceRecordings() != 1 {
		t.Fatalf("recordings = %d, want 1", eng.TraceRecordings())
	}
	rep := collect()
	if eng.TraceReplays() != 1 {
		t.Fatalf("replays = %d, want 1", eng.TraceReplays())
	}
	if len(rep) != len(rec) {
		t.Fatalf("replay sink fired %d times, recording %d", len(rep), len(rec))
	}
	for i := range rec {
		if rep[i] != rec[i] {
			t.Fatalf("cycle %d stats differ under replay: %+v vs %+v", i+1, rep[i], rec[i])
		}
	}
}
