// Package analysis is the repository's static-analysis suite: a small,
// dependency-free reimplementation of the golang.org/x/tools/go/analysis
// model (this module builds offline, so it cannot vendor x/tools) plus
// the domain-specific analyzers that enforce the invariants no stock
// linter knows about — byte-identical wire streams, constant-time secret
// handling, context threading through the serving stack, lock discipline
// on the hot paths, and the typed-frame wire contract.
//
// The suite is exposed as the cmd/arm2gc-vet multichecker and runs in CI
// via `make analyze`. Analyzers report through Pass.Reportf; findings can
// be suppressed line-by-line with a justification:
//
//	//lint:ignore <analyzer>[,<analyzer>] <justification>
//
// placed on the offending line or the line above it. A suppression with
// no justification is itself a finding — the annotation contract is that
// every silenced true positive explains why it is safe.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one named check. Run inspects a single type-checked package
// and reports findings through the Pass.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Diagnostic is one finding, positioned and attributed to its analyzer.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// Pass carries one package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Path     string // import path of the package under analysis
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	// Dep returns a previously loaded dependency package (stdlib or
	// module) by import path, loading it on demand, or nil when it cannot
	// be loaded. Analyzers use it to fetch reference types (net.Conn,
	// hash.Hash) for types.Implements checks.
	Dep func(path string) *types.Package

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Suite returns the full analyzer set in stable order.
func Suite() []*Analyzer {
	return []*Analyzer{
		DeterminismAnalyzer,
		CryptoHygieneAnalyzer,
		CtxFlowAnalyzer,
		LockDisciplineAnalyzer,
		FrameProtoAnalyzer,
		ErrCheckAnalyzer,
	}
}

// Run applies every analyzer to every package and returns the surviving
// diagnostics (suppressions applied), sorted by position.
func Run(analyzers []*Analyzer, pkgs []*Package) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Path:     pkg.Path,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				Dep:      pkg.dep,
				diags:    &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
		}
		diags = applySuppressions(pkg, diags)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// suppression is one parsed //lint:ignore comment.
type suppression struct {
	file      string
	line      int // the line the comment sits on
	analyzers []string
	justified bool
	pos       token.Pos
	used      bool
}

var ignoreRe = regexp.MustCompile(`^//\s*lint:ignore\s+(\S+)\s*(.*)$`)

// applySuppressions removes diagnostics covered by a lint:ignore comment
// on the same line or the line above, and reports unjustified or unused
// suppressions as findings of the meta-analyzer "lint".
func applySuppressions(pkg *Package, diags []Diagnostic) []Diagnostic {
	var sups []*suppression
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				sups = append(sups, &suppression{
					file:      pos.Filename,
					line:      pos.Line,
					analyzers: strings.Split(m[1], ","),
					justified: strings.TrimSpace(m[2]) != "",
					pos:       c.Pos(),
				})
			}
		}
	}
	if len(sups) == 0 {
		return diags
	}
	match := func(d Diagnostic) *suppression {
		for _, s := range sups {
			if s.file != d.Pos.Filename || (s.line != d.Pos.Line && s.line != d.Pos.Line-1) {
				continue
			}
			for _, a := range s.analyzers {
				if a == d.Analyzer || a == "*" {
					return s
				}
			}
		}
		return nil
	}
	kept := diags[:0]
	for _, d := range diags {
		if s := match(d); s != nil {
			s.used = true
			if !s.justified {
				kept = append(kept, Diagnostic{
					Pos:      pkg.Fset.Position(s.pos),
					Analyzer: "lint",
					Message:  "lint:ignore without justification: state why the finding is safe to silence",
				})
			}
			continue
		}
		kept = append(kept, d)
	}
	return kept
}

// --- shared helpers used by several analyzers ---

// Deterministic is the package annotation marking wire-stream-critical
// code; the determinism analyzer only fires inside annotated packages.
const Deterministic = "//arm2gc:deterministic"

// isDeterministic reports whether any file of the package carries the
// //arm2gc:deterministic directive. Directive comments are invisible in
// godoc output, so the annotation rides in the package doc comment.
func isDeterministic(files []*ast.File) bool {
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if strings.TrimSpace(c.Text) == Deterministic {
					return true
				}
			}
		}
	}
	return false
}

// pkgFunc matches a call to a package-level function, returning true for
// e.g. pkgFunc(info, call, "time", "Now").
func pkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	obj, ok := info.Uses[sel.Sel]
	if !ok || obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Path() == pkgPath
}

// pkgCall resolves a call of the form pkgname.Func(...) to its package
// path and function name; ok is false for method calls and locals.
func pkgCall(info *types.Info, call *ast.CallExpr) (pkgPath, name string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	id, isIdent := sel.X.(*ast.Ident)
	if !isIdent {
		return "", "", false
	}
	pn, isPkg := info.Uses[id].(*types.PkgName)
	if !isPkg {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

// implementsIface reports whether t (or *t) implements the named
// interface from package path; the interface is resolved through dep.
func implementsIface(dep func(string) *types.Package, t types.Type, pkgPath, name string) bool {
	p := dep(pkgPath)
	if p == nil {
		return false
	}
	obj := p.Scope().Lookup(name)
	if obj == nil {
		return false
	}
	iface, ok := obj.Type().Underlying().(*types.Interface)
	if !ok {
		return false
	}
	if types.Implements(t, iface) {
		return true
	}
	if _, isPtr := t.(*types.Pointer); !isPtr {
		return types.Implements(types.NewPointer(t), iface)
	}
	return false
}

// exprString renders the mutex/conn expressions the analyzers key state
// on ("p.mu", "s.met.mu") without importing go/printer.
func exprString(e ast.Expr) string {
	var sb strings.Builder
	writeExpr(&sb, e)
	return sb.String()
}

func writeExpr(sb *strings.Builder, e ast.Expr) {
	switch x := e.(type) {
	case *ast.Ident:
		sb.WriteString(x.Name)
	case *ast.SelectorExpr:
		writeExpr(sb, x.X)
		sb.WriteString(".")
		sb.WriteString(x.Sel.Name)
	case *ast.ParenExpr:
		writeExpr(sb, x.X)
	case *ast.StarExpr:
		writeExpr(sb, x.X)
	case *ast.IndexExpr:
		writeExpr(sb, x.X)
		sb.WriteString("[…]")
	default:
		sb.WriteString("?")
	}
}
