package analysis

import (
	"go/ast"
	"go/types"
)

// DeterminismAnalyzer enforces the wire-stream contract inside packages
// annotated //arm2gc:deterministic (core, proto, obliv, build, gc): both
// parties must derive byte-identical public circuit state, so nothing on
// those paths may depend on map iteration order, wall clocks, global
// randomness, or goroutine scheduling observed through select-default.
var DeterminismAnalyzer = &Analyzer{
	Name: "determinism",
	Doc: "flag nondeterminism sources (map range, time.Now, global math/rand, " +
		"select-with-default) in //arm2gc:deterministic packages",
	Run: runDeterminism,
}

func runDeterminism(p *Pass) error {
	if !isDeterministic(p.Files) {
		return nil
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.RangeStmt:
				t := p.Info.TypeOf(x.X)
				if t == nil {
					return true
				}
				if _, isMap := t.Underlying().(*types.Map); isMap {
					p.Reportf(x.For, "map iteration order is nondeterministic in a wire-stream-critical package: sort the keys or iterate a pinned slice")
				}
			case *ast.CallExpr:
				path, name, ok := pkgCall(p.Info, x)
				if !ok {
					return true
				}
				switch {
				case path == "time" && (name == "Now" || name == "Since" || name == "Until"):
					p.Reportf(x.Pos(), "time.%s in a wire-stream-critical package: wall-clock values diverge between parties", name)
				case (path == "math/rand" || path == "math/rand/v2") && !isRandConstructor(name):
					p.Reportf(x.Pos(), "%s.%s draws from the global math/rand source: wire-critical randomness must come from an explicit per-session seed", path, name)
				}
			case *ast.SelectStmt:
				// Anchor the report on the select keyword, not the default
				// clause buried inside: that is where a reader (and a
				// lint:ignore) naturally points.
				for _, cl := range x.Body.List {
					if cc, ok := cl.(*ast.CommClause); ok && cc.Comm == nil {
						p.Reportf(x.Pos(), "select with default observes goroutine scheduling: a wire-stream-critical decision must not depend on channel readiness")
					}
				}
			}
			return true
		})
	}
	return nil
}

// isRandConstructor reports math/rand functions that build an explicitly
// seeded local source — deterministic by construction, so allowed.
func isRandConstructor(name string) bool {
	switch name {
	case "New", "NewSource", "NewChaCha8", "NewPCG", "NewZipf":
		return true
	}
	return false
}
