package analysis

import (
	"go/ast"
	"go/token"
	"sort"
)

// LockDisciplineAnalyzer checks mutex usage on the hot paths: a mutex
// must not be held across a channel send or network I/O (both block for
// unbounded time, turning a micro-critical-section into a convoy or a
// deadlock), and every Lock must be paired with an Unlock in the same
// function (defer or explicit).
//
// The walk is a linear over-approximation: statements are visited in
// source order regardless of branch structure, and a mutex locked under
// one branch is considered held until its textually-next unlock. That
// errs toward reporting; genuinely branch-dependent locking that the
// walk misreads takes a justified lint:ignore.
var LockDisciplineAnalyzer = &Analyzer{
	Name: "lockdiscipline",
	Doc:  "flag mutexes held across channel sends or network I/O, and Lock calls with no paired Unlock",
	Run:  runLockDiscipline,
}

func runLockDiscipline(p *Pass) error {
	for _, f := range p.Files {
		// Each function literal is its own frame: a closure's locks are
		// checked against the closure's body, not the enclosing function.
		var visit func(n ast.Node) bool
		visit = func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.FuncDecl:
				if x.Body != nil {
					checkLockFrame(p, x.Body)
				}
				return true // descend: nested FuncLits get their own frame
			case *ast.FuncLit:
				checkLockFrame(p, x.Body)
				return true
			}
			return true
		}
		ast.Inspect(f, visit)
	}
	return nil
}

// lockState tracks, for one function frame, which mutex expressions are
// currently held ("p.mu" rendering → position of the Lock call).
type lockState struct {
	held     map[string]token.Pos
	deferred map[string]bool // defer e.Unlock() seen
}

// checkLockFrame walks one function body in source order.
func checkLockFrame(p *Pass, body *ast.BlockStmt) {
	st := &lockState{held: map[string]token.Pos{}, deferred: map[string]bool{}}
	walkLockStmts(p, body.List, st)
	for e, pos := range st.held {
		if !st.deferred[e] {
			p.Reportf(pos, "%s.Lock() has no paired Unlock in this function: add defer %s.Unlock() or an explicit unlock on every path", e, e)
		}
	}
}

func walkLockStmts(p *Pass, stmts []ast.Stmt, st *lockState) {
	for _, s := range stmts {
		walkLockStmt(p, s, st)
	}
}

func walkLockStmt(p *Pass, s ast.Stmt, st *lockState) {
	switch x := s.(type) {
	case *ast.ExprStmt:
		if call, ok := x.X.(*ast.CallExpr); ok {
			lockCall(p, call, st, false)
		}
	case *ast.DeferStmt:
		lockCall(p, x.Call, st, true)
	case *ast.SendStmt:
		reportHeld(p, x.Pos(), st, "channel send")
	case *ast.GoStmt:
		// The spawned goroutine is its own frame (handled by the FuncLit
		// visitor); evaluating its arguments does not block.
	case *ast.BlockStmt:
		walkLockStmts(p, x.List, st)
	case *ast.IfStmt:
		if x.Init != nil {
			walkLockStmt(p, x.Init, st)
		}
		checkLockExpr(p, x.Cond, st)
		walkLockStmts(p, x.Body.List, st)
		if x.Else != nil {
			walkLockStmt(p, x.Else, st)
		}
	case *ast.ForStmt:
		if x.Init != nil {
			walkLockStmt(p, x.Init, st)
		}
		walkLockStmts(p, x.Body.List, st)
	case *ast.RangeStmt:
		walkLockStmts(p, x.Body.List, st)
	case *ast.SwitchStmt:
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				walkLockStmts(p, cc.Body, st)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				walkLockStmts(p, cc.Body, st)
			}
		}
	case *ast.SelectStmt:
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				if send, ok := cc.Comm.(*ast.SendStmt); ok {
					reportHeld(p, send.Pos(), st, "channel send")
				}
				walkLockStmts(p, cc.Body, st)
			}
		}
	case *ast.AssignStmt, *ast.ReturnStmt, *ast.DeclStmt, *ast.IncDecStmt:
		for _, e := range exprsOf(s) {
			checkLockExpr(p, e, st)
		}
	case *ast.LabeledStmt:
		walkLockStmt(p, x.Stmt, st)
	}
}

// exprsOf returns the expressions of simple statements, so blocking
// calls in assignments and returns are seen while held.
func exprsOf(s ast.Stmt) []ast.Expr {
	switch x := s.(type) {
	case *ast.AssignStmt:
		return x.Rhs
	case *ast.ReturnStmt:
		return x.Results
	}
	return nil
}

// lockCall classifies a call statement: Lock/Unlock bookkeeping on
// sync primitives, otherwise a blocking-I/O check.
func lockCall(p *Pass, call *ast.CallExpr, st *lockState, deferred bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		checkLockExpr(p, call, st)
		return
	}
	key := exprString(sel.X)
	switch sel.Sel.Name {
	case "Lock", "RLock":
		if !deferred {
			st.held[key] = call.Pos()
		}
		return
	case "Unlock", "RUnlock":
		if deferred {
			st.deferred[key] = true
		} else {
			delete(st.held, key)
		}
		return
	}
	if deferred {
		return
	}
	checkLockExpr(p, call, st)
}

// checkLockExpr flags network I/O performed anywhere inside e while a
// mutex is held.
func checkLockExpr(p *Pass, e ast.Expr, st *lockState) {
	if e == nil || len(st.held) == 0 {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // separate frame
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if path, name, ok := pkgCall(p.Info, call); ok && path == "net" && (name == "Dial" || name == "DialTimeout" || name == "Listen") {
			reportHeld(p, call.Pos(), st, "net."+name)
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch sel.Sel.Name {
		case "Write", "Read", "ReadFrom", "WriteTo", "Flush", "Handshake", "HandshakeContext":
		default:
			return true
		}
		t := p.Info.TypeOf(sel.X)
		if t != nil && implementsIface(p.Dep, t, "net", "Conn") {
			reportHeld(p, call.Pos(), st, "network I/O")
		}
		return true
	})
}

func reportHeld(p *Pass, pos token.Pos, st *lockState, what string) {
	keys := make([]string, 0, len(st.held))
	for k := range st.held {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, e := range keys {
		p.Reportf(pos, "%s while holding %s: a blocked %s keeps every other %s user waiting — snapshot under the lock, then release before blocking", what, e, what, e)
	}
}
