package analysis

import (
	"go/ast"
	"strings"
)

// FrameProtoAnalyzer guards the wire contract: every byte written to a
// connection must go through the typed frame layer in internal/proto, so
// the first byte of anything on the wire stays frame-type-disambiguable
// (the gateway relay Peeks one byte to route OT points vs frames — a raw
// write anywhere else could collide with that namespace).
//
// Allowed writers: internal/proto itself, internal/ot (its point
// encoding owns the 0x04/0x41 leading-byte space by design), the gateway
// relay (it forwards already-framed bytes), and methods on types that
// themselves implement net.Conn (conn middleware like counting or
// recording wrappers is transparent by construction).
var FrameProtoAnalyzer = &Analyzer{
	Name: "frameproto",
	Doc:  "flag raw conn.Write outside internal/proto: wire bytes must go through the typed frame layer",
	Run:  runFrameProto,
}

var frameProtoAllowed = map[string]bool{"proto": true, "ot": true, "gateway": true}

func runFrameProto(p *Pass) error {
	for _, seg := range strings.Split(p.Path, "/") {
		if frameProtoAllowed[seg] {
			return nil
		}
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if recvImplementsConn(p, fd) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "Write" {
					return true
				}
				t := p.Info.TypeOf(sel.X)
				if t != nil && implementsIface(p.Dep, t, "net", "Conn") {
					p.Reportf(call.Pos(), "raw %s.Write bypasses the typed frame layer: wire bytes outside internal/proto break Peek disambiguation at the gateway", exprString(sel.X))
				}
				return true
			})
		}
	}
	return nil
}

// recvImplementsConn reports whether fd is a method on a type that is
// itself a net.Conn (wrapping middleware forwards bytes verbatim).
func recvImplementsConn(p *Pass, fd *ast.FuncDecl) bool {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return false
	}
	t := p.Info.TypeOf(fd.Recv.List[0].Type)
	return t != nil && implementsIface(p.Dep, t, "net", "Conn")
}
