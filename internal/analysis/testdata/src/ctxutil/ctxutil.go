// Package ctxutil is the ctxflow negative fixture: its synthetic import
// path (fixture/util) is outside the covered serving set, so a ctx-less
// function may root its own context tree. Rule 1 (no laundering past a
// received context) still applies everywhere, so this fixture only
// exercises ctx-less functions.
package ctxutil

import "context"

func rootHere() error {
	return run(context.Background()) // uncovered package, no ctx param: fine
}

func run(ctx context.Context) error {
	_ = ctx
	return nil
}
