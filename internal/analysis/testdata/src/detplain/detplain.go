// Package detplain is the determinism negative fixture: the same
// nondeterminism sources as the det fixture, but with no
// arm2gc:deterministic annotation — the analyzer must stay silent.
package detplain

import (
	"math/rand"
	"time"
)

func sum(m map[string]int) int {
	s := 0
	for _, v := range m {
		s += v
	}
	return s
}

func stamp() int64 {
	return time.Now().Unix()
}

func roll() int {
	return rand.Intn(6)
}

func drain(ch chan int) int {
	select {
	case v := <-ch:
		return v
	default:
		return 0
	}
}
