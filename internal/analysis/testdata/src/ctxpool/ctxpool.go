// Package ctxpool is the ctxflow positive fixture. Its synthetic import
// path (fixture/pool) puts it in the covered serving set, so both rules
// apply: no laundering past a received context, and no minting
// Background()/TODO() mid-stack.
package ctxpool

import "context"

func launder(ctx context.Context) error {
	return dial(context.Background()) // want "inside a function that already receives a context"
}

func todoLaunder(ctx context.Context) error {
	return dial(context.TODO()) // want "inside a function that already receives a context"
}

func mint() error {
	return dial(context.Background()) // want "mints context.Background mid-stack"
}

func threaded(ctx context.Context) error {
	return dial(ctx) // the right shape: never flagged
}

func guard(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background() // defaulting idiom: allowed
	}
	return dial(ctx)
}

// Deprecated: frozen compat shim kept for old callers; the analyzer
// skips functions documented deprecated.
func legacy() error {
	return dial(context.Background())
}

func dial(ctx context.Context) error {
	_ = ctx
	return nil
}
