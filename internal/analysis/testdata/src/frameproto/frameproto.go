// Package frameproto is the frameproto negative fixture: its synthetic
// import path (fixture/proto) is the frame layer itself, where raw conn
// writes are the whole point.
package frameproto

import "net"

func writeFrame(c net.Conn, p []byte) error {
	_, err := c.Write(p)
	return err
}
