// Package lock is the lockdiscipline fixture: no channel sends or
// network I/O while a mutex is held, and every Lock pairs with an
// Unlock in the same function.
package lock

import (
	"net"
	"sync"
)

type box struct {
	mu sync.Mutex
	c  net.Conn
	ch chan int
}

func (b *box) sendHeld() {
	b.mu.Lock()
	b.ch <- 1 // want "channel send while holding b.mu"
	b.mu.Unlock()
}

func (b *box) writeHeld(p []byte) {
	b.mu.Lock()
	defer b.mu.Unlock()
	_, _ = b.c.Write(p) // want "network I/O while holding b.mu"
}

func (b *box) dialHeld(addr string) {
	b.mu.Lock()
	nc, err := net.Dial("tcp", addr) // want "net.Dial while holding b.mu"
	b.mu.Unlock()
	if err == nil {
		_ = nc.Close()
	}
}

func (b *box) leak() { // leaks b.mu
	b.mu.Lock() // want "no paired Unlock in this function"
}

func (b *box) snapshotThenSend() {
	b.mu.Lock()
	v := len(b.ch)
	b.mu.Unlock()
	b.ch <- v // released before blocking: fine
}

func (b *box) deferred(p []byte) {
	b.mu.Lock()
	defer b.mu.Unlock()
	v := len(p)
	_ = v
}

func (b *box) closureFrame() {
	b.mu.Lock()
	f := func() {
		b.ch <- 1 // its own frame: the closure does not hold b.mu at definition time
	}
	b.mu.Unlock()
	f()
}
