// Package errs is the errcheck fixture: a call statement must not drop
// a returned error on the floor; blank assignment is the explicit
// discard.
package errs

import (
	"bufio"
	"bytes"
	"fmt"
	"hash"
	"os"
	"strings"
)

func dropped(f *os.File, p []byte) {
	f.Close()  // want "error result of f.Close is discarded"
	f.Write(p) // want "error result of f.Write is discarded"
	f.Sync()   // want "error result of f.Sync is discarded"
	fmt.Println("best-effort human output is exempt")
}

func handled(f *os.File, p []byte) error {
	defer f.Close() // deferred: unobservable, exempt
	go f.Close()    // spawned: exempt
	_ = f.Close()   // blank assignment: deliberate discard
	if _, err := f.Write(p); err != nil {
		return err
	}
	return f.Sync()
}

func neverFail(h hash.Hash, p []byte) string {
	var sb strings.Builder
	var buf bytes.Buffer
	sb.WriteString("x") // strings.Builder never fails
	buf.Write(p)        // bytes.Buffer never fails
	h.Write(p)          // hash.Hash documents err == nil
	return sb.String()
}

func buffered(w *bufio.Writer, p []byte) {
	w.Write(p) // bufio defers errors to Flush...
	w.Flush()  // want "error result of w.Flush is discarded"
}

func noError() {
	println("builtin, no error result")
}
