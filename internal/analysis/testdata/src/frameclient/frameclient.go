// Package frameclient is the frameproto positive fixture: its synthetic
// import path (fixture/client) is outside the allowed writer set, so a
// raw Write to anything net.Conn-shaped is flagged.
package frameclient

import (
	"bytes"
	"net"
)

func send(c net.Conn, p []byte) {
	_, _ = c.Write(p) // want "raw c.Write bypasses the typed frame layer"
}

func sendTCP(c *net.TCPConn, p []byte) {
	_, _ = c.Write(p) // want "raw c.Write bypasses the typed frame layer"
}

func buffer(p []byte) {
	var b bytes.Buffer
	b.Write(p) // not a conn: fine
}

// countingConn wraps a conn and is itself a net.Conn: middleware
// forwards bytes verbatim, so its methods may Write raw.
type countingConn struct {
	net.Conn
	n int
}

func (c *countingConn) Write(p []byte) (int, error) {
	c.n += len(p)
	return c.Conn.Write(p) // method on a net.Conn: allowed
}
