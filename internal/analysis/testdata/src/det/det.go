// Package det is a determinism fixture: annotated wire-stream-critical,
// so every nondeterminism source below must be flagged.
//
//arm2gc:deterministic
package det

import (
	"math/rand"
	"time"
)

func sum(m map[string]int) int {
	s := 0
	for _, v := range m { // want "map iteration order is nondeterministic"
		s += v
	}
	return s
}

func sumSorted(keys []string, m map[string]int) int {
	s := 0
	for _, k := range keys { // slice range: fine
		s += m[k]
	}
	return s
}

func stamp() int64 {
	return time.Now().Unix() // want "wall-clock values diverge between parties"
}

func roll() int {
	return rand.Intn(6) // want "draws from the global math/rand source"
}

func seeded() *rand.Rand {
	return rand.New(rand.NewSource(1)) // constructors are determinism-fine (seeding is cryptohygiene's beat)
}

func drain(ch chan int) int {
	select { // want "select with default observes goroutine scheduling"
	case v := <-ch:
		return v
	default:
		return 0
	}
}

func recv(ch chan int) int {
	select { // no default: blocking select is deterministic enough
	case v := <-ch:
		return v
	}
}
