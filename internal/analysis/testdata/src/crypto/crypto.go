// Package crypto is the cryptohygiene fixture: secret-named values must
// be compared in constant time, secret randomness must be crypto-grade,
// and seeds must not be hard-coded.
package crypto

import (
	"bytes"
	"crypto/subtle"
	"math/rand"
)

type apiKey []byte

func eq(token, want string) bool {
	return token == want // want "== on a secret value is not constant-time"
}

func neq(secret, want string) bool {
	return secret != want // want "!= on a secret value is not constant-time"
}

func eqBytes(sig, want []byte) bool {
	hmacTag := sig
	return bytes.Equal(hmacTag, want) // want "bytes.Equal on a secret value is not constant-time"
}

func eqTyped(a, b apiKey) bool {
	return bytes.Equal(a, b) // want "bytes.Equal on a secret value is not constant-time"
}

func constTime(token, want []byte) bool {
	return subtle.ConstantTimeCompare(token, want) == 1 // the demanded idiom: never flagged
}

func present(authToken string) bool {
	return authToken != "" // presence check reveals only emptiness
}

func lenCheck(token string) bool {
	return len(token) == 0 // calls are opaque: len(token) is not a secret compare
}

func publicEq(sessionID, want string) bool {
	return sessionID == want // no secret-named operand
}

func weakNonce() int {
	return rand.Int() // want "not a CSPRNG"
}

func fixedSeed() *rand.Rand {
	return rand.New(rand.NewSource(42)) // want "hard-coded NewSource seed"
}

func derivedSeed(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed)) // constructor with a computed seed: fine
}
