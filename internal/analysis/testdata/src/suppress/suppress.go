// Package suppress exercises the suppression contract: a justified
// lint:ignore silences the named analyzer's finding on its line or the
// line below; an unjustified one trades the finding for a "lint"
// meta-finding at the comment.
//
//arm2gc:deterministic
package suppress

import "time"

func justified() int64 {
	//lint:ignore determinism log-only timestamp, never crosses the wire
	return time.Now().Unix()
}

func unjustified() int64 {
	// want "lint:ignore without justification"
	//lint:ignore determinism
	return time.Now().Unix()
}

func unsuppressed() int64 {
	return time.Now().Unix() // want "wall-clock values diverge between parties"
}
