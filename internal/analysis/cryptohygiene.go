package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// CryptoHygieneAnalyzer enforces constant-time handling of secret
// material: bearer tokens and other secrets must be compared with
// crypto/subtle, secret randomness must come from crypto/rand, and
// PRNG seeds must not be hard-coded.
var CryptoHygieneAnalyzer = &Analyzer{
	Name: "cryptohygiene",
	Doc: "flag ==/bytes.Equal on secret-named values (use subtle.ConstantTimeCompare), " +
		"math/rand where crypto randomness is required, and hard-coded seeds",
	Run: runCryptoHygiene,
}

// secretNameRe matches identifiers that, by this codebase's naming
// conventions, hold secret material. Deliberately narrow: session ids,
// wire labels, and cache keys are public or party-local values whose
// comparison timing leaks nothing to the other party.
var secretNameRe = regexp.MustCompile(`(?i)(token|secret|passw|bearer|apikey|privkey|hmac)`)

// secretish reports whether e plausibly holds secret material: some
// identifier in it matches the secret naming convention, or its type is
// a secret-named string/byte carrier. Three classes of name hits are
// deliberately NOT secrets: package qualifiers (the go/token package),
// constants (classification enums like stSecret — a comparison against
// a compile-time constant enum is control flow, not secret equality),
// and types whose underlying kind can't carry key material (token.Token
// is an int).
func secretish(info *types.Info, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		// Don't descend into calls: the timing of f(secret) is f's
		// concern, and subtle.ConstantTimeCompare(...) == 1 is exactly
		// the idiom this analyzer demands (so is len(token) == 0).
		if _, isCall := n.(*ast.CallExpr); isCall {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		switch info.Uses[id].(type) {
		case *types.PkgName, *types.Const, nil:
			return true
		}
		if secretNameRe.MatchString(id.Name) {
			found = true
		}
		return true
	})
	if found {
		return true
	}
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	named, ok := t.(interface{ Obj() *types.TypeName })
	if !ok || !secretNameRe.MatchString(named.Obj().Name()) {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Kind() == types.String
	case *types.Slice:
		return isByte(u.Elem())
	case *types.Array:
		return isByte(u.Elem())
	}
	return false
}

func isByte(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

func runCryptoHygiene(p *Pass) error {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.BinaryExpr:
				if x.Op != token.EQL && x.Op != token.NEQ {
					return true
				}
				// token != "" is a presence check: it reveals only
				// emptiness, the standard is-auth-configured idiom.
				if isEmptyString(x.X) || isEmptyString(x.Y) {
					return true
				}
				if secretish(p.Info, x.X) || secretish(p.Info, x.Y) {
					p.Reportf(x.OpPos, "%s on a secret value is not constant-time: use subtle.ConstantTimeCompare", x.Op)
				}
			case *ast.CallExpr:
				path, name, ok := pkgCall(p.Info, x)
				if !ok {
					return true
				}
				switch {
				case path == "bytes" && name == "Equal":
					for _, arg := range x.Args {
						if secretish(p.Info, arg) {
							p.Reportf(x.Pos(), "bytes.Equal on a secret value is not constant-time: use subtle.ConstantTimeCompare")
							break
						}
					}
				case path == "math/rand" || path == "math/rand/v2":
					if !isRandConstructor(name) {
						p.Reportf(x.Pos(), "%s.%s is not a CSPRNG: secret material must come from crypto/rand (suppress with justification for non-secret uses such as retry jitter)", path, name)
					}
					if constantSeedArg(x, name) {
						p.Reportf(x.Pos(), "hard-coded %s seed yields a predictable stream: derive the seed per session", name)
					}
				}
			}
			return true
		})
	}
	return nil
}

// isEmptyString reports the literal empty string (interpreted or raw).
func isEmptyString(e ast.Expr) bool {
	lit, ok := e.(*ast.BasicLit)
	return ok && lit.Kind == token.STRING && (lit.Value == `""` || lit.Value == "``")
}

// constantSeedArg reports a seeded-source constructor called with a
// literal seed (NewSource(42), NewChaCha8([32]byte{...})).
func constantSeedArg(call *ast.CallExpr, name string) bool {
	if !strings.HasPrefix(name, "New") || name == "New" || len(call.Args) == 0 {
		return false
	}
	switch call.Args[0].(type) {
	case *ast.BasicLit, *ast.CompositeLit:
		return true
	}
	return false
}
