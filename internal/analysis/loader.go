package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string // import path
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	dep func(path string) *types.Package
}

// Loader parses and type-checks packages with no toolchain dependency
// beyond the standard library: module packages resolve by path mapping
// under the module root, everything else resolves from GOROOT source.
// The module has no external dependencies, which is what makes this
// complete; a third-party import would fail loudly here, not silently.
//
// Stdlib dependencies are checked with IgnoreFuncBodies (declarations
// only): analysis never inspects stdlib bodies, and skipping them makes
// loading the whole module a ~2s operation instead of ~20s.
type Loader struct {
	ModuleRoot string
	ModulePath string

	fset  *token.FileSet
	ctx   build.Context
	types map[string]*types.Package
	pkgs  map[string]*Package // module + fixture packages, with syntax and Info
}

// NewLoader creates a loader rooted at the directory holding go.mod.
func NewLoader(moduleRoot string) (*Loader, error) {
	data, err := os.ReadFile(filepath.Join(moduleRoot, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("analysis: %w", err)
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("analysis: no module directive in %s/go.mod", moduleRoot)
	}
	ctx := build.Default
	// Pure-Go file selection: cgo variants would need the cgo tool; every
	// package this module touches has a non-cgo build.
	ctx.CgoEnabled = false
	return &Loader{
		ModuleRoot: moduleRoot,
		ModulePath: modPath,
		fset:       token.NewFileSet(),
		ctx:        ctx,
		types:      map[string]*types.Package{"unsafe": types.Unsafe},
		pkgs:       map[string]*Package{},
	}, nil
}

// FindModuleRoot walks up from dir to the enclosing go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("analysis: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// LoadModule loads every package of the module (test files excluded —
// tests may legitimately use wall clocks and local randomness), in
// deterministic path order.
func (l *Loader) LoadModule() ([]*Package, error) {
	var paths []string
	err := filepath.WalkDir(l.ModuleRoot, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != l.ModuleRoot && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "dev-certs") {
			return filepath.SkipDir
		}
		gofiles, _ := filepath.Glob(filepath.Join(p, "*.go"))
		nontest := false
		for _, f := range gofiles {
			if !strings.HasSuffix(f, "_test.go") {
				nontest = true
				break
			}
		}
		if !nontest {
			return nil
		}
		rel, err := filepath.Rel(l.ModuleRoot, p)
		if err != nil {
			return err
		}
		ip := l.ModulePath
		if rel != "." {
			ip = l.ModulePath + "/" + filepath.ToSlash(rel)
		}
		paths = append(paths, ip)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	var out []*Package
	for _, ip := range paths {
		pkg, err := l.Load(ip)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// Load type-checks one module package by import path.
func (l *Loader) Load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if _, err := l.importPath(path); err != nil {
		return nil, err
	}
	p, ok := l.pkgs[path]
	if !ok {
		return nil, fmt.Errorf("analysis: %s loaded without syntax (not a module package?)", path)
	}
	return p, nil
}

// LoadDir type-checks a single directory under a synthetic import path —
// the fixture entry point used by the antest harness. Fixture imports
// resolve against the module and the standard library, not each other.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	if p, ok := l.pkgs[importPath]; ok {
		return p, nil
	}
	if _, err := l.check(importPath, dir, true); err != nil {
		return nil, err
	}
	return l.pkgs[importPath], nil
}

// importPath resolves an import during type checking.
func (l *Loader) importPath(path string) (*types.Package, error) {
	if p, ok := l.types[path]; ok {
		if p == nil {
			return nil, fmt.Errorf("analysis: import cycle through %s", path)
		}
		return p, nil
	}
	l.types[path] = nil // cycle guard
	module := path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/")
	var dir string
	if module {
		dir = filepath.Join(l.ModuleRoot, filepath.FromSlash(strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")))
	} else {
		bp, err := l.ctx.Import(path, l.ModuleRoot, build.FindOnly)
		if err != nil {
			return nil, fmt.Errorf("analysis: resolve %s: %w", path, err)
		}
		dir = bp.Dir
	}
	return l.check(path, dir, module)
}

// check parses and type-checks one directory. Module (and fixture)
// packages keep full syntax, type info and bodies; dependency packages
// are checked declarations-only and their type errors are ignored (GOROOT
// code is trusted; body-level errors cannot occur with bodies skipped).
func (l *Loader) check(path, dir string, full bool) (*types.Package, error) {
	bp, err := l.ctx.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("analysis: %s: %w", path, err)
	}
	names := append([]string{}, bp.GoFiles...)
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		files = append(files, f)
	}
	var typeErrs []error
	cfg := &types.Config{
		Importer:         importerFunc(l.importPath),
		IgnoreFuncBodies: !full,
		Error: func(err error) {
			if full {
				typeErrs = append(typeErrs, err)
			}
		},
	}
	var info *types.Info
	if full {
		info = &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
		}
	}
	tpkg, err := cfg.Check(path, l.fset, files, info)
	if full && len(typeErrs) > 0 {
		return nil, fmt.Errorf("analysis: type errors in %s: %v", path, typeErrs[0])
	}
	if err != nil && full {
		return nil, fmt.Errorf("analysis: %s: %w", path, err)
	}
	l.types[path] = tpkg
	if full {
		l.pkgs[path] = &Package{
			Path:  path,
			Dir:   dir,
			Fset:  l.fset,
			Files: files,
			Types: tpkg,
			Info:  info,
			dep: func(p string) *types.Package {
				tp, err := l.importPath(p)
				if err != nil {
					return nil
				}
				return tp
			},
		}
	}
	return tpkg, nil
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
