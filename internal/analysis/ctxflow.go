package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// CtxFlowAnalyzer keeps cancellation flowing through the serving stack.
// Two rules:
//
//  1. Everywhere: a function that already receives a context.Context must
//     not mint context.Background()/TODO() — that launders away the
//     caller's deadline and cancellation. (Deliberate lifetime
//     decoupling takes a justified lint:ignore.)
//  2. In the serving packages (the module root, proto, gateway, pool): a
//     function without a ctx parameter must not call Background()/TODO()
//     either — blocking APIs below the root must accept and thread a
//     context instead of starting a fresh tree mid-stack.
//
// The `if ctx == nil { ctx = context.Background() }` defaulting idiom is
// allowed, as are main packages (the root of every call tree) and
// functions documented "Deprecated:" (frozen compat shims).
var CtxFlowAnalyzer = &Analyzer{
	Name: "ctxflow",
	Doc:  "flag context.Background()/TODO() laundering below the root of the call tree",
	Run:  runCtxFlow,
}

// ctxflowPkgs are the path segments naming the serving packages where
// rule 2 applies.
var ctxflowPkgs = map[string]bool{"proto": true, "gateway": true, "pool": true}

// ctxflowCovered: the module root package (a bare path with no "/" —
// the top of the serving stack) and the serving packages. Only segments
// after the first count, so the module path prefix ("arm2gc/...") never
// puts an unrelated package like internal/bencher in scope.
func ctxflowCovered(path string) bool {
	segs := strings.Split(path, "/")
	if len(segs) == 1 {
		return true
	}
	for _, seg := range segs[1:] {
		if ctxflowPkgs[seg] {
			return true
		}
	}
	return false
}

func runCtxFlow(p *Pass) error {
	if p.Pkg.Name() == "main" {
		return nil
	}
	covered := ctxflowCovered(p.Path)
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fd.Doc != nil && strings.Contains(fd.Doc.Text(), "Deprecated:") {
				continue
			}
			hasCtx := funcHasCtxParam(p.Info, fd)
			allowed := nilGuardCalls(fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				path, name, ok := pkgCall(p.Info, call)
				if !ok || path != "context" || (name != "Background" && name != "TODO") {
					return true
				}
				if allowed[call.Pos()] {
					return true
				}
				switch {
				case hasCtx:
					p.Reportf(call.Pos(), "context.%s inside a function that already receives a context: thread the caller's context (deliberate lifetime decoupling needs a justified lint:ignore)", name)
				case covered:
					p.Reportf(call.Pos(), "%s mints context.%s mid-stack: accept a context.Context parameter and thread it from the caller", fd.Name.Name, name)
				}
				return true
			})
		}
	}
	return nil
}

// funcHasCtxParam reports whether fd takes a context.Context parameter.
func funcHasCtxParam(info *types.Info, fd *ast.FuncDecl) bool {
	for _, field := range fd.Type.Params.List {
		t := info.TypeOf(field.Type)
		if t == nil {
			continue
		}
		if named, ok := t.(interface{ Obj() *types.TypeName }); ok {
			obj := named.Obj()
			if obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context" {
				return true
			}
		}
	}
	return false
}

// nilGuardCalls collects the positions of context.Background()/TODO()
// calls that implement the defaulting idiom
//
//	if ctx == nil { ctx = context.Background() }
//
// which re-roots a nil context rather than discarding a live one.
func nilGuardCalls(body *ast.BlockStmt) map[token.Pos]bool {
	allowed := map[token.Pos]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		cond, ok := ifs.Cond.(*ast.BinaryExpr)
		if !ok || cond.Op != token.EQL {
			return true
		}
		guarded := ""
		if id, ok := cond.X.(*ast.Ident); ok && isNilIdent(cond.Y) {
			guarded = id.Name
		} else if id, ok := cond.Y.(*ast.Ident); ok && isNilIdent(cond.X) {
			guarded = id.Name
		}
		if guarded == "" {
			return true
		}
		for _, st := range ifs.Body.List {
			as, ok := st.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
				continue
			}
			lhs, ok := as.Lhs[0].(*ast.Ident)
			if !ok || lhs.Name != guarded {
				continue
			}
			if call, ok := as.Rhs[0].(*ast.CallExpr); ok {
				allowed[call.Pos()] = true
			}
		}
		return true
	})
	return allowed
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}
