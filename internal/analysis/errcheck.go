package analysis

import (
	"go/ast"
	"go/types"
)

// ErrCheckAnalyzer flags call statements that silently discard an error
// result. A swallowed error on the spill or metrics path can serve a
// truncated recorded stream or report success for a failed write.
//
// Deliberate discards stay available and visible: assign to blank
// (`_ = f()` / `_, _ = f()`) — an explicit statement of intent the
// analyzer treats as checked. Exempt by construction:
//
//   - deferred and go'd calls (deferred Close on a read path is idiomatic;
//     a deferred call's error is unobservable anyway)
//   - fmt printing (best-effort human output)
//   - writers documented never to fail: strings.Builder, bytes.Buffer,
//     hash.Hash
//   - (*bufio.Writer) Write methods — their errors are deferred to Flush,
//     which is NOT exempt
var ErrCheckAnalyzer = &Analyzer{
	Name: "errcheck",
	Doc:  "flag expression statements that drop a returned error on the floor",
	Run:  runErrCheck,
}

func runErrCheck(p *Pass) error {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			es, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := es.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !returnsError(p.Info, call) || errCheckExempt(p, call) {
				return true
			}
			p.Reportf(call.Pos(), "error result of %s is discarded: check it, or assign to _ to discard deliberately", calleeString(call))
			return true
		})
	}
	return nil
}

// returnsError reports whether the call's last result is type error.
func returnsError(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call.Fun]
	if !ok {
		return false
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return false // conversion or builtin
	}
	res := sig.Results()
	if res.Len() == 0 {
		return false
	}
	last := res.At(res.Len() - 1).Type()
	named, ok := last.(interface{ Obj() *types.TypeName })
	return ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil
}

func errCheckExempt(p *Pass, call *ast.CallExpr) bool {
	if path, _, ok := pkgCall(p.Info, call); ok && path == "fmt" {
		return true
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	t := p.Info.TypeOf(sel.X)
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(interface{ Obj() *types.TypeName }); ok {
		obj := named.Obj()
		if obj.Pkg() != nil {
			switch obj.Pkg().Path() + "." + obj.Name() {
			case "strings.Builder", "bytes.Buffer":
				return true
			case "bufio.Writer":
				return sel.Sel.Name != "Flush"
			}
		}
	}
	return implementsIface(p.Dep, p.Info.TypeOf(sel.X), "hash", "Hash")
}

// calleeString renders the called expression for the diagnostic.
func calleeString(call *ast.CallExpr) string {
	return exprString(call.Fun)
}
