package analysis

import (
	"path/filepath"
	"regexp"
	"testing"
)

// The fixture harness mirrors x/tools' analysistest expectation format:
// a fixture source line carrying
//
//	// want "regex" ["regex" ...]
//
// expects one diagnostic per quoted regex. The comment matches
// diagnostics on its own line, or — for whole-line want comments above
// a multi-line construct (and for the "lint" meta-finding, which
// anchors on the suppression comment itself) — on the line below.
var (
	wantRe    = regexp.MustCompile(`//\s*want\s+(".*)$`)
	wantArgRe = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)
)

type wantDiag struct {
	line    int
	re      *regexp.Regexp
	matched bool
}

// fixtureLoader loads one testdata package under a synthetic import
// path (the path is part of the test: ctxflow and frameproto scope
// themselves by path segment).
func fixtureLoader(t *testing.T, fixture, importPath string) *Package {
	t.Helper()
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.LoadDir(filepath.Join("testdata", "src", fixture), importPath)
	if err != nil {
		t.Fatal(err)
	}
	return pkg
}

// runFixture runs one analyzer over one fixture package (through Run,
// so the suppression machinery is in the loop) and compares the
// surviving diagnostics against the fixture's want comments.
func runFixture(t *testing.T, a *Analyzer, fixture, importPath string) {
	t.Helper()
	pkg := fixtureLoader(t, fixture, importPath)
	diags, err := Run([]*Analyzer{a}, []*Package{pkg})
	if err != nil {
		t.Fatal(err)
	}

	var wants []*wantDiag
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				line := pkg.Fset.Position(c.Pos()).Line
				args := wantArgRe.FindAllStringSubmatch(m[1], -1)
				if len(args) == 0 {
					t.Fatalf("%s:%d: want comment with no quoted pattern", fixture, line)
				}
				for _, qm := range args {
					re, err := regexp.Compile(qm[1])
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", fixture, line, qm[1], err)
					}
					wants = append(wants, &wantDiag{line: line, re: re})
				}
			}
		}
	}

	match := func(d Diagnostic, offset int) bool {
		for _, w := range wants {
			if w.matched || w.line+offset != d.Pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.matched = true
				return true
			}
		}
		return false
	}
	var leftover []Diagnostic
	for _, d := range diags {
		if !match(d, 0) {
			leftover = append(leftover, d)
		}
	}
	for _, d := range leftover {
		if !match(d, 1) {
			t.Errorf("unexpected diagnostic at %s:%d: %s [%s]",
				filepath.Base(d.Pos.Filename), d.Pos.Line, d.Message, d.Analyzer)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s: no diagnostic at line %d matching %q", fixture, w.line, w.re)
		}
	}
}

func TestDeterminismAnalyzer(t *testing.T) {
	runFixture(t, DeterminismAnalyzer, "det", "fixture/det")
}

func TestDeterminismUnannotated(t *testing.T) {
	runFixture(t, DeterminismAnalyzer, "detplain", "fixture/detplain")
}

func TestCryptoHygieneAnalyzer(t *testing.T) {
	runFixture(t, CryptoHygieneAnalyzer, "crypto", "fixture/crypto")
}

func TestCtxFlowAnalyzerCovered(t *testing.T) {
	runFixture(t, CtxFlowAnalyzer, "ctxpool", "fixture/pool")
}

func TestCtxFlowAnalyzerUncovered(t *testing.T) {
	runFixture(t, CtxFlowAnalyzer, "ctxutil", "fixture/util")
}

func TestLockDisciplineAnalyzer(t *testing.T) {
	runFixture(t, LockDisciplineAnalyzer, "lock", "fixture/lock")
}

func TestFrameProtoAnalyzer(t *testing.T) {
	runFixture(t, FrameProtoAnalyzer, "frameclient", "fixture/client")
}

func TestFrameProtoAllowedPackage(t *testing.T) {
	runFixture(t, FrameProtoAnalyzer, "frameproto", "fixture/proto")
}

func TestErrCheckAnalyzer(t *testing.T) {
	runFixture(t, ErrCheckAnalyzer, "errs", "fixture/errs")
}

func TestSuppressionContract(t *testing.T) {
	runFixture(t, DeterminismAnalyzer, "suppress", "fixture/suppress")
}

// TestModuleClean pins the tentpole's end state: the whole module runs
// the full suite with zero findings. A regression here is a real
// finding — fix it or justify a lint:ignore, exactly as in CI.
func TestModuleClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.LoadModule()
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run(Suite(), pkgs)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
