package ot

import (
	"math/rand"
	"net"
	"testing"

	"arm2gc/internal/gc"
)

func TestBaseOT(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()

	const n = 32
	choices := make([]bool, n)
	rng := rand.New(rand.NewSource(3))
	for i := range choices {
		choices[i] = rng.Intn(2) == 1
	}

	type sres struct {
		keys [][2]key
		err  error
	}
	ch := make(chan sres, 1)
	go func() {
		keys, err := baseSenderKeys(a, n)
		ch <- sres{keys, err}
	}()
	rkeys, rerr := baseReceiverKeys(b, choices)
	s := <-ch
	if s.err != nil || rerr != nil {
		t.Fatalf("sender err %v, receiver err %v", s.err, rerr)
	}
	for i, c := range choices {
		want := s.keys[i][0]
		other := s.keys[i][1]
		if c {
			want, other = other, want
		}
		if rkeys[i] != want {
			t.Fatalf("OT %d: receiver key != chosen sender key", i)
		}
		if rkeys[i] == other {
			t.Fatalf("OT %d: receiver key equals unchosen key", i)
		}
	}
}

func runExtension(t *testing.T, m int, seed int64) {
	t.Helper()
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()

	rng := rand.New(rand.NewSource(seed))
	pairs := make([][2]gc.Label, m)
	for i := range pairs {
		pairs[i] = [2]gc.Label{
			{Lo: rng.Uint64(), Hi: rng.Uint64()},
			{Lo: rng.Uint64(), Hi: rng.Uint64()},
		}
	}
	choices := make([]bool, m)
	for i := range choices {
		choices[i] = rng.Intn(2) == 1
	}

	errc := make(chan error, 1)
	go func() { errc <- SendLabels(a, pairs) }()
	got, err := ReceiveLabels(b, choices)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	for i, c := range choices {
		want := pairs[i][0]
		other := pairs[i][1]
		if c {
			want, other = other, want
		}
		if got[i] != want {
			t.Fatalf("m=%d: OT %d: wrong label received", m, i)
		}
		if got[i] == other {
			t.Fatalf("m=%d: OT %d: received the unchosen label", m, i)
		}
	}
}

func TestExtensionSizes(t *testing.T) {
	for _, m := range []int{1, 7, 8, 64, 127, 500, 1024} {
		runExtension(t, m, int64(m))
	}
}

func TestTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := 40
	cols := make([][]byte, kappa)
	for j := range cols {
		cols[j] = make([]byte, (m+7)/8)
		rng.Read(cols[j])
	}
	rows := transpose(cols, m)
	for i := 0; i < m; i++ {
		for j := 0; j < kappa; j++ {
			cb := cols[j][i/8]&(1<<uint(i%8)) != 0
			rb := rows[i][j/8]&(1<<uint(j%8)) != 0
			if cb != rb {
				t.Fatalf("transpose mismatch at row %d col %d", i, j)
			}
		}
	}
}

func TestEmpty(t *testing.T) {
	if err := SendLabels(nil, nil); err != nil {
		t.Fatal(err)
	}
	got, err := ReceiveLabels(nil, nil)
	if err != nil || got != nil {
		t.Fatalf("got %v, %v", got, err)
	}
}

func TestBaseOTRejectsBadPoint(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	errc := make(chan error, 1)
	go func() {
		_, err := baseSenderKeys(a, 1)
		errc <- err
	}()
	// Read the sender's point, then reply with garbage instead of a point.
	if _, err := readMsg(b); err != nil {
		t.Fatal(err)
	}
	if err := writeMsg(b, []byte{0x04, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := <-errc; err == nil {
		t.Error("sender accepted a malformed receiver point")
	}
}

func TestExtensionRejectsShortVectors(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	errc := make(chan error, 1)
	go func() {
		errc <- SendLabels(a, make([][2]gc.Label, 64))
	}()
	// Play a broken receiver: run the base OTs honestly, then send a
	// truncated correction vector.
	seedPairs, err := baseSenderKeys(b, kappa)
	if err != nil {
		t.Fatal(err)
	}
	_ = seedPairs
	if err := writeMsg(b, []byte{1}); err != nil { // 1 byte, want 8
		t.Fatal(err)
	}
	if err := <-errc; err == nil {
		t.Error("sender accepted a short correction vector")
	}
}
