package ot

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"

	"arm2gc/internal/gc"
)

// kappa is the computational security parameter: the number of base OTs
// and the width of the IKNP matrix.
const kappa = 128

// prg expands a 16-byte seed into n pseudorandom bytes (AES-CTR).
func prg(seed key, n int) []byte {
	block, err := aes.NewCipher(seed[:])
	if err != nil {
		panic("ot: aes: " + err.Error())
	}
	out := make([]byte, n)
	var iv [16]byte
	cipher.NewCTR(block, iv[:]).XORKeyStream(out, out)
	return out
}

// rowHash derives the final OT pad for row i from its 128-bit row value.
func rowHash(i int, row []byte) gc.Label {
	h := sha256.New()
	var idx [8]byte
	binary.LittleEndian.PutUint64(idx[:], uint64(i))
	h.Write(idx[:])
	h.Write(row)
	sum := h.Sum(nil)
	return gc.LabelFromBytes(sum[:16])
}

func xorBytes(dst, a, b []byte) {
	for i := range dst {
		dst[i] = a[i] ^ b[i]
	}
}

// transpose converts kappa column bit-vectors of m bits into m rows of
// kappa bits (16 bytes per row).
func transpose(cols [][]byte, m int) [][]byte {
	rows := make([][]byte, m)
	flat := make([]byte, m*kappa/8)
	for i := range rows {
		rows[i] = flat[i*kappa/8 : (i+1)*kappa/8]
	}
	for j, col := range cols {
		byteJ, bitJ := j/8, uint(j%8)
		for i := 0; i < m; i++ {
			if col[i/8]&(1<<uint(i%8)) != 0 {
				rows[i][byteJ] |= 1 << bitJ
			}
		}
	}
	return rows
}

// SendLabels obliviously transfers pairs[i][choice_i] for every i: the
// caller is the sender holding the label pairs (the garbler's Bob-input
// wire labels). It learns nothing about the receiver's choices.
func SendLabels(conn io.ReadWriter, pairs [][2]gc.Label) error {
	m := len(pairs)
	if m == 0 {
		return nil
	}
	mBytes := (m + 7) / 8

	// IKNP role reversal: the extension sender is a base-OT receiver with
	// random choice vector s.
	sBits := make([]byte, kappa/8)
	if _, err := rand.Read(sBits); err != nil {
		return err
	}
	sChoices := make([]bool, kappa)
	for j := range sChoices {
		sChoices[j] = sBits[j/8]&(1<<uint(j%8)) != 0
	}
	seeds, err := baseReceiverKeys(conn, sChoices)
	if err != nil {
		return err
	}

	// Receive the correction vectors u_j and form q_j = PRG(k_j^{s_j}) ⊕ s_j·u_j.
	qCols := make([][]byte, kappa)
	for j := 0; j < kappa; j++ {
		u, err := readMsg(conn)
		if err != nil {
			return err
		}
		if len(u) != mBytes {
			return fmt.Errorf("ot: correction vector %d: %d bytes, want %d", j, len(u), mBytes)
		}
		q := prg(seeds[j], mBytes)
		if sChoices[j] {
			xorBytes(q, q, u)
		}
		qCols[j] = q
	}
	qRows := transpose(qCols, m)

	// Encrypt both labels of every pair: y_b = x_b ⊕ H(i, q_i ⊕ b·s).
	out := make([]byte, 0, m*32)
	srow := make([]byte, kappa/8)
	for i, p := range pairs {
		pad0 := rowHash(i, qRows[i])
		xorBytes(srow, qRows[i], sBits)
		pad1 := rowHash(i, srow)
		c0 := p[0].Xor(pad0).Bytes()
		c1 := p[1].Xor(pad1).Bytes()
		out = append(out, c0[:]...)
		out = append(out, c1[:]...)
	}
	return writeMsg(conn, out)
}

// ReceiveLabels obliviously receives one label per choice bit; the sender
// learns nothing about choices and the receiver learns nothing about the
// unchosen labels.
func ReceiveLabels(conn io.ReadWriter, choices []bool) ([]gc.Label, error) {
	m := len(choices)
	if m == 0 {
		return nil, nil
	}
	mBytes := (m + 7) / 8
	r := make([]byte, mBytes)
	for i, c := range choices {
		if c {
			r[i/8] |= 1 << uint(i%8)
		}
	}

	// Base OTs with fresh seed pairs, playing the base sender.
	seedPairs, err := baseSenderKeys(conn, kappa)
	if err != nil {
		return nil, err
	}

	tCols := make([][]byte, kappa)
	u := make([]byte, mBytes)
	for j := 0; j < kappa; j++ {
		t0 := prg(seedPairs[j][0], mBytes)
		t1 := prg(seedPairs[j][1], mBytes)
		tCols[j] = t0
		// u_j = t0 ⊕ t1 ⊕ r
		xorBytes(u, t0, t1)
		xorBytes(u, u, r)
		if err := writeMsg(conn, u); err != nil {
			return nil, err
		}
	}
	tRows := transpose(tCols, m)

	enc, err := readMsg(conn)
	if err != nil {
		return nil, err
	}
	if len(enc) != m*32 {
		return nil, fmt.Errorf("ot: ciphertexts: %d bytes, want %d", len(enc), m*32)
	}
	out := make([]gc.Label, m)
	for i := range out {
		pad := rowHash(i, tRows[i])
		off := i * 32
		if choices[i] {
			off += 16
		}
		out[i] = gc.LabelFromBytes(enc[off : off+16]).Xor(pad)
	}
	return out, nil
}
