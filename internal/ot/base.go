// Package ot implements 1-out-of-2 oblivious transfer for the
// honest-but-curious model: a Diffie-Hellman base OT on NIST P-256 (in the
// style of Naor-Pinkas/Chou-Orlandi simplified for passive adversaries)
// and the IKNP OT extension, which turns 128 base OTs into any number of
// label transfers using only symmetric cryptography.
//
// All protocols run over an io.ReadWriter with internal length-prefixed
// framing; the two parties call the matching Send/Receive functions on the
// two ends of a connection (net.Pipe in tests, TCP in the protocol layer).
package ot

import (
	"crypto/elliptic"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"math/big"
)

type key = [16]byte

// curve is the base-OT group.
var curve = elliptic.P256()

func writeMsg(w io.Writer, b []byte) error {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(b)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(b)
	return err
}

func readMsg(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > 1<<28 {
		return nil, fmt.Errorf("ot: message of %d bytes refused", n)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return nil, err
	}
	return b, nil
}

func randScalar() (*big.Int, error) {
	n := curve.Params().N
	for {
		k, err := rand.Int(rand.Reader, n)
		if err != nil {
			return nil, err
		}
		if k.Sign() > 0 {
			return k, nil
		}
	}
}

// negY returns the y-coordinate of -P for a point with y-coordinate y.
func negY(y *big.Int) *big.Int {
	p := curve.Params().P
	ny := new(big.Int).Sub(p, y)
	return ny.Mod(ny, p)
}

func hashPoint(x, y *big.Int) key {
	h := sha256.New()
	h.Write(x.Bytes())
	h.Write([]byte{0x1f})
	h.Write(y.Bytes())
	var k key
	copy(k[:], h.Sum(nil))
	return k
}

// baseSenderKeys runs n base OTs as the sender, returning for each OT the
// pair of derived keys (k0, k1); the receiver learns exactly one of each
// pair, unknown to the sender.
func baseSenderKeys(conn io.ReadWriter, n int) ([][2]key, error) {
	a, err := randScalar()
	if err != nil {
		return nil, err
	}
	ax, ay := curve.ScalarBaseMult(a.Bytes())
	if err := writeMsg(conn, elliptic.Marshal(curve, ax, ay)); err != nil {
		return nil, err
	}
	nayInv := negY(ay) // -A, reused for every B_i - A

	keys := make([][2]key, n)
	for i := 0; i < n; i++ {
		msg, err := readMsg(conn)
		if err != nil {
			return nil, err
		}
		bx, by := elliptic.Unmarshal(curve, msg)
		if bx == nil {
			return nil, fmt.Errorf("ot: base OT %d: bad point", i)
		}
		// k0 = H(a·B), k1 = H(a·(B−A))
		x0, y0 := curve.ScalarMult(bx, by, a.Bytes())
		dx, dy := curve.Add(bx, by, ax, nayInv)
		x1, y1 := curve.ScalarMult(dx, dy, a.Bytes())
		keys[i] = [2]key{hashPoint(x0, y0), hashPoint(x1, y1)}
	}
	return keys, nil
}

// baseReceiverKeys runs n base OTs as the receiver with the given choice
// bits, returning the chosen key of each pair.
func baseReceiverKeys(conn io.ReadWriter, choices []bool) ([]key, error) {
	msg, err := readMsg(conn)
	if err != nil {
		return nil, err
	}
	ax, ay := elliptic.Unmarshal(curve, msg)
	if ax == nil {
		return nil, fmt.Errorf("ot: bad sender point")
	}
	keys := make([]key, len(choices))
	for i, c := range choices {
		b, err := randScalar()
		if err != nil {
			return nil, err
		}
		bx, by := curve.ScalarBaseMult(b.Bytes())
		if c {
			// B = bG + A
			bx, by = curve.Add(bx, by, ax, ay)
		}
		if err := writeMsg(conn, elliptic.Marshal(curve, bx, by)); err != nil {
			return nil, err
		}
		kx, ky := curve.ScalarMult(ax, ay, b.Bytes())
		keys[i] = hashPoint(kx, ky)
	}
	return keys, nil
}
