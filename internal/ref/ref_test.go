package ref

import (
	"encoding/hex"
	"math/rand"
	"testing"
)

func TestSHA3KnownVectors(t *testing.T) {
	// FIPS 202 / well-known test vectors.
	cases := []struct{ msg, want string }{
		{"", "a7ffc6f8bf1ed76651c14756a061d662f580ff4de43b49fa82d80a4b80f8434a"},
		{"abc", "3a985da74fe225b2045c172d6bd390bd855f086e3e9d525b46bfe24511431532"},
	}
	for _, c := range cases {
		got := SHA3_256([]byte(c.msg))
		if hex.EncodeToString(got[:]) != c.want {
			t.Errorf("SHA3-256(%q) = %x, want %s", c.msg, got, c.want)
		}
	}
}

func TestSHA3MultiBlock(t *testing.T) {
	// > rate bytes forces a second permutation; just check determinism and
	// sensitivity.
	msg := make([]byte, 300)
	for i := range msg {
		msg[i] = byte(i)
	}
	h1 := SHA3_256(msg)
	msg[299] ^= 1
	h2 := SHA3_256(msg)
	if h1 == h2 {
		t.Error("hash not sensitive to last byte")
	}
}

func TestDijkstraSmall(t *testing.T) {
	// 4 nodes: 0->1 (1), 1->2 (2), 0->2 (10), 2->3 (1).
	n := 4
	adj := make([]uint32, n*n)
	adj[0*n+1] = 1
	adj[1*n+2] = 2
	adj[0*n+2] = 10
	adj[2*n+3] = 1
	d := Dijkstra(adj, n)
	want := []uint32{0, 1, 3, 4}
	for i := range want {
		if d[i] != want[i] {
			t.Errorf("dist[%d] = %d, want %d", i, d[i], want[i])
		}
	}
}

func TestBubbleSort(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	v := make([]uint32, 50)
	for i := range v {
		v[i] = rng.Uint32()
	}
	BubbleSort(v)
	for i := 1; i < len(v); i++ {
		if v[i-1] > v[i] {
			t.Fatal("not sorted")
		}
	}
}

func TestCordicRotate(t *testing.T) {
	// Rotating (K, 0) by angle z gives (cos z, sin z) (gain cancels when
	// starting from K = Π cos(...)).
	const n = 30
	tab := CordicAtanTable(n)
	k := int32(CordicGainQ30(n))
	// z = 0.5 rad in Q2.30.
	z := int32(0.5 * float64(1<<30))
	x, y := CordicRotate(k, 0, z, n, tab)
	// cos(0.5) ≈ 0.87758, sin(0.5) ≈ 0.47943.
	cx := float64(x) / float64(1<<30)
	cy := float64(y) / float64(1<<30)
	if cx < 0.877 || cx > 0.878 || cy < 0.479 || cy > 0.480 {
		t.Errorf("CORDIC rotate: got (%f, %f), want (cos .5, sin .5)", cx, cy)
	}
}

func TestCordicDiv(t *testing.T) {
	// 0.75 / 1.5 = 0.5 in Q2.30.
	q30 := func(f float64) int32 { return int32(f * float64(int64(1)<<30)) }
	got := CordicDiv(q30(0.75), q30(1.5), 30)
	if d := got - q30(0.5); d > 4 || d < -4 {
		t.Errorf("0.75/1.5 = %d, want ≈%d", got, q30(0.5))
	}
	got = CordicDiv(q30(-0.6), q30(1.2), 30)
	if d := got - q30(-0.5); d > 4 || d < -4 {
		t.Errorf("-0.6/1.2 = %d, want ≈%d", got, q30(-0.5))
	}
}
