// Package ref holds plain-Go reference implementations of the benchmark
// algorithms — the oracles the circuit library and the garbled-processor
// programs are verified against. AES needs no reference here (crypto/aes
// is the oracle); Keccak/SHA3 is not in the standard library, so it is
// implemented from the specification and checked against known vectors.
package ref

import (
	"math"
	"math/bits"
)

// keccak round constants.
var keccakRC = [24]uint64{
	0x0000000000000001, 0x0000000000008082, 0x800000000000808a, 0x8000000080008000,
	0x000000000000808b, 0x0000000080000001, 0x8000000080008081, 0x8000000000008009,
	0x000000000000008a, 0x0000000000000088, 0x0000000080008009, 0x000000008000000a,
	0x000000008000808b, 0x800000000000008b, 0x8000000000008089, 0x8000000000008003,
	0x8000000000008002, 0x8000000000000080, 0x000000000000800a, 0x800000008000000a,
	0x8000000080008081, 0x8000000000008080, 0x0000000080000001, 0x8000000080008008,
}

// rho rotation offsets, indexed [x][y].
var keccakRot = [5][5]int{
	{0, 36, 3, 41, 18},
	{1, 44, 10, 45, 2},
	{62, 6, 43, 15, 61},
	{28, 55, 25, 21, 56},
	{27, 20, 39, 8, 14},
}

// KeccakF1600 applies the Keccak-f[1600] permutation to a 25-lane state
// (lane [x][y] at index x+5y, little-endian lanes).
func KeccakF1600(a *[25]uint64) {
	for round := 0; round < 24; round++ {
		// θ
		var c [5]uint64
		for x := 0; x < 5; x++ {
			c[x] = a[x] ^ a[x+5] ^ a[x+10] ^ a[x+15] ^ a[x+20]
		}
		var d [5]uint64
		for x := 0; x < 5; x++ {
			d[x] = c[(x+4)%5] ^ bits.RotateLeft64(c[(x+1)%5], 1)
		}
		for x := 0; x < 5; x++ {
			for y := 0; y < 5; y++ {
				a[x+5*y] ^= d[x]
			}
		}
		// ρ and π
		var b [25]uint64
		for x := 0; x < 5; x++ {
			for y := 0; y < 5; y++ {
				b[y+5*((2*x+3*y)%5)] = bits.RotateLeft64(a[x+5*y], keccakRot[x][y])
			}
		}
		// χ
		for x := 0; x < 5; x++ {
			for y := 0; y < 5; y++ {
				a[x+5*y] = b[x+5*y] ^ (^b[(x+1)%5+5*y] & b[(x+2)%5+5*y])
			}
		}
		// ι
		a[0] ^= keccakRC[round]
	}
}

// SHA3-256 parameters: rate 1088 bits = 136 bytes, capacity 512.
const sha3Rate = 136

// SHA3_256 hashes a message with SHA3-256 (FIPS 202 padding 0x06).
func SHA3_256(msg []byte) [32]byte {
	var st [25]uint64
	// Absorb.
	block := make([]byte, sha3Rate)
	for len(msg) >= sha3Rate {
		copy(block, msg[:sha3Rate])
		absorb(&st, block)
		KeccakF1600(&st)
		msg = msg[sha3Rate:]
	}
	for i := range block {
		block[i] = 0
	}
	copy(block, msg)
	block[len(msg)] = 0x06
	block[sha3Rate-1] |= 0x80
	absorb(&st, block)
	KeccakF1600(&st)
	// Squeeze 32 bytes.
	var out [32]byte
	for i := 0; i < 4; i++ {
		for j := 0; j < 8; j++ {
			out[8*i+j] = byte(st[i] >> (8 * j))
		}
	}
	return out
}

func absorb(st *[25]uint64, block []byte) {
	for i := 0; i < sha3Rate/8; i++ {
		var lane uint64
		for j := 0; j < 8; j++ {
			lane |= uint64(block[8*i+j]) << (8 * j)
		}
		st[i] ^= lane
	}
}

// Popcount32 is the tree-based population count used by the Hamming
// benchmarks.
func Popcount32(x uint32) uint32 { return uint32(bits.OnesCount32(x)) }

// HammingWords is the paper's §5.3 Hamming workload: the distance between
// two vectors of 32-bit integers (bitwise XOR popcount across all words).
func HammingWords(a, b []uint32) uint32 {
	var acc uint32
	for i := range a {
		acc += Popcount32(a[i] ^ b[i])
	}
	return acc
}

// BubbleSort sorts in place (reference for the Table 5 workload).
func BubbleSort(v []uint32) {
	for i := 0; i < len(v); i++ {
		for j := 0; j+1 < len(v)-i; j++ {
			if v[j] > v[j+1] {
				v[j], v[j+1] = v[j+1], v[j]
			}
		}
	}
}

// Dijkstra computes shortest distances from node 0 on a dense adjacency
// matrix (n×n, 0 meaning no edge; inf = ^uint32(0)).
func Dijkstra(adj []uint32, n int) []uint32 {
	const inf = ^uint32(0)
	dist := make([]uint32, n)
	visited := make([]bool, n)
	for i := range dist {
		dist[i] = inf
	}
	dist[0] = 0
	for range dist {
		u, best := -1, inf
		for i, d := range dist {
			if !visited[i] && d < best {
				u, best = i, d
			}
		}
		if u < 0 {
			break
		}
		visited[u] = true
		for v := 0; v < n; v++ {
			w := adj[u*n+v]
			if w != 0 && dist[u] != inf && dist[u]+w < dist[v] {
				dist[v] = dist[u] + w
			}
		}
	}
	return dist
}

// CORDIC constants: atan(2^-i) in Q2.30 fixed point.
func CordicAtanTable(n int) []uint32 {
	// Computed from the closed form; hard floats are avoided in library
	// code elsewhere, but the reference table generator may use them.
	table := make([]uint32, n)
	for i := range table {
		table[i] = atanQ30(i)
	}
	return table
}

// atanQ30 returns atan(2^-i) in Q2.30.
func atanQ30(i int) uint32 {
	// atan values precomputed with 64-bit integer math via the arctangent
	// series would be overkill; the standard library float64 atan is exact
	// enough for Q2.30 (30 fractional bits, float64 has 52).
	return uint32(atanF(i)*float64(1<<30) + 0.5)
}

func atanF(i int) float64 {
	x := 1.0
	for k := 0; k < i; k++ {
		x /= 2
	}
	return math.Atan(x)
}

// CordicGainQ30 is the CORDIC gain K = Π cos(atan(2^-i)) in Q2.30 after n
// iterations.
func CordicGainQ30(n int) uint32 {
	k := 1.0
	for i := 0; i < n; i++ {
		x := 1.0
		for j := 0; j < i; j++ {
			x /= 2
		}
		k *= 1 / math.Sqrt(1+x*x)
	}
	return uint32(k*float64(1<<30) + 0.5)
}

// CordicRotate runs n iterations of circular-rotation CORDIC on Q2.30
// fixed-point values, rotating (x, y) by angle z (radians in Q2.30).
// The result still carries the CORDIC gain 1/K.
func CordicRotate(x, y, z int32, n int, atanTab []uint32) (int32, int32) {
	for i := 0; i < n; i++ {
		xs := x >> uint(i)
		ys := y >> uint(i)
		t := int32(atanTab[i])
		if z >= 0 {
			x, y, z = x-ys, y+xs, z-t
		} else {
			x, y, z = x+ys, y-xs, z+t
		}
	}
	return x, y
}

// KeccakRC exposes round constant i (callers may index mod 24).
func KeccakRC(i int) uint64 { return keccakRC[i%24] }

// KeccakRot exposes the rho rotation offset for lane (x, y).
func KeccakRot(x, y int) int { return keccakRot[x][y] }

// CordicDiv computes y/x in Q2.30 fixed point with n linear-vectoring
// CORDIC iterations (the division mode of Universal CORDIC the paper's
// §5.7 compares against [12]): drive y to 0 while accumulating the
// quotient in z. Inputs must satisfy |y| < 2|x| for convergence.
func CordicDiv(y, x int32, n int) int32 {
	var z int32
	for i := 0; i < n; i++ {
		if (y >= 0) == (x >= 0) {
			y -= x >> uint(i)
			z += int32(uint32(1) << uint(30-i)) // 2^-i in Q2.30
		} else {
			y += x >> uint(i)
			z -= int32(uint32(1) << uint(30-i))
		}
	}
	return z
}
