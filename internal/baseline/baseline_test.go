package baseline

import (
	"context"
	"testing"

	"arm2gc/internal/core"
	"arm2gc/internal/cpu"
	"arm2gc/internal/isa"
)

func TestModuleSizesCoverProcessor(t *testing.T) {
	l := isa.Layout{IMemWords: 64, AliceWords: 4, BobWords: 4, OutWords: 4, ScratchWords: 8}
	c, err := cpu.Build(l)
	if err != nil {
		t.Fatal(err)
	}
	sizes := ModuleSizes(c)
	total := 0
	for _, n := range sizes {
		total += n
	}
	if got := c.Circuit.Stats().NonXOR; total != got {
		t.Errorf("module sizes sum to %d, circuit has %d non-XOR gates", total, got)
	}
	for _, mod := range []string{"regfile.read", "alu.adder", "alu.mul", "dmem.read", "writeback"} {
		if sizes[mod] == 0 {
			t.Errorf("module %q has no gates; scope tagging broken?", mod)
		}
	}
}

func TestInstructionLevelCostDominatesSkipGate(t *testing.T) {
	l := isa.Layout{IMemWords: 64, AliceWords: 2, BobWords: 2, OutWords: 2, ScratchWords: 8}
	src := `
gc_main:
	ldr r3, [r0]
	ldr r4, [r1]
	add r5, r3, r4
	mul r6, r3, r4
	str r5, [r2]
	str r6, [r2, #4]
	mov pc, lr
`
	p, err := isa.Link("t", src, l)
	if err != nil {
		t.Fatal(err)
	}
	c, err := cpu.Build(l)
	if err != nil {
		t.Fatal(err)
	}
	cost, cycles, err := Cost(c, p, []uint32{9}, []uint32{11}, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if cycles <= 0 || cost <= 0 {
		t.Fatalf("degenerate baseline: cost %d over %d cycles", cost, cycles)
	}
	pub, err := c.PublicBits(p)
	if err != nil {
		t.Fatal(err)
	}
	st, err := core.Count(context.Background(), c.Circuit, pub, core.CountOpts{Cycles: cycles, StopOutput: "halted"})
	if err != nil {
		t.Fatal(err)
	}
	// The instruction-level model charges whole register-file ports and
	// functional units; gate-level SkipGate only pays for the add and the
	// multiply. The paper's gap is 156x on its workload; any factor ≥10
	// confirms the coarse-grain penalty here.
	if cost < 10*int64(st.Total.Garbled) {
		t.Errorf("instruction-level cost %d should dwarf SkipGate's %d", cost, st.Total.Garbled)
	}
}
