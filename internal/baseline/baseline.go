// Package baseline models the cost of the earlier garbled processors the
// paper compares against (GarbledCPU [42] and garbled MIPS [45]):
// instruction-level pruning. Those systems analyse the binary ahead of
// time and garble, each cycle, a circuit containing every module the
// cycle's possible instructions might touch — whole register-file ports,
// a whole ALU functional unit, whole memory access paths — instead of
// skipping at gate granularity.
//
// The model charges, per executed instruction, the non-XOR gate count of
// the processor modules that instruction activates (module sizes come
// from the real processor netlist via builder scopes). It is deliberately
// generous to the baseline: fetch, decode and next-PC logic are assumed
// free (public program counter), and only one ALU functional unit is
// charged per cycle.
package baseline

import (
	"fmt"

	"arm2gc/internal/cpu"
	"arm2gc/internal/emu"
	"arm2gc/internal/isa"
)

// ModuleSizes maps builder scope names to their non-XOR gate counts.
func ModuleSizes(c *cpu.CPU) map[string]int {
	sizes := make(map[string]int)
	cir := c.Circuit
	for i, g := range cir.Gates {
		switch g.Op.String() {
		case "AND", "OR", "NAND", "NOR", "MUX":
			scope := ""
			if cir.GateScope != nil {
				scope = cir.ScopeNames[cir.GateScope[i]]
			}
			sizes[scope]++
		}
	}
	return sizes
}

// Cost runs the program on the emulator and returns the
// instruction-level-pruning garbling cost (non-XOR tables) alongside the
// cycle count.
func Cost(c *cpu.CPU, p *isa.Program, alice, bob []uint32, maxCycles int) (int64, int, error) {
	sizes := ModuleSizes(c)
	mod := func(names ...string) int64 {
		var t int64
		for _, n := range names {
			t += int64(sizes[n])
		}
		return t
	}

	// Per-class module activations.
	base := mod("regfile.read", "cond", "writeback", "flags", "alu.select")
	costDP := base + mod("shifter", "alu.adder", "alu.logic")
	costMul := base + mod("alu.mul")
	costLoad := base + mod("dmem.agu", "dmem.read")
	costStore := base + mod("dmem.agu", "dmem.write")
	costBranch := mod("regfile.read", "cond")

	m, err := emu.New(p, alice, bob)
	if err != nil {
		return 0, 0, err
	}
	var total int64
	m.Trace = func(cycle int, pc uint32, ins isa.Instr, executed bool) {
		// Instruction-level pruning cannot skip a predicated instruction:
		// whether it executed is secret whenever the flags are, so the
		// full module cost is charged either way.
		switch ins.Kind {
		case isa.KindDP:
			total += costDP
		case isa.KindMul:
			total += costMul
		case isa.KindMem:
			if ins.Load {
				total += costLoad
			} else {
				total += costStore
			}
		case isa.KindBranch:
			total += costBranch
		case isa.KindSWI:
			// halt: free
		}
	}
	cycles, err := m.Run(maxCycles)
	if err != nil {
		return 0, 0, fmt.Errorf("baseline: %w", err)
	}
	return total, cycles, nil
}
