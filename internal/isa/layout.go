package isa

import "fmt"

// Layout fixes the memory geometry of a garbled-processor instance: the
// instruction memory size and the four data regions the paper describes
// (Alice's inputs, Bob's inputs, the output array, and scratch/stack).
// Data regions live in one word-addressed RAM; the regions determine only
// flip-flop initialization and which words are circuit outputs.
type Layout struct {
	IMemWords    int // instruction memory size (words)
	AliceWords   int // gc_main's a[] length
	BobWords     int // gc_main's b[] length
	OutWords     int // gc_main's c[] length
	ScratchWords int // heap + stack (stack grows down from the top)
}

// DataWords is the total data-RAM size in words.
func (l Layout) DataWords() int {
	return l.AliceWords + l.BobWords + l.OutWords + l.ScratchWords
}

// Byte base addresses of the data regions (the pointers passed to
// gc_main) and the initial stack pointer.
func (l Layout) AliceBase() uint32 { return 0 }

// BobBase returns b[]'s byte address.
func (l Layout) BobBase() uint32 { return uint32(l.AliceWords) * 4 }

// OutBase returns c[]'s byte address.
func (l Layout) OutBase() uint32 { return uint32(l.AliceWords+l.BobWords) * 4 }

// ScratchBase returns the heap base byte address.
func (l Layout) ScratchBase() uint32 { return uint32(l.AliceWords+l.BobWords+l.OutWords) * 4 }

// StackTop returns the initial stack pointer (one past the last RAM byte).
func (l Layout) StackTop() uint32 { return uint32(l.DataWords()) * 4 }

// Validate checks the geometry is usable.
func (l Layout) Validate() error {
	if l.IMemWords <= 0 || l.DataWords() <= 0 {
		return fmt.Errorf("isa: empty layout %+v", l)
	}
	if l.OutWords <= 0 {
		return fmt.Errorf("isa: layout has no output region")
	}
	if l.ScratchWords < 4 {
		return fmt.Errorf("isa: layout needs at least 4 scratch words for a stack")
	}
	return nil
}

// Program is a loadable binary: the instruction image (the public input p)
// plus the layout it was linked against.
type Program struct {
	Words  []uint32
	Layout Layout
	Name   string
}

// Disassemble renders the program for debugging.
func (p *Program) Disassemble() string {
	out := ""
	for pc, w := range p.Words {
		i, err := Decode(w)
		if err != nil {
			out += fmt.Sprintf("%4d: %08x  .word\n", pc*4, w)
			continue
		}
		out += fmt.Sprintf("%4d: %08x  %s\n", pc*4, w, i)
	}
	return out
}
