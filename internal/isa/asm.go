package isa

import (
	"fmt"
	"strconv"
	"strings"
)

// Assemble translates assembly text into instruction words. Supported
// syntax (classic ARM style):
//
//	label:                       @ labels (own line or before an op)
//	add r0, r1, r2               @ register operand
//	addeq r0, r1, #10            @ condition suffixes, rotated immediates
//	subs r0, r1, r2, lsl #3      @ S suffix, shifted operands
//	mov r0, r1, lsr r2           @ register-amount shifts
//	mul r0, r1, r2               @ rd = rm * rs
//	mla r0, r1, r2, r3           @ rd = rm * rs + rn
//	ldr r0, [r1, #4]             @ word load, pre-indexed immediate offset
//	strne r0, [sp, #-8]          @ negative offsets
//	b loop / blt end / bl fn     @ branches to labels
//	swi 0                        @ halt
//	ldr r0, =0x12345678          @ pseudo: expands to mov+orr sequence
//	nop                          @ pseudo: mov r0, r0
//	.word 0x123                  @ literal data word
//	@ comment, ; comment, // comment
//
// Register aliases: sp=r13, lr=r14, pc=r15, a=r4-style aliases are not
// provided. Immediates accept decimal, hex (0x) and negated forms where
// the instruction allows (mov with un-encodable immediate tries mvn).
func Assemble(src string) ([]uint32, error) {
	a := &assembler{labels: map[string]int{}}
	if err := a.scan(src); err != nil {
		return nil, err
	}
	return a.emit()
}

type item struct {
	line int
	text string // instruction text (label stripped)
}

type assembler struct {
	items  []item
	labels map[string]int // label -> word index
	sizes  []int          // words each item expands to
}

func (a *assembler) scan(src string) error {
	word := 0
	for ln, raw := range strings.Split(src, "\n") {
		line := raw
		for _, cm := range []string{"@", ";", "//"} {
			if i := strings.Index(line, cm); i >= 0 {
				line = line[:i]
			}
		}
		line = strings.TrimSpace(line)
		for {
			i := strings.Index(line, ":")
			if i < 0 {
				break
			}
			label := strings.TrimSpace(line[:i])
			if !validLabel(label) {
				return fmt.Errorf("asm line %d: bad label %q", ln+1, label)
			}
			if _, dup := a.labels[label]; dup {
				return fmt.Errorf("asm line %d: duplicate label %q", ln+1, label)
			}
			a.labels[label] = word
			line = strings.TrimSpace(line[i+1:])
		}
		if line == "" {
			continue
		}
		n, err := sizeOf(line)
		if err != nil {
			return fmt.Errorf("asm line %d: %v", ln+1, err)
		}
		a.items = append(a.items, item{line: ln + 1, text: line})
		a.sizes = append(a.sizes, n)
		word += n
	}
	return nil
}

func validLabel(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == '.':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// sizeOf returns how many words an instruction expands to (pseudo
// "ldr rX, =imm" may take up to 4).
func sizeOf(text string) (int, error) {
	op, rest := splitOp(text)
	if op == "ldr" || strings.HasPrefix(op, "ldr") {
		if strings.Contains(rest, "=") {
			args := splitArgs(rest)
			if len(args) != 2 || !strings.HasPrefix(args[1], "=") {
				return 0, fmt.Errorf("bad ldr= syntax %q", text)
			}
			v, err := parseImmVal(args[1][1:])
			if err != nil {
				return 0, err
			}
			return len(movOrrPlan(uint32(v))), nil
		}
	}
	return 1, nil
}

// movOrrPlan splits a 32-bit constant into a mov + orr byte plan.
func movOrrPlan(v uint32) []uint32 {
	if _, _, ok := EncodeImm(v); ok {
		return []uint32{v}
	}
	if _, _, ok := EncodeImm(^v); ok {
		return []uint32{v} // single mvn
	}
	var parts []uint32
	for sh := uint(0); sh < 32; sh += 8 {
		if b := v & (0xff << sh); b != 0 {
			parts = append(parts, b)
		}
	}
	if len(parts) == 0 {
		parts = []uint32{0}
	}
	return parts
}

func (a *assembler) emit() ([]uint32, error) {
	var words []uint32
	for idx, it := range a.items {
		ws, err := a.emitOne(it.text, len(words))
		if err != nil {
			return nil, fmt.Errorf("asm line %d (%q): %v", it.line, it.text, err)
		}
		if len(ws) != a.sizes[idx] {
			return nil, fmt.Errorf("asm line %d: size drift (%d vs %d)", it.line, len(ws), a.sizes[idx])
		}
		words = append(words, ws...)
	}
	return words, nil
}

func splitOp(text string) (op, rest string) {
	i := strings.IndexAny(text, " \t")
	if i < 0 {
		return strings.ToLower(text), ""
	}
	return strings.ToLower(text[:i]), strings.TrimSpace(text[i+1:])
}

// splitArgs splits on commas not inside brackets.
func splitArgs(s string) []string {
	var args []string
	depth := 0
	last := 0
	for i, r := range s {
		switch r {
		case '[':
			depth++
		case ']':
			depth--
		case ',':
			if depth == 0 {
				args = append(args, strings.TrimSpace(s[last:i]))
				last = i + 1
			}
		}
	}
	tail := strings.TrimSpace(s[last:])
	if tail != "" {
		args = append(args, tail)
	}
	return args
}

var regAliases = map[string]uint8{"sp": 13, "lr": 14, "pc": 15}

func parseReg(s string) (uint8, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	if r, ok := regAliases[s]; ok {
		return r, nil
	}
	if strings.HasPrefix(s, "r") {
		n, err := strconv.Atoi(s[1:])
		if err == nil && n >= 0 && n <= 15 {
			return uint8(n), nil
		}
	}
	return 0, fmt.Errorf("bad register %q", s)
}

func parseImmVal(s string) (int64, error) {
	s = strings.TrimSpace(s)
	neg := false
	if strings.HasPrefix(s, "-") {
		neg = true
		s = s[1:]
	}
	v, err := strconv.ParseUint(strings.TrimPrefix(s, "+"), 0, 32)
	if err != nil {
		return 0, fmt.Errorf("bad immediate %q", s)
	}
	if neg {
		return -int64(v), nil
	}
	return int64(v), nil
}

// opSpec resolves a mnemonic with optional condition and S suffixes.
type opSpec struct {
	base string
	cond Cond
	s    bool
}

var baseOps = []string{
	// Longest-match order resolves the bl/b + condition ambiguity.
	"mla", "mul", "ldr", "str", "swi", "nop", "bl", "b",
	"and", "eor", "sub", "rsb", "add", "adc", "sbc", "rsc",
	"tst", "teq", "cmp", "cmn", "orr", "mov", "bic", "mvn",
}

func parseMnemonic(op string) (opSpec, error) {
	for _, base := range baseOps {
		if !strings.HasPrefix(op, base) {
			continue
		}
		suffix := op[len(base):]
		spec := opSpec{base: base, cond: AL}
		if strings.HasSuffix(suffix, "s") && base != "b" && base != "bl" && base != "ldr" && base != "str" && base != "swi" {
			// Careful: "s" may be part of a condition (cs, vs, ls).
			if suffix == "s" {
				spec.s = true
				suffix = ""
			} else if len(suffix) == 3 {
				spec.s = true
				suffix = suffix[:2]
			}
		}
		if suffix != "" {
			c, ok := condByName(suffix)
			if !ok {
				continue
			}
			spec.cond = c
		}
		return spec, nil
	}
	return opSpec{}, fmt.Errorf("unknown mnemonic %q", op)
}

func condByName(s string) (Cond, bool) {
	for i, n := range condNames {
		if n == s && Cond(i) != condInvalid && n != "" {
			return Cond(i), true
		}
	}
	if s == "al" {
		return AL, true
	}
	if s == "hs" {
		return CS, true
	}
	if s == "lo" {
		return CC, true
	}
	return 0, false
}

func (a *assembler) emitOne(text string, pcWord int) ([]uint32, error) {
	op, rest := splitOp(text)

	if op == ".word" {
		v, err := parseImmVal(rest)
		if err != nil {
			return nil, err
		}
		return []uint32{uint32(v)}, nil
	}

	spec, err := parseMnemonic(op)
	if err != nil {
		return nil, err
	}
	args := splitArgs(rest)

	switch spec.base {
	case "nop":
		w, err := Encode(Instr{Kind: KindDP, Cond: spec.cond, Op: OpMOV, Rd: 0, Rm: 0})
		return []uint32{w}, err
	case "swi":
		var imm uint32
		if len(args) == 1 {
			v, err := parseImmVal(strings.TrimPrefix(args[0], "#"))
			if err != nil {
				return nil, err
			}
			imm = uint32(v)
		}
		w, err := Encode(Instr{Kind: KindSWI, Cond: spec.cond, SwiImm: imm & 0xffffff})
		return []uint32{w}, err
	case "b", "bl":
		if len(args) != 1 {
			return nil, fmt.Errorf("branch needs a target")
		}
		target, ok := a.labels[args[0]]
		if !ok {
			return nil, fmt.Errorf("undefined label %q", args[0])
		}
		// offset counts from PC+8 (two words ahead), in words.
		off := int32(target - (pcWord + 2))
		w, err := Encode(Instr{Kind: KindBranch, Cond: spec.cond, Link: spec.base == "bl", Imm24: off})
		return []uint32{w}, err
	case "mul":
		if len(args) != 3 {
			return nil, fmt.Errorf("mul needs rd, rm, rs")
		}
		rd, e1 := parseReg(args[0])
		rm, e2 := parseReg(args[1])
		rs, e3 := parseReg(args[2])
		if err := firstErr(e1, e2, e3); err != nil {
			return nil, err
		}
		w, err := Encode(Instr{Kind: KindMul, Cond: spec.cond, S: spec.s, Rd: rd, Rm: rm, Rs: rs})
		return []uint32{w}, err
	case "mla":
		if len(args) != 4 {
			return nil, fmt.Errorf("mla needs rd, rm, rs, rn")
		}
		rd, e1 := parseReg(args[0])
		rm, e2 := parseReg(args[1])
		rs, e3 := parseReg(args[2])
		rn, e4 := parseReg(args[3])
		if err := firstErr(e1, e2, e3, e4); err != nil {
			return nil, err
		}
		w, err := Encode(Instr{Kind: KindMul, Cond: spec.cond, S: spec.s, Acc: true, Rd: rd, Rm: rm, Rs: rs, Rn: rn})
		return []uint32{w}, err
	case "ldr", "str":
		return a.emitMem(spec, args)
	default:
		return a.emitDP(spec, args)
	}
}

func firstErr(errs ...error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

func (a *assembler) emitMem(spec opSpec, args []string) ([]uint32, error) {
	if len(args) != 2 {
		return nil, fmt.Errorf("%s needs rd, address", spec.base)
	}
	rd, err := parseReg(args[0])
	if err != nil {
		return nil, err
	}
	addr := args[1]
	if strings.HasPrefix(addr, "=") {
		if spec.base != "ldr" {
			return nil, fmt.Errorf("= immediates only with ldr")
		}
		v, err := parseImmVal(addr[1:])
		if err != nil {
			return nil, err
		}
		return emitConst(spec.cond, rd, uint32(v))
	}
	if !strings.HasPrefix(addr, "[") || !strings.HasSuffix(addr, "]") {
		return nil, fmt.Errorf("bad address %q", addr)
	}
	inner := splitArgs(addr[1 : len(addr)-1])
	rn, err := parseReg(inner[0])
	if err != nil {
		return nil, err
	}
	ins := Instr{Kind: KindMem, Cond: spec.cond, Load: spec.base == "ldr", Up: true, Rn: rn, Rd: rd}
	if len(inner) == 2 {
		off, err := parseImmVal(strings.TrimPrefix(inner[1], "#"))
		if err != nil {
			return nil, err
		}
		if off < 0 {
			ins.Up = false
			off = -off
		}
		if off > 0xfff {
			return nil, fmt.Errorf("offset %d out of range", off)
		}
		ins.Off12 = uint16(off)
	} else if len(inner) != 1 {
		return nil, fmt.Errorf("bad address %q", addr)
	}
	w, err := Encode(ins)
	return []uint32{w}, err
}

// emitConst loads an arbitrary 32-bit constant with mov/mvn + orr chain.
func emitConst(cond Cond, rd uint8, v uint32) ([]uint32, error) {
	if imm8, rot, ok := EncodeImm(v); ok {
		w, err := Encode(Instr{Kind: KindDP, Cond: cond, Op: OpMOV, Rd: rd, Imm: true, Imm8: imm8, Rot: rot})
		return []uint32{w}, err
	}
	if imm8, rot, ok := EncodeImm(^v); ok {
		w, err := Encode(Instr{Kind: KindDP, Cond: cond, Op: OpMVN, Rd: rd, Imm: true, Imm8: imm8, Rot: rot})
		return []uint32{w}, err
	}
	plan := movOrrPlan(v)
	var words []uint32
	for i, part := range plan {
		op := OpORR
		rn := rd
		if i == 0 {
			op = OpMOV
			rn = 0
		}
		imm8, rot, ok := EncodeImm(part)
		if !ok {
			return nil, fmt.Errorf("internal: byte part %#x not encodable", part)
		}
		w, err := Encode(Instr{Kind: KindDP, Cond: cond, Op: op, Rd: rd, Rn: rn, Imm: true, Imm8: imm8, Rot: rot})
		if err != nil {
			return nil, err
		}
		words = append(words, w)
	}
	return words, nil
}

func (a *assembler) emitDP(spec opSpec, args []string) ([]uint32, error) {
	var op DPOp
	found := false
	for i, n := range dpNames {
		if n == spec.base {
			op = DPOp(i)
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("unknown op %q", spec.base)
	}

	ins := Instr{Kind: KindDP, Cond: spec.cond, Op: op, S: spec.s}
	var op2 []string
	switch op {
	case OpMOV, OpMVN:
		if len(args) < 2 {
			return nil, fmt.Errorf("%s needs rd, operand", spec.base)
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return nil, err
		}
		ins.Rd = rd
		op2 = args[1:]
	case OpTST, OpTEQ, OpCMP, OpCMN:
		if len(args) < 2 {
			return nil, fmt.Errorf("%s needs rn, operand", spec.base)
		}
		rn, err := parseReg(args[0])
		if err != nil {
			return nil, err
		}
		ins.Rn = rn
		ins.S = true
		op2 = args[1:]
	default:
		if len(args) < 3 {
			return nil, fmt.Errorf("%s needs rd, rn, operand", spec.base)
		}
		rd, e1 := parseReg(args[0])
		rn, e2 := parseReg(args[1])
		if err := firstErr(e1, e2); err != nil {
			return nil, err
		}
		ins.Rd = rd
		ins.Rn = rn
		op2 = args[2:]
	}

	if err := parseOp2(&ins, op2); err != nil {
		return nil, err
	}
	w, err := Encode(ins)
	return []uint32{w}, err
}

func parseOp2(ins *Instr, parts []string) error {
	if len(parts) == 0 {
		return fmt.Errorf("missing operand 2")
	}
	first := parts[0]
	if strings.HasPrefix(first, "#") {
		if len(parts) != 1 {
			return fmt.Errorf("immediate cannot be shifted")
		}
		v, err := parseImmVal(first[1:])
		if err != nil {
			return err
		}
		u := uint32(v)
		imm8, rot, ok := EncodeImm(u)
		if !ok {
			// Common compiler convenience: flip mov/mvn, add/sub, cmp/cmn,
			// and/bic when the complement or negation encodes.
			if alt, altOK := flipImm(ins.Op, u); altOK.ok {
				ins.Op = alt
				imm8, rot = altOK.imm8, altOK.rot
			} else {
				return fmt.Errorf("immediate %#x not encodable", u)
			}
		}
		ins.Imm = true
		ins.Imm8 = imm8
		ins.Rot = rot
		return nil
	}
	rm, err := parseReg(first)
	if err != nil {
		return err
	}
	ins.Rm = rm
	if len(parts) == 1 {
		return nil
	}
	if len(parts) != 2 {
		return fmt.Errorf("bad operand 2")
	}
	shParts := strings.Fields(parts[1])
	if len(shParts) != 2 {
		return fmt.Errorf("bad shift %q", parts[1])
	}
	var sh Shift
	switch strings.ToLower(shParts[0]) {
	case "lsl":
		sh = LSL
	case "lsr":
		sh = LSR
	case "asr":
		sh = ASR
	case "ror":
		sh = ROR
	default:
		return fmt.Errorf("bad shift type %q", shParts[0])
	}
	ins.Sh = sh
	if strings.HasPrefix(shParts[1], "#") {
		v, err := parseImmVal(shParts[1][1:])
		if err != nil {
			return err
		}
		if v < 0 || v > 31 {
			return fmt.Errorf("shift amount %d out of range", v)
		}
		ins.ShImm = uint8(v)
		return nil
	}
	rs, err := parseReg(shParts[1])
	if err != nil {
		return err
	}
	ins.ShReg = true
	ins.Rs = rs
	return nil
}

type immFlip struct {
	ok        bool
	imm8, rot uint8
}

// flipImm rewrites an instruction to its complement form when that makes
// an immediate encodable (mov↔mvn, add↔sub, cmp↔cmn, and↔bic).
func flipImm(op DPOp, v uint32) (DPOp, immFlip) {
	try := func(alt DPOp, u uint32) (DPOp, immFlip) {
		if imm8, rot, ok := EncodeImm(u); ok {
			return alt, immFlip{true, imm8, rot}
		}
		return op, immFlip{}
	}
	switch op {
	case OpMOV:
		return try(OpMVN, ^v)
	case OpMVN:
		return try(OpMOV, ^v)
	case OpADD:
		return try(OpSUB, -v)
	case OpSUB:
		return try(OpADD, -v)
	case OpCMP:
		return try(OpCMN, -v)
	case OpCMN:
		return try(OpCMP, -v)
	case OpAND:
		return try(OpBIC, ^v)
	case OpBIC:
		return try(OpAND, ^v)
	}
	return op, immFlip{}
}
