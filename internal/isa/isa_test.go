package isa

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEncodeImmRoundTrip(t *testing.T) {
	f := func(imm8 uint8, rot4 uint8) bool {
		rot := rot4 % 16
		i := Instr{Imm8: imm8, Rot: rot}
		v := i.Imm32()
		e8, er, ok := EncodeImm(v)
		if !ok {
			return false
		}
		j := Instr{Imm8: e8, Rot: er}
		return j.Imm32() == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEncodeImmRejects(t *testing.T) {
	for _, v := range []uint32{0x101, 0xff1, 0x12345678, 0xffffff01} {
		if _, _, ok := EncodeImm(v); ok {
			t.Errorf("EncodeImm(%#x) unexpectedly succeeded", v)
		}
	}
}

// TestDecodeEncodeRoundTrip: decoding any encodable instruction and
// re-encoding gives the same word.
func TestDecodeEncodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	n := 0
	for trial := 0; trial < 20000; trial++ {
		w := rng.Uint32()
		ins, err := Decode(w)
		if err != nil {
			continue
		}
		w2, err := Encode(ins)
		if err != nil {
			t.Fatalf("re-encode of %#08x (%s): %v", w, ins, err)
		}
		// Encode normalizes don't-care bits; decode again must agree.
		ins2, err := Decode(w2)
		if err != nil {
			t.Fatalf("decode of re-encoded %#08x: %v", w2, err)
		}
		if ins != ins2 {
			t.Fatalf("instr drift: %#08x -> %+v -> %#08x -> %+v", w, ins, w2, ins2)
		}
		n++
	}
	if n < 5000 {
		t.Errorf("only %d random words decoded; decoder too strict?", n)
	}
}

func TestAssembleBasics(t *testing.T) {
	words, err := Assemble(`
start:
	mov r0, #0          @ comment
	add r1, r0, #10
	subs r2, r1, r0, lsl #2
	movne r3, #0xff00
	mul r4, r1, r2
	mla r5, r1, r2, r4
	ldr r6, [sp, #-4]
	str r6, [r0]
	cmp r1, #10
	blt start
	bl fn
	swi 0
fn:
	mov pc, lr
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(words) != 13 {
		t.Fatalf("assembled %d words, want 13", len(words))
	}
	for i, w := range words {
		if _, err := Decode(w); err != nil {
			t.Errorf("word %d (%#08x): %v", i, w, err)
		}
	}
}

func TestAssembleDisassembleStable(t *testing.T) {
	// Disassembling and re-assembling instruction text round-trips.
	src := `
	add r0, r1, r2
	andeqs r3, r4, r5, asr #7
	mvn r6, #0
	orr r7, r8, r9, ror r10
	cmp r11, r12
	ldr r1, [r2, #4]
	strcc r3, [r4, #-16]
	swi 5
`
	words, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range words {
		ins, err := Decode(w)
		if err != nil {
			t.Fatal(err)
		}
		again, err := Assemble(ins.String())
		if err != nil {
			t.Fatalf("reassemble %q: %v", ins.String(), err)
		}
		if len(again) != 1 || again[0] != w {
			t.Fatalf("%q: %#08x -> %#08x", ins.String(), w, again[0])
		}
	}
}

func TestAssembleImmediateFlips(t *testing.T) {
	// mov r0, #-1 becomes mvn r0, #0; add r0, r1, #-4 becomes sub.
	words, err := Assemble("mov r0, #-1\nadd r0, r1, #-4\ncmp r0, #-2\nand r0, r1, #-16")
	if err != nil {
		t.Fatal(err)
	}
	ops := []DPOp{OpMVN, OpSUB, OpCMN, OpBIC}
	for i, w := range words {
		ins, _ := Decode(w)
		if ins.Op != ops[i] {
			t.Errorf("word %d: op %v, want %v", i, ins.Op, ops[i])
		}
	}
}

func TestLdrConstPseudo(t *testing.T) {
	words, err := Assemble("ldr r0, =0x12345678\nldr r1, =0xff\nldr r2, =0xffffffff")
	if err != nil {
		t.Fatal(err)
	}
	// 0x12345678 needs 4 words; 0xff needs 1 (mov); 0xffffffff needs 1 (mvn).
	if len(words) != 6 {
		t.Fatalf("got %d words, want 6", len(words))
	}
}

func TestBranchTargets(t *testing.T) {
	words, err := Assemble(`
	b skip
	swi 0
skip:
	b skip
`)
	if err != nil {
		t.Fatal(err)
	}
	i0, _ := Decode(words[0])
	if i0.Imm24 != 0 { // target = pc+8 = word 2: offset 0
		t.Errorf("forward branch offset %d, want 0", i0.Imm24)
	}
	i2, _ := Decode(words[2])
	if i2.Imm24 != -2 { // self loop: target = pc+8-8
		t.Errorf("self branch offset %d, want -2", i2.Imm24)
	}
}

func TestAssembleErrors(t *testing.T) {
	for _, src := range []string{
		"bogus r0, r1",
		"add r0, r1",         // missing operand
		"mov r0, #0x101",     // unencodable immediate (and no flip)
		"ldr r0, [r1, r2]",   // register offset unsupported
		"b nowhere",          // undefined label
		"mov r16, #0",        // bad register
		"x: x: mov r0, r0",   // duplicate label (same line)
		"ldrb r0, [r1]",      // byte access
		"add r0, r1, #5, #6", // garbage
	} {
		if _, err := Assemble(src); err == nil {
			t.Errorf("Assemble(%q) succeeded, want error", src)
		}
	}
}

func TestLink(t *testing.T) {
	l := Layout{IMemWords: 64, AliceWords: 4, BobWords: 4, OutWords: 4, ScratchWords: 16}
	p, err := Link("t", `
gc_main:
	ldr r3, [r0]
	ldr r4, [r1]
	add r3, r3, r4
	str r3, [r2]
	mov pc, lr
`, l)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Words) == 0 || p.Layout != l {
		t.Fatal("bad program")
	}
	if p.Disassemble() == "" {
		t.Fatal("empty disassembly")
	}
}
