// Package isa defines the ARM-style instruction set of the garbled
// processor: 32-bit instructions with a 4-bit condition field, the 16
// classic data-processing operations with shifted/rotated operands,
// multiply (MUL/MLA), word load/store with immediate offset, branch and
// branch-with-link, and SWI (used as HALT). Encodings follow the classic
// ARM layout so the binary "public input p" fed to SkipGate looks exactly
// like the paper's compiled code.
//
// Deviations from full ARM v2a, chosen to keep the processor netlist and
// the emulator exactly in sync (both implement *this* spec):
//   - shift amounts are taken literally (LSR/ASR/ROR #0 mean "no shift",
//     not the ARM #32/RRX special cases); the assembler never emits them;
//   - logical S-instructions update N and Z only (no shifter carry-out);
//   - LDR/STR support word-sized pre-indexed immediate offsets without
//     writeback (the addressing mode compilers emit for locals and
//     arrays); byte access and register offsets are not implemented.
package isa

import "fmt"

// Cond is the 4-bit condition field.
type Cond uint8

// Condition codes.
const (
	EQ Cond = iota // Z
	NE             // !Z
	CS             // C
	CC             // !C
	MI             // N
	PL             // !N
	VS             // V
	VC             // !V
	HI             // C && !Z
	LS             // !C || Z
	GE             // N == V
	LT             // N != V
	GT             // !Z && N == V
	LE             // Z || N != V
	AL             // always
	condInvalid
)

var condNames = [16]string{"eq", "ne", "cs", "cc", "mi", "pl", "vs", "vc", "hi", "ls", "ge", "lt", "gt", "le", "", "nv"}

func (c Cond) String() string {
	if c == AL {
		return ""
	}
	return condNames[c&15]
}

// Holds evaluates the condition against NZCV flags.
func (c Cond) Holds(n, z, cf, v bool) bool {
	switch c {
	case EQ:
		return z
	case NE:
		return !z
	case CS:
		return cf
	case CC:
		return !cf
	case MI:
		return n
	case PL:
		return !n
	case VS:
		return v
	case VC:
		return !v
	case HI:
		return cf && !z
	case LS:
		return !cf || z
	case GE:
		return n == v
	case LT:
		return n != v
	case GT:
		return !z && n == v
	case LE:
		return z || n != v
	default:
		return true
	}
}

// DPOp is the data-processing opcode (bits 24:21).
type DPOp uint8

// Data-processing opcodes.
const (
	OpAND DPOp = iota
	OpEOR
	OpSUB
	OpRSB
	OpADD
	OpADC
	OpSBC
	OpRSC
	OpTST
	OpTEQ
	OpCMP
	OpCMN
	OpORR
	OpMOV
	OpBIC
	OpMVN
)

var dpNames = [16]string{"and", "eor", "sub", "rsb", "add", "adc", "sbc", "rsc", "tst", "teq", "cmp", "cmn", "orr", "mov", "bic", "mvn"}

func (o DPOp) String() string { return dpNames[o&15] }

// WritesRd reports whether the opcode writes a destination register.
func (o DPOp) WritesRd() bool { return o < OpTST || o > OpCMN }

// IsLogical reports whether the opcode leaves C and V unchanged when S is
// set (this ISA does not model shifter carry-out).
func (o DPOp) IsLogical() bool {
	switch o {
	case OpAND, OpEOR, OpTST, OpTEQ, OpORR, OpMOV, OpBIC, OpMVN:
		return true
	}
	return false
}

// Shift is an operand-2 shift type.
type Shift uint8

// Shift types.
const (
	LSL Shift = iota
	LSR
	ASR
	ROR
)

var shiftNames = [4]string{"lsl", "lsr", "asr", "ror"}

func (s Shift) String() string { return shiftNames[s&3] }

// Kind discriminates instruction classes.
type Kind uint8

// Instruction classes.
const (
	KindDP  Kind = iota // data processing
	KindMul             // MUL/MLA
	KindMem             // LDR/STR
	KindBranch
	KindSWI
)

// Instr is a decoded instruction.
type Instr struct {
	Kind Kind
	Cond Cond

	// Data processing.
	Op     DPOp
	S      bool // set flags
	Rd     uint8
	Rn     uint8
	Imm    bool   // operand2 is rotated immediate
	Imm8   uint8  // immediate value
	Rot    uint8  // immediate rotation / 2 (0..15)
	Rm     uint8  // operand2 register
	Sh     Shift  // operand2 shift type
	ShImm  uint8  // shift amount (0..31) when !ShReg
	ShReg  bool   // shift amount comes from Rs
	Rs     uint8  // shift-amount register / multiply operand
	Acc    bool   // MLA (multiply-accumulate); Rn is the accumulator
	Load   bool   // LDR vs STR
	Up     bool   // add vs subtract offset
	Off12  uint16 // 12-bit memory offset
	Imm24  int32  // branch word offset (signed), or SWI comment field
	Link   bool   // BL
	SwiImm uint32
}

// Imm32 returns the operand-2 immediate value: Imm8 rotated right by 2*Rot.
func (i Instr) Imm32() uint32 {
	v := uint32(i.Imm8)
	r := uint(i.Rot) * 2 % 32
	if r == 0 {
		return v
	}
	return v>>r | v<<(32-r)
}

// Encode packs the instruction into its 32-bit word.
func Encode(i Instr) (uint32, error) {
	w := uint32(i.Cond&15) << 28
	switch i.Kind {
	case KindDP:
		w |= uint32(i.Op&15) << 21
		if i.S {
			w |= 1 << 20
		}
		w |= uint32(i.Rn&15) << 16
		w |= uint32(i.Rd&15) << 12
		if i.Imm {
			w |= 1 << 25
			w |= uint32(i.Rot&15) << 8
			w |= uint32(i.Imm8)
		} else {
			w |= uint32(i.Rm & 15)
			w |= uint32(i.Sh&3) << 5
			if i.ShReg {
				w |= 1 << 4
				w |= uint32(i.Rs&15) << 8
			} else {
				w |= uint32(i.ShImm&31) << 7
			}
		}
		// Reject encodings that collide with MUL (register shift with the
		// 1001 pattern cannot happen because bit 7 is zero for ShReg).
	case KindMul:
		w |= 0b1001 << 4
		if i.Acc {
			w |= 1 << 21
		}
		if i.S {
			w |= 1 << 20
		}
		w |= uint32(i.Rd&15) << 16
		w |= uint32(i.Rn&15) << 12 // accumulator
		w |= uint32(i.Rs&15) << 8
		w |= uint32(i.Rm & 15)
	case KindMem:
		w |= 1 << 26
		w |= 1 << 24 // P: pre-indexed
		if i.Up {
			w |= 1 << 23
		}
		if i.Load {
			w |= 1 << 20
		}
		w |= uint32(i.Rn&15) << 16
		w |= uint32(i.Rd&15) << 12
		if i.Off12 > 0xfff {
			return 0, fmt.Errorf("isa: memory offset %d out of range", i.Off12)
		}
		w |= uint32(i.Off12)
	case KindBranch:
		w |= 0b101 << 25
		if i.Link {
			w |= 1 << 24
		}
		if i.Imm24 < -(1<<23) || i.Imm24 >= 1<<23 {
			return 0, fmt.Errorf("isa: branch offset %d out of range", i.Imm24)
		}
		w |= uint32(i.Imm24) & 0xffffff
	case KindSWI:
		w |= 0b1111 << 24
		w |= i.SwiImm & 0xffffff
	default:
		return 0, fmt.Errorf("isa: bad instruction kind %d", i.Kind)
	}
	return w, nil
}

// Decode unpacks a 32-bit instruction word.
func Decode(w uint32) (Instr, error) {
	i := Instr{Cond: Cond(w >> 28 & 15)}
	switch {
	case w>>22&0x3f == 0 && w>>4&15 == 0b1001:
		i.Kind = KindMul
		i.Acc = w>>21&1 == 1
		i.S = w>>20&1 == 1
		i.Rd = uint8(w >> 16 & 15)
		i.Rn = uint8(w >> 12 & 15)
		i.Rs = uint8(w >> 8 & 15)
		i.Rm = uint8(w & 15)
	case w>>26&3 == 0:
		i.Kind = KindDP
		i.Op = DPOp(w >> 21 & 15)
		i.S = w>>20&1 == 1
		i.Rn = uint8(w >> 16 & 15)
		i.Rd = uint8(w >> 12 & 15)
		if w>>25&1 == 1 {
			i.Imm = true
			i.Rot = uint8(w >> 8 & 15)
			i.Imm8 = uint8(w)
		} else {
			i.Rm = uint8(w & 15)
			i.Sh = Shift(w >> 5 & 3)
			if w>>4&1 == 1 {
				i.ShReg = true
				i.Rs = uint8(w >> 8 & 15)
			} else {
				i.ShImm = uint8(w >> 7 & 31)
			}
		}
	case w>>26&3 == 1:
		i.Kind = KindMem
		if w>>22&1 == 1 {
			return i, fmt.Errorf("isa: byte access unsupported (word %#08x)", w)
		}
		if w>>24&1 != 1 || w>>21&1 != 0 || w>>25&1 != 0 {
			return i, fmt.Errorf("isa: unsupported addressing mode (word %#08x)", w)
		}
		i.Up = w>>23&1 == 1
		i.Load = w>>20&1 == 1
		i.Rn = uint8(w >> 16 & 15)
		i.Rd = uint8(w >> 12 & 15)
		i.Off12 = uint16(w & 0xfff)
	case w>>25&7 == 0b101:
		i.Kind = KindBranch
		i.Link = w>>24&1 == 1
		off := int32(w&0xffffff) << 8 >> 8 // sign-extend 24 bits
		i.Imm24 = off
	case w>>24&15 == 0b1111:
		i.Kind = KindSWI
		i.SwiImm = w & 0xffffff
	default:
		return i, fmt.Errorf("isa: cannot decode %#08x", w)
	}
	return i, nil
}

// EncodeImm finds (imm8, rot) with value = ROR(imm8, 2*rot), in ARM's
// rotated-immediate scheme.
func EncodeImm(v uint32) (imm8 uint8, rot uint8, ok bool) {
	for r := 0; r < 16; r++ {
		sh := uint(r) * 2
		rv := v
		if sh != 0 {
			rv = v<<sh | v>>(32-sh)
		}
		if rv <= 0xff {
			return uint8(rv), uint8(r), true
		}
	}
	return 0, 0, false
}

// String renders the instruction in assembler syntax.
func (i Instr) String() string {
	c := i.Cond.String()
	switch i.Kind {
	case KindDP:
		s := ""
		if i.S && i.Op.WritesRd() {
			s = "s"
		}
		op2 := i.op2String()
		switch i.Op {
		case OpMOV, OpMVN:
			return fmt.Sprintf("%s%s%s r%d, %s", i.Op, c, s, i.Rd, op2)
		case OpTST, OpTEQ, OpCMP, OpCMN:
			return fmt.Sprintf("%s%s r%d, %s", i.Op, c, i.Rn, op2)
		default:
			return fmt.Sprintf("%s%s%s r%d, r%d, %s", i.Op, c, s, i.Rd, i.Rn, op2)
		}
	case KindMul:
		if i.Acc {
			return fmt.Sprintf("mla%s r%d, r%d, r%d, r%d", c, i.Rd, i.Rm, i.Rs, i.Rn)
		}
		return fmt.Sprintf("mul%s r%d, r%d, r%d", c, i.Rd, i.Rm, i.Rs)
	case KindMem:
		op := "str"
		if i.Load {
			op = "ldr"
		}
		sign := ""
		if !i.Up {
			sign = "-"
		}
		if i.Off12 == 0 {
			return fmt.Sprintf("%s%s r%d, [r%d]", op, c, i.Rd, i.Rn)
		}
		return fmt.Sprintf("%s%s r%d, [r%d, #%s%d]", op, c, i.Rd, i.Rn, sign, i.Off12)
	case KindBranch:
		op := "b"
		if i.Link {
			op = "bl"
		}
		return fmt.Sprintf("%s%s %+d", op, c, i.Imm24)
	case KindSWI:
		return fmt.Sprintf("swi%s %d", c, i.SwiImm)
	}
	return "?"
}

func (i Instr) op2String() string {
	if i.Imm {
		return fmt.Sprintf("#%d", i.Imm32())
	}
	if i.ShReg {
		return fmt.Sprintf("r%d, %s r%d", i.Rm, i.Sh, i.Rs)
	}
	if i.ShImm == 0 {
		return fmt.Sprintf("r%d", i.Rm)
	}
	return fmt.Sprintf("r%d, %s #%d", i.Rm, i.Sh, i.ShImm)
}
