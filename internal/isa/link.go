package isa

import "fmt"

// Link assembles a program against a memory layout, prepending the startup
// stub (the paper's "modified header assembly code"): it points r0/r1/r2
// at Alice's, Bob's, and the output arrays, sets the stack pointer, calls
// gc_main, and halts. The source must define the label gc_main.
func Link(name, src string, l Layout) (*Program, error) {
	if err := l.Validate(); err != nil {
		return nil, err
	}
	startup := fmt.Sprintf(`
	ldr sp, =%d
	ldr r0, =%d
	ldr r1, =%d
	ldr r2, =%d
	ldr r3, =%d
	bl gc_main
	swi 0
`, l.StackTop(), l.AliceBase(), l.BobBase(), l.OutBase(), l.ScratchBase())
	words, err := Assemble(startup + src)
	if err != nil {
		return nil, fmt.Errorf("link %s: %w", name, err)
	}
	if len(words) > l.IMemWords {
		return nil, fmt.Errorf("link %s: %d words exceed imem of %d", name, len(words), l.IMemWords)
	}
	return &Program{Words: words, Layout: l, Name: name}, nil
}

// FitLayout returns a copy of l with IMemWords grown to the next power of
// two at least as large as the program needs; useful when callers size the
// instruction memory to the program.
func FitLayout(src string, l Layout) (Layout, error) {
	probe := l
	probe.IMemWords = 1 << 20
	p, err := Link("probe", src, probe)
	if err != nil {
		return l, err
	}
	n := 1
	for n < len(p.Words) {
		n *= 2
	}
	l.IMemWords = n
	return l, nil
}
