// Package certwatch reloads a TLS certificate/key pair from disk while
// the process serves — cert rotation without a restart. There is no
// watcher goroutine and no inotify dependency: the Reloader stats the
// files lazily from inside tls.Config.GetCertificate, at most once per
// poll interval, and swaps the parsed certificate in when either file's
// mtime (or size) changes. A handshake is already milliseconds of
// asymmetric crypto; an occasional pair of stat calls is noise, and the
// lazy shape means an idle listener does no work at all.
package certwatch

import (
	"crypto/tls"
	"fmt"
	"os"
	"sync"
	"time"
)

// DefaultPoll is how often the Reloader is willing to stat the files
// when handshakes arrive continuously.
const DefaultPoll = 5 * time.Second

type fileState struct {
	mod  time.Time
	size int64
}

func statFile(path string) (fileState, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return fileState{}, err
	}
	return fileState{mod: fi.ModTime(), size: fi.Size()}, nil
}

// Reloader serves a certificate pair from disk, re-reading it when the
// files change. Safe for concurrent use by many handshakes.
type Reloader struct {
	certFile, keyFile string
	poll              time.Duration
	logf              func(string, ...any)
	now               func() time.Time // injectable for tests

	mu        sync.Mutex
	cert      *tls.Certificate
	certStat  fileState
	keyStat   fileState
	lastCheck time.Time
	reloads   uint64
	lastErr   error
}

// Option configures a Reloader.
type Option func(*Reloader)

// WithPoll sets the minimum interval between file stats (default
// DefaultPoll). Zero or negative means stat on every handshake — the
// right setting for tests, not for production listeners.
func WithPoll(d time.Duration) Option {
	return func(r *Reloader) { r.poll = d }
}

// WithLogf routes reload notices and failed-reload warnings somewhere
// visible; the default discards them.
func WithLogf(logf func(string, ...any)) Option {
	return func(r *Reloader) { r.logf = logf }
}

// withNow overrides the clock (tests).
func withNow(now func() time.Time) Option {
	return func(r *Reloader) { r.now = now }
}

// New loads the pair once, eagerly — a broken certificate is a startup
// error, not a mystery at first handshake.
func New(certFile, keyFile string, opts ...Option) (*Reloader, error) {
	r := &Reloader{
		certFile: certFile,
		keyFile:  keyFile,
		poll:     DefaultPoll,
		logf:     func(string, ...any) {},
		now:      time.Now,
	}
	for _, opt := range opts {
		opt(r)
	}
	cert, err := tls.LoadX509KeyPair(certFile, keyFile)
	if err != nil {
		return nil, fmt.Errorf("certwatch: %w", err)
	}
	r.cert = &cert
	r.certStat, _ = statFile(certFile)
	r.keyStat, _ = statFile(keyFile)
	r.lastCheck = r.now()
	return r, nil
}

// GetCertificate is the tls.Config callback: it returns the current
// certificate, first re-reading the files if the poll interval has
// elapsed and they changed on disk. A reload that fails (half-written
// files mid-rotation, mismatched pair) keeps serving the previous
// certificate and is retried next interval — rotation must never take
// a working listener down.
func (r *Reloader) GetCertificate(*tls.ClientHelloInfo) (*tls.Certificate, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if now := r.now(); now.Sub(r.lastCheck) >= r.poll {
		r.lastCheck = now
		r.maybeReloadLocked()
	}
	return r.cert, nil
}

func (r *Reloader) maybeReloadLocked() {
	cs, cerr := statFile(r.certFile)
	ks, kerr := statFile(r.keyFile)
	if cerr != nil || kerr != nil {
		// Mid-rotation a file may briefly be missing (rename dance);
		// keep the loaded certificate and look again next interval.
		return
	}
	if cs == r.certStat && ks == r.keyStat {
		return
	}
	cert, err := tls.LoadX509KeyPair(r.certFile, r.keyFile)
	if err != nil {
		r.lastErr = err
		r.logf("certwatch: reload %s: %v (still serving previous certificate)", r.certFile, err)
		// Remember the failed state so an unchanged broken pair is not
		// re-parsed on every interval; any further change retries.
		r.certStat, r.keyStat = cs, ks
		return
	}
	r.cert = &cert
	r.certStat, r.keyStat = cs, ks
	r.reloads++
	r.lastErr = nil
	r.logf("certwatch: rotated certificate from %s", r.certFile)
}

// Reloads reports how many successful rotations have happened since New.
func (r *Reloader) Reloads() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.reloads
}

// LastError reports the most recent failed reload, nil after a
// successful one.
func (r *Reloader) LastError() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lastErr
}
