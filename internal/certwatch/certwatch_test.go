package certwatch

import (
	"crypto/tls"
	"os"
	"path/filepath"
	"testing"
	"time"

	"arm2gc/internal/devcert"
)

// writePair writes a freshly minted leaf under dir and backdates the
// files' mtimes by age so successive writes are distinguishable without
// sleeping through filesystem timestamp granularity.
func writePair(t *testing.T, dir string, ca *devcert.CA, cn string, serial int64, age time.Duration) (string, string) {
	t.Helper()
	leaf, err := ca.Issue(cn, serial)
	if err != nil {
		t.Fatal(err)
	}
	keyPEM, err := devcert.KeyPEM(leaf.Key)
	if err != nil {
		t.Fatal(err)
	}
	certFile := filepath.Join(dir, "server.pem")
	keyFile := filepath.Join(dir, "server-key.pem")
	if err := os.WriteFile(certFile, devcert.CertPEM(leaf.DER), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(keyFile, keyPEM, 0o600); err != nil {
		t.Fatal(err)
	}
	mod := time.Now().Add(-age)
	for _, f := range []string{certFile, keyFile} {
		if err := os.Chtimes(f, mod, mod); err != nil {
			t.Fatal(err)
		}
	}
	return certFile, keyFile
}

func TestReloaderRotates(t *testing.T) {
	dir := t.TempDir()
	ca, err := devcert.NewCA("rotation test CA")
	if err != nil {
		t.Fatal(err)
	}
	certFile, keyFile := writePair(t, dir, ca, "gen-1", 10, time.Hour)

	clock := time.Now()
	now := func() time.Time { return clock }
	r, err := New(certFile, keyFile, WithPoll(time.Minute), withNow(now))
	if err != nil {
		t.Fatal(err)
	}
	first, err := r.GetCertificate(nil)
	if err != nil || first == nil {
		t.Fatalf("initial certificate: %v", err)
	}

	// Rotate the files on disk. Inside the poll interval nothing moves.
	writePair(t, dir, ca, "gen-2", 11, time.Minute)
	clock = clock.Add(30 * time.Second)
	got, _ := r.GetCertificate(nil)
	if got != first {
		t.Fatal("certificate swapped inside the poll interval")
	}

	// Past the interval the new pair is picked up.
	clock = clock.Add(31 * time.Second)
	got, err = r.GetCertificate(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got == first {
		t.Fatal("certificate not rotated after files changed")
	}
	if n := r.Reloads(); n != 1 {
		t.Fatalf("reloads = %d, want 1", n)
	}
}

// TestReloaderSurvivesBrokenRotation: a half-written or mismatched pair
// must not take the listener down — the previous certificate keeps
// serving, and a subsequent good pair is picked up.
func TestReloaderSurvivesBrokenRotation(t *testing.T) {
	dir := t.TempDir()
	ca, err := devcert.NewCA("rotation test CA")
	if err != nil {
		t.Fatal(err)
	}
	certFile, keyFile := writePair(t, dir, ca, "gen-1", 10, time.Hour)

	clock := time.Now()
	r, err := New(certFile, keyFile, WithPoll(0), withNow(func() time.Time { return clock }))
	if err != nil {
		t.Fatal(err)
	}
	first, _ := r.GetCertificate(nil)

	// Corrupt the cert file (rotation caught mid-write).
	if err := os.WriteFile(certFile, []byte("not a certificate"), 0o644); err != nil {
		t.Fatal(err)
	}
	mod := time.Now().Add(-30 * time.Minute)
	if err := os.Chtimes(certFile, mod, mod); err != nil {
		t.Fatal(err)
	}
	clock = clock.Add(time.Second)
	got, err := r.GetCertificate(nil)
	if err != nil || got != first {
		t.Fatalf("broken rotation changed the served certificate: %v", err)
	}
	if r.LastError() == nil {
		t.Fatal("failed reload not recorded")
	}

	// A good pair afterwards rotates normally.
	writePair(t, dir, ca, "gen-2", 11, time.Minute)
	clock = clock.Add(time.Second)
	got, err = r.GetCertificate(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got == first {
		t.Fatal("recovery pair not picked up")
	}
	if r.LastError() != nil {
		t.Fatalf("lastErr not cleared after recovery: %v", r.LastError())
	}
}

// TestReloaderMissingFileKeepsServing: a file vanishing mid-rotation
// (rename dance) keeps the loaded pair.
func TestReloaderMissingFileKeepsServing(t *testing.T) {
	dir := t.TempDir()
	ca, err := devcert.NewCA("rotation test CA")
	if err != nil {
		t.Fatal(err)
	}
	certFile, keyFile := writePair(t, dir, ca, "gen-1", 10, time.Hour)
	clock := time.Now()
	r, err := New(certFile, keyFile, WithPoll(0), withNow(func() time.Time { return clock }))
	if err != nil {
		t.Fatal(err)
	}
	first, _ := r.GetCertificate(nil)
	if err := os.Remove(keyFile); err != nil {
		t.Fatal(err)
	}
	clock = clock.Add(time.Second)
	got, err := r.GetCertificate(nil)
	if err != nil || got != first {
		t.Fatalf("missing key file changed the served certificate: %v", err)
	}
}

// TestReloaderEndToEnd drives a real TLS handshake through a listener
// whose config uses GetCertificate, rotates the pair, and checks the
// next handshake serves the new leaf — the no-restart property itself.
func TestReloaderEndToEnd(t *testing.T) {
	dir := t.TempDir()
	ca, err := devcert.NewCA("rotation e2e CA")
	if err != nil {
		t.Fatal(err)
	}
	certFile, keyFile := writePair(t, dir, ca, "gen-1", 10, time.Hour)
	r, err := New(certFile, keyFile, WithPoll(0))
	if err != nil {
		t.Fatal(err)
	}
	srvCfg := &tls.Config{GetCertificate: r.GetCertificate, MinVersion: tls.VersionTLS13}
	ln, err := tls.Listen("tcp", "127.0.0.1:0", srvCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c interface {
				Read([]byte) (int, error)
				Close() error
			}) {
				defer c.Close()
				var b [1]byte
				c.Read(b[:]) // drive the handshake; client closes after
			}(c)
		}
	}()

	cliCfg := &tls.Config{RootCAs: ca.Pool(), MinVersion: tls.VersionTLS13}
	handshakeCN := func() string {
		conn, err := tls.Dial("tcp", ln.Addr().String(), cliCfg)
		if err != nil {
			t.Fatalf("dial: %v", err)
		}
		defer conn.Close()
		return conn.ConnectionState().PeerCertificates[0].Subject.CommonName
	}
	if cn := handshakeCN(); cn != "gen-1" {
		t.Fatalf("first handshake served %q, want gen-1", cn)
	}
	writePair(t, dir, ca, "gen-2", 11, time.Minute)
	if cn := handshakeCN(); cn != "gen-2" {
		t.Fatalf("post-rotation handshake served %q, want gen-2", cn)
	}
	if n := r.Reloads(); n != 1 {
		t.Fatalf("reloads = %d, want 1", n)
	}
}
