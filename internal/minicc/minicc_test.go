package minicc

import (
	"strings"
	"testing"

	"arm2gc/internal/emu"
	"arm2gc/internal/isa"
)

func compileRun(t *testing.T, src string, alice, bob []uint32, outWords int) ([]uint32, *Result) {
	t.Helper()
	res, err := Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	l := isa.Layout{
		IMemWords: 1024, AliceWords: max(len(alice), 1), BobWords: max(len(bob), 1),
		OutWords: outWords, ScratchWords: 64,
	}
	p, err := isa.Link("test", res.Asm, l)
	if err != nil {
		t.Fatalf("link: %v\n%s", err, res.Asm)
	}
	m, err := emu.New(p, alice, bob)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(2_000_000); err != nil {
		t.Fatalf("run: %v\nasm:\n%s", err, res.Asm)
	}
	return m.Output(), res
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func TestSimpleAdd(t *testing.T) {
	out, _ := compileRun(t, `
void gc_main(const int *a, const int *b, int *c) {
	c[0] = a[0] + b[0];
}
`, []uint32{40}, []uint32{2}, 1)
	if out[0] != 42 {
		t.Errorf("got %d, want 42", out[0])
	}
}

func TestIfConversion(t *testing.T) {
	src := `
void gc_main(const int *a, const int *b, int *c) {
	int x = a[0];
	int y = b[0];
	if (x > y) {
		c[0] = x;
	} else {
		c[0] = y;
	}
}
`
	out, res := compileRun(t, src, []uint32{100}, []uint32{7}, 1)
	if out[0] != 100 {
		t.Errorf("max = %d, want 100", out[0])
	}
	if len(res.Warnings) != 0 {
		t.Errorf("if-convertible code produced warnings: %v", res.Warnings)
	}
	// The body must be predicated (strgt/strle), with no branch.
	if !strings.Contains(res.Asm, "strgt") || !strings.Contains(res.Asm, "strle") {
		t.Errorf("if was not converted to conditional stores:\n%s", res.Asm)
	}
	for _, line := range strings.Split(res.Asm, "\n") {
		f := strings.Fields(line)
		if len(f) > 0 && (f[0] == "bgt" || f[0] == "ble") {
			t.Errorf("found branch %q despite if-conversion", line)
		}
	}
}

func TestBranchWarning(t *testing.T) {
	// A call in the body defeats if-conversion: branch + warning.
	src := `
int id(int x) { return x; }
void gc_main(const int *a, const int *b, int *c) {
	int r = 0;
	if (a[0] > b[0]) {
		r = id(a[0]);
	}
	c[0] = r;
}
`
	out, res := compileRun(t, src, []uint32{9}, []uint32{4}, 1)
	if out[0] != 9 {
		t.Errorf("got %d, want 9", out[0])
	}
	if len(res.Warnings) == 0 {
		t.Error("expected a secret-branch warning")
	}
}

func TestTernaryAndLogic(t *testing.T) {
	src := `
void gc_main(const int *a, const int *b, int *c) {
	int x = a[0];
	int y = b[0];
	c[0] = x < y ? x : y;
	c[1] = (x > 0 && y > 0) ? 1 : 0;
	c[2] = (x < 0 || y > 10) ? 7 : 8;
	c[3] = !x;
	c[4] = ~x;
	c[5] = -y;
}
`
	out, _ := compileRun(t, src, []uint32{5}, []uint32{12}, 6)
	neg12 := -int32(12)
	want := []uint32{5, 1, 7, 0, ^uint32(5), uint32(neg12)}
	for i, w := range want {
		if out[i] != w {
			t.Errorf("c[%d] = %#x, want %#x", i, out[i], w)
		}
	}
}

func TestLoopsAndArrays(t *testing.T) {
	src := `
void gc_main(const int *a, const int *b, int *c) {
	int acc = 0;
	for (int i = 0; i < 8; i = i + 1) {
		acc = acc + a[i] * b[i];
	}
	c[0] = acc;

	int t[4] = {10, 20, 30, 40};
	int j = 0;
	int s = 0;
	while (j < 4) {
		s = s + t[j];
		j = j + 1;
	}
	c[1] = s;
}
`
	alice := []uint32{1, 2, 3, 4, 5, 6, 7, 8}
	bob := []uint32{8, 7, 6, 5, 4, 3, 2, 1}
	out, _ := compileRun(t, src, alice, bob, 2)
	var dot uint32
	for i := range alice {
		dot += alice[i] * bob[i]
	}
	if out[0] != dot {
		t.Errorf("dot = %d, want %d", out[0], dot)
	}
	if out[1] != 100 {
		t.Errorf("sum = %d, want 100", out[1])
	}
}

func TestPopcountHamming(t *testing.T) {
	// The tree-based popcount the paper cites for Hamming distance.
	src := `
unsigned popcount(unsigned x) {
	x = x - ((x >> 1) & 0x55555555);
	x = (x & 0x33333333) + ((x >> 2) & 0x33333333);
	x = (x + (x >> 4)) & 0x0F0F0F0F;
	return (x * 0x01010101) >> 24;
}

void gc_main(const int *a, const int *b, int *c) {
	unsigned acc = 0;
	for (int i = 0; i < 4; i = i + 1) {
		acc = acc + popcount(a[i] ^ b[i]);
	}
	c[0] = acc;
}
`
	alice := []uint32{0xffffffff, 0x0f0f0f0f, 0x12345678, 0}
	bob := []uint32{0, 0xf0f0f0f0, 0x12345678, 0xdeadbeef}
	out, _ := compileRun(t, src, alice, bob, 1)
	want := uint32(32 + 32 + 0 + 24)
	if out[0] != want {
		t.Errorf("hamming = %d, want %d", out[0], want)
	}
}

func TestShiftOps(t *testing.T) {
	src := `
void gc_main(const int *a, const int *b, int *c) {
	int x = a[0];
	int s = b[0];
	unsigned u = a[0];
	c[0] = x << 3;
	c[1] = x >> 2;
	c[2] = u >> 2;
	c[3] = x << s;
	c[4] = u >> s;
}
`
	out, _ := compileRun(t, src, []uint32{0x80000040}, []uint32{4}, 5)
	x := uint32(0x80000040)
	want := []uint32{x << 3, uint32(int32(x) >> 2), x >> 2, x << 4, x >> 4}
	for i, w := range want {
		if out[i] != w {
			t.Errorf("c[%d] = %#x, want %#x", i, out[i], w)
		}
	}
}

func TestBubbleSort(t *testing.T) {
	src := `
void gc_main(const int *a, const int *b, int *c) {
	int v[8];
	for (int i = 0; i < 8; i = i + 1) {
		v[i] = a[i] ^ b[i];
	}
	for (int i = 0; i < 7; i = i + 1) {
		for (int j = 0; j < 7 - i; j = j + 1) {
			int x = v[j];
			int y = v[j + 1];
			if (x > y) {
				v[j] = y;
				v[j + 1] = x;
			}
		}
	}
	for (int i = 0; i < 8; i = i + 1) {
		c[i] = v[i];
	}
}
`
	alice := []uint32{5, 1, 9, 3, 7, 2, 8, 6}
	bob := []uint32{0, 0, 0, 0, 0, 0, 0, 0}
	out, res := compileRun(t, src, alice, bob, 8)
	want := []uint32{1, 2, 3, 5, 6, 7, 8, 9}
	for i, w := range want {
		if out[i] != w {
			t.Errorf("out[%d] = %d, want %d", i, out[i], w)
		}
	}
	// The compare-and-swap must be predicated (data-oblivious).
	if len(res.Warnings) != 0 {
		t.Errorf("bubble sort produced secret-branch warnings: %v", res.Warnings)
	}
}

func TestNestedCalls(t *testing.T) {
	src := `
int square(int x) { return x * x; }
int sumsq(int x, int y) {
	int a = square(x);
	int
 b = square(y);
	return a + b;
}
void gc_main(const int *a, const int *b, int *c) {
	c[0] = sumsq(a[0], b[0]);
}
`
	out, _ := compileRun(t, src, []uint32{3}, []uint32{4}, 1)
	if out[0] != 25 {
		t.Errorf("sumsq(3,4) = %d, want 25", out[0])
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []string{
		"void gc_main(const int *a, const int *b, int *c) { c[0] = a[0] / b[0]; }",
		"void gc_main(const int *a, const int *b, int *c) { c[0] = undefined_var; }",
		"void gc_main(const int *a, const int *b, int *c) { undefined_fn(); }",
		"void other(int x) {}",
		"void gc_main(int a, int b, int c, int d, int e) {}",
		"void gc_main(const int *a) { int x; int x; }",
		"void gc_main(const int *a) { 5 = 3; }",
	}
	for _, src := range cases {
		if _, err := Compile(src); err == nil {
			t.Errorf("Compile succeeded on %q", src)
		}
	}
}

func TestUnsignedCompare(t *testing.T) {
	src := `
void gc_main(const int *a, const int *b, int *c) {
	unsigned x = a[0];
	unsigned y = b[0];
	int sx = a[0];
	int sy = b[0];
	c[0] = x < y ? 1 : 0;
	c[1] = sx < sy ? 1 : 0;
}
`
	// 0xffffffff: huge unsigned, -1 signed.
	out, _ := compileRun(t, src, []uint32{0xffffffff}, []uint32{3}, 2)
	if out[0] != 0 {
		t.Errorf("unsigned 0xffffffff < 3 = %d, want 0", out[0])
	}
	if out[1] != 1 {
		t.Errorf("signed -1 < 3 = %d, want 1", out[1])
	}
}

func TestBreakContinue(t *testing.T) {
	src := `
void gc_main(const int *a, const int *b, int *c) {
	int acc = 0;
	for (int i = 0; i < 100; i++) {
		if (i >= 10) {
			break;
		}
		if ((i & 1) == 1) {
			continue;
		}
		acc += a[0];
	}
	c[0] = acc;

	int j = 0;
	int sum = 0;
	while (1) {
		j++;
		if (j > 5) {
			break;
		}
		sum += j;
	}
	c[1] = sum;
}
`
	out, _ := compileRun(t, src, []uint32{7}, nil, 2)
	if out[0] != 5*7 { // i = 0,2,4,6,8
		t.Errorf("break/continue sum = %d, want 35", out[0])
	}
	if out[1] != 15 {
		t.Errorf("while-break sum = %d, want 15", out[1])
	}
}

func TestCompoundAssignAndIncDec(t *testing.T) {
	src := `
void gc_main(const int *a, const int *b, int *c) {
	int x = a[0];
	x += 5;
	x -= 2;
	x *= 3;
	x ^= b[0];
	x |= 1;
	x &= 0xfff;
	c[0] = x;
	int v[2] = {10, 20};
	v[1] += v[0];
	c[1] = v[1];
	int i = 0;
	i++;
	i++;
	i--;
	c[2] = i;
	unsigned u = a[0];
	u <<= 2;
	u >>= 1;
	c[3] = u;
}
`
	out, _ := compileRun(t, src, []uint32{9}, []uint32{0x44}, 4)
	x := ((uint32(9)+5-2)*3 ^ 0x44) | 1
	x &= 0xfff
	want := []uint32{x, 30, 1, 9 << 2 >> 1}
	for i, w := range want {
		if out[i] != w {
			t.Errorf("c[%d] = %d, want %d", i, out[i], w)
		}
	}
}

func TestIfConversionWithLogicalCondition(t *testing.T) {
	src := `
void gc_main(const int *a, const int *b, int *c) {
	int x = a[0];
	int y = b[0];
	int r = 0;
	if (x > 0 && y > 0) {
		r = x * y;
	} else {
		r = 100;
	}
	c[0] = r;
}
`
	outTrue, res := compileRun(t, src, []uint32{3}, []uint32{4}, 1)
	if outTrue[0] != 12 {
		t.Errorf("true branch: got %d, want 12", outTrue[0])
	}
	if len(res.Warnings) != 0 {
		t.Errorf("logical-condition if should be predicated, got warnings: %v", res.Warnings)
	}
	outFalse, _ := compileRun(t, src, []uint32{0}, []uint32{4}, 1)
	if outFalse[0] != 100 {
		t.Errorf("false branch: got %d, want 100", outFalse[0])
	}
}
