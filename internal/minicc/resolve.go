package minicc

import "fmt"

// resolveFunc performs the pre-codegen passes on one function:
//
//  1. call hoisting — nested calls are moved into fresh temporaries before
//     the statement that used them, so every call happens with no live
//     expression temporaries (loop conditions cannot hoist, because the
//     hoisted call would not be re-evaluated each iteration; they are
//     rejected instead);
//  2. lexical scoping — declarations are block-scoped; every variable
//     reference is bound to a symbol and duplicates across sibling scopes
//     get distinct stack slots.
func resolveFunc(fn *funcDef) error {
	r := &resolver{fn: fn}
	body, err := r.hoistBody(fn.body)
	if err != nil {
		return err
	}
	fn.body = body

	r.push()
	for _, p := range fn.params {
		if err := r.declare(p.name, p.typ, 0, nil); err != nil {
			return err
		}
	}
	if err := r.scopeStmts(fn.body); err != nil {
		return err
	}
	r.pop()

	// Assign frame offsets: params first (so the prologue spill offsets
	// are the first slots), then every other symbol.
	off := 0
	for _, s := range r.all {
		s.offset = off
		words := 1
		if s.isArray {
			words = s.arrayLen
		}
		off += 4 * words
	}
	fn.frame = off
	fn.makesCall = callsAnything(fn.body)
	if fn.makesCall {
		fn.frame += lrSaved
	}
	fn.syms = map[string]*symbol{}
	for i, p := range fn.params {
		fn.syms[p.name] = r.all[i]
	}
	return nil
}

type resolver struct {
	fn     *funcDef
	scopes []map[string]*symbol
	all    []*symbol
	temps  int
}

func (r *resolver) push() { r.scopes = append(r.scopes, map[string]*symbol{}) }
func (r *resolver) pop()  { r.scopes = r.scopes[:len(r.scopes)-1] }

func (r *resolver) declare(name string, typ ctype, arrLen int, d *declStmt) error {
	top := r.scopes[len(r.scopes)-1]
	if _, dup := top[name]; dup {
		return fmt.Errorf("minicc: %s: duplicate variable %q", r.fn.name, name)
	}
	s := &symbol{name: name, typ: typ, isArray: arrLen > 0, arrayLen: arrLen}
	top[name] = s
	r.all = append(r.all, s)
	if d != nil {
		d.sym = s
	}
	return nil
}

func (r *resolver) lookup(name string) (*symbol, error) {
	for i := len(r.scopes) - 1; i >= 0; i-- {
		if s, ok := r.scopes[i][name]; ok {
			return s, nil
		}
	}
	return nil, fmt.Errorf("minicc: %s: undefined variable %q", r.fn.name, name)
}

func (r *resolver) scopeStmts(body []stmt) error {
	for _, s := range body {
		switch s := s.(type) {
		case *declStmt:
			// Initializers see the outer binding (C semantics are murky
			// here; MiniC resolves the initializer first).
			if err := r.scopeExpr(s.init); err != nil {
				return err
			}
			for _, e := range s.initList {
				if err := r.scopeExpr(e); err != nil {
					return err
				}
			}
			if err := r.declare(s.name, s.typ, s.arrayLen, s); err != nil {
				return err
			}
		case *assignStmt:
			if err := r.scopeExpr(s.lhs); err != nil {
				return err
			}
			if err := r.scopeExpr(s.rhs); err != nil {
				return err
			}
		case *exprStmt:
			if err := r.scopeExpr(s.x); err != nil {
				return err
			}
		case *returnStmt:
			if err := r.scopeExpr(s.x); err != nil {
				return err
			}
		case *ifStmt:
			if err := r.scopeExpr(s.cond); err != nil {
				return err
			}
			r.push()
			if err := r.scopeStmts(s.then); err != nil {
				return err
			}
			r.pop()
			r.push()
			if err := r.scopeStmts(s.els); err != nil {
				return err
			}
			r.pop()
		case *whileStmt:
			if err := r.scopeExpr(s.cond); err != nil {
				return err
			}
			r.push()
			if err := r.scopeStmts(s.body); err != nil {
				return err
			}
			if s.forPost != nil {
				if err := r.scopeStmts([]stmt{s.forPost}); err != nil {
					return err
				}
			}
			r.pop()
		}
	}
	return nil
}

func (r *resolver) scopeExpr(e expr) error {
	var err error
	walkExpr(e, func(x expr) {
		if v, ok := x.(*varRef); ok && err == nil {
			v.sym, err = r.lookup(v.name)
		}
	})
	return err
}

// hoistBody rewrites statements so calls only occur as a whole statement's
// right-hand side (depth 0 at codegen time).
func (r *resolver) hoistBody(body []stmt) ([]stmt, error) {
	var out []stmt
	for _, s := range body {
		pre, ns, err := r.hoistStmt(s)
		if err != nil {
			return nil, err
		}
		out = append(out, pre...)
		out = append(out, ns)
	}
	return out, nil
}

func (r *resolver) hoistStmt(s stmt) (pre []stmt, _ stmt, err error) {
	switch s := s.(type) {
	case *declStmt:
		if s.init != nil {
			if pre, s.init, err = r.hoistExpr(s.init, true); err != nil {
				return nil, nil, err
			}
		}
		var all []stmt
		all = append(all, pre...)
		for i := range s.initList {
			p, ne, err := r.hoistExpr(s.initList[i], false)
			if err != nil {
				return nil, nil, err
			}
			all = append(all, p...)
			s.initList[i] = ne
		}
		return all, s, nil
	case *assignStmt:
		if pre, s.rhs, err = r.hoistExpr(s.rhs, true); err != nil {
			return nil, nil, err
		}
		p2, lhs, err := r.hoistExpr(s.lhs, false)
		if err != nil {
			return nil, nil, err
		}
		s.lhs = lhs
		return append(pre, p2...), s, nil
	case *exprStmt:
		if pre, s.x, err = r.hoistExpr(s.x, true); err != nil {
			return nil, nil, err
		}
		return pre, s, nil
	case *returnStmt:
		if s.x != nil {
			if pre, s.x, err = r.hoistExpr(s.x, true); err != nil {
				return nil, nil, err
			}
		}
		return pre, s, nil
	case *ifStmt:
		if pre, s.cond, err = r.hoistExpr(s.cond, false); err != nil {
			return nil, nil, err
		}
		if s.then, err = r.hoistBody(s.then); err != nil {
			return nil, nil, err
		}
		if s.els, err = r.hoistBody(s.els); err != nil {
			return nil, nil, err
		}
		return pre, s, nil
	case *whileStmt:
		if exprHasCall(s.cond) {
			return nil, nil, fmt.Errorf("minicc: %s: function call in a loop condition is not supported; assign it to a variable inside the loop", r.fn.name)
		}
		if s.body, err = r.hoistBody(s.body); err != nil {
			return nil, nil, err
		}
		if s.forPost != nil {
			var post []stmt
			p, np, err := r.hoistStmt(s.forPost)
			if err != nil {
				return nil, nil, err
			}
			post = append(post, p...)
			post = append(post, np)
			if len(post) > 1 {
				// Fold hoisted temps into the loop body tail.
				s.body = append(s.body, post[:len(post)-1]...)
				s.forPost = post[len(post)-1]
			}
		}
		return nil, s, nil
	}
	return nil, s, nil
}

// hoistExpr extracts nested calls from e into temporary declarations.
// When topCall is set, a call at the root of e may stay (it will compile
// at depth 0).
func (r *resolver) hoistExpr(e expr, topCall bool) ([]stmt, expr, error) {
	if e == nil {
		return nil, e, nil
	}
	var pre []stmt
	var rewrite func(x expr, top bool) (expr, error)
	rewrite = func(x expr, top bool) (expr, error) {
		switch x := x.(type) {
		case *call:
			for i := range x.args {
				na, err := rewrite(x.args[i], false)
				if err != nil {
					return nil, err
				}
				x.args[i] = na
			}
			if top {
				return x, nil
			}
			r.temps++
			name := fmt.Sprintf("__call%d", r.temps)
			d := &declStmt{name: name, typ: ctype{}, init: x}
			pre = append(pre, d)
			return &varRef{name: name}, nil
		case *index:
			nb, err := rewrite(x.base, false)
			if err != nil {
				return nil, err
			}
			ni, err := rewrite(x.idx, false)
			if err != nil {
				return nil, err
			}
			x.base, x.idx = nb, ni
			return x, nil
		case *unary:
			nx, err := rewrite(x.x, false)
			if err != nil {
				return nil, err
			}
			x.x = nx
			return x, nil
		case *binary:
			nl, err := rewrite(x.l, false)
			if err != nil {
				return nil, err
			}
			nr, err := rewrite(x.r, false)
			if err != nil {
				return nil, err
			}
			x.l, x.r = nl, nr
			return x, nil
		case *ternary:
			nc, err := rewrite(x.cond, false)
			if err != nil {
				return nil, err
			}
			nt, err := rewrite(x.then, false)
			if err != nil {
				return nil, err
			}
			ne, err := rewrite(x.els, false)
			if err != nil {
				return nil, err
			}
			x.cond, x.then, x.els = nc, nt, ne
			return x, nil
		default:
			return x, nil
		}
	}
	ne, err := rewrite(e, topCall)
	return pre, ne, err
}

func exprHasCall(e expr) bool {
	found := false
	walkExpr(e, func(x expr) {
		if _, ok := x.(*call); ok {
			found = true
		}
	})
	return found
}
