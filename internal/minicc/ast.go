package minicc

// Types. MiniC has int, unsigned, and pointers to them; arrays are local
// storage that decays to pointers.
type ctype struct {
	unsigned bool
	ptr      bool
}

func (t ctype) String() string {
	s := "int"
	if t.unsigned {
		s = "unsigned"
	}
	if t.ptr {
		s += "*"
	}
	return s
}

// Expressions.
type expr interface{ exprNode() }

type numLit struct {
	val int64
}

type varRef struct {
	name string
	sym  *symbol // resolved by sema
}

type index struct {
	base expr // pointer or array variable
	idx  expr
}

type unary struct {
	op string // ! ~ -
	x  expr
}

type binary struct {
	op   string
	l, r expr
	typ  ctype // result/operand type, resolved by sema
}

type ternary struct {
	cond, then, els expr
}

type call struct {
	name string
	args []expr
	fn   *funcDef
}

func (*numLit) exprNode()  {}
func (*varRef) exprNode()  {}
func (*index) exprNode()   {}
func (*unary) exprNode()   {}
func (*binary) exprNode()  {}
func (*ternary) exprNode() {}
func (*call) exprNode()    {}

// Statements.
type stmt interface{ stmtNode() }

type declStmt struct {
	name     string
	typ      ctype
	arrayLen int // 0 for scalars
	init     expr
	initList []expr
	sym      *symbol
}

type assignStmt struct {
	lhs expr // varRef or index
	rhs expr
}

type exprStmt struct {
	x expr
}

type ifStmt struct {
	cond       expr
	then, els  []stmt
	line       int
	converted  bool // filled by codegen: predicated instead of branched
	secretWarn bool
}

type whileStmt struct {
	cond expr
	body []stmt
	// forPost holds the for-loop post statement (nil for while).
	forPost stmt
}

type returnStmt struct {
	x expr // nil for void
}

type breakStmt struct{}

type continueStmt struct{}

func (*declStmt) stmtNode()     {}
func (*assignStmt) stmtNode()   {}
func (*exprStmt) stmtNode()     {}
func (*ifStmt) stmtNode()       {}
func (*whileStmt) stmtNode()    {}
func (*returnStmt) stmtNode()   {}
func (*breakStmt) stmtNode()    {}
func (*continueStmt) stmtNode() {}

// Declarations.
type param struct {
	name string
	typ  ctype
}

type funcDef struct {
	name    string
	ret     ctype
	isVoid  bool
	params  []param
	body    []stmt
	line    int
	doesRet bool

	// Filled by codegen.
	frame     int
	makesCall bool
	syms      map[string]*symbol
}

type symbol struct {
	name     string
	typ      ctype
	isArray  bool
	arrayLen int
	offset   int // stack slot offset from SP
}

type program struct {
	funcs map[string]*funcDef
	order []string
}
