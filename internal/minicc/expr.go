package minicc

import "fmt"

// genExpr evaluates e into reg(depth), using reg(depth+1...) as scratch.
// Expressions never set processor flags except through genCond/genBool
// sites, which is what makes predicated commits sound.
func (g *codegen) genExpr(e expr, depth int) error {
	if depth > maxDepth {
		return fmt.Errorf("minicc: %s: expression too deep (more than %d live temporaries)", g.fn.name, maxDepth)
	}
	rd := reg(depth)

	if v, ok := g.constEval(e); ok {
		g.emit("ldr %s, =%d", rd, uint32(v))
		return nil
	}

	switch e := e.(type) {
	case *varRef:
		sym, err := g.resolve(e)
		if err != nil {
			return err
		}
		if sym.isArray {
			return g.emitAddConst(rd, "sp", sym.offset)
		}
		g.emit("ldr %s, [sp, #%d]", rd, sym.offset)
		return nil

	case *index:
		if err := g.genAddr(e, depth); err != nil {
			return err
		}
		g.emit("ldr %s, [%s]", rd, rd)
		return nil

	case *unary:
		switch e.op {
		case "-":
			if err := g.genExpr(e.x, depth); err != nil {
				return err
			}
			g.emit("rsb %s, %s, #0", rd, rd)
		case "~":
			if err := g.genExpr(e.x, depth); err != nil {
				return err
			}
			g.emit("mvn %s, %s", rd, rd)
		case "!":
			if err := g.genExpr(e.x, depth); err != nil {
				return err
			}
			g.emit("cmp %s, #0", rd)
			g.emit("mov %s, #0", rd)
			g.emit("moveq %s, #1", rd)
		default:
			return fmt.Errorf("minicc: bad unary %q", e.op)
		}
		return nil

	case *binary:
		return g.genBinary(e, depth)

	case *ternary:
		// Both arms evaluate; the condition (last, so its flags are live)
		// selects with one conditional move — a branch-free select.
		if err := g.genExpr(e.then, depth); err != nil {
			return err
		}
		if err := g.genExpr(e.els, depth+1); err != nil {
			return err
		}
		cond, err := g.genCond(e.cond, depth+2)
		if err != nil {
			return err
		}
		g.emit("mov%s %s, %s", invertCond(cond), rd, reg(depth+1))
		return nil

	case *call:
		if depth != 0 {
			return fmt.Errorf("minicc: %s: call to %q must not be nested inside a larger expression", g.fn.name, e.name)
		}
		fn, ok := g.prog.funcs[e.name]
		if !ok {
			return fmt.Errorf("minicc: %s: call to undefined function %q", g.fn.name, e.name)
		}
		if len(e.args) != len(fn.params) {
			return fmt.Errorf("minicc: %s: %q takes %d arguments, got %d", g.fn.name, e.name, len(fn.params), len(e.args))
		}
		for i, a := range e.args {
			if err := g.genExpr(a, i); err != nil {
				return err
			}
		}
		for i := range e.args {
			g.emit("mov r%d, %s", i, reg(i))
		}
		g.emit("bl %s", e.name)
		g.emit("mov %s, r0", rd)
		return nil
	}
	return fmt.Errorf("minicc: unhandled expression %T", e)
}

func (g *codegen) genBinary(e *binary, depth int) error {
	rd := reg(depth)

	if isCmpOp(e.op) || e.op == "&&" || e.op == "||" {
		return g.genBool(e, depth)
	}

	mnemonic := map[string]string{"+": "add", "-": "sub", "&": "and", "|": "orr", "^": "eor"}

	switch e.op {
	case "<<", ">>":
		if err := g.genExpr(e.l, depth); err != nil {
			return err
		}
		sh := "lsl"
		if e.op == ">>" {
			sh = "lsr"
			if !g.exprType(e.l).unsigned {
				sh = "asr"
			}
		}
		if v, ok := g.constEval(e.r); ok && v >= 0 && v <= 31 {
			if v != 0 {
				g.emit("mov %s, %s, %s #%d", rd, rd, sh, v)
			}
			return nil
		}
		if err := g.genExpr(e.r, depth+1); err != nil {
			return err
		}
		g.emit("mov %s, %s, %s %s", rd, rd, sh, reg(depth+1))
		return nil

	case "*":
		if err := g.genExpr(e.l, depth); err != nil {
			return err
		}
		if err := g.genExpr(e.r, depth+1); err != nil {
			return err
		}
		g.emit("mul %s, %s, %s", rd, rd, reg(depth+1))
		return nil

	case "+", "-":
		lp := g.exprType(e.l).ptr
		rp := g.exprType(e.r).ptr
		if rp && !lp {
			if e.op == "-" {
				return fmt.Errorf("minicc: %s: int - pointer", g.fn.name)
			}
			e.l, e.r = e.r, e.l // normalize ptr + int
			lp, rp = rp, lp
		}
		if err := g.genExpr(e.l, depth); err != nil {
			return err
		}
		if lp && !rp {
			// Pointer arithmetic scales by the 4-byte element size.
			if v, ok := g.constEval(e.r); ok && immOK(4*v) {
				g.emit("%s %s, %s, #%d", mnemonic[e.op], rd, rd, 4*v)
				return nil
			}
			if err := g.genExpr(e.r, depth+1); err != nil {
				return err
			}
			g.emit("%s %s, %s, %s, lsl #2", mnemonic[e.op], rd, rd, reg(depth+1))
			return nil
		}
		fallthrough

	case "&", "|", "^":
		if err := g.genExpr(e.l, depth); err != nil {
			return err
		}
		if v, ok := g.constEval(e.r); ok && immOK(v) {
			g.emit("%s %s, %s, #%d", mnemonic[e.op], rd, rd, int32(v))
			return nil
		}
		if err := g.genExpr(e.r, depth+1); err != nil {
			return err
		}
		g.emit("%s %s, %s, %s", mnemonic[e.op], rd, rd, reg(depth+1))
		return nil
	}
	return fmt.Errorf("minicc: unhandled operator %q", e.op)
}

// genBool evaluates a boolean expression to 0/1 in reg(depth),
// branch-free (conditional moves; && and || are bitwise over 0/1).
func (g *codegen) genBool(e expr, depth int) error {
	rd := reg(depth)
	if b, ok := e.(*binary); ok {
		switch {
		case isCmpOp(b.op):
			cond, err := g.genCond(b, depth)
			if err != nil {
				return err
			}
			g.emit("mov %s, #0", rd)
			g.emit("mov%s %s, #1", cond, rd)
			return nil
		case b.op == "&&" || b.op == "||":
			if err := g.genBool(b.l, depth); err != nil {
				return err
			}
			if err := g.genBool(b.r, depth+1); err != nil {
				return err
			}
			op := "and"
			if b.op == "||" {
				op = "orr"
			}
			g.emit("%s %s, %s, %s", op, rd, rd, reg(depth+1))
			return nil
		}
	}
	// Any other value: normalize to 0/1.
	if err := g.genExpr(e, depth); err != nil {
		return err
	}
	g.emit("cmp %s, #0", rd)
	g.emit("mov %s, #0", rd)
	g.emit("movne %s, #1", rd)
	return nil
}

// genAddr computes the byte address of an indexed element into reg(depth).
func (g *codegen) genAddr(e *index, depth int) error {
	rd := reg(depth)
	if err := g.genExpr(e.base, depth); err != nil {
		return err
	}
	if v, ok := g.constEval(e.idx); ok {
		return g.emitAddConst(rd, rd, int(4*v))
	}
	if err := g.genExpr(e.idx, depth+1); err != nil {
		return err
	}
	g.emit("add %s, %s, %s, lsl #2", rd, rd, reg(depth+1))
	return nil
}

func (g *codegen) emitAddConst(rd, rs string, v int) error {
	if v == 0 {
		if rd != rs {
			g.emit("mov %s, %s", rd, rs)
		}
		return nil
	}
	op := "add"
	if v < 0 {
		op, v = "sub", -v
	}
	g.emit("%s %s, %s, #%d", op, rd, rs, v)
	return nil
}

// exprType computes the (loose) static type of an expression.
func (g *codegen) exprType(e expr) ctype {
	switch e := e.(type) {
	case *numLit:
		return ctype{}
	case *varRef:
		if s, err := g.resolve(e); err == nil {
			t := s.typ
			if s.isArray {
				t.ptr = true
			}
			return t
		}
	case *index:
		t := g.exprType(e.base)
		t.ptr = false
		return t
	case *unary:
		if e.op == "!" {
			return ctype{}
		}
		return g.exprType(e.x)
	case *binary:
		if isCmpOp(e.op) || e.op == "&&" || e.op == "||" {
			return ctype{}
		}
		lt, rt := g.exprType(e.l), g.exprType(e.r)
		return ctype{unsigned: lt.unsigned || rt.unsigned, ptr: lt.ptr || rt.ptr}
	case *ternary:
		return g.exprType(e.then)
	case *call:
		if fn, ok := g.prog.funcs[e.name]; ok {
			return fn.ret
		}
	}
	return ctype{}
}

// constEval folds compile-time constants.
func (g *codegen) constEval(e expr) (int64, bool) {
	switch e := e.(type) {
	case *numLit:
		return e.val, true
	case *unary:
		v, ok := g.constEval(e.x)
		if !ok {
			return 0, false
		}
		switch e.op {
		case "-":
			return int64(int32(-uint32(v))), true
		case "~":
			return int64(int32(^uint32(v))), true
		case "!":
			if v == 0 {
				return 1, true
			}
			return 0, true
		}
	case *binary:
		l, ok1 := g.constEval(e.l)
		r, ok2 := g.constEval(e.r)
		if !ok1 || !ok2 {
			return 0, false
		}
		a, b := uint32(l), uint32(r)
		switch e.op {
		case "+":
			return int64(int32(a + b)), true
		case "-":
			return int64(int32(a - b)), true
		case "*":
			return int64(int32(a * b)), true
		case "&":
			return int64(int32(a & b)), true
		case "|":
			return int64(int32(a | b)), true
		case "^":
			return int64(int32(a ^ b)), true
		case "<<":
			if b < 32 {
				return int64(int32(a << b)), true
			}
		case ">>":
			if b < 32 {
				if g.exprType(e.l).unsigned {
					return int64(int32(a >> b)), true
				}
				return int64(int32(a) >> b), true
			}
		}
	}
	return 0, false
}
