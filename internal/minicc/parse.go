package minicc

import "fmt"

type parser struct {
	toks []token
	pos  int
}

func parse(src string) (*program, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog := &program{funcs: map[string]*funcDef{}}
	for !p.at(tokEOF, "") {
		fn, err := p.funcDef()
		if err != nil {
			return nil, err
		}
		if _, dup := prog.funcs[fn.name]; dup {
			return nil, fmt.Errorf("line %d: duplicate function %q", fn.line, fn.name)
		}
		prog.funcs[fn.name] = fn
		prog.order = append(prog.order, fn.name)
	}
	return prog, nil
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) at(kind tokKind, text string) bool {
	t := p.cur()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) accept(kind tokKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(text string) error {
	if p.accept(tokPunct, text) || p.accept(tokKeyword, text) {
		return nil
	}
	return fmt.Errorf("line %d: expected %q, found %q", p.cur().line, text, p.cur().text)
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("line %d: "+format, append([]any{p.cur().line}, args...)...)
}

// typeSpec parses [const] (int|unsigned [int]) [*].
func (p *parser) typeSpec() (ctype, bool, error) {
	p.accept(tokKeyword, "const")
	var t ctype
	switch {
	case p.accept(tokKeyword, "unsigned"):
		t.unsigned = true
		p.accept(tokKeyword, "int")
	case p.accept(tokKeyword, "int"):
	case p.accept(tokKeyword, "void"):
		return t, true, nil
	default:
		return t, false, p.errf("expected type, found %q", p.cur().text)
	}
	if p.accept(tokPunct, "*") {
		t.ptr = true
	}
	return t, false, nil
}

func (p *parser) funcDef() (*funcDef, error) {
	line := p.cur().line
	ret, isVoid, err := p.typeSpec()
	if err != nil {
		return nil, err
	}
	if !p.at(tokIdent, "") {
		return nil, p.errf("expected function name")
	}
	name := p.next().text
	fn := &funcDef{name: name, ret: ret, isVoid: isVoid, line: line}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	for !p.accept(tokPunct, ")") {
		if len(fn.params) > 0 {
			if err := p.expect(","); err != nil {
				return nil, err
			}
		}
		pt, pv, err := p.typeSpec()
		if err != nil {
			return nil, err
		}
		if pv {
			return nil, p.errf("void parameter")
		}
		if !p.at(tokIdent, "") {
			return nil, p.errf("expected parameter name")
		}
		fn.params = append(fn.params, param{name: p.next().text, typ: pt})
	}
	if len(fn.params) > 4 {
		return nil, fmt.Errorf("line %d: function %q has %d parameters; at most 4 fit in registers", line, name, len(fn.params))
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	fn.body = body
	return fn, nil
}

func (p *parser) block() ([]stmt, error) {
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	var out []stmt
	for !p.accept(tokPunct, "}") {
		if p.at(tokEOF, "") {
			return nil, p.errf("unexpected end of file in block")
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		if s != nil {
			out = append(out, s)
		}
	}
	return out, nil
}

func (p *parser) stmtOrBlock() ([]stmt, error) {
	if p.at(tokPunct, "{") {
		return p.block()
	}
	s, err := p.stmt()
	if err != nil {
		return nil, err
	}
	if s == nil {
		return nil, nil
	}
	return []stmt{s}, nil
}

func (p *parser) stmt() (stmt, error) {
	switch {
	case p.accept(tokPunct, ";"):
		return nil, nil
	case p.at(tokKeyword, "const"), p.at(tokKeyword, "int"), p.at(tokKeyword, "unsigned"):
		return p.declStmt()
	case p.accept(tokKeyword, "if"):
		return p.ifStmt()
	case p.accept(tokKeyword, "while"):
		if err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		body, err := p.stmtOrBlock()
		if err != nil {
			return nil, err
		}
		return &whileStmt{cond: cond, body: body}, nil
	case p.accept(tokKeyword, "for"):
		return p.forStmt()
	case p.accept(tokKeyword, "break"):
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		return &breakStmt{}, nil
	case p.accept(tokKeyword, "continue"):
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		return &continueStmt{}, nil
	case p.accept(tokKeyword, "return"):
		var x expr
		if !p.at(tokPunct, ";") {
			var err error
			x, err = p.expr()
			if err != nil {
				return nil, err
			}
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		return &returnStmt{x: x}, nil
	case p.at(tokPunct, "{"):
		// Nested block: flatten (MiniC scopes are function-wide).
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return &ifStmt{cond: &numLit{val: 1}, then: body}, nil
	default:
		return p.simpleStmt(true)
	}
}

// simpleStmt parses an assignment or expression statement; when consume
// is set the trailing semicolon is required.
func (p *parser) simpleStmt(consume bool) (stmt, error) {
	lhs, err := p.expr()
	if err != nil {
		return nil, err
	}
	var s stmt
	compound := map[string]string{
		"+=": "+", "-=": "-", "*=": "*", "&=": "&", "|=": "|", "^=": "^",
		"<<=": "<<", ">>=": ">>",
	}
	switch {
	case p.accept(tokPunct, "="):
		rhs, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := assignable(lhs, p); err != nil {
			return nil, err
		}
		s = &assignStmt{lhs: lhs, rhs: rhs}
	case compound[p.cur().text] != "" && p.cur().kind == tokPunct:
		op := compound[p.next().text]
		rhs, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := assignable(lhs, p); err != nil {
			return nil, err
		}
		// Desugar: lhs op= rhs  →  lhs = lhs op rhs. For indexed targets
		// the address expression is evaluated twice; MiniC expressions
		// have no side effects, so this is sound.
		s = &assignStmt{lhs: lhs, rhs: &binary{op: op, l: cloneExpr(lhs), r: rhs}}
	case p.at(tokPunct, "++") || p.at(tokPunct, "--"):
		op := "+"
		if p.next().text == "--" {
			op = "-"
		}
		if err := assignable(lhs, p); err != nil {
			return nil, err
		}
		s = &assignStmt{lhs: lhs, rhs: &binary{op: op, l: cloneExpr(lhs), r: &numLit{val: 1}}}
	default:
		s = &exprStmt{x: lhs}
	}
	if consume {
		if err := p.expect(";"); err != nil {
			return nil, err
		}
	}
	return s, nil
}

func (p *parser) declStmt() (stmt, error) {
	typ, isVoid, err := p.typeSpec()
	if err != nil {
		return nil, err
	}
	if isVoid {
		return nil, p.errf("void variable")
	}
	if !p.at(tokIdent, "") {
		return nil, p.errf("expected variable name")
	}
	name := p.next().text
	d := &declStmt{name: name, typ: typ}
	if p.accept(tokPunct, "[") {
		if !p.at(tokNum, "") {
			return nil, p.errf("array length must be a constant")
		}
		d.arrayLen = int(p.next().val)
		if d.arrayLen <= 0 {
			return nil, p.errf("bad array length %d", d.arrayLen)
		}
		if err := p.expect("]"); err != nil {
			return nil, err
		}
	}
	if p.accept(tokPunct, "=") {
		if p.accept(tokPunct, "{") {
			if d.arrayLen == 0 {
				return nil, p.errf("initializer list on a scalar")
			}
			for !p.accept(tokPunct, "}") {
				if len(d.initList) > 0 {
					if err := p.expect(","); err != nil {
						return nil, err
					}
					if p.accept(tokPunct, "}") { // trailing comma
						break
					}
				}
				e, err := p.expr()
				if err != nil {
					return nil, err
				}
				d.initList = append(d.initList, e)
			}
			if len(d.initList) > d.arrayLen {
				return nil, p.errf("%d initializers for array of %d", len(d.initList), d.arrayLen)
			}
		} else {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			d.init = e
		}
	}
	if err := p.expect(";"); err != nil {
		return nil, err
	}
	return d, nil
}

func (p *parser) ifStmt() (stmt, error) {
	line := p.cur().line
	if err := p.expect("("); err != nil {
		return nil, err
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	then, err := p.stmtOrBlock()
	if err != nil {
		return nil, err
	}
	var els []stmt
	if p.accept(tokKeyword, "else") {
		if p.accept(tokKeyword, "if") {
			nested, err := p.ifStmt()
			if err != nil {
				return nil, err
			}
			els = []stmt{nested}
		} else {
			els, err = p.stmtOrBlock()
			if err != nil {
				return nil, err
			}
		}
	}
	return &ifStmt{cond: cond, then: then, els: els, line: line}, nil
}

func (p *parser) forStmt() (stmt, error) {
	if err := p.expect("("); err != nil {
		return nil, err
	}
	var init stmt
	var err error
	if !p.at(tokPunct, ";") {
		if p.at(tokKeyword, "int") || p.at(tokKeyword, "unsigned") {
			init, err = p.declStmt()
			if err != nil {
				return nil, err
			}
		} else {
			init, err = p.simpleStmt(true)
			if err != nil {
				return nil, err
			}
		}
	} else {
		p.next()
	}
	var cond expr = &numLit{val: 1}
	if !p.at(tokPunct, ";") {
		cond, err = p.expr()
		if err != nil {
			return nil, err
		}
	}
	if err := p.expect(";"); err != nil {
		return nil, err
	}
	var post stmt
	if !p.at(tokPunct, ")") {
		post, err = p.simpleStmt(false)
		if err != nil {
			return nil, err
		}
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	body, err := p.stmtOrBlock()
	if err != nil {
		return nil, err
	}
	loop := &whileStmt{cond: cond, body: body, forPost: post}
	if init != nil {
		return &ifStmt{cond: &numLit{val: 1}, then: []stmt{init, loop}}, nil
	}
	return loop, nil
}

// Expression grammar with C precedence (no short-circuit: && and || are
// branch-free over 0/1 values).
var binPrec = map[string]int{
	"||": 1, "&&": 2, "|": 3, "^": 4, "&": 5,
	"==": 6, "!=": 6, "<": 7, ">": 7, "<=": 7, ">=": 7,
	"<<": 8, ">>": 8, "+": 9, "-": 9, "*": 10, "/": 10, "%": 10,
}

func (p *parser) expr() (expr, error) { return p.ternaryExpr() }

func (p *parser) ternaryExpr() (expr, error) {
	cond, err := p.binExpr(1)
	if err != nil {
		return nil, err
	}
	if !p.accept(tokPunct, "?") {
		return cond, nil
	}
	then, err := p.ternaryExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(":"); err != nil {
		return nil, err
	}
	els, err := p.ternaryExpr()
	if err != nil {
		return nil, err
	}
	return &ternary{cond: cond, then: then, els: els}, nil
}

func (p *parser) binExpr(minPrec int) (expr, error) {
	lhs, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		prec, ok := binPrec[t.text]
		if t.kind != tokPunct || !ok || prec < minPrec {
			return lhs, nil
		}
		if t.text == "/" || t.text == "%" {
			return nil, p.errf("division is not supported (no divider in the ISA; use shifts or CORDIC)")
		}
		p.next()
		rhs, err := p.binExpr(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &binary{op: t.text, l: lhs, r: rhs}
	}
}

func (p *parser) unaryExpr() (expr, error) {
	t := p.cur()
	if t.kind == tokPunct && (t.text == "!" || t.text == "~" || t.text == "-") {
		p.next()
		x, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return &unary{op: t.text, x: x}, nil
	}
	return p.postfixExpr()
}

func (p *parser) postfixExpr() (expr, error) {
	base, err := p.primaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept(tokPunct, "["):
			idx, err := p.expr()
			if err != nil {
				return nil, err
			}
			if err := p.expect("]"); err != nil {
				return nil, err
			}
			base = &index{base: base, idx: idx}
		default:
			return base, nil
		}
	}
}

func (p *parser) primaryExpr() (expr, error) {
	t := p.cur()
	switch {
	case t.kind == tokNum:
		p.next()
		return &numLit{val: t.val}, nil
	case t.kind == tokIdent:
		p.next()
		if p.accept(tokPunct, "(") {
			c := &call{name: t.text}
			for !p.accept(tokPunct, ")") {
				if len(c.args) > 0 {
					if err := p.expect(","); err != nil {
						return nil, err
					}
				}
				a, err := p.expr()
				if err != nil {
					return nil, err
				}
				c.args = append(c.args, a)
			}
			return c, nil
		}
		return &varRef{name: t.text}, nil
	case p.accept(tokPunct, "("):
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return x, nil
	}
	return nil, p.errf("unexpected token %q", t.text)
}

func assignable(lhs expr, p *parser) error {
	switch lhs.(type) {
	case *varRef, *index:
		return nil
	}
	return p.errf("left side of assignment must be a variable or element")
}

// cloneExpr deep-copies an expression so desugared forms do not share
// nodes (resolution mutates varRef bindings in place).
func cloneExpr(e expr) expr {
	switch e := e.(type) {
	case *numLit:
		c := *e
		return &c
	case *varRef:
		c := *e
		return &c
	case *index:
		return &index{base: cloneExpr(e.base), idx: cloneExpr(e.idx)}
	case *unary:
		return &unary{op: e.op, x: cloneExpr(e.x)}
	case *binary:
		return &binary{op: e.op, l: cloneExpr(e.l), r: cloneExpr(e.r), typ: e.typ}
	case *ternary:
		return &ternary{cond: cloneExpr(e.cond), then: cloneExpr(e.then), els: cloneExpr(e.els)}
	case *call:
		c := &call{name: e.name, fn: e.fn}
		for _, a := range e.args {
			c.args = append(c.args, cloneExpr(a))
		}
		return c
	}
	return e
}
