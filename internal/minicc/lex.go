// Package minicc compiles MiniC — a small C subset — to the garbled
// processor's assembly. It stands in for the paper's off-the-shelf
// gcc-arm: the one property ARM2GC actually needs from the compiler is
// that data-dependent conditionals become conditional (predicated)
// instructions rather than branches (Figure 5), keeping the program
// counter public; minicc performs exactly that if-conversion, plus
// branch-free lowering of comparisons, ternaries, and logical operators.
//
// Supported language: int/unsigned scalars, pointers and local arrays,
// functions with up to 4 parameters, arithmetic (+ - * & | ^ << >>),
// comparisons, && || ! ~ and ?: (all compiled branch-free over 0/1
// values, without C's short-circuit side-effect semantics), if/else,
// while, for, return, and local array initializers. Division, globals,
// and recursion-unsafe constructs are rejected at compile time.
package minicc

import (
	"fmt"
	"strconv"
	"unicode"
)

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNum
	tokPunct
	tokKeyword
)

type token struct {
	kind tokKind
	text string
	val  int64
	line int
}

var keywords = map[string]bool{
	"int": true, "unsigned": true, "void": true, "const": true,
	"if": true, "else": true, "while": true, "for": true, "return": true,
	"break": true, "continue": true,
}

type lexer struct {
	src  []rune
	pos  int
	line int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: []rune(src), line: 1}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case unicode.IsSpace(c):
			l.pos++
		case c == '/' && l.peek(1) == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.peek(1) == '*':
			l.pos += 2
			for l.pos < len(l.src) && !(l.src[l.pos] == '*' && l.peek(1) == '/') {
				if l.src[l.pos] == '\n' {
					l.line++
				}
				l.pos++
			}
			if l.pos >= len(l.src) {
				return nil, fmt.Errorf("line %d: unterminated comment", l.line)
			}
			l.pos += 2
		case unicode.IsLetter(c) || c == '_':
			start := l.pos
			for l.pos < len(l.src) && (unicode.IsLetter(l.src[l.pos]) || unicode.IsDigit(l.src[l.pos]) || l.src[l.pos] == '_') {
				l.pos++
			}
			text := string(l.src[start:l.pos])
			kind := tokIdent
			if keywords[text] {
				kind = tokKeyword
			}
			l.toks = append(l.toks, token{kind: kind, text: text, line: l.line})
		case unicode.IsDigit(c):
			start := l.pos
			for l.pos < len(l.src) && (unicode.IsDigit(l.src[l.pos]) || unicode.IsLetter(l.src[l.pos])) {
				l.pos++
			}
			text := string(l.src[start:l.pos])
			v, err := strconv.ParseInt(text, 0, 64)
			if err != nil {
				u, uerr := strconv.ParseUint(text, 0, 32)
				if uerr != nil {
					return nil, fmt.Errorf("line %d: bad number %q", l.line, text)
				}
				v = int64(u)
			}
			l.toks = append(l.toks, token{kind: tokNum, text: text, val: v, line: l.line})
		default:
			for _, p := range []string{"<<=", ">>=", "<<", ">>", "<=", ">=", "==", "!=",
				"&&", "||", "+=", "-=", "*=", "&=", "|=", "^=", "++", "--"} {
				if l.match(p) {
					l.toks = append(l.toks, token{kind: tokPunct, text: p, line: l.line})
					goto next
				}
			}
			if c == '{' || c == '}' || c == '(' || c == ')' || c == '[' || c == ']' ||
				c == ';' || c == ',' || c == '=' || c == '+' || c == '-' || c == '*' ||
				c == '&' || c == '|' || c == '^' || c == '<' || c == '>' || c == '!' ||
				c == '~' || c == '?' || c == ':' || c == '%' || c == '/' {
				l.toks = append(l.toks, token{kind: tokPunct, text: string(c), line: l.line})
				l.pos++
				goto next
			}
			return nil, fmt.Errorf("line %d: unexpected character %q", l.line, string(c))
		next:
		}
	}
	l.toks = append(l.toks, token{kind: tokEOF, line: l.line})
	return l.toks, nil
}

func (l *lexer) peek(n int) rune {
	if l.pos+n < len(l.src) {
		return l.src[l.pos+n]
	}
	return 0
}

func (l *lexer) match(s string) bool {
	for i, r := range s {
		if l.peek(i) != r {
			return false
		}
	}
	l.pos += len(s)
	return true
}
