package minicc

import "testing"

func TestScratchParam(t *testing.T) {
	src := `
void gc_main(const int *a, const int *b, int *c, int *s) {
	s[0] = a[0] + 5;
	s[1] = 77;
	c[0] = s[0] + s[1];
}
`
	out, _ := compileRun(t, src, []uint32{10}, []uint32{0}, 1)
	if out[0] != 92 {
		t.Errorf("scratch roundtrip = %d, want 92", out[0])
	}
}

func TestMinScanPattern(t *testing.T) {
	src := `
void gc_main(const int *a, const int *b, int *c) {
	int visited = a[1];
	unsigned best = 0xffffffff;
	int u = 0;
	for (int i = 0; i < 8; i = i + 1) {
		unsigned di = b[i];
		int isv = (visited >> i) & 1;
		int better = isv == 0 && di < best;
		best = better ? di : best;
		u = better ? i : u;
	}
	c[0] = u;
	c[1] = best;
}
`
	bob := []uint32{9, 4, 7, 3, 8, 2, 6, 5}
	// visited mask = 0b00100010 (nodes 1 and 5 visited)
	out, _ := compileRun(t, src, []uint32{0, 0x22}, bob, 2)
	// min over unvisited {9,7,3,8,6,5} -> 3 at index 3
	if out[0] != 3 || out[1] != 3 {
		t.Errorf("min scan = (u=%d, best=%d), want (3, 3)", out[0], out[1])
	}
}

func TestInitLoop(t *testing.T) {
	src := `
void gc_main(const int *a, const int *b, int *c) {
	for (int i = 0; i < 8; i = i + 1) {
		c[i] = 0x7fffffff;
	}
	c[0] = 0;
}
`
	out, _ := compileRun(t, src, []uint32{0}, []uint32{0}, 8)
	for i := 1; i < 8; i++ {
		if out[i] != 0x7fffffff {
			t.Fatalf("c[%d] = %#x, want 0x7fffffff", i, out[i])
		}
	}
	if out[0] != 0 {
		t.Fatalf("c[0] = %#x", out[0])
	}
}
