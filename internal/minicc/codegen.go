package minicc

import (
	"fmt"
	"strings"

	"arm2gc/internal/isa"
)

// Result is a compilation result: assembly text for the isa assembler plus
// any data-oblivious-ness warnings (secret-dependent branches that could
// not be if-converted make the program counter secret, the paper's
// Figure 6 hazard).
type Result struct {
	Asm      string
	Warnings []string
}

// Compile translates a MiniC translation unit into assembly. The program
// must define gc_main(const int *a, const int *b, int *c) (any
// int/pointer signature with up to 4 parameters is accepted).
func Compile(src string) (*Result, error) {
	prog, err := parse(src)
	if err != nil {
		return nil, err
	}
	if _, ok := prog.funcs["gc_main"]; !ok {
		return nil, fmt.Errorf("minicc: no gc_main function defined")
	}
	g := &codegen{prog: prog}
	for _, name := range prog.order {
		if err := g.genFunc(prog.funcs[name]); err != nil {
			return nil, err
		}
	}
	return &Result{Asm: g.out.String(), Warnings: g.warnings}, nil
}

const (
	maxDepth = 7 // expression registers r4..r11
	lrSaved  = 4
)

type codegen struct {
	prog     *program
	fn       *funcDef
	out      strings.Builder
	labels   int
	warnings []string
	loops    []loopLabels // innermost last
}

// loopLabels are the jump targets of an enclosing loop.
type loopLabels struct {
	brk, cont string
}

func (g *codegen) emit(format string, args ...any) {
	fmt.Fprintf(&g.out, "\t"+format+"\n", args...)
}

func (g *codegen) label(l string) { fmt.Fprintf(&g.out, "%s:\n", l) }

func (g *codegen) newLabel(hint string) string {
	g.labels++
	return fmt.Sprintf(".%s_%s_%d", g.fn.name, hint, g.labels)
}

func reg(depth int) string { return fmt.Sprintf("r%d", 4+depth) }

func callsAnything(body []stmt) bool {
	found := false
	var we exprWalker = func(e expr) {
		if _, ok := e.(*call); ok {
			found = true
		}
	}
	walkStmts(body, we)
	return found
}

type exprWalker func(e expr)

func walkStmts(body []stmt, f exprWalker) {
	for _, s := range body {
		switch s := s.(type) {
		case *declStmt:
			walkExpr(s.init, f)
			for _, e := range s.initList {
				walkExpr(e, f)
			}
		case *assignStmt:
			walkExpr(s.lhs, f)
			walkExpr(s.rhs, f)
		case *exprStmt:
			walkExpr(s.x, f)
		case *ifStmt:
			walkExpr(s.cond, f)
			walkStmts(s.then, f)
			walkStmts(s.els, f)
		case *whileStmt:
			walkExpr(s.cond, f)
			walkStmts(s.body, f)
			if s.forPost != nil {
				walkStmts([]stmt{s.forPost}, f)
			}
		case *returnStmt:
			walkExpr(s.x, f)
		}
	}
}

func walkExpr(e expr, f exprWalker) {
	if e == nil {
		return
	}
	f(e)
	switch e := e.(type) {
	case *index:
		walkExpr(e.base, f)
		walkExpr(e.idx, f)
	case *unary:
		walkExpr(e.x, f)
	case *binary:
		walkExpr(e.l, f)
		walkExpr(e.r, f)
	case *ternary:
		walkExpr(e.cond, f)
		walkExpr(e.then, f)
		walkExpr(e.els, f)
	case *call:
		for _, a := range e.args {
			walkExpr(a, f)
		}
	}
}

func (g *codegen) genFunc(fn *funcDef) error {
	g.fn = fn
	if err := resolveFunc(fn); err != nil {
		return err
	}
	g.label(fn.name)
	if fn.frame > 0 {
		g.emitAddSPConst(-fn.frame)
	}
	if fn.makesCall {
		g.emit("str lr, [sp, #%d]", fn.frame-lrSaved)
	}
	for i, p := range fn.params {
		g.emit("str r%d, [sp, #%d]", i, fn.syms[p.name].offset)
	}
	retLabel := g.newLabel("ret")
	if err := g.genStmts(fn.body, "", retLabel); err != nil {
		return err
	}
	g.label(retLabel)
	if fn.makesCall {
		g.emit("ldr lr, [sp, #%d]", fn.frame-lrSaved)
	}
	if fn.frame > 0 {
		g.emitAddSPConst(fn.frame)
	}
	g.emit("mov pc, lr")
	return nil
}

func (g *codegen) emitAddSPConst(delta int) {
	op := "add"
	if delta < 0 {
		op = "sub"
		delta = -delta
	}
	if _, _, ok := isa.EncodeImm(uint32(delta)); ok {
		g.emit("%s sp, sp, #%d", op, delta)
		return
	}
	g.emit("ldr r11, =%d", delta)
	g.emit("%s sp, sp, r11", op)
}

// genStmts compiles a statement list. pred is the active condition suffix
// ("" for unconditional); predicated regions only ever contain
// assignments, which evaluate unconditionally and commit conditionally.
func (g *codegen) genStmts(body []stmt, pred, retLabel string) error {
	for _, s := range body {
		if err := g.genStmt(s, pred, retLabel); err != nil {
			return err
		}
	}
	return nil
}

func (g *codegen) genStmt(s stmt, pred, retLabel string) error {
	switch s := s.(type) {
	case *declStmt:
		if pred != "" {
			return fmt.Errorf("minicc: %s: declaration inside predicated region", g.fn.name)
		}
		if s.init != nil {
			if err := g.genExpr(s.init, 0); err != nil {
				return err
			}
			g.emit("str r4, [sp, #%d]", s.sym.offset)
		}
		for i, e := range s.initList {
			if err := g.genExpr(e, 0); err != nil {
				return err
			}
			g.emit("str r4, [sp, #%d]", s.sym.offset+4*i)
		}
		return nil

	case *assignStmt:
		return g.genAssign(s, pred)

	case *exprStmt:
		if pred != "" {
			return fmt.Errorf("minicc: %s: expression statement inside predicated region", g.fn.name)
		}
		return g.genExpr(s.x, 0)

	case *returnStmt:
		if pred != "" {
			return fmt.Errorf("minicc: %s: return inside predicated region", g.fn.name)
		}
		if s.x != nil {
			if err := g.genExpr(s.x, 0); err != nil {
				return err
			}
			g.emit("mov r0, r4")
		}
		g.emit("b %s", retLabel)
		return nil

	case *ifStmt:
		return g.genIf(s, pred, retLabel)

	case *whileStmt:
		return g.genWhile(s, pred, retLabel)

	case *breakStmt:
		if pred != "" {
			return fmt.Errorf("minicc: %s: break inside predicated region", g.fn.name)
		}
		if len(g.loops) == 0 {
			return fmt.Errorf("minicc: %s: break outside a loop", g.fn.name)
		}
		g.emit("b %s", g.loops[len(g.loops)-1].brk)
		return nil

	case *continueStmt:
		if pred != "" {
			return fmt.Errorf("minicc: %s: continue inside predicated region", g.fn.name)
		}
		if len(g.loops) == 0 {
			return fmt.Errorf("minicc: %s: continue outside a loop", g.fn.name)
		}
		g.emit("b %s", g.loops[len(g.loops)-1].cont)
		return nil
	}
	return fmt.Errorf("minicc: unhandled statement %T", s)
}

func (g *codegen) genAssign(s *assignStmt, pred string) error {
	if err := g.genExpr(s.rhs, 0); err != nil {
		return err
	}
	switch lhs := s.lhs.(type) {
	case *varRef:
		sym, err := g.resolve(lhs)
		if err != nil {
			return err
		}
		if sym.isArray {
			return fmt.Errorf("minicc: %s: cannot assign to array %q", g.fn.name, sym.name)
		}
		g.emit("str%s r4, [sp, #%d]", pred, sym.offset)
	case *index:
		if err := g.genAddr(lhs, 1); err != nil {
			return err
		}
		g.emit("str%s r4, [r5]", pred)
	default:
		return fmt.Errorf("minicc: %s: bad assignment target", g.fn.name)
	}
	return nil
}

// genIf compiles an if statement, preferring if-conversion to conditional
// instructions (the paper's Figure 5); a branch on a potentially secret
// condition falls back to real branches with a warning.
func (g *codegen) genIf(s *ifStmt, pred, retLabel string) error {
	// A constant-1 condition is the parser's synthetic block wrapper.
	if n, ok := s.cond.(*numLit); ok && pred == "" {
		if n.val != 0 {
			return g.genStmts(s.then, "", retLabel)
		}
		return g.genStmts(s.els, "", retLabel)
	}

	if g.ifConvertible(s) && pred == "" {
		cond, err := g.genCond(s.cond, 0)
		if err != nil {
			return err
		}
		s.converted = true
		if err := g.genStmts(s.then, cond, retLabel); err != nil {
			return err
		}
		if len(s.els) > 0 {
			if err := g.genStmts(s.els, invertCond(cond), retLabel); err != nil {
				return err
			}
		}
		return nil
	}

	if pred != "" {
		return fmt.Errorf("minicc: %s line %d: nested if inside predicated region is not supported", g.fn.name, s.line)
	}

	// Branch form: only safe for public conditions (loop bookkeeping).
	g.warnings = append(g.warnings, fmt.Sprintf(
		"%s line %d: if could not be converted to conditional instructions; a secret condition here makes the program counter secret",
		g.fn.name, s.line))
	cond, err := g.genCond(s.cond, 0)
	if err != nil {
		return err
	}
	elseL := g.newLabel("else")
	endL := g.newLabel("endif")
	g.emit("b%s %s", invertCond(cond), elseL)
	if err := g.genStmts(s.then, "", retLabel); err != nil {
		return err
	}
	if len(s.els) > 0 {
		g.emit("b %s", endL)
	}
	g.label(elseL)
	if len(s.els) > 0 {
		if err := g.genStmts(s.els, "", retLabel); err != nil {
			return err
		}
		g.label(endL)
	}
	return nil
}

func (g *codegen) genWhile(s *whileStmt, pred, retLabel string) error {
	if pred != "" {
		return fmt.Errorf("minicc: %s: loop inside predicated region", g.fn.name)
	}
	top := g.newLabel("loop")
	end := g.newLabel("endloop")
	cont := g.newLabel("cont")
	g.label(top)
	if n, ok := s.cond.(*numLit); ok && n.val != 0 {
		// while(1): no test.
	} else {
		cond, err := g.genCond(s.cond, 0)
		if err != nil {
			return err
		}
		g.emit("b%s %s", invertCond(cond), end)
	}
	g.loops = append(g.loops, loopLabels{brk: end, cont: cont})
	err := g.genStmts(s.body, "", retLabel)
	g.loops = g.loops[:len(g.loops)-1]
	if err != nil {
		return err
	}
	g.label(cont)
	if s.forPost != nil {
		if err := g.genStmt(s.forPost, "", retLabel); err != nil {
			return err
		}
	}
	g.emit("b %s", top)
	g.label(end)
	return nil
}

// ifConvertible reports whether the if statement can be predicated. The
// condition may be anything (genCond evaluates it branch-free and sets
// the flags last — even && chains and nested comparisons); only the
// bodies are constrained to flag-safe assignments, whose right-hand sides
// must not disturb the flags between the test and the conditional
// commits.
func (g *codegen) ifConvertible(s *ifStmt) bool {
	if exprHasCall(s.cond) {
		return false
	}
	ok := func(body []stmt) bool {
		for _, st := range body {
			a, is := st.(*assignStmt)
			if !is || !g.flagSafe(a.rhs) {
				return false
			}
			if ix, isIx := a.lhs.(*index); isIx && !g.flagSafe(ix.base) || isIx && !g.flagSafe(ix.idx) {
				return false
			}
		}
		return true
	}
	return ok(s.then) && ok(s.els)
}

// flagSafe: evaluating the expression emits no flag-setting instructions.
func (g *codegen) flagSafe(e expr) bool {
	safe := true
	walkExpr(e, func(x expr) {
		switch x := x.(type) {
		case *binary:
			if isCmpOp(x.op) || x.op == "&&" || x.op == "||" {
				safe = false
			}
		case *unary:
			if x.op == "!" {
				safe = false
			}
		case *ternary, *call:
			safe = false
		}
	})
	return safe
}

func isCmpOp(op string) bool {
	switch op {
	case "==", "!=", "<", "<=", ">", ">=":
		return true
	}
	return false
}

// genCond evaluates a condition at the given expression depth, leaving the
// flags set, and returns the condition suffix under which it holds.
func (g *codegen) genCond(e expr, depth int) (string, error) {
	if b, ok := e.(*binary); ok && isCmpOp(b.op) {
		if err := g.genExpr(b.l, depth); err != nil {
			return "", err
		}
		if v, isConst := g.constEval(b.r); isConst && immOK(v) {
			g.emit("cmp %s, #%d", reg(depth), int32(v))
		} else {
			if err := g.genExpr(b.r, depth+1); err != nil {
				return "", err
			}
			g.emit("cmp %s, %s", reg(depth), reg(depth+1))
		}
		unsigned := g.exprType(b.l).unsigned || g.exprType(b.r).unsigned
		return cmpCond(b.op, unsigned), nil
	}
	// Truthiness of a value.
	if err := g.genExpr(e, depth); err != nil {
		return "", err
	}
	g.emit("cmp %s, #0", reg(depth))
	return "ne", nil
}

func cmpCond(op string, unsigned bool) string {
	if unsigned {
		switch op {
		case "<":
			return "lo"
		case "<=":
			return "ls"
		case ">":
			return "hi"
		case ">=":
			return "hs"
		}
	}
	switch op {
	case "==":
		return "eq"
	case "!=":
		return "ne"
	case "<":
		return "lt"
	case "<=":
		return "le"
	case ">":
		return "gt"
	case ">=":
		return "ge"
	}
	panic("minicc: bad comparison " + op)
}

var condInverse = map[string]string{
	"eq": "ne", "ne": "eq", "lt": "ge", "ge": "lt", "gt": "le", "le": "gt",
	"lo": "hs", "hs": "lo", "hi": "ls", "ls": "hi",
}

func invertCond(c string) string {
	inv, ok := condInverse[c]
	if !ok {
		panic("minicc: cannot invert condition " + c)
	}
	return inv
}

func (g *codegen) resolve(v *varRef) (*symbol, error) {
	if v.sym == nil {
		return nil, fmt.Errorf("minicc: %s: unresolved variable %q", g.fn.name, v.name)
	}
	return v.sym, nil
}

func immOK(v int64) bool {
	if _, _, ok := isa.EncodeImm(uint32(v)); ok {
		return true
	}
	_, _, ok := isa.EncodeImm(uint32(-v))
	return ok
}
