package core

import (
	"bytes"
	"context"
	"math/rand"
	"testing"

	"arm2gc/internal/circuit"
	"arm2gc/internal/circuit/circtest"
	"arm2gc/internal/sim"
)

// recordCycles runs a classified garble run like garbleCycles while
// compiling the trace, returning both the observed frames and the trace.
func recordCycles(t *testing.T, c *circuit.Circuit, pub []bool, cycles, workers int, rndSeed int64) (garbleRun, *Trace) {
	t.Helper()
	s := NewScheduler(c, Seed{1, 2, 3}, pub)
	if err := s.SetWorkers(workers); err != nil {
		t.Fatalf("SetWorkers(%d): %v", workers, err)
	}
	g := NewGarbler(s, rand.New(rand.NewSource(rndSeed)))
	rec := NewTraceRecorder(s)
	var run garbleRun
	for cyc := 1; cyc <= cycles; cyc++ {
		cs := s.Classify(cyc == cycles)
		rec.RecordCycle(cs, false)
		run.stats = append(run.stats, cs)
		run.frames = append(run.frames, g.GarbleCycleAppend(nil))
		g.CopyDFFs()
		s.Commit()
	}
	return run, rec.Finish(false)
}

// TestTraceReplayByteIdentical is the tentpole's correctness anchor in
// core: a trace recorded under any worker count, replayed with the same
// label randomness, must emit exactly the bytes the classified garbler
// emits, cycle for cycle — and report the classified run's statistics.
func TestTraceReplayByteIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 10; trial++ {
		c, _, _ := circtest.Random(rng, 100+rng.Intn(900), 5+rng.Intn(30))
		pub := circtest.RandBits(rng, c.PublicBits)
		const cycles = 6
		for _, workers := range []int{1, 4} {
			classified, tr := recordCycles(t, c, pub, cycles, workers, 4321)
			if err := tr.Validate(cycles); err != nil {
				t.Fatalf("trial %d: Validate: %v", trial, err)
			}
			g := NewReplayGarbler(c, rand.New(rand.NewSource(4321)))
			for cyc := 1; cyc <= cycles; cyc++ {
				ct := tr.Cycle(cyc)
				if ct.Stats != classified.stats[cyc-1] {
					t.Fatalf("trial %d, workers %d: cycle %d stats differ: trace %+v classified %+v",
						trial, workers, cyc, ct.Stats, classified.stats[cyc-1])
				}
				frame := g.GarbleCycleTraceAppend(ct, cyc, nil)
				if !bytes.Equal(frame, classified.frames[cyc-1]) {
					t.Fatalf("trial %d, workers %d: cycle %d replay bytes differ (%d vs %d bytes)",
						trial, workers, cyc, len(frame), len(classified.frames[cyc-1]))
				}
				if ct.NumTables()*32 != len(frame) {
					t.Fatalf("trial %d: cycle %d NumTables %d does not match %d frame bytes",
						trial, cyc, ct.NumTables(), len(frame))
				}
				g.CopyDFFs()
			}
		}
	}
}

// TestRunLocalTraceRecordReplay records a trace through RunLocal and
// replays it under different label randomness and a different fingerprint
// seed: outputs, statistics and memory accounting must line up — the
// cross-session reuse the Engine's trace cache is built on.
func TestRunLocalTraceRecordReplay(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	ctx := context.Background()
	for trial := 0; trial < 8; trial++ {
		c, aBits, bBits := circtest.Random(rng, 80+rng.Intn(600), 3+rng.Intn(20))
		pub := circtest.RandBits(rng, c.PublicBits)
		in := sim.Inputs{
			Public: pub,
			Alice:  circtest.RandBits(rng, aBits),
			Bob:    circtest.RandBits(rng, bBits),
		}
		const cycles = 5
		recorded, err := RunLocal(ctx, c, in, RunOpts{
			Cycles: cycles, Seed: Seed{9}, Rand: rand.New(rand.NewSource(1)), Record: true,
		})
		if err != nil {
			t.Fatalf("trial %d: record run: %v", trial, err)
		}
		if recorded.Trace == nil {
			t.Fatalf("trial %d: Record set but no trace returned", trial)
		}
		if recorded.Trace.MemoryBytes() <= 0 {
			t.Fatalf("trial %d: trace reports %d bytes", trial, recorded.Trace.MemoryBytes())
		}
		if got := recorded.Trace.TotalStats(); got != recorded.Stats {
			t.Fatalf("trial %d: trace stats %+v, run stats %+v", trial, got, recorded.Stats)
		}
		replayed, err := RunLocal(ctx, c, in, RunOpts{
			Cycles: cycles, Seed: Seed{42}, Rand: rand.New(rand.NewSource(2)), Trace: recorded.Trace,
		})
		if err != nil {
			t.Fatalf("trial %d: replay run: %v", trial, err)
		}
		if replayed.Stats != recorded.Stats {
			t.Fatalf("trial %d: replay stats %+v, recorded %+v", trial, replayed.Stats, recorded.Stats)
		}
		if len(replayed.Outputs) != len(recorded.Outputs) {
			t.Fatalf("trial %d: replay %d outputs, recorded %d", trial, len(replayed.Outputs), len(recorded.Outputs))
		}
		for i := range recorded.Outputs {
			if replayed.Outputs[i] != recorded.Outputs[i] {
				t.Fatalf("trial %d: output %d differs under replay", trial, i)
			}
		}
	}
}

// TestTraceValidate pins the budget guard: a trace only replays under the
// exact cycle budget it was recorded with.
func TestTraceValidate(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	c, _, _ := circtest.Random(rng, 200, 8)
	pub := circtest.RandBits(rng, c.PublicBits)
	_, tr := recordCycles(t, c, pub, 4, 1, 1)
	if err := tr.Validate(4); err != nil {
		t.Fatalf("Validate(4): %v", err)
	}
	if err := tr.Validate(3); err == nil {
		t.Fatalf("Validate(3) accepted a 4-cycle non-halted trace")
	}
	if err := tr.Validate(5); err == nil {
		t.Fatalf("Validate(5) accepted a trace recorded under budget 4")
	}
	if err := (&Trace{}).Validate(1); err == nil {
		t.Fatalf("Validate accepted an empty trace")
	}
}

// TestSetWorkersAfterClassify pins the satellite fix: the worker count is
// fixed once classification starts.
func TestSetWorkersAfterClassify(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c, _, _ := circtest.Random(rng, 150, 4)
	pub := circtest.RandBits(rng, c.PublicBits)
	s := NewScheduler(c, Seed{}, pub)
	if err := s.SetWorkers(2); err != nil {
		t.Fatalf("SetWorkers before Classify: %v", err)
	}
	s.Classify(false)
	if err := s.SetWorkers(4); err == nil {
		t.Fatalf("SetWorkers after Classify succeeded; want error")
	}
	if got := s.Workers(); got != 2 {
		t.Fatalf("failed SetWorkers changed the worker count to %d", got)
	}
}

// TestRunLocalTraceRecordExclusive pins the Record×Trace guard.
func TestRunLocalTraceRecordExclusive(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	c, aBits, bBits := circtest.Random(rng, 120, 4)
	in := sim.Inputs{
		Public: circtest.RandBits(rng, c.PublicBits),
		Alice:  circtest.RandBits(rng, aBits),
		Bob:    circtest.RandBits(rng, bBits),
	}
	res, err := RunLocal(context.Background(), c, in, RunOpts{Cycles: 2, Record: true})
	if err != nil {
		t.Fatalf("record run: %v", err)
	}
	if _, err := RunLocal(context.Background(), c, in, RunOpts{Cycles: 2, Record: true, Trace: res.Trace}); err == nil {
		t.Fatalf("Record together with Trace succeeded; want error")
	}
}
