package core

import (
	"runtime"
	"sync/atomic"

	"arm2gc/internal/circuit"
)

// MaxWorkers bounds a scheduler's worker count; values above it are
// clamped. It exists so a negotiated remote proposal cannot ask a server
// to spawn an absurd number of goroutines per cycle.
const MaxWorkers = 256

// wideLevelMin is the level width (in gates) above which a level is worth
// splitting across workers. Narrower levels cost less than a barrier
// crossing, so consecutive narrow levels are merged into one serial
// segment executed by worker 0 while the others wait at the segment
// barrier — the per-cycle synchronization count is the number of segments,
// not the circuit depth.
const wideLevelMin = 64

// minParChunk is the smallest per-worker slice of a wide level. Chunks are
// contiguous gate ranges, so adjacent workers share at most one cache line
// of the byte-indexed per-gate arrays per boundary.
const minParChunk = 64

// segment is one barrier-separated step of a level walk: either a single
// wide level split across the workers, or a run of consecutive narrow
// levels walked serially (in (level, index) order, itself topological).
type segment struct {
	lo, hi   int32 // range into LevelPartition.Order
	parallel bool
}

// planSegments folds a level partition into the segment plan.
func planSegments(p *circuit.LevelPartition) []segment {
	var segs []segment
	serialLo := int32(-1)
	flush := func(hi int32) {
		if serialLo >= 0 && hi > serialLo {
			segs = append(segs, segment{lo: serialLo, hi: hi})
		}
		serialLo = -1
	}
	for l := 0; l < p.Depth; l++ {
		lo, hi := p.LevelOff[l], p.LevelOff[l+1]
		if hi-lo >= wideLevelMin {
			flush(lo)
			segs = append(segs, segment{lo: lo, hi: hi, parallel: true})
			continue
		}
		if serialLo < 0 {
			serialLo = lo
		}
	}
	if p.Depth > 0 {
		flush(p.LevelOff[p.Depth])
	}
	return segs
}

// spinBarrier is a reusable generation-counting barrier for n participants.
// Waiters spin briefly and then yield, so it stays correct (if slower) when
// GOMAXPROCS is smaller than the worker count. The atomic read-modify-write
// chain on arr plus the release/acquire pair on gen give every participant
// a happens-before edge over every other participant's pre-barrier writes —
// the property the level walk's cross-level reads rely on, and what keeps
// the race detector satisfied without any lock in the per-level hot path.
type spinBarrier struct {
	n   int32
	arr atomic.Int32
	gen atomic.Uint32
}

func (b *spinBarrier) wait() {
	g := b.gen.Load()
	if b.arr.Add(1) == b.n {
		b.arr.Store(0) // reset before release: next crossing starts clean
		b.gen.Add(1)
		return
	}
	for i := 0; b.gen.Load() == g; i++ {
		if i > 32 {
			runtime.Gosched()
		}
	}
}

// forkWorkers runs body(id) on s.workers goroutines (the caller is worker
// 0) and returns once all have finished, with the workers' writes visible
// to the caller. body must end at a point where every worker agrees the
// pass is over; the trailing barrier here is that final rendezvous.
//
// Workers are spawned per pass rather than parked in a persistent pool: a
// goroutine spawn is well under a microsecond against per-cycle passes of
// hundreds, and it keeps the Scheduler free of a Close/lifecycle
// obligation. Likewise, idle workers spin (with Gosched) through serial
// segments instead of parking. If profiles on very wide machines ever
// show this overhead, a persistent pool parked on a condition variable is
// the next step (see ROADMAP).
func (s *Scheduler) forkWorkers(body func(id int)) {
	for id := 1; id < s.workers; id++ {
		go func(id int) {
			body(id)
			s.bar.wait()
		}(id)
	}
	body(0)
	s.bar.wait()
}

// walkLevels executes fn over the circuit in level order as worker id of
// the current pass: parallel segments are split into contiguous chunks
// across the workers, serial segments run whole on worker 0, and a barrier
// separates segments so fn's reads of earlier levels' outputs are ordered
// after their writes. fn must write only per-gate slots of the gates it is
// handed.
func (s *Scheduler) walkLevels(id int, fn func(gates []int32)) {
	order := s.levels.Order
	nw := int32(s.workers)
	for _, seg := range s.segs {
		if seg.parallel {
			n := seg.hi - seg.lo
			per := (n + nw - 1) / nw
			if per < minParChunk {
				per = minParChunk
			}
			lo := seg.lo + int32(id)*per
			if lo < seg.hi {
				hi := lo + per
				if hi > seg.hi {
					hi = seg.hi
				}
				fn(order[lo:hi])
			}
		} else if id == 0 {
			fn(order[seg.lo:seg.hi])
		}
		s.bar.wait()
	}
}

// chunkRange splits the gate index space into s.workers contiguous chunks
// for the order-independent accounting pass; chunk id covers [lo, hi).
func (s *Scheduler) chunkRange(id int) (lo, hi int) {
	n := len(s.C.Gates)
	per := (n + s.workers - 1) / s.workers
	lo = id * per
	hi = lo + per
	if lo > n {
		lo = n
	}
	if hi > n {
		hi = n
	}
	return lo, hi
}
