package core

import (
	"context"
	"fmt"
	"testing"

	"arm2gc/internal/build"
	"arm2gc/internal/circuit"
	"arm2gc/internal/sim"
)

// TestCategoryTableExhaustive checks the SkipGate category tables (paper
// §3.1) systematically: for every 2-input operator and every combination
// of input states — public 0/1, fresh secret, identical secret, inverted
// secret — the gate's decoded output matches plaintext simulation for all
// concrete input assignments, and the gate garbles a table only in
// category iv.
func TestCategoryTableExhaustive(t *testing.T) {
	ops := []circuit.Op{circuit.AND, circuit.OR, circuit.NAND, circuit.NOR, circuit.XOR, circuit.XNOR}

	// Input-state generators: build an expression over the secret inputs
	// s1, s2 (with a public port p available) for each state kind.
	type inputKind int
	const (
		pub0 inputKind = iota
		pub1
		fresh1 // independent secret #1 (s1 through an alias mux)
		fresh2 // independent secret #2
		same1  // another wire carrying secret #1's label
		inv1   // a wire carrying the inverse of secret #1's label
	)
	kinds := []inputKind{pub0, pub1, fresh1, fresh2, same1, inv1}
	names := map[inputKind]string{
		pub0: "0", pub1: "1", fresh1: "s1", fresh2: "s2", same1: "s1'", inv1: "¬s1'",
	}

	for _, op := range ops {
		for _, ka := range kinds {
			for _, kb := range kinds {
				name := fmt.Sprintf("%v(%s,%s)", op, names[ka], names[kb])
				b := build.New("cat")
				p := b.Input(circuit.Public, "p", 1)[0]
				s1 := b.Input(circuit.Alice, "s1", 1)[0]
				s2 := b.Input(circuit.Bob, "s2", 1)[0]
				mkIn := func(k inputKind) build.W {
					switch k {
					case pub0:
						panic("pub0 handled by the caller (¬p with p=1)")
					case pub1:
						return p
					case fresh1:
						return b.Mux(p, s1, s2) // p=1 at runtime: s1's label
					case fresh2:
						return b.Mux(p, s2, s1)
					case same1:
						return b.Mux(p, b.Mux(p, s1, s2), s2) // also s1's label
					case inv1:
						return b.Not(b.Mux(p, s1, s2))
					}
					panic("bad kind")
				}
				// pub0 needs a runtime-zero public wire distinct from the
				// constant: use NOT p with p=1.
				var aW, bW build.W
				if ka == pub0 {
					aW = b.Not(p)
				} else {
					aW = mkIn(ka)
				}
				if kb == pub0 {
					bW = b.Not(p)
				} else {
					bW = mkIn(kb)
				}
				var out build.W
				switch op {
				case circuit.AND:
					out = b.And(aW, bW)
				case circuit.OR:
					out = b.Or(aW, bW)
				case circuit.NAND:
					out = b.Nand(aW, bW)
				case circuit.NOR:
					out = b.Nor(aW, bW)
				case circuit.XOR:
					out = b.Xor(aW, bW)
				case circuit.XNOR:
					out = b.Xnor(aW, bW)
				}
				b.Output("o", build.Bus{out})
				c, err := b.Compile()
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}

				catIV := bothSecret(int(ka)) && bothSecret(int(kb)) && independent(int(ka), int(kb))
				for v1 := 0; v1 < 2; v1++ {
					for v2 := 0; v2 < 2; v2++ {
						in := sim.Inputs{
							Public: []bool{true},
							Alice:  []bool{v1 == 1},
							Bob:    []bool{v2 == 1},
						}
						want := sim.Run(c, in, 1)
						res, err := RunLocal(context.Background(), c, in, RunOpts{Cycles: 1})
						if err != nil {
							t.Fatalf("%s: %v", name, err)
						}
						if res.Outputs[0] != want[0] {
							t.Fatalf("%s with s1=%d s2=%d: got %v, want %v",
								name, v1, v2, res.Outputs[0], want[0])
						}
						// Category check: only cat-iv non-XOR gates on
						// unrelated secrets may ship tables.
						free := op == circuit.XOR || op == circuit.XNOR
						if !catIV || free {
							if res.Stats.Total.Garbled != 0 {
								t.Fatalf("%s: garbled %d tables, want 0 (not category iv non-XOR)",
									name, res.Stats.Total.Garbled)
							}
						} else if res.Stats.Total.Garbled != 1 {
							t.Fatalf("%s: garbled %d tables, want exactly 1",
								name, res.Stats.Total.Garbled)
						}
					}
				}
			}
		}
	}
}

func bothSecret(k int) bool { return k >= 2 } // fresh1, fresh2, same1, inv1

func independent(ka, kb int) bool {
	// fresh2 paired with any s1-derived wire is independent; two
	// s1-derived wires are related (identical or inverted).
	aIsS1 := ka == 2 || ka == 4 || ka == 5
	bIsS1 := kb == 2 || kb == 4 || kb == 5
	return !(aIsS1 && bIsS1) && !(ka == 3 && kb == 3)
}
