package core

import (
	"fmt"
	"math/rand"
	"testing"

	"arm2gc/internal/circuit"
	"arm2gc/internal/circuit/circtest"
	"arm2gc/internal/sim"
)

// TestWireLevelEquivalence checks, wire by wire and cycle by cycle, that
// SkipGate's classification and labels agree with the plaintext simulator:
// public wires carry the true value, and every materialized secret label
// decodes (against Alice's pair) to the true value. This is much stronger
// than comparing outputs: it catches miscategorized gates whose errors
// would cancel downstream.
func TestWireLevelEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(1701))
	for trial := 0; trial < 40; trial++ {
		c, nA, nB := circtest.Random(rng, 90, 12)
		in := sim.Inputs{
			Alice:  circtest.RandBits(rng, nA),
			Bob:    circtest.RandBits(rng, nB),
			Public: circtest.RandBits(rng, c.PublicBits),
		}
		diagnose(t, c, in, 1+rng.Intn(5), rng)
	}
}

// diagnose compares every wire's plaintext value against the SkipGate
// state/decoded label, cycle by cycle.
func diagnose(t *testing.T, c *circuit.Circuit, in sim.Inputs, cycles int, rng *rand.Rand) {
	t.Helper()
	s := NewScheduler(c, Seed{}, in.Public)
	g := NewGarbler(s, gcRand{r: rng})
	e := NewEvaluator(s)
	pairs := g.BobPairs()
	chosen := make([]FP, len(pairs))
	for i := range pairs {
		if in.Bit(circuit.Bob, i) {
			chosen[i] = pairs[i][1]
		} else {
			chosen[i] = pairs[i][0]
		}
	}
	if err := e.SetInputs(g.AliceActiveLabels(in.Alice), chosen); err != nil {
		t.Fatal(err)
	}
	ps := sim.New(c, in)
	for cyc := 1; cyc <= cycles; cyc++ {
		s.Classify(cyc == cycles)
		ts := g.GarbleCycle(nil)
		if _, err := e.EvalCycle(ts); err != nil {
			t.Fatal(err)
		}
		ps.Step()
		for w := 0; w < c.NumWires(); w++ {
			wire := circuit.Wire(w)
			if c.WireDFF(wire) >= 0 {
				// Q wires: plaintext already post-copy, labels pre-copy;
				// their consistency is established transitively through D.
				continue
			}
			truth := ps.Wire(wire)
			if v, pub := s.WireState(wire); pub {
				if v != truth {
					gi := c.WireGate(wire)
					var detail string
					if gi >= 0 {
						g := c.Gates[gi]
						detail = describeGate(t, s, ps, c, gi)
						_ = g
					}
					t.Fatalf("cycle %d wire %d: public %v, truth %v\n%s", cyc, w, v, truth, detail)
				}
				continue
			}
			gi := c.WireGate(wire)
			if gi >= 0 && s.fan[gi] <= 0 {
				continue // dead: label intentionally not materialized
			}
			x := e.Active(wire)
			switch x {
			case g.X0(wire):
				if truth {
					t.Fatalf("cycle %d wire %d (act %d): decodes 0, truth 1", cyc, w, actOf(s, gi))
				}
			case g.X0(wire).Xor(g.R):
				if !truth {
					t.Fatalf("cycle %d wire %d (act %d): decodes 1, truth 0", cyc, w, actOf(s, gi))
				}
			default:
				t.Fatalf("cycle %d wire %d (act %d): label matches neither X0 nor X1", cyc, w, actOf(s, gi))
			}
		}
		g.CopyDFFs()
		e.CopyDFFs()
		s.Commit()
	}
}

func describeGate(t *testing.T, s *Scheduler, ps *sim.Sim, c *circuit.Circuit, gi int) string {
	g := c.Gates[gi]
	desc := func(w circuit.Wire) string {
		v, pub := s.WireState(w)
		return fmt.Sprintf("w%d[st=%v/%v truth=%v fp=%v]", w, pub, v, ps.Wire(w), s.fp[w])
	}
	out := fmt.Sprintf("gate %d %v act=%d fan=%d\n  A=%s\n  B=%s", gi, g.Op, s.act[gi], s.fan[gi], desc(g.A), desc(g.B))
	if g.Op == circuit.MUX {
		out += "\n  S=" + desc(g.S)
	}
	return out
}

func actOf(s *Scheduler, gi int) int {
	if gi < 0 {
		return -1
	}
	return int(s.act[gi])
}

// gcRand adapts math/rand to io.Reader for deterministic label draws.
type gcRand struct{ r *rand.Rand }

func (g gcRand) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = byte(g.r.Intn(256))
	}
	return len(p), nil
}
