package core

import (
	"fmt"
	"io"

	"arm2gc/internal/circuit"
	"arm2gc/internal/gc"
)

// Classification-trace reuse: the SkipGate schedule depends only on public
// data — the circuit, the public input p and the cycle budget — so it is
// identical for every session of the same program. A Trace records one
// classified run's per-cycle decisions in a compiled, executor-ready form;
// later sessions replay it through Garbler.GarbleCycleTrace /
// Evaluator.EvalCycleTrace, skipping Scheduler.Classify entirely and
// collapsing the hot path to fixed-key-AES garbling.
//
// Why replay is sound across sessions: classification consumes labels only
// through fingerprint equality (see fingerprint.go), and fingerprints
// mirror the symbolic XOR algebra of the labels themselves. Two wires'
// fingerprints collide exactly when their symbolic label expressions are
// equal — a seed-independent fact — except with the ~2^-128 AES collision
// probability that intra-session correctness already assumes. Replaying a
// trace under a different session seed therefore adds no new failure mode.

// Copy-op codes of a CycleTrace. The garbler applies the Inv variants by
// XORing its global delta R into the copied label; the evaluator, holding
// active labels, ignores the inversion (an inverted wire carries the same
// label with swapped meaning), exactly as in the classified executors.
const (
	topCopy    uint8 = iota // out = src
	topCopyInv              // garbler: out = src ⊕ R; evaluator: out = src
	topXor                  // out = a ⊕ b
	topXorInv               // garbler: out = a ⊕ b ⊕ R; evaluator: out = a ⊕ b
)

// Garbled-op kinds of a CycleTrace. tgGate carries its circuit.Op in the
// parallel op array; the MUX-derived kinds bake the shape garbleMux /
// evalMux would re-derive from wire states into the trace, so replay never
// consults a scheduler.
const (
	tgGate   uint8 = iota // binary AND-class gate; op array holds the circuit.Op
	tgMux                 // both data inputs secret: atomic A ⊕ AND(S, A⊕B)
	tgAndFF               // out = S ∧ X        (MUX with public-0 A input)
	tgAndFTT              // out = ¬(S ∧ ¬X)    (MUX with public-1 A input)
	tgAndTFF              // out = ¬S ∧ X       (MUX with public-0 B input)
	tgAndTTT              // out = ¬(¬S ∧ ¬X)   (MUX with public-1 B input)
)

// traceSeg is a maximal run of copy ops followed by a run of garbled ops,
// in original gate order. Copies and garbles interleave dependency-wise
// inside a cycle (a garbled gate may read a copied label and vice versa),
// so a cycle cannot be split into one copy pass and one garble pass;
// segments preserve the topological order while still letting the replay
// loop run each garbled stretch as a tight, branch-light AES loop.
type traceSeg struct {
	copies  int32
	garbles int32
}

// CycleTrace is one cycle's compiled schedule in struct-of-arrays form:
// parallel arrays per op class, indexed densely in emission order, so the
// replay loops touch only the fields they need and the garbled-table
// stream comes out byte-identical to a classified run by construction.
type CycleTrace struct {
	Stats  CycleStats // the cycle's scheduling outcome, replayed to sinks
	Halted bool       // public halt flag fired at the end of this cycle

	segs []traceSeg

	// Copy ops (passthroughs, free XORs): out = f(a[, b]).
	copyAct []uint8
	copyOut []int32
	copyA   []int32
	copyB   []int32

	// Garbled ops, in table-emission order (ascending gate index — the
	// serial emission order every worker count reproduces). gate is the
	// producing gate's index, which keys the table's unique gid.
	garbKind []uint8
	garbOp   []uint8
	garbGate []int32
	garbOut  []int32
	garbA    []int32
	garbB    []int32
	garbS    []int32
}

// NumTables returns how many garbled tables this cycle puts on the wire.
func (ct *CycleTrace) NumTables() int { return len(ct.garbKind) }

// memoryBytes approximates the heap footprint of the cycle's arrays.
func (ct *CycleTrace) memoryBytes() int {
	return len(ct.segs)*8 +
		len(ct.copyAct)*13 + // 1 + 3×4 bytes across the copy arrays
		len(ct.garbKind)*22 + // 2 + 5×4 bytes across the garble arrays
		96 // struct and slice headers, amortized
}

// Trace is a recorded classification schedule for one (circuit, public
// input, cycle budget, halt flag) tuple, ready for replay by any number of
// later sessions. A Trace is immutable after TraceRecorder.Finish and safe
// for concurrent replay.
type Trace struct {
	cycles []CycleTrace
	stats  Stats
	halted bool

	// Final output-wire states (resolved wires, circuit.OutputWires order):
	// public outputs carry their value in the trace; secret outputs are
	// decoded from labels as usual.
	outW   []circuit.Wire
	outPub []bool
	outVal []bool

	bytes int
}

// NumCycles returns how many cycles the recorded run executed (at most the
// budget it was recorded under; fewer when the program halted).
func (t *Trace) NumCycles() int { return len(t.cycles) }

// Cycle returns the compiled schedule of 1-based cycle cyc.
func (t *Trace) Cycle(cyc int) *CycleTrace { return &t.cycles[cyc-1] }

// TotalStats returns the recorded run's accumulated scheduling statistics
// — exactly those a fresh Classify run would produce.
func (t *Trace) TotalStats() Stats { return t.stats }

// Halted reports whether the recorded run stopped at the public halt flag.
func (t *Trace) Halted() bool { return t.halted }

// NumOutputs returns the number of (flattened) output bits.
func (t *Trace) NumOutputs() int { return len(t.outW) }

// OutputWire returns the resolved wire of output bit i.
func (t *Trace) OutputWire(i int) circuit.Wire { return t.outW[i] }

// OutputState returns output bit i's final wire state: val is meaningful
// only when public is true; secret outputs decode from labels.
func (t *Trace) OutputState(i int) (val bool, public bool) { return t.outVal[i], t.outPub[i] }

// MemoryBytes approximates the trace's heap footprint — what a bounded
// trace cache charges against its budget.
func (t *Trace) MemoryBytes() int { return t.bytes }

// Validate checks a replay request's cycle budget against the budget the
// trace was recorded under. The budget shapes the schedule itself — the
// last budget cycle classifies with final-cycle fanouts (flip-flop
// next-state values are not consumers) — so a trace only replays under the
// exact budget it was recorded with.
func (t *Trace) Validate(cycles int) error {
	switch {
	case len(t.cycles) == 0:
		return fmt.Errorf("core: empty trace")
	case len(t.cycles) > cycles:
		return fmt.Errorf("core: trace of %d cycles exceeds budget %d", len(t.cycles), cycles)
	case !t.halted && len(t.cycles) != cycles:
		return fmt.Errorf("core: trace recorded under budget %d cannot replay under %d", len(t.cycles), cycles)
	}
	return nil
}

// TraceRecorder compiles a classified run into a Trace as it executes.
// Call RecordCycle after every Scheduler.Classify (any worker count — the
// settled schedule is identical), then Finish after the last cycle, before
// abandoning the scheduler. Recording walks the same per-gate state the
// executors walk, so it adds one linear pass per cycle and nothing to the
// crypto path.
type TraceRecorder struct {
	s *Scheduler
	t *Trace
}

// NewTraceRecorder starts recording s's run.
func NewTraceRecorder(s *Scheduler) *TraceRecorder {
	return &TraceRecorder{s: s, t: &Trace{}}
}

// RecordCycle compiles the current classified cycle (between Classify and
// Commit). halted is the public halt verdict for this cycle — replay obeys
// it instead of re-deriving wire states.
func (r *TraceRecorder) RecordCycle(cs CycleStats, halted bool) {
	s := r.s
	c := s.C
	ct := CycleTrace{Stats: cs, Halted: halted}
	var seg traceSeg
	flush := func() {
		if seg.copies != 0 || seg.garbles != 0 {
			ct.segs = append(ct.segs, seg)
			seg = traceSeg{}
		}
	}
	addCopy := func(act uint8, out, a, b int32) {
		if seg.garbles > 0 {
			flush()
		}
		seg.copies++
		ct.copyAct = append(ct.copyAct, act)
		ct.copyOut = append(ct.copyOut, out)
		ct.copyA = append(ct.copyA, a)
		ct.copyB = append(ct.copyB, b)
	}
	addGarb := func(kind, op uint8, gate, out, a, b, sw int32) {
		seg.garbles++
		ct.garbKind = append(ct.garbKind, kind)
		ct.garbOp = append(ct.garbOp, op)
		ct.garbGate = append(ct.garbGate, gate)
		ct.garbOut = append(ct.garbOut, out)
		ct.garbA = append(ct.garbA, a)
		ct.garbB = append(ct.garbB, b)
		ct.garbS = append(ct.garbS, sw)
	}
	for i := range c.Gates {
		if s.fan[i] <= 0 {
			continue
		}
		g := &c.Gates[i]
		out := int32(c.GateBase) + int32(i)
		switch s.act[i] {
		case actPub:
			// unreachable: setPub zeroes the gate's fanout
		case actCopyA:
			addCopy(topCopy, out, int32(g.A), 0)
		case actCopyAInv:
			addCopy(topCopyInv, out, int32(g.A), 0)
		case actCopyB:
			addCopy(topCopy, out, int32(g.B), 0)
		case actCopyBInv:
			addCopy(topCopyInv, out, int32(g.B), 0)
		case actCopyS:
			addCopy(topCopy, out, int32(g.S), 0)
		case actCopySInv:
			addCopy(topCopyInv, out, int32(g.S), 0)
		case actXor:
			if g.Op == circuit.XNOR {
				addCopy(topXorInv, out, int32(g.A), int32(g.B))
			} else {
				addCopy(topXor, out, int32(g.A), int32(g.B))
			}
		case actMuxXor:
			addCopy(topXor, out, int32(g.S), int32(g.A))
		case actGarble:
			if g.Op != circuit.MUX {
				addGarb(tgGate, uint8(g.Op), int32(i), out, int32(g.A), int32(g.B), 0)
				break
			}
			// Bake the MUX shape garbleMux/evalMux derive from wire states.
			sa, sb := s.st[g.A], s.st[g.B]
			switch {
			case sa == stSecret && sb == stSecret:
				addGarb(tgMux, 0, int32(i), out, int32(g.A), int32(g.B), int32(g.S))
			case sa != stSecret:
				kind := uint8(tgAndFF)
				if sa == stPub1 {
					kind = tgAndFTT
				}
				addGarb(kind, 0, int32(i), out, int32(g.S), int32(g.B), 0)
			default:
				kind := uint8(tgAndTFF)
				if sb == stPub1 {
					kind = tgAndTTT
				}
				addGarb(kind, 0, int32(i), out, int32(g.S), int32(g.A), 0)
			}
		}
	}
	flush()
	r.t.cycles = append(r.t.cycles, ct)
	r.t.stats.Cycles++
	r.t.stats.Total.Add(cs)
	r.t.bytes += ct.memoryBytes()
}

// Finish snapshots the final output-wire states and seals the trace. Call
// it after the last recorded cycle; the resolved output wires it reads are
// untouched by Commit, so calling before or after the final Commit is
// equivalent.
func (r *TraceRecorder) Finish(halted bool) *Trace {
	s, t := r.s, r.t
	for _, w := range s.C.OutputWires() {
		rw := s.C.ResolveOutput(w)
		v, pub := s.WireState(rw)
		t.outW = append(t.outW, rw)
		t.outPub = append(t.outPub, pub)
		t.outVal = append(t.outVal, v)
	}
	t.halted = halted
	t.bytes += len(t.outW) * 6
	return t
}

// NewReplayGarbler creates Alice's executor for trace replay: no
// scheduler, labels drawn from rnd in exactly the order NewGarbler draws
// them, so a replaying garbler with the same randomness emits the same
// labels — and therefore the same wire bytes — as a classifying one.
func NewReplayGarbler(c *circuit.Circuit, rnd io.Reader) *Garbler {
	return newGarbler(c, nil, rnd)
}

// NewReplayEvaluator creates Bob's executor for trace replay.
func NewReplayEvaluator(c *circuit.Circuit) *Evaluator {
	return newEvaluator(c, nil)
}

// GarbleCycleTrace garbles 1-based cycle cyc from a recorded trace,
// appending the cycle's tables to dst in emission order. It never consults
// a scheduler: the compiled op arrays drive label work directly, which is
// the entire point of trace reuse — the per-cycle cost collapses to the
// label XORs and the fixed-key-AES of surviving garbled gates.
func (g *Garbler) GarbleCycleTrace(ct *CycleTrace, cyc int, dst []gc.Table) []gc.Table {
	base := uint64(cyc-1) * uint64(len(g.c.Gates))
	x0, r := g.x0, g.R
	ci, gi := 0, 0
	for _, seg := range ct.segs {
		for end := ci + int(seg.copies); ci < end; ci++ {
			out := ct.copyOut[ci]
			switch ct.copyAct[ci] {
			case topCopy:
				x0[out] = x0[ct.copyA[ci]]
			case topCopyInv:
				x0[out] = x0[ct.copyA[ci]].Xor(r)
			case topXor:
				x0[out] = x0[ct.copyA[ci]].Xor(x0[ct.copyB[ci]])
			default: // topXorInv
				x0[out] = x0[ct.copyA[ci]].Xor(x0[ct.copyB[ci]]).Xor(r)
			}
		}
		for end := gi + int(seg.garbles); gi < end; gi++ {
			gid := base + uint64(ct.garbGate[gi])
			a, b := x0[ct.garbA[gi]], x0[ct.garbB[gi]]
			var c0 gc.Label
			var t gc.Table
			switch ct.garbKind[gi] {
			case tgGate:
				c0, t = gc.GarbleGate(g.h, r, circuit.Op(ct.garbOp[gi]), a, b, gid)
			case tgMux:
				c0, t = gc.GarbleMux(g.h, r, x0[ct.garbS[gi]], a, b, gid)
			case tgAndFF:
				c0, t = gc.GarbleAndInv(g.h, r, a, b, gid, false, false, false)
			case tgAndFTT:
				c0, t = gc.GarbleAndInv(g.h, r, a, b, gid, false, true, true)
			case tgAndTFF:
				c0, t = gc.GarbleAndInv(g.h, r, a, b, gid, true, false, false)
			default: // tgAndTTT
				c0, t = gc.GarbleAndInv(g.h, r, a, b, gid, true, true, true)
			}
			x0[ct.garbOut[gi]] = c0
			dst = append(dst, t)
		}
	}
	return dst
}

// GarbleCycleTraceAppend is GarbleCycleTrace serializing straight into a
// payload buffer (TG then TE per table), mirroring GarbleCycleAppend.
func (g *Garbler) GarbleCycleTraceAppend(ct *CycleTrace, cyc int, dst []byte) []byte {
	g.scratch = g.GarbleCycleTrace(ct, cyc, g.scratch[:0])
	for _, t := range g.scratch {
		tg, te := t.TG.Bytes(), t.TE.Bytes()
		dst = append(dst, tg[:]...)
		dst = append(dst, te[:]...)
	}
	return dst
}

// EvalCycleTrace evaluates 1-based cycle cyc from a recorded trace,
// consuming tables from ts in order and returning the remainder.
func (e *Evaluator) EvalCycleTrace(ct *CycleTrace, cyc int, ts []gc.Table) ([]gc.Table, error) {
	if len(ts) < len(ct.garbKind) {
		return nil, fmt.Errorf("core: table stream exhausted: cycle %d replay needs %d tables, have %d",
			cyc, len(ct.garbKind), len(ts))
	}
	base := uint64(cyc-1) * uint64(len(e.c.Gates))
	x := e.x
	ci, gi := 0, 0
	for _, seg := range ct.segs {
		for end := ci + int(seg.copies); ci < end; ci++ {
			out := ct.copyOut[ci]
			// The evaluator holds active labels: inversions are the
			// garbler's business, so the four copy codes collapse to two.
			if ct.copyAct[ci] < topXor {
				x[out] = x[ct.copyA[ci]]
			} else {
				x[out] = x[ct.copyA[ci]].Xor(x[ct.copyB[ci]])
			}
		}
		for end := gi + int(seg.garbles); gi < end; gi++ {
			gid := base + uint64(ct.garbGate[gi])
			t := ts[gi]
			a, b := x[ct.garbA[gi]], x[ct.garbB[gi]]
			switch ct.garbKind[gi] {
			case tgGate:
				x[ct.garbOut[gi]] = gc.EvalGate(e.h, circuit.Op(ct.garbOp[gi]), a, b, t, gid)
			case tgMux:
				x[ct.garbOut[gi]] = gc.EvalMux(e.h, x[ct.garbS[gi]], a, b, t, gid)
			default: // the AndInv shapes all evaluate as a half-gates AND
				x[ct.garbOut[gi]] = gc.EvalAnd(e.h, a, b, t, gid)
			}
		}
	}
	return ts[len(ct.garbKind):], nil
}
