package core

import (
	"bytes"
	"context"
	"math/rand"
	"testing"

	"arm2gc/internal/circuit"
	"arm2gc/internal/circuit/circtest"
	"arm2gc/internal/sim"
)

// garbleRun captures everything observable about a garbler-side run: the
// per-cycle serialized table bytes and the per-cycle statistics.
type garbleRun struct {
	frames [][]byte
	stats  []CycleStats
}

// garbleCycles runs scheduler+garbler for `cycles` cycles at the given
// worker count with deterministic label randomness, recording the exact
// bytes GarbleCycleAppend would put on the wire each cycle.
func garbleCycles(t *testing.T, c *circuit.Circuit, pub []bool, cycles, workers int, rndSeed int64) garbleRun {
	t.Helper()
	s := NewScheduler(c, Seed{1, 2, 3}, pub)
	s.SetWorkers(workers)
	g := NewGarbler(s, rand.New(rand.NewSource(rndSeed)))
	var run garbleRun
	for cyc := 1; cyc <= cycles; cyc++ {
		cs := s.Classify(cyc == cycles)
		run.stats = append(run.stats, cs)
		run.frames = append(run.frames, g.GarbleCycleAppend(nil))
		if cs.Garbled != s.NumTables() {
			t.Fatalf("workers %d, cycle %d: stats say %d garbled, layout says %d",
				workers, cyc, cs.Garbled, s.NumTables())
		}
		g.CopyDFFs()
		s.Commit()
	}
	return run
}

// TestParallelGarbleByteIdentical is the tentpole's correctness anchor:
// for every worker count, the garbler must emit exactly the bytes the
// serial engine emits, cycle for cycle, and classify with exactly the
// same statistics — on random netlists exercising the whole operator set.
func TestParallelGarbleByteIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 12; trial++ {
		c, aBits, bBits := circtest.Random(rng, 100+rng.Intn(900), 5+rng.Intn(30))
		_ = aBits
		_ = bBits
		pub := circtest.RandBits(rng, c.PublicBits)
		const cycles = 6
		serial := garbleCycles(t, c, pub, cycles, 1, 1234)
		for _, workers := range []int{2, 3, 8} {
			par := garbleCycles(t, c, pub, cycles, workers, 1234)
			for cyc := range serial.frames {
				if !bytes.Equal(serial.frames[cyc], par.frames[cyc]) {
					t.Fatalf("trial %d, workers %d: cycle %d table bytes differ (serial %d bytes, parallel %d)",
						trial, workers, cyc+1, len(serial.frames[cyc]), len(par.frames[cyc]))
				}
				if serial.stats[cyc] != par.stats[cyc] {
					t.Fatalf("trial %d, workers %d: cycle %d stats differ: serial %+v parallel %+v",
						trial, workers, cyc+1, serial.stats[cyc], par.stats[cyc])
				}
			}
		}
	}
}

// TestParallelRunLocalMatchesSerial runs the full two-party protocol in
// process at several worker counts and demands identical outputs, halt
// behavior and statistics.
func TestParallelRunLocalMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ctx := context.Background()
	for trial := 0; trial < 8; trial++ {
		c, aBits, bBits := circtest.Random(rng, 80+rng.Intn(600), 3+rng.Intn(20))
		in := sim.Inputs{
			Public: circtest.RandBits(rng, c.PublicBits),
			Alice:  circtest.RandBits(rng, aBits),
			Bob:    circtest.RandBits(rng, bBits),
		}
		opts := RunOpts{Cycles: 5, RecordEveryCycle: true, Rand: rand.New(rand.NewSource(77))}
		want, err := RunLocal(ctx, c, in, opts)
		if err != nil {
			t.Fatalf("trial %d serial: %v", trial, err)
		}
		for _, workers := range []int{2, 8} {
			opts.Workers = workers
			opts.Rand = rand.New(rand.NewSource(77))
			got, err := RunLocal(ctx, c, in, opts)
			if err != nil {
				t.Fatalf("trial %d workers %d: %v", trial, workers, err)
			}
			if got.Stats != want.Stats {
				t.Fatalf("trial %d workers %d: stats %+v, serial %+v", trial, workers, got.Stats, want.Stats)
			}
			for cyc := range want.PerCycle {
				for i := range want.PerCycle[cyc] {
					if got.PerCycle[cyc][i] != want.PerCycle[cyc][i] {
						t.Fatalf("trial %d workers %d: cycle %d output %d differs", trial, workers, cyc, i)
					}
				}
			}
		}
	}
}

// TestParallelCountMatchesSerial covers the schedule-only path (Count) —
// classification statistics must merge deterministically at any width.
func TestParallelCountMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	ctx := context.Background()
	for trial := 0; trial < 10; trial++ {
		c, _, _ := circtest.Random(rng, 60+rng.Intn(500), rng.Intn(25))
		pub := circtest.RandBits(rng, c.PublicBits)
		want, err := Count(ctx, c, pub, CountOpts{Cycles: 7})
		if err != nil {
			t.Fatalf("trial %d serial: %v", trial, err)
		}
		for _, workers := range []int{2, 5, 8} {
			got, err := Count(ctx, c, pub, CountOpts{Cycles: 7, Workers: workers})
			if err != nil {
				t.Fatalf("trial %d workers %d: %v", trial, workers, err)
			}
			if got != want {
				t.Fatalf("trial %d workers %d: stats %+v, serial %+v", trial, workers, got, want)
			}
		}
	}
}

// TestSetWorkersClamps pins the bounds: non-positive and absurd values
// degrade to sane worker counts instead of failing.
func TestSetWorkersClamps(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c, _, _ := circtest.Random(rng, 50, 3)
	s := NewScheduler(c, Seed{}, nil)
	for in, want := range map[int]int{-3: 1, 0: 1, 1: 1, 4: 4, MaxWorkers + 100: MaxWorkers} {
		s.SetWorkers(in)
		if got := s.Workers(); got != want {
			t.Errorf("SetWorkers(%d): workers = %d, want %d", in, got, want)
		}
	}
}
