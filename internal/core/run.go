package core

import (
	"context"
	"fmt"
	"io"

	"arm2gc/internal/circuit"
	"arm2gc/internal/gc"
	"arm2gc/internal/sim"
)

// RunOpts configures an in-process SkipGate run.
type RunOpts struct {
	Cycles int // number of clock cycles (cc in the paper); required

	// RecordEveryCycle captures the output bus values after every cycle
	// (streaming circuits such as the 1-bit sequential adder); otherwise
	// only the final cycle's outputs are decoded.
	RecordEveryCycle bool

	// StopOutput optionally names a 1-bit output bus: when its value is
	// public and true at the end of a cycle, the run stops early (the
	// garbled processor's halt flag). Cycles still bounds the run.
	StopOutput string

	// Seed is the public fingerprint seed; zero is fine outside the
	// networked protocol.
	Seed Seed

	// Rand supplies label randomness; nil means crypto/rand.
	Rand io.Reader

	// Sink, when set, receives every cycle's scheduling outcome as it is
	// classified — live progress for long runs.
	Sink func(cycle int, cs CycleStats)

	// Workers is the per-cycle worker count for the classify/garble/eval
	// passes (see Scheduler.SetWorkers); <= 1 means serial. Results and
	// statistics are identical for every value.
	Workers int

	// Trace, when set, replays a recorded classification schedule instead
	// of running the Scheduler: no Classify, just trace-driven label work.
	// The trace must have been recorded for the same circuit, public input
	// and Cycles budget. Workers is ignored (replay is already cheaper
	// than the parallel classified path) and StopOutput is served from the
	// trace's recorded halt.
	Trace *Trace

	// Record, when true, compiles this run's classification schedule into
	// RunResult.Trace for later replay. Mutually exclusive with Trace (a
	// replayed run has no scheduler to record).
	Record bool
}

// RunResult reports a completed run.
type RunResult struct {
	Outputs  []bool   // all output buses flattened, final cycle
	PerCycle [][]bool // per-cycle outputs when RecordEveryCycle
	Stats    Stats
	Halted   bool   // stopped by StopOutput
	Trace    *Trace // the recorded schedule when RunOpts.Record
}

// RunLocal executes the full two-party SkipGate protocol in process: one
// shared Scheduler, Alice's Garbler and Bob's Evaluator, with oblivious
// transfer simulated by direct delivery. It verifies that the table stream
// is consumed exactly and decodes the outputs. Cancelling ctx aborts the
// cycle loop with ctx.Err().
func RunLocal(ctx context.Context, c *circuit.Circuit, in sim.Inputs, opts RunOpts) (*RunResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if opts.Cycles <= 0 {
		return nil, fmt.Errorf("core: RunOpts.Cycles = %d", opts.Cycles)
	}
	rnd := opts.Rand
	if rnd == nil {
		rnd = gc.CryptoRand
	}
	if opts.Trace != nil {
		if opts.Record {
			return nil, fmt.Errorf("core: RunOpts.Record with RunOpts.Trace: a replayed run has no scheduler to record")
		}
		if opts.RecordEveryCycle {
			return nil, fmt.Errorf("core: RunOpts.RecordEveryCycle is not supported under trace replay")
		}
		return runLocalReplay(ctx, c, in, opts, rnd)
	}
	s := NewScheduler(c, opts.Seed, in.Public)
	if err := s.SetWorkers(opts.Workers); err != nil {
		return nil, err
	}
	g := NewGarbler(s, rnd)
	e := NewEvaluator(s)
	if err := deliverInputs(g, e, in); err != nil {
		return nil, err
	}
	var rec *TraceRecorder
	if opts.Record {
		rec = NewTraceRecorder(s)
	}

	res := &RunResult{}
	stopWire := circuit.Wire(-1)
	if opts.StopOutput != "" {
		stop := c.FindOutput(opts.StopOutput)
		if stop == nil {
			return nil, fmt.Errorf("core: no output %q", opts.StopOutput)
		}
		stopWire = c.ResolveOutput(stop.Wires[0])
	}

	// Outputs are sampled after the flip-flop copy; Q-wire outputs resolve
	// to their D wires so they can be read before Commit.
	ws := c.OutputWires()
	for i, w := range ws {
		ws[i] = c.ResolveOutput(w)
	}
	for cyc := 1; cyc <= opts.Cycles; cyc++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		final := cyc == opts.Cycles
		cs := s.Classify(final)
		res.Stats.Total.Add(cs)
		res.Stats.Cycles++
		if opts.Sink != nil {
			opts.Sink(cyc, cs)
		}
		// The halt verdict is schedule-only (a public wire state), so it is
		// known right after Classify — and the recorder compiles it into
		// the trace alongside the cycle's ops.
		halted := false
		if stopWire >= 0 {
			if v, pub := s.WireState(stopWire); pub && v {
				halted = true
			}
		}
		if rec != nil {
			rec.RecordCycle(cs, halted)
		}

		tables := g.GarbleCycle(nil)
		rest, err := e.EvalCycle(tables)
		if err != nil {
			return nil, err
		}
		if len(rest) != 0 {
			return nil, fmt.Errorf("core: cycle %d: %d garbled tables unconsumed", cyc, len(rest))
		}

		if opts.RecordEveryCycle || final || halted {
			out, err := decodeOutputs(s, g, e, ws)
			if err != nil {
				return nil, err
			}
			if opts.RecordEveryCycle {
				res.PerCycle = append(res.PerCycle, out)
			}
			res.Outputs = out
		}
		if halted {
			res.Halted = true
			break
		}

		g.CopyDFFs()
		e.CopyDFFs()
		s.Commit()
	}
	if rec != nil {
		res.Trace = rec.Finish(res.Halted)
	}
	return res, nil
}

// runLocalReplay is RunLocal's trace-replay path: no scheduler, both
// executors driven by the compiled trace.
func runLocalReplay(ctx context.Context, c *circuit.Circuit, in sim.Inputs, opts RunOpts, rnd io.Reader) (*RunResult, error) {
	tr := opts.Trace
	if err := tr.Validate(opts.Cycles); err != nil {
		return nil, err
	}
	g := NewReplayGarbler(c, rnd)
	e := NewReplayEvaluator(c)
	if err := deliverInputs(g, e, in); err != nil {
		return nil, err
	}
	res := &RunResult{}
	var tables []gc.Table
	n := tr.NumCycles()
	for cyc := 1; cyc <= n; cyc++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		ct := tr.Cycle(cyc)
		res.Stats.Total.Add(ct.Stats)
		res.Stats.Cycles++
		if opts.Sink != nil {
			opts.Sink(cyc, ct.Stats)
		}
		tables = g.GarbleCycleTrace(ct, cyc, tables[:0])
		rest, err := e.EvalCycleTrace(ct, cyc, tables)
		if err != nil {
			return nil, err
		}
		if len(rest) != 0 {
			return nil, fmt.Errorf("core: cycle %d: %d garbled tables unconsumed in replay", cyc, len(rest))
		}
		if cyc == n {
			out, err := decodeOutputsTrace(tr, g, e)
			if err != nil {
				return nil, err
			}
			res.Outputs = out
			res.Halted = ct.Halted
			break
		}
		g.CopyDFFs()
		e.CopyDFFs()
	}
	return res, nil
}

// deliverInputs plays the input-delivery phase in process: Alice's active
// labels directly, Bob's via simulated oblivious transfer.
func deliverInputs(g *Garbler, e *Evaluator, in sim.Inputs) error {
	pairs := g.BobPairs()
	chosen := make([]gc.Label, len(pairs))
	for i := range pairs {
		if in.Bit(circuit.Bob, i) {
			chosen[i] = pairs[i][1]
		} else {
			chosen[i] = pairs[i][0]
		}
	}
	return e.SetInputs(g.AliceActiveLabels(in.Alice), chosen)
}

// decodeOutputs combines public wire values with point-and-permute
// decoding of secret wires, cross-checking Bob's active label against
// Alice's label pair.
func decodeOutputs(s *Scheduler, g *Garbler, e *Evaluator, ws []circuit.Wire) ([]bool, error) {
	out := make([]bool, len(ws))
	for i, w := range ws {
		if v, pub := s.WireState(w); pub {
			out[i] = v
			continue
		}
		v := e.ActiveBit(w) != g.DecodeBit(w)
		// Consistency check available only in-process: the active label
		// must be one of Alice's pair.
		x := e.Active(w)
		if x != g.X0(w) && x != g.X0(w).Xor(g.R) {
			return nil, fmt.Errorf("core: output wire %d: active label matches neither X0 nor X1", w)
		}
		out[i] = v
	}
	return out, nil
}

// decodeOutputsTrace mirrors decodeOutputs for replayed runs: public
// output values come from the trace, secret ones from the labels.
func decodeOutputsTrace(tr *Trace, g *Garbler, e *Evaluator) ([]bool, error) {
	out := make([]bool, tr.NumOutputs())
	for i := range out {
		if v, pub := tr.OutputState(i); pub {
			out[i] = v
			continue
		}
		w := tr.OutputWire(i)
		v := e.ActiveBit(w) != g.DecodeBit(w)
		x := e.Active(w)
		if x != g.X0(w) && x != g.X0(w).Xor(g.R) {
			return nil, fmt.Errorf("core: output wire %d: active label matches neither X0 nor X1", w)
		}
		out[i] = v
	}
	return out, nil
}

// CountOpts configures a schedule-only run.
type CountOpts struct {
	Cycles     int
	StopOutput string
	Seed       Seed

	// Sink, when set, receives every cycle's scheduling outcome.
	Sink func(cycle int, cs CycleStats)

	// Workers parallelizes the classification pass as in RunOpts.Workers.
	Workers int
}

// Count runs only the Scheduler — no cryptography — and returns the gate
// statistics. This is how the benchmark harness measures garbled non-XOR
// counts for large circuits and long runs (the counts are exactly those of
// a full protocol run, since scheduling is independent of label values).
// Cancelling ctx aborts the cycle loop with ctx.Err().
func Count(ctx context.Context, c *circuit.Circuit, pub []bool, opts CountOpts) (Stats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if opts.Cycles <= 0 {
		return Stats{}, fmt.Errorf("core: CountOpts.Cycles = %d", opts.Cycles)
	}
	stopWire := circuit.Wire(-1)
	if opts.StopOutput != "" {
		stop := c.FindOutput(opts.StopOutput)
		if stop == nil {
			return Stats{}, fmt.Errorf("core: no output %q", opts.StopOutput)
		}
		stopWire = c.ResolveOutput(stop.Wires[0])
	}
	s := NewScheduler(c, opts.Seed, pub)
	if err := s.SetWorkers(opts.Workers); err != nil {
		return Stats{}, err
	}
	var st Stats
	for cyc := 1; cyc <= opts.Cycles; cyc++ {
		if err := ctx.Err(); err != nil {
			return st, err
		}
		cs := s.Classify(cyc == opts.Cycles)
		st.Total.Add(cs)
		st.Cycles++
		if opts.Sink != nil {
			opts.Sink(cyc, cs)
		}
		if stopWire >= 0 {
			if v, pub := s.WireState(stopWire); pub && v {
				break
			}
		}
		s.Commit()
	}
	return st, nil
}
