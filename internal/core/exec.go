package core

import (
	"fmt"
	"io"

	"arm2gc/internal/circuit"
	"arm2gc/internal/gc"
)

// Garbler is Alice's crypto executor: it follows the shared Scheduler and
// does label work only for the gates the schedule says are needed. In
// trace replay (NewReplayGarbler) there is no scheduler — S is nil and the
// compiled trace drives the label walk instead.
type Garbler struct {
	S *Scheduler
	R gc.Label

	c       *circuit.Circuit
	h       *gc.Hash
	x0      []gc.Label
	alice   []gc.Label // X0 per Alice input bit
	bob     []gc.Label // X0 per Bob input bit
	dffNext []gc.Label
	tables  []gc.Table // per-cycle slot buffer (scheduler table layout)
	scratch []gc.Table // GarbleCycleAppend's reusable table buffer
}

// NewGarbler creates Alice's executor over a scheduler, drawing labels
// from rnd.
func NewGarbler(s *Scheduler, rnd io.Reader) *Garbler {
	return newGarbler(s.C, s, rnd)
}

// newGarbler is the shared constructor behind NewGarbler and
// NewReplayGarbler. The label draws (R, then Alice's bits, then Bob's)
// happen in one fixed order so a replaying garbler given the same
// randomness produces the same labels as a classifying one.
func newGarbler(c *circuit.Circuit, s *Scheduler, rnd io.Reader) *Garbler {
	g := &Garbler{
		S:       s,
		c:       c,
		R:       gc.RandDelta(rnd),
		h:       gc.NewHash(),
		x0:      make([]gc.Label, c.NumWires()),
		alice:   make([]gc.Label, c.AliceBits),
		bob:     make([]gc.Label, c.BobBits),
		dffNext: make([]gc.Label, len(c.DFFs)),
	}
	for i := range g.alice {
		g.alice[i] = gc.RandLabel(rnd)
	}
	for i := range g.bob {
		g.bob[i] = gc.RandLabel(rnd)
	}
	forEachSecretInit(c, func(w circuit.Wire, owner circuit.Owner, idx int) {
		if owner == circuit.Alice {
			g.x0[w] = g.alice[idx]
		} else {
			g.x0[w] = g.bob[idx]
		}
	})
	return g
}

// forEachSecretInit visits every wire initialized from a party input bit
// (ports and flip-flop initial values). Public and constant
// initializations carry no labels under SkipGate.
func forEachSecretInit(c *circuit.Circuit, f func(w circuit.Wire, owner circuit.Owner, idx int)) {
	for _, p := range c.Ports {
		if p.Owner == circuit.Public {
			continue
		}
		for b := 0; b < p.Bits; b++ {
			f(p.Base+circuit.Wire(b), p.Owner, p.Off+b)
		}
	}
	for i, d := range c.DFFs {
		switch d.Init.Kind {
		case circuit.InitAlice:
			f(c.QWire(i), circuit.Alice, d.Init.Idx)
		case circuit.InitBob:
			f(c.QWire(i), circuit.Bob, d.Init.Idx)
		}
	}
}

// AliceActiveLabels returns the active labels for Alice's own input bits,
// which she sends to Bob directly.
func (g *Garbler) AliceActiveLabels(vals []bool) []gc.Label {
	out := make([]gc.Label, len(g.alice))
	for i, x0 := range g.alice {
		out[i] = x0
		if i < len(vals) && vals[i] {
			out[i] = out[i].Xor(g.R)
		}
	}
	return out
}

// BobPairs returns the (X0, X1) pairs for Bob's input bits, delivered by
// oblivious transfer.
func (g *Garbler) BobPairs() [][2]gc.Label {
	ps := make([][2]gc.Label, len(g.bob))
	for i, x0 := range g.bob {
		ps[i] = [2]gc.Label{x0, x0.Xor(g.R)}
	}
	return ps
}

// GarbleCycle performs Alice's side of the current classified cycle
// (between Scheduler.Classify and Scheduler.Commit): it computes false
// labels for every live secret wire and appends one table per surviving
// category-iv non-XOR gate to dst, in topological order. With scheduler
// workers > 1 the label walk runs level-parallel; every table is written
// into the slot the scheduler assigned it, so the appended sequence — and
// therefore the wire bytes — is identical for any worker count.
func (g *Garbler) GarbleCycle(dst []gc.Table) []gc.Table {
	s := g.S
	c := s.C
	base := uint64(s.cycle-1) * uint64(len(c.Gates))
	if s.workers > 1 {
		if cap(g.tables) < s.numTables {
			g.tables = make([]gc.Table, s.numTables)
		}
		tabs := g.tables[:s.numTables]
		s.forkWorkers(func(id int) {
			s.walkLevels(id, func(gates []int32) {
				for _, gi := range gates {
					g.garbleGate(int(gi), base, tabs)
				}
			})
		})
		return append(dst, tabs...)
	}
	// Serial fast path: one inline walk in gate order, appending tables as
	// they are produced — the emission order the parallel path's slots
	// reproduce (the byte-identical tests in core, cpu and proto pin the
	// two paths against each other).
	for i := range c.Gates {
		if s.fan[i] <= 0 {
			continue
		}
		gate := &c.Gates[i]
		out := int(c.GateBase) + i
		switch s.act[i] {
		case actPub:
			// no label
		case actCopyA:
			g.x0[out] = g.x0[gate.A]
		case actCopyAInv:
			g.x0[out] = g.x0[gate.A].Xor(g.R)
		case actCopyB:
			g.x0[out] = g.x0[gate.B]
		case actCopyBInv:
			g.x0[out] = g.x0[gate.B].Xor(g.R)
		case actCopyS:
			g.x0[out] = g.x0[gate.S]
		case actCopySInv:
			g.x0[out] = g.x0[gate.S].Xor(g.R)
		case actXor:
			g.x0[out] = g.x0[gate.A].Xor(g.x0[gate.B])
			if gate.Op == circuit.XNOR {
				g.x0[out] = g.x0[out].Xor(g.R)
			}
		case actMuxXor:
			g.x0[out] = g.x0[gate.S].Xor(g.x0[gate.A])
		case actGarble:
			gid := base + uint64(i)
			var c0 gc.Label
			var t gc.Table
			if gate.Op == circuit.MUX {
				c0, t = g.garbleMux(gate, gid)
			} else {
				c0, t = gc.GarbleGate(g.h, g.R, gate.Op, g.x0[gate.A], g.x0[gate.B], gid)
			}
			g.x0[out] = c0
			dst = append(dst, t)
		}
	}
	return dst
}

// garbleGate does Alice's label work for one gate: false label for the
// output wire, plus the garbled table in its scheduler-assigned slot for
// surviving category-iv gates. It reads only input-wire labels (earlier
// levels) and writes only gate-owned slots, so a topological level can
// garble concurrently.
func (g *Garbler) garbleGate(i int, base uint64, tabs []gc.Table) {
	s := g.S
	if s.fan[i] <= 0 {
		return
	}
	gate := &s.C.Gates[i]
	out := int(s.C.GateBase) + i
	switch s.act[i] {
	case actPub:
		// no label
	case actCopyA:
		g.x0[out] = g.x0[gate.A]
	case actCopyAInv:
		g.x0[out] = g.x0[gate.A].Xor(g.R)
	case actCopyB:
		g.x0[out] = g.x0[gate.B]
	case actCopyBInv:
		g.x0[out] = g.x0[gate.B].Xor(g.R)
	case actCopyS:
		g.x0[out] = g.x0[gate.S]
	case actCopySInv:
		g.x0[out] = g.x0[gate.S].Xor(g.R)
	case actXor:
		g.x0[out] = g.x0[gate.A].Xor(g.x0[gate.B])
		if gate.Op == circuit.XNOR {
			g.x0[out] = g.x0[out].Xor(g.R)
		}
	case actMuxXor:
		g.x0[out] = g.x0[gate.S].Xor(g.x0[gate.A])
	case actGarble:
		gid := base + uint64(i)
		var c0 gc.Label
		var t gc.Table
		if gate.Op == circuit.MUX {
			c0, t = g.garbleMux(gate, gid)
		} else {
			c0, t = gc.GarbleGate(g.h, g.R, gate.Op, g.x0[gate.A], g.x0[gate.B], gid)
		}
		g.x0[out] = c0
		tabs[s.slot[i]] = t
	}
}

// garbleMux garbles a category-iv MUX. With both data inputs secret it is
// the atomic A ⊕ AND(S, A⊕B) form; with one data input public (which has
// no label under SkipGate) it degenerates to a 2-secret AND/OR shape.
// Both parties derive the same shape from the shared scheduler states.
func (g *Garbler) garbleMux(gate *circuit.Gate, gid uint64) (gc.Label, gc.Table) {
	s := g.S
	sa, sb := s.st[gate.A], s.st[gate.B]
	switch {
	case sa == stSecret && sb == stSecret:
		return gc.GarbleMux(g.h, g.R, g.x0[gate.S], g.x0[gate.A], g.x0[gate.B], gid)
	case sa != stSecret:
		if sa == stPub1 { // out = S ? B : 1 = ¬(S ∧ ¬B)
			return gc.GarbleAndInv(g.h, g.R, g.x0[gate.S], g.x0[gate.B], gid, false, true, true)
		}
		// out = S ? B : 0 = S ∧ B
		return gc.GarbleAndInv(g.h, g.R, g.x0[gate.S], g.x0[gate.B], gid, false, false, false)
	default:
		if sb == stPub1 { // out = S ? 1 : A = ¬(¬S ∧ ¬A)
			return gc.GarbleAndInv(g.h, g.R, g.x0[gate.S], g.x0[gate.A], gid, true, true, true)
		}
		// out = S ? 0 : A = ¬S ∧ A
		return gc.GarbleAndInv(g.h, g.R, g.x0[gate.S], g.x0[gate.A], gid, true, false, false)
	}
}

// GarbleCycleAppend garbles the current classified cycle like GarbleCycle
// but serializes the tables straight into dst in wire order (TG then TE
// per table) — the garble-ahead hook the protocol's frame producer uses
// to fill payload buffers without an intermediate table slice.
func (g *Garbler) GarbleCycleAppend(dst []byte) []byte {
	g.scratch = g.GarbleCycle(g.scratch[:0])
	for _, t := range g.scratch {
		tg, te := t.TG.Bytes(), t.TE.Bytes()
		dst = append(dst, tg[:]...)
		dst = append(dst, te[:]...)
	}
	return dst
}

// CopyDFFs performs the end-of-cycle flip-flop label copy (call before
// Scheduler.Commit; replay runs have no scheduler and just call it
// between cycles).
func (g *Garbler) CopyDFFs() {
	c := g.c
	for i, d := range c.DFFs {
		g.dffNext[i] = g.x0[d.D]
	}
	for i := range c.DFFs {
		g.x0[c.QWire(i)] = g.dffNext[i]
	}
}

// DecodeBit returns the point-and-permute decode bit for a secret wire.
func (g *Garbler) DecodeBit(w circuit.Wire) bool { return g.x0[w].Bit() }

// X0 exposes a wire's false label (tests and the protocol layer).
func (g *Garbler) X0(w circuit.Wire) gc.Label { return g.x0[w] }

// Evaluator is Bob's crypto executor, mirroring Garbler with active
// labels; like the Garbler, it runs schedulerless (S == nil) in trace
// replay.
type Evaluator struct {
	S *Scheduler

	c       *circuit.Circuit
	h       *gc.Hash
	x       []gc.Label
	dffNext []gc.Label
}

// NewEvaluator creates Bob's executor over a scheduler.
func NewEvaluator(s *Scheduler) *Evaluator {
	return newEvaluator(s.C, s)
}

// newEvaluator is the shared constructor behind NewEvaluator and
// NewReplayEvaluator.
func newEvaluator(c *circuit.Circuit, s *Scheduler) *Evaluator {
	return &Evaluator{
		S:       s,
		c:       c,
		h:       gc.NewHash(),
		x:       make([]gc.Label, c.NumWires()),
		dffNext: make([]gc.Label, len(c.DFFs)),
	}
}

// SetInputs installs the labels for Alice's bits (sent directly) and Bob's
// bits (chosen via OT) on every wire they initialize.
func (e *Evaluator) SetInputs(aliceActive, bobChosen []gc.Label) error {
	c := e.c
	if len(aliceActive) != c.AliceBits {
		return fmt.Errorf("core: %d alice labels, want %d", len(aliceActive), c.AliceBits)
	}
	if len(bobChosen) != c.BobBits {
		return fmt.Errorf("core: %d bob labels, want %d", len(bobChosen), c.BobBits)
	}
	forEachSecretInit(c, func(w circuit.Wire, owner circuit.Owner, idx int) {
		if owner == circuit.Alice {
			e.x[w] = aliceActive[idx]
		} else {
			e.x[w] = bobChosen[idx]
		}
	})
	return nil
}

// EvalCycle performs Bob's side of the current classified cycle, consuming
// tables from ts in order; it returns the unconsumed remainder. With
// scheduler workers > 1 the walk runs level-parallel, each gate reading
// its table from the slot the shared schedule assigned it — the same
// positions the serial walk consumes one by one.
func (e *Evaluator) EvalCycle(ts []gc.Table) ([]gc.Table, error) {
	s := e.S
	c := s.C
	base := uint64(s.cycle-1) * uint64(len(c.Gates))
	if s.workers > 1 {
		if len(ts) < s.numTables {
			return nil, fmt.Errorf("core: table stream exhausted: cycle %d needs %d tables, have %d", s.cycle, s.numTables, len(ts))
		}
		cur := ts[:s.numTables]
		s.forkWorkers(func(id int) {
			s.walkLevels(id, func(gates []int32) {
				for _, gi := range gates {
					e.evalGate(int(gi), base, cur)
				}
			})
		})
		return ts[s.numTables:], nil
	}
	// Serial fast path, mirroring Garbler.GarbleCycle's inline walk.
	for i := range c.Gates {
		if s.fan[i] <= 0 {
			continue
		}
		gate := &c.Gates[i]
		out := int(c.GateBase) + i
		switch s.act[i] {
		case actPub:
			// no label
		case actCopyA, actCopyAInv:
			e.x[out] = e.x[gate.A]
		case actCopyB, actCopyBInv:
			e.x[out] = e.x[gate.B]
		case actCopyS, actCopySInv:
			e.x[out] = e.x[gate.S]
		case actXor:
			e.x[out] = e.x[gate.A].Xor(e.x[gate.B])
		case actMuxXor:
			e.x[out] = e.x[gate.S].Xor(e.x[gate.A])
		case actGarble:
			if len(ts) == 0 {
				return nil, fmt.Errorf("core: table stream exhausted at gate %d (cycle %d)", i, s.cycle)
			}
			gid := base + uint64(i)
			if gate.Op == circuit.MUX {
				e.x[out] = e.evalMux(gate, ts[0], gid)
			} else {
				e.x[out] = gc.EvalGate(e.h, gate.Op, e.x[gate.A], e.x[gate.B], ts[0], gid)
			}
			ts = ts[1:]
		}
	}
	return ts, nil
}

// evalGate mirrors Garbler.garbleGate with active labels.
func (e *Evaluator) evalGate(i int, base uint64, tabs []gc.Table) {
	s := e.S
	if s.fan[i] <= 0 {
		return
	}
	gate := &s.C.Gates[i]
	out := int(s.C.GateBase) + i
	switch s.act[i] {
	case actPub:
		// no label
	case actCopyA, actCopyAInv:
		e.x[out] = e.x[gate.A]
	case actCopyB, actCopyBInv:
		e.x[out] = e.x[gate.B]
	case actCopyS, actCopySInv:
		e.x[out] = e.x[gate.S]
	case actXor:
		e.x[out] = e.x[gate.A].Xor(e.x[gate.B])
	case actMuxXor:
		e.x[out] = e.x[gate.S].Xor(e.x[gate.A])
	case actGarble:
		gid := base + uint64(i)
		t := tabs[s.slot[i]]
		if gate.Op == circuit.MUX {
			e.x[out] = e.evalMux(gate, t, gid)
		} else {
			e.x[out] = gc.EvalGate(e.h, gate.Op, e.x[gate.A], e.x[gate.B], t, gid)
		}
	}
}

// evalMux mirrors Garbler.garbleMux: the shape is derived from the shared
// scheduler wire states, and public data inputs contribute no labels.
func (e *Evaluator) evalMux(gate *circuit.Gate, t gc.Table, gid uint64) gc.Label {
	s := e.S
	sa, sb := s.st[gate.A], s.st[gate.B]
	switch {
	case sa == stSecret && sb == stSecret:
		return gc.EvalMux(e.h, e.x[gate.S], e.x[gate.A], e.x[gate.B], t, gid)
	case sa != stSecret:
		return gc.EvalAnd(e.h, e.x[gate.S], e.x[gate.B], t, gid)
	default:
		return gc.EvalAnd(e.h, e.x[gate.S], e.x[gate.A], t, gid)
	}
}

// CopyDFFs performs the end-of-cycle flip-flop label copy (call before
// Scheduler.Commit; schedulerless in replay).
func (e *Evaluator) CopyDFFs() {
	c := e.c
	for i, d := range c.DFFs {
		e.dffNext[i] = e.x[d.D]
	}
	for i := range c.DFFs {
		e.x[c.QWire(i)] = e.dffNext[i]
	}
}

// ActiveBit returns the point-and-permute bit of Bob's active label on a
// secret wire.
func (e *Evaluator) ActiveBit(w circuit.Wire) bool { return e.x[w].Bit() }

// Active exposes a wire's active label.
func (e *Evaluator) Active(w circuit.Wire) gc.Label { return e.x[w] }
