// Package core implements SkipGate (Algorithms 1–6 of the paper): the
// dynamic, gate-level optimization that lets a sequential garbled circuit
// with public inputs c = f(a, b, p) be evaluated at the cost of the reduced
// circuit fp(a, b).
//
// # Structure
//
// The paper has Alice and Bob independently run Phase 1 (gates with public
// inputs, categories i–ii) and Phase 2 (gates with secret inputs,
// categories iii–iv), agreeing implicitly on every skip decision; Bob
// tracks label identity and inversion with an extra flip bit (Section 3.3).
// We make that agreement an explicit object: a Scheduler that both parties
// run deterministically from public data only (the netlist, the public
// input p, and a public session seed). The Scheduler mirrors Alice's
// free-XOR label algebra over public 128-bit fingerprints:
//
//   - every fresh secret (party input bit, or the output of a garbled
//     category-iv non-XOR gate) gets a pseudorandom fingerprint;
//   - XOR combines fingerprints by XOR; inversion XORs a global ΔF —
//     exactly as labels combine under free-XOR with offset R.
//
// Fingerprint equality therefore coincides with label equality, so both
// parties compute identical gate categories, identical label_fanout
// reductions (Algorithm 6) and an identical set of filtered garbled tables
// (Algorithm 4 line 18) — which is what the paper's two phases establish.
// The crypto executors (Garbler, Evaluator) then do only the label work.
//
// Everything here is wire-stream-critical: both parties must derive
// byte-identical public circuit state, so code in this package must be
// fully deterministic (no map-order, wall-clock, global-rand, or
// scheduling dependence). The arm2gc-vet determinism analyzer enforces
// this; the next line is its machine-readable annotation.
//
//arm2gc:deterministic
package core

import (
	"crypto/aes"
	"crypto/cipher"
	"encoding/binary"

	"arm2gc/internal/circuit"
	"arm2gc/internal/gc"
)

// FP is a wire fingerprint: a public stand-in for the garbler's false
// label, with the same XOR algebra.
type FP = gc.Label

// Seed keys the deterministic fingerprint generator. It is public and must
// be equal on both sides; the protocol layer derives it from the circuit
// hash and a session nonce.
type Seed [16]byte

// fpGen derives fingerprints with AES in a tweaked-block construction.
// The scratch buffers make derive allocation-free in the scheduler's hot
// loop, at the price of making one fpGen single-goroutine; a parallel
// scheduler forks one generator per worker (same key, so identical
// outputs) instead of sharing the scratch.
type fpGen struct {
	block   cipher.Block
	in, out [16]byte
}

// fork returns a generator deriving the same fingerprints with its own
// scratch buffers. The AES block is stateless and shared.
func (g *fpGen) fork() *fpGen { return &fpGen{block: g.block} }

func newFPGen(seed Seed) *fpGen {
	b, err := aes.NewCipher(seed[:])
	if err != nil {
		panic("core: aes: " + err.Error())
	}
	return &fpGen{block: b}
}

func (g *fpGen) derive(tag byte, a uint32, b uint64) FP {
	g.in[0] = tag
	binary.LittleEndian.PutUint32(g.in[1:5], a)
	binary.LittleEndian.PutUint64(g.in[5:13], b)
	g.block.Encrypt(g.out[:], g.in[:])
	return gc.LabelFromBytes(g.out[:])
}

// delta returns ΔF, the fingerprint-space image of the garbler's R.
func (g *fpGen) delta() FP { return g.derive(2, 0, 0) }

// input returns the fingerprint of input bit idx of owner.
func (g *fpGen) input(owner circuit.Owner, idx int) FP {
	return g.derive(1, uint32(owner), uint64(idx))
}

// fresh returns the fingerprint of a new base secret: the output of
// category-iv non-XOR gate `gate` in cycle `cycle`.
func (g *fpGen) fresh(cycle int, gate int) FP {
	return g.derive(0, uint32(gate), uint64(cycle))
}
