package core

import (
	"fmt"

	"arm2gc/internal/circuit"
)

// Wire states. Public wires carry a Boolean value known to both parties;
// secret wires carry labels (and, in the Scheduler, a fingerprint).
const (
	stPub0 uint8 = iota
	stPub1
	stSecret
)

// Gate actions decided by the Scheduler for the current cycle. They encode
// the paper's categories: actPub covers category i and the public-output
// cases of categories ii–iii; the copy actions are the "gate acts as a
// wire/inverter" cases of categories ii–iii; actXor and actGarble are
// category iv (free and garbled respectively).
const (
	actPub      uint8 = iota // output public; no label
	actCopyA                 // output label = input A's label
	actCopyAInv              // output label = inverse of input A's label
	actCopyB                 // output label = input B's label
	actCopyBInv              // output label = inverse of input B's label
	actCopyS                 // MUX: output label = select's label
	actCopySInv              // MUX: output label = inverse of select's label
	actXor                   // free-XOR combine of two secret labels
	actMuxXor                // MUX with inverted data inputs: out = S ⊕ A (free)
	actGarble                // garbled with one table (category iv non-XOR)
)

// CycleStats counts scheduling outcomes for one cycle (or, summed, a run).
type CycleStats struct {
	Garbled     int // tables actually sent (category iv survivors)
	Filtered    int // garbled tables removed by fanout reduction (Alg.4 l.18)
	FreeXOR     int // category-iv XOR/XNOR (no communication)
	PublicGates int // outputs computed locally (cat. i, ii/iii public cases)
	Passthrough int // gates acting as wires/inverters (cat. ii/iii)
	DeadSkipped int // gates never needed this cycle (label_fanout hit 0)
}

// Add accumulates another cycle's counts.
func (s *CycleStats) Add(o CycleStats) {
	s.Garbled += o.Garbled
	s.Filtered += o.Filtered
	s.FreeXOR += o.FreeXOR
	s.PublicGates += o.PublicGates
	s.Passthrough += o.Passthrough
	s.DeadSkipped += o.DeadSkipped
}

// Stats accumulates scheduling outcomes over a whole run.
type Stats struct {
	Cycles int
	Total  CycleStats
}

// Scheduler is the shared deterministic decision engine: given the circuit,
// the public input p and the session seed, it computes — identically on
// both sides — the per-cycle fate of every gate: public value, label copy,
// free XOR, garbled, or skipped.
//
// Classify runs in three phases. Phase A decides every gate's action from
// its input wire states and its own static fanout, recording the label
// releases the decision implies instead of applying them; phase B applies
// all recorded releases (Algorithm 6's recursive reductions) in one sweep;
// phase C derives the cycle statistics and the garbled-table slot of every
// surviving gate from the settled fanouts. The split is behavior-identical
// to the classic single walk — a gate's decision can never observe a
// reduction, because reductions only cascade backwards from consumers that
// are classified later — and it is what makes the pass parallelizable:
// phase A is data-parallel over topological levels (SetWorkers), phase B is
// one cheap serial sweep, and phase C is data-parallel over gate-index
// chunks whose partial stats merge in deterministic chunk order.
type Scheduler struct {
	C *circuit.Circuit

	gen    *fpGen
	deltaF FP

	st  []uint8 // per wire
	fp  []FP    // per wire (valid when st == stSecret)
	fan []int32 // per gate: label_fanout, reset each cycle
	act []uint8 // per gate: action for the current cycle

	fanNormal, fanFinal []int32
	dffNextSt           []uint8
	dffNextFP           []FP

	// Deferred label releases recorded by phase A, one append-only list
	// per worker (a decision releases at most three wires). The lists are
	// replayed by applyReleases; replay order does not matter — the
	// settled fanouts are order-independent — so per-worker lists are
	// both race-free and deterministic.
	rel [][]circuit.Wire

	// Per-cycle garbled-table layout from phase C: slot[i] is the table
	// index of surviving category-iv gate i (ascending in gate index, the
	// serial emission order), numTables the cycle's total. The executors
	// use them to write/read tables at their final positions from any
	// worker, keeping the stream byte-identical to the serial one.
	slot      []int32
	numTables int

	// Worker machinery (SetWorkers). gens holds one fingerprint generator
	// per worker — same AES key, separate scratch — so phase A stays
	// allocation-free and race-free; chunkStats/chunkSurv collect phase C
	// partials merged in chunk order.
	workers    int
	levels     *circuit.LevelPartition
	segs       []segment
	bar        spinBarrier
	gens       []*fpGen
	chunkStats []CycleStats
	chunkSurv  [][]int32
	allGates   []int32 // identity order, the serial walk of classifyChunk

	pub   []bool
	cycle int // 1-based during a cycle; 0 before Start
}

// NewScheduler builds a scheduler for c with public input bits pub.
func NewScheduler(c *circuit.Circuit, seed Seed, pub []bool) *Scheduler {
	s := &Scheduler{
		C:         c,
		gen:       newFPGen(seed),
		st:        make([]uint8, c.NumWires()),
		fp:        make([]FP, c.NumWires()),
		fan:       make([]int32, len(c.Gates)),
		act:       make([]uint8, len(c.Gates)),
		fanNormal: c.Fanout(true),
		fanFinal:  c.Fanout(false),
		dffNextSt: make([]uint8, len(c.DFFs)),
		dffNextFP: make([]FP, len(c.DFFs)),
		rel:       make([][]circuit.Wire, 1),
		slot:      make([]int32, len(c.Gates)),
		allGates:  make([]int32, len(c.Gates)),
		pub:       pub,
	}
	for i := range s.allGates {
		s.allGates[i] = int32(i)
	}
	s.deltaF = s.gen.delta()
	s.workers = 1
	s.bar.n = 1
	s.gens = []*fpGen{s.gen}
	s.chunkStats = make([]CycleStats, 1)
	s.chunkSurv = make([][]int32, 1)

	s.st[circuit.Const0] = stPub0
	s.st[circuit.Const1] = stPub1
	for _, p := range c.Ports {
		for b := 0; b < p.Bits; b++ {
			w := p.Base + circuit.Wire(b)
			s.initWire(w, p.Owner, p.Off+b)
		}
	}
	for i, d := range c.DFFs {
		w := c.QWire(i)
		switch d.Init.Kind {
		case circuit.InitZero:
			s.st[w] = stPub0
		case circuit.InitOne:
			s.st[w] = stPub1
		case circuit.InitPublic:
			s.initWire(w, circuit.Public, d.Init.Idx)
		case circuit.InitAlice:
			s.initWire(w, circuit.Alice, d.Init.Idx)
		case circuit.InitBob:
			s.initWire(w, circuit.Bob, d.Init.Idx)
		}
	}
	return s
}

// SetWorkers sets how many goroutines the per-cycle passes (Classify and
// the executors' label walks) may use; n < 1 and n == 1 both mean serial,
// and n is clamped to MaxWorkers. The schedule, statistics and garbled
// byte stream are identical for every worker count — parallelism only
// changes who computes each gate. Call it before the first Classify: a
// mid-run change would desync the per-worker fingerprint forks and
// release lists, so it is refused with an error once the first cycle has
// been classified. The level partition comes from the circuit's shared
// cache, so repeated sessions over one machine pay nothing here.
func (s *Scheduler) SetWorkers(n int) error {
	if s.cycle > 0 {
		return fmt.Errorf("core: SetWorkers(%d) after cycle %d: the worker count is fixed once classification starts", n, s.cycle)
	}
	if n < 1 {
		n = 1
	}
	if n > MaxWorkers {
		n = MaxWorkers
	}
	s.workers = n
	s.bar.n = int32(n)
	if n > 1 && s.levels == nil {
		s.levels = s.C.Levels()
		s.segs = planSegments(s.levels)
	}
	for len(s.gens) < n {
		s.gens = append(s.gens, s.gen.fork())
	}
	for len(s.rel) < n {
		s.rel = append(s.rel, nil)
	}
	for len(s.chunkSurv) < n {
		s.chunkSurv = append(s.chunkSurv, nil)
	}
	if len(s.chunkStats) < n {
		s.chunkStats = make([]CycleStats, n)
	}
	return nil
}

// Workers reports the configured worker count.
func (s *Scheduler) Workers() int { return s.workers }

func (s *Scheduler) initWire(w circuit.Wire, owner circuit.Owner, idx int) {
	if owner == circuit.Public {
		if idx < len(s.pub) && s.pub[idx] {
			s.st[w] = stPub1
		} else {
			s.st[w] = stPub0
		}
		return
	}
	s.st[w] = stSecret
	s.fp[w] = s.gen.input(owner, idx)
}

// Cycle returns the 1-based index of the cycle currently classified (0
// before the first Classify).
func (s *Scheduler) Cycle() int { return s.cycle }

// NumTables returns the number of garbled tables the current classified
// cycle puts on the wire (valid after Classify).
func (s *Scheduler) NumTables() int { return s.numTables }

// Classify runs the SkipGate decision pass for the next cycle: the paper's
// Phase 1 and Phase 2 classification plus all recursive label_fanout
// reductions. final marks the last cycle of the run, in which flip-flop
// next-state values are not label consumers. Call Commit after the
// executors have processed the cycle.
func (s *Scheduler) Classify(final bool) CycleStats {
	s.cycle++
	src := s.fanNormal
	if final {
		src = s.fanFinal
	}
	copy(s.fan, src)

	if s.workers > 1 {
		s.forkWorkers(func(id int) {
			cx := classCtx{gen: s.gens[id], rel: s.rel[id][:0]}
			s.walkLevels(id, func(chunk []int32) {
				s.classifyChunk(chunk, &cx)
			})
			s.rel[id] = cx.rel
			s.bar.wait() // publish the release lists
			// Phase B: the recorded releases interact through shared
			// fanout counters, so one worker applies them all; the
			// barrier publishes the settled counters to everyone.
			if id == 0 {
				s.applyReleases()
			}
			s.bar.wait()
			s.accountChunk(id, src)
		})
	} else {
		cx := classCtx{gen: s.gens[0], rel: s.rel[0][:0]}
		s.classifyChunk(s.allGates, &cx)
		s.rel[0] = cx.rel
		s.applyReleases()
		s.accountChunk(0, src)
	}
	return s.mergeAccounts()
}

// classCtx is one worker's classification context: its fingerprint
// generator and its deferred-release list.
type classCtx struct {
	gen *fpGen
	rel []circuit.Wire
}

// release records that the current decision frees one reference to the
// label on w; applyReleases replays it after classification.
func (cx *classCtx) release(w circuit.Wire) { cx.rel = append(cx.rel, w) }

// classifyChunk decides the action of every gate in idx for the current
// cycle — the one copy of the SkipGate decision logic, driven serially
// over the identity order or in parallel over level chunks. Each decision
// reads only the states of the gate's input wires (earlier levels) and
// the gate's own static fanout, and writes only that gate's slots — act
// and the output wire state/fingerprint — plus the calling worker's
// private release list, which is what lets one topological level classify
// in parallel. Releases recorded here are applied by applyReleases after
// the whole circuit is decided; deferral is invisible to the decisions
// because a reduction can only be triggered by consumers classified after
// its target.
func (s *Scheduler) classifyChunk(idx []int32, cx *classCtx) {
	gates := s.C.Gates
	gateBase := int(s.C.GateBase)
	for _, gi := range idx {
		i := int(gi)
		g := &gates[gi]
		out := gateBase + i
		sa := s.st[g.A]

		if g.Op.IsUnary() {
			if sa != stSecret {
				v := g.Op.Eval(sa == stPub1, false)
				s.setPub(i, out, v)
				continue
			}
			if g.Op == circuit.NOT {
				s.setCopy(i, out, actCopyAInv, g.A)
			} else {
				s.setCopy(i, out, actCopyA, g.A)
			}
			s.deadCheckUnary(cx, i, g.A)
			continue
		}

		if g.Op == circuit.MUX {
			s.classifyMux(i, out, g, cx)
			continue
		}

		sb := s.st[g.B]
		switch {
		case sa != stSecret && sb != stSecret:
			// Category i: both inputs public.
			s.setPub(i, out, g.Op.Eval(sa == stPub1, sb == stPub1))

		case sa != stSecret || sb != stSecret:
			// Category ii: one public input.
			var p bool
			var secretW circuit.Wire
			var copyAct, copyInvAct uint8
			if sa != stSecret {
				p = sa == stPub1
				secretW = g.B
				copyAct, copyInvAct = actCopyB, actCopyBInv
			} else {
				p = sb == stPub1
				secretW = g.A
				copyAct, copyInvAct = actCopyA, actCopyAInv
			}
			switch g.Op {
			case circuit.AND:
				if p {
					s.setCopy(i, out, copyAct, secretW)
				} else {
					s.setPubRelease(cx, i, out, false, secretW)
				}
			case circuit.OR:
				if p {
					s.setPubRelease(cx, i, out, true, secretW)
				} else {
					s.setCopy(i, out, copyAct, secretW)
				}
			case circuit.NAND:
				if p {
					s.setCopy(i, out, copyInvAct, secretW)
				} else {
					s.setPubRelease(cx, i, out, true, secretW)
				}
			case circuit.NOR:
				if p {
					s.setPubRelease(cx, i, out, false, secretW)
				} else {
					s.setCopy(i, out, copyInvAct, secretW)
				}
			case circuit.XOR:
				if p {
					s.setCopy(i, out, copyInvAct, secretW)
				} else {
					s.setCopy(i, out, copyAct, secretW)
				}
			case circuit.XNOR:
				if p {
					s.setCopy(i, out, copyAct, secretW)
				} else {
					s.setCopy(i, out, copyInvAct, secretW)
				}
			default:
				panic(fmt.Sprintf("core: op %v", g.Op))
			}
			if s.act[i] != actPub {
				s.deadCheckUnary(cx, i, secretW)
			}

		default:
			// Both secret: categories iii and iv.
			fpa, fpb := s.fp[g.A], s.fp[g.B]
			switch {
			case fpa == fpb:
				// Category iii, identical labels.
				switch g.Op {
				case circuit.AND, circuit.OR:
					s.setCopy(i, out, actCopyA, g.A)
					cx.release(g.B)
					s.deadCheckUnary(cx, i, g.A)
				case circuit.NAND, circuit.NOR:
					s.setCopy(i, out, actCopyAInv, g.A)
					cx.release(g.B)
					s.deadCheckUnary(cx, i, g.A)
				case circuit.XOR:
					s.setPubRelease2(cx, i, out, false, g.A, g.B)
				case circuit.XNOR:
					s.setPubRelease2(cx, i, out, true, g.A, g.B)
				}
			case fpa.Xor(fpb) == s.deltaF:
				// Category iii, inverted labels.
				var v bool
				switch g.Op {
				case circuit.AND, circuit.NOR, circuit.XNOR:
					v = false
				case circuit.OR, circuit.NAND, circuit.XOR:
					v = true
				}
				s.setPubRelease2(cx, i, out, v, g.A, g.B)
			default:
				// Category iv: unrelated secrets.
				s.st[out] = stSecret
				switch g.Op {
				case circuit.XOR:
					s.act[i] = actXor
					s.fp[out] = fpa.Xor(fpb)
				case circuit.XNOR:
					s.act[i] = actXor
					s.fp[out] = fpa.Xor(fpb).Xor(s.deltaF)
				default:
					s.act[i] = actGarble
					s.fp[out] = cx.gen.fresh(s.cycle, i)
				}
				if s.fan[i] == 0 {
					// No consumer can ever need this label this cycle:
					// release the inputs it would have consumed.
					cx.release(g.A)
					cx.release(g.B)
				}
			}
		}
	}
}

// applyReleases is phase B: it replays every release recorded during
// classification through the recursive reduction. The settled fanouts are
// independent of replay order — each recorded release decrements exactly
// one reference, and a cascade fires exactly once, on whichever decrement
// zeroes its gate — so this sweep leaves fan identical to the classic
// interleaved walk for any worker count.
func (s *Scheduler) applyReleases() {
	for _, list := range s.rel[:s.workers] {
		for _, w := range list {
			s.reduce(w)
		}
	}
}

// accountChunk is phase C for one contiguous gate-index chunk: partial
// cycle statistics plus — when running parallel, where the executors need
// the table layout — the chunk's surviving category-iv gates in ascending
// order. Chunks are merged in index order by mergeAccounts, so the totals
// and the table layout are identical for every worker count.
func (s *Scheduler) accountChunk(w int, src []int32) {
	lo, hi := s.chunkRange(w)
	recordSurv := s.workers > 1
	surv := s.chunkSurv[w][:0]
	var cs CycleStats
	for i := lo; i < hi; i++ {
		switch s.act[i] {
		case actPub:
			cs.PublicGates++
		case actXor, actMuxXor:
			if s.fan[i] > 0 {
				cs.FreeXOR++
			} else {
				cs.DeadSkipped++
			}
		case actGarble:
			switch {
			case s.fan[i] > 0:
				cs.Garbled++
				if recordSurv {
					surv = append(surv, int32(i))
				}
			case src[i] > 0:
				// Garbled then filtered (the paper counts these as
				// removed tables), not statically dead this cycle.
				cs.Filtered++
			default:
				cs.DeadSkipped++
			}
		default:
			if s.fan[i] > 0 {
				cs.Passthrough++
			} else {
				cs.DeadSkipped++
			}
		}
	}
	s.chunkSurv[w] = surv
	s.chunkStats[w] = cs
}

// mergeAccounts folds the phase C partials in chunk order: deterministic
// totals, and (parallel runs) slot numbers that reproduce the serial
// emission order — ascending gate index over all surviving gates.
func (s *Scheduler) mergeAccounts() CycleStats {
	var cs CycleStats
	base := int32(0)
	for w := 0; w < s.workers; w++ {
		cs.Add(s.chunkStats[w])
		for k, gi := range s.chunkSurv[w] {
			s.slot[gi] = base + int32(k)
		}
		base += int32(len(s.chunkSurv[w]))
	}
	s.numTables = cs.Garbled
	return cs
}

// classifyMux applies the SkipGate categories to the atomic multiplexer
// out = S ? B : A. A public select makes the MUX a wire to the selected
// input and releases the unselected cone — the paper's illustrative
// example and the reason register-file and memory accesses at public
// addresses are free.
func (s *Scheduler) classifyMux(i, out int, g *circuit.Gate, cx *classCtx) {
	ss, sa, sb := s.st[g.S], s.st[g.A], s.st[g.B]

	if ss != stSecret {
		// Select public: wire to the chosen input, release the other.
		src, srcSt, act := g.A, sa, actCopyA
		other, otherSt := g.B, sb
		if ss == stPub1 {
			src, srcSt, act = g.B, sb, actCopyB
			other, otherSt = g.A, sa
		}
		if srcSt != stSecret {
			if otherSt == stSecret {
				s.setPubRelease(cx, i, out, srcSt == stPub1, other)
			} else {
				s.setPub(i, out, srcSt == stPub1)
			}
			return
		}
		s.setCopy(i, out, act, src)
		if otherSt == stSecret {
			cx.release(other)
		}
		s.deadCheckUnary(cx, i, src)
		return
	}

	switch {
	case sa != stSecret && sb != stSecret:
		// Both data inputs public: the MUX computes a function of S alone.
		va, vb := sa == stPub1, sb == stPub1
		switch {
		case va == vb:
			s.setPubRelease(cx, i, out, va, g.S)
		case vb: // out = S ? 1 : 0 = S
			s.setCopy(i, out, actCopyS, g.S)
			s.deadCheckUnary(cx, i, g.S)
		default: // out = S ? 0 : 1 = ¬S
			s.setCopy(i, out, actCopySInv, g.S)
			s.deadCheckUnary(cx, i, g.S)
		}

	case sa == stSecret && sb == stSecret:
		fpa, fpb := s.fp[g.A], s.fp[g.B]
		switch {
		case fpa == fpb:
			// Equal data inputs: wire to A, release S and B.
			s.setCopy(i, out, actCopyA, g.A)
			cx.release(g.S)
			cx.release(g.B)
			s.deadCheckUnary(cx, i, g.A)
		case fpa.Xor(fpb) == s.deltaF:
			// B = ¬A, so out = S ⊕ A: free. The select-XOR may itself be
			// degenerate if S and A carry related labels.
			fpx := s.fp[g.S].Xor(fpa)
			switch fpx {
			case (FP{}):
				s.setPubRelease3(cx, i, out, false, g.S, g.A, g.B)
			case s.deltaF:
				s.setPubRelease3(cx, i, out, true, g.S, g.A, g.B)
			default:
				s.act[i] = actMuxXor
				s.st[out] = stSecret
				s.fp[out] = fpx
				cx.release(g.B)
				if s.fan[i] == 0 {
					cx.release(g.S)
					cx.release(g.A)
				}
			}
		default:
			s.setMuxGarble(i, out, g, cx)
		}

	default:
		// Select secret, exactly one data input public: a genuine 2-secret
		// function (AND/OR shape); garbled atomically with one table.
		s.setMuxGarble(i, out, g, cx)
	}
}

// setMuxGarble marks a MUX as garbled (category iv) and, when it has no
// consumers this cycle, releases everything it would have consumed.
func (s *Scheduler) setMuxGarble(i, out int, g *circuit.Gate, cx *classCtx) {
	s.act[i] = actGarble
	s.st[out] = stSecret
	s.fp[out] = cx.gen.fresh(s.cycle, i)
	if s.fan[i] == 0 {
		cx.release(g.S)
		if s.st[g.A] == stSecret {
			cx.release(g.A)
		}
		if s.st[g.B] == stSecret {
			cx.release(g.B)
		}
	}
}

// Commit applies the end-of-cycle flip-flop copy: the value or label
// fingerprint on each D input moves to its Q output for the next cycle.
func (s *Scheduler) Commit() {
	c := s.C
	for i, d := range c.DFFs {
		s.dffNextSt[i] = s.st[d.D]
		s.dffNextFP[i] = s.fp[d.D]
	}
	for i := range c.DFFs {
		w := c.QWire(i)
		s.st[w] = s.dffNextSt[i]
		s.fp[w] = s.dffNextFP[i]
	}
}

func (s *Scheduler) setPub(i, out int, v bool) {
	s.act[i] = actPub
	s.fan[i] = 0
	if v {
		s.st[out] = stPub1
	} else {
		s.st[out] = stPub0
	}
}

// setPubRelease marks the output public and releases one secret input
// reference (whose label the gate will not consume).
func (s *Scheduler) setPubRelease(cx *classCtx, i, out int, v bool, rel circuit.Wire) {
	s.setPub(i, out, v)
	cx.release(rel)
}

// setPubRelease2 releases two references.
func (s *Scheduler) setPubRelease2(cx *classCtx, i, out int, v bool, r1, r2 circuit.Wire) {
	s.setPub(i, out, v)
	cx.release(r1)
	cx.release(r2)
}

// setPubRelease3 releases three references (MUX cases).
func (s *Scheduler) setPubRelease3(cx *classCtx, i, out int, v bool, r1, r2, r3 circuit.Wire) {
	s.setPub(i, out, v)
	cx.release(r1)
	cx.release(r2)
	cx.release(r3)
}

func (s *Scheduler) setCopy(i, out int, act uint8, src circuit.Wire) {
	s.act[i] = act
	s.st[out] = stSecret
	if act == actCopyAInv || act == actCopyBInv || act == actCopySInv {
		s.fp[out] = s.fp[src].Xor(s.deltaF)
	} else {
		s.fp[out] = s.fp[src]
	}
}

// deadCheckUnary releases the single consumed input of a copy-action gate
// that has no consumers itself this cycle.
func (s *Scheduler) deadCheckUnary(cx *classCtx, i int, consumed circuit.Wire) {
	if s.fan[i] == 0 {
		cx.release(consumed)
	}
}

// reduce is the paper's recursive_reduction (Algorithm 6): decrement the
// label_fanout of the gate producing w; when it reaches zero the gate's
// label is never needed, so recursively release the inputs it consumed.
// Only applyReleases calls it, after every gate's action is decided.
func (s *Scheduler) reduce(w circuit.Wire) {
	for {
		gi := s.C.WireGate(w)
		if gi < 0 {
			return // ports, flip-flop outputs and constants cannot be skipped
		}
		if s.fan[gi] == 0 {
			return
		}
		s.fan[gi]--
		if s.fan[gi] != 0 {
			return
		}
		g := &s.C.Gates[gi]
		switch s.act[gi] {
		case actCopyA, actCopyAInv:
			w = g.A
		case actCopyB, actCopyBInv:
			w = g.B
		case actCopyS, actCopySInv:
			w = g.S
		case actMuxXor:
			s.reduce(g.S)
			w = g.A
		case actXor:
			s.reduce(g.A)
			w = g.B
		case actGarble:
			// Releasing a public or port wire is a no-op inside reduce, so
			// every referenced input can be released uniformly.
			if g.Op == circuit.MUX {
				s.reduce(g.S)
			}
			s.reduce(g.A)
			w = g.B
		default:
			return // actPub consumed no labels
		}
	}
}

// WireState reports the classification of a wire after Classify: public
// value (ok=true) or secret (ok=false).
func (s *Scheduler) WireState(w circuit.Wire) (val bool, public bool) {
	switch s.st[w] {
	case stPub0:
		return false, true
	case stPub1:
		return true, true
	}
	return false, false
}

// GateSurvives reports whether gate i's garbled table is actually sent
// this cycle (category iv non-XOR with non-zero final label_fanout).
func (s *Scheduler) GateSurvives(i int) bool {
	return s.act[i] == actGarble && s.fan[i] > 0
}
