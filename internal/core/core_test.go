package core

import (
	"context"
	"math/rand"
	"testing"

	"arm2gc/internal/build"
	"arm2gc/internal/circuit"
	"arm2gc/internal/circuit/circtest"
	"arm2gc/internal/gc"
	"arm2gc/internal/sim"
)

// runConventional is the baseline oracle: the gc package engine, which
// garbles every gate every cycle.
func runConventional(t *testing.T, c *circuit.Circuit, in sim.Inputs, cycles int) []bool {
	t.Helper()
	g := gc.NewGarbler(c, gc.CryptoRand)
	e := gc.NewEvaluator(c)
	pairs := g.BobPairs()
	chosen := make([]gc.Label, len(pairs))
	for i := range pairs {
		if in.Bit(circuit.Bob, i) {
			chosen[i] = pairs[i][1]
		} else {
			chosen[i] = pairs[i][0]
		}
	}
	if err := e.SetInitLabels(g.ActiveInitLabels(in.Public, in.Alice), chosen); err != nil {
		t.Fatal(err)
	}
	for cyc := 0; cyc < cycles; cyc++ {
		ts := g.GarbleCycle(nil)
		rest, err := e.EvalCycle(ts)
		if err != nil {
			t.Fatal(err)
		}
		if len(rest) != 0 {
			t.Fatalf("conventional: %d leftover tables", len(rest))
		}
	}
	ws := c.OutputWires()
	return e.Decode(ws, g.DecodeBits(ws))
}

// TestSkipGateMatchesSimAndConventional is the central correctness
// property: on random sequential circuits with random public/private
// inputs, SkipGate, conventional GC, and the plaintext simulator agree.
func TestSkipGateMatchesSimAndConventional(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 60; trial++ {
		c, nA, nB := circtest.Random(rng, 80, 10)
		in := sim.Inputs{
			Alice:  circtest.RandBits(rng, nA),
			Bob:    circtest.RandBits(rng, nB),
			Public: circtest.RandBits(rng, c.PublicBits),
		}
		cycles := 1 + rng.Intn(5)
		want := sim.Run(c, in, cycles)
		conv := runConventional(t, c, in, cycles)
		res, err := RunLocal(context.Background(), c, in, RunOpts{Cycles: cycles})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i := range want {
			if conv[i] != want[i] {
				t.Fatalf("trial %d bit %d: conventional %v, sim %v", trial, i, conv[i], want[i])
			}
			if res.Outputs[i] != want[i] {
				t.Fatalf("trial %d bit %d: skipgate %v, sim %v", trial, i, res.Outputs[i], want[i])
			}
		}
		// SkipGate never sends more tables than conventional GC.
		convTables := c.Stats().NonXOR * cycles
		if res.Stats.Total.Garbled > convTables {
			t.Fatalf("trial %d: skipgate %d tables > conventional %d",
				trial, res.Stats.Total.Garbled, convTables)
		}
	}
}

// TestAllPublicIsFree: with only public inputs every gate is category i —
// zero garbled tables regardless of circuit shape.
func TestAllPublicIsFree(t *testing.T) {
	b := build.New("pubonly")
	a := b.Input(circuit.Public, "a", 16)
	x := b.Input(circuit.Public, "x", 16)
	b.Output("out", b.MulLow(a, x))
	c := b.MustCompile()

	in := sim.Inputs{Public: sim.UnpackUint(uint64(1234)|uint64(777)<<16, 32)}
	res, err := RunLocal(context.Background(), c, in, RunOpts{Cycles: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Total.Garbled != 0 {
		t.Errorf("public-only circuit garbled %d tables", res.Stats.Total.Garbled)
	}
	if got, want := sim.PackUint(res.Outputs), uint64(1234*777)&0xffff; got != want {
		t.Errorf("output %d, want %d", got, want)
	}
}

// TestIllustrativeMux reproduces the paper's Section 3 example: a MUX
// whose select is public skips the unselected sub-circuit entirely and the
// MUX gates act as wires.
func TestIllustrativeMux(t *testing.T) {
	mk := func() *circuit.Circuit {
		b := build.New("muxsel")
		a := b.Input(circuit.Alice, "a", 8)
		x := b.Input(circuit.Bob, "x", 8)
		sel := b.Input(circuit.Public, "sel", 1)
		f0 := b.Add(a, x)    // 7 non-XOR
		f1 := b.AndBus(a, x) // 8 non-XOR
		b.Output("out", b.MuxBus(sel[0], f1, f0))
		return b.MustCompile()
	}
	c := mk()
	av, xv := uint64(0xa5), uint64(0x3c)
	for _, sel := range []bool{false, true} {
		in := sim.Inputs{
			Alice:  sim.UnpackUint(av, 8),
			Bob:    sim.UnpackUint(xv, 8),
			Public: []bool{sel},
		}
		res, err := RunLocal(context.Background(), c, in, RunOpts{Cycles: 1})
		if err != nil {
			t.Fatal(err)
		}
		want, wantTables := (av+xv)&0xff, 7
		if sel {
			want, wantTables = av&xv, 8
		}
		if got := sim.PackUint(res.Outputs); got != want {
			t.Errorf("sel=%v: output %d, want %d", sel, got, want)
		}
		if res.Stats.Total.Garbled != wantTables {
			t.Errorf("sel=%v: garbled %d tables, want %d (unselected branch + MUX must be skipped)",
				sel, res.Stats.Total.Garbled, wantTables)
		}
	}
}

// sum32Serial builds TinyGarble's bit-serial adder: two 32-bit shift
// registers initialized from the parties' inputs, a single full adder, a
// carry flip-flop, and a 1-bit output streamed over 32 cycles.
func sum32Serial(n int) *circuit.Circuit {
	b := build.New("sumserial")
	aOff := b.AllocInputBits(circuit.Alice, n)
	bOff := b.AllocInputBits(circuit.Bob, n)
	mkInit := func(kind circuit.InitKind, off int) []circuit.Init {
		inits := make([]circuit.Init, n)
		for i := range inits {
			inits[i] = circuit.Init{Kind: kind, Idx: off + i}
		}
		return inits
	}
	ra := b.RegInit("a", mkInit(circuit.InitAlice, aOff))
	rb := b.RegInit("b", mkInit(circuit.InitBob, bOff))
	carry := b.Reg("carry", 1)
	sum, cout := b.FullAdder(ra.Q()[0], rb.Q()[0], carry.Q()[0])
	carry.SetNext(build.Bus{cout})
	ra.SetNext(build.ShrConst(ra.Q(), 1, build.F))
	rb.SetNext(build.ShrConst(rb.Q(), 1, build.F))
	b.Output("sum", build.Bus{sum})
	return b.MustCompile()
}

// TestTable1Sum32 reproduces the paper's Table 1 Sum 32 row exactly:
// 32 non-XOR without SkipGate, 31 with, 1 skipped (the final-cycle carry).
func TestTable1Sum32(t *testing.T) {
	c := sum32Serial(32)
	if got := c.Stats().NonXOR; got != 1 {
		t.Fatalf("serial adder has %d non-XOR gates per cycle, want 1", got)
	}
	av, xv := uint64(0xdeadbeef), uint64(0x12345678)
	in := sim.Inputs{Alice: sim.UnpackUint(av, 32), Bob: sim.UnpackUint(xv, 32)}
	res, err := RunLocal(context.Background(), c, in, RunOpts{Cycles: 32, RecordEveryCycle: true})
	if err != nil {
		t.Fatal(err)
	}
	var got uint64
	for i, bits := range res.PerCycle {
		if bits[0] {
			got |= 1 << uint(i)
		}
	}
	if want := (av + xv) & 0xffffffff; got != want {
		t.Errorf("serial sum = %#x, want %#x", got, want)
	}
	if res.Stats.Total.Garbled != 31 {
		t.Errorf("garbled %d, want 31 (Table 1)", res.Stats.Total.Garbled)
	}
	if res.Stats.Total.Filtered != 1 {
		t.Errorf("filtered %d, want 1 (Table 1 skipped column)", res.Stats.Total.Filtered)
	}
}

// TestSchedulerDeterminism: two schedulers with the same seed and public
// input make identical decisions — the property that lets Alice and Bob
// run SkipGate without exchanging any classification data.
func TestSchedulerDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		c, _, _ := circtest.Random(rng, 60, 8)
		pub := circtest.RandBits(rng, c.PublicBits)
		seed := Seed{1, 2, 3}
		s1 := NewScheduler(c, seed, pub)
		s2 := NewScheduler(c, seed, pub)
		for cyc := 0; cyc < 4; cyc++ {
			final := cyc == 3
			cs1 := s1.Classify(final)
			cs2 := s2.Classify(final)
			if cs1 != cs2 {
				t.Fatalf("trial %d cycle %d: stats diverge: %+v vs %+v", trial, cyc, cs1, cs2)
			}
			for i := range c.Gates {
				if s1.act[i] != s2.act[i] || s1.fan[i] != s2.fan[i] {
					t.Fatalf("trial %d cycle %d gate %d: act/fan diverge", trial, cyc, i)
				}
			}
			s1.Commit()
			s2.Commit()
		}
	}
}

// TestMaterializationInvariant: any gate whose label survives (fan > 0)
// only consumes labels that are themselves materialized.
func TestMaterializationInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 30; trial++ {
		c, _, _ := circtest.Random(rng, 100, 12)
		pub := circtest.RandBits(rng, c.PublicBits)
		s := NewScheduler(c, Seed{}, pub)
		for cyc := 0; cyc < 3; cyc++ {
			s.Classify(cyc == 2)
			materialized := func(w circuit.Wire) bool {
				if s.st[w] != stSecret {
					return false
				}
				gi := c.WireGate(w)
				return gi < 0 || s.fan[gi] > 0
			}
			for i := range c.Gates {
				if s.fan[i] <= 0 {
					continue
				}
				g := &c.Gates[i]
				bad := func(w circuit.Wire) bool {
					// Consumed wires must be secret and materialized.
					return !materialized(w)
				}
				failed := false
				switch s.act[i] {
				case actCopyA, actCopyAInv:
					failed = bad(g.A)
				case actCopyB, actCopyBInv:
					failed = bad(g.B)
				case actCopyS, actCopySInv:
					failed = bad(g.S)
				case actMuxXor:
					failed = bad(g.S) || bad(g.A)
				case actXor:
					failed = bad(g.A) || bad(g.B)
				case actGarble:
					if g.Op == circuit.MUX {
						failed = bad(g.S)
						if s.st[g.A] == stSecret {
							failed = failed || bad(g.A)
						}
						if s.st[g.B] == stSecret {
							failed = failed || bad(g.B)
						}
					} else {
						failed = bad(g.A) || bad(g.B)
					}
				}
				if failed {
					t.Fatalf("trial %d cycle %d gate %d (%v, act %d): consumes dead wire",
						trial, cyc, i, g.Op, s.act[i])
				}
			}
			s.Commit()
		}
	}
}

// TestCountMatchesRunLocal: the schedule-only Count API reports exactly
// the statistics of a full crypto run.
func TestCountMatchesRunLocal(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 15; trial++ {
		c, nA, nB := circtest.Random(rng, 70, 9)
		in := sim.Inputs{
			Alice:  circtest.RandBits(rng, nA),
			Bob:    circtest.RandBits(rng, nB),
			Public: circtest.RandBits(rng, c.PublicBits),
		}
		cycles := 1 + rng.Intn(4)
		res, err := RunLocal(context.Background(), c, in, RunOpts{Cycles: cycles})
		if err != nil {
			t.Fatal(err)
		}
		st, err := Count(context.Background(), c, in.Public, CountOpts{Cycles: cycles})
		if err != nil {
			t.Fatal(err)
		}
		if st != res.Stats {
			t.Fatalf("trial %d: Count %+v != RunLocal %+v", trial, st, res.Stats)
		}
	}
}

// TestHaltWire: a circuit that raises a public done flag stops the run.
func TestHaltWire(t *testing.T) {
	b := build.New("halt")
	cnt := b.Reg("cnt", 4)
	inc, _ := b.Inc(cnt.Q())
	cnt.SetNext(inc)
	done := b.Eq(cnt.Q(), build.ConstBus(5, 4))
	b.Output("done", build.Bus{done})
	b.Output("cnt", cnt.Q())
	c := b.MustCompile()

	res, err := RunLocal(context.Background(), c, sim.Inputs{}, RunOpts{Cycles: 100, StopOutput: "done"})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Halted {
		t.Fatal("run did not halt")
	}
	if res.Stats.Cycles != 6 {
		t.Errorf("halted after %d cycles, want 6", res.Stats.Cycles)
	}
}
