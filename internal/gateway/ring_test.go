package gateway

import (
	"fmt"
	"testing"
	"time"
)

// TestRingConsistency: keys route stably, and removing one backend moves
// only the keys that backend owned — every other key keeps its node,
// which is the property that preserves warm caches across fleet resizes.
func TestRingConsistency(t *testing.T) {
	r := newRing(64)
	nodes := []string{"a:1", "b:1", "c:1"}
	for _, n := range nodes {
		r.add(n)
	}
	all := func(string) bool { return true }

	const keys = 1000
	owner := make(map[string]string, keys)
	counts := make(map[string]int)
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("prog-%d", i)
		addr := r.pick(k, all)
		if addr == "" {
			t.Fatalf("no owner for %q", k)
		}
		if again := r.pick(k, all); again != addr {
			t.Fatalf("key %q flapped: %q then %q", k, addr, again)
		}
		owner[k] = addr
		counts[addr]++
	}
	for _, n := range nodes {
		if counts[n] == 0 {
			t.Fatalf("backend %q owns no keys: %v", n, counts)
		}
	}

	if moved := r.remove("b:1"); moved != 64 {
		t.Fatalf("remove moved %d points, want 64", moved)
	}
	for k, was := range owner {
		now := r.pick(k, all)
		if was != "b:1" && now != was {
			t.Fatalf("key %q moved %q→%q though its backend stayed", k, was, now)
		}
		if was == "b:1" && (now != "a:1" && now != "c:1") {
			t.Fatalf("orphaned key %q landed on %q", k, now)
		}
	}
}

// TestRingSpill: when the affinity node fails the admission check the
// pick spills to the next distinct node; when nothing qualifies it
// reports "".
func TestRingSpill(t *testing.T) {
	r := newRing(16)
	r.add("a:1")
	r.add("b:1")
	home := r.pick("key", func(string) bool { return true })
	other := "a:1"
	if home == "a:1" {
		other = "b:1"
	}
	got := r.pick("key", func(addr string) bool { return addr != home })
	if got != other {
		t.Fatalf("spill pick = %q, want %q", got, other)
	}
	if got := r.pick("key", func(string) bool { return false }); got != "" {
		t.Fatalf("exhausted pick = %q, want empty", got)
	}
	empty := newRing(16)
	if got := empty.pick("key", func(string) bool { return true }); got != "" {
		t.Fatalf("empty-ring pick = %q, want empty", got)
	}
}

// TestPeerLimiter: a burst drains the bucket, a dry bucket sheds with a
// sane Retry-After hint, and tokens accrue back at the configured rate —
// all on an injected clock.
func TestPeerLimiter(t *testing.T) {
	l := newPeerLimiter(2, 3) // 2 tokens/s, burst 3
	clock := time.Unix(100, 0)
	l.now = func() time.Time { return clock }

	for i := 0; i < 3; i++ {
		if ok, _ := l.allow("peer"); !ok {
			t.Fatalf("burst request %d shed", i)
		}
	}
	ok, after := l.allow("peer")
	if ok {
		t.Fatal("dry bucket admitted a request")
	}
	if after <= 0 || after > time.Second {
		t.Fatalf("Retry-After hint = %v, want (0, 1s]", after)
	}
	// Other peers have their own buckets.
	if ok, _ := l.allow("other"); !ok {
		t.Fatal("fresh peer shed by a stranger's dry bucket")
	}
	// Half a second accrues one token at rate 2.
	clock = clock.Add(600 * time.Millisecond)
	if ok, _ := l.allow("peer"); !ok {
		t.Fatal("accrued token not granted")
	}
	if ok, _ := l.allow("peer"); ok {
		t.Fatal("second token granted after accruing only one")
	}
}
