package gateway

import (
	"context"
	"crypto/tls"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"arm2gc"
	"arm2gc/internal/devcert"
)

// The integration tests run a real fleet: backend arm2gc.Servers on
// loopback listeners, a Gateway in front, and arm2gc.Clients dialing the
// gateway — every byte of every session crosses two TCP hops and the
// frame-aware relay.

const addSrc = `
void gc_main(const int *a, const int *b, int *c) {
	c[0] = a[0] + b[0];
	c[1] = a[0] > b[0] ? a[0] : b[0];
}
`

// slowSrc loops enough to keep a session garbling for a while — the
// window the chaos test kills a backend in.
const slowSrc = `
void gc_main(const int *a, const int *b, int *c) {
	unsigned acc = 0;
	for (int i = 0; i < 64; i = i + 1) {
		acc = acc + ((a[0] ^ i) * (b[0] + i));
	}
	c[0] = acc;
	c[1] = 0;
}
`

func testLayout() arm2gc.Layout {
	return arm2gc.Layout{IMemWords: 64, AliceWords: 1, BobWords: 1, OutWords: 2, ScratchWords: 16}
}

func compileProg(t testing.TB, name, src string) *arm2gc.Program {
	t.Helper()
	prog, warnings, err := arm2gc.CompileC(name, src, testLayout())
	if err != nil {
		t.Fatal(err)
	}
	if len(warnings) != 0 {
		t.Fatalf("unexpected warnings: %v", warnings)
	}
	return prog
}

// testBackend is one fleet member under test control.
type testBackend struct {
	addr string
	srv  *arm2gc.Server
	eng  *arm2gc.Engine
	stop func()
}

// startBackend serves a Server on a fresh loopback listener (or on addr
// when non-empty, for the chaos test's restart). Drain is zero so a
// cancelled backend kills its sessions immediately.
func startBackend(t *testing.T, eng *arm2gc.Engine, addr string, register func(*arm2gc.Server) error, opts ...arm2gc.ServerOption) *testBackend {
	t.Helper()
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	srv := arm2gc.NewServer(eng, append([]arm2gc.ServerOption{arm2gc.WithDrainTimeout(0)}, opts...)...)
	if err := register(srv); err != nil {
		ln.Close()
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); srv.Serve(ctx, ln) }()
	b := &testBackend{addr: ln.Addr().String(), srv: srv, eng: eng}
	b.stop = func() {
		cancel()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Error("backend Serve did not return")
		}
	}
	return b
}

// startGateway serves a Gateway on a fresh loopback listener.
func startGateway(t *testing.T, cfg Config) (string, *Gateway, func()) {
	t.Helper()
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = 50 * time.Millisecond
	}
	if cfg.Logf == nil {
		cfg.Logf = t.Logf
	}
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- g.Serve(ctx, ln) }()
	return ln.Addr().String(), g, func() {
		cancel()
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("gateway Serve returned %v on shutdown, want nil", err)
			}
		case <-time.After(10 * time.Second):
			t.Error("gateway Serve did not return after shutdown")
		}
	}
}

// waitFor polls cond: the gateway adds a relay hop, so a backend's
// counters settle a moment after the client's Evaluate returns (the
// terminal outputs frame is still crossing when the client comes back).
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func registerAdd(prog *arm2gc.Program) func(*arm2gc.Server) error {
	return func(s *arm2gc.Server) error {
		return s.Register("add", prog,
			arm2gc.WithMaxCycles(10_000),
			arm2gc.WithGarblerInput([]uint32{100}),
			arm2gc.WithTraceReuse())
	}
}

// TestGatewayEndToEnd: sessions relayed through the gateway compute the
// right answer, a connection carries many sequential sessions, backend
// rejections relay transparently without costing the connection, and the
// counters add up.
func TestGatewayEndToEnd(t *testing.T) {
	prog := compileProg(t, "add", addSrc)
	eng := arm2gc.NewEngine()
	b1 := startBackend(t, eng, "", registerAdd(prog))
	defer b1.stop()
	b2 := startBackend(t, eng, "", registerAdd(prog))
	defer b2.stop()
	addr, g, stop := startGateway(t, Config{Backends: []string{b1.addr, b2.addr}})
	defer stop()

	cl, err := arm2gc.Dial(context.Background(), addr, arm2gc.WithClientEngine(eng))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Register("add", prog); err != nil {
		t.Fatal(err)
	}
	const sessions = 3
	for i := 0; i < sessions; i++ {
		info, err := cl.Evaluate(context.Background(), "add", []uint32{uint32(i)})
		if err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
		if info.Outputs[0] != 100+uint32(i) {
			t.Fatalf("session %d: sum = %d, want %d", i, info.Outputs[0], 100+i)
		}
	}

	// An unknown program is rejected by the backend; the relay forwards
	// the verdict and the connection keeps serving.
	if err := cl.Register("ghost", compileProg(t, "ghost", addSrc)); err != nil {
		t.Fatal(err)
	}
	var rej *arm2gc.RejectedError
	if _, err := cl.Evaluate(context.Background(), "ghost", []uint32{1}); !errors.As(err, &rej) {
		t.Fatalf("unknown program: got %v, want *RejectedError", err)
	}
	if info, err := cl.Evaluate(context.Background(), "add", []uint32{7}); err != nil || info.Outputs[0] != 107 {
		t.Fatalf("post-rejection session: %v, %v", info, err)
	}

	m := g.Metrics()
	if m.Proposals != sessions+2 {
		t.Errorf("proposals = %d, want %d", m.Proposals, sessions+2)
	}
	var routed int64
	for _, b := range m.Backends {
		routed += b.Routed
		if b.Failed != 0 {
			t.Errorf("backend %s failed = %d, want 0", b.Addr, b.Failed)
		}
	}
	if routed != sessions+2 {
		t.Errorf("routed = %d, want %d", routed, sessions+2)
	}
	waitFor(t, "fleet served count", func() bool {
		return b1.srv.SessionsServed()+b2.srv.SessionsServed() == sessions+1
	})
}

// TestGatewaySharding is the tentpole experiment: M sessions for one
// program all pin to one backend under consistent hashing — exactly one
// classification trace is recorded across the fleet — while the
// round-robin control arm spreads them and pays the classification on
// every backend.
func TestGatewaySharding(t *testing.T) {
	const sessions = 4
	run := func(t *testing.T, disableAffinity bool) (recA, recB, servedA, servedB int64) {
		prog := compileProg(t, "add", addSrc)
		engA, engB := arm2gc.NewEngine(), arm2gc.NewEngine()
		bA := startBackend(t, engA, "", registerAdd(prog))
		defer bA.stop()
		bB := startBackend(t, engB, "", registerAdd(prog))
		defer bB.stop()
		addr, _, stop := startGateway(t, Config{
			Backends:        []string{bA.addr, bB.addr},
			DisableAffinity: disableAffinity,
		})
		defer stop()

		cl, err := arm2gc.Dial(context.Background(), addr, arm2gc.WithClientEngine(arm2gc.NewEngine()))
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		if err := cl.Register("add", prog); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < sessions; i++ {
			info, err := cl.Evaluate(context.Background(), "add", []uint32{uint32(i)})
			if err != nil {
				t.Fatalf("session %d: %v", i, err)
			}
			if info.Outputs[0] != 100+uint32(i) {
				t.Fatalf("session %d: sum = %d, want %d", i, info.Outputs[0], 100+i)
			}
		}
		waitFor(t, "fleet served count", func() bool {
			return bA.srv.SessionsServed()+bB.srv.SessionsServed() == sessions
		})
		return engA.TraceRecordings(), engB.TraceRecordings(),
			bA.srv.SessionsServed(), bB.srv.SessionsServed()
	}

	t.Run("affinity pins one backend", func(t *testing.T) {
		recA, recB, servedA, servedB := run(t, false)
		if recA+recB != 1 {
			t.Errorf("fleet recorded %d classification traces, want exactly 1", recA+recB)
		}
		if (servedA != sessions || servedB != 0) && (servedA != 0 || servedB != sessions) {
			t.Errorf("served split %d/%d, want all %d on one backend", servedA, servedB, sessions)
		}
	})
	t.Run("round-robin spreads and repays", func(t *testing.T) {
		recA, recB, servedA, servedB := run(t, true)
		if recA+recB != 2 {
			t.Errorf("fleet recorded %d classification traces, want 2 (one per backend)", recA+recB)
		}
		if servedA == 0 || servedB == 0 {
			t.Errorf("served split %d/%d, want both backends serving", servedA, servedB)
		}
	})
}

// TestGatewayOutputModes drives the relay's three terminal shapes on one
// connection: evaluator-only sessions end silently (the next client
// frame is a proposal), garbler-only sessions end on the client's
// outputs frame with no decode, and both-mode sessions do both.
func TestGatewayOutputModes(t *testing.T) {
	progE := compileProg(t, "evalonly", addSrc)
	progG := compileProg(t, "garbonly", addSrc)
	progB := compileProg(t, "both", addSrc)
	eng := arm2gc.NewEngine()
	b := startBackend(t, eng, "", func(s *arm2gc.Server) error {
		if err := s.Register("evalonly", progE,
			arm2gc.WithMaxCycles(10_000),
			arm2gc.WithGarblerInput([]uint32{10}),
			arm2gc.WithOutputMode(arm2gc.OutputEvaluatorOnly)); err != nil {
			return err
		}
		if err := s.Register("garbonly", progG,
			arm2gc.WithMaxCycles(10_000),
			arm2gc.WithGarblerInput([]uint32{20}),
			arm2gc.WithOutputMode(arm2gc.OutputGarblerOnly)); err != nil {
			return err
		}
		return s.Register("both", progB,
			arm2gc.WithMaxCycles(10_000),
			arm2gc.WithGarblerInput([]uint32{30}))
	})
	defer b.stop()
	addr, _, stop := startGateway(t, Config{Backends: []string{b.addr}})
	defer stop()

	cl, err := arm2gc.Dial(context.Background(), addr, arm2gc.WithClientEngine(eng))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for _, reg := range []struct {
		name string
		prog *arm2gc.Program
	}{{"evalonly", progE}, {"garbonly", progG}, {"both", progB}} {
		if err := cl.Register(reg.name, reg.prog); err != nil {
			t.Fatal(err)
		}
	}

	// Two passes so every mode transition (silent end → proposal,
	// outputs end → proposal) occurs mid-connection at least once.
	for pass := 0; pass < 2; pass++ {
		info, err := cl.Evaluate(context.Background(), "evalonly", []uint32{2},
			arm2gc.WithOutputMode(arm2gc.OutputEvaluatorOnly))
		if err != nil {
			t.Fatalf("pass %d evalonly: %v", pass, err)
		}
		if info.Outputs[0] != 12 {
			t.Fatalf("pass %d evalonly: sum = %d, want 12", pass, info.Outputs[0])
		}
		info, err = cl.Evaluate(context.Background(), "garbonly", []uint32{3},
			arm2gc.WithOutputMode(arm2gc.OutputGarblerOnly))
		if err != nil {
			t.Fatalf("pass %d garbonly: %v", pass, err)
		}
		if len(info.Outputs) != 0 {
			t.Fatalf("pass %d garbonly: evaluator learned outputs %v", pass, info.Outputs)
		}
		info, err = cl.Evaluate(context.Background(), "both", []uint32{4})
		if err != nil {
			t.Fatalf("pass %d both: %v", pass, err)
		}
		if info.Outputs[0] != 34 {
			t.Fatalf("pass %d both: sum = %d, want 34", pass, info.Outputs[0])
		}
	}
}

// TestGatewayShedRateLimit: past the per-peer burst the gateway sheds
// with a Retry-After hint, the client surfaces it as *RetryableError,
// and the connection stays usable.
func TestGatewayShedRateLimit(t *testing.T) {
	prog := compileProg(t, "add", addSrc)
	eng := arm2gc.NewEngine()
	b := startBackend(t, eng, "", registerAdd(prog))
	defer b.stop()
	addr, g, stop := startGateway(t, Config{
		Backends:     []string{b.addr},
		RatePerPeer:  0.01, // no meaningful refill within the test
		BurstPerPeer: 2,
	})
	defer stop()

	cl, err := arm2gc.Dial(context.Background(), addr, arm2gc.WithClientEngine(eng))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Register("add", prog); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := cl.Evaluate(context.Background(), "add", []uint32{1}); err != nil {
			t.Fatalf("burst session %d: %v", i, err)
		}
	}
	var retry *arm2gc.RetryableError
	_, err = cl.Evaluate(context.Background(), "add", []uint32{1})
	if !errors.As(err, &retry) {
		t.Fatalf("shed session: got %v, want *RetryableError", err)
	}
	if retry.After <= 0 {
		t.Errorf("shed Retry-After = %v, want positive", retry.After)
	}
	// The shed kept the connection: the next attempt reaches the gateway
	// again (and is shed again — the bucket is still dry).
	if _, err = cl.Evaluate(context.Background(), "add", []uint32{1}); !errors.As(err, &retry) {
		t.Fatalf("post-shed session: got %v, want *RetryableError", err)
	}
	if m := g.Metrics(); m.ShedRateLimit != 2 {
		t.Errorf("shed counter = %d, want 2", m.ShedRateLimit)
	}
}

// TestGatewayChaosKillBackend is the chaos drill: kill the backend
// serving a program mid-session. The in-flight session fails cleanly,
// the gateway ejects the corpse, later sessions succeed on the survivor,
// and once the backend comes back the prober re-admits it.
func TestGatewayChaosKillBackend(t *testing.T) {
	prog := compileProg(t, "slow", slowSrc)
	register := func(s *arm2gc.Server) error {
		return s.Register("slow", prog,
			arm2gc.WithMaxCycles(10_000),
			arm2gc.WithGarblerInput([]uint32{5}),
			arm2gc.WithTraceReuse())
	}
	engA, engB := arm2gc.NewEngine(), arm2gc.NewEngine()
	bA := startBackend(t, engA, "", register)
	defer bA.stop()
	bB := startBackend(t, engB, "", register)
	defer bB.stop()
	addr, g, stop := startGateway(t, Config{Backends: []string{bA.addr, bB.addr}})
	defer stop()
	clientEng := arm2gc.NewEngine()

	dial := func() *arm2gc.Client {
		t.Helper()
		cl, err := arm2gc.Dial(context.Background(), addr, arm2gc.WithClientEngine(clientEng))
		if err != nil {
			t.Fatal(err)
		}
		if err := cl.Register("slow", prog); err != nil {
			t.Fatal(err)
		}
		return cl
	}

	// Warm-up session finds which backend owns "slow" on the ring.
	cl := dial()
	if _, err := cl.Evaluate(context.Background(), "slow", []uint32{3}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "warm-up session to count", func() bool {
		return bA.srv.SessionsServed()+bB.srv.SessionsServed() == 1
	})
	victim, survivor := bA, bB
	if bB.srv.SessionsServed() > 0 {
		victim, survivor = bB, bA
	}

	// Kill the victim mid-session: wait until the next session is
	// actively garbling there, then cancel its Serve (drain 0 closes its
	// connections immediately).
	evalErr := make(chan error, 1)
	go func() {
		_, err := cl.Evaluate(context.Background(), "slow", []uint32{4})
		evalErr <- err
	}()
	deadline := time.Now().Add(10 * time.Second)
	for victim.srv.Metrics().SessionsActive == 0 {
		if time.Now().After(deadline) {
			t.Fatal("session never went active on the victim")
		}
		time.Sleep(time.Millisecond)
	}
	victim.stop()
	select {
	case err := <-evalErr:
		if err == nil {
			t.Fatal("mid-session kill: Evaluate succeeded, want an error")
		}
		t.Logf("in-flight session failed with: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("in-flight session hung after backend kill")
	}
	cl.Close()

	// The gateway has ejected the victim; a fresh client's sessions
	// spill to the survivor.
	cl2 := dial()
	if _, err := cl2.Evaluate(context.Background(), "slow", []uint32{6}); err != nil {
		t.Fatalf("post-kill session on survivor: %v", err)
	}
	cl2.Close()
	waitFor(t, "survivor to serve", func() bool { return survivor.srv.SessionsServed() > 0 })
	m := g.Metrics()
	if m.Ejections == 0 {
		t.Error("no ejection counted after backend death")
	}
	var victimFailed int64
	for _, b := range m.Backends {
		if b.Addr == victim.addr {
			victimFailed = b.Failed
		}
	}
	if victimFailed == 0 {
		t.Error("victim's failed counter is zero")
	}

	// Resurrect the victim on its old address; the prober re-admits it
	// and the program's sessions come home to the ring node.
	reborn := startBackend(t, victim.eng, victim.addr, register)
	defer reborn.stop()
	deadline = time.Now().Add(10 * time.Second)
	for {
		healthy := false
		for _, b := range g.Backends() {
			if b.Addr == victim.addr && b.Healthy {
				healthy = true
			}
		}
		if healthy {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("backend never re-admitted after restart")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if g.Metrics().Readmissions == 0 {
		t.Error("no re-admission counted")
	}
	cl3 := dial()
	defer cl3.Close()
	if _, err := cl3.Evaluate(context.Background(), "slow", []uint32{7}); err != nil {
		t.Fatalf("session after re-admission: %v", err)
	}
	waitFor(t, "affinity to come home", func() bool { return reborn.srv.SessionsServed() == 1 })
}

// TestGatewayAdminOps: the authenticated admin endpoint retires and
// re-registers programs and resizes the fleet live; bad or missing
// credentials are refused in constant time.
func TestGatewayAdminOps(t *testing.T) {
	prog := compileProg(t, "add", addSrc)
	eng := arm2gc.NewEngine()
	b := startBackend(t, eng, "", registerAdd(prog))
	defer b.stop()
	addr, g, stop := startGateway(t, Config{Backends: []string{b.addr}})
	defer stop()

	const token = "sesame"
	admin := httptest.NewServer(g.AdminHandler(token))
	defer admin.Close()
	post := func(path string, wantCode int) string {
		t.Helper()
		req, _ := http.NewRequest("POST", admin.URL+path, nil)
		req.Header.Set("Authorization", "Bearer "+token)
		resp, err := admin.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != wantCode {
			t.Fatalf("POST %s = %d (%s), want %d", path, resp.StatusCode, body, wantCode)
		}
		return string(body)
	}

	// Unauthenticated and wrongly-authenticated requests fail closed.
	for _, auth := range []string{"", "Bearer wrong", "Basic sesame"} {
		req, _ := http.NewRequest("GET", admin.URL+"/backends", nil)
		if auth != "" {
			req.Header.Set("Authorization", auth)
		}
		resp, err := admin.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusForbidden {
			t.Fatalf("auth %q: status %d, want 403", auth, resp.StatusCode)
		}
	}
	// An empty configured token disables the endpoint even with an
	// empty bearer.
	disabled := httptest.NewServer(g.AdminHandler(""))
	defer disabled.Close()
	req, _ := http.NewRequest("GET", disabled.URL+"/backends", nil)
	req.Header.Set("Authorization", "Bearer ")
	if resp, err := disabled.Client().Do(req); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusForbidden {
			t.Fatalf("disabled admin: status %d, want 403", resp.StatusCode)
		}
	}

	cl, err := arm2gc.Dial(context.Background(), addr, arm2gc.WithClientEngine(eng))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Register("add", prog); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Evaluate(context.Background(), "add", []uint32{1}); err != nil {
		t.Fatal(err)
	}

	// Retire the program live: the next proposal dies at the gateway
	// with a plain rejection, the connection survives.
	post("/programs?op=retire&name=add", http.StatusOK)
	var rej *arm2gc.RejectedError
	if _, err := cl.Evaluate(context.Background(), "add", []uint32{1}); !errors.As(err, &rej) {
		t.Fatalf("retired program: got %v, want *RejectedError", err)
	}
	post("/programs?op=register&name=add", http.StatusOK)
	if _, err := cl.Evaluate(context.Background(), "add", []uint32{2}); err != nil {
		t.Fatalf("re-registered program: %v", err)
	}

	// Fleet resize: add a second backend, remove it again; bogus ops
	// and unknown addresses are 400s.
	b2 := startBackend(t, eng, "", registerAdd(prog))
	defer b2.stop()
	post("/backends?op=add&addr="+b2.addr, http.StatusOK)
	if got := len(g.Backends()); got != 2 {
		t.Fatalf("fleet size = %d after add, want 2", got)
	}
	post("/backends?op=remove&addr="+b2.addr, http.StatusOK)
	if got := len(g.Backends()); got != 1 {
		t.Fatalf("fleet size = %d after remove, want 1", got)
	}
	post("/backends?op=remove&addr=nosuch:1", http.StatusBadRequest)
	post("/backends?op=frobnicate&addr=x", http.StatusBadRequest)
	post("/programs?op=register&name=", http.StatusBadRequest)
}

// TestGatewayMetricsHandler: the Prometheus text rendering carries the
// arm2gc_gateway_* series with per-backend labels, and ?format=json
// negotiates JSON.
func TestGatewayMetricsHandler(t *testing.T) {
	g, err := New(Config{Backends: []string{"a:1", "b:2"}})
	if err != nil {
		t.Fatal(err)
	}
	h := g.MetricsHandler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q, want text/plain", ct)
	}
	text := rec.Body.String()
	for _, want := range []string{
		"arm2gc_gateway_proposals_total 0",
		"arm2gc_gateway_ring_moves_total 128",
		fmt.Sprintf("arm2gc_gateway_backend_healthy{backend=%q} 1", "a:1"),
		fmt.Sprintf("arm2gc_gateway_backend_sessions_routed_total{backend=%q} 0", "b:2"),
	} {
		if !strings.Contains(text, want) {
			t.Errorf("Prometheus text missing %q", want)
		}
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics?format=json", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("JSON Content-Type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), `"ring_moves": 128`) {
		t.Errorf("JSON body missing ring_moves: %s", rec.Body.String())
	}
}

// TestGatewayTLS runs the full fleet encrypted on both hops: clients
// dial the gateway over TLS, and the gateway dials the backends over
// TLS, all chained to one dev CA.
func TestGatewayTLS(t *testing.T) {
	ca, err := devcert.NewCA("fleet test CA")
	if err != nil {
		t.Fatal(err)
	}
	backendTLS, err := devcert.ServerConfig(ca, false)
	if err != nil {
		t.Fatal(err)
	}
	gatewayTLS, err := devcert.ServerConfig(ca, false)
	if err != nil {
		t.Fatal(err)
	}
	dialTLS, err := devcert.ClientConfig(ca, "")
	if err != nil {
		t.Fatal(err)
	}

	prog := compileProg(t, "add", addSrc)
	eng := arm2gc.NewEngine()
	b := startBackend(t, eng, "", registerAdd(prog), arm2gc.WithTLSConfig(backendTLS))
	defer b.stop()
	addr, _, stop := startGateway(t, Config{
		Backends:   []string{b.addr},
		BackendTLS: dialTLS,
		TLS:        gatewayTLS,
	})
	defer stop()

	cl, err := arm2gc.DialTLS(context.Background(), addr, dialTLS, arm2gc.WithClientEngine(eng))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Register("add", prog); err != nil {
		t.Fatal(err)
	}
	info, err := cl.Evaluate(context.Background(), "add", []uint32{11})
	if err != nil {
		t.Fatal(err)
	}
	if info.Outputs[0] != 111 {
		t.Fatalf("TLS fleet sum = %d, want 111", info.Outputs[0])
	}
}

// TestProgramsListingSorted: the admin listing must come back in a
// pinned (sorted) order, not map order — operators diff successive
// listings, and shuffling reads as churn. Regression test for the
// map-range finding the arm2gc-vet suite surfaced here.
func TestProgramsListingSorted(t *testing.T) {
	g, err := New(Config{
		Backends: []string{"a:1"},
		Programs: []string{"zeta", "mid", "alpha"},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"omega", "beta", "nu"} {
		if err := g.RetireProgram(name); err != nil {
			t.Fatal(err)
		}
	}
	wantAllowed := []string{"alpha", "mid", "zeta"}
	wantRetired := []string{"beta", "nu", "omega"}
	// Repeat: a map-order listing passes a single comparison roughly one
	// time in six; thirty runs make the regression deterministic in
	// practice.
	for i := 0; i < 30; i++ {
		allowed, retired := g.Programs()
		if !reflect.DeepEqual(allowed, wantAllowed) {
			t.Fatalf("run %d: allowed = %v, want %v", i, allowed, wantAllowed)
		}
		if !reflect.DeepEqual(retired, wantRetired) {
			t.Fatalf("run %d: retired = %v, want %v", i, retired, wantRetired)
		}
	}
}

// TestFleetSnapshotOrdered: probe sweeps walk the fleet in address
// order, so a sweep cut short never strands a random suffix of the
// fleet unprobed. Regression test for the probeLoop map-range finding.
func TestFleetSnapshotOrdered(t *testing.T) {
	addrs := []string{"j:1", "c:1", "x:1", "a:1", "q:1", "m:1", "b:1", "t:1"}
	g, err := New(Config{Backends: addrs})
	if err != nil {
		t.Fatal(err)
	}
	want := append([]string(nil), addrs...)
	sort.Strings(want)
	for i := 0; i < 30; i++ {
		var got []string
		for _, b := range g.fleetSnapshot() {
			got = append(got, b.addr)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("run %d: snapshot order = %v, want %v", i, got, want)
		}
	}
}

// TestDialHonorsContext: a backend that accepts TCP but never answers
// the TLS handshake must not wedge the dialer for the full DialTimeout
// once the caller's context is cancelled. Regression test for the
// ctxflow finding where dial minted context.Background() mid-stack and
// a probe sweep could hang on one half-dead backend.
func TestDialHonorsContext(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			// Hold the conn open, never speak TLS.
			defer c.Close()
		}
	}()

	g, err := New(Config{
		Backends:    []string{ln.Addr().String()},
		BackendTLS:  &tls.Config{InsecureSkipVerify: true},
		DialTimeout: time.Minute, // the test must not wait on this
	})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = g.dial(ctx, ln.Addr().String())
	if err == nil {
		t.Fatal("dial against a mute TLS backend succeeded")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("dial took %v after context expiry; the caller's context is not threaded through", elapsed)
	}
}
