package gateway

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"arm2gc/internal/proto"
)

// The relay is frame-aware without being protocol-aware: it never
// decrypts anything, but it tracks frame boundaries on both directions
// so it knows where one session ends and the next proposal begins. The
// wire mixes two framings — the 5-byte proto frames and the OT layer's
// 4-byte length-prefixed messages — but their first bytes never collide
// at a decision point: proto types are 0x01..0x05 and 0x10..0x12, while
// every OT phase opens with a 65-byte elliptic-curve point whose length
// prefix starts 0x41. One buffered Peek therefore settles each branch.
const (
	// otKappa mirrors the OT layer's security parameter: the base-OT
	// count, which fixes how many messages each OT phase carries.
	otKappa = 128

	// otPointLen is the wire length of an uncompressed P-256 point — the
	// first message of every OT phase in either direction, and the
	// disambiguating first byte (0x41) of its length prefix.
	otPointLen = 65

	// otMaxMsg mirrors the OT layer's message-size refusal.
	otMaxMsg = 1 << 28
)

// verdict is what the backend relayer reports to the client-side driver
// after forwarding a grant or rejection.
type verdict struct {
	granted bool
	mode    proto.OutputMode
}

// proxyConn is one client connection's relay state. The driver goroutine
// (handle → run) owns the client→backend direction; each backendLink
// runs a relayer goroutine for its backend→client direction. Only one
// backend streams at a time — sessions are sequential per connection —
// but writes to the client still go through one mutex so a shed verdict
// injected by the driver can never tear a frame.
type proxyConn struct {
	g      *Gateway
	client net.Conn
	cr     *bufio.Reader
	peer   string // client IP, the shedding key

	wmu   sync.Mutex
	links map[string]*backendLink
}

// backendLink is one pooled backend connection plus its relayer.
type backendLink struct {
	b  *backend
	nc net.Conn
	br *bufio.Reader

	// verdicts carries one entry per forwarded proposal; it closes when
	// the relayer dies, which is how the driver observes backend death
	// during negotiation.
	verdicts chan verdict
	relayErr error // set before verdicts closes
}

func (p *proxyConn) writeClient(fn func(io.Writer) error) error {
	p.wmu.Lock()
	defer p.wmu.Unlock()
	return fn(p.client)
}

// handle relays one client connection's sessions until the client is
// done or the stream desynchronizes.
func (g *Gateway) handle(ctx context.Context, nc net.Conn) {
	peer := ""
	if addr, ok := nc.RemoteAddr().(*net.TCPAddr); ok {
		peer = addr.IP.String()
	} else if host, _, err := net.SplitHostPort(nc.RemoteAddr().String()); err == nil {
		peer = host
	}
	p := &proxyConn{
		g:      g,
		client: nc,
		cr:     bufio.NewReader(nc),
		peer:   peer,
		links:  make(map[string]*backendLink),
	}
	defer p.close()
	if err := p.run(ctx); err != nil && err != io.EOF && ctx.Err() == nil {
		g.logf("gateway: conn %v: %v", nc.RemoteAddr(), err)
	}
}

func (p *proxyConn) close() {
	_ = p.client.Close()
	for _, l := range p.links {
		_ = l.nc.Close() // teardown; link errors were already reported by the relayers
	}
}

// run is the driver loop: one iteration per client proposal.
func (p *proxyConn) run(ctx context.Context) error {
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		typ, payload, err := proto.ReadRawFrame(p.cr)
		if err != nil {
			return err // clean EOF between sessions, or the client broke
		}
		if typ != proto.FramePropose {
			return fmt.Errorf("expected a proposal, got frame type %#02x", typ)
		}
		p.g.met.proposals.Add(1)
		name, err := proto.ProgramOfProposal(payload)
		if err != nil {
			// Reject locally: the frame was consumed, the stream is aligned.
			p.g.met.rejectedLocal.Add(1)
			if err := p.reject("malformed proposal", 0); err != nil {
				return err
			}
			continue
		}
		if !p.g.routable(name) {
			p.g.met.rejectedLocal.Add(1)
			if err := p.reject(fmt.Sprintf("program %q is not available to this peer", name), 0); err != nil {
				return err
			}
			continue
		}
		if l := p.g.limiter; l != nil {
			if ok, after := l.allow(p.peer); !ok {
				p.g.met.shedRate.Add(1)
				if err := p.reject("shed: per-peer session rate exceeded", after); err != nil {
					return err
				}
				continue
			}
		}
		if err := p.session(ctx, name, payload); err != nil {
			return err
		}
	}
}

// reject answers the pending proposal at the gateway itself; a positive
// hint makes it a shed the client may retry.
func (p *proxyConn) reject(reason string, after time.Duration) error {
	return p.writeClient(func(w io.Writer) error {
		return proto.WriteRejectRetry(w, reason, after)
	})
}

// session routes one proposal and relays the resulting session. A
// backend that fails before its verdict costs nothing visible: the
// proposal retries on the next ring node. Once any bytes of a granted
// session have flowed, a failure is terminal for the connection — the
// stream position is unknown, exactly like a direct server failure.
func (p *proxyConn) session(ctx context.Context, name string, payload []byte) error {
	tried := make(map[string]bool)
	for {
		b := p.g.route(name, tried)
		if b == nil {
			p.g.met.shedNoBackend.Add(1)
			return p.reject("shed: no backend available for "+name, p.g.cfg.RetryAfter)
		}
		tried[b.addr] = true
		l, err := p.link(ctx, b)
		if err != nil {
			p.g.eject(b, err)
			b.failed.Add(1)
			continue
		}
		b.routed.Add(1)
		b.inflight.Add(1)
		done, err := p.relayOne(ctx, l, payload)
		b.inflight.Add(-1)
		if err != nil {
			p.dropLink(l)
			p.g.eject(b, err)
			b.failed.Add(1)
			if !done {
				continue // nothing reached the client; retry elsewhere
			}
			return fmt.Errorf("backend %s mid-session: %w", b.addr, err)
		}
		return nil
	}
}

// relayOne forwards one proposal to a linked backend and relays the
// session. done reports whether any backend bytes reached the client —
// the point past which a failure can no longer be retried transparently.
func (p *proxyConn) relayOne(ctx context.Context, l *backendLink, payload []byte) (done bool, err error) {
	if err := proto.WriteRawFrame(l.nc, proto.FramePropose, payload); err != nil {
		return false, fmt.Errorf("forwarding proposal: %w", err)
	}
	v, ok := <-l.verdicts
	if !ok {
		// The relayer died before a verdict crossed. If it failed while
		// writing to the client, the connection is beyond saving; a pure
		// backend-side death is retryable.
		err := l.relayErr
		if err == nil {
			err = io.ErrUnexpectedEOF
		}
		return err == errClientWrite, err
	}
	if !v.granted {
		return true, nil // rejection relayed; the connection lives on
	}
	return true, p.relaySession(l, v.mode)
}

// relaySession drives the client→backend half of one granted session:
// the hello ack, the client's OT messages when the session carries
// evaluator input, and the terminal outputs frame when the output mode
// includes the garbler. The backend→client half runs concurrently in
// the link's relayer.
func (p *proxyConn) relaySession(l *backendLink, mode proto.OutputMode) error {
	typ, payload, err := proto.ReadRawFrame(p.cr)
	if err != nil {
		return fmt.Errorf("client hello ack: %w", err)
	}
	if typ != proto.FrameHello {
		return fmt.Errorf("expected hello ack, got frame type %#02x", typ)
	}
	if err := proto.WriteRawFrame(l.nc, typ, payload); err != nil {
		return fmt.Errorf("forwarding hello ack: %w", err)
	}
	first, err := p.cr.Peek(1)
	if err != nil {
		return fmt.Errorf("after hello ack: %w", err)
	}
	if first[0] == otPointLen {
		// OT phase: the client's base-OT point, then its kappa extension
		// columns. The interleaved backend→client messages are the
		// relayer's business.
		if err := copyOTMsg(l.nc, p.cr); err != nil {
			return fmt.Errorf("client OT point: %w", err)
		}
		for i := 0; i < otKappa; i++ {
			if err := copyOTMsg(l.nc, p.cr); err != nil {
				return fmt.Errorf("client OT column %d: %w", i, err)
			}
		}
	}
	if mode == proto.OutputEvaluatorOnly {
		return nil // the session ends on the backend's decode frame
	}
	typ, payload, err = proto.ReadRawFrame(p.cr)
	if err != nil {
		return fmt.Errorf("client outputs: %w", err)
	}
	if typ != proto.FrameOutputs {
		return fmt.Errorf("expected outputs, got frame type %#02x", typ)
	}
	if err := proto.WriteRawFrame(l.nc, typ, payload); err != nil {
		return fmt.Errorf("forwarding outputs: %w", err)
	}
	return nil
}

// link returns (dialing on first use) the pooled connection to a
// backend, with its relayer running.
func (p *proxyConn) link(ctx context.Context, b *backend) (*backendLink, error) {
	if l := p.links[b.addr]; l != nil {
		return l, nil
	}
	nc, err := p.g.dial(ctx, b.addr)
	if err != nil {
		return nil, fmt.Errorf("dialing %s: %w", b.addr, err)
	}
	l := &backendLink{
		b:        b,
		nc:       nc,
		br:       bufio.NewReader(nc),
		verdicts: make(chan verdict, 1),
	}
	p.links[b.addr] = l
	go l.relay(p)
	return l, nil
}

func (p *proxyConn) dropLink(l *backendLink) {
	_ = l.nc.Close() // the link is already condemned; its close error adds nothing
	delete(p.links, l.b.addr)
}

// errClientWrite marks relayer failures on the client side of the pipe,
// which are terminal for the whole connection.
var errClientWrite = fmt.Errorf("gateway: client write failed")

// relay runs a link's backend→client direction: verdicts, then — per
// granted session — the hello, the garbler labels, the backend's OT
// messages, and the table stream through the decode frame. A session
// whose output mode is garbler-only ends silently on this direction;
// the state machine detects that when the next frame is a verdict again.
func (l *backendLink) relay(p *proxyConn) {
	defer close(l.verdicts)
	l.relayErr = l.relayLoop(p)
}

func (l *backendLink) relayLoop(p *proxyConn) error {
	for {
		typ, payload, err := proto.ReadRawFrame(l.br)
		if err != nil {
			return err // backend gone (or idle link torn down)
		}
		switch typ {
		case proto.FrameReject:
			if err := p.writeClient(func(w io.Writer) error {
				return proto.WriteRawFrame(w, typ, payload)
			}); err != nil {
				return errClientWrite
			}
			l.verdicts <- verdict{granted: false}
		case proto.FrameGrant:
			mode, err := proto.OutputsOfGrant(payload)
			if err != nil {
				return err
			}
			if err := p.writeClient(func(w io.Writer) error {
				return proto.WriteRawFrame(w, typ, payload)
			}); err != nil {
				return errClientWrite
			}
			l.verdicts <- verdict{granted: true, mode: mode}
			if err := l.relayBody(p); err != nil {
				// Mid-session death is terminal for the whole connection,
				// and both the client and the driver may be blocked on
				// reads that will never complete (the client waiting for
				// tables, the driver waiting for the client's next frame).
				// Closing the client conn unwinds them both.
				_ = p.client.Close()
				return err
			}
		default:
			return fmt.Errorf("expected a verdict from backend, got frame type %#02x", typ)
		}
	}
}

// relayBody relays one granted session's backend→client stream up to
// its final frame (or, for a garbler-only session, up to the point
// where the next verdict shows the session is over).
func (l *backendLink) relayBody(p *proxyConn) error {
	if err := l.relayFrame(p, proto.FrameHello); err != nil {
		return err
	}
	if err := l.relayFrame(p, proto.FrameAliceLabels); err != nil {
		return err
	}
	first, err := l.br.Peek(1)
	if err != nil {
		return err
	}
	if first[0] == otPointLen {
		// OT phase: kappa base-OT points, then the label ciphertexts.
		for i := 0; i < otKappa+1; i++ {
			if err := l.relayOT(p); err != nil {
				return fmt.Errorf("backend OT message %d: %w", i, err)
			}
		}
	}
	for {
		first, err := l.br.Peek(1)
		if err != nil {
			return err
		}
		switch first[0] {
		case proto.FrameTables:
			if err := l.relayFrame(p, proto.FrameTables); err != nil {
				return err
			}
		case proto.FrameDecode:
			return l.relayFrame(p, proto.FrameDecode)
		case proto.FrameGrant, proto.FrameReject:
			// A garbler-only session ended without a decode frame; the
			// buffered verdict belongs to the next session.
			return nil
		default:
			return fmt.Errorf("unexpected frame type %#02x in session body", first[0])
		}
	}
}

func (l *backendLink) relayFrame(p *proxyConn, want byte) error {
	typ, payload, err := proto.ReadRawFrame(l.br)
	if err != nil {
		return err
	}
	if typ != want {
		return fmt.Errorf("expected frame type %#02x from backend, got %#02x", want, typ)
	}
	if err := p.writeClient(func(w io.Writer) error {
		return proto.WriteRawFrame(w, typ, payload)
	}); err != nil {
		return errClientWrite
	}
	return nil
}

func (l *backendLink) relayOT(p *proxyConn) error {
	return p.writeClient(func(w io.Writer) error {
		return copyOTMsg(w, l.br)
	})
}

// copyOTMsg copies one OT-framed message (4-byte LE length + payload).
func copyOTMsg(dst io.Writer, src *bufio.Reader) error {
	var hdr [4]byte
	if _, err := io.ReadFull(src, hdr[:]); err != nil {
		return err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > otMaxMsg {
		return fmt.Errorf("OT message of %d bytes refused", n)
	}
	buf := make([]byte, 4+int(n))
	copy(buf, hdr[:])
	if _, err := io.ReadFull(src, buf[4:]); err != nil {
		return err
	}
	_, err := dst.Write(buf)
	return err
}
