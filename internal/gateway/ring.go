// Package gateway fronts a fleet of backend garbler processes behind one
// listener. It relays the propose/grant protocol frame-by-frame without
// running any cryptography itself, shards sessions across backends by
// consistent-hashing the proposed program name (so one program's sessions
// — and therefore its warm caches and garble-ahead pools — pin to one
// backend), sheds load per peer with Retry-After hints, health-checks the
// fleet, and exposes live admin and metrics endpoints.
package gateway

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// defaultReplicas is the virtual-node count per backend on the hash
// ring. 64 vnodes keep the keyspace split within a few percent of even
// for small fleets while keeping ring rebuilds cheap.
const defaultReplicas = 64

// ring is a consistent-hash ring over backend addresses. Each backend
// owns replicas points on a 32-bit circle; a key routes to the first
// point clockwise of its hash. Adding or removing one backend moves only
// the arcs adjacent to its own points — every other program keeps its
// backend, which is the property that preserves warm caches across fleet
// resizes. Not safe for concurrent use; the Gateway guards it.
type ring struct {
	replicas int
	points   []ringPoint // sorted by hash
}

type ringPoint struct {
	hash uint32
	addr string
}

func newRing(replicas int) *ring {
	if replicas <= 0 {
		replicas = defaultReplicas
	}
	return &ring{replicas: replicas}
}

func hashKey(s string) uint32 {
	h := fnv.New32a()
	h.Write([]byte(s))
	return h.Sum32()
}

// add inserts a backend's virtual nodes; it reports how many ring points
// changed (the "moves" metric — arcs whose owner is now different).
func (r *ring) add(addr string) int {
	for i := 0; i < r.replicas; i++ {
		r.points = append(r.points, ringPoint{
			hash: hashKey(fmt.Sprintf("%s#%d", addr, i)),
			addr: addr,
		})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	return r.replicas
}

// remove deletes a backend's virtual nodes, reporting how many points
// changed owner.
func (r *ring) remove(addr string) int {
	kept := r.points[:0]
	moved := 0
	for _, p := range r.points {
		if p.addr == addr {
			moved++
			continue
		}
		kept = append(kept, p)
	}
	r.points = kept
	return moved
}

// pick walks the ring clockwise from key's hash and returns the first
// distinct backend ok admits — the affinity node when it is healthy and
// under its load bound, the next ring node when it is not (the
// bounded-load spill). It returns "" when no backend qualifies.
func (r *ring) pick(key string, ok func(addr string) bool) string {
	n := len(r.points)
	if n == 0 {
		return ""
	}
	h := hashKey(key)
	start := sort.Search(n, func(i int) bool { return r.points[i].hash >= h }) % n
	seen := make(map[string]bool)
	for i := 0; i < n; i++ {
		addr := r.points[(start+i)%n].addr
		if seen[addr] {
			continue
		}
		seen[addr] = true
		if ok(addr) {
			return addr
		}
	}
	return ""
}

// addrs returns the distinct backends on the ring, sorted.
func (r *ring) addrs() []string {
	seen := make(map[string]bool)
	var out []string
	for _, p := range r.points {
		if !seen[p.addr] {
			seen[p.addr] = true
			out = append(out, p.addr)
		}
	}
	sort.Strings(out)
	return out
}
