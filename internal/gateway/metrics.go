package gateway

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync/atomic"
)

// gatewayMetrics is the Gateway's live counter set; everything atomic,
// mirroring the server's metric discipline — nothing on the relay hot
// path takes a lock for accounting.
type gatewayMetrics struct {
	connsAccepted atomic.Int64
	connsActive   atomic.Int64
	proposals     atomic.Int64
	shedRate      atomic.Int64
	shedNoBackend atomic.Int64
	rejectedLocal atomic.Int64
	ringMoves     atomic.Int64
	ejections     atomic.Int64
	readmissions  atomic.Int64
	probes        atomic.Int64
	probeFailures atomic.Int64
}

// BackendStatus is one backend's slice of a metrics snapshot.
type BackendStatus struct {
	Addr     string `json:"addr"`
	Healthy  bool   `json:"healthy"`
	Inflight int64  `json:"inflight"`
	Routed   int64  `json:"routed"`
	Failed   int64  `json:"failed"`
}

// Metrics is a point-in-time snapshot of a Gateway's counters.
type Metrics struct {
	// ConnectionsAccepted / ConnectionsActive count client connections.
	ConnectionsAccepted int64 `json:"connections_accepted"`
	ConnectionsActive   int64 `json:"connections_active"`
	// Proposals counts every client proposal seen, whatever its fate.
	Proposals int64 `json:"proposals"`
	// ShedRateLimit / ShedNoBackend count proposals rejected with a
	// Retry-After hint: per-peer rate sheds and no-backend-available
	// sheds respectively.
	ShedRateLimit int64 `json:"shed_rate_limit"`
	ShedNoBackend int64 `json:"shed_no_backend"`
	// RejectedLocal counts proposals the gateway rejected on its own
	// policy (malformed, unlisted or retired program).
	RejectedLocal int64 `json:"rejected_local"`
	// RingMoves counts virtual-node ownership changes from backend
	// adds/removes — the keyspace churn the consistent hash bounds.
	RingMoves int64 `json:"ring_moves"`
	// Ejections / Readmissions count backend health transitions;
	// Probes / ProbeFailures count health checks.
	Ejections     int64 `json:"ejections"`
	Readmissions  int64 `json:"readmissions"`
	Probes        int64 `json:"probes"`
	ProbeFailures int64 `json:"probe_failures"`
	// Backends holds the per-backend counters, sorted by address.
	Backends []BackendStatus `json:"backends"`
}

// Metrics snapshots the Gateway's counters; safe at any time.
func (g *Gateway) Metrics() Metrics {
	return Metrics{
		ConnectionsAccepted: g.met.connsAccepted.Load(),
		ConnectionsActive:   g.met.connsActive.Load(),
		Proposals:           g.met.proposals.Load(),
		ShedRateLimit:       g.met.shedRate.Load(),
		ShedNoBackend:       g.met.shedNoBackend.Load(),
		RejectedLocal:       g.met.rejectedLocal.Load(),
		RingMoves:           g.met.ringMoves.Load(),
		Ejections:           g.met.ejections.Load(),
		Readmissions:        g.met.readmissions.Load(),
		Probes:              g.met.probes.Load(),
		ProbeFailures:       g.met.probeFailures.Load(),
		Backends:            g.Backends(),
	}
}

// MetricsHandler exposes the Gateway's counters in the Prometheus text
// format (JSON with ?format=json), mirroring the Server's handler.
func (g *Gateway) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		m := g.Metrics()
		if r.URL.Query().Get("format") == "json" {
			// Marshal before writing: an encode failure becomes a clean
			// 500 instead of a truncated 200 the scraper would trust.
			b, err := json.MarshalIndent(m, "", "  ")
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			_, _ = w.Write(append(b, '\n')) // scraper gone mid-reply: nothing to report to
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		writeProm(w, m)
	})
}

func writeProm(w http.ResponseWriter, m Metrics) {
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter("arm2gc_gateway_connections_accepted_total", "Client connections accepted.", m.ConnectionsAccepted)
	gauge("arm2gc_gateway_connections_active", "Client connections currently open.", m.ConnectionsActive)
	counter("arm2gc_gateway_proposals_total", "Client proposals seen.", m.Proposals)
	counter("arm2gc_gateway_shed_rate_limit_total", "Proposals shed by the per-peer rate limit.", m.ShedRateLimit)
	counter("arm2gc_gateway_shed_no_backend_total", "Proposals shed for lack of an available backend.", m.ShedNoBackend)
	counter("arm2gc_gateway_rejected_local_total", "Proposals rejected by gateway policy.", m.RejectedLocal)
	counter("arm2gc_gateway_ring_moves_total", "Hash-ring virtual-node ownership changes.", m.RingMoves)
	counter("arm2gc_gateway_ejections_total", "Backends ejected after failures.", m.Ejections)
	counter("arm2gc_gateway_readmissions_total", "Ejected backends re-admitted by the prober.", m.Readmissions)
	counter("arm2gc_gateway_probes_total", "Health probes sent.", m.Probes)
	counter("arm2gc_gateway_probe_failures_total", "Health probes that failed.", m.ProbeFailures)

	// %q escapes the exact set the Prometheus text format requires.
	series := func(name, help, typ string, value func(BackendStatus) int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
		for _, b := range m.Backends {
			fmt.Fprintf(w, "%s{backend=%q} %d\n", name, b.Addr, value(b))
		}
	}
	series("arm2gc_gateway_backend_healthy", "Backend health (1 healthy, 0 ejected).", "gauge",
		func(b BackendStatus) int64 {
			if b.Healthy {
				return 1
			}
			return 0
		})
	series("arm2gc_gateway_backend_inflight", "Sessions in flight, by backend.", "gauge",
		func(b BackendStatus) int64 { return b.Inflight })
	series("arm2gc_gateway_backend_sessions_routed_total", "Proposals routed, by backend.", "counter",
		func(b BackendStatus) int64 { return b.Routed })
	series("arm2gc_gateway_backend_sessions_failed_total", "Sessions failed, by backend.", "counter",
		func(b BackendStatus) int64 { return b.Failed })
}
