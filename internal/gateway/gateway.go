package gateway

import (
	"context"
	"crypto/tls"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"arm2gc/internal/proto"
)

// Defaults for Config's zero values.
const (
	DefaultDialTimeout   = 5 * time.Second
	DefaultProbeInterval = 5 * time.Second
	DefaultProbeTimeout  = 3 * time.Second
	DefaultRetryAfter    = time.Second
)

// probeProgram is the program name health probes propose. No sane
// operator registers it, so a live backend answers with a rejection —
// which is exactly the proof the prober wants: the accept loop, TLS
// stack and negotiation path all work. A backend that (somehow) grants
// it is equally alive; the prober just closes the connection.
const probeProgram = "arm2gc.gateway.probe"

// Config configures a Gateway.
type Config struct {
	// Backends are the initial backend garbler addresses. More can be
	// added (and these removed) live via AddBackend/RemoveBackend.
	Backends []string

	// Replicas is the virtual-node count per backend on the hash ring
	// (default 64).
	Replicas int

	// MaxInflight bounds concurrent sessions per backend; a program whose
	// affinity backend is saturated spills to the next ring node. Zero
	// means unbounded (no spill).
	MaxInflight int

	// DisableAffinity routes round-robin instead of by program hash —
	// the control arm of the sharding experiment, and an escape hatch
	// when even load matters more than warm caches.
	DisableAffinity bool

	// RatePerPeer / BurstPerPeer configure per-peer load shedding: each
	// client IP may open RatePerPeer sessions per second with bursts up
	// to BurstPerPeer. Zero RatePerPeer disables shedding.
	RatePerPeer  float64
	BurstPerPeer float64

	// RetryAfter is the hint attached to shed rejections (default 1s).
	RetryAfter time.Duration

	// Programs, when non-empty, restricts routing to the listed program
	// names; anything else is rejected at the gateway without costing a
	// backend round trip. Empty routes every program.
	Programs []string

	// ProbeInterval is the health-check period (default 5s); ProbeTimeout
	// bounds one probe (default 3s).
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration

	// DialTimeout bounds one backend dial (default 5s).
	DialTimeout time.Duration

	// BackendTLS, when set, dials backends over TLS with this client
	// config (cloned per backend; an empty ServerName is filled from the
	// backend's host).
	BackendTLS *tls.Config

	// TLS, when set, serves the gateway's own listener over TLS. Use a
	// GetCertificate-based config (certwatch.Reloader) for live cert
	// rotation.
	TLS *tls.Config

	// Logf routes the gateway's diagnostics (default: discarded).
	Logf func(format string, args ...any)
}

// backend is one fleet member's live state.
type backend struct {
	addr string

	healthy  atomic.Bool
	inflight atomic.Int64
	routed   atomic.Int64 // proposals forwarded
	failed   atomic.Int64 // sessions that died on this backend
}

// Gateway fronts a fleet of backend garblers. Create with New, serve
// with Serve, operate live via AddBackend/RemoveBackend,
// RegisterProgram/RetireProgram and the AdminHandler.
type Gateway struct {
	cfg     Config
	logf    func(format string, args ...any)
	limiter *peerLimiter

	mu       sync.Mutex
	backends map[string]*backend
	ring     *ring
	allow    map[string]bool // nil: every program routes
	retired  map[string]bool
	rr       uint64 // round-robin cursor for DisableAffinity

	met gatewayMetrics
}

// New creates a Gateway. At least one backend must be configured (more
// can be added live, but a gateway with zero backends can only shed).
func New(cfg Config) (*Gateway, error) {
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = DefaultRetryAfter
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = DefaultDialTimeout
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = DefaultProbeInterval
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = DefaultProbeTimeout
	}
	g := &Gateway{
		cfg:      cfg,
		logf:     cfg.Logf,
		backends: make(map[string]*backend),
		ring:     newRing(cfg.Replicas),
		retired:  make(map[string]bool),
	}
	if g.logf == nil {
		g.logf = func(string, ...any) {}
	}
	if cfg.RatePerPeer > 0 {
		g.limiter = newPeerLimiter(cfg.RatePerPeer, cfg.BurstPerPeer)
	}
	if len(cfg.Programs) > 0 {
		g.allow = make(map[string]bool, len(cfg.Programs))
		for _, name := range cfg.Programs {
			g.allow[name] = true
		}
	}
	for _, addr := range cfg.Backends {
		if err := g.AddBackend(addr); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// AddBackend adds a backend to the fleet live. It joins the ring
// immediately — optimistically healthy, so traffic can reach it before
// the first probe — and only the hash arcs adjacent to its virtual nodes
// move.
func (g *Gateway) AddBackend(addr string) error {
	if addr == "" {
		return fmt.Errorf("gateway: empty backend address")
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, dup := g.backends[addr]; dup {
		return fmt.Errorf("gateway: backend %q already present", addr)
	}
	b := &backend{addr: addr}
	b.healthy.Store(true)
	g.backends[addr] = b
	g.met.ringMoves.Add(int64(g.ring.add(addr)))
	return nil
}

// RemoveBackend retires a backend from the fleet live. In-flight
// sessions on it run to completion; no new session routes there.
func (g *Gateway) RemoveBackend(addr string) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.backends[addr]; !ok {
		return fmt.Errorf("gateway: backend %q not present", addr)
	}
	delete(g.backends, addr)
	g.met.ringMoves.Add(int64(g.ring.remove(addr)))
	return nil
}

// Backends lists the fleet, sorted by address.
func (g *Gateway) Backends() []BackendStatus {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]BackendStatus, 0, len(g.backends))
	for _, addr := range g.ring.addrs() {
		b := g.backends[addr]
		if b == nil {
			continue
		}
		out = append(out, BackendStatus{
			Addr:     b.addr,
			Healthy:  b.healthy.Load(),
			Inflight: b.inflight.Load(),
			Routed:   b.routed.Load(),
			Failed:   b.failed.Load(),
		})
	}
	return out
}

// RegisterProgram (re-)admits a program name for routing: it clears any
// retirement, and joins the allowlist when one is configured.
func (g *Gateway) RegisterProgram(name string) error {
	if name == "" || len(name) > proto.MaxProgramName {
		return fmt.Errorf("gateway: invalid program name")
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	delete(g.retired, name)
	if g.allow != nil {
		g.allow[name] = true
	}
	return nil
}

// RetireProgram takes a program out of service fleet-wide: proposals for
// it are rejected at the gateway from now on. RegisterProgram undoes it.
func (g *Gateway) RetireProgram(name string) error {
	if name == "" {
		return fmt.Errorf("gateway: invalid program name")
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.retired[name] = true
	if g.allow != nil {
		delete(g.allow, name)
	}
	return nil
}

// Programs reports the explicit allowlist ("" slice when the gateway
// routes every non-retired program) and the retired set, each sorted —
// the listing feeds the admin API and operator diffs, where map-order
// shuffling between calls reads as churn that never happened.
func (g *Gateway) Programs() (allowed, retired []string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	for name := range g.allow {
		allowed = append(allowed, name)
	}
	for name := range g.retired {
		retired = append(retired, name)
	}
	sort.Strings(allowed)
	sort.Strings(retired)
	return allowed, retired
}

// routable decides whether a proposed program may route at all.
func (g *Gateway) routable(name string) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.retired[name] {
		return false
	}
	return g.allow == nil || g.allow[name]
}

// route picks the backend for one proposal: the program's hash-ring
// affinity node (spilling past saturated or unhealthy ones) — or plain
// round-robin over healthy backends with affinity disabled. tried holds
// backends this proposal already failed on, so a retry after a dead
// dial moves on instead of looping. Returns nil when no backend
// qualifies.
func (g *Gateway) route(program string, tried map[string]bool) *backend {
	g.mu.Lock()
	defer g.mu.Unlock()
	ok := func(addr string) bool {
		b := g.backends[addr]
		if b == nil || tried[addr] || !b.healthy.Load() {
			return false
		}
		return g.cfg.MaxInflight <= 0 || b.inflight.Load() < int64(g.cfg.MaxInflight)
	}
	if g.cfg.DisableAffinity {
		addrs := g.ring.addrs()
		n := len(addrs)
		for i := 0; i < n; i++ {
			addr := addrs[int(g.rr%uint64(n))]
			g.rr++
			if ok(addr) {
				return g.backends[addr]
			}
		}
		return nil
	}
	if addr := g.ring.pick(program, ok); addr != "" {
		return g.backends[addr]
	}
	return nil
}

// eject marks a backend unhealthy after a dial or proxy failure. The
// prober re-admits it once it answers again.
func (g *Gateway) eject(b *backend, cause error) {
	if b.healthy.CompareAndSwap(true, false) {
		g.met.ejections.Add(1)
		g.logf("gateway: ejected backend %s: %v", b.addr, cause)
	}
}

// dial opens one backend connection, with TLS when configured. ctx
// bounds the whole dial, TCP connect and TLS handshake both: before it
// was threaded here, a backend that accepted TCP but never answered the
// handshake pinned the caller until the TLS handshake's own (absent)
// timeout — a gateway shutdown or probe deadline couldn't interrupt it.
func (g *Gateway) dial(ctx context.Context, addr string) (net.Conn, error) {
	d := net.Dialer{Timeout: g.cfg.DialTimeout}
	nc, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	if g.cfg.BackendTLS == nil {
		return nc, nil
	}
	tcfg := g.cfg.BackendTLS.Clone()
	if tcfg.ServerName == "" {
		if host, _, err := net.SplitHostPort(addr); err == nil {
			tcfg.ServerName = host
		}
	}
	tc := tls.Client(nc, tcfg)
	if err := tc.HandshakeContext(ctx); err != nil {
		_ = nc.Close()
		return nil, err
	}
	return tc, nil
}

// Serve accepts client connections on ln until ctx is cancelled,
// relaying each connection's sessions on its own goroutine and running
// the health prober in the background. It returns nil on context-driven
// shutdown and the accept error otherwise.
func (g *Gateway) Serve(ctx context.Context, ln net.Listener) error {
	if ctx == nil {
		ctx = context.Background()
	}
	probeCtx, stopProbe := context.WithCancel(ctx)
	defer stopProbe()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		g.probeLoop(probeCtx)
	}()

	// Connection handlers are tracked so Serve returns only when every
	// relay goroutine has; shutdown closes the listener and all conns.
	var conns sync.Map
	closer := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		select {
		case <-ctx.Done():
		case <-closer:
			return
		}
		_ = ln.Close() // unblocks Accept; the accept loop reports the real error
		conns.Range(func(k, _ any) bool {
			_ = k.(net.Conn).Close()
			return true
		})
	}()

	var acceptErr error
	for {
		nc, err := ln.Accept()
		if err != nil {
			if ctx.Err() == nil {
				acceptErr = err
			}
			break
		}
		if g.cfg.TLS != nil {
			if _, already := nc.(*tls.Conn); !already {
				nc = tls.Server(nc, g.cfg.TLS)
			}
		}
		g.met.connsAccepted.Add(1)
		g.met.connsActive.Add(1)
		conns.Store(nc, struct{}{})
		wg.Add(1)
		go func(nc net.Conn) {
			defer wg.Done()
			defer g.met.connsActive.Add(-1)
			defer conns.Delete(nc)
			g.handle(ctx, nc)
		}(nc)
	}
	close(closer)
	stopProbe()
	wg.Wait()
	return acceptErr
}

// fleetSnapshot copies the backend set out from under the lock, sorted
// by address. Probe sweeps walk this order rather than raw map order: a
// sweep cut short by shutdown or a slow backend must not leave a
// *random* suffix of the fleet unprobed, or an unlucky dead backend can
// dodge ejection for several intervals in a row.
func (g *Gateway) fleetSnapshot() []*backend {
	g.mu.Lock()
	fleet := make([]*backend, 0, len(g.backends))
	for _, b := range g.backends {
		fleet = append(fleet, b)
	}
	g.mu.Unlock()
	sort.Slice(fleet, func(i, j int) bool { return fleet[i].addr < fleet[j].addr })
	return fleet
}

// probeLoop health-checks every backend each ProbeInterval: a dead one
// is ejected, a recovered one re-admitted.
func (g *Gateway) probeLoop(ctx context.Context) {
	t := time.NewTicker(g.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		for _, b := range g.fleetSnapshot() {
			if ctx.Err() != nil {
				return
			}
			g.probe(ctx, b)
		}
	}
}

// probe dials a backend and proposes the probe program, expecting a
// rejection — proof the whole negotiation path is live.
func (g *Gateway) probe(ctx context.Context, b *backend) {
	g.met.probes.Add(1)
	err := g.probeOnce(ctx, b.addr)
	if err != nil {
		g.met.probeFailures.Add(1)
		g.eject(b, fmt.Errorf("probe: %w", err))
		return
	}
	if b.healthy.CompareAndSwap(false, true) {
		g.met.readmissions.Add(1)
		g.logf("gateway: re-admitted backend %s", b.addr)
	}
}

func (g *Gateway) probeOnce(ctx context.Context, addr string) error {
	nc, err := g.dial(ctx, addr)
	if err != nil {
		return err
	}
	defer nc.Close()
	if err := nc.SetDeadline(time.Now().Add(g.cfg.ProbeTimeout)); err != nil {
		return err // a probe that can't bound itself must not hang the prober
	}
	_, err = proto.Negotiate(ctx, nc, proto.Proposal{Program: probeProgram})
	var rej *proto.Rejected
	if errors.As(err, &rej) {
		return nil // the expected healthy answer
	}
	return err // nil (granted: alive too) or the transport failure
}
