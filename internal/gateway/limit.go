package gateway

import (
	"sync"
	"time"
)

// peerLimiter is a per-peer token bucket: each peer (keyed by client IP)
// accrues rate tokens per second up to burst, and a proposal spends one.
// A dry bucket is the load-shedding verdict — the caller rejects the
// proposal with a Retry-After hint of how long until the next token
// accrues, so well-behaved clients back off instead of hammering.
type peerLimiter struct {
	rate  float64 // tokens per second
	burst float64

	mu      sync.Mutex
	buckets map[string]*bucket
	now     func() time.Time
}

type bucket struct {
	tokens float64
	last   time.Time
}

func newPeerLimiter(rate, burst float64) *peerLimiter {
	if burst < 1 {
		burst = 1
	}
	return &peerLimiter{
		rate:    rate,
		burst:   burst,
		buckets: make(map[string]*bucket),
		now:     time.Now,
	}
}

// allow spends one token from peer's bucket. When the bucket is dry it
// reports false plus the time until one token will have accrued — the
// Retry-After hint for the shed rejection.
func (l *peerLimiter) allow(peer string) (bool, time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.now()
	b := l.buckets[peer]
	if b == nil {
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[peer] = b
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * l.rate
		if b.tokens > l.burst {
			b.tokens = l.burst
		}
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	if l.rate <= 0 {
		return false, time.Second // unfillable bucket; still hint something sane
	}
	need := (1 - b.tokens) / l.rate
	return false, time.Duration(need * float64(time.Second))
}
