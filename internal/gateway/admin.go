package gateway

import (
	"crypto/subtle"
	"encoding/json"
	"net/http"
)

// AdminHandler returns the gateway's live-ops endpoint, meant to be
// mounted beside MetricsHandler on the operator mux:
//
//	mux.Handle("/metrics", g.MetricsHandler())
//	mux.Handle("/admin/", http.StripPrefix("/admin", g.AdminHandler(token)))
//
// Every request must carry "Authorization: Bearer <token>"; an empty
// configured token disables the endpoint entirely. Operations:
//
//	GET  /backends                      list the fleet with health/counters
//	POST /backends?op=add&addr=H:P      add a backend live
//	POST /backends?op=remove&addr=H:P   retire a backend live
//	POST /programs?op=register&name=N   (re-)admit a program for routing
//	POST /programs?op=retire&name=N     take a program out of service
func (g *Gateway) AdminHandler(token string) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /backends", func(w http.ResponseWriter, r *http.Request) {
		// Marshal before writing: an encode failure becomes a clean 500
		// instead of a truncated 200 the poller would trust.
		b, err := json.MarshalIndent(g.Backends(), "", "  ")
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(append(b, '\n')) // client gone mid-reply: nothing to report to
	})
	mux.HandleFunc("POST /backends", func(w http.ResponseWriter, r *http.Request) {
		addr := r.FormValue("addr")
		var err error
		switch op := r.FormValue("op"); op {
		case "add":
			err = g.AddBackend(addr)
		case "remove":
			err = g.RemoveBackend(addr)
		default:
			http.Error(w, "op must be add or remove", http.StatusBadRequest)
			return
		}
		adminResult(w, err)
	})
	mux.HandleFunc("POST /programs", func(w http.ResponseWriter, r *http.Request) {
		name := r.FormValue("name")
		var err error
		switch op := r.FormValue("op"); op {
		case "register":
			err = g.RegisterProgram(name)
		case "retire":
			err = g.RetireProgram(name)
		default:
			http.Error(w, "op must be register or retire", http.StatusBadRequest)
			return
		}
		adminResult(w, err)
	})
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !adminAuthorized(r, token) {
			http.Error(w, "unauthorized", http.StatusForbidden)
			return
		}
		mux.ServeHTTP(w, r)
	})
}

// adminAuthorized checks the bearer token in constant time; no
// configured token means no admin access at all (fail closed).
func adminAuthorized(r *http.Request, token string) bool {
	if token == "" {
		return false
	}
	auth := r.Header.Get("Authorization")
	const prefix = "Bearer "
	if len(auth) <= len(prefix) || auth[:len(prefix)] != prefix {
		return false
	}
	return subtle.ConstantTimeCompare([]byte(auth[len(prefix):]), []byte(token)) == 1
}

func adminResult(w http.ResponseWriter, err error) {
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte("ok\n")) // the status code already carries the answer
}
