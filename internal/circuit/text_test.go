package circuit_test

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"arm2gc/internal/circuit"
	"arm2gc/internal/circuit/circtest"
	"arm2gc/internal/sim"
)

func TestTextRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 25; trial++ {
		c, nA, nB := circtest.Random(rng, 60, 8)
		var buf bytes.Buffer
		if err := c.WriteText(&buf); err != nil {
			t.Fatal(err)
		}
		back, err := circuit.ReadText(&buf)
		if err != nil {
			t.Fatalf("trial %d: %v\n", trial, err)
		}
		if back.Hash() != c.Hash() {
			t.Fatalf("trial %d: hash changed across serialization", trial)
		}
		// Behavioural equality on a random run.
		in := sim.Inputs{
			Alice:  circtest.RandBits(rng, nA),
			Bob:    circtest.RandBits(rng, nB),
			Public: circtest.RandBits(rng, c.PublicBits),
		}
		w1 := sim.Run(c, in, 3)
		w2 := sim.Run(back, in, 3)
		for i := range w1 {
			if w1[i] != w2[i] {
				t.Fatalf("trial %d: behaviour changed at output %d", trial, i)
			}
		}
	}
}

func TestTextRejectsGarbage(t *testing.T) {
	cases := []string{
		"",                          // no end
		"bogus directive\nend\n",    // unknown directive
		"gate AND 5\nend\n",         // arity
		"gate MUX 1 2\nend\n",       // arity
		"gate AND 1 99\nend\n",      // out-of-range wire
		"port p public -3 0\nend\n", // bad bits
		"dff 0 alice\nend\n",        // missing index
		"port p nobody 1 0\nend\n",  // bad owner
		"gate FROB 1 2\nend\n",      // bad op
		"output o 123\nend\n",       // out-of-range output
	}
	for _, src := range cases {
		if _, err := circuit.ReadText(strings.NewReader(src)); err == nil {
			t.Errorf("ReadText accepted %q", src)
		}
	}
}
