// Package circuit defines the frozen netlist representation shared by every
// engine in this repository: the plaintext simulator, the conventional
// garbled-circuit engine, and the SkipGate engine.
//
// A Circuit is a sequential Boolean circuit in the TinyGarble sense: 2-input
// logic gates plus flip-flops (DFFs), evaluated for a number of clock
// cycles. Wires are dense integer indices assigned in a fixed layout:
//
//	wire 0:              constant 0
//	wire 1:              constant 1
//	2 .. 2+P-1:          port wires (primary inputs, held constant all cycles)
//	.. +D:               DFF outputs (Q), one per flip-flop
//	.. +G:               gate outputs, in topological order (gate i drives
//	                     wire GateBase+i)
//
// The layout lets per-cycle engines use flat slices indexed by wire with no
// hashing in the hot loop. Circuits are built with package build and frozen
// by its Compile; they are immutable afterwards.
package circuit

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sync"
)

// Op is a gate operator. Only 2-input gates (plus NOT/BUF) exist, as
// required by the GC protocol; wider functions are decomposed by the
// builder.
type Op uint8

// Gate operators. XOR-class gates (XOR, XNOR, NOT, BUF) are free under the
// free-XOR optimization; the AND-class (AND, OR, NAND, NOR) costs one
// garbled table (two ciphertexts with half gates). MUX is the one 3-input
// cell: out = S ? B : A. It also costs exactly one garbled table
// (out = A ⊕ AND(S, A⊕B)), and exists as an atomic cell — rather than the
// equivalent XOR/AND decomposition — because SkipGate can turn an atomic
// MUX with a public select into a plain wire and recursively release the
// unselected cone, which the paper's garbled processor depends on
// (synthesis netlists keep MUX cells for the register file and memories).
const (
	AND Op = iota
	OR
	NAND
	NOR
	XOR
	XNOR
	NOT // single input (A)
	BUF // single input (A)
	MUX // three inputs: out = S ? B : A
	numOps
)

var opNames = [numOps]string{"AND", "OR", "NAND", "NOR", "XOR", "XNOR", "NOT", "BUF", "MUX"}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// IsUnary reports whether the operator takes a single input.
func (o Op) IsUnary() bool { return o == NOT || o == BUF }

// IsFree reports whether the operator is free under free-XOR (no garbled
// table, no communication).
func (o Op) IsFree() bool { return o == XOR || o == XNOR || o == NOT || o == BUF }

// EvalMux computes the multiplexer truth table.
func EvalMux(s, a, b bool) bool {
	if s {
		return b
	}
	return a
}

// Eval computes the plaintext truth table of a 1- or 2-input operator
// (use EvalMux for MUX).
func (o Op) Eval(a, b bool) bool {
	switch o {
	case AND:
		return a && b
	case OR:
		return a || b
	case NAND:
		return !(a && b)
	case NOR:
		return !(a || b)
	case XOR:
		return a != b
	case XNOR:
		return a == b
	case NOT:
		return !a
	case BUF:
		return a
	}
	panic("circuit: bad op")
}

// Wire is a dense wire index into a Circuit's wire space.
type Wire int32

// Const0 and Const1 are the constant wires present in every circuit.
const (
	Const0 Wire = 0
	Const1 Wire = 1
)

// Owner identifies who supplies an input bit: the garbler (Alice), the
// evaluator (Bob), or both (public input p in the c = f(a,b,p) notation of
// the paper).
type Owner uint8

// Input owners.
const (
	Public Owner = iota
	Alice
	Bob
)

func (o Owner) String() string {
	switch o {
	case Public:
		return "public"
	case Alice:
		return "alice"
	case Bob:
		return "bob"
	}
	return fmt.Sprintf("Owner(%d)", uint8(o))
}

// Port is a primary input: a contiguous range of port wires owned by one
// party. Port wires hold their value/label for the whole run (sequential
// inputs are modelled as DFF initial values instead, as in TinyGarble).
type Port struct {
	Name  string
	Owner Owner
	Base  Wire // first wire of the port
	Bits  int  // number of wires
	Off   int  // bit offset into the owner's input bit-vector
}

// InitKind says where a flip-flop's initial (cycle-1) value comes from.
type InitKind uint8

// Flip-flop initialization sources. The paper initializes instruction
// memory with the public program, Alice/Bob memories with their input
// labels, and everything else with zero.
const (
	InitZero InitKind = iota
	InitOne
	InitPublic // public input bit Idx
	InitAlice  // Alice input bit Idx
	InitBob    // Bob input bit Idx
)

// Init describes a flip-flop's initial value.
type Init struct {
	Kind InitKind
	Idx  int // bit index into the corresponding input vector
}

// DFF is a flip-flop: its output wire is QBase+i for DFF i; at the end of
// every cycle the value/label on D is copied to Q for the next cycle.
type DFF struct {
	D    Wire
	Init Init
}

// Gate is a logic gate. Its output wire is implicit: GateBase + index.
// B is ignored for unary ops; S is used only by MUX.
type Gate struct {
	Op   Op
	A, B Wire
	S    Wire
}

// Output is a named group of output wires (an output bus).
type Output struct {
	Name  string
	Wires []Wire
}

// Circuit is a frozen, validated, topologically ordered netlist.
type Circuit struct {
	Ports   []Port
	DFFs    []DFF
	Gates   []Gate
	Outputs []Output

	// PortBase..GateBase partition the wire space per the package comment.
	PortBase Wire
	DFFBase  Wire
	GateBase Wire

	// Input bit-vector lengths per owner (max referenced index + 1).
	PublicBits, AliceBits, BobBits int

	// GateScope optionally tags each gate with an index into ScopeNames
	// (processor module attribution, used by the instruction-level-pruning
	// baseline). Either nil or len(Gates).
	GateScope  []int32
	ScopeNames []string

	// Names for diagnostics; may be empty.
	Name string

	// Lazily computed topological level partition (see Levels). Cached on
	// the circuit so every engine sharing a machine-cache netlist also
	// shares one partition.
	levelsOnce sync.Once
	levels     *LevelPartition
}

// NumWires returns the size of the wire space.
func (c *Circuit) NumWires() int { return int(c.GateBase) + len(c.Gates) }

// GateOut returns the output wire of gate i.
func (c *Circuit) GateOut(i int) Wire { return c.GateBase + Wire(i) }

// WireGate returns the index of the gate driving w, or -1 if w is not a
// gate output.
func (c *Circuit) WireGate(w Wire) int {
	if w >= c.GateBase {
		return int(w - c.GateBase)
	}
	return -1
}

// QWire returns the output wire of DFF i.
func (c *Circuit) QWire(i int) Wire { return c.DFFBase + Wire(i) }

// WireDFF returns the index of the DFF driving w, or -1.
func (c *Circuit) WireDFF(w Wire) int {
	if w >= c.DFFBase && w < c.GateBase {
		return int(w - c.DFFBase)
	}
	return -1
}

// Stats summarizes gate composition; NonXOR is the paper's cost metric
// (garbled tables per cycle under conventional GC).
type Stats struct {
	Gates  int
	NonXOR int // AND/OR/NAND/NOR
	XOR    int // XOR/XNOR
	NotBuf int
	DFFs   int
	Ports  int
}

// Stats computes gate composition statistics.
func (c *Circuit) Stats() Stats {
	s := Stats{Gates: len(c.Gates), DFFs: len(c.DFFs), Ports: len(c.Ports)}
	for _, g := range c.Gates {
		switch g.Op {
		case AND, OR, NAND, NOR, MUX:
			s.NonXOR++
		case XOR, XNOR:
			s.XOR++
		default:
			s.NotBuf++
		}
	}
	return s
}

// Validate checks structural well-formedness: wire ranges, topological
// order (gate inputs must be earlier wires), and output references.
func (c *Circuit) Validate() error {
	n := Wire(c.NumWires())
	if c.PortBase != 2 {
		return fmt.Errorf("circuit %q: PortBase = %d, want 2", c.Name, c.PortBase)
	}
	want := c.PortBase
	for i, p := range c.Ports {
		if p.Base != want {
			return fmt.Errorf("port %d (%q): base %d, want %d", i, p.Name, p.Base, want)
		}
		if p.Bits <= 0 {
			return fmt.Errorf("port %d (%q): %d bits", i, p.Name, p.Bits)
		}
		want += Wire(p.Bits)
	}
	if want != c.DFFBase {
		return fmt.Errorf("DFFBase = %d, want %d", c.DFFBase, want)
	}
	if c.GateBase != c.DFFBase+Wire(len(c.DFFs)) {
		return fmt.Errorf("GateBase = %d, want %d", c.GateBase, c.DFFBase+Wire(len(c.DFFs)))
	}
	for i, g := range c.Gates {
		out := c.GateOut(i)
		if g.A < 0 || g.A >= n || g.A >= out {
			return fmt.Errorf("gate %d (%s): input A=%d not before output %d", i, g.Op, g.A, out)
		}
		if !g.Op.IsUnary() && (g.B < 0 || g.B >= n || g.B >= out) {
			return fmt.Errorf("gate %d (%s): input B=%d not before output %d", i, g.Op, g.B, out)
		}
		if g.Op == MUX && (g.S < 0 || g.S >= n || g.S >= out) {
			return fmt.Errorf("gate %d (MUX): select S=%d not before output %d", i, g.S, out)
		}
		if g.Op >= numOps {
			return fmt.Errorf("gate %d: bad op %d", i, g.Op)
		}
	}
	bitsFor := func(k InitKind) int {
		switch k {
		case InitPublic:
			return c.PublicBits
		case InitAlice:
			return c.AliceBits
		case InitBob:
			return c.BobBits
		}
		return 0
	}
	for i, d := range c.DFFs {
		if d.D < 0 || d.D >= n {
			return fmt.Errorf("dff %d: D=%d out of range", i, d.D)
		}
		if k := d.Init.Kind; k == InitPublic || k == InitAlice || k == InitBob {
			if d.Init.Idx < 0 || d.Init.Idx >= bitsFor(k) {
				return fmt.Errorf("dff %d: init bit %d outside %v vector of %d bits",
					i, d.Init.Idx, k, bitsFor(k))
			}
		}
	}
	for _, o := range c.Outputs {
		for j, w := range o.Wires {
			if w < 0 || w >= n {
				return fmt.Errorf("output %q[%d]: wire %d out of range", o.Name, j, w)
			}
		}
	}
	return nil
}

// OutputWires returns all output wires flattened, in declaration order.
func (c *Circuit) OutputWires() []Wire {
	var ws []Wire
	for _, o := range c.Outputs {
		ws = append(ws, o.Wires...)
	}
	return ws
}

// FindOutput returns the named output bus, or nil.
func (c *Circuit) FindOutput(name string) *Output {
	for i := range c.Outputs {
		if c.Outputs[i].Name == name {
			return &c.Outputs[i]
		}
	}
	return nil
}

// FindPort returns the named port, or nil.
func (c *Circuit) FindPort(name string) *Port {
	for i := range c.Ports {
		if c.Ports[i].Name == name {
			return &c.Ports[i]
		}
	}
	return nil
}

// Hash returns a stable digest of the netlist, used by the protocol layer
// to confirm both parties hold the same circuit before garbling.
func (c *Circuit) Hash() [32]byte {
	h := sha256.New()
	var buf [12]byte
	wr32 := func(v uint32) {
		binary.LittleEndian.PutUint32(buf[:4], v)
		h.Write(buf[:4])
	}
	wr32(uint32(len(c.Ports)))
	for _, p := range c.Ports {
		h.Write([]byte(p.Name))
		wr32(uint32(p.Owner))
		wr32(uint32(p.Bits))
		wr32(uint32(p.Off))
	}
	wr32(uint32(len(c.DFFs)))
	for _, d := range c.DFFs {
		wr32(uint32(d.D))
		wr32(uint32(d.Init.Kind))
		wr32(uint32(d.Init.Idx))
	}
	wr32(uint32(len(c.Gates)))
	for _, g := range c.Gates {
		binary.LittleEndian.PutUint32(buf[0:], uint32(g.Op))
		binary.LittleEndian.PutUint32(buf[4:], uint32(g.A))
		binary.LittleEndian.PutUint32(buf[8:], uint32(g.B))
		h.Write(buf[:12])
		wr32(uint32(g.S))
	}
	for _, o := range c.Outputs {
		h.Write([]byte(o.Name))
		for _, w := range o.Wires {
			wr32(uint32(w))
		}
	}
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// ResolveOutput maps an output wire to the wire actually sampled at the
// end of a cycle. Output values are read after the flip-flop D→Q copy (the
// simulator's semantics), so an output naming a Q wire is equivalent to
// sampling that flip-flop's D wire just before the copy. The resolution is
// a single step: if D is itself another Q wire, its pre-copy label/value
// is already in place.
func (c *Circuit) ResolveOutput(w Wire) Wire {
	if i := c.WireDFF(w); i >= 0 {
		return c.DFFs[i].D
	}
	return w
}

// Fanout returns, for each gate, the number of label consumers of its
// output wire: references from other gates' inputs, from (resolved) output
// wires, and (when withDFF is set) from DFF D-inputs. This matches the
// paper's label_fanout initialization; the engine initializes from
// Fanout(true) on ordinary cycles and Fanout(false) on the final cycle,
// where next-state values are not consumed except to sample outputs.
func (c *Circuit) Fanout(withDFF bool) []int32 {
	fan := make([]int32, len(c.Gates))
	bump := func(w Wire) {
		if g := c.WireGate(w); g >= 0 {
			fan[g]++
		}
	}
	for _, g := range c.Gates {
		bump(g.A)
		if !g.Op.IsUnary() {
			bump(g.B)
		}
		if g.Op == MUX {
			bump(g.S)
		}
	}
	for _, o := range c.Outputs {
		for _, w := range o.Wires {
			bump(c.ResolveOutput(w))
		}
	}
	if withDFF {
		for _, d := range c.DFFs {
			bump(d.D)
		}
	}
	return fan
}
