package circuit_test

import (
	"math/rand"
	"testing"

	"arm2gc/internal/circuit"
	"arm2gc/internal/circuit/circtest"
)

// gateLevelOf returns the level a gate landed on, by scanning LevelOff.
func gateLevelOf(p *circuit.LevelPartition, pos int) int {
	for l := 0; l < p.Depth; l++ {
		if int32(pos) >= p.LevelOff[l] && int32(pos) < p.LevelOff[l+1] {
			return l
		}
	}
	return -1
}

// TestLevelPartitionProperties checks, over random circuits, the three
// properties the parallel engine relies on: the partition is a permutation
// of all gates; every gate's gate-driven inputs sit on strictly earlier
// levels; and Order within a level is ascending (so a serial walk of Order
// is a deterministic topological order).
func TestLevelPartitionProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		c, _, _ := circtest.Random(rng, 50+rng.Intn(400), rng.Intn(20))
		p := c.Levels()

		if len(p.Order) != len(c.Gates) {
			t.Fatalf("trial %d: Order has %d entries, want %d", trial, len(p.Order), len(c.Gates))
		}
		if p.Depth != len(p.LevelOff)-1 {
			t.Fatalf("trial %d: Depth %d, LevelOff %d", trial, p.Depth, len(p.LevelOff))
		}
		seen := make([]bool, len(c.Gates))
		lvlOf := make([]int, len(c.Gates))
		for pos, gi := range p.Order {
			if seen[gi] {
				t.Fatalf("trial %d: gate %d appears twice", trial, gi)
			}
			seen[gi] = true
			lvlOf[gi] = gateLevelOf(p, pos)
		}
		checkDep := func(gi int, w circuit.Wire) {
			if src := c.WireGate(w); src >= 0 && lvlOf[src] >= lvlOf[gi] {
				t.Fatalf("trial %d: gate %d (level %d) consumes gate %d (level %d)",
					trial, gi, lvlOf[gi], src, lvlOf[src])
			}
		}
		for gi := range c.Gates {
			g := &c.Gates[gi]
			checkDep(gi, g.A)
			if !g.Op.IsUnary() {
				checkDep(gi, g.B)
			}
			if g.Op == circuit.MUX {
				checkDep(gi, g.S)
			}
		}
		for l := 0; l < p.Depth; l++ {
			lv := p.Level(l)
			if len(lv) == 0 {
				t.Fatalf("trial %d: empty level %d", trial, l)
			}
			for k := 1; k < len(lv); k++ {
				if lv[k] <= lv[k-1] {
					t.Fatalf("trial %d: level %d not ascending at %d", trial, l, k)
				}
			}
		}
	}
}

// TestLevelsCached pins that repeated Levels calls share one partition.
func TestLevelsCached(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c, _, _ := circtest.Random(rng, 100, 5)
	if p1, p2 := c.Levels(), c.Levels(); p1 != p2 {
		t.Fatal("Levels() computed two distinct partitions for one circuit")
	}
}
