// Package circtest generates random sequential circuits for property
// testing the engines against each other. Generated circuits use the full
// operator set (including NAND/NOR/XNOR/BUF, which the builder's synthesis
// normalization would otherwise never emit) and all five flip-flop
// initialization kinds.
package circtest

import (
	"math/rand"

	"arm2gc/internal/circuit"
)

// Random builds a random sequential circuit with about nGates gates and
// nDFFs flip-flops and returns it along with the Alice and Bob input-vector
// sizes. The circuit always validates.
func Random(rng *rand.Rand, nGates, nDFFs int) (c *circuit.Circuit, aliceBits, bobBits int) {
	aliceBits = 1 + rng.Intn(6)
	bobBits = 1 + rng.Intn(6)
	pubBits := 1 + rng.Intn(6)

	c = &circuit.Circuit{Name: "random", PortBase: 2}
	next := circuit.Wire(2)
	addPort := func(name string, owner circuit.Owner, bits int) {
		c.Ports = append(c.Ports, circuit.Port{Name: name, Owner: owner, Base: next, Bits: bits, Off: 0})
		next += circuit.Wire(bits)
	}
	addPort("a", circuit.Alice, aliceBits)
	addPort("b", circuit.Bob, bobBits)
	addPort("p", circuit.Public, pubBits)
	c.DFFBase = next

	randInit := func() circuit.Init {
		switch rng.Intn(5) {
		case 0:
			return circuit.Init{Kind: circuit.InitZero}
		case 1:
			return circuit.Init{Kind: circuit.InitOne}
		case 2:
			return circuit.Init{Kind: circuit.InitPublic, Idx: rng.Intn(pubBits)}
		case 3:
			return circuit.Init{Kind: circuit.InitAlice, Idx: rng.Intn(aliceBits)}
		default:
			return circuit.Init{Kind: circuit.InitBob, Idx: rng.Intn(bobBits)}
		}
	}
	for i := 0; i < nDFFs; i++ {
		c.DFFs = append(c.DFFs, circuit.DFF{Init: randInit()}) // D patched below
		next++
	}
	c.GateBase = next

	ops := []circuit.Op{
		circuit.AND, circuit.OR, circuit.NAND, circuit.NOR,
		circuit.XOR, circuit.XNOR, circuit.NOT, circuit.BUF,
		circuit.MUX, circuit.MUX, // over-weighted: the processor is MUX-heavy
	}
	for i := 0; i < nGates; i++ {
		out := c.GateBase + circuit.Wire(i)
		op := ops[rng.Intn(len(ops))]
		g := circuit.Gate{
			Op: op,
			A:  circuit.Wire(rng.Intn(int(out))),
			B:  circuit.Wire(rng.Intn(int(out))),
		}
		if op.IsUnary() {
			g.B = g.A
		}
		if op == circuit.MUX {
			g.S = circuit.Wire(rng.Intn(int(out)))
		}
		c.Gates = append(c.Gates, g)
	}

	nw := circuit.Wire(c.NumWires())
	for i := range c.DFFs {
		c.DFFs[i].D = circuit.Wire(rng.Intn(int(nw)))
	}

	nOut := 1 + rng.Intn(8)
	out := circuit.Output{Name: "out"}
	for i := 0; i < nOut; i++ {
		out.Wires = append(out.Wires, circuit.Wire(rng.Intn(int(nw))))
	}
	c.Outputs = []circuit.Output{out}

	c.AliceBits = aliceBits
	c.BobBits = bobBits
	c.PublicBits = pubBits

	if err := c.Validate(); err != nil {
		panic("circtest: generated invalid circuit: " + err.Error())
	}
	return c, aliceBits, bobBits
}

// RandBits draws n random bits.
func RandBits(rng *rand.Rand, n int) []bool {
	b := make([]bool, n)
	for i := range b {
		b[i] = rng.Intn(2) == 1
	}
	return b
}
