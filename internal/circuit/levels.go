package circuit

// LevelPartition is a topological level decomposition of a circuit's gates:
// level 0 holds every gate whose inputs are all ports, flip-flop outputs or
// constants; level l+1 holds the gates whose deepest gate-driven input sits
// on level l. Gates within one level never consume each other's outputs, so
// any per-cycle pass that reads input wires and writes only its own gate's
// slots (the SkipGate classifier, the garbler's label pass, the evaluator)
// may process a whole level concurrently, provided levels are separated by
// a barrier.
//
// The partition is a pure function of the frozen netlist; it is computed at
// most once per Circuit (see Circuit.Levels) and shared by every scheduler
// over that circuit — per-machine caching falls out of the cpu package
// caching the Circuit itself.
type LevelPartition struct {
	// Order lists every gate index exactly once, sorted by (level, index).
	// Within a level indices are ascending, so Order is itself a valid
	// topological order and a serial walk of it visits gates in a
	// deterministic schedule-equivalent order.
	Order []int32

	// LevelOff has one entry per level plus a terminator:
	// Order[LevelOff[l]:LevelOff[l+1]] are the gates of level l.
	LevelOff []int32

	// Depth is the number of levels (len(LevelOff)-1).
	Depth int
}

// Width returns the number of gates on level l.
func (p *LevelPartition) Width(l int) int {
	return int(p.LevelOff[l+1] - p.LevelOff[l])
}

// Level returns the gate indices of level l (ascending).
func (p *LevelPartition) Level(l int) []int32 {
	return p.Order[p.LevelOff[l]:p.LevelOff[l+1]]
}

// computeLevels builds the partition in two counting passes plus a bucket
// scatter — O(gates) time, no per-level allocations.
func computeLevels(c *Circuit) *LevelPartition {
	n := len(c.Gates)
	lvl := make([]int32, n)
	depth := int32(0)
	up := func(w Wire, m int32) int32 {
		if gi := c.WireGate(w); gi >= 0 && lvl[gi] > m {
			return lvl[gi]
		}
		return m
	}
	for i := range c.Gates {
		g := &c.Gates[i]
		m := int32(-1)
		m = up(g.A, m)
		if !g.Op.IsUnary() {
			m = up(g.B, m)
		}
		if g.Op == MUX {
			m = up(g.S, m)
		}
		lvl[i] = m + 1
		if lvl[i] >= depth {
			depth = lvl[i] + 1
		}
	}

	p := &LevelPartition{
		Order:    make([]int32, n),
		LevelOff: make([]int32, depth+1),
		Depth:    int(depth),
	}
	for _, l := range lvl {
		p.LevelOff[l+1]++
	}
	for l := 0; l < int(depth); l++ {
		p.LevelOff[l+1] += p.LevelOff[l]
	}
	next := make([]int32, depth)
	copy(next, p.LevelOff[:depth])
	// Ascending gate index within each level falls out of the ascending
	// scatter over stable bucket cursors.
	for i := range c.Gates {
		l := lvl[i]
		p.Order[next[l]] = int32(i)
		next[l]++
	}
	return p
}

// Levels returns the circuit's topological level partition, computing it on
// first use and caching it on the circuit (circuits are immutable after
// Compile, so the partition is too). Safe for concurrent use; all callers —
// every scheduler the machine cache hands the circuit to — share one
// partition per circuit.
func (c *Circuit) Levels() *LevelPartition {
	c.levelsOnce.Do(func() { c.levels = computeLevels(c) })
	return c.levels
}
