package circuit

import (
	"math/rand"
	"testing"
)

// tiny builds a hand-rolled valid circuit:
//
//	ports: a (Alice, 2 bits), p (Public, 1 bit)
//	dff0:  init zero, D = gate1
//	gate0: AND(a0, a1)    gate1: XOR(gate0, p0)    gate2: MUX(p0; a0, q0)
func tiny() *Circuit {
	c := &Circuit{Name: "tiny", PortBase: 2}
	c.Ports = []Port{
		{Name: "a", Owner: Alice, Base: 2, Bits: 2, Off: 0},
		{Name: "p", Owner: Public, Base: 4, Bits: 1, Off: 0},
	}
	c.DFFBase = 5
	c.GateBase = 6
	c.Gates = []Gate{
		{Op: AND, A: 2, B: 3},
		{Op: XOR, A: 6, B: 4},
		{Op: MUX, A: 2, B: 5, S: 4},
	}
	c.DFFs = []DFF{{D: 7, Init: Init{Kind: InitZero}}}
	c.Outputs = []Output{{Name: "o", Wires: []Wire{8, 5}}}
	c.AliceBits = 2
	c.PublicBits = 1
	return c
}

func TestValidateAccepts(t *testing.T) {
	if err := tiny().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejects(t *testing.T) {
	break1 := func(f func(c *Circuit)) error {
		c := tiny()
		f(c)
		return c.Validate()
	}
	cases := map[string]func(c *Circuit){
		"gate reads later wire": func(c *Circuit) { c.Gates[0].A = 8 },
		"gate reads own output": func(c *Circuit) { c.Gates[0].A = 6 },
		"mux select later":      func(c *Circuit) { c.Gates[2].S = 8 },
		"dff D out of range":    func(c *Circuit) { c.DFFs[0].D = 99 },
		"output out of range":   func(c *Circuit) { c.Outputs[0].Wires[0] = -1 },
		"bad op":                func(c *Circuit) { c.Gates[0].Op = numOps },
		"port base gap":         func(c *Circuit) { c.Ports[1].Base = 9 },
		"init index out of range": func(c *Circuit) {
			c.DFFs[0].Init = Init{Kind: InitAlice, Idx: 5}
		},
	}
	for name, f := range cases {
		if err := break1(f); err == nil {
			t.Errorf("%s: Validate accepted a broken circuit", name)
		}
	}
}

func TestStatsCountsMux(t *testing.T) {
	st := tiny().Stats()
	if st.NonXOR != 2 { // AND + MUX
		t.Errorf("NonXOR = %d, want 2", st.NonXOR)
	}
	if st.XOR != 1 {
		t.Errorf("XOR = %d, want 1", st.XOR)
	}
}

func TestFanout(t *testing.T) {
	c := tiny()
	withDFF := c.Fanout(true)
	// gate0 feeds gate1 (1); gate1 feeds the DFF and, through output wire 5
	// resolving Q→D, the output (2); gate2 feeds output wire 8 (1).
	if withDFF[0] != 1 || withDFF[1] != 2 || withDFF[2] != 1 {
		t.Errorf("fanout with DFF = %v", withDFF)
	}
	noDFF := c.Fanout(false)
	// Final cycle: DFF consumer vanishes but output wire 5 (the Q) resolves
	// to D = gate1, keeping it alive.
	if noDFF[1] != 1 {
		t.Errorf("final-cycle fanout of gate1 = %d, want 1 (kept by resolved output)", noDFF[1])
	}
}

func TestResolveOutput(t *testing.T) {
	c := tiny()
	if got := c.ResolveOutput(5); got != 7 {
		t.Errorf("ResolveOutput(Q) = %d, want 7 (the D wire)", got)
	}
	if got := c.ResolveOutput(8); got != 8 {
		t.Errorf("ResolveOutput(gate) = %d, want 8", got)
	}
}

func TestHashSensitivity(t *testing.T) {
	base := tiny().Hash()
	mutations := []func(c *Circuit){
		func(c *Circuit) { c.Gates[0].Op = OR },
		func(c *Circuit) { c.Gates[2].S = 3 },
		func(c *Circuit) { c.DFFs[0].Init = Init{Kind: InitOne} },
		func(c *Circuit) { c.Outputs[0].Name = "x" },
		func(c *Circuit) { c.Ports[0].Owner = Bob },
	}
	for i, f := range mutations {
		c := tiny()
		f(c)
		if c.Hash() == base {
			t.Errorf("mutation %d did not change the hash", i)
		}
	}
}

func TestOpEval(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		a, b := rng.Intn(2) == 1, rng.Intn(2) == 1
		checks := map[Op]bool{
			AND: a && b, OR: a || b, NAND: !(a && b), NOR: !(a || b),
			XOR: a != b, XNOR: a == b, NOT: !a, BUF: a,
		}
		for op, want := range checks {
			if op.Eval(a, b) != want {
				t.Fatalf("%v(%v,%v) != %v", op, a, b, want)
			}
		}
		s := rng.Intn(2) == 1
		want := a
		if s {
			want = b
		}
		if EvalMux(s, a, b) != want {
			t.Fatalf("EvalMux(%v,%v,%v) != %v", s, a, b, want)
		}
	}
}

func TestOpClassification(t *testing.T) {
	free := []Op{XOR, XNOR, NOT, BUF}
	costly := []Op{AND, OR, NAND, NOR, MUX}
	for _, op := range free {
		if !op.IsFree() {
			t.Errorf("%v should be free", op)
		}
	}
	for _, op := range costly {
		if op.IsFree() {
			t.Errorf("%v should not be free", op)
		}
	}
	if !NOT.IsUnary() || !BUF.IsUnary() || AND.IsUnary() || MUX.IsUnary() {
		t.Error("unary classification wrong")
	}
}
