package circuit

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Text serialization of netlists — a simple line format in the spirit of
// structural netlist interchange, so circuits can be inspected, diffed,
// stored, and exchanged with external tooling:
//
//	circuit <name>
//	port <name> <owner> <bits> <off>
//	dff <D> <initkind> [idx]
//	gate <op> <A> [B] [S]
//	output <name> <wire...>
//	end
//
// Wires use the frozen dense numbering; the reader rebuilds and validates
// the layout, so a corrupted file cannot produce an inconsistent circuit.

// WriteText serializes the circuit.
func (c *Circuit) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "circuit %s\n", nameOrAnon(c.Name))
	for _, p := range c.Ports {
		fmt.Fprintf(bw, "port %s %s %d %d\n", nameOrAnon(p.Name), p.Owner, p.Bits, p.Off)
	}
	for _, d := range c.DFFs {
		switch d.Init.Kind {
		case InitZero:
			fmt.Fprintf(bw, "dff %d zero\n", d.D)
		case InitOne:
			fmt.Fprintf(bw, "dff %d one\n", d.D)
		case InitPublic:
			fmt.Fprintf(bw, "dff %d public %d\n", d.D, d.Init.Idx)
		case InitAlice:
			fmt.Fprintf(bw, "dff %d alice %d\n", d.D, d.Init.Idx)
		case InitBob:
			fmt.Fprintf(bw, "dff %d bob %d\n", d.D, d.Init.Idx)
		}
	}
	for _, g := range c.Gates {
		switch {
		case g.Op == MUX:
			fmt.Fprintf(bw, "gate MUX %d %d %d\n", g.A, g.B, g.S)
		case g.Op.IsUnary():
			fmt.Fprintf(bw, "gate %s %d\n", g.Op, g.A)
		default:
			fmt.Fprintf(bw, "gate %s %d %d\n", g.Op, g.A, g.B)
		}
	}
	for _, o := range c.Outputs {
		fmt.Fprintf(bw, "output %s", nameOrAnon(o.Name))
		for _, wi := range o.Wires {
			fmt.Fprintf(bw, " %d", wi)
		}
		fmt.Fprintln(bw)
	}
	fmt.Fprintln(bw, "end")
	return bw.Flush()
}

func nameOrAnon(s string) string {
	if s == "" {
		return "_"
	}
	return strings.ReplaceAll(s, " ", "_")
}

var opByName = func() map[string]Op {
	m := make(map[string]Op)
	for op := Op(0); op < numOps; op++ {
		m[op.String()] = op
	}
	return m
}()

var ownerByName = map[string]Owner{"public": Public, "alice": Alice, "bob": Bob}

var initByName = map[string]InitKind{
	"zero": InitZero, "one": InitOne, "public": InitPublic,
	"alice": InitAlice, "bob": InitBob,
}

// ReadText parses a serialized circuit and validates it.
func ReadText(r io.Reader) (*Circuit, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	c := &Circuit{PortBase: 2}
	next := Wire(2)
	line := 0
	sawEnd := false
	for sc.Scan() {
		line++
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 || strings.HasPrefix(fields[0], "#") {
			continue
		}
		bad := func(why string) error {
			return fmt.Errorf("circuit text line %d: %s: %q", line, why, sc.Text())
		}
		switch fields[0] {
		case "circuit":
			if len(fields) != 2 {
				return nil, bad("want: circuit <name>")
			}
			if fields[1] != "_" {
				c.Name = fields[1]
			}
		case "port":
			if len(fields) != 5 {
				return nil, bad("want: port <name> <owner> <bits> <off>")
			}
			owner, ok := ownerByName[fields[2]]
			if !ok {
				return nil, bad("unknown owner")
			}
			bits, e1 := strconv.Atoi(fields[3])
			off, e2 := strconv.Atoi(fields[4])
			if e1 != nil || e2 != nil || bits <= 0 {
				return nil, bad("bad numbers")
			}
			p := Port{Name: fields[1], Owner: owner, Base: next, Bits: bits, Off: off}
			if p.Name == "_" {
				p.Name = ""
			}
			c.Ports = append(c.Ports, p)
			next += Wire(bits)
			bumpBits(c, owner, off+bits)
		case "dff":
			if len(fields) < 3 {
				return nil, bad("want: dff <D> <init> [idx]")
			}
			d, e1 := strconv.Atoi(fields[1])
			kind, ok := initByName[fields[2]]
			if e1 != nil || !ok {
				return nil, bad("bad D or init kind")
			}
			dff := DFF{D: Wire(d), Init: Init{Kind: kind}}
			if kind == InitPublic || kind == InitAlice || kind == InitBob {
				if len(fields) != 4 {
					return nil, bad("init kind needs an index")
				}
				idx, err := strconv.Atoi(fields[3])
				if err != nil {
					return nil, bad("bad init index")
				}
				dff.Init.Idx = idx
				owner := Public
				if kind == InitAlice {
					owner = Alice
				} else if kind == InitBob {
					owner = Bob
				}
				bumpBits(c, owner, idx+1)
			}
			c.DFFs = append(c.DFFs, dff)
		case "gate":
			if len(fields) < 3 {
				return nil, bad("want: gate <op> <wires>")
			}
			op, ok := opByName[fields[1]]
			if !ok {
				return nil, bad("unknown op")
			}
			args := make([]Wire, 0, 3)
			for _, f := range fields[2:] {
				v, err := strconv.Atoi(f)
				if err != nil {
					return nil, bad("bad wire")
				}
				args = append(args, Wire(v))
			}
			g := Gate{Op: op}
			switch {
			case op == MUX:
				if len(args) != 3 {
					return nil, bad("MUX needs A B S")
				}
				g.A, g.B, g.S = args[0], args[1], args[2]
			case op.IsUnary():
				if len(args) != 1 {
					return nil, bad("unary gate needs one wire")
				}
				g.A, g.B = args[0], args[0]
			default:
				if len(args) != 2 {
					return nil, bad("binary gate needs two wires")
				}
				g.A, g.B = args[0], args[1]
			}
			c.Gates = append(c.Gates, g)
		case "output":
			if len(fields) < 2 {
				return nil, bad("want: output <name> <wires>")
			}
			o := Output{Name: fields[1]}
			if o.Name == "_" {
				o.Name = ""
			}
			for _, f := range fields[2:] {
				v, err := strconv.Atoi(f)
				if err != nil {
					return nil, bad("bad wire")
				}
				o.Wires = append(o.Wires, Wire(v))
			}
			c.Outputs = append(c.Outputs, o)
		case "end":
			sawEnd = true
		default:
			return nil, bad("unknown directive")
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !sawEnd {
		return nil, fmt.Errorf("circuit text: missing end directive")
	}
	// DFF and gate bases follow the ports.
	c.DFFBase = next
	c.GateBase = next + Wire(len(c.DFFs))
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("circuit text: %w", err)
	}
	return c, nil
}

func bumpBits(c *Circuit, owner Owner, n int) {
	switch owner {
	case Public:
		if n > c.PublicBits {
			c.PublicBits = n
		}
	case Alice:
		if n > c.AliceBits {
			c.AliceBits = n
		}
	case Bob:
		if n > c.BobBits {
			c.BobBits = n
		}
	}
}
