package emu

import (
	"testing"

	"arm2gc/internal/isa"
)

func layout() isa.Layout {
	return isa.Layout{IMemWords: 256, AliceWords: 8, BobWords: 8, OutWords: 8, ScratchWords: 32}
}

func run(t *testing.T, src string, alice, bob []uint32) *Machine {
	t.Helper()
	p, err := isa.Link("t", src, layout())
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(p, alice, bob)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(100000); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestAddProgram(t *testing.T) {
	m := run(t, `
gc_main:
	ldr r3, [r0]
	ldr r4, [r1]
	add r3, r3, r4
	str r3, [r2]
	mov pc, lr
`, []uint32{100}, []uint32{23})
	if got := m.Output()[0]; got != 123 {
		t.Errorf("output %d, want 123", got)
	}
}

func TestConditionalExecution(t *testing.T) {
	// max(a, b) via predication — the paper's Figure 5 pattern.
	m := run(t, `
gc_main:
	ldr r3, [r0]
	ldr r4, [r1]
	cmp r3, r4
	movhi r5, r3
	movls r5, r4
	str r5, [r2]
	mov pc, lr
`, []uint32{77}, []uint32{200})
	if got := m.Output()[0]; got != 200 {
		t.Errorf("max = %d, want 200", got)
	}
}

func TestLoopSum(t *testing.T) {
	// Sum 8 Alice words with 8 Bob words pairwise into output.
	m := run(t, `
gc_main:
	mov r3, #0
loop:
	ldr r4, [r0]
	ldr r5, [r1]
	add r4, r4, r5
	str r4, [r2]
	add r0, r0, #4
	add r1, r1, #4
	add r2, r2, #4
	add r3, r3, #1
	cmp r3, #8
	blt loop
	mov pc, lr
`, []uint32{1, 2, 3, 4, 5, 6, 7, 8}, []uint32{10, 20, 30, 40, 50, 60, 70, 80})
	out := m.Output()
	for i := 0; i < 8; i++ {
		want := uint32((i + 1) + 10*(i+1))
		if out[i] != want {
			t.Errorf("out[%d] = %d, want %d", i, out[i], want)
		}
	}
}

func TestMulAndShifts(t *testing.T) {
	m := run(t, `
gc_main:
	ldr r3, [r0]
	ldr r4, [r1]
	mul r5, r3, r4
	str r5, [r2]
	mov r7, #3
	mov r6, r3, lsl r7      @ a<<3
	str r6, [r2, #4]
	mov r6, r3, asr #31     @ sign
	str r6, [r2, #8]
	mov r6, r3, ror #8
	str r6, [r2, #12]
	mov pc, lr
`, []uint32{0x80000010}, []uint32{3})
	out := m.Output()
	var a uint32 = 0x80000010
	if out[0] != a*3 {
		t.Errorf("mul = %#x", out[0])
	}
	if out[1] != a<<3 {
		t.Errorf("lsl = %#x", out[1])
	}
	if out[2] != 0xffffffff {
		t.Errorf("asr = %#x", out[2])
	}
	if out[3] != 0x10800000 {
		t.Errorf("ror = %#x", out[3])
	}
}

func TestCarryChain(t *testing.T) {
	// 64-bit addition with adds/adc.
	m := run(t, `
gc_main:
	ldr r3, [r0]
	ldr r4, [r0, #4]
	ldr r5, [r1]
	ldr r6, [r1, #4]
	adds r7, r3, r5
	adc r8, r4, r6
	str r7, [r2]
	str r8, [r2, #4]
	mov pc, lr
`, []uint32{0xffffffff, 1}, []uint32{2, 3})
	out := m.Output()
	if out[0] != 1 || out[1] != 5 {
		t.Errorf("64-bit add = %#x %#x, want 1 5", out[0], out[1])
	}
}

func TestSignedCompares(t *testing.T) {
	m := run(t, `
gc_main:
	ldr r3, [r0]       @ -5
	ldr r4, [r1]       @ 3
	cmp r3, r4
	movlt r5, #1
	movge r5, #0
	str r5, [r2]       @ signed: -5 < 3
	cmp r3, r4
	movlo r5, #1
	movhs r5, #0
	str r5, [r2, #4]   @ unsigned: 0xfffffffb > 3
	mov pc, lr
`, []uint32{0xfffffffb}, []uint32{3})
	out := m.Output()
	if out[0] != 1 {
		t.Errorf("signed lt = %d, want 1", out[0])
	}
	if out[1] != 0 {
		t.Errorf("unsigned lo = %d, want 0", out[1])
	}
}

func TestFunctionCall(t *testing.T) {
	m := run(t, `
gc_main:
	str lr, [sp, #-4]
	sub sp, sp, #4
	ldr r3, [r0]
	mov r4, r3
	bl double
	str r4, [r2]
	add sp, sp, #4
	ldr lr, [sp, #-4]
	mov pc, lr
double:
	add r4, r4, r4
	mov pc, lr
`, []uint32{21}, nil)
	if got := m.Output()[0]; got != 42 {
		t.Errorf("double(21) = %d", got)
	}
}

func TestHaltsAndCycleCount(t *testing.T) {
	m := run(t, "gc_main:\n mov pc, lr\n", nil, nil)
	if !m.Halt {
		t.Fatal("not halted")
	}
	// startup (ldr sp/=4 consts are 1 word each here) + bl + mov pc,lr + swi
	if m.Cycle < 6 || m.Cycle > 12 {
		t.Errorf("unexpected cycle count %d", m.Cycle)
	}
}

func TestOutOfRangeAccess(t *testing.T) {
	p, err := isa.Link("t", "gc_main:\n ldr r3, =0x10000\n ldr r4, [r3]\n mov pc, lr\n", layout())
	if err != nil {
		t.Fatal(err)
	}
	m, _ := New(p, nil, nil)
	if _, err := m.Run(1000); err == nil {
		t.Error("out-of-range load did not error")
	}
}
