// Package emu is the plaintext reference implementation of the isa
// specification. It executes programs natively, providing ground-truth
// outputs, cycle counts for the garbled runs (control flow is
// data-independent in well-formed SFE programs, so the count from any
// input is the count for all inputs), and per-cycle traces for the
// instruction-level-pruning baseline cost model.
package emu

import (
	"fmt"

	"arm2gc/internal/isa"
)

// Machine is a processor state: 15 general registers plus PC, NZCV flags,
// and the data RAM.
type Machine struct {
	Prog *isa.Program

	Regs  [15]uint32 // r0..r14 (r15 is PC)
	PC    uint32
	N, Z  bool
	C, V  bool
	Mem   []uint32 // data RAM, word-indexed
	Halt  bool
	Cycle int

	// Trace, when non-nil, receives every executed instruction.
	Trace func(cycle int, pc uint32, ins isa.Instr, executed bool)
}

// New loads a program and the two private input arrays into a machine.
func New(p *isa.Program, alice, bob []uint32) (*Machine, error) {
	l := p.Layout
	if err := l.Validate(); err != nil {
		return nil, err
	}
	if len(p.Words) > l.IMemWords {
		return nil, fmt.Errorf("emu: program %d words exceeds imem %d", len(p.Words), l.IMemWords)
	}
	if len(alice) > l.AliceWords || len(bob) > l.BobWords {
		return nil, fmt.Errorf("emu: inputs (%d, %d words) exceed regions (%d, %d)",
			len(alice), len(bob), l.AliceWords, l.BobWords)
	}
	m := &Machine{Prog: p, Mem: make([]uint32, l.DataWords())}
	copy(m.Mem, alice)
	copy(m.Mem[l.AliceWords:], bob)
	return m, nil
}

// Reg reads a register with the ARM PC+8 convention for r15.
func (m *Machine) Reg(r uint8) uint32 {
	if r == 15 {
		return m.PC + 8
	}
	return m.Regs[r]
}

func (m *Machine) setReg(r uint8, v uint32) {
	if r == 15 {
		m.PC = v
		return
	}
	m.Regs[r] = v
}

// Output returns the output region contents.
func (m *Machine) Output() []uint32 {
	l := m.Prog.Layout
	base := int(l.OutBase() / 4)
	out := make([]uint32, l.OutWords)
	copy(out, m.Mem[base:base+l.OutWords])
	return out
}

// Step executes one instruction; it is a no-op once halted.
func (m *Machine) Step() error {
	if m.Halt {
		return nil
	}
	m.Cycle++
	word := uint32(0)
	if idx := int(m.PC / 4); idx >= 0 && idx < len(m.Prog.Words) {
		word = m.Prog.Words[idx]
	}
	ins, err := isa.Decode(word)
	if err != nil {
		return fmt.Errorf("emu: pc=%d: %v", m.PC, err)
	}
	executed := ins.Cond.Holds(m.N, m.Z, m.C, m.V)
	if m.Trace != nil {
		m.Trace(m.Cycle, m.PC, ins, executed)
	}
	nextPC := m.PC + 4
	if executed {
		switch ins.Kind {
		case isa.KindSWI:
			m.Halt = true
			return nil
		case isa.KindBranch:
			if ins.Link {
				m.setReg(14, m.PC+4)
			}
			nextPC = uint32(int64(m.PC) + 8 + 4*int64(ins.Imm24))
		case isa.KindMul:
			v := m.Reg(ins.Rm) * m.Reg(ins.Rs)
			if ins.Acc {
				v += m.Reg(ins.Rn)
			}
			if ins.Rd == 15 {
				nextPC = v
			} else {
				m.setReg(ins.Rd, v)
			}
			if ins.S {
				m.N = v>>31 == 1
				m.Z = v == 0
			}
		case isa.KindMem:
			off := uint32(ins.Off12)
			addr := m.Reg(ins.Rn)
			if ins.Up {
				addr += off
			} else {
				addr -= off
			}
			idx := int(addr / 4)
			if idx < 0 || idx >= len(m.Mem) {
				return fmt.Errorf("emu: pc=%d: data address %#x out of range", m.PC, addr)
			}
			if ins.Load {
				if ins.Rd == 15 {
					nextPC = m.Mem[idx]
				} else {
					m.setReg(ins.Rd, m.Mem[idx])
				}
			} else {
				m.Mem[idx] = m.Reg(ins.Rd)
			}
		case isa.KindDP:
			nextPC = m.execDP(ins, nextPC)
		}
	}
	m.PC = nextPC
	return nil
}

func (m *Machine) execDP(ins isa.Instr, nextPC uint32) uint32 {
	op2 := m.operand2(ins)
	rn := m.Reg(ins.Rn)

	var res uint32
	var carry, over bool
	hasCV := false
	switch ins.Op {
	case isa.OpAND, isa.OpTST:
		res = rn & op2
	case isa.OpEOR, isa.OpTEQ:
		res = rn ^ op2
	case isa.OpSUB, isa.OpCMP:
		res, carry, over = addc(rn, ^op2, 1)
		hasCV = true
	case isa.OpRSB:
		res, carry, over = addc(op2, ^rn, 1)
		hasCV = true
	case isa.OpADD, isa.OpCMN:
		res, carry, over = addc(rn, op2, 0)
		hasCV = true
	case isa.OpADC:
		res, carry, over = addc(rn, op2, b2u(m.C))
		hasCV = true
	case isa.OpSBC:
		res, carry, over = addc(rn, ^op2, b2u(m.C))
		hasCV = true
	case isa.OpRSC:
		res, carry, over = addc(op2, ^rn, b2u(m.C))
		hasCV = true
	case isa.OpORR:
		res = rn | op2
	case isa.OpMOV:
		res = op2
	case isa.OpBIC:
		res = rn &^ op2
	case isa.OpMVN:
		res = ^op2
	}

	if ins.S || !ins.Op.WritesRd() {
		m.N = res>>31 == 1
		m.Z = res == 0
		if hasCV {
			m.C = carry
			m.V = over
		}
	}
	if ins.Op.WritesRd() {
		if ins.Rd == 15 {
			return res
		}
		m.setReg(ins.Rd, res)
	}
	return nextPC
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

// addc returns a+b+cin with carry-out and signed overflow.
func addc(a, b, cin uint32) (sum uint32, carry, over bool) {
	s := uint64(a) + uint64(b) + uint64(cin)
	sum = uint32(s)
	carry = s>>32 == 1
	over = (a>>31 == b>>31) && (sum>>31 != a>>31)
	return
}

func (m *Machine) operand2(ins isa.Instr) uint32 {
	if ins.Imm {
		return ins.Imm32()
	}
	v := m.Reg(ins.Rm)
	amt := uint32(ins.ShImm)
	if ins.ShReg {
		amt = m.Reg(ins.Rs) & 63
	}
	switch ins.Sh {
	case isa.LSL:
		if amt >= 32 {
			return 0
		}
		return v << amt
	case isa.LSR:
		if amt >= 32 {
			return 0
		}
		return v >> amt
	case isa.ASR:
		if amt >= 32 {
			amt = 31
		}
		return uint32(int32(v) >> amt)
	case isa.ROR:
		amt %= 32
		if amt == 0 {
			return v
		}
		return v>>amt | v<<(32-amt)
	}
	return v
}

// Run executes until halt or maxCycles, returning the cycle count.
func (m *Machine) Run(maxCycles int) (int, error) {
	for !m.Halt && m.Cycle < maxCycles {
		if err := m.Step(); err != nil {
			return m.Cycle, err
		}
	}
	if !m.Halt {
		return m.Cycle, fmt.Errorf("emu: no halt within %d cycles", maxCycles)
	}
	return m.Cycle, nil
}
