package build

import (
	"fmt"
	"testing"

	"arm2gc/internal/circuit"
	"arm2gc/internal/sim"
)

// TestGateTruthTables drives every 1- and 2-input gate primitive through
// all input combinations via secret (port) wires, so no construction-time
// fold can fire, and checks against the plain Boolean operator.
func TestGateTruthTables(t *testing.T) {
	type gate struct {
		name string
		mk   func(b *Builder, x, y W) W
		fn   func(x, y bool) bool
	}
	gates := []gate{
		{"and", func(b *Builder, x, y W) W { return b.And(x, y) }, func(x, y bool) bool { return x && y }},
		{"or", func(b *Builder, x, y W) W { return b.Or(x, y) }, func(x, y bool) bool { return x || y }},
		{"xor", func(b *Builder, x, y W) W { return b.Xor(x, y) }, func(x, y bool) bool { return x != y }},
		{"nand", func(b *Builder, x, y W) W { return b.Nand(x, y) }, func(x, y bool) bool { return !(x && y) }},
		{"nor", func(b *Builder, x, y W) W { return b.Nor(x, y) }, func(x, y bool) bool { return !(x || y) }},
		{"xnor", func(b *Builder, x, y W) W { return b.Xnor(x, y) }, func(x, y bool) bool { return x == y }},
		{"not", func(b *Builder, x, _ W) W { return b.Not(x) }, func(x, _ bool) bool { return !x }},
	}
	for _, g := range gates {
		b := New("tt-" + g.name)
		in := b.Input(circuit.Alice, "in", 2)
		b.Output("out", Bus{g.mk(b, in[0], in[1])})
		c := b.MustCompile()
		for v := uint64(0); v < 4; v++ {
			out := sim.Run(c, sim.Inputs{Alice: sim.UnpackUint(v, 2)}, 1)
			want := g.fn(v&1 == 1, v&2 == 2)
			if out[0] != want {
				t.Errorf("%s(%d): got %v, want %v", g.name, v, out[0], want)
			}
		}
	}
}

// TestMuxTruthTable checks the atomic MUX on secret wires: out = s ? t : f.
func TestMuxTruthTable(t *testing.T) {
	b := New("tt-mux")
	in := b.Input(circuit.Alice, "in", 3)
	b.Output("out", Bus{b.Mux(in[2], in[1], in[0])})
	c := b.MustCompile()
	if got := c.Stats().NonXOR; got != 1 {
		t.Fatalf("mux compiled to %d non-XOR gates, want 1 atomic cell", got)
	}
	for v := uint64(0); v < 8; v++ {
		out := sim.Run(c, sim.Inputs{Alice: sim.UnpackUint(v, 3)}, 1)
		f, tt, s := v&1 == 1, v&2 == 2, v&4 == 4
		want := f
		if s {
			want = tt
		}
		if out[0] != want {
			t.Errorf("mux(s=%v,t=%v,f=%v): got %v, want %v", s, tt, f, out[0], want)
		}
	}
}

// TestConstantFolding checks that gates fed by constants, identical wires
// or complement pairs never reach the netlist.
func TestConstantFolding(t *testing.T) {
	b := New("fold")
	x := b.Input(circuit.Alice, "x", 1)[0]
	nx := b.Not(x)
	cases := []struct {
		name string
		got  W
		want W
	}{
		{"and(x,F)", b.And(x, F), F},
		{"and(F,x)", b.And(F, x), F},
		{"and(x,T)", b.And(x, T), x},
		{"and(x,x)", b.And(x, x), x},
		{"and(x,¬x)", b.And(x, nx), F},
		{"or(x,T)", b.Or(x, T), T},
		{"or(x,F)", b.Or(x, F), x},
		{"or(x,x)", b.Or(x, x), x},
		{"or(x,¬x)", b.Or(x, nx), T},
		{"xor(x,F)", b.Xor(x, F), x},
		{"xor(x,T)", b.Xor(x, T), nx},
		{"xor(x,x)", b.Xor(x, x), F},
		{"xor(x,¬x)", b.Xor(x, nx), T},
		{"nand(x,F)", b.Nand(x, F), T},
		{"nand(x,x)", b.Nand(x, x), nx},
		{"nor(x,F)", b.Nor(x, F), nx},
		{"nor(x,T)", b.Nor(x, T), F},
		{"xnor(x,x)", b.Xnor(x, x), T},
		{"xnor(x,T)", b.Xnor(x, T), x},
		{"not(not(x))", b.Not(nx), x},
		{"not(F)", b.Not(F), T},
		{"not(T)", b.Not(T), F},
		{"mux(T,a,b)", b.Mux(T, x, nx), x},
		{"mux(F,a,b)", b.Mux(F, x, nx), nx},
		{"mux(s,a,a)", b.Mux(nx, x, x), x},
		{"mux(s,T,F)", b.Mux(x, T, F), x},
		{"mux(s,F,T)", b.Mux(x, F, T), nx},
		{"mux(s,¬a,a)", b.Mux(x, nx, x), F}, // x⊕x
	}
	for _, tc := range cases {
		if tc.got != tc.want {
			t.Errorf("%s: wire %d, want %d", tc.name, tc.got, tc.want)
		}
	}
	if got := b.Stats().Gates; got != 1 { // the single NOT
		t.Errorf("folding created %d gates, want 1", got)
	}
}

// TestStructuralSharing checks hash-consing, including commutative
// normalization.
func TestStructuralSharing(t *testing.T) {
	b := New("share")
	in := b.Input(circuit.Alice, "in", 2)
	x, y := in[0], in[1]
	if b.And(x, y) != b.And(y, x) {
		t.Error("And not shared across operand order")
	}
	if b.Xor(x, y) != b.Xor(y, x) {
		t.Error("Xor not shared across operand order")
	}
	if b.Or(x, y) != b.Or(x, y) {
		t.Error("Or not shared on repeat")
	}
	if b.Not(x) != b.Not(x) {
		t.Error("Not not shared on repeat")
	}
	// Mux(s, t, F) lowers to And(s, t), which shares with the AND above.
	if b.Mux(x, y, F) != b.And(x, y) {
		t.Error("Mux lowering not shared with the equivalent AND")
	}
	if b.Mux(x, y, b.Not(y)) != b.Mux(x, y, b.Not(y)) {
		t.Error("Mux cell not shared on repeat")
	}
	if got := b.Stats().Gates; got != 6 { // AND, XOR, OR, NOT(x), NOT(y), XOR(from mux ¬t/f fold)
		t.Errorf("sharing created %d gates, want 6", got)
	}
}

// TestBusCombinators covers the zero-gate rewiring helpers.
func TestBusCombinators(t *testing.T) {
	const n = 8
	for _, v := range []uint64{0, 1, 0x5a, 0x80, 0xff} {
		b := New("bus")
		in := b.Input(circuit.Alice, "x", n)
		outs := map[string]struct {
			bus  Bus
			want uint64
		}{
			"shl3":  {ShlConst(in, 3), v << 3 & 0xff},
			"shr2":  {ShrConst(in, 2, F), v >> 2},
			"asr2":  {ShrConst(in, 2, in[n-1]), asr8(v, 2)},
			"ror3":  {RorConst(in, 3), v>>3 | v<<5&0xff},
			"zext":  {ZeroExtend(in[:4], n), v & 0xf},
			"sext":  {SignExtend(in[:4], n), sext8(v & 0xf)},
			"const": {ConstBus(0xa5, n), 0xa5},
			"zero":  {ZeroBus(n), 0},
		}
		for name, tc := range outs {
			b.Output(name, tc.bus)
		}
		c := b.MustCompile()
		if got := c.Stats().Gates; got != 0 {
			t.Fatalf("bus combinators created %d gates, want 0", got)
		}
		s := sim.New(c, sim.Inputs{Alice: sim.UnpackUint(v, n)})
		s.Step()
		for name, tc := range outs {
			got, err := s.OutputUint(name)
			if err != nil {
				t.Fatal(err)
			}
			if got != tc.want {
				t.Errorf("%s(%#x): got %#x, want %#x", name, v, got, tc.want)
			}
		}
	}
}

func asr8(v uint64, k int) uint64 {
	s := int8(uint8(v))
	return uint64(uint8(s >> uint(k)))
}

func sext8(v uint64) uint64 {
	if v&8 != 0 {
		return v | 0xf0
	}
	return v
}

// TestArithmeticAgainstUint64 property-checks the word-level combinators
// against plain machine arithmetic across widths and operand patterns.
func TestArithmeticAgainstUint64(t *testing.T) {
	widths := []int{1, 2, 3, 5, 8, 13, 32}
	vals := func(n int) []uint64 {
		mask := uint64(1)<<uint(n) - 1
		vs := []uint64{0, 1 & mask, 2 & mask, 3 & mask, mask, mask >> 1, mask &^ 1,
			0xdeadbeefcafef00d & mask, 0x123456789abcdef & mask}
		return vs
	}
	for _, n := range widths {
		mask := uint64(1)<<uint(n) - 1
		b := New(fmt.Sprintf("arith-%d", n))
		x := b.Input(circuit.Alice, "x", n)
		y := b.Input(circuit.Bob, "y", n)
		sum, cout := b.AddCarry(x, y, F)
		sumC, coutC := b.AddCarry(x, y, T)
		inc, incC := b.Inc(x)
		b.Output("add", b.Add(x, y))
		b.Output("sub", b.Sub(x, y))
		b.Output("addc", append(append(Bus(nil), sum...), cout))
		b.Output("addc1", append(append(Bus(nil), sumC...), coutC))
		b.Output("inc", append(append(Bus(nil), inc...), incC))
		b.Output("mul", b.MulLow(x, y))
		b.Output("eq", Bus{b.Eq(x, y)})
		b.Output("eqz", Bus{b.EqZero(x)})
		b.Output("ltu", Bus{b.LtU(x, y)})
		c := b.MustCompile()
		for _, xv := range vals(n) {
			for _, yv := range vals(n) {
				s := sim.New(c, sim.Inputs{
					Alice: sim.UnpackUint(xv, n),
					Bob:   sim.UnpackUint(yv, n),
				})
				s.Step()
				checks := []struct {
					name string
					want uint64
				}{
					{"add", (xv + yv) & mask},
					{"sub", (xv - yv) & mask},
					{"addc", (xv + yv) & (mask<<1 | 1)},
					{"addc1", (xv + yv + 1) & (mask<<1 | 1)},
					{"inc", (xv + 1) & (mask<<1 | 1)},
					{"mul", (xv * yv) & mask},
					{"eq", b2u(xv == yv)},
					{"eqz", b2u(xv == 0)},
					{"ltu", b2u(xv < yv)},
				}
				for _, ck := range checks {
					got, err := s.OutputUint(ck.name)
					if err != nil {
						t.Fatal(err)
					}
					if got != ck.want {
						t.Fatalf("width %d: %s(%#x, %#x) = %#x, want %#x", n, ck.name, xv, yv, got, ck.want)
					}
				}
			}
		}
	}
}

func b2u(v bool) uint64 {
	if v {
		return 1
	}
	return 0
}

// TestSynthesisCosts pins the non-XOR gate counts of the arithmetic
// primitives — the free-XOR cost model every Table 1/2 regression in the
// repository builds on.
func TestSynthesisCosts(t *testing.T) {
	const n = 32
	cases := []struct {
		name string
		mk   func(b *Builder, x, y Bus)
		want int
	}{
		{"add", func(b *Builder, x, y Bus) { b.Output("o", b.Add(x, y)) }, n - 1},
		{"addcarry", func(b *Builder, x, y Bus) {
			s, c := b.AddCarry(x, y, F)
			b.Output("o", append(s, c))
		}, n},
		{"fulladder", func(b *Builder, x, y Bus) {
			s, c := b.FullAdder(x[0], y[0], x[1])
			b.Output("o", Bus{s, c})
		}, 1},
		{"mullow", func(b *Builder, x, y Bus) { b.Output("o", b.MulLow(x, y)) }, n + (n-1)*(n-1)},
		{"eq", func(b *Builder, x, y Bus) { b.Output("o", Bus{b.Eq(x, y)}) }, n - 1},
		{"eqzero", func(b *Builder, x, _ Bus) { b.Output("o", Bus{b.EqZero(x)}) }, n - 1},
		{"ltu", func(b *Builder, x, y Bus) { b.Output("o", Bus{b.LtU(x, y)}) }, n},
		{"muxbus", func(b *Builder, x, y Bus) { b.Output("o", b.MuxBus(b.Input(circuit.Public, "s", 1)[0], x, y)) }, n},
	}
	for _, tc := range cases {
		b := New("cost-" + tc.name)
		x := b.Input(circuit.Alice, "x", n)
		y := b.Input(circuit.Bob, "y", n)
		tc.mk(b, x, y)
		c := b.MustCompile()
		if got := c.Stats().NonXOR; got != tc.want {
			t.Errorf("%s: %d non-XOR gates, want %d", tc.name, got, tc.want)
		}
	}
}

// TestVariableShifts checks the barrel shifters against uint64 semantics
// (including the ≥width and modulo-width regimes of the ARM emulator).
func TestVariableShifts(t *testing.T) {
	const n = 16
	const ab = 5 // amounts 0..31: exercises the ≥ width cases
	b := New("shift")
	x := b.Input(circuit.Alice, "x", n)
	amt := b.Input(circuit.Bob, "amt", ab)
	b.Output("shl", b.ShlVar(x, amt))
	b.Output("shr", b.ShrVar(x, amt, false))
	b.Output("asr", b.AsrVar(x, amt))
	b.Output("ror", b.RorVar(x, amt))
	c := b.MustCompile()

	mask := uint64(1)<<n - 1
	for _, xv := range []uint64{0, 1, 0x8000, 0xa5a5, 0xffff, 0x1234} {
		for av := uint64(0); av < 1<<ab; av++ {
			s := sim.New(c, sim.Inputs{
				Alice: sim.UnpackUint(xv, n),
				Bob:   sim.UnpackUint(av, ab),
			})
			s.Step()
			wantShl, wantShr := uint64(0), uint64(0)
			if av < n {
				wantShl = xv << av & mask
				wantShr = xv >> av
			}
			wantAsr := uint64(uint16(int16(uint16(xv)) >> min(av, uint64(n-1))))
			r := av % n
			wantRor := (xv>>r | xv<<(n-r)) & mask
			for _, ck := range []struct {
				name string
				want uint64
			}{{"shl", wantShl}, {"shr", wantShr}, {"asr", wantAsr}, {"ror", wantRor}} {
				got, err := s.OutputUint(ck.name)
				if err != nil {
					t.Fatal(err)
				}
				if got != ck.want {
					t.Fatalf("%s(%#x, %d) = %#x, want %#x", ck.name, xv, av, got, ck.want)
				}
			}
		}
	}
}

// TestMuxTreeAndDecoder checks tree selection and one-hot decoding for
// every select value, including non-power-of-two item counts.
func TestMuxTreeAndDecoder(t *testing.T) {
	for _, nItems := range []int{1, 2, 3, 5, 8} {
		selBits := 3
		b := New("muxtree")
		sel := b.Input(circuit.Alice, "sel", selBits)
		en := b.Input(circuit.Bob, "en", 1)[0]
		items := make([]Bus, nItems)
		for i := range items {
			items[i] = ConstBus(uint64(i*13+7), 8)
		}
		b.Output("pick", b.MuxTree(sel, items))
		dec := b.Decoder(sel, en)
		if len(dec) != 1<<selBits {
			t.Fatalf("decoder returned %d lines, want %d", len(dec), 1<<selBits)
		}
		b.Output("onehot", Bus(dec))
		c := b.MustCompile()
		for v := uint64(0); v < 1<<selBits; v++ {
			for _, enV := range []uint64{0, 1} {
				s := sim.New(c, sim.Inputs{
					Alice: sim.UnpackUint(v, selBits),
					Bob:   sim.UnpackUint(enV, 1),
				})
				s.Step()
				pick, _ := s.OutputUint("pick")
				want := uint64(0)
				if int(v) < nItems {
					want = uint64(int(v)*13 + 7)
				}
				if pick != want {
					t.Errorf("%d items: muxtree[%d] = %d, want %d", nItems, v, pick, want)
				}
				onehot, _ := s.OutputUint("onehot")
				wantHot := uint64(0)
				if enV == 1 {
					wantHot = 1 << v
				}
				if onehot != wantHot {
					t.Errorf("decoder(%d, en=%d) = %#x, want %#x", v, enV, onehot, wantHot)
				}
			}
		}
	}
}

// TestRegisters covers Reg/RegInit semantics: hold-by-default, SetNext
// feedback, and all five initialization kinds.
func TestRegisters(t *testing.T) {
	b := New("regs")
	pubOff := b.AllocInputBits(circuit.Public, 1)
	aliceOff := b.AllocInputBits(circuit.Alice, 1)
	bobOff := b.AllocInputBits(circuit.Bob, 1)
	seeded := b.RegInit("seeded", []circuit.Init{
		{Kind: circuit.InitZero},
		{Kind: circuit.InitOne},
		{Kind: circuit.InitPublic, Idx: pubOff},
		{Kind: circuit.InitAlice, Idx: aliceOff},
		{Kind: circuit.InitBob, Idx: bobOff},
	})
	seeded.SetNext(seeded.Q()) // ROM
	cnt := b.Reg("cnt", 4)
	if cnt.Bits() != 4 {
		t.Fatalf("cnt.Bits() = %d, want 4", cnt.Bits())
	}
	inc, _ := b.Inc(cnt.Q())
	cnt.SetNext(inc)
	hold := b.Reg("hold", 2) // no SetNext: holds its zero init
	b.Output("seeded", seeded.Q())
	b.Output("cnt", cnt.Q())
	b.Output("hold", hold.Q())
	c := b.MustCompile()

	in := sim.Inputs{Public: []bool{true}, Alice: []bool{false}, Bob: []bool{true}}
	s := sim.New(c, in)
	for cyc := 1; cyc <= 3; cyc++ {
		s.Step()
		seededV, _ := s.OutputUint("seeded")
		if seededV != 0b10110 {
			t.Fatalf("cycle %d: seeded ROM = %#b, want 10110", cyc, seededV)
		}
		cntV, _ := s.OutputUint("cnt")
		if cntV != uint64(cyc) {
			t.Fatalf("cycle %d: cnt = %d, want %d", cyc, cntV, cyc)
		}
		holdV, _ := s.OutputUint("hold")
		if holdV != 0 {
			t.Fatalf("cycle %d: hold = %d, want 0", cyc, holdV)
		}
	}
}

// TestScopes checks gate attribution, nesting, and the GateScope layout
// the baseline package consumes.
func TestScopes(t *testing.T) {
	b := New("scopes")
	in := b.Input(circuit.Alice, "in", 6)
	_ = b.And(in[0], in[1]) // unscoped
	closeA := b.Scope("a")
	_ = b.And(in[0], in[2])
	closeB := b.Scope("b")
	_ = b.And(in[0], in[3])
	_ = b.And(in[1], in[3])
	closeB()
	_ = b.And(in[0], in[4]) // back in scope a
	closeA()
	_ = b.And(in[0], in[5])             // unscoped again
	b.Output("o", Bus{b.OrTree(Bus{})}) // constant output keeps outputs simple
	c := b.MustCompile()

	if c.GateScope == nil || len(c.GateScope) != len(c.Gates) {
		t.Fatalf("GateScope len %d, want %d", len(c.GateScope), len(c.Gates))
	}
	counts := map[string]int{}
	for i := range c.Gates {
		counts[c.ScopeNames[c.GateScope[i]]]++
	}
	want := map[string]int{"": 2, "a": 2, "b": 2}
	for k, v := range want {
		if counts[k] != v {
			t.Errorf("scope %q: %d gates, want %d", k, counts[k], v)
		}
	}
}

// TestScopelessCircuit: a builder that never opens a scope emits no
// GateScope table at all.
func TestScopelessCircuit(t *testing.T) {
	b := New("noscope")
	in := b.Input(circuit.Alice, "in", 2)
	b.Output("o", Bus{b.And(in[0], in[1])})
	c := b.MustCompile()
	if c.GateScope != nil || c.ScopeNames != nil {
		t.Error("scope table emitted for a scopeless circuit")
	}
}

// TestInputAllocation checks that ports and AllocInputBits share one
// offset space per owner and that Compile reports the totals.
func TestInputAllocation(t *testing.T) {
	b := New("alloc")
	if off := b.AllocInputBits(circuit.Alice, 8); off != 0 {
		t.Fatalf("first alice alloc at %d", off)
	}
	a := b.Input(circuit.Alice, "a", 4)
	if off := b.AllocInputBits(circuit.Alice, 2); off != 12 {
		t.Fatalf("third alice alloc at %d, want 12", off)
	}
	p := b.Input(circuit.Public, "p", 3)
	b.Output("o", append(a[:1], p[:1]...))
	c := b.MustCompile()
	if c.AliceBits != 14 || c.PublicBits != 3 || c.BobBits != 0 {
		t.Errorf("bits = (%d, %d, %d), want (3, 14, 0) as (pub, alice, bob)",
			c.PublicBits, c.AliceBits, c.BobBits)
	}
	port := c.FindPort("a")
	if port == nil || port.Off != 8 || port.Bits != 4 || port.Owner != circuit.Alice {
		t.Errorf("port a = %+v, want off 8, 4 bits, alice", port)
	}
}

// TestCompileLayout checks the frozen wire layout against the circuit
// package's contract, with ports, registers and gates interleaved at
// build time.
func TestCompileLayout(t *testing.T) {
	b := New("layout")
	r1 := b.Reg("early", 2)
	a := b.Input(circuit.Alice, "a", 3)
	g1 := b.And(a[0], a[1])
	r2 := b.Reg("late", 1) // register created after a gate
	r2.SetNext(Bus{g1})
	r1.SetNext(b.XorBus(r1.Q(), a[0:2]))
	b.Output("o", append(r1.Q(), r2.Q()...))
	c := b.MustCompile()

	if c.PortBase != 2 || int(c.DFFBase) != 2+3 || int(c.GateBase) != 2+3+3 {
		t.Fatalf("layout bases = %d/%d/%d", c.PortBase, c.DFFBase, c.GateBase)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.Name != "layout" || b.Name() != "layout" {
		t.Error("circuit name lost")
	}
	// The builder's Stats preview must agree with the frozen circuit's.
	if b.Stats() != c.Stats() {
		t.Errorf("builder stats %+v != circuit stats %+v", b.Stats(), c.Stats())
	}
}

// TestBuilderPanics checks that structural misuse panics with a
// build-prefixed message rather than corrupting the netlist.
func TestBuilderPanics(t *testing.T) {
	cases := []struct {
		name string
		f    func(b *Builder)
	}{
		{"foreign wire", func(b *Builder) { b.Not(W(999)) }},
		{"negative wire", func(b *Builder) { b.And(W(-1), T) }},
		{"width mismatch add", func(b *Builder) {
			b.Add(b.Input(circuit.Alice, "x", 3), ZeroBus(4))
		}},
		{"width mismatch muxbus", func(b *Builder) {
			b.MuxBus(T, ZeroBus(2), ZeroBus(3))
		}},
		{"setnext width", func(b *Builder) { b.Reg("r", 4).SetNext(ZeroBus(3)) }},
		{"empty reg", func(b *Builder) { b.RegInit("r", nil) }},
		{"zero-width reg", func(b *Builder) { b.Reg("r", 0) }},
		{"zero-width input", func(b *Builder) { b.Input(circuit.Alice, "x", 0) }},
		{"negative alloc", func(b *Builder) { b.AllocInputBits(circuit.Bob, -1) }},
		{"bad owner", func(b *Builder) { b.AllocInputBits(circuit.Owner(9), 1) }},
		{"muxtree empty", func(b *Builder) { b.MuxTree(ZeroBus(1), nil) }},
		{"muxtree overflow", func(b *Builder) {
			b.MuxTree(Bus{T}, []Bus{ZeroBus(1), ZeroBus(1), ZeroBus(1)})
		}},
		{"zeroextend shrink", func(*Builder) { ZeroExtend(ZeroBus(4), 2) }},
		{"signextend empty", func(*Builder) { SignExtend(Bus{}, 2) }},
		{"shlconst negative", func(*Builder) { ShlConst(ZeroBus(2), -1) }},
		{"shrconst negative", func(*Builder) { ShrConst(ZeroBus(2), -1, F) }},
		{"output foreign", func(b *Builder) { b.Output("o", Bus{W(57)}) }},
		{"output duplicate", func(b *Builder) {
			b.Output("o", ZeroBus(1))
			b.Output("o", ZeroBus(1))
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", tc.name)
				}
			}()
			tc.f(New("panic"))
		})
	}
}

// TestMustCompilePanics: an invalid netlist (here: an unnamed duplicate
// that Validate rejects is hard to produce through the API, so force a
// bad init index) panics through MustCompile and errors through Compile.
func TestMustCompilePanics(t *testing.T) {
	mk := func() *Builder {
		b := New("bad")
		b.RegInit("r", []circuit.Init{{Kind: circuit.InitAlice, Idx: 3}}) // no alice bits allocated
		b.Output("o", ZeroBus(1))
		return b
	}
	if _, err := mk().Compile(); err == nil {
		t.Fatal("Compile accepted an out-of-range init index")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustCompile did not panic")
		}
	}()
	mk().MustCompile()
}

// TestXorHeavyIsFree: a deep XOR/rotation construction (one Keccak θ-like
// layer) compiles to zero non-XOR gates.
func TestXorHeavyIsFree(t *testing.T) {
	b := New("xorheavy")
	lanes := make([]Bus, 5)
	for i := range lanes {
		lanes[i] = b.Input(circuit.Alice, fmt.Sprintf("l%d", i), 16)
	}
	parity := lanes[0]
	for _, l := range lanes[1:] {
		parity = b.XorBus(parity, l)
	}
	out := b.XorBus(parity, RorConst(parity, 7))
	out = b.XorBus(out, b.NotBus(out)) // folds to all-ones
	b.Output("o", out)
	c := b.MustCompile()
	st := c.Stats()
	if st.NonXOR != 0 {
		t.Errorf("XOR-heavy circuit has %d non-XOR gates", st.NonXOR)
	}
	res := sim.Run(c, sim.Inputs{Alice: sim.UnpackUint(0x1234, 80)}, 1)
	if got := sim.PackUint(res); got != 0xffff {
		t.Errorf("x ⊕ ¬x bus = %#x, want 0xffff", got)
	}
}

// TestTreeHelpers covers the reduction trees, including empties.
func TestTreeHelpers(t *testing.T) {
	b := New("trees")
	in := b.Input(circuit.Alice, "in", 5)
	b.Output("and", Bus{b.AndTree(in)})
	b.Output("or", Bus{b.OrTree(in)})
	b.Output("xor", Bus{b.XorTree(in)})
	b.Output("andE", Bus{b.AndTree(nil)})
	b.Output("orE", Bus{b.OrTree(nil)})
	b.Output("xorE", Bus{b.XorTree(nil)})
	b.Output("and1", Bus{b.AndTree(in[:1])})
	c := b.MustCompile()
	for v := uint64(0); v < 32; v++ {
		s := sim.New(c, sim.Inputs{Alice: sim.UnpackUint(v, 5)})
		s.Step()
		pop := popcount(v)
		for _, ck := range []struct {
			name string
			want uint64
		}{
			{"and", b2u(v == 31)}, {"or", b2u(v != 0)}, {"xor", uint64(pop % 2)},
			{"andE", 1}, {"orE", 0}, {"xorE", 0}, {"and1", v & 1},
		} {
			got, _ := s.OutputUint(ck.name)
			if got != ck.want {
				t.Fatalf("%s(%#b) = %d, want %d", ck.name, v, got, ck.want)
			}
		}
	}
}

func popcount(v uint64) int {
	n := 0
	for ; v != 0; v &= v - 1 {
		n++
	}
	return n
}
