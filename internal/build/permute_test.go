package build

import (
	"fmt"
	"math/rand"
	"testing"

	"arm2gc/internal/circuit"
	"arm2gc/internal/sim"
)

// refPermute mirrors the circuit recursion over plain indices, consuming
// controls in the same order, so the test pins the wiring and not just
// "some permutation happened".
func refPermute(ctl []bool, items []int) ([]int, []bool) {
	n := len(items)
	if n == 1 {
		return items, ctl
	}
	swap := func(c bool, x, y int) (int, int) {
		if c {
			return y, x
		}
		return x, y
	}
	if n == 2 {
		x, y := swap(ctl[0], items[0], items[1])
		return []int{x, y}, ctl[1:]
	}
	half := n / 2
	top := make([]int, half)
	bot := make([]int, half)
	for i := 0; i < half; i++ {
		top[i], bot[i] = swap(ctl[0], items[2*i], items[2*i+1])
		ctl = ctl[1:]
	}
	top, ctl = refPermute(ctl, top)
	bot, ctl = refPermute(ctl, bot)
	out := []int{top[0], bot[0]}
	for i := 1; i < half; i++ {
		x, y := swap(ctl[0], top[i], bot[i])
		ctl = ctl[1:]
		out = append(out, x, y)
	}
	return out, ctl
}

// permuteCircuit builds a Permute over n w-bit items with secret controls
// (Bob) and secret items (Alice), so nothing folds at construction.
func permuteCircuit(t *testing.T, n, w int) *circuit.Circuit {
	t.Helper()
	b := New(fmt.Sprintf("permute-%d", n))
	ctl := b.Input(circuit.Bob, "ctl", PermuteNetworkControls(n))
	items := make([]Bus, n)
	for i := range items {
		items[i] = b.Input(circuit.Alice, fmt.Sprintf("x%d", i), w)
	}
	out := b.Permute(ctl, items)
	flat := Bus{}
	for _, o := range out {
		flat = append(flat, o...)
	}
	b.Output("out", flat)
	return b.MustCompile()
}

func runPermute(c *circuit.Circuit, n, w int, ctlBits []bool) []uint64 {
	alice := make([]bool, 0, n*w)
	for i := 0; i < n; i++ {
		alice = append(alice, sim.UnpackUint(uint64(i), w)...)
	}
	out := sim.Run(c, sim.Inputs{Alice: alice, Bob: ctlBits}, 1)
	got := make([]uint64, n)
	for i := range got {
		got[i] = sim.PackUint(out[i*w : (i+1)*w])
	}
	return got
}

func TestPermuteControlCount(t *testing.T) {
	// n·log2(n) − n + 1, the Waksman switch count.
	for _, tc := range []struct{ n, want int }{
		{1, 0}, {2, 1}, {4, 5}, {8, 17}, {16, 49}, {32, 129},
	} {
		if got := PermuteNetworkControls(tc.n); got != tc.want {
			t.Errorf("PermuteNetworkControls(%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
}

// TestPermuteCostModel pins the free-XOR cost: exactly width tables per
// conditional swap (the per-bit AND), nothing else non-XOR.
func TestPermuteCostModel(t *testing.T) {
	for _, tc := range []struct{ n, w int }{{2, 1}, {4, 4}, {8, 32}, {16, 8}} {
		c := permuteCircuit(t, tc.n, tc.w)
		want := tc.w * PermuteNetworkControls(tc.n)
		if got := c.Stats().NonXOR; got != want {
			t.Errorf("Permute(n=%d, w=%d): %d non-XOR gates, want exactly %d (one AND per bus bit per switch)",
				tc.n, tc.w, got, want)
		}
	}
}

// TestPermuteMatchesReference drives random control settings through the
// circuit and the index-level reference recursion.
func TestPermuteMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{2, 4, 8, 16} {
		w := 8
		c := permuteCircuit(t, n, w)
		nc := PermuteNetworkControls(n)
		for trial := 0; trial < 25; trial++ {
			ctl := make([]bool, nc)
			for i := range ctl {
				ctl[i] = rng.Intn(2) == 1
			}
			items := make([]int, n)
			for i := range items {
				items[i] = i
			}
			want, rest := refPermute(ctl, items)
			if len(rest) != 0 {
				t.Fatalf("reference recursion left %d controls", len(rest))
			}
			got := runPermute(c, n, w, ctl)
			for i := range got {
				if got[i] != uint64(want[i]) {
					t.Fatalf("n=%d ctl=%v: out[%d] = %d, want %d (full: got %v want %v)",
						n, ctl, i, got[i], want[i], got, want)
				}
			}
		}
	}
}

// TestPermuteRearrangeable enumerates every control setting at n=4 (2^5)
// and checks all 4! = 24 permutations are reachable — the Waksman
// guarantee that dropping one output switch per level loses nothing.
func TestPermuteRearrangeable(t *testing.T) {
	const n, w = 4, 4
	c := permuteCircuit(t, n, w)
	nc := PermuteNetworkControls(n)
	seen := map[[n]uint64]bool{}
	for v := 0; v < 1<<nc; v++ {
		ctl := make([]bool, nc)
		for i := range ctl {
			ctl[i] = v>>i&1 == 1
		}
		got := runPermute(c, n, w, ctl)
		var key [n]uint64
		copy(key[:], got)
		// Every output must be a permutation of 0..n-1.
		var mask uint64
		for _, x := range got {
			mask |= 1 << x
		}
		if mask != 1<<n-1 {
			t.Fatalf("ctl %0*b: output %v is not a permutation", nc, v, got)
		}
		seen[key] = true
	}
	if len(seen) != 24 {
		t.Errorf("n=4 network reaches %d permutations, want all 24", len(seen))
	}
}
