package build

import (
	"fmt"
	"strings"

	"arm2gc/internal/circuit"
)

// Severity ranks netlist lint findings.
type Severity uint8

const (
	// Warning marks cost smells that don't threaten correctness:
	// hash-consed dead cones are unreachable but still garbled.
	Warning Severity = iota
	// Error marks structural violations of the builder's contract:
	// anything the fold rules guarantee can't happen, plus validation
	// and cost-model drift. An Error means the netlist did not come out
	// of a healthy Builder.
	Error
)

func (s Severity) String() string {
	if s == Error {
		return "ERROR"
	}
	return "WARNING"
}

// LintIssue is one finding about a built netlist.
type LintIssue struct {
	Severity Severity
	Code     string // stable machine-readable id, e.g. "const-input"
	Msg      string
}

func (i LintIssue) String() string {
	return fmt.Sprintf("%s [%s] %s", i.Severity, i.Code, i.Msg)
}

// LintOpts tunes Lint.
type LintOpts struct {
	// CheckCost enables the cost-model drift check: the circuit's
	// non-XOR count (garbled tables per cycle under free-XOR) must equal
	// ExpectNonXOR, the golden recorded for the program.
	CheckCost    bool
	ExpectNonXOR int
}

// LintReport is the set of findings for one circuit.
type LintReport struct {
	Circuit string
	Issues  []LintIssue
}

// Errors counts Error-severity issues.
func (r *LintReport) Errors() int {
	n := 0
	for _, i := range r.Issues {
		if i.Severity == Error {
			n++
		}
	}
	return n
}

// Err returns a non-nil error when the report contains any Error.
func (r *LintReport) Err() error {
	if n := r.Errors(); n > 0 {
		return fmt.Errorf("build: netlist lint: %d error(s) in %q:\n%s", n, r.Circuit, r)
	}
	return nil
}

func (r *LintReport) String() string {
	var sb strings.Builder
	for _, i := range r.Issues {
		sb.WriteString("  ")
		sb.WriteString(i.String())
		sb.WriteString("\n")
	}
	return strings.TrimRight(sb.String(), "\n")
}

func (r *LintReport) addf(sev Severity, code, format string, args ...any) {
	r.Issues = append(r.Issues, LintIssue{Severity: sev, Code: code, Msg: fmt.Sprintf(format, args...)})
}

// Lint checks a built circuit against the Builder's structural contract.
// Compile-produced netlists must come back clean of Errors: every Error
// below corresponds to a fold or normalization the Builder performs
// unconditionally (gates.go), so its presence means the netlist was
// constructed or mutated outside the Builder, corrupted in transit, or
// the Builder itself regressed. Warnings flag garbling cost left on the
// table (dead cones survive hash-consing when a MUX fold orphans its
// unselected input tree; they are garbled but never consumed).
func Lint(c *circuit.Circuit, opts LintOpts) *LintReport {
	r := &LintReport{Circuit: c.Name}

	// Structural well-formedness first: wire ranges, base partitioning
	// (overlapping bases are how a wire ends up double-driven in this
	// IR), topological order. If this fails the per-gate checks below
	// could index out of range, so stop here.
	if err := c.Validate(); err != nil {
		r.addf(Error, "validate", "%v", err)
		return r
	}

	isConst := func(w circuit.Wire) bool { return w == circuit.Const0 || w == circuit.Const1 }
	notOf := func(w circuit.Wire) (circuit.Wire, bool) {
		// The driver of w when it is a NOT gate's output.
		if gi := c.WireGate(w); gi >= 0 && c.Gates[gi].Op == circuit.NOT {
			return c.Gates[gi].A, true
		}
		return 0, false
	}

	type gateKey struct {
		op      circuit.Op
		a, b, s circuit.Wire
	}
	seen := make(map[gateKey]int, len(c.Gates))

	for i, g := range c.Gates {
		switch g.Op {
		case circuit.NAND, circuit.NOR, circuit.XNOR, circuit.BUF:
			r.addf(Error, "non-normal-op", "gate %d: %s survived lowering (builder emits only AND/OR/XOR/NOT/MUX)", i, g.Op)
			continue
		}

		switch g.Op {
		case circuit.AND, circuit.OR, circuit.XOR:
			if isConst(g.A) || isConst(g.B) {
				r.addf(Error, "const-input", "gate %d: %s has a constant input (A=%d B=%d); the builder folds these to a wire", i, g.Op, g.A, g.B)
			}
			if g.A == g.B {
				r.addf(Error, "self-input", "gate %d: %s(%d,%d) with equal inputs folds to a wire or a constant", i, g.Op, g.A, g.B)
			}
			if g.A > g.B {
				r.addf(Error, "unnormalized", "gate %d: %s inputs not in canonical a<=b order (%d,%d); defeats structural sharing", i, g.Op, g.A, g.B)
			}
		case circuit.NOT:
			if isConst(g.A) {
				r.addf(Error, "const-input", "gate %d: NOT of constant %d", i, g.A)
			}
			if inner, ok := notOf(g.A); ok {
				r.addf(Error, "double-not", "gate %d: NOT(NOT(%d)) folds to wire %d", i, inner, inner)
			}
		case circuit.MUX:
			switch {
			case isConst(g.S):
				r.addf(Error, "foldable-mux", "gate %d: MUX with constant select %d folds to one of its data inputs", i, g.S)
			case g.A == g.B:
				r.addf(Error, "foldable-mux", "gate %d: MUX with equal data inputs (%d) folds to that wire", i, g.A)
			case isConst(g.A) && isConst(g.B):
				r.addf(Error, "foldable-mux", "gate %d: MUX with constant data inputs folds to S or NOT(S)", i)
			default:
				if inner, ok := notOf(g.B); ok && inner == g.A {
					r.addf(Error, "foldable-mux", "gate %d: MUX(s, a, NOT(a)) folds to XOR(s,a)", i)
				} else if inner, ok := notOf(g.A); ok && inner == g.B {
					r.addf(Error, "foldable-mux", "gate %d: MUX(s, NOT(a), a) folds to XOR(NOT(s),a)... the builder emits the XOR form", i)
				}
			}
		}

		key := gateKey{op: g.Op, a: g.A, b: g.B}
		if g.Op == circuit.MUX {
			key.s = g.S
		}
		if prev, dup := seen[key]; dup {
			r.addf(Error, "duplicate-gate", "gate %d duplicates gate %d (%s %d,%d): hash-consing would have shared them", i, prev, g.Op, g.A, g.B)
		} else {
			seen[key] = i
		}
	}

	// Reachability: a gate is live when its output feeds (transitively)
	// a named output or a flip-flop's next state. Dead cones appear when
	// a fold re-points a consumer and nothing else references the old
	// tree; they cost garbling every cycle without affecting any output,
	// so they are a cost smell, not a correctness error.
	live := make([]bool, len(c.Gates))
	var mark func(w circuit.Wire)
	mark = func(w circuit.Wire) {
		gi := c.WireGate(w)
		if gi < 0 || live[gi] {
			return
		}
		live[gi] = true
		g := c.Gates[gi]
		mark(g.A)
		if !g.Op.IsUnary() {
			mark(g.B)
		}
		if g.Op == circuit.MUX {
			mark(g.S)
		}
	}
	for _, o := range c.Outputs {
		for _, w := range o.Wires {
			mark(c.ResolveOutput(w))
		}
	}
	for _, d := range c.DFFs {
		mark(d.D)
	}
	dead, deadTables := 0, 0
	for i, l := range live {
		if l {
			continue
		}
		dead++
		switch c.Gates[i].Op {
		case circuit.AND, circuit.OR, circuit.NAND, circuit.NOR, circuit.MUX:
			deadTables++
		}
	}
	if dead > 0 {
		r.addf(Warning, "unreachable", "%d of %d gates unreachable from outputs/DFFs (%d garbled tables/cycle of dead cost)", dead, len(c.Gates), deadTables)
	}

	if opts.CheckCost {
		if got := c.Stats().NonXOR; got != opts.ExpectNonXOR {
			r.addf(Error, "cost-drift", "non-XOR count %d != golden %d: the free-XOR cost model drifted (re-bless the golden only with a benchmarked justification)", got, opts.ExpectNonXOR)
		}
	}
	return r
}
