package build

import "fmt"

// Arithmetic and word-level combinators. Everything here is synthesized
// for the free-XOR cost model: a full adder is a single AND plus XORs
// (Boyar-Peralta), so an n-bit adder costs n−1 tables without carry-out
// and n with, and the n-bit truncated multiplier costs n + (n−1)² — the
// counts the seed's Table 1/2 regressions pin.

// FullAdder returns (sum, carry) of three bits using one AND:
//
//	sum  = a ⊕ b ⊕ c
//	cout = c ⊕ ((a⊕c) ∧ (b⊕c))
func (b *Builder) FullAdder(a, x, cin W) (sum, cout W) {
	axc := b.Xor(a, cin)
	bxc := b.Xor(x, cin)
	sum = b.Xor(axc, x)
	cout = b.Xor(cin, b.And(axc, bxc))
	return sum, cout
}

// AddCarry adds two equal-width buses with a carry-in and returns the sum
// and the carry-out. Cost: one AND per bit.
func (b *Builder) AddCarry(x, y Bus, cin W) (Bus, W) {
	b.checkSameWidth("AddCarry", x, y)
	sum := make(Bus, len(x))
	c := cin
	for i := range x {
		sum[i], c = b.FullAdder(x[i], y[i], c)
	}
	return sum, c
}

// Add adds two equal-width buses, discarding the carry-out. Cost: one AND
// per bit except the last.
func (b *Builder) Add(x, y Bus) Bus {
	b.checkSameWidth("Add", x, y)
	if len(x) == 0 {
		return Bus{}
	}
	n := len(x)
	sum, c := b.AddCarry(x[:n-1], y[:n-1], F)
	return append(sum, b.Xor(b.Xor(x[n-1], c), y[n-1]))
}

// Sub returns x − y (two's complement), discarding the borrow.
func (b *Builder) Sub(x, y Bus) Bus {
	b.checkSameWidth("Sub", x, y)
	if len(x) == 0 {
		return Bus{}
	}
	n := len(x)
	ny := b.NotBus(y)
	sum, c := b.AddCarry(x[:n-1], ny[:n-1], T)
	return append(sum, b.Xor(b.Xor(x[n-1], c), ny[n-1]))
}

// Inc increments a bus by one, returning the sum and the carry-out.
// Cost: one AND per bit except the first.
func (b *Builder) Inc(x Bus) (Bus, W) {
	sum := make(Bus, len(x))
	c := T
	for i, w := range x {
		sum[i] = b.Xor(w, c)
		c = b.And(w, c)
	}
	return sum, c
}

// Eq compares two equal-width buses for equality. Cost: n−1 ANDs.
func (b *Builder) Eq(x, y Bus) W {
	b.checkSameWidth("Eq", x, y)
	same := make(Bus, len(x))
	for i := range x {
		same[i] = b.Xnor(x[i], y[i])
	}
	return b.AndTree(same)
}

// EqZero tests a bus against zero. Cost: n−1 ORs.
func (b *Builder) EqZero(x Bus) W { return b.Not(b.OrTree(x)) }

// LtU computes the unsigned comparison x < y with the serial recurrence
// lt' = (xᵢ⊕yᵢ) ? yᵢ : lt from the LSB up (one MUX per bit), the same
// construction as the paper's bit-serial comparator.
func (b *Builder) LtU(x, y Bus) W {
	b.checkSameWidth("LtU", x, y)
	lt := F
	for i := range x {
		lt = b.Mux(b.Xor(x[i], y[i]), y[i], lt)
	}
	return lt
}

// MulLow multiplies two equal-width buses, keeping the low half of the
// product (C semantics). Shift-and-add over AND partial products:
// n + (n−1)² non-XOR gates for width n (993 at 32 bits, the truncated
// multiplier the benchmarks count).
func (b *Builder) MulLow(x, y Bus) Bus {
	b.checkSameWidth("MulLow", x, y)
	n := len(x)
	if n == 0 {
		return Bus{}
	}
	acc := b.AndWith(y[0], x)
	for j := 1; j < n; j++ {
		pp := b.AndWith(y[j], x[:n-j])
		hi := b.Add(acc[j:], pp)
		acc = append(append(Bus(nil), acc[:j]...), hi...)
	}
	return acc
}

// --- Selection ---

// MuxTree selects items[v] where v is the little-endian value of sel.
// Fewer than 2^len(sel) items are allowed; missing entries read as zero.
// All items must share one width. Cost: one MUX per bit per internal
// node — but with a public select (the processor's common case: opcode,
// register index, public memory address) SkipGate resolves every level to
// wires for free.
func (b *Builder) MuxTree(sel Bus, items []Bus) Bus {
	if len(items) == 0 {
		panic(fmt.Sprintf("build: %s: MuxTree with no items", b.name))
	}
	if len(items) > 1<<len(sel) {
		panic(fmt.Sprintf("build: %s: MuxTree: %d items exceed %d-bit select", b.name, len(items), len(sel)))
	}
	width := len(items[0])
	for _, it := range items {
		b.checkSameWidth("MuxTree", items[0], it)
	}
	cur := append([]Bus(nil), items...)
	for k := 0; k < len(sel); k++ {
		next := make([]Bus, (len(cur)+1)/2)
		for i := range next {
			lo := cur[2*i]
			hi := ZeroBus(width)
			if 2*i+1 < len(cur) {
				hi = cur[2*i+1]
			}
			next[i] = b.MuxBus(sel[k], hi, lo)
		}
		cur = next
	}
	return cur[0]
}

// Decoder returns the 2^len(sel) one-hot lines en ∧ (sel == i), built by
// recursive doubling (2^(k+1)−2 ANDs beyond the enable). With a public
// select only the en line survives, making decoded register/memory writes
// free.
func (b *Builder) Decoder(sel Bus, en W) []W {
	b.checkWire(en)
	cur := []W{en}
	for k := 0; k < len(sel); k++ {
		ns := b.Not(sel[k])
		next := make([]W, 2*len(cur))
		for i, w := range cur {
			next[i] = b.And(w, ns)
			next[i+len(cur)] = b.And(w, sel[k])
		}
		cur = next
	}
	return cur
}

// --- Variable shifts and rotates (barrel constructions) ---

// ShlVar shifts x left by the unsigned amount bus: one MUX stage per
// amount bit. Amounts ≥ len(x) yield zero, matching the emulator's LSL.
func (b *Builder) ShlVar(x Bus, amt Bus) Bus {
	cur := append(Bus(nil), x...)
	for k, s := range amt {
		shifted := ZeroBus(len(x))
		if sh := 1 << uint(k); sh < len(x) {
			shifted = ShlConst(cur, sh)
		}
		cur = b.MuxBus(s, shifted, cur)
	}
	return cur
}

// ShrVar shifts x right by the unsigned amount bus; arith selects an
// arithmetic shift (sign fill). Logical amounts ≥ len(x) yield zero and
// arithmetic ones saturate to all-sign, matching the emulator's LSR/ASR.
func (b *Builder) ShrVar(x Bus, amt Bus, arith bool) Bus {
	cur := append(Bus(nil), x...)
	for k, s := range amt {
		fill := F
		if arith && len(x) > 0 {
			fill = cur[len(cur)-1]
		}
		shifted := ShrConst(cur, 1<<uint(k), fill)
		cur = b.MuxBus(s, shifted, cur)
	}
	return cur
}

// AsrVar is ShrVar with sign fill (ARM's ASR).
func (b *Builder) AsrVar(x Bus, amt Bus) Bus { return b.ShrVar(x, amt, true) }

// RorVar rotates x right by the amount bus, modulo the width (ARM's ROR
// by register: stages whose rotation is a multiple of the width fold
// away).
func (b *Builder) RorVar(x Bus, amt Bus) Bus {
	cur := append(Bus(nil), x...)
	if len(x) == 0 {
		return cur
	}
	for k, s := range amt {
		rot := (1 << uint(k)) % len(x)
		if rot == 0 {
			continue
		}
		cur = b.MuxBus(s, RorConst(cur, rot), cur)
	}
	return cur
}
