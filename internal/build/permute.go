package build

// Permutation and shuffle-network primitives, the circuit substrate of
// oblivious-memory constructions (a square-root ORAM's offline shuffle is
// a Benes/Waksman network over the memory words). Everything here is
// pinned to the free-XOR cost model: a conditional swap of two k-bit
// buses costs exactly k garbled tables — d = c ∧ (x⊕y), x' = x⊕d,
// y' = y⊕d — because the XORs are free and only the AND per bit is a
// table. A Waksman network over n buses therefore costs exactly
// k·(n·log2(n) − n + 1) tables: a log factor above one linear scan per
// element, but amortizable over the whole memory at once, which is the
// asymptotic argument for ORAM above the break-even.

// CondSwapBit conditionally swaps two wires: (x, y) when c=0, (y, x)
// when c=1, for one garbled table (the AND; both XORs are free). With a
// public c, SkipGate pays nothing at all.
func (b *Builder) CondSwapBit(c, x, y W) (W, W) {
	d := b.And(c, b.Xor(x, y))
	return b.Xor(x, d), b.Xor(y, d)
}

// CondSwap conditionally swaps two equal-width buses for len(x) garbled
// tables — one AND per bit, the free-XOR-optimal conditional swap. (The
// naive pair of muxes costs 2·len(x).)
func (b *Builder) CondSwap(c W, x, y Bus) (Bus, Bus) {
	b.checkSameWidth("CondSwap", x, y)
	nx := make(Bus, len(x))
	ny := make(Bus, len(y))
	for i := range x {
		nx[i], ny[i] = b.CondSwapBit(c, x[i], y[i])
	}
	return nx, ny
}

// PermuteNetworkControls is the number of control bits Permute consumes
// for n items (n a power of two ≥ 1): the conditional-swap count of the
// Waksman network, n·log2(n) − n + 1.
func PermuteNetworkControls(n int) int {
	if n < 1 || n&(n-1) != 0 {
		panic("build: PermuteNetworkControls needs a power-of-two item count")
	}
	if n == 1 {
		return 0
	}
	if n == 2 {
		return 1
	}
	return (n - 1) + 2*PermuteNetworkControls(n/2)
}

// Permute routes n equal-width buses (n a power of two) through a
// Waksman network driven by ctl, which must hold exactly
// PermuteNetworkControls(n) wires. Every permutation of the items is
// reachable by some control setting; with secret controls the network
// costs width·len(ctl) garbled tables and hides the permutation, with
// public controls it is free under SkipGate. Control order matches the
// recursion: input column top-down, then the even (top) subnetwork, then
// the odd (bottom) subnetwork, then the output column top-down — with
// the first output switch of each level fixed straight-through (the
// Waksman saving; it is redundant for rearrangeability).
func (b *Builder) Permute(ctl Bus, items []Bus) []Bus {
	if n := len(items); n < 1 || n&(n-1) != 0 {
		panic("build: Permute needs a power-of-two item count")
	}
	if len(ctl) != PermuteNetworkControls(len(items)) {
		panic("build: Permute control-bus width does not match PermuteNetworkControls(len(items))")
	}
	out, rest := b.permute(ctl, items)
	if len(rest) != 0 {
		panic("build: Permute control accounting is broken")
	}
	return out
}

// permute consumes controls from the front of ctl and returns the
// unconsumed remainder, so the recursive halves split one bus.
func (b *Builder) permute(ctl Bus, items []Bus) ([]Bus, Bus) {
	n := len(items)
	if n == 1 {
		return items, ctl
	}
	if n == 2 {
		x, y := b.CondSwap(ctl[0], items[0], items[1])
		return []Bus{x, y}, ctl[1:]
	}
	half := n / 2

	// Input column: switch i pairs items (2i, 2i+1), feeding the top and
	// bottom half-size subnetworks.
	top := make([]Bus, half)
	bot := make([]Bus, half)
	for i := 0; i < half; i++ {
		top[i], bot[i] = b.CondSwap(ctl[0], items[2*i], items[2*i+1])
		ctl = ctl[1:]
	}

	top, ctl = b.permute(ctl, top)
	bot, ctl = b.permute(ctl, bot)

	// Output column: switch i merges top[i], bot[i] into outputs
	// (2i, 2i+1). The first switch is fixed straight-through.
	out := make([]Bus, 0, n)
	out = append(out, top[0], bot[0])
	for i := 1; i < half; i++ {
		x, y := b.CondSwap(ctl[0], top[i], bot[i])
		ctl = ctl[1:]
		out = append(out, x, y)
	}
	return out, ctl
}
