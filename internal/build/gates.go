package build

import (
	"fmt"

	"arm2gc/internal/circuit"
)

// This file holds the gate-level primitives. All construction funnels
// through newGate, which hash-conses on (op, inputs); the public wrappers
// apply the constant/identity/complement folds documented in the package
// comment before any gate is created. The synthesis normal form uses only
// AND, OR, XOR, NOT and the atomic MUX cell: NAND/NOR/XNOR are exposed as
// API but lower to an inverted AND/OR/XOR, which costs the same under
// free-XOR garbling and keeps the fold rules small.

// newGate appends a gate (or returns the existing structurally identical
// one) and returns its output wire.
func (b *Builder) newGate(op circuit.Op, a, bb, s W) W {
	key := gateKey{op: op, a: a, b: bb, s: s}
	switch op {
	case circuit.AND, circuit.OR, circuit.XOR:
		if key.a > key.b {
			key.a, key.b = key.b, key.a
		}
	}
	if w, ok := b.cache[key]; ok {
		return w
	}
	w := b.wire(node{kind: nodeGate, op: op, a: key.a, b: key.b, s: key.s, scope: b.curScope})
	b.cache[key] = w
	return w
}

// isInvOf reports whether wire x is structurally the inverter of wire y.
// With NOT-NOT folding and hash-consing this recognizes every complement
// pair the builder itself can produce.
func (b *Builder) isInvOf(x, y W) bool {
	if x.IsConst() {
		return y.IsConst() && x != y
	}
	n := b.node(x)
	return n.kind == nodeGate && n.op == circuit.NOT && n.a == y
}

func (b *Builder) complementary(x, y W) bool {
	return b.isInvOf(x, y) || b.isInvOf(y, x)
}

// Not returns ¬a (free under free-XOR).
func (b *Builder) Not(a W) W {
	b.checkWire(a)
	switch {
	case a == F:
		return T
	case a == T:
		return F
	}
	if n := b.node(a); n.kind == nodeGate && n.op == circuit.NOT {
		return n.a
	}
	return b.newGate(circuit.NOT, a, a, 0)
}

// And returns a ∧ b (one garbled table when both inputs stay secret).
func (b *Builder) And(a, x W) W {
	b.checkWire(a)
	b.checkWire(x)
	switch {
	case a == F || x == F:
		return F
	case a == T:
		return x
	case x == T:
		return a
	case a == x:
		return a
	case b.complementary(a, x):
		return F
	}
	return b.newGate(circuit.AND, a, x, 0)
}

// Or returns a ∨ b.
func (b *Builder) Or(a, x W) W {
	b.checkWire(a)
	b.checkWire(x)
	switch {
	case a == T || x == T:
		return T
	case a == F:
		return x
	case x == F:
		return a
	case a == x:
		return a
	case b.complementary(a, x):
		return T
	}
	return b.newGate(circuit.OR, a, x, 0)
}

// Xor returns a ⊕ b (free).
func (b *Builder) Xor(a, x W) W {
	b.checkWire(a)
	b.checkWire(x)
	switch {
	case a == F:
		return x
	case x == F:
		return a
	case a == T:
		return b.Not(x)
	case x == T:
		return b.Not(a)
	case a == x:
		return F
	case b.complementary(a, x):
		return T
	}
	return b.newGate(circuit.XOR, a, x, 0)
}

// Nand returns ¬(a ∧ b), synthesized as an inverted AND.
func (b *Builder) Nand(a, x W) W { return b.Not(b.And(a, x)) }

// Nor returns ¬(a ∨ b), synthesized as an inverted OR.
func (b *Builder) Nor(a, x W) W { return b.Not(b.Or(a, x)) }

// Xnor returns ¬(a ⊕ b) (free), synthesized as an inverted XOR.
func (b *Builder) Xnor(a, x W) W { return b.Not(b.Xor(a, x)) }

// Mux returns s ? t : f as an atomic MUX cell (one garbled table; free
// whenever SkipGate resolves the select publicly — the property the
// garbled processor is built on).
func (b *Builder) Mux(s, t, f W) W {
	b.checkWire(s)
	b.checkWire(t)
	b.checkWire(f)
	switch {
	case s == T:
		return t
	case s == F:
		return f
	case t == f:
		return t
	case t == T && f == F:
		return s
	case t == F && f == T:
		return b.Not(s)
	case b.complementary(t, f):
		// out = f ⊕ (s ∧ (f⊕t)) = f ⊕ s: free.
		return b.Xor(s, f)
	case t == T:
		return b.Or(s, f)
	case f == F:
		return b.And(s, t)
	case t == F:
		return b.And(b.Not(s), f)
	case f == T:
		return b.Or(b.Not(s), t)
	}
	// circuit.Gate encodes out = S ? B : A.
	return b.newGate(circuit.MUX, f, t, s)
}

// --- Bus variants (elementwise) ---

func (b *Builder) checkSameWidth(what string, x, y Bus) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("build: %s: %s: width %d vs %d", b.name, what, len(x), len(y)))
	}
}

// NotBus inverts every bit.
func (b *Builder) NotBus(a Bus) Bus {
	out := make(Bus, len(a))
	for i, w := range a {
		out[i] = b.Not(w)
	}
	return out
}

// AndBus is the elementwise AND of two equal-width buses.
func (b *Builder) AndBus(x, y Bus) Bus {
	b.checkSameWidth("AndBus", x, y)
	out := make(Bus, len(x))
	for i := range out {
		out[i] = b.And(x[i], y[i])
	}
	return out
}

// OrBus is the elementwise OR of two equal-width buses.
func (b *Builder) OrBus(x, y Bus) Bus {
	b.checkSameWidth("OrBus", x, y)
	out := make(Bus, len(x))
	for i := range out {
		out[i] = b.Or(x[i], y[i])
	}
	return out
}

// XorBus is the elementwise XOR of two equal-width buses (free).
func (b *Builder) XorBus(x, y Bus) Bus {
	b.checkSameWidth("XorBus", x, y)
	out := make(Bus, len(x))
	for i := range out {
		out[i] = b.Xor(x[i], y[i])
	}
	return out
}

// AndWith ANDs a single wire into every bit of a bus (the partial-product
// row of a multiplier).
func (b *Builder) AndWith(w W, a Bus) Bus {
	out := make(Bus, len(a))
	for i, x := range a {
		out[i] = b.And(w, x)
	}
	return out
}

// MuxBus selects between two equal-width buses: s ? t : f, one MUX cell
// per bit.
func (b *Builder) MuxBus(s W, t, f Bus) Bus {
	b.checkSameWidth("MuxBus", t, f)
	out := make(Bus, len(t))
	for i := range out {
		out[i] = b.Mux(s, t[i], f[i])
	}
	return out
}

// --- Reduction trees ---

// tree reduces ws pairwise with op, balanced to keep depth logarithmic.
func (b *Builder) tree(ws Bus, op func(a, x W) W, empty W) W {
	switch len(ws) {
	case 0:
		return empty
	case 1:
		return ws[0]
	}
	cur := append(Bus(nil), ws...)
	for len(cur) > 1 {
		next := cur[:0]
		for i := 0; i+1 < len(cur); i += 2 {
			next = append(next, op(cur[i], cur[i+1]))
		}
		if len(cur)%2 == 1 {
			next = append(next, cur[len(cur)-1])
		}
		cur = next
	}
	return cur[0]
}

// AndTree ANDs all wires together (T for an empty list).
func (b *Builder) AndTree(ws Bus) W { return b.tree(ws, b.And, T) }

// OrTree ORs all wires together (F for an empty list).
func (b *Builder) OrTree(ws Bus) W { return b.tree(ws, b.Or, F) }

// XorTree XORs all wires together (free; F for an empty list).
func (b *Builder) XorTree(ws Bus) W { return b.tree(ws, b.Xor, F) }
