// Package build is the netlist-builder DSL: every circuit in this
// repository — the hand-built benchmark circuits, the AES/SHA3 cores and
// the garbled ARM processor itself — is constructed through it and frozen
// into an immutable circuit.Circuit by Compile.
//
// The programming model is structural hardware description, not software
// evaluation: a Builder call like b.Add(x, y) does not add numbers, it
// appends full-adder cells to the netlist and returns the wires carrying
// the sum. Values are
//
//   - W: a single wire. The package-level constants T and F are the
//     constant-one and constant-zero wires present in every circuit.
//   - Bus: a little-endian wire vector ([]W; bus[0] is the LSB). Buses are
//     plain slices: slicing, appending and re-wiring them (ShlConst,
//     ShrConst, ZeroExtend, SignExtend, rotations by re-indexing) costs no
//     gates.
//   - *Reg: a bank of flip-flops made with Reg or RegInit, read with Q and
//     driven with SetNext. A register whose next state is its own Q is a
//     ROM; initialization can pull bits from the public/Alice/Bob input
//     vectors (the paper's memory model).
//
// The builder is XOR-aware, mirroring the cost model of half-gates
// garbling with free-XOR: XOR/XNOR/NOT cost nothing, so all composite
// primitives (adders, comparators, multipliers, barrel shifters) are
// synthesized to minimize AND-class gates, and MUX is kept as an atomic
// cell so SkipGate can collapse it under a public select. Two
// normalizations run at construction time:
//
//   - constant folding: gates fed by T/F, by structurally identical
//     wires (x∧x → x), or by a wire and its inverter are replaced by the
//     folded wire — they never reach the netlist;
//   - structural sharing: re-requesting a gate with the same operator and
//     input wires returns the existing output wire (commutative operators
//     are normalized first), so XOR-heavy constructions stay free and no
//     duplicate garbled tables are ever shipped.
//
// Note the builder only folds structural identities. A public *input* is
// not a constant here — deciding what its value makes free is exactly
// SkipGate's runtime job (package core), and the netlist must retain those
// gates for it to classify.
//
// Gates created between b.Scope("name") and the returned close function
// are tagged with the scope name; the instruction-level-pruning baseline
// (package baseline) uses the tags to charge whole processor modules the
// way garbled MIPS does.
//
// Builder methods panic on structural misuse (width mismatches, foreign
// wires, out-of-range arguments): netlist construction is programmer
// error territory, like indexing a slice. Compile validates the finished
// netlist and returns any residual error; MustCompile panics instead.
//
// Everything here is wire-stream-critical: both parties must derive
// byte-identical public circuit state, so code in this package must be
// fully deterministic (no map-order, wall-clock, global-rand, or
// scheduling dependence). The arm2gc-vet determinism analyzer enforces
// this; the next line is its machine-readable annotation.
//
//arm2gc:deterministic
package build

import (
	"fmt"

	"arm2gc/internal/circuit"
)

// W is a wire handle. F and T are the constant wires; all other handles
// are created by a Builder and are only meaningful with that Builder.
type W int32

// Constant wires, shared by every builder.
const (
	F W = 0 // constant zero
	T W = 1 // constant one
)

// Const returns the constant wire for a Boolean value.
func Const(v bool) W {
	if v {
		return T
	}
	return F
}

// IsConst reports whether w is one of the two constant wires.
func (w W) IsConst() bool { return w == F || w == T }

// nodeKind discriminates the builder's wire-producing entities.
type nodeKind uint8

const (
	nodePort nodeKind = iota // primary input bit
	nodeDFF                  // flip-flop Q bit
	nodeGate                 // logic gate output
)

// node is one wire-producing entity. Ports and DFF Q bits are placed
// before all gates in the frozen wire layout regardless of creation
// order; gates keep their creation order, which is topological by
// construction (a gate can only reference wires that already exist).
type node struct {
	kind  nodeKind
	op    circuit.Op // nodeGate
	a, b  W          // nodeGate inputs
	s     W          // nodeGate MUX select
	scope int32      // nodeGate: index into Builder.scopes
}

// gateKey identifies a gate for structural sharing. Commutative operators
// are normalized (a ≤ b) before lookup.
type gateKey struct {
	op      circuit.Op
	a, b, s W
}

// Builder accumulates a netlist under construction. The zero value is not
// usable; create builders with New.
type Builder struct {
	name  string
	nodes []node

	ports   []circuit.Port // Base filled in by Compile
	dffs    []dffSlot
	outputs []circuit.Output // Wires hold builder W values until Compile

	alloc [3]int // allocated input bits per owner (Public, Alice, Bob)

	scopes   []string
	scopeIdx map[string]int32
	curScope int32
	anyScope bool

	cache map[gateKey]W
}

// dffSlot is one flip-flop: its initialization, its D input (a builder
// wire; defaults to its own Q, i.e. hold), and its Q handle.
type dffSlot struct {
	init circuit.Init
	d    W
	q    W
}

// New creates an empty builder for a named circuit.
func New(name string) *Builder {
	return &Builder{
		name:     name,
		scopes:   []string{""},
		scopeIdx: map[string]int32{"": 0},
		cache:    make(map[gateKey]W),
	}
}

// Name returns the circuit name passed to New.
func (b *Builder) Name() string { return b.name }

// wire appends a node and returns its handle.
func (b *Builder) wire(n node) W {
	b.nodes = append(b.nodes, n)
	return W(len(b.nodes) + 1) // handles 0 and 1 are the constants
}

// node returns the node behind a non-constant wire handle.
func (b *Builder) node(w W) *node {
	return &b.nodes[int(w)-2]
}

// checkWire panics when w cannot be a wire of this builder: negative or
// beyond the wires created so far. A handle from another Builder that
// happens to fall in range is NOT detected — wire handles carry no
// ownership tag — so keep each circuit's construction to one Builder.
func (b *Builder) checkWire(w W) {
	if w < 0 || int(w)-2 >= len(b.nodes) {
		panic(fmt.Sprintf("build: %s: wire %d does not belong to this builder", b.name, w))
	}
}

func (b *Builder) checkBus(bus Bus) {
	for _, w := range bus {
		b.checkWire(w)
	}
}

// AllocInputBits reserves n bits in an owner's input bit-vector and
// returns the offset of the first one. The reservation carries no wires:
// it is referenced from flip-flop initializations (circuit.Init), which is
// how the paper loads party inputs into processor memory.
func (b *Builder) AllocInputBits(owner circuit.Owner, n int) int {
	if n < 0 {
		panic(fmt.Sprintf("build: %s: AllocInputBits(%v, %d): negative count", b.name, owner, n))
	}
	if owner > circuit.Bob {
		panic(fmt.Sprintf("build: %s: AllocInputBits: bad owner %d", b.name, owner))
	}
	off := b.alloc[owner]
	b.alloc[owner] += n
	return off
}

// Input declares a named primary-input port of the given width, allocating
// its bits from the owner's input vector, and returns its wires. Port
// wires hold their value for the whole run.
func (b *Builder) Input(owner circuit.Owner, name string, bits int) Bus {
	if bits <= 0 {
		panic(fmt.Sprintf("build: %s: input %q: %d bits", b.name, name, bits))
	}
	off := b.AllocInputBits(owner, bits)
	b.ports = append(b.ports, circuit.Port{Name: name, Owner: owner, Bits: bits, Off: off})
	bus := make(Bus, bits)
	for i := range bus {
		bus[i] = b.wire(node{kind: nodePort})
	}
	return bus
}

// Output declares a named output bus. Names must be unique: the circuit
// lookup (FindOutput) is first-match, so a silent duplicate would shadow
// the later declaration.
func (b *Builder) Output(name string, bus Bus) {
	b.checkBus(bus)
	for _, o := range b.outputs {
		if o.Name == name {
			panic(fmt.Sprintf("build: %s: duplicate output %q", b.name, name))
		}
	}
	ws := make([]circuit.Wire, len(bus))
	for i, w := range bus {
		ws[i] = circuit.Wire(w) // builder handle; remapped by Compile
	}
	b.outputs = append(b.outputs, circuit.Output{Name: name, Wires: ws})
}

// Scope opens a named attribution scope: gates created until the returned
// function is called are tagged with the name. Scopes may nest; the close
// function restores the enclosing scope.
func (b *Builder) Scope(name string) func() {
	idx, ok := b.scopeIdx[name]
	if !ok {
		idx = int32(len(b.scopes))
		b.scopes = append(b.scopes, name)
		b.scopeIdx[name] = idx
	}
	prev := b.curScope
	b.curScope = idx
	b.anyScope = true
	return func() { b.curScope = prev }
}

// Reg creates a register of the given width with all bits initialized to
// zero. Until SetNext is called the register holds its value.
func (b *Builder) Reg(name string, bits int) *Reg {
	if bits <= 0 {
		panic(fmt.Sprintf("build: %s: reg %q: %d bits", b.name, name, bits))
	}
	inits := make([]circuit.Init, bits)
	return b.RegInit(name, inits)
}

// RegInit creates a register with one flip-flop per initialization entry.
// Init kinds InitPublic/InitAlice/InitBob pull the cycle-1 value from the
// corresponding input bit-vector (use AllocInputBits to reserve indices).
func (b *Builder) RegInit(name string, inits []circuit.Init) *Reg {
	if len(inits) == 0 {
		panic(fmt.Sprintf("build: %s: reg %q: empty initialization", b.name, name))
	}
	r := &Reg{b: b, name: name, first: len(b.dffs), bits: len(inits)}
	for _, init := range inits {
		q := b.wire(node{kind: nodeDFF})
		b.dffs = append(b.dffs, dffSlot{init: init, d: q, q: q})
	}
	return r
}

// Reg is a register: a contiguous bank of flip-flops.
type Reg struct {
	b     *Builder
	name  string
	first int // index of the first flip-flop in Builder.dffs
	bits  int
}

// Bits returns the register width.
func (r *Reg) Bits() int { return r.bits }

// Q returns the register's output wires (the flip-flop Q bits).
func (r *Reg) Q() Bus {
	bus := make(Bus, r.bits)
	for i := range bus {
		bus[i] = r.b.dffs[r.first+i].q
	}
	return bus
}

// SetNext drives the register's next-state inputs. The bus width must
// match the register; calling SetNext again replaces the previous wiring.
func (r *Reg) SetNext(d Bus) {
	if len(d) != r.bits {
		panic(fmt.Sprintf("build: %s: reg %q: SetNext width %d, want %d", r.b.name, r.name, len(d), r.bits))
	}
	r.b.checkBus(d)
	for i, w := range d {
		r.b.dffs[r.first+i].d = w
	}
}

// Compile freezes the netlist into a validated circuit.Circuit. The wire
// layout is the one package circuit documents: constants, then port bits
// in declaration order, then flip-flop Q bits in declaration order, then
// gates in creation order (which is topological by construction).
func (b *Builder) Compile() (*circuit.Circuit, error) {
	c := &circuit.Circuit{
		Name:       b.name,
		PortBase:   2,
		PublicBits: b.alloc[circuit.Public],
		AliceBits:  b.alloc[circuit.Alice],
		BobBits:    b.alloc[circuit.Bob],
	}

	// Pass 1: assign final wire indices to every builder node.
	remap := make([]circuit.Wire, len(b.nodes)+2)
	remap[F] = circuit.Const0
	remap[T] = circuit.Const1
	nPorts := 0
	for _, n := range b.nodes {
		if n.kind == nodePort {
			nPorts++
		}
	}
	c.DFFBase = c.PortBase + circuit.Wire(nPorts)
	c.GateBase = c.DFFBase + circuit.Wire(len(b.dffs))
	portW, dffW, gateW := c.PortBase, c.DFFBase, c.GateBase
	for i := range b.nodes {
		switch b.nodes[i].kind {
		case nodePort:
			remap[i+2] = portW
			portW++
		case nodeDFF:
			remap[i+2] = dffW
			dffW++
		case nodeGate:
			remap[i+2] = gateW
			gateW++
		}
	}

	// Pass 2: emit the frozen netlist.
	c.Ports = make([]circuit.Port, len(b.ports))
	base := c.PortBase
	for i, p := range b.ports {
		p.Base = base
		base += circuit.Wire(p.Bits)
		c.Ports[i] = p
	}
	c.DFFs = make([]circuit.DFF, len(b.dffs))
	for i, d := range b.dffs {
		c.DFFs[i] = circuit.DFF{D: remap[d.d], Init: d.init}
	}
	nGates := int(gateW - c.GateBase)
	c.Gates = make([]circuit.Gate, 0, nGates)
	var scopeTags []int32
	if b.anyScope {
		scopeTags = make([]int32, 0, nGates)
	}
	for i := range b.nodes {
		n := &b.nodes[i]
		if n.kind != nodeGate {
			continue
		}
		g := circuit.Gate{Op: n.op, A: remap[n.a], B: remap[n.b]}
		if n.op == circuit.MUX {
			g.S = remap[n.s]
		}
		c.Gates = append(c.Gates, g)
		if b.anyScope {
			scopeTags = append(scopeTags, n.scope)
		}
	}
	if b.anyScope {
		c.GateScope = scopeTags
		c.ScopeNames = append([]string(nil), b.scopes...)
	}
	c.Outputs = make([]circuit.Output, len(b.outputs))
	for i, o := range b.outputs {
		ws := make([]circuit.Wire, len(o.Wires))
		for j, w := range o.Wires {
			ws[j] = remap[w]
		}
		c.Outputs[i] = circuit.Output{Name: o.Name, Wires: ws}
	}

	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("build: %s: %w", b.name, err)
	}
	return c, nil
}

// MustCompile is Compile panicking on error, for circuits whose structure
// is fixed at build time.
func (b *Builder) MustCompile() *circuit.Circuit {
	c, err := b.Compile()
	if err != nil {
		panic(err)
	}
	return c
}

// Stats previews the gate composition of the netlist under construction
// (Compile's circuit reports the same numbers).
func (b *Builder) Stats() circuit.Stats {
	var s circuit.Stats
	s.DFFs = len(b.dffs)
	s.Ports = len(b.ports)
	for i := range b.nodes {
		n := &b.nodes[i]
		if n.kind != nodeGate {
			continue
		}
		s.Gates++
		switch n.op {
		case circuit.AND, circuit.OR, circuit.NAND, circuit.NOR, circuit.MUX:
			s.NonXOR++
		case circuit.XOR, circuit.XNOR:
			s.XOR++
		default:
			s.NotBuf++
		}
	}
	return s
}
