package build

import "fmt"

// Bus is a little-endian wire vector: bus[0] is the least significant
// bit. Buses are ordinary slices; slicing and appending them is free
// rewiring. The combinators in this file create no gates.
type Bus []W

// ConstBus returns an n-bit bus wired to the little-endian bits of v.
func ConstBus(v uint64, n int) Bus {
	bus := make(Bus, n)
	for i := range bus {
		bus[i] = Const(v>>uint(i)&1 == 1)
	}
	return bus
}

// ZeroBus returns an n-bit bus of constant zeros.
func ZeroBus(n int) Bus { return ConstBus(0, n) }

// ZeroExtend widens a bus to n bits with constant zeros.
func ZeroExtend(a Bus, n int) Bus {
	if len(a) > n {
		panic(fmt.Sprintf("build: ZeroExtend: bus of %d bits to %d", len(a), n))
	}
	out := make(Bus, n)
	copy(out, a)
	for i := len(a); i < n; i++ {
		out[i] = F
	}
	return out
}

// SignExtend widens a bus to n bits by replicating its most significant
// bit (free: it is rewiring, not logic).
func SignExtend(a Bus, n int) Bus {
	if len(a) == 0 || len(a) > n {
		panic(fmt.Sprintf("build: SignExtend: bus of %d bits to %d", len(a), n))
	}
	out := make(Bus, n)
	copy(out, a)
	msb := a[len(a)-1]
	for i := len(a); i < n; i++ {
		out[i] = msb
	}
	return out
}

// ShlConst shifts a bus left by a constant amount, keeping the width and
// filling vacated low bits with zero.
func ShlConst(a Bus, k int) Bus {
	if k < 0 {
		panic(fmt.Sprintf("build: ShlConst by %d", k))
	}
	out := make(Bus, len(a))
	for i := range out {
		if i < k {
			out[i] = F
		} else {
			out[i] = a[i-k]
		}
	}
	return out
}

// ShrConst shifts a bus right by a constant amount, keeping the width and
// filling vacated high bits with fill (F for a logical shift, the sign
// wire for an arithmetic one).
func ShrConst(a Bus, k int, fill W) Bus {
	if k < 0 {
		panic(fmt.Sprintf("build: ShrConst by %d", k))
	}
	out := make(Bus, len(a))
	for i := range out {
		if i+k < len(a) {
			out[i] = a[i+k]
		} else {
			out[i] = fill
		}
	}
	return out
}

// RorConst rotates a bus right by a constant amount (free rewiring).
func RorConst(a Bus, k int) Bus {
	n := len(a)
	if n == 0 {
		return Bus{}
	}
	k = ((k % n) + n) % n
	out := make(Bus, n)
	for i := range out {
		out[i] = a[(i+k)%n]
	}
	return out
}
