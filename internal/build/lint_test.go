package build

import (
	"strings"
	"testing"

	"arm2gc/internal/circuit"
)

// rawCircuit hand-assembles a netlist outside the Builder — the only way
// to produce the corruption classes Lint exists to catch, since the
// Builder's fold rules make them unconstructible. One 4-bit Alice port
// (wires 2..5), no DFFs, gate i driving wire 6+i.
func rawCircuit(gates []circuit.Gate, outs []circuit.Wire) *circuit.Circuit {
	return &circuit.Circuit{
		Name:      "raw",
		Ports:     []circuit.Port{{Name: "a", Owner: circuit.Alice, Base: 2, Bits: 4}},
		PortBase:  2,
		DFFBase:   6,
		GateBase:  6,
		AliceBits: 4,
		Gates:     gates,
		Outputs:   []circuit.Output{{Name: "out", Wires: outs}},
	}
}

// codes extracts the issue codes of a report at the given severity.
func codes(r *LintReport, sev Severity) []string {
	var out []string
	for _, i := range r.Issues {
		if i.Severity == sev {
			out = append(out, i.Code)
		}
	}
	return out
}

func hasCode(r *LintReport, sev Severity, code string) bool {
	for _, c := range codes(r, sev) {
		if c == code {
			return true
		}
	}
	return false
}

// TestLintCorruptedNetlists drives every Error class with a minimal
// hand-corrupted netlist.
func TestLintCorruptedNetlists(t *testing.T) {
	w := func(n int) circuit.Wire { return circuit.Wire(n) }
	cases := []struct {
		name  string
		gates []circuit.Gate
		outs  []circuit.Wire
		code  string
	}{
		{
			name:  "dangling-wire",
			gates: []circuit.Gate{{Op: circuit.AND, A: w(99), B: w(2)}},
			outs:  []circuit.Wire{6},
			code:  "validate",
		},
		{
			name:  "non-normal-op",
			gates: []circuit.Gate{{Op: circuit.NAND, A: w(2), B: w(3)}},
			outs:  []circuit.Wire{6},
			code:  "non-normal-op",
		},
		{
			name:  "const-input",
			gates: []circuit.Gate{{Op: circuit.AND, A: circuit.Const1, B: w(2)}},
			outs:  []circuit.Wire{6},
			code:  "const-input",
		},
		{
			name:  "self-input",
			gates: []circuit.Gate{{Op: circuit.OR, A: w(2), B: w(2)}},
			outs:  []circuit.Wire{6},
			code:  "self-input",
		},
		{
			name:  "unnormalized",
			gates: []circuit.Gate{{Op: circuit.XOR, A: w(3), B: w(2)}},
			outs:  []circuit.Wire{6},
			code:  "unnormalized",
		},
		{
			name: "double-not",
			gates: []circuit.Gate{
				{Op: circuit.NOT, A: w(2)},
				{Op: circuit.NOT, A: w(6)},
			},
			outs: []circuit.Wire{7},
			code: "double-not",
		},
		{
			name:  "mux-const-select",
			gates: []circuit.Gate{{Op: circuit.MUX, A: w(2), B: w(3), S: circuit.Const1}},
			outs:  []circuit.Wire{6},
			code:  "foldable-mux",
		},
		{
			name:  "mux-equal-data",
			gates: []circuit.Gate{{Op: circuit.MUX, A: w(2), B: w(2), S: w(3)}},
			outs:  []circuit.Wire{6},
			code:  "foldable-mux",
		},
		{
			name: "mux-complementary-data",
			gates: []circuit.Gate{
				{Op: circuit.NOT, A: w(2)},
				{Op: circuit.MUX, A: w(2), B: w(6), S: w(3)},
			},
			outs: []circuit.Wire{7},
			code: "foldable-mux",
		},
		{
			name: "duplicate-gate",
			gates: []circuit.Gate{
				{Op: circuit.AND, A: w(2), B: w(3)},
				{Op: circuit.AND, A: w(2), B: w(3)},
			},
			outs: []circuit.Wire{6, 7},
			code: "duplicate-gate",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := Lint(rawCircuit(tc.gates, tc.outs), LintOpts{})
			if !hasCode(r, Error, tc.code) {
				t.Fatalf("lint errors = %v, want %q\nreport:\n%s", codes(r, Error), tc.code, r)
			}
			if r.Err() == nil {
				t.Fatal("Err() = nil for a report with errors")
			}
		})
	}
}

// TestLintUnreachableWarning: a dead cone is a Warning (real CPU
// netlists carry fold-orphaned cones), never an Error, and a gate whose
// only consumer is a flip-flop's next state is live.
func TestLintUnreachableWarning(t *testing.T) {
	c := &circuit.Circuit{
		Name:      "dead-cone",
		Ports:     []circuit.Port{{Name: "a", Owner: circuit.Alice, Base: 2, Bits: 4}},
		PortBase:  2,
		DFFBase:   6,
		GateBase:  7,
		AliceBits: 4,
		DFFs:      []circuit.DFF{{D: 7}}, // fed by gate 0: live with no named output
		Gates: []circuit.Gate{
			{Op: circuit.AND, A: 2, B: 3}, // wire 7: feeds the DFF
			{Op: circuit.OR, A: 4, B: 5},  // wire 8: feeds nothing
		},
		Outputs: []circuit.Output{{Name: "out", Wires: []circuit.Wire{6}}},
	}
	r := Lint(c, LintOpts{})
	if got := r.Errors(); got != 0 {
		t.Fatalf("errors = %d, want 0 (dead cones are warnings)\nreport:\n%s", got, r)
	}
	if !hasCode(r, Warning, "unreachable") {
		t.Fatalf("warnings = %v, want unreachable\nreport:\n%s", codes(r, Warning), r)
	}
	found := false
	for _, i := range r.Issues {
		if i.Code == "unreachable" && strings.Contains(i.Msg, "1 of 2 gates") {
			found = true
		}
	}
	if !found {
		t.Fatalf("unreachable message should count 1 of 2 gates:\n%s", r)
	}
}

// TestLintGoldenBuilderCircuit: anything the Builder compiles comes back
// free of Errors, and the cost check passes against its own stats and
// trips against a drifted golden.
func TestLintGoldenBuilderCircuit(t *testing.T) {
	b := New("golden")
	x := b.Input(circuit.Alice, "x", 8)
	y := b.Input(circuit.Bob, "y", 8)
	sum := b.Add(x, y)
	sel := b.Input(circuit.Alice, "sel", 1)
	b.Output("out", b.MuxBus(sel[0], sum, x))
	c := b.MustCompile()

	r := Lint(c, LintOpts{})
	if got := r.Errors(); got != 0 {
		t.Fatalf("builder circuit linted with %d errors:\n%s", got, r)
	}

	nonXOR := c.Stats().NonXOR
	if r := Lint(c, LintOpts{CheckCost: true, ExpectNonXOR: nonXOR}); r.Errors() != 0 {
		t.Fatalf("cost check against own stats failed:\n%s", r)
	}
	r = Lint(c, LintOpts{CheckCost: true, ExpectNonXOR: nonXOR + 1})
	if !hasCode(r, Error, "cost-drift") {
		t.Fatalf("drifted golden not caught: %v", codes(r, Error))
	}
}
