package sim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"arm2gc/internal/circuit"
)

// handCircuit: 2-bit Alice port a, 1-bit public p, one DFF (toggles when
// p), gates covering every operator.
func handCircuit() *circuit.Circuit {
	c := &circuit.Circuit{Name: "hand", PortBase: 2}
	c.Ports = []circuit.Port{
		{Name: "a", Owner: circuit.Alice, Base: 2, Bits: 2},
		{Name: "p", Owner: circuit.Public, Base: 4, Bits: 1},
	}
	c.DFFBase = 5
	c.GateBase = 6
	// q=5; gates: 6=XOR(q,p) 7=AND(a0,a1) 8=NOR(a0,a1) 9=MUX(p;7,8) 10=NOT(9) 11=XNOR(6,10)
	c.Gates = []circuit.Gate{
		{Op: circuit.XOR, A: 5, B: 4},
		{Op: circuit.AND, A: 2, B: 3},
		{Op: circuit.NOR, A: 2, B: 3},
		{Op: circuit.MUX, A: 7, B: 8, S: 4},
		{Op: circuit.NOT, A: 9, B: 9},
		{Op: circuit.XNOR, A: 6, B: 10},
	}
	c.DFFs = []circuit.DFF{{D: 6, Init: circuit.Init{Kind: circuit.InitZero}}}
	c.Outputs = []circuit.Output{{Name: "o", Wires: []circuit.Wire{11, 5}}}
	c.AliceBits = 2
	c.PublicBits = 1
	if err := c.Validate(); err != nil {
		panic(err)
	}
	return c
}

func TestStepSemantics(t *testing.T) {
	c := handCircuit()
	s := New(c, Inputs{Alice: []bool{true, false}, Public: []bool{true}})
	// Cycle 1: q=0, p=1 → g6 = 1; a=10: g7=0, g8=0, g9=mux(1;g8.. wait
	// MUX: out = S ? B : A = p ? NOR : AND = 0; g10 = 1; g11 = XNOR(1,1)=1.
	s.Step()
	if !s.Wire(11) {
		t.Error("cycle 1: out gate should be 1")
	}
	if !s.Wire(5) {
		t.Error("cycle 1: q should have toggled to 1 after the copy")
	}
	// Cycle 2: q=1, p=1 → g6 = 0 → q toggles back to 0.
	s.Step()
	if s.Wire(5) {
		t.Error("cycle 2: q should toggle back to 0")
	}
	if s.Cycle() != 2 {
		t.Errorf("cycle count %d", s.Cycle())
	}
}

func TestOutputAccessors(t *testing.T) {
	c := handCircuit()
	s := New(c, Inputs{Alice: []bool{true, true}, Public: []bool{false}})
	s.Step()
	bits, err := s.Output("o")
	if err != nil || len(bits) != 2 {
		t.Fatalf("Output: %v %v", bits, err)
	}
	if _, err := s.Output("nope"); err == nil {
		t.Error("missing output bus not rejected")
	}
	v, err := s.OutputUint("o")
	if err != nil {
		t.Fatal(err)
	}
	if v > 3 {
		t.Errorf("2-bit output = %d", v)
	}
}

func TestPackUnpackRoundTrip(t *testing.T) {
	f := func(v uint64, n uint8) bool {
		bits := n % 65
		masked := v
		if bits < 64 {
			masked = v & ((1 << bits) - 1)
		}
		return PackUint(UnpackUint(masked, int(bits))) == masked
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWordsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 50; trial++ {
		words := make([]uint32, rng.Intn(20))
		for i := range words {
			words[i] = rng.Uint32()
		}
		back := PackWords(UnpackWords(words))
		for i := range words {
			if back[i] != words[i] {
				t.Fatalf("word %d: %#x != %#x", i, back[i], words[i])
			}
		}
	}
}

func TestInputsBit(t *testing.T) {
	in := Inputs{Alice: []bool{true}, Bob: []bool{false, true}, Public: nil}
	cases := []struct {
		owner circuit.Owner
		idx   int
		want  bool
	}{
		{circuit.Alice, 0, true},
		{circuit.Alice, 1, false}, // out of range → false
		{circuit.Bob, 1, true},
		{circuit.Public, 0, false},
		{circuit.Alice, -1, false},
	}
	for _, tc := range cases {
		if got := in.Bit(tc.owner, tc.idx); got != tc.want {
			t.Errorf("Bit(%v, %d) = %v", tc.owner, tc.idx, got)
		}
	}
}

func TestRunMatchesManualStepping(t *testing.T) {
	c := handCircuit()
	in := Inputs{Alice: []bool{false, true}, Public: []bool{true}}
	out := Run(c, in, 5)
	s := New(c, in)
	for i := 0; i < 5; i++ {
		s.Step()
	}
	manual, _ := s.Output("o")
	for i := range out {
		if out[i] != manual[i] {
			t.Fatalf("Run and manual stepping disagree at bit %d", i)
		}
	}
}
