// Package sim is a cycle-accurate plaintext simulator for circuit.Circuit.
// It is the semantic ground truth against which both garbled engines
// (conventional GC and GC+SkipGate) are verified.
package sim

import (
	"fmt"

	"arm2gc/internal/circuit"
)

// Inputs carries the three input bit-vectors of c = f(a, b, p).
type Inputs struct {
	Public []bool // p, known to both parties
	Alice  []bool // a
	Bob    []bool // b
}

// Bit fetches input bit i of the given owner, defaulting to false when the
// vector is short (unreferenced bits).
func (in *Inputs) Bit(o circuit.Owner, i int) bool {
	var v []bool
	switch o {
	case circuit.Public:
		v = in.Public
	case circuit.Alice:
		v = in.Alice
	case circuit.Bob:
		v = in.Bob
	}
	if i < 0 || i >= len(v) {
		return false
	}
	return v[i]
}

// Sim simulates a circuit over clock cycles.
type Sim struct {
	c    *circuit.Circuit
	vals []bool // current wire values
	next []bool // DFF next-state buffer
	in   Inputs
	cyc  int
}

// New creates a simulator and applies cycle-1 initialization: constants,
// port values, and DFF initial values.
func New(c *circuit.Circuit, in Inputs) *Sim {
	s := &Sim{
		c:    c,
		vals: make([]bool, c.NumWires()),
		next: make([]bool, len(c.DFFs)),
		in:   in,
	}
	s.vals[circuit.Const1] = true
	for _, p := range c.Ports {
		for b := 0; b < p.Bits; b++ {
			s.vals[int(p.Base)+b] = in.Bit(p.Owner, p.Off+b)
		}
	}
	for i, d := range c.DFFs {
		s.vals[c.QWire(i)] = initBit(d.Init, &in)
	}
	return s
}

func initBit(init circuit.Init, in *Inputs) bool {
	switch init.Kind {
	case circuit.InitZero:
		return false
	case circuit.InitOne:
		return true
	case circuit.InitPublic:
		return in.Bit(circuit.Public, init.Idx)
	case circuit.InitAlice:
		return in.Bit(circuit.Alice, init.Idx)
	case circuit.InitBob:
		return in.Bit(circuit.Bob, init.Idx)
	}
	panic(fmt.Sprintf("sim: bad init kind %d", init.Kind))
}

// Cycle returns the number of completed cycles.
func (s *Sim) Cycle() int { return s.cyc }

// Step evaluates one clock cycle: all gates in topological order, then the
// DFF D→Q copy. Wire values remain readable until the next Step.
func (s *Sim) Step() {
	c := s.c
	vals := s.vals
	for i, g := range c.Gates {
		var v bool
		if g.Op == circuit.MUX {
			v = circuit.EvalMux(vals[g.S], vals[g.A], vals[g.B])
		} else if g.Op.IsUnary() {
			v = g.Op.Eval(vals[g.A], false)
		} else {
			v = g.Op.Eval(vals[g.A], vals[g.B])
		}
		vals[int(c.GateBase)+i] = v
	}
	for i, d := range c.DFFs {
		s.next[i] = vals[d.D]
	}
	for i := range c.DFFs {
		vals[c.QWire(i)] = s.next[i]
	}
	s.cyc++
}

// Wire returns the current value of a wire (post-Step: gate outputs are the
// values computed in the last cycle; Q wires hold next cycle's state).
func (s *Sim) Wire(w circuit.Wire) bool { return s.vals[w] }

// Output returns the named output bus value after the most recent Step,
// least significant bit first.
func (s *Sim) Output(name string) ([]bool, error) {
	o := s.c.FindOutput(name)
	if o == nil {
		return nil, fmt.Errorf("sim: no output %q", name)
	}
	bits := make([]bool, len(o.Wires))
	for i, w := range o.Wires {
		bits[i] = s.vals[w]
	}
	return bits, nil
}

// OutputUint interprets the named output as a little-endian unsigned
// integer of up to 64 bits.
func (s *Sim) OutputUint(name string) (uint64, error) {
	bits, err := s.Output(name)
	if err != nil {
		return 0, err
	}
	return PackUint(bits), nil
}

// Run steps the simulator for n cycles and returns all output buses
// flattened, in declaration order.
func Run(c *circuit.Circuit, in Inputs, cycles int) []bool {
	s := New(c, in)
	for i := 0; i < cycles; i++ {
		s.Step()
	}
	var out []bool
	for _, o := range c.Outputs {
		for _, w := range o.Wires {
			out = append(out, s.vals[w])
		}
	}
	return out
}

// PackUint packs up to 64 bits (LSB first) into a uint64.
func PackUint(bits []bool) uint64 {
	var v uint64
	for i, b := range bits {
		if i >= 64 {
			break
		}
		if b {
			v |= 1 << uint(i)
		}
	}
	return v
}

// UnpackUint expands a value into n bits, LSB first.
func UnpackUint(v uint64, n int) []bool {
	bits := make([]bool, n)
	for i := 0; i < n; i++ {
		bits[i] = v&(1<<uint(i)) != 0
	}
	return bits
}

// UnpackWords expands 32-bit words into a bit vector, word 0 first, LSB
// first within each word. This is the layout used for memory images and
// party input vectors throughout the repository.
func UnpackWords(words []uint32) []bool {
	bits := make([]bool, 32*len(words))
	for w, v := range words {
		for i := 0; i < 32; i++ {
			bits[w*32+i] = v&(1<<uint(i)) != 0
		}
	}
	return bits
}

// PackWords packs a bit vector (as produced by UnpackWords) back into
// 32-bit words, padding the tail with zeros.
func PackWords(bits []bool) []uint32 {
	words := make([]uint32, (len(bits)+31)/32)
	for i, b := range bits {
		if b {
			words[i/32] |= 1 << uint(i%32)
		}
	}
	return words
}
