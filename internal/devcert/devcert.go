// Package devcert mints throwaway X.509 material for development and
// tests: a self-signed CA plus server/client leaves chained to it. The
// keys are fresh ECDSA P-256 per call and never leave the process unless
// the caller writes them out — nothing here is suitable for production
// identity, which is exactly the point: `make serve-tls` and the TLS
// tests need certificates that work today and bind to nothing.
package devcert

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"encoding/pem"
	"math/big"
	"net"
	"os"
	"path/filepath"
	"time"
)

// CA is a throwaway certificate authority that can issue leaves.
type CA struct {
	Cert *x509.Certificate
	Key  *ecdsa.PrivateKey
	// DER is the CA certificate in DER form, PEM-encodable via CertPEM.
	DER []byte
}

// Leaf is an issued certificate with its key, ready for tls.Config use.
type Leaf struct {
	DER []byte
	Key *ecdsa.PrivateKey
}

// NewCA mints a self-signed CA valid for 24 hours.
func NewCA(name string) (*CA, error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, err
	}
	tmpl := &x509.Certificate{
		SerialNumber:          big.NewInt(1),
		Subject:               pkix.Name{CommonName: name, Organization: []string{"arm2gc-dev"}},
		NotBefore:             time.Now().Add(-time.Hour),
		NotAfter:              time.Now().Add(24 * time.Hour),
		KeyUsage:              x509.KeyUsageCertSign | x509.KeyUsageDigitalSignature,
		BasicConstraintsValid: true,
		IsCA:                  true,
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, tmpl, &key.PublicKey, key)
	if err != nil {
		return nil, err
	}
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, err
	}
	return &CA{Cert: cert, Key: key, DER: der}, nil
}

// Issue mints a leaf for cn, valid for the loopback addresses plus any
// extra DNS names — enough for local two-party runs and tests.
func (ca *CA) Issue(cn string, serial int64, dnsNames ...string) (*Leaf, error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, err
	}
	tmpl := &x509.Certificate{
		SerialNumber: big.NewInt(serial),
		Subject:      pkix.Name{CommonName: cn, Organization: []string{"arm2gc-dev"}},
		NotBefore:    time.Now().Add(-time.Hour),
		NotAfter:     time.Now().Add(24 * time.Hour),
		KeyUsage:     x509.KeyUsageDigitalSignature,
		ExtKeyUsage:  []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth, x509.ExtKeyUsageClientAuth},
		DNSNames:     append([]string{"localhost"}, dnsNames...),
		IPAddresses:  []net.IP{net.IPv4(127, 0, 0, 1), net.IPv6loopback},
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, ca.Cert, &key.PublicKey, ca.Key)
	if err != nil {
		return nil, err
	}
	return &Leaf{DER: der, Key: key}, nil
}

// Certificate assembles the leaf and its issuing CA into the
// tls.Certificate shape tls.Config wants.
func (l *Leaf) Certificate(ca *CA) tls.Certificate {
	parsed, _ := x509.ParseCertificate(l.DER)
	return tls.Certificate{
		Certificate: [][]byte{l.DER, ca.DER},
		PrivateKey:  l.Key,
		Leaf:        parsed,
	}
}

// Pool returns a cert pool trusting only this CA.
func (ca *CA) Pool() *x509.CertPool {
	pool := x509.NewCertPool()
	pool.AddCert(ca.Cert)
	return pool
}

// CertPEM renders a DER certificate as PEM.
func CertPEM(der []byte) []byte {
	return pem.EncodeToMemory(&pem.Block{Type: "CERTIFICATE", Bytes: der})
}

// KeyPEM renders an ECDSA key as PKCS#8 PEM.
func KeyPEM(key *ecdsa.PrivateKey) ([]byte, error) {
	der, err := x509.MarshalPKCS8PrivateKey(key)
	if err != nil {
		return nil, err
	}
	return pem.EncodeToMemory(&pem.Block{Type: "PRIVATE KEY", Bytes: der}), nil
}

// WriteFiles mints a CA plus a server and a client leaf and writes the
// whole set under dir as PEM files (ca.pem, server.pem, server-key.pem,
// client.pem, client-key.pem) — the layout `make serve-tls` and the CLI
// TLS flags consume. Key files are written 0600.
func WriteFiles(dir string) error {
	ca, err := NewCA("arm2gc dev CA")
	if err != nil {
		return err
	}
	server, err := ca.Issue("arm2gc-dev-server", 2)
	if err != nil {
		return err
	}
	client, err := ca.Issue("arm2gc-dev-client", 3)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	files := []struct {
		name string
		data []byte
		mode os.FileMode
	}{
		{"ca.pem", CertPEM(ca.DER), 0o644},
		{"server.pem", CertPEM(server.DER), 0o644},
		{"client.pem", CertPEM(client.DER), 0o644},
	}
	for _, leaf := range []struct {
		name string
		key  *ecdsa.PrivateKey
	}{{"server-key.pem", server.Key}, {"client-key.pem", client.Key}} {
		p, err := KeyPEM(leaf.key)
		if err != nil {
			return err
		}
		files = append(files, struct {
			name string
			data []byte
			mode os.FileMode
		}{leaf.name, p, 0o600})
	}
	for _, f := range files {
		if err := os.WriteFile(filepath.Join(dir, f.name), f.data, f.mode); err != nil {
			return err
		}
	}
	return nil
}

// ServerConfig assembles a ready-to-serve TLS config from a freshly
// minted CA: server cert chained to it, and — when mutual is set —
// client-certificate verification against the same CA.
func ServerConfig(ca *CA, mutual bool) (*tls.Config, error) {
	leaf, err := ca.Issue("server", 2)
	if err != nil {
		return nil, err
	}
	cfg := &tls.Config{
		Certificates: []tls.Certificate{leaf.Certificate(ca)},
		MinVersion:   tls.VersionTLS13,
	}
	if mutual {
		cfg.ClientAuth = tls.RequireAndVerifyClientCert
		cfg.ClientCAs = ca.Pool()
	}
	return cfg, nil
}

// ClientConfig assembles the matching dialing config; cn != "" adds a
// client certificate under that common name for mutual TLS.
func ClientConfig(ca *CA, cn string) (*tls.Config, error) {
	cfg := &tls.Config{
		RootCAs:    ca.Pool(),
		MinVersion: tls.VersionTLS13,
	}
	if cn != "" {
		leaf, err := ca.Issue(cn, 4)
		if err != nil {
			return nil, err
		}
		cfg.Certificates = []tls.Certificate{leaf.Certificate(ca)}
	}
	return cfg, nil
}
