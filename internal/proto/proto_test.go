package proto

import (
	"context"
	"errors"
	"math/rand"
	"net"
	"testing"
	"time"

	"arm2gc/internal/build"
	"arm2gc/internal/circuit"
	"arm2gc/internal/circuit/circtest"
	"arm2gc/internal/core"
	"arm2gc/internal/sim"
)

// runBoth executes the protocol on both ends of a pipe.
func runBoth(t *testing.T, cfg Config, alice, bob []bool) (*Result, *Result) {
	t.Helper()
	ca, cb := net.Pipe()
	defer ca.Close()
	defer cb.Close()
	type res struct {
		r   *Result
		err error
	}
	ch := make(chan res, 1)
	go func() {
		r, err := RunGarbler(context.Background(), ca, cfg, alice, nil)
		ch <- res{r, err}
	}()
	rb, err := RunEvaluator(context.Background(), cb, cfg, bob)
	if err != nil {
		t.Fatalf("evaluator: %v", err)
	}
	ra := <-ch
	if ra.err != nil {
		t.Fatalf("garbler: %v", ra.err)
	}
	return ra.r, rb
}

func TestProtocolAdder(t *testing.T) {
	b := build.New("adder")
	a := b.Input(circuit.Alice, "a", 32)
	x := b.Input(circuit.Bob, "x", 32)
	b.Output("sum", b.Add(a, x))
	c := b.MustCompile()

	cfg := Config{Circuit: c, Cycles: 1}
	av, bv := uint64(123456789), uint64(987654321)
	ra, rb := runBoth(t, cfg, sim.UnpackUint(av, 32), sim.UnpackUint(bv, 32))
	want := (av + bv) & 0xffffffff
	if got := sim.PackUint(ra.Outputs); got != want {
		t.Errorf("garbler sees %d, want %d", got, want)
	}
	if got := sim.PackUint(rb.Outputs); got != want {
		t.Errorf("evaluator sees %d, want %d", got, want)
	}
	if ra.Stats != rb.Stats {
		t.Errorf("stats diverge: %+v vs %+v", ra.Stats, rb.Stats)
	}
	if ra.Stats.Total.Garbled != 31 {
		t.Errorf("garbled %d tables, want 31", ra.Stats.Total.Garbled)
	}
}

func TestProtocolRandomCircuits(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 10; trial++ {
		c, nA, nB := circtest.Random(rng, 60, 8)
		in := sim.Inputs{
			Alice:  circtest.RandBits(rng, nA),
			Bob:    circtest.RandBits(rng, nB),
			Public: circtest.RandBits(rng, c.PublicBits),
		}
		cycles := 1 + rng.Intn(4)
		// Exercise the frame batching across trials, including batches
		// larger than the cycle count.
		cfg := Config{Circuit: c, Public: in.Public, Cycles: cycles, CycleBatch: 1 + trial%4}
		ra, rb := runBoth(t, cfg, in.Alice, in.Bob)

		want := sim.Run(c, in, cycles)
		// Protocol outputs are resolved (post-copy) like the simulator's.
		for i := range want {
			if ra.Outputs[i] != want[i] || rb.Outputs[i] != want[i] {
				t.Fatalf("trial %d output %d: garbler %v evaluator %v sim %v",
					trial, i, ra.Outputs[i], rb.Outputs[i], want[i])
			}
		}
	}
}

// multiCycleConfig builds a 16-cycle sequential accumulator circuit for
// the batching tests: acc' = acc + (a XOR x) each cycle.
func multiCycleConfig(t *testing.T, batch int) (Config, []bool, []bool) {
	t.Helper()
	b := build.New("accum")
	a := b.Input(circuit.Alice, "a", 16)
	x := b.Input(circuit.Bob, "x", 16)
	acc := b.Reg("acc", 16)
	acc.SetNext(b.Add(acc.Q(), b.XorBus(a, x)))
	b.Output("acc", acc.Q())
	c := b.MustCompile()
	cfg := Config{Circuit: c, Cycles: 16, CycleBatch: batch}
	return cfg, sim.UnpackUint(0x2f1d, 16), sim.UnpackUint(0x1234, 16)
}

func TestCycleBatchReducesFrames(t *testing.T) {
	cfg1, alice, bob := multiCycleConfig(t, 1)
	r1a, r1b := runBoth(t, cfg1, alice, bob)
	cfg8, _, _ := multiCycleConfig(t, 8)
	r8a, r8b := runBoth(t, cfg8, alice, bob)

	// Batching must not change the computation: byte-identical outputs
	// and identical garbled-table accounting.
	for i := range r1a.Outputs {
		if r1a.Outputs[i] != r8a.Outputs[i] || r1b.Outputs[i] != r8b.Outputs[i] {
			t.Fatalf("output %d differs between batch sizes", i)
		}
	}
	if r1a.Stats != r8a.Stats {
		t.Fatalf("stats differ: batch1 %+v batch8 %+v", r1a.Stats, r8a.Stats)
	}

	if r1a.TableFrames != 16 || r1b.TableFrames != 16 {
		t.Fatalf("unbatched frames = %d/%d, want 16", r1a.TableFrames, r1b.TableFrames)
	}
	if r8a.TableFrames != 2 || r8b.TableFrames != 2 {
		t.Fatalf("batch-8 frames = %d/%d, want 2", r8a.TableFrames, r8b.TableFrames)
	}
}

func TestCycleBatchMismatchRejected(t *testing.T) {
	cfg1, alice, bob := multiCycleConfig(t, 1)
	cfg8, _, _ := multiCycleConfig(t, 8)
	ca, cb := net.Pipe()
	errc := make(chan error, 1)
	go func() {
		_, err := RunGarbler(context.Background(), ca, cfg8, alice, nil)
		errc <- err
	}()
	if _, err := RunEvaluator(context.Background(), cb, cfg1, bob); err == nil {
		t.Error("evaluator accepted a mismatched cycle batch")
	}
	ca.Close()
	cb.Close()
	<-errc
}

func TestContextCancelUnblocks(t *testing.T) {
	b := build.New("stall")
	a := b.Input(circuit.Alice, "a", 8)
	b.Output("o", a)
	c := b.MustCompile()
	cfg := Config{Circuit: c, Cycles: 1}

	// The garbler's peer never shows up: without cancellation it would
	// block forever in the hello exchange.
	ca, cb := net.Pipe()
	defer ca.Close()
	defer cb.Close()
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := RunGarbler(ctx, ca, cfg, nil, nil)
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("garbler returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled garbler did not return")
	}

	// Same for an evaluator waiting on a silent garbler.
	ctx2, cancel2 := context.WithCancel(context.Background())
	go func() {
		_, err := RunEvaluator(ctx2, cb, cfg, nil)
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel2()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("evaluator returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled evaluator did not return")
	}
}

func TestStatsSinkStreams(t *testing.T) {
	cfg, alice, bob := multiCycleConfig(t, 4)
	var garbCycles, evalCycles []int
	cfgA, cfgB := cfg, cfg
	cfgA.Sink = func(cyc int, _ core.CycleStats) { garbCycles = append(garbCycles, cyc) }
	cfgB.Sink = func(cyc int, _ core.CycleStats) { evalCycles = append(evalCycles, cyc) }

	ca, cb := net.Pipe()
	defer ca.Close()
	defer cb.Close()
	done := make(chan error, 1)
	go func() {
		_, err := RunGarbler(context.Background(), ca, cfgA, alice, nil)
		done <- err
	}()
	if _, err := RunEvaluator(context.Background(), cb, cfgB, bob); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if len(garbCycles) != 16 || len(evalCycles) != 16 {
		t.Fatalf("sink saw %d/%d cycles, want 16", len(garbCycles), len(evalCycles))
	}
	for i, c := range garbCycles {
		if c != i+1 {
			t.Fatalf("garbler sink cycle %d at index %d", c, i)
		}
	}
}

func TestProtocolOverTCP(t *testing.T) {
	b := build.New("cmp")
	a := b.Input(circuit.Alice, "a", 16)
	x := b.Input(circuit.Bob, "x", 16)
	b.Output("lt", build.Bus{b.LtU(a, x)})
	c := b.MustCompile()
	cfg := Config{Circuit: c, Cycles: 1}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			done <- err
			return
		}
		defer conn.Close()
		r, err := RunGarbler(context.Background(), conn, cfg, sim.UnpackUint(100, 16), nil)
		if err == nil && !r.Outputs[0] {
			t.Error("garbler: 100 < 200 decoded false")
		}
		done <- err
	}()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	rb, err := RunEvaluator(context.Background(), conn, cfg, sim.UnpackUint(200, 16))
	if err != nil {
		t.Fatal(err)
	}
	if !rb.Outputs[0] {
		t.Error("evaluator: 100 < 200 decoded false")
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestSessionMismatch(t *testing.T) {
	b := build.New("m1")
	a := b.Input(circuit.Alice, "a", 4)
	b.Output("o", a)
	c1 := b.MustCompile()
	b2 := build.New("m2")
	x := b2.Input(circuit.Bob, "x", 4)
	b2.Output("o", b2.NotBus(x))
	c2 := b2.MustCompile()

	ca, cb := net.Pipe()
	errc := make(chan error, 1)
	go func() {
		_, err := RunGarbler(context.Background(), ca, Config{Circuit: c1, Cycles: 1}, nil, nil)
		errc <- err
	}()
	if _, err := RunEvaluator(context.Background(), cb, Config{Circuit: c2, Cycles: 1}, nil); err == nil {
		t.Error("evaluator accepted mismatched circuit")
	}
	// The garbler may be blocked waiting for an ack that will never come;
	// closing the pipe unblocks it with an error.
	ca.Close()
	cb.Close()
	if err := <-errc; err == nil {
		t.Error("garbler succeeded against mismatched evaluator")
	}
}

func TestOneSidedOutputs(t *testing.T) {
	b := build.New("onesided")
	a := b.Input(circuit.Alice, "a", 8)
	x := b.Input(circuit.Bob, "x", 8)
	b.Output("sum", b.Add(a, x))
	c := b.MustCompile()

	for _, mode := range []OutputMode{OutputGarblerOnly, OutputEvaluatorOnly} {
		cfg := Config{Circuit: c, Cycles: 1, Outputs: mode}
		ra, rb := runBoth(t, cfg, sim.UnpackUint(33, 8), sim.UnpackUint(9, 8))
		var learner, blind *Result
		if mode == OutputGarblerOnly {
			learner, blind = ra, rb
		} else {
			learner, blind = rb, ra
		}
		if got := sim.PackUint(learner.Outputs); got != 42 {
			t.Errorf("mode %d: learner got %d, want 42", mode, got)
		}
		if blind.Outputs != nil {
			t.Errorf("mode %d: the other party learned outputs %v", mode, blind.Outputs)
		}
	}
}

func TestOutputModeMismatchRejected(t *testing.T) {
	b := build.New("mm")
	a := b.Input(circuit.Alice, "a", 4)
	b.Output("o", a)
	c := b.MustCompile()
	ca, cb := net.Pipe()
	errc := make(chan error, 1)
	go func() {
		_, err := RunGarbler(context.Background(), ca, Config{Circuit: c, Cycles: 1, Outputs: OutputGarblerOnly}, nil, nil)
		errc <- err
	}()
	_, err := RunEvaluator(context.Background(), cb, Config{Circuit: c, Cycles: 1, Outputs: OutputBoth}, nil)
	if err == nil {
		t.Error("evaluator accepted a mismatched output mode")
	}
	ca.Close()
	cb.Close()
	<-errc
}
