package proto

import (
	"math/rand"
	"net"
	"testing"

	"arm2gc/internal/build"
	"arm2gc/internal/circuit"
	"arm2gc/internal/circuit/circtest"
	"arm2gc/internal/sim"
)

// runBoth executes the protocol on both ends of a pipe.
func runBoth(t *testing.T, cfg Config, alice, bob []bool) (*Result, *Result) {
	t.Helper()
	ca, cb := net.Pipe()
	defer ca.Close()
	defer cb.Close()
	type res struct {
		r   *Result
		err error
	}
	ch := make(chan res, 1)
	go func() {
		r, err := RunGarbler(ca, cfg, alice, nil)
		ch <- res{r, err}
	}()
	rb, err := RunEvaluator(cb, cfg, bob)
	if err != nil {
		t.Fatalf("evaluator: %v", err)
	}
	ra := <-ch
	if ra.err != nil {
		t.Fatalf("garbler: %v", ra.err)
	}
	return ra.r, rb
}

func TestProtocolAdder(t *testing.T) {
	b := build.New("adder")
	a := b.Input(circuit.Alice, "a", 32)
	x := b.Input(circuit.Bob, "x", 32)
	b.Output("sum", b.Add(a, x))
	c := b.MustCompile()

	cfg := Config{Circuit: c, Cycles: 1}
	av, bv := uint64(123456789), uint64(987654321)
	ra, rb := runBoth(t, cfg, sim.UnpackUint(av, 32), sim.UnpackUint(bv, 32))
	want := (av + bv) & 0xffffffff
	if got := sim.PackUint(ra.Outputs); got != want {
		t.Errorf("garbler sees %d, want %d", got, want)
	}
	if got := sim.PackUint(rb.Outputs); got != want {
		t.Errorf("evaluator sees %d, want %d", got, want)
	}
	if ra.Stats != rb.Stats {
		t.Errorf("stats diverge: %+v vs %+v", ra.Stats, rb.Stats)
	}
	if ra.Stats.Total.Garbled != 31 {
		t.Errorf("garbled %d tables, want 31", ra.Stats.Total.Garbled)
	}
}

func TestProtocolRandomCircuits(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 10; trial++ {
		c, nA, nB := circtest.Random(rng, 60, 8)
		in := sim.Inputs{
			Alice:  circtest.RandBits(rng, nA),
			Bob:    circtest.RandBits(rng, nB),
			Public: circtest.RandBits(rng, c.PublicBits),
		}
		cycles := 1 + rng.Intn(4)
		cfg := Config{Circuit: c, Public: in.Public, Cycles: cycles}
		ra, rb := runBoth(t, cfg, in.Alice, in.Bob)

		want := sim.Run(c, in, cycles)
		// Protocol outputs are resolved (post-copy) like the simulator's.
		for i := range want {
			if ra.Outputs[i] != want[i] || rb.Outputs[i] != want[i] {
				t.Fatalf("trial %d output %d: garbler %v evaluator %v sim %v",
					trial, i, ra.Outputs[i], rb.Outputs[i], want[i])
			}
		}
	}
}

func TestProtocolOverTCP(t *testing.T) {
	b := build.New("cmp")
	a := b.Input(circuit.Alice, "a", 16)
	x := b.Input(circuit.Bob, "x", 16)
	b.Output("lt", build.Bus{b.LtU(a, x)})
	c := b.MustCompile()
	cfg := Config{Circuit: c, Cycles: 1}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			done <- err
			return
		}
		defer conn.Close()
		r, err := RunGarbler(conn, cfg, sim.UnpackUint(100, 16), nil)
		if err == nil && !r.Outputs[0] {
			t.Error("garbler: 100 < 200 decoded false")
		}
		done <- err
	}()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	rb, err := RunEvaluator(conn, cfg, sim.UnpackUint(200, 16))
	if err != nil {
		t.Fatal(err)
	}
	if !rb.Outputs[0] {
		t.Error("evaluator: 100 < 200 decoded false")
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestSessionMismatch(t *testing.T) {
	b := build.New("m1")
	a := b.Input(circuit.Alice, "a", 4)
	b.Output("o", a)
	c1 := b.MustCompile()
	b2 := build.New("m2")
	x := b2.Input(circuit.Bob, "x", 4)
	b2.Output("o", b2.NotBus(x))
	c2 := b2.MustCompile()

	ca, cb := net.Pipe()
	errc := make(chan error, 1)
	go func() {
		_, err := RunGarbler(ca, Config{Circuit: c1, Cycles: 1}, nil, nil)
		errc <- err
	}()
	if _, err := RunEvaluator(cb, Config{Circuit: c2, Cycles: 1}, nil); err == nil {
		t.Error("evaluator accepted mismatched circuit")
	}
	// The garbler may be blocked waiting for an ack that will never come;
	// closing the pipe unblocks it with an error.
	ca.Close()
	cb.Close()
	if err := <-errc; err == nil {
		t.Error("garbler succeeded against mismatched evaluator")
	}
}

func TestOneSidedOutputs(t *testing.T) {
	b := build.New("onesided")
	a := b.Input(circuit.Alice, "a", 8)
	x := b.Input(circuit.Bob, "x", 8)
	b.Output("sum", b.Add(a, x))
	c := b.MustCompile()

	for _, mode := range []OutputMode{OutputGarblerOnly, OutputEvaluatorOnly} {
		cfg := Config{Circuit: c, Cycles: 1, Outputs: mode}
		ra, rb := runBoth(t, cfg, sim.UnpackUint(33, 8), sim.UnpackUint(9, 8))
		var learner, blind *Result
		if mode == OutputGarblerOnly {
			learner, blind = ra, rb
		} else {
			learner, blind = rb, ra
		}
		if got := sim.PackUint(learner.Outputs); got != 42 {
			t.Errorf("mode %d: learner got %d, want 42", mode, got)
		}
		if blind.Outputs != nil {
			t.Errorf("mode %d: the other party learned outputs %v", mode, blind.Outputs)
		}
	}
}

func TestOutputModeMismatchRejected(t *testing.T) {
	b := build.New("mm")
	a := b.Input(circuit.Alice, "a", 4)
	b.Output("o", a)
	c := b.MustCompile()
	ca, cb := net.Pipe()
	errc := make(chan error, 1)
	go func() {
		_, err := RunGarbler(ca, Config{Circuit: c, Cycles: 1, Outputs: OutputGarblerOnly}, nil, nil)
		errc <- err
	}()
	_, err := RunEvaluator(cb, Config{Circuit: c, Cycles: 1, Outputs: OutputBoth}, nil)
	if err == nil {
		t.Error("evaluator accepted a mismatched output mode")
	}
	ca.Close()
	cb.Close()
	<-errc
}
