package proto

import (
	"bytes"
	"testing"

	"arm2gc/internal/build"
	"arm2gc/internal/circuit"
	"arm2gc/internal/core"
	"arm2gc/internal/sim"
)

// recordTraces runs one classified session with Record set on both roles
// and returns the garbler's and evaluator's compiled traces.
func recordTraces(t *testing.T, cfg Config, alice, bob []bool, seed int64) (trG, trE *core.Trace) {
	t.Helper()
	rec := cfg
	rec.Record = true
	ra, rb, _ := runBothAsym(t, rec, rec, alice, bob, seed)
	if ra.Trace == nil || rb.Trace == nil {
		t.Fatalf("Record set but traces missing (garbler %v, evaluator %v)", ra.Trace, rb.Trace)
	}
	return ra.Trace, rb.Trace
}

// TestTraceReplayByteIdenticalGrid is the tentpole's acceptance grid:
// replayed sessions must put exactly the classified bytes on the wire for
// every workers × pipeline × cycle-batch combination — with the garbler
// replaying against a classifying evaluator (trace reuse is a local knob,
// like Workers and Pipeline) and with both roles replaying.
func TestTraceReplayByteIdenticalGrid(t *testing.T) {
	base, alice, bob := multiCycleConfig(t, 1)
	trG, trE := recordTraces(t, base, alice, bob, 7)

	for _, workers := range []int{1, 2, 8} {
		for _, pipeline := range []int{0, 4} {
			for _, batch := range []int{1, 8} {
				cfg := base
				cfg.CycleBatch = batch

				// Classified reference at this grid point.
				cfgG, cfgE := cfg, cfg
				cfgG.Workers, cfgG.Pipeline = workers, pipeline
				cfgE.Workers = workers
				ra, _, want := runBothAsym(t, cfgG, cfgE, alice, bob, 7)
				if len(want) == 0 {
					t.Fatalf("w%d p%d b%d: no reference frames", workers, pipeline, batch)
				}

				check := func(name string, gotRes *Result, got [][]byte) {
					t.Helper()
					if len(got) != len(want) {
						t.Fatalf("w%d p%d b%d %s: %d frames, classified sent %d", workers, pipeline, batch, name, len(got), len(want))
					}
					for i := range want {
						if !bytes.Equal(want[i], got[i]) {
							t.Fatalf("w%d p%d b%d %s: frame %d differs from classified", workers, pipeline, batch, name, i)
						}
					}
					if gotRes.Stats != ra.Stats {
						t.Fatalf("w%d p%d b%d %s: stats %+v, classified %+v", workers, pipeline, batch, name, gotRes.Stats, ra.Stats)
					}
					for i := range ra.Outputs {
						if gotRes.Outputs[i] != ra.Outputs[i] {
							t.Fatalf("w%d p%d b%d %s: output %d differs", workers, pipeline, batch, name, i)
						}
					}
				}

				// Garbler replays; evaluator classifies.
				gR := cfg
				gR.Trace = trG
				gR.Pipeline = pipeline
				raR, _, got := runBothAsym(t, gR, cfgE, alice, bob, 7)
				check("garbler-replay", raR, got)

				// Both roles replay.
				eR := cfg
				eR.Trace = trE
				raR2, rbR2, got2 := runBothAsym(t, gR, eR, alice, bob, 7)
				check("both-replay", raR2, got2)
				if rbR2.Stats != ra.Stats {
					t.Fatalf("w%d p%d b%d: replaying evaluator stats %+v, classified %+v", workers, pipeline, batch, rbR2.Stats, ra.Stats)
				}
			}
		}
	}
}

// haltingConfig builds an accumulator that raises a public done flag
// after 6 cycles, under a much larger budget — the trace must end at the
// recorded halt and the replayed frame boundaries must land exactly where
// the classified ones do.
func haltingConfig(t *testing.T, batch int) (Config, []bool, []bool) {
	t.Helper()
	b := build.New("haltacc")
	a := b.Input(circuit.Alice, "a", 8)
	x := b.Input(circuit.Bob, "x", 8)
	acc := b.Reg("acc", 8)
	acc.SetNext(b.Add(acc.Q(), b.XorBus(a, x)))
	b.Output("acc", acc.Q())
	cnt := b.Reg("cnt", 4)
	inc, _ := b.Inc(cnt.Q())
	cnt.SetNext(inc)
	done := b.Eq(cnt.Q(), build.ConstBus(5, 4))
	b.Output("done", build.Bus{done})
	c := b.MustCompile()
	cfg := Config{Circuit: c, Cycles: 100, StopOutput: "done", CycleBatch: batch}
	return cfg, sim.UnpackUint(0x5a, 8), sim.UnpackUint(0x21, 8)
}

// TestTraceReplayHalted pins replay across the halt edge for batch sizes
// that do and do not divide the halted cycle count.
func TestTraceReplayHalted(t *testing.T) {
	for _, batch := range []int{1, 4} {
		cfg, alice, bob := haltingConfig(t, batch)
		rec := cfg
		rec.Record = true
		ra, rb, want := runBothAsym(t, rec, rec, alice, bob, 3)
		if !ra.Halted || !rb.Halted {
			t.Fatalf("batch %d: recording run did not halt", batch)
		}
		if ra.Trace.NumCycles() != int(ra.Stats.Cycles) {
			t.Fatalf("batch %d: trace has %d cycles, run executed %d", batch, ra.Trace.NumCycles(), ra.Stats.Cycles)
		}
		if !ra.Trace.Halted() {
			t.Fatalf("batch %d: trace does not record the halt", batch)
		}

		gR, eR := cfg, cfg
		gR.Trace, eR.Trace = ra.Trace, rb.Trace
		raR, rbR, got := runBothAsym(t, gR, eR, alice, bob, 3)
		if !raR.Halted || !rbR.Halted {
			t.Fatalf("batch %d: replay did not halt", batch)
		}
		if len(got) != len(want) {
			t.Fatalf("batch %d: replay sent %d frames, classified %d", batch, len(got), len(want))
		}
		for i := range want {
			if !bytes.Equal(want[i], got[i]) {
				t.Fatalf("batch %d: frame %d differs under replay", batch, i)
			}
		}
		for i := range ra.Outputs {
			if raR.Outputs[i] != ra.Outputs[i] || rbR.Outputs[i] != rb.Outputs[i] {
				t.Fatalf("batch %d: output %d differs under replay", batch, i)
			}
		}
		if raR.Stats != ra.Stats || rbR.Stats != rb.Stats {
			t.Fatalf("batch %d: replay stats differ", batch)
		}
	}
}
