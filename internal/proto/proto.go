// Package proto runs the ARM2GC protocol between two parties over a byte
// stream (TCP in the cmd tools, net.Pipe in tests): circuit/parameter
// agreement, direct transfer of the garbler's input labels, IKNP oblivious
// transfer for the evaluator's labels, per-cycle garbled-table streaming
// with SkipGate on both sides, and two-way output decoding.
//
// Both parties independently run the shared SkipGate scheduler from the
// same public data, so no classification information is ever exchanged —
// only garbled tables and labels cross the wire, exactly as in the paper.
package proto

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"

	"arm2gc/internal/circuit"
	"arm2gc/internal/core"
	"arm2gc/internal/gc"
	"arm2gc/internal/ot"
)

// OutputMode selects who learns the outputs (the paper's "one or both of
// them learn the output c").
type OutputMode uint8

// Output modes.
const (
	OutputBoth OutputMode = iota
	OutputGarblerOnly
	OutputEvaluatorOnly
)

// Config fixes the public parameters both parties must agree on.
type Config struct {
	Circuit *circuit.Circuit
	Public  []bool // the public input p (e.g. the program binary)
	Cycles  int    // maximum clock cycles

	// StopOutput optionally names the public halt flag output.
	StopOutput string

	// Outputs selects who learns the result (default: both).
	Outputs OutputMode
}

// sessionID digests everything public; a mismatch aborts the handshake.
func (c Config) sessionID() ([32]byte, error) {
	if c.Circuit == nil || c.Cycles <= 0 {
		return [32]byte{}, fmt.Errorf("proto: incomplete config")
	}
	h := sha256.New()
	ch := c.Circuit.Hash()
	h.Write(ch[:])
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(c.Cycles))
	h.Write(buf[:])
	h.Write([]byte{byte(c.Outputs)})
	h.Write([]byte(c.StopOutput))
	packed := packBits(c.Public)
	h.Write(packed)
	var out [32]byte
	h.Sum(out[:0])
	return out, nil
}

// Message types.
const (
	msgHello byte = iota + 1
	msgAliceLabels
	msgTables
	msgDecode
	msgOutputs
)

func writeFrame(w io.Writer, typ byte, payload []byte) error {
	var hdr [5]byte
	hdr[0] = typ
	binary.LittleEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

func readFrame(r io.Reader, wantType byte) ([]byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	if hdr[0] != wantType {
		return nil, fmt.Errorf("proto: got message type %d, want %d", hdr[0], wantType)
	}
	n := binary.LittleEndian.Uint32(hdr[1:])
	if n > 1<<30 {
		return nil, fmt.Errorf("proto: frame of %d bytes refused", n)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return nil, err
	}
	return b, nil
}

func packBits(bits []bool) []byte {
	out := make([]byte, (len(bits)+7)/8)
	for i, b := range bits {
		if b {
			out[i/8] |= 1 << uint(i%8)
		}
	}
	return out
}

func unpackBits(b []byte, n int) []bool {
	bits := make([]bool, n)
	for i := range bits {
		bits[i] = b[i/8]&(1<<uint(i%8)) != 0
	}
	return bits
}

func packLabels(ls []gc.Label) []byte {
	out := make([]byte, 0, 16*len(ls))
	for _, l := range ls {
		b := l.Bytes()
		out = append(out, b[:]...)
	}
	return out
}

func unpackLabels(b []byte) []gc.Label {
	ls := make([]gc.Label, len(b)/16)
	for i := range ls {
		ls[i] = gc.LabelFromBytes(b[16*i:])
	}
	return ls
}

// Result reports a protocol run.
type Result struct {
	Outputs []bool // all output buses flattened (resolved, final cycle)
	Stats   core.Stats
	Halted  bool
}

// RunGarbler plays Alice.
func RunGarbler(conn io.ReadWriter, cfg Config, aliceInput []bool, rnd io.Reader) (*Result, error) {
	sid, err := cfg.sessionID()
	if err != nil {
		return nil, err
	}
	if rnd == nil {
		rnd = gc.CryptoRand
	}
	// Hello: session id + fingerprint seed (public, garbler-chosen).
	var seed core.Seed
	if _, err := io.ReadFull(rnd, seed[:]); err != nil {
		return nil, err
	}
	if err := writeFrame(conn, msgHello, append(sid[:], seed[:]...)); err != nil {
		return nil, err
	}
	ack, err := readFrame(conn, msgHello)
	if err != nil {
		return nil, err
	}
	if !bytes.Equal(ack, sid[:]) {
		return nil, fmt.Errorf("proto: evaluator session mismatch")
	}

	s := core.NewScheduler(cfg.Circuit, seed, cfg.Public)
	g := core.NewGarbler(s, rnd)
	if err := writeFrame(conn, msgAliceLabels, packLabels(g.AliceActiveLabels(aliceInput))); err != nil {
		return nil, err
	}
	if err := ot.SendLabels(conn, g.BobPairs()); err != nil {
		return nil, fmt.Errorf("proto: OT: %w", err)
	}

	res := &Result{}
	run := newRun(cfg)
	var tables []gc.Table
	for cyc := 1; cyc <= cfg.Cycles; cyc++ {
		final := cyc == cfg.Cycles
		cs := s.Classify(final)
		res.Stats.Total.Add(cs)
		res.Stats.Cycles++
		tables = g.GarbleCycle(tables[:0])
		payload := make([]byte, 0, len(tables)*gc.TableBytes)
		for _, t := range tables {
			tg, te := t.TG.Bytes(), t.TE.Bytes()
			payload = append(payload, tg[:]...)
			payload = append(payload, te[:]...)
		}
		if err := writeFrame(conn, msgTables, payload); err != nil {
			return nil, err
		}
		if run.stopped(s) {
			res.Halted = true
			break
		}
		g.CopyDFFs()
		s.Commit()
	}

	switch cfg.Outputs {
	case OutputEvaluatorOnly:
		// Send decode bits; learn nothing back.
		if err := writeFrame(conn, msgDecode, packBits(run.decodeBits(s, g))); err != nil {
			return nil, err
		}
	case OutputGarblerOnly:
		// Receive the evaluator's permute bits and decode locally; the
		// evaluator never sees the decode bits.
		perm, err := readFrame(conn, msgOutputs)
		if err != nil {
			return nil, err
		}
		bits := unpackBits(perm, len(run.outWires))
		out := make([]bool, len(run.outWires))
		for i, w := range run.outWires {
			if v, pub := s.WireState(w); pub {
				out[i] = v
			} else {
				out[i] = bits[i] != g.DecodeBit(w)
			}
		}
		res.Outputs = out
	default:
		// Both learn: send decode bits, receive final values.
		if err := writeFrame(conn, msgDecode, packBits(run.decodeBits(s, g))); err != nil {
			return nil, err
		}
		vals, err := readFrame(conn, msgOutputs)
		if err != nil {
			return nil, err
		}
		res.Outputs = unpackBits(vals, len(run.outWires))
	}
	return res, nil
}

// RunEvaluator plays Bob.
func RunEvaluator(conn io.ReadWriter, cfg Config, bobInput []bool) (*Result, error) {
	sid, err := cfg.sessionID()
	if err != nil {
		return nil, err
	}
	hello, err := readFrame(conn, msgHello)
	if err != nil {
		return nil, err
	}
	if len(hello) != 32+16 || !bytes.Equal(hello[:32], sid[:]) {
		return nil, fmt.Errorf("proto: garbler session mismatch")
	}
	var seed core.Seed
	copy(seed[:], hello[32:])
	if err := writeFrame(conn, msgHello, sid[:]); err != nil {
		return nil, err
	}

	s := core.NewScheduler(cfg.Circuit, seed, cfg.Public)
	e := core.NewEvaluator(s)
	aliceBytes, err := readFrame(conn, msgAliceLabels)
	if err != nil {
		return nil, err
	}
	choices := make([]bool, cfg.Circuit.BobBits)
	for i := range choices {
		choices[i] = i < len(bobInput) && bobInput[i]
	}
	bobLabels, err := ot.ReceiveLabels(conn, choices)
	if err != nil {
		return nil, fmt.Errorf("proto: OT: %w", err)
	}
	if err := e.SetInputs(unpackLabels(aliceBytes), bobLabels); err != nil {
		return nil, err
	}

	res := &Result{}
	run := newRun(cfg)
	for cyc := 1; cyc <= cfg.Cycles; cyc++ {
		final := cyc == cfg.Cycles
		cs := s.Classify(final)
		res.Stats.Total.Add(cs)
		res.Stats.Cycles++
		payload, err := readFrame(conn, msgTables)
		if err != nil {
			return nil, err
		}
		tables := make([]gc.Table, len(payload)/gc.TableBytes)
		for i := range tables {
			tables[i].TG = gc.LabelFromBytes(payload[i*gc.TableBytes:])
			tables[i].TE = gc.LabelFromBytes(payload[i*gc.TableBytes+16:])
		}
		rest, err := e.EvalCycle(tables)
		if err != nil {
			return nil, err
		}
		if len(rest) != 0 {
			return nil, fmt.Errorf("proto: cycle %d: %d unconsumed tables", cyc, len(rest))
		}
		if run.stopped(s) {
			res.Halted = true
			break
		}
		e.CopyDFFs()
		s.Commit()
	}

	switch cfg.Outputs {
	case OutputGarblerOnly:
		// Send only the active labels' permute bits; without the decode
		// bits they reveal nothing to us and everything to the garbler.
		perm := make([]bool, len(run.outWires))
		for i, w := range run.outWires {
			if _, pub := s.WireState(w); !pub {
				perm[i] = e.ActiveBit(w)
			}
		}
		if err := writeFrame(conn, msgOutputs, packBits(perm)); err != nil {
			return nil, err
		}
	default:
		decBytes, err := readFrame(conn, msgDecode)
		if err != nil {
			return nil, err
		}
		decode := unpackBits(decBytes, len(run.outWires))
		out := make([]bool, len(run.outWires))
		for i, w := range run.outWires {
			if v, pub := s.WireState(w); pub {
				out[i] = v
			} else {
				out[i] = e.ActiveBit(w) != decode[i]
			}
		}
		if cfg.Outputs == OutputBoth {
			if err := writeFrame(conn, msgOutputs, packBits(out)); err != nil {
				return nil, err
			}
		}
		res.Outputs = out
	}
	return res, nil
}

// runState holds per-run derived data shared by both roles.
type runState struct {
	outWires []circuit.Wire
	stopWire circuit.Wire
}

func newRun(cfg Config) *runState {
	r := &runState{stopWire: -1}
	for _, w := range cfg.Circuit.OutputWires() {
		r.outWires = append(r.outWires, cfg.Circuit.ResolveOutput(w))
	}
	if cfg.StopOutput != "" {
		if o := cfg.Circuit.FindOutput(cfg.StopOutput); o != nil {
			r.stopWire = cfg.Circuit.ResolveOutput(o.Wires[0])
		}
	}
	return r
}

// decodeBits collects the garbler's point-and-permute bits for the secret
// outputs.
func (r *runState) decodeBits(s *core.Scheduler, g *core.Garbler) []bool {
	decode := make([]bool, len(r.outWires))
	for i, w := range r.outWires {
		if _, pub := s.WireState(w); !pub {
			decode[i] = g.DecodeBit(w)
		}
	}
	return decode
}

// stopped checks the public halt flag after a cycle's classification.
func (r *runState) stopped(s *core.Scheduler) bool {
	if r.stopWire < 0 {
		return false
	}
	v, pub := s.WireState(r.stopWire)
	return pub && v
}
