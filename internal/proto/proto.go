// Package proto runs the ARM2GC protocol between two parties over a byte
// stream (TCP in the cmd tools, net.Pipe in tests): circuit/parameter
// agreement, direct transfer of the garbler's input labels, IKNP oblivious
// transfer for the evaluator's labels, garbled-table streaming (batched
// over CycleBatch cycles per frame) with SkipGate on both sides, and
// two-way output decoding.
//
// Both parties independently run the shared SkipGate scheduler from the
// same public data, so no classification information is ever exchanged —
// only garbled tables and labels cross the wire, exactly as in the paper.
//
// Both entry points take a context.Context: cancellation aborts the run
// between cycles, and — when the connection supports deadlines (net.Conn,
// net.Pipe) — unblocks any in-flight frame read or write, so a hung peer
// cannot wedge the caller.
//
// Everything here is wire-stream-critical: both parties must derive
// byte-identical public circuit state, so code in this package must be
// fully deterministic (no map-order, wall-clock, global-rand, or
// scheduling dependence). The arm2gc-vet determinism analyzer enforces
// this; the next line is its machine-readable annotation.
//
//arm2gc:deterministic
package proto

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"time"

	"arm2gc/internal/circuit"
	"arm2gc/internal/core"
	"arm2gc/internal/gc"
	"arm2gc/internal/ot"
)

// OutputMode selects who learns the outputs (the paper's "one or both of
// them learn the output c").
type OutputMode uint8

// Output modes.
const (
	OutputBoth OutputMode = iota
	OutputGarblerOnly
	OutputEvaluatorOnly
)

// Config fixes the public parameters both parties must agree on.
type Config struct {
	Circuit *circuit.Circuit
	Public  []bool // the public input p (e.g. the program binary)
	Cycles  int    // maximum clock cycles

	// StopOutput optionally names the public halt flag output.
	StopOutput string

	// Outputs selects who learns the result (default: both).
	Outputs OutputMode

	// CycleBatch is how many cycles of garbled tables share one msgTables
	// frame (default 1: a frame per cycle). Batching cuts the frame count
	// — and, over a real network, the syscall and round-trip overhead —
	// by the batch factor without changing a single table byte. Both
	// parties must agree; it is part of the session id.
	CycleBatch int

	// Pipeline, when positive, makes the garbler run its cycle loop in a
	// producer goroutine that garbles up to Pipeline frames ahead of the
	// network writer, overlapping table generation with frame I/O. The
	// stream is byte-identical to the serial path (Pipeline == 0), and
	// the knob is garbler-local — it is not part of the session id, so
	// the two parties need not agree on it. The evaluator ignores it.
	Pipeline int

	// Workers, when > 1, spreads each cycle's SkipGate classification and
	// label work across that many goroutines (core.Scheduler.SetWorkers).
	// The schedule and every wire byte are identical for any value, so —
	// like Pipeline — it is not part of the session id; each side applies
	// its own count. The negotiation layer still carries it (Proposal/
	// Grant) so a client can ask a server for parallel garbling within
	// the server's registered ceiling.
	Workers int

	// Sink, when set, receives every cycle's scheduling outcome as it is
	// classified, on both roles.
	Sink func(cycle int, cs core.CycleStats)

	// Trace, when set, replays a recorded classification schedule instead
	// of running the SkipGate scheduler: the role walks the compiled gate
	// list, collapsing its hot path to fixed-key-AES label work. The trace
	// must come from the same (circuit, public input, cycle budget, halt
	// flag) tuple — see core.Trace. The wire stream is byte-identical to a
	// classified run's, so the knob is local like Workers and Pipeline: it
	// is not part of the session id, and a replaying role interoperates
	// with a classifying peer.
	Trace *core.Trace

	// Record, when set, compiles this run's classification schedule into
	// Result.Trace for later replay. Mutually exclusive with Trace.
	Record bool

	// ReadAhead, when positive, makes the evaluator pull up to that many
	// frames off the connection in a reader goroutine ahead of its cycle
	// loop (typed frame peeking: table frames are buffered, and the first
	// non-table frame parks in the buffer for the post-halt decode read).
	// It keeps a slow evaluator's socket drained against a garbler that
	// streams faster than labels evaluate — a pool-fed garbler always
	// does. The knob is evaluator-local (not part of the session id); the
	// garbling side ignores it. It needs a deadline-capable connection
	// (every net.Conn) and — when classifying in OutputGarblerOnly mode,
	// where no garbler frame trails the table stream — it silently stays
	// synchronous.
	ReadAhead int

	// tapTables is a test hook: the evaluator calls it with every raw
	// msgTables payload it receives, in arrival order.
	tapTables func(payload []byte)
}

// batch returns the normalized frame batch size.
func (c Config) batch() int {
	if c.CycleBatch < 1 {
		return 1
	}
	return c.CycleBatch
}

// SessionID digests everything public both parties must agree on: circuit
// hash, cycle budget, cycle batch, output mode, halt flag name and the
// packed public input. A mismatch aborts the handshake; the negotiation
// layer echoes it in the Grant so a Client can verify program agreement
// before the run starts. Every variable-length field is length-prefixed,
// so distinct (StopOutput, Public) pairs can never digest to the same id.
func (c Config) SessionID() ([32]byte, error) {
	if c.Circuit == nil || c.Cycles <= 0 {
		return [32]byte{}, fmt.Errorf("proto: incomplete config")
	}
	h := sha256.New()
	ch := c.Circuit.Hash()
	h.Write(ch[:])
	var buf [8]byte
	putU64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	putU64(uint64(c.Cycles))
	putU64(uint64(c.batch()))
	h.Write([]byte{byte(c.Outputs)})
	putU64(uint64(len(c.StopOutput)))
	h.Write([]byte(c.StopOutput))
	putU64(uint64(len(c.Public)))
	h.Write(packBits(c.Public))
	var out [32]byte
	h.Sum(out[:0])
	return out, nil
}

// Message types.
const (
	msgHello byte = iota + 1
	msgAliceLabels
	msgTables
	msgDecode
	msgOutputs
)

func writeFrame(w io.Writer, typ byte, payload []byte) error {
	var hdr [5]byte
	hdr[0] = typ
	binary.LittleEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) == 0 {
		// Skip the zero-byte write: readFrame's ReadFull never issues the
		// matching zero-byte read, and a 0-byte net.Pipe write blocks
		// until *some* read arrives — a deadlock when the peer's next
		// operation is itself a write (e.g. an empty final table frame in
		// garbler-only output mode).
		return nil
	}
	_, err := w.Write(payload)
	return err
}

func readFrame(r io.Reader, wantType byte) ([]byte, error) {
	typ, b, err := readAnyFrame(r)
	if err != nil {
		return nil, err
	}
	if typ != wantType {
		return nil, typeMismatch(typ, wantType)
	}
	return b, nil
}

func typeMismatch(got, want byte) error {
	return fmt.Errorf("proto: got message type %d, want %d", got, want)
}

// readAnyFrame reads the next frame whatever its type; the negotiation
// layer uses it where either a grant or a rejection may arrive.
func readAnyFrame(r io.Reader) (byte, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[1:])
	if n > 1<<30 {
		return 0, nil, fmt.Errorf("proto: frame of %d bytes refused", n)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return 0, nil, err
	}
	return hdr[0], b, nil
}

func packBits(bits []bool) []byte {
	out := make([]byte, (len(bits)+7)/8)
	for i, b := range bits {
		if b {
			out[i/8] |= 1 << uint(i%8)
		}
	}
	return out
}

func unpackBits(b []byte, n int) []bool {
	bits := make([]bool, n)
	for i := range bits {
		bits[i] = b[i/8]&(1<<uint(i%8)) != 0
	}
	return bits
}

func packLabels(ls []gc.Label) []byte {
	out := make([]byte, 0, 16*len(ls))
	for _, l := range ls {
		b := l.Bytes()
		out = append(out, b[:]...)
	}
	return out
}

func unpackLabels(b []byte) []gc.Label {
	ls := make([]gc.Label, len(b)/16)
	for i := range ls {
		ls[i] = gc.LabelFromBytes(b[16*i:])
	}
	return ls
}

// deadliner is the subset of net.Conn the context watcher needs; net.Pipe
// and every real network connection implement it.
type deadliner interface {
	SetDeadline(t time.Time) error
}

// watchContext arms an abort path for blocking conn I/O: when ctx is
// cancelled, every pending and future read/write on conn fails
// immediately via an already-expired deadline. The returned stop function
// releases the watcher.
func watchContext(ctx context.Context, conn io.ReadWriter) (stop func()) {
	d, ok := conn.(deadliner)
	if !ok || ctx.Done() == nil {
		return func() {}
	}
	stopped := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		select {
		case <-ctx.Done():
			// Best-effort poke: expire pending I/O so the blocked read
			// observes the cancellation. If the conn refuses deadlines
			// the read simply finishes on its own terms.
			_ = d.SetDeadline(time.Unix(1, 0))
		case <-stopped:
		}
	}()
	return func() {
		close(stopped)
		<-done
	}
}

// abortErr prefers the context's verdict over the I/O error it provoked,
// so callers see ctx.Err() (wrapped) when a run was cancelled.
func abortErr(ctx context.Context, err error) error {
	if err == nil {
		return nil
	}
	if cerr := ctx.Err(); cerr != nil {
		return fmt.Errorf("proto: run aborted: %w", cerr)
	}
	return err
}

// Result reports a protocol run.
type Result struct {
	Outputs []bool // all output buses flattened (resolved, final cycle)
	Stats   core.Stats
	Halted  bool

	// TableFrames is the number of msgTables frames that crossed the
	// wire; with CycleBatch > 1 it is ~Cycles/CycleBatch.
	TableFrames int

	// Trace is the recorded classification schedule when Config.Record
	// was set and the run completed.
	Trace *core.Trace
}

// RunGarbler plays Alice.
func RunGarbler(ctx context.Context, conn io.ReadWriter, cfg Config, aliceInput []bool, rnd io.Reader) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	stop := watchContext(ctx, conn)
	defer stop()
	res, err := runGarbler(ctx, conn, cfg, aliceInput, rnd)
	return res, abortErr(ctx, err)
}

func runGarbler(ctx context.Context, conn io.ReadWriter, cfg Config, aliceInput []bool, rnd io.Reader) (*Result, error) {
	sid, err := cfg.SessionID()
	if err != nil {
		return nil, err
	}
	if rnd == nil {
		rnd = gc.CryptoRand
	}
	// Hello: session id + fingerprint seed (public, garbler-chosen).
	var seed core.Seed
	if _, err := io.ReadFull(rnd, seed[:]); err != nil {
		return nil, err
	}
	if err := writeFrame(conn, msgHello, append(sid[:], seed[:]...)); err != nil {
		return nil, err
	}
	ack, err := readFrame(conn, msgHello)
	if err != nil {
		return nil, err
	}
	if !bytes.Equal(ack, sid[:]) {
		return nil, fmt.Errorf("proto: evaluator session mismatch")
	}

	// The replaying garbler draws its seed and labels from rnd in exactly
	// the classified order, so given the same randomness the two paths put
	// the same bytes on the wire from the hello frame onward. The seed
	// still matters to a classifying peer; replay itself never uses it.
	var s *core.Scheduler
	var rec *core.TraceRecorder
	var g *core.Garbler
	if cfg.Trace != nil {
		if cfg.Record {
			return nil, fmt.Errorf("proto: Record with Trace: a replayed run has no scheduler to record")
		}
		if err := cfg.Trace.Validate(cfg.Cycles); err != nil {
			return nil, err
		}
		g = core.NewReplayGarbler(cfg.Circuit, rnd)
	} else {
		s = core.NewScheduler(cfg.Circuit, seed, cfg.Public)
		if err := s.SetWorkers(cfg.Workers); err != nil {
			return nil, err
		}
		g = core.NewGarbler(s, rnd)
		if cfg.Record {
			rec = core.NewTraceRecorder(s)
		}
	}
	if err := writeFrame(conn, msgAliceLabels, packLabels(g.AliceActiveLabels(aliceInput))); err != nil {
		return nil, err
	}
	if err := ot.SendLabels(conn, g.BobPairs()); err != nil {
		return nil, fmt.Errorf("proto: OT: %w", err)
	}

	res := &Result{}
	run := newRun(cfg)
	if err := garbleStream(ctx, conn, cfg, s, g, run, res, rec); err != nil {
		return nil, err
	}
	if rec != nil {
		res.Trace = rec.Finish(res.Halted)
	}

	// state reads output bit i's final public/secret verdict — from the
	// scheduler, or from the trace in replay (the trace records the same
	// resolved wires newRun derives).
	state := func(i int) (bool, bool) {
		if cfg.Trace != nil {
			return cfg.Trace.OutputState(i)
		}
		return s.WireState(run.outWires[i])
	}
	decodeBits := func() []bool {
		d := make([]bool, len(run.outWires))
		for i, w := range run.outWires {
			if _, pub := state(i); !pub {
				d[i] = g.DecodeBit(w)
			}
		}
		return d
	}

	switch cfg.Outputs {
	case OutputEvaluatorOnly:
		// Send decode bits; learn nothing back.
		if err := writeFrame(conn, msgDecode, packBits(decodeBits())); err != nil {
			return nil, err
		}
	case OutputGarblerOnly:
		// Receive the evaluator's permute bits and decode locally; the
		// evaluator never sees the decode bits.
		perm, err := readFrame(conn, msgOutputs)
		if err != nil {
			return nil, err
		}
		bits := unpackBits(perm, len(run.outWires))
		out := make([]bool, len(run.outWires))
		for i, w := range run.outWires {
			if v, pub := state(i); pub {
				out[i] = v
			} else {
				out[i] = bits[i] != g.DecodeBit(w)
			}
		}
		res.Outputs = out
	default:
		// Both learn: send decode bits, receive final values.
		if err := writeFrame(conn, msgDecode, packBits(decodeBits())); err != nil {
			return nil, err
		}
		vals, err := readFrame(conn, msgOutputs)
		if err != nil {
			return nil, err
		}
		res.Outputs = unpackBits(vals, len(run.outWires))
	}
	return res, nil
}

// RunEvaluator plays Bob.
func RunEvaluator(ctx context.Context, conn io.ReadWriter, cfg Config, bobInput []bool) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	stop := watchContext(ctx, conn)
	defer stop()
	res, err := runEvaluator(ctx, conn, cfg, bobInput)
	return res, abortErr(ctx, err)
}

func runEvaluator(ctx context.Context, conn io.ReadWriter, cfg Config, bobInput []bool) (*Result, error) {
	sid, err := cfg.SessionID()
	if err != nil {
		return nil, err
	}
	hello, err := readFrame(conn, msgHello)
	if err != nil {
		return nil, err
	}
	if len(hello) != 32+16 || !bytes.Equal(hello[:32], sid[:]) {
		return nil, fmt.Errorf("proto: garbler session mismatch")
	}
	var seed core.Seed
	copy(seed[:], hello[32:])
	if err := writeFrame(conn, msgHello, sid[:]); err != nil {
		return nil, err
	}

	var s *core.Scheduler
	var rec *core.TraceRecorder
	var e *core.Evaluator
	if cfg.Trace != nil {
		if cfg.Record {
			return nil, fmt.Errorf("proto: Record with Trace: a replayed run has no scheduler to record")
		}
		if err := cfg.Trace.Validate(cfg.Cycles); err != nil {
			return nil, err
		}
		e = core.NewReplayEvaluator(cfg.Circuit)
	} else {
		s = core.NewScheduler(cfg.Circuit, seed, cfg.Public)
		if err := s.SetWorkers(cfg.Workers); err != nil {
			return nil, err
		}
		e = core.NewEvaluator(s)
		if cfg.Record {
			rec = core.NewTraceRecorder(s)
		}
	}
	aliceBytes, err := readFrame(conn, msgAliceLabels)
	if err != nil {
		return nil, err
	}
	choices := make([]bool, cfg.Circuit.BobBits)
	for i := range choices {
		choices[i] = i < len(bobInput) && bobInput[i]
	}
	bobLabels, err := ot.ReceiveLabels(conn, choices)
	if err != nil {
		return nil, fmt.Errorf("proto: OT: %w", err)
	}
	if err := e.SetInputs(unpackLabels(aliceBytes), bobLabels); err != nil {
		return nil, err
	}

	res := &Result{}
	run := newRun(cfg)
	// From here the garbler only sends: stream frames through the
	// read-ahead reader (a synchronous pass-through unless cfg.ReadAhead
	// asks for buffering), which shutdown joins on every path.
	fr := newFrameReader(conn, cfg)
	defer fr.shutdown()
	if cfg.Trace != nil {
		if err := evalStreamReplay(ctx, fr, cfg, e, res); err != nil {
			return nil, err
		}
	} else if err := evalStream(ctx, fr, cfg, s, e, run, res, rec); err != nil {
		return nil, err
	}
	if rec != nil {
		res.Trace = rec.Finish(res.Halted)
	}

	state := func(i int) (bool, bool) {
		if cfg.Trace != nil {
			return cfg.Trace.OutputState(i)
		}
		return s.WireState(run.outWires[i])
	}
	switch cfg.Outputs {
	case OutputGarblerOnly:
		// Send only the active labels' permute bits; without the decode
		// bits they reveal nothing to us and everything to the garbler.
		perm := make([]bool, len(run.outWires))
		for i, w := range run.outWires {
			if _, pub := state(i); !pub {
				perm[i] = e.ActiveBit(w)
			}
		}
		if err := writeFrame(conn, msgOutputs, packBits(perm)); err != nil {
			return nil, err
		}
	default:
		decBytes, err := fr.read(msgDecode)
		if err != nil {
			return nil, err
		}
		decode := unpackBits(decBytes, len(run.outWires))
		out := make([]bool, len(run.outWires))
		for i, w := range run.outWires {
			if v, pub := state(i); pub {
				out[i] = v
			} else {
				out[i] = e.ActiveBit(w) != decode[i]
			}
		}
		if cfg.Outputs == OutputBoth {
			if err := writeFrame(conn, msgOutputs, packBits(out)); err != nil {
				return nil, err
			}
		}
		res.Outputs = out
	}
	return res, nil
}

// evalStream is the evaluator's classified cycle loop: classify, read a
// table frame at each batch start, evaluate, and optionally record the
// schedule for later replay.
func evalStream(ctx context.Context, fr *frameReader, cfg Config, s *core.Scheduler, e *core.Evaluator, run *runState, res *Result, rec *core.TraceRecorder) error {
	batch := cfg.batch()
	var pending []gc.Table // tables of the current frame not yet consumed
	inBatch := 0
	for cyc := 1; cyc <= cfg.Cycles; cyc++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		final := cyc == cfg.Cycles
		cs := s.Classify(final)
		res.Stats.Total.Add(cs)
		res.Stats.Cycles++
		if cfg.Sink != nil {
			cfg.Sink(cyc, cs)
		}
		// The halt verdict is schedule-only, so it is known right after
		// Classify — and the recorder compiles it into the trace.
		halted := run.stopped(s)
		if rec != nil {
			rec.RecordCycle(cs, halted)
		}
		if inBatch == 0 {
			// Batch start: the garbler sends one frame covering the next
			// CycleBatch cycles (fewer at the halt/budget edge).
			var err error
			pending, err = readTables(fr, cfg, res, cyc)
			if err != nil {
				return err
			}
		}
		var err error
		pending, err = e.EvalCycle(pending)
		if err != nil {
			return err
		}
		inBatch++
		if inBatch == batch || final || halted {
			if len(pending) != 0 {
				return fmt.Errorf("proto: cycle %d: %d unconsumed tables at batch end", cyc, len(pending))
			}
			inBatch = 0
		}
		if halted {
			res.Halted = true
			break
		}
		e.CopyDFFs()
		s.Commit()
	}
	return nil
}

// evalStreamReplay is the evaluator's trace-replay loop: no scheduler,
// frame boundaries re-derived from the trace exactly where the classified
// loop would put them (batch edges, the recorded halt, the budget edge).
func evalStreamReplay(ctx context.Context, fr *frameReader, cfg Config, e *core.Evaluator, res *Result) error {
	tr := cfg.Trace
	batch := cfg.batch()
	var pending []gc.Table
	inBatch := 0
	n := tr.NumCycles()
	for cyc := 1; cyc <= n; cyc++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		ct := tr.Cycle(cyc)
		res.Stats.Total.Add(ct.Stats)
		res.Stats.Cycles++
		if cfg.Sink != nil {
			cfg.Sink(cyc, ct.Stats)
		}
		if inBatch == 0 {
			var err error
			pending, err = readTables(fr, cfg, res, cyc)
			if err != nil {
				return err
			}
		}
		var err error
		pending, err = e.EvalCycleTrace(ct, cyc, pending)
		if err != nil {
			return err
		}
		inBatch++
		if inBatch == batch || cyc == cfg.Cycles || ct.Halted {
			if len(pending) != 0 {
				return fmt.Errorf("proto: cycle %d: %d unconsumed tables at batch end", cyc, len(pending))
			}
			inBatch = 0
		}
		if ct.Halted {
			res.Halted = true
			break
		}
		e.CopyDFFs()
	}
	return nil
}

// readTables reads and parses one msgTables frame.
func readTables(fr *frameReader, cfg Config, res *Result, cyc int) ([]gc.Table, error) {
	payload, err := fr.read(msgTables)
	if err != nil {
		return nil, err
	}
	if cfg.tapTables != nil {
		cfg.tapTables(payload)
	}
	res.TableFrames++
	if len(payload)%gc.TableBytes != 0 {
		return nil, fmt.Errorf("proto: cycle %d: ragged table frame of %d bytes", cyc, len(payload))
	}
	tables := make([]gc.Table, len(payload)/gc.TableBytes)
	for i := range tables {
		tables[i].TG = gc.LabelFromBytes(payload[i*gc.TableBytes:])
		tables[i].TE = gc.LabelFromBytes(payload[i*gc.TableBytes+16:])
	}
	return tables, nil
}

// runState holds per-run derived data shared by both roles.
type runState struct {
	outWires []circuit.Wire
	stopWire circuit.Wire
}

func newRun(cfg Config) *runState {
	r := &runState{stopWire: -1}
	for _, w := range cfg.Circuit.OutputWires() {
		r.outWires = append(r.outWires, cfg.Circuit.ResolveOutput(w))
	}
	if cfg.StopOutput != "" {
		if o := cfg.Circuit.FindOutput(cfg.StopOutput); o != nil {
			r.stopWire = cfg.Circuit.ResolveOutput(o.Wires[0])
		}
	}
	return r
}

// stopped checks the public halt flag after a cycle's classification.
func (r *runState) stopped(s *core.Scheduler) bool {
	if r.stopWire < 0 {
		return false
	}
	v, pub := s.WireState(r.stopWire)
	return pub && v
}
