package proto

import (
	"bytes"
	"context"
	mrand "math/rand"
	"net"
	"testing"
)

// runBothAsym is runBothTap with per-side configs, for worker counts that
// deliberately differ between garbler and evaluator.
func runBothAsym(t *testing.T, cfgG, cfgE Config, alice, bob []bool, seed int64) (*Result, *Result, [][]byte) {
	t.Helper()
	var frames [][]byte
	cfgE.tapTables = func(p []byte) { frames = append(frames, append([]byte(nil), p...)) }
	ca, cb := net.Pipe()
	defer ca.Close()
	defer cb.Close()
	type res struct {
		r   *Result
		err error
	}
	ch := make(chan res, 1)
	go func() {
		r, err := RunGarbler(context.Background(), ca, cfgG, alice, mrand.New(mrand.NewSource(seed)))
		ch <- res{r, err}
	}()
	rb, err := RunEvaluator(context.Background(), cb, cfgE, bob)
	if err != nil {
		t.Fatalf("evaluator: %v", err)
	}
	ra := <-ch
	if ra.err != nil {
		t.Fatalf("garbler: %v", ra.err)
	}
	return ra.r, rb, frames
}

// TestParallelGarblerByteIdentical pins the WithWorkers wire contract:
// a garbler running its per-cycle passes on 8 workers must put exactly
// the same table bytes in exactly the same frames as the serial one, and
// the two sides need not agree on a worker count at all — here the
// evaluator runs serial against a parallel garbler, and then parallel
// against a parallel garbler, always from the same label randomness.
func TestParallelGarblerByteIdentical(t *testing.T) {
	for _, batch := range []int{1, 4} {
		cfg, alice, bob := multiCycleConfig(t, batch)
		_, _, serialFrames := runBothTap(t, cfg, alice, bob, 11)
		if len(serialFrames) == 0 {
			t.Fatalf("batch %d: no table frames recorded", batch)
		}

		for _, workers := range []struct {
			name            string
			garbler, evaler int
		}{
			{"garbler-parallel", 8, 1},
			{"both-parallel", 8, 8},
			{"evaluator-parallel", 1, 8},
		} {
			par := cfg
			par.Workers = workers.garbler
			parE := cfg
			parE.Workers = workers.evaler
			ra, rb, frames := runBothAsym(t, par, parE, alice, bob, 11)
			if len(frames) != len(serialFrames) {
				t.Fatalf("batch %d %s: %d frames, serial %d", batch, workers.name, len(frames), len(serialFrames))
			}
			for i := range serialFrames {
				if !bytes.Equal(serialFrames[i], frames[i]) {
					t.Fatalf("batch %d %s: frame %d differs from the serial stream", batch, workers.name, i)
				}
			}
			for i := range ra.Outputs {
				if ra.Outputs[i] != rb.Outputs[i] {
					t.Fatalf("batch %d %s: output %d disagrees between parties", batch, workers.name, i)
				}
			}
			if ra.Stats != rb.Stats {
				t.Fatalf("batch %d %s: stats disagree: garbler %+v evaluator %+v", batch, workers.name, ra.Stats, rb.Stats)
			}
		}
	}
}

// TestWorkersComposeWithPipeline runs the parallel garbler underneath the
// pipelined frame producer: compute parallelism inside a cycle feeding
// the frame pipeline must still produce the serial byte stream.
func TestWorkersComposeWithPipeline(t *testing.T) {
	cfg, alice, bob := multiCycleConfig(t, 4)
	_, _, serialFrames := runBothTap(t, cfg, alice, bob, 3)

	both := cfg
	both.Workers = 8
	both.Pipeline = 3
	_, _, frames := runBothTap(t, both, alice, bob, 3)
	if len(frames) != len(serialFrames) {
		t.Fatalf("pipelined-parallel sent %d frames, serial %d", len(frames), len(serialFrames))
	}
	for i := range serialFrames {
		if !bytes.Equal(serialFrames[i], frames[i]) {
			t.Fatalf("frame %d differs between serial and pipelined-parallel garbling", i)
		}
	}
}
