package proto

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Raw-frame access for the fleet gateway. A gateway relays sessions
// between a client and a backend garbler without running the protocol
// itself, but it must stay frame-aware on the client→backend direction to
// know where one session ends and the next proposal begins (and to peek
// the proposed program name for routing). These helpers expose the
// framing layer — type byte + u32 LE length + payload — without exposing
// the protocol internals.
const (
	// FrameHello opens a session after a grant (both directions).
	FrameHello = msgHello
	// FrameAliceLabels carries the garbler-input labels (backend→client).
	FrameAliceLabels = msgAliceLabels
	// FrameTables carries garbled tables (backend→client).
	FrameTables = msgTables
	// FrameDecode carries output-decode material (backend→client).
	FrameDecode = msgDecode
	// FrameOutputs carries decoded outputs back to the garbler
	// (client→backend); it is the client's terminal frame of a session
	// whose output mode includes the garbler.
	FrameOutputs = msgOutputs
	// FramePropose proposes a session (client→backend).
	FramePropose = msgPropose
	// FrameGrant accepts a proposal (backend→client).
	FrameGrant = msgGrant
	// FrameReject declines a proposal (backend→client).
	FrameReject = msgReject
)

// ReadRawFrame reads one frame of any type, returning its type byte and
// payload. It shares readAnyFrame's 1 GiB refusal, so a relay built on it
// cannot be ballooned by a hostile length prefix.
func ReadRawFrame(r io.Reader) (typ byte, payload []byte, err error) {
	return readAnyFrame(r)
}

// WriteRawFrame writes one frame verbatim.
func WriteRawFrame(w io.Writer, typ byte, payload []byte) error {
	return writeFrame(w, typ, payload)
}

// ProgramOfProposal extracts the proposed program name from a
// FramePropose payload without validating the rest — the routing key a
// gateway shards on. Unknown future flag bits do not matter here; the
// name field precedes the flags byte and its encoding is fixed.
func ProgramOfProposal(payload []byte) (string, error) {
	if len(payload) < 2 {
		return "", fmt.Errorf("proto: short proposal payload")
	}
	n := int(binary.LittleEndian.Uint16(payload))
	if n == 0 || n > MaxProgramName || len(payload) < 2+n {
		return "", fmt.Errorf("proto: malformed proposal payload")
	}
	return string(payload[2 : 2+n]), nil
}

// OutputsOfGrant extracts the resolved output mode from a FrameGrant
// payload. A relay needs it to know the session's terminal frame: modes
// that include the garbler end with the client's FrameOutputs; an
// evaluator-only session ends silently and the next client frame is a
// new proposal.
func OutputsOfGrant(payload []byte) (OutputMode, error) {
	if len(payload) != 1+4+8+4+32 {
		return 0, fmt.Errorf("proto: malformed grant payload of %d bytes", len(payload))
	}
	m := OutputMode(payload[0])
	switch m {
	case OutputBoth, OutputGarblerOnly, OutputEvaluatorOnly:
		return m, nil
	}
	return 0, fmt.Errorf("proto: grant with unknown output mode %d", m)
}
