package proto

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"io"

	"arm2gc/internal/core"
	"arm2gc/internal/gc"
	"arm2gc/internal/ot"
)

// Recorded is one complete pre-garbled session: every byte the garbler
// would put on the wire before the evaluator's input matters — the hello
// frame, Alice's active input labels, Bob's OT label pairs and the full
// garbled-table stream — plus the output-decode metadata the online phase
// needs afterwards. Nothing in it depends on the evaluator: only the label
// *choice* does, and that happens inside OT at serve time.
//
// A Recorded is bound to one session id (the digest of the circuit, the
// public input and the negotiable options) and MUST be served at most
// once: its labels came from one fresh seed, and replaying them to two
// evaluators would let the transcripts be correlated. ServeRecorded does
// not enforce single use — the pool layer that hands entries out does.
type Recorded struct {
	sid    [32]byte
	hello  []byte        // the exact msgHello payload: sid || seed
	alice  []byte        // the exact msgAliceLabels payload
	pairs  [][2]gc.Label // Bob's OT input-label pairs, in wire order
	frames [][]byte      // every msgTables payload, in wire order
	stats  core.Stats
	halted bool

	// Per flattened output bit: publicly resolved flag, the public value
	// when so, and the point-and-permute decode bit when secret.
	outPub []bool
	outVal []bool
	outDec []bool

	size int // cached SizeBytes
}

// SessionID returns the session digest this stream was garbled for; only
// a Config digesting to the same id may serve it.
func (r *Recorded) SessionID() [32]byte { return r.sid }

// Seed returns the garbler's fingerprint seed for this stream. The seed
// is public (it crosses the wire in the hello frame); it doubles as a
// per-entry identity in tests, since every Recorded draws a fresh one.
func (r *Recorded) Seed() core.Seed {
	var s core.Seed
	copy(s[:], r.hello[32:])
	return s
}

// TableFrames returns how many msgTables frames the stream carries.
func (r *Recorded) TableFrames() int { return len(r.frames) }

// Stats returns the recorded run's scheduling statistics.
func (r *Recorded) Stats() core.Stats { return r.stats }

// Halted reports whether the recorded run hit the program's halt flag
// before the cycle budget.
func (r *Recorded) Halted() bool { return r.halted }

// SizeBytes estimates the entry's memory footprint — the payload bytes
// plus per-slice bookkeeping — for pool byte budgets.
func (r *Recorded) SizeBytes() int { return r.size }

func (r *Recorded) computeSize() {
	n := len(r.hello) + len(r.alice) + 32*len(r.pairs) + 3*len(r.outPub) + 256
	for _, f := range r.frames {
		n += len(f) + 24
	}
	r.size = n
}

// RecordGarbler runs the garbler's entire offline phase with no peer: it
// draws a fresh seed from rnd, garbles the complete table stream into
// memory through exactly the loop the live path uses (classified, or
// replayed from cfg.Trace), and captures the label and decode metadata.
// ServeRecorded then replays the result to one evaluator with a wire
// stream byte-identical to what RunGarbler would have produced from the
// same randomness.
//
// The returned Result carries the run's stats and — when cfg.Record is
// set — the compiled classification trace, exactly as RunGarbler would.
// cfg.Pipeline is ignored: there is no I/O to overlap with offline.
func RecordGarbler(ctx context.Context, cfg Config, aliceInput []bool, rnd io.Reader) (*Recorded, *Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	sid, err := cfg.SessionID()
	if err != nil {
		return nil, nil, err
	}
	if rnd == nil {
		rnd = gc.CryptoRand
	}
	var seed core.Seed
	if _, err := io.ReadFull(rnd, seed[:]); err != nil {
		return nil, nil, err
	}
	rec := &Recorded{sid: sid, hello: append(append([]byte{}, sid[:]...), seed[:]...)}

	// Same construction — and the same label-draw order from rnd — as
	// runGarbler, so record+serve and live garbling are interchangeable
	// byte for byte.
	var s *core.Scheduler
	var trec *core.TraceRecorder
	var g *core.Garbler
	if cfg.Trace != nil {
		if cfg.Record {
			return nil, nil, fmt.Errorf("proto: Record with Trace: a replayed run has no scheduler to record")
		}
		if err := cfg.Trace.Validate(cfg.Cycles); err != nil {
			return nil, nil, err
		}
		g = core.NewReplayGarbler(cfg.Circuit, rnd)
	} else {
		s = core.NewScheduler(cfg.Circuit, seed, cfg.Public)
		if err := s.SetWorkers(cfg.Workers); err != nil {
			return nil, nil, err
		}
		g = core.NewGarbler(s, rnd)
		if cfg.Record {
			trec = core.NewTraceRecorder(s)
		}
	}
	rec.alice = packLabels(g.AliceActiveLabels(aliceInput))
	rec.pairs = g.BobPairs()

	res := &Result{}
	run := newRun(cfg)
	emit := func(payload []byte) ([]byte, error) {
		rec.frames = append(rec.frames, append([]byte(nil), payload...))
		return payload, nil
	}
	if cfg.Trace != nil {
		err = garbleFramesReplay(ctx, cfg, g, res, emit)
	} else {
		err = garbleFrames(ctx, cfg, s, g, run, res, trec, emit)
	}
	if err != nil {
		return nil, nil, err
	}
	res.TableFrames = len(rec.frames)
	if trec != nil {
		res.Trace = trec.Finish(res.Halted)
	}

	state := func(i int) (bool, bool) {
		if cfg.Trace != nil {
			return cfg.Trace.OutputState(i)
		}
		return s.WireState(run.outWires[i])
	}
	rec.outPub = make([]bool, len(run.outWires))
	rec.outVal = make([]bool, len(run.outWires))
	rec.outDec = make([]bool, len(run.outWires))
	for i, w := range run.outWires {
		v, pub := state(i)
		rec.outPub[i], rec.outVal[i] = pub, v && pub
		if !pub {
			rec.outDec[i] = g.DecodeBit(w)
		}
	}
	rec.stats, rec.halted = res.Stats, res.Halted
	rec.computeSize()
	return rec, res, nil
}

// ServeRecorded plays the garbler's online phase from a pre-garbled
// stream: hello, Alice's labels, OT, the buffered table frames, then the
// output-decode exchange — byte-identical to RunGarbler over the same
// randomness, with zero garbling on the hot path. cfg must digest to the
// stream's session id (it fixes the output mode the decode phase runs
// under). The caller guarantees rec has never been served before.
func ServeRecorded(ctx context.Context, conn io.ReadWriter, cfg Config, rec *Recorded) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	stop := watchContext(ctx, conn)
	defer stop()
	res, err := serveRecorded(ctx, conn, cfg, rec)
	return res, abortErr(ctx, err)
}

func serveRecorded(ctx context.Context, conn io.ReadWriter, cfg Config, rec *Recorded) (*Result, error) {
	sid, err := cfg.SessionID()
	if err != nil {
		return nil, err
	}
	if sid != rec.sid {
		return nil, fmt.Errorf("proto: recorded stream was garbled for a different session")
	}
	if err := writeFrame(conn, msgHello, rec.hello); err != nil {
		return nil, err
	}
	ack, err := readFrame(conn, msgHello)
	if err != nil {
		return nil, err
	}
	if !bytes.Equal(ack, sid[:]) {
		return nil, fmt.Errorf("proto: evaluator session mismatch")
	}
	if err := writeFrame(conn, msgAliceLabels, rec.alice); err != nil {
		return nil, err
	}
	if err := ot.SendLabels(conn, rec.pairs); err != nil {
		return nil, fmt.Errorf("proto: OT: %w", err)
	}
	res := &Result{Stats: rec.stats, Halted: rec.halted}
	for _, f := range rec.frames {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := writeFrame(conn, msgTables, f); err != nil {
			return nil, err
		}
		res.TableFrames++
	}

	switch cfg.Outputs {
	case OutputEvaluatorOnly:
		if err := writeFrame(conn, msgDecode, packBits(rec.outDec)); err != nil {
			return nil, err
		}
	case OutputGarblerOnly:
		perm, err := readFrame(conn, msgOutputs)
		if err != nil {
			return nil, err
		}
		bits := unpackBits(perm, len(rec.outPub))
		out := make([]bool, len(rec.outPub))
		for i := range out {
			if rec.outPub[i] {
				out[i] = rec.outVal[i]
			} else {
				out[i] = bits[i] != rec.outDec[i]
			}
		}
		res.Outputs = out
	default:
		if err := writeFrame(conn, msgDecode, packBits(rec.outDec)); err != nil {
			return nil, err
		}
		vals, err := readFrame(conn, msgOutputs)
		if err != nil {
			return nil, err
		}
		res.Outputs = unpackBits(vals, len(rec.outPub))
	}
	return res, nil
}

// recordedMagic versions the spill format; any mismatch refuses the file
// rather than misparse it.
var recordedMagic = [5]byte{'A', '2', 'G', 'P', 1}

// MarshalBinary serializes the entry for spill-to-disk. The format is
// internal to this build (a pool never outlives its process across
// versions — stale spill files are deleted on startup), but it is still
// versioned and length-checked so a truncated or foreign file fails
// loudly instead of yielding garbage labels.
func (r *Recorded) MarshalBinary() ([]byte, error) {
	size := len(recordedMagic) + 32 + 4 + len(r.hello) + 4 + len(r.alice) +
		4 + 32*len(r.pairs) + 4 + 7*8 + 1 + 4 + len(r.outPub)
	for _, f := range r.frames {
		size += 4 + len(f)
	}
	out := make([]byte, 0, size)
	out = append(out, recordedMagic[:]...)
	out = append(out, r.sid[:]...)
	putChunk := func(b []byte) {
		out = binary.LittleEndian.AppendUint32(out, uint32(len(b)))
		out = append(out, b...)
	}
	putChunk(r.hello)
	putChunk(r.alice)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(r.pairs)))
	for _, p := range r.pairs {
		b0, b1 := p[0].Bytes(), p[1].Bytes()
		out = append(out, b0[:]...)
		out = append(out, b1[:]...)
	}
	out = binary.LittleEndian.AppendUint32(out, uint32(len(r.frames)))
	for _, f := range r.frames {
		putChunk(f)
	}
	for _, v := range []int{r.stats.Cycles, r.stats.Total.Garbled, r.stats.Total.Filtered,
		r.stats.Total.FreeXOR, r.stats.Total.PublicGates, r.stats.Total.Passthrough,
		r.stats.Total.DeadSkipped} {
		out = binary.LittleEndian.AppendUint64(out, uint64(v))
	}
	if r.halted {
		out = append(out, 1)
	} else {
		out = append(out, 0)
	}
	out = binary.LittleEndian.AppendUint32(out, uint32(len(r.outPub)))
	for i := range r.outPub {
		var b byte
		if r.outPub[i] {
			b |= 1
		}
		if r.outVal[i] {
			b |= 2
		}
		if r.outDec[i] {
			b |= 4
		}
		out = append(out, b)
	}
	return out, nil
}

// UnmarshalRecorded parses a MarshalBinary blob back into an entry.
func UnmarshalRecorded(b []byte) (*Recorded, error) {
	bad := fmt.Errorf("proto: truncated recorded stream")
	take := func(n int) ([]byte, error) {
		if n < 0 || len(b) < n {
			return nil, bad
		}
		out := b[:n]
		b = b[n:]
		return out, nil
	}
	u32 := func() (int, error) {
		c, err := take(4)
		if err != nil {
			return 0, err
		}
		n := binary.LittleEndian.Uint32(c)
		if n > 1<<30 {
			return 0, fmt.Errorf("proto: recorded chunk of %d bytes refused", n)
		}
		return int(n), nil
	}
	chunk := func() ([]byte, error) {
		n, err := u32()
		if err != nil {
			return nil, err
		}
		c, err := take(n)
		if err != nil {
			return nil, err
		}
		return append([]byte(nil), c...), nil
	}
	magic, err := take(len(recordedMagic))
	if err != nil || !bytes.Equal(magic, recordedMagic[:]) {
		return nil, fmt.Errorf("proto: not a recorded stream (bad magic/version)")
	}
	r := &Recorded{}
	sid, err := take(32)
	if err != nil {
		return nil, err
	}
	copy(r.sid[:], sid)
	if r.hello, err = chunk(); err != nil {
		return nil, err
	}
	if len(r.hello) != 32+16 {
		return nil, fmt.Errorf("proto: recorded hello of %d bytes", len(r.hello))
	}
	if r.alice, err = chunk(); err != nil {
		return nil, err
	}
	npairs, err := u32()
	if err != nil {
		return nil, err
	}
	r.pairs = make([][2]gc.Label, npairs)
	for i := range r.pairs {
		pb, err := take(32)
		if err != nil {
			return nil, err
		}
		r.pairs[i][0] = gc.LabelFromBytes(pb)
		r.pairs[i][1] = gc.LabelFromBytes(pb[16:])
	}
	nframes, err := u32()
	if err != nil {
		return nil, err
	}
	r.frames = make([][]byte, nframes)
	for i := range r.frames {
		if r.frames[i], err = chunk(); err != nil {
			return nil, err
		}
	}
	st, err := take(7 * 8)
	if err != nil {
		return nil, err
	}
	vals := make([]int, 7)
	for i := range vals {
		vals[i] = int(binary.LittleEndian.Uint64(st[8*i:]))
	}
	r.stats = core.Stats{Cycles: vals[0], Total: core.CycleStats{Garbled: vals[1],
		Filtered: vals[2], FreeXOR: vals[3], PublicGates: vals[4],
		Passthrough: vals[5], DeadSkipped: vals[6]}}
	hb, err := take(1)
	if err != nil {
		return nil, err
	}
	r.halted = hb[0] == 1
	nout, err := u32()
	if err != nil {
		return nil, err
	}
	ob, err := take(nout)
	if err != nil {
		return nil, err
	}
	r.outPub = make([]bool, nout)
	r.outVal = make([]bool, nout)
	r.outDec = make([]bool, nout)
	for i, v := range ob {
		r.outPub[i] = v&1 != 0
		r.outVal[i] = v&2 != 0
		r.outDec[i] = v&4 != 0
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("proto: %d trailing bytes after recorded stream", len(b))
	}
	r.computeSize()
	return r, nil
}
