package proto

import (
	"bytes"
	"testing"
)

// TestReadAheadByteIdentical pins the evaluator read-ahead contract:
// buffering frames off the socket ahead of the cycle loop is a purely
// local knob — outputs, stats and the garbler's wire bytes must be
// untouched for every depth × batch combination.
func TestReadAheadByteIdentical(t *testing.T) {
	for _, batch := range []int{1, 8} {
		base, alice, bob := multiCycleConfig(t, batch)
		ra, rb, want := runBothAsym(t, base, base, alice, bob, 17)

		for _, depth := range []int{1, 2, 16} {
			cfgE := base
			cfgE.ReadAhead = depth
			sa, sb, got := runBothAsym(t, base, cfgE, alice, bob, 17)
			if len(got) != len(want) {
				t.Fatalf("b%d d%d: %d frames, synchronous saw %d", batch, depth, len(got), len(want))
			}
			for i := range want {
				if !bytes.Equal(want[i], got[i]) {
					t.Fatalf("b%d d%d: frame %d differs under read-ahead", batch, depth, i)
				}
			}
			if sa.Stats != ra.Stats || sb.Stats != rb.Stats {
				t.Fatalf("b%d d%d: stats diverge under read-ahead", batch, depth)
			}
			for i := range rb.Outputs {
				if sb.Outputs[i] != rb.Outputs[i] || sa.Outputs[i] != ra.Outputs[i] {
					t.Fatalf("b%d d%d: output %d differs under read-ahead", batch, depth, i)
				}
			}
		}
	}
}

// TestReadAheadHalted exercises the typed-frame peeking across the halt
// edge: the classifying evaluator cannot know the stream length, so the
// read-ahead goroutine must park the decode frame it peeks after the last
// table frame and let the typed decode read pick it up.
func TestReadAheadHalted(t *testing.T) {
	for _, batch := range []int{1, 4} {
		cfg, alice, bob := haltingConfig(t, batch)
		ra, rb, _ := runBothAsym(t, cfg, cfg, alice, bob, 23)
		if !rb.Halted {
			t.Fatalf("batch %d: reference run did not halt", batch)
		}

		cfgE := cfg
		cfgE.ReadAhead = 4
		sa, sb, _ := runBothAsym(t, cfg, cfgE, alice, bob, 23)
		if !sa.Halted || !sb.Halted {
			t.Fatalf("batch %d: read-ahead run did not halt", batch)
		}
		if sa.Stats != ra.Stats || sb.Stats != rb.Stats {
			t.Fatalf("batch %d: stats diverge under read-ahead", batch)
		}
		for i := range rb.Outputs {
			if sb.Outputs[i] != rb.Outputs[i] {
				t.Fatalf("batch %d: output %d differs under read-ahead", batch, i)
			}
		}
	}
}

// TestReadAheadTraceReplay covers the replaying evaluator, where the
// trace pins the exact frame count and the goroutine reads just that many
// — including against a pooled (recorded) garbler, the server's steady
// state.
func TestReadAheadTraceReplay(t *testing.T) {
	for _, batch := range []int{1, 4} {
		cfg, alice, bob := haltingConfig(t, batch)
		_, trE := recordTraces(t, cfg, alice, bob, 29)
		ra, rb, _ := runBothAsym(t, cfg, cfg, alice, bob, 29)

		cfgE := cfg
		cfgE.Trace = trE
		cfgE.ReadAhead = 4
		sa, sb, _ := runBothAsym(t, cfg, cfgE, alice, bob, 29)
		if sa.Stats != ra.Stats || sb.Stats != rb.Stats {
			t.Fatalf("batch %d: stats diverge (replay + read-ahead)", batch)
		}
		for i := range rb.Outputs {
			if sb.Outputs[i] != rb.Outputs[i] {
				t.Fatalf("batch %d: output %d differs (replay + read-ahead)", batch, i)
			}
		}

		// Same evaluator against a pooled garbler stream.
		rec, _, err := RecordGarbler(nil, cfg, alice, nil)
		if err != nil {
			t.Fatal(err)
		}
		_, pb, _ := serveBoth(t, cfg, cfgE, rec, bob)
		if pb.Stats != rb.Stats {
			t.Fatalf("batch %d: pooled stats diverge under read-ahead replay", batch)
		}
		for i := range rb.Outputs {
			if pb.Outputs[i] != rb.Outputs[i] {
				t.Fatalf("batch %d: pooled output %d differs under read-ahead replay", batch, i)
			}
		}
	}
}

// TestReadAheadGarblerOnlyOutputs: in classifying OutputGarblerOnly mode
// no sentinel frame follows the table stream — the next frame is the
// evaluator's own — so read-ahead must silently degrade to synchronous
// reads and leave the exchange intact.
func TestReadAheadGarblerOnlyOutputs(t *testing.T) {
	base, alice, bob := multiCycleConfig(t, 2)
	base.Outputs = OutputGarblerOnly
	ra, _, _ := runBothAsym(t, base, base, alice, bob, 31)

	cfgE := base
	cfgE.ReadAhead = 4
	sa, sb, _ := runBothAsym(t, base, cfgE, alice, bob, 31)
	if len(sb.Outputs) != 0 {
		t.Fatalf("evaluator learned %d outputs in garbler-only mode", len(sb.Outputs))
	}
	for i := range ra.Outputs {
		if sa.Outputs[i] != ra.Outputs[i] {
			t.Fatalf("garbler output %d differs", i)
		}
	}
}

// TestCountTraceFrames checks the derived frame count against the frames
// a replayed session actually puts on the wire, across batch sizes and
// the halt edge.
func TestCountTraceFrames(t *testing.T) {
	check := func(name string, cfg Config, alice, bob []bool, seed int64) {
		t.Helper()
		trG, trE := recordTraces(t, cfg, alice, bob, seed)
		gR, eR := cfg, cfg
		gR.Trace, eR.Trace = trG, trE
		_, _, frames := runBothAsym(t, gR, eR, alice, bob, seed)
		if got := countTraceFrames(eR); got != len(frames) {
			t.Fatalf("%s: countTraceFrames = %d, wire carried %d", name, got, len(frames))
		}
	}
	for _, batch := range []int{1, 3, 4, 16} {
		cfg, alice, bob := multiCycleConfig(t, batch)
		check("accum", cfg, alice, bob, 37)
		hcfg, halice, hbob := haltingConfig(t, batch)
		check("halting", hcfg, halice, hbob, 37)
	}
}
