package proto

import (
	"bytes"
	"context"
	mrand "math/rand"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"arm2gc/internal/core"
)

// runBothTap runs both parties over a pipe with a fixed-seed garbler RNG,
// recording every table-frame payload the evaluator receives.
func runBothTap(t *testing.T, cfg Config, alice, bob []bool, seed int64) (*Result, *Result, [][]byte) {
	t.Helper()
	var frames [][]byte
	cfgE := cfg
	cfgE.tapTables = func(p []byte) { frames = append(frames, append([]byte(nil), p...)) }
	ca, cb := net.Pipe()
	defer ca.Close()
	defer cb.Close()
	type res struct {
		r   *Result
		err error
	}
	ch := make(chan res, 1)
	go func() {
		r, err := RunGarbler(context.Background(), ca, cfg, alice, mrand.New(mrand.NewSource(seed)))
		ch <- res{r, err}
	}()
	rb, err := RunEvaluator(context.Background(), cb, cfgE, bob)
	if err != nil {
		t.Fatalf("evaluator: %v", err)
	}
	ra := <-ch
	if ra.err != nil {
		t.Fatalf("garbler: %v", ra.err)
	}
	return ra.r, rb, frames
}

// TestPipelinedGarblerByteIdentical is the pipelining correctness
// anchor: with the same label randomness, the pipelined garbler must put
// exactly the same table bytes in exactly the same frames on the wire as
// the serial one.
func TestPipelinedGarblerByteIdentical(t *testing.T) {
	for _, batch := range []int{1, 4} {
		cfg, alice, bob := multiCycleConfig(t, batch)
		pipelined := cfg
		pipelined.Pipeline = 3

		ra, _, serialFrames := runBothTap(t, cfg, alice, bob, 7)
		rp, rpb, pipeFrames := runBothTap(t, pipelined, alice, bob, 7)

		if len(serialFrames) == 0 {
			t.Fatalf("batch %d: no table frames recorded", batch)
		}
		if len(pipeFrames) != len(serialFrames) {
			t.Fatalf("batch %d: pipelined sent %d frames, serial %d", batch, len(pipeFrames), len(serialFrames))
		}
		for i := range serialFrames {
			if !bytes.Equal(serialFrames[i], pipeFrames[i]) {
				t.Fatalf("batch %d: frame %d differs between serial and pipelined garbling", batch, i)
			}
		}
		if ra.Stats != rp.Stats {
			t.Fatalf("batch %d: stats differ: serial %+v pipelined %+v", batch, ra.Stats, rp.Stats)
		}
		for i := range ra.Outputs {
			if ra.Outputs[i] != rp.Outputs[i] || rp.Outputs[i] != rpb.Outputs[i] {
				t.Fatalf("batch %d: output %d differs", batch, i)
			}
		}
		if rp.TableFrames != len(pipeFrames) {
			t.Fatalf("batch %d: pipelined garbler counted %d frames, evaluator saw %d",
				batch, rp.TableFrames, len(pipeFrames))
		}
	}
}

// TestPipelineOverlapsComputeWithIO pins the point of pipelining: with a
// slow evaluator draining the pipe, the garbler's producer must finish
// garbling the whole run while the evaluator is still far behind —
// compute genuinely overlaps frame I/O instead of running in lockstep
// with it (the serial path cannot classify cycle k+1 before the write of
// frame k unblocks).
func TestPipelineOverlapsComputeWithIO(t *testing.T) {
	cfg, alice, bob := multiCycleConfig(t, 1) // 16 cycles, one frame each
	cfg.Pipeline = 8
	var evalCycle, evalAtGarbleDone atomic.Int64
	cfgG, cfgE := cfg, cfg
	cfgG.Sink = func(cyc int, _ core.CycleStats) {
		if cyc == cfg.Cycles {
			evalAtGarbleDone.Store(evalCycle.Load())
		}
	}
	cfgE.Sink = func(cyc int, _ core.CycleStats) {
		evalCycle.Store(int64(cyc))
		time.Sleep(3 * time.Millisecond)
	}

	ca, cb := net.Pipe()
	defer ca.Close()
	defer cb.Close()
	errc := make(chan error, 1)
	go func() {
		_, err := RunGarbler(context.Background(), ca, cfgG, alice, nil)
		errc <- err
	}()
	if _, err := RunEvaluator(context.Background(), cb, cfgE, bob); err != nil {
		t.Fatalf("evaluator: %v", err)
	}
	if err := <-errc; err != nil {
		t.Fatalf("garbler: %v", err)
	}

	// With an 8-frame lookahead the producer finishes all 16 cycles once
	// ~7 frames have crossed the pipe; serial garbling would put the
	// evaluator at cycle 15-16 by then.
	if got := evalAtGarbleDone.Load(); got >= 14 {
		t.Errorf("no overlap: evaluator already at cycle %d when the garbler classified its last cycle", got)
	}
}

// TestPipelinedStatsSinkOrdered pins the Sink contract under pipelining:
// the producer goroutine emits every cycle's stats exactly once, in cycle
// order, and they match the serial run's stats cycle for cycle. Run with
// -race, this also proves the sink callback is safe to observe from the
// caller's side once the run returns.
func TestPipelinedStatsSinkOrdered(t *testing.T) {
	cfg, alice, bob := multiCycleConfig(t, 1)

	collect := func(role string, pipeline int) []core.CycleStats {
		var mu sync.Mutex
		seen := make(map[int]int)
		var stats []core.CycleStats
		sink := func(cyc int, cs core.CycleStats) {
			mu.Lock()
			defer mu.Unlock()
			seen[cyc]++
			if cyc != len(stats)+1 {
				t.Errorf("%s pipeline %d: sink saw cycle %d after %d cycles", role, pipeline, cyc, len(stats))
			}
			stats = append(stats, cs)
		}
		cfgG, cfgE := cfg, cfg
		cfgG.Pipeline = pipeline
		if role == "garbler" {
			cfgG.Sink = sink
		} else {
			cfgE.Sink = sink
		}
		runBothAsym(t, cfgG, cfgE, alice, bob, 21)
		mu.Lock()
		defer mu.Unlock()
		if len(stats) != cfg.Cycles {
			t.Fatalf("%s pipeline %d: sink fired %d times, want %d", role, pipeline, len(stats), cfg.Cycles)
		}
		for cyc := 1; cyc <= cfg.Cycles; cyc++ {
			if seen[cyc] != 1 {
				t.Fatalf("%s pipeline %d: cycle %d reported %d times, want exactly once", role, pipeline, cyc, seen[cyc])
			}
		}
		return stats
	}

	for _, role := range []string{"garbler", "evaluator"} {
		serial := collect(role, 0)
		pipelined := collect(role, 4)
		for cyc := range serial {
			if serial[cyc] != pipelined[cyc] {
				t.Fatalf("%s cycle %d stats differ: serial %+v pipelined %+v", role, cyc+1, serial[cyc], pipelined[cyc])
			}
		}
	}
}
