package proto

import (
	"io"
	"time"
)

// aheadFrame is one frame pulled off the wire by the read-ahead
// goroutine, type intact so the consumer's typed reads still verify.
type aheadFrame struct {
	typ     byte
	payload []byte
	err     error
}

// frameReader is the evaluator's frame source. With cfg.ReadAhead off it
// is a plain synchronous wrapper over readFrame. With it on, a goroutine
// pulls frames off the connection ahead of the cycle loop, so table
// frames queue up while the evaluator is still crunching labels — the
// typed-frame peeking the halt edge needs: the evaluator cannot know the
// stream length in advance (the halt flag resolves cycle by cycle), so
// the goroutine peeks at each frame's type and parks the first
// non-msgTables frame (the decode frame, in practice) in the buffer,
// where the consumer's own typed read picks it up after halt detection.
//
// Two modes bound the goroutine's appetite:
//   - replaying (cfg.Trace set): the trace pins the exact table-frame
//     count, so the goroutine reads exactly that many frames and exits —
//     any output mode works;
//   - classifying: the goroutine reads until the first non-table frame.
//     In OutputGarblerOnly mode no such sentinel follows the stream (the
//     next frame belongs to the *evaluator*), so read-ahead degrades to
//     synchronous reads rather than swallow a frame it must not touch.
//
// Read-ahead also requires a deadline-capable connection (every net.Conn
// and net.Pipe qualifies): on an error path the goroutine may be parked
// in a blocking read, and shutdown unwedges it by expiring the deadline.
type frameReader struct {
	conn io.ReadWriter
	ch   chan aheadFrame // nil: synchronous mode
}

// newFrameReader starts the read-ahead goroutine when cfg allows it. The
// caller must call shutdown on every path once done reading.
func newFrameReader(conn io.ReadWriter, cfg Config) *frameReader {
	fr := &frameReader{conn: conn}
	depth := cfg.ReadAhead
	if depth <= 0 {
		return fr
	}
	if _, ok := conn.(deadliner); !ok {
		return fr
	}
	limit := -1
	if cfg.Trace != nil {
		limit = countTraceFrames(cfg)
	} else if cfg.Outputs == OutputGarblerOnly {
		return fr // no trailing garbler frame to park on; stay synchronous
	}
	fr.ch = make(chan aheadFrame, depth)
	go func() {
		defer close(fr.ch)
		for n := 0; limit < 0 || n < limit; n++ {
			typ, payload, err := readAnyFrame(conn)
			fr.ch <- aheadFrame{typ, payload, err}
			if err != nil || typ != msgTables {
				return
			}
		}
	}()
	return fr
}

// read returns the next frame, requiring wantType — from the read-ahead
// buffer while the goroutine lives, directly from the connection after.
func (fr *frameReader) read(wantType byte) ([]byte, error) {
	if fr.ch != nil {
		if f, ok := <-fr.ch; ok {
			if f.err != nil {
				return nil, f.err
			}
			if f.typ != wantType {
				return nil, typeMismatch(f.typ, wantType)
			}
			return f.payload, nil
		}
		fr.ch = nil // goroutine done; fall through to direct reads
	}
	return readFrame(fr.conn, wantType)
}

// shutdown joins the read-ahead goroutine. On a completed run it has
// already exited (it stops at its frame limit or at the parked sentinel
// frame); after a mid-stream failure it may be blocked in a read on a
// connection that is not going to deliver, so pending I/O is expired
// first. The deadline is cleared afterwards — on the failure paths the
// caller abandons the connection anyway, and on the success path a
// cleared deadline leaves a reusable conn exactly as it found it.
func (fr *frameReader) shutdown() {
	if fr.ch == nil {
		return
	}
	d := fr.conn.(deadliner)           // checked at construction
	_ = d.SetDeadline(time.Unix(1, 0)) // best-effort expiry; the drain below tolerates a slow reader
	for range fr.ch {
	}
	_ = d.SetDeadline(time.Time{})
}

// countTraceFrames derives the exact number of msgTables frames a
// replayed stream carries, walking the recorded cycles through the same
// boundary rule as the replay loops (batch edge, budget edge, halt).
func countTraceFrames(cfg Config) int {
	tr, batch := cfg.Trace, cfg.batch()
	frames, inBatch := 0, 0
	n := tr.NumCycles()
	for cyc := 1; cyc <= n; cyc++ {
		ct := tr.Cycle(cyc)
		if inBatch == 0 {
			frames++
		}
		inBatch++
		if inBatch == batch || cyc == cfg.Cycles || ct.Halted {
			inBatch = 0
		}
		if ct.Halted {
			break
		}
	}
	return frames
}
