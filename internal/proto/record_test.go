package proto

import (
	"bytes"
	"context"
	mrand "math/rand"
	"net"
	"strings"
	"testing"
)

// serveBoth plays ServeRecorded against RunEvaluator over a pipe, tapping
// the table frames the evaluator sees — the pooled-session counterpart of
// runBothAsym.
func serveBoth(t *testing.T, cfgG, cfgE Config, rec *Recorded, bob []bool) (*Result, *Result, [][]byte) {
	t.Helper()
	var frames [][]byte
	cfgE.tapTables = func(p []byte) { frames = append(frames, append([]byte(nil), p...)) }
	ca, cb := net.Pipe()
	defer ca.Close()
	defer cb.Close()
	type res struct {
		r   *Result
		err error
	}
	ch := make(chan res, 1)
	go func() {
		r, err := ServeRecorded(context.Background(), ca, cfgG, rec)
		ch <- res{r, err}
	}()
	rb, err := RunEvaluator(context.Background(), cb, cfgE, bob)
	if err != nil {
		t.Fatalf("evaluator: %v", err)
	}
	ra := <-ch
	if ra.err != nil {
		t.Fatalf("serve recorded: %v", ra.err)
	}
	return ra.r, rb, frames
}

// TestRecordServeByteIdenticalGrid is the offline/online acceptance grid:
// a stream garbled offline by RecordGarbler and served by ServeRecorded
// must put exactly the bytes a live RunGarbler puts on the wire — from
// the same label randomness — for every workers × pipeline × cycle-batch
// combination, with identical outputs and stats on both sides.
func TestRecordServeByteIdenticalGrid(t *testing.T) {
	base, alice, bob := multiCycleConfig(t, 1)
	for _, workers := range []int{1, 2, 8} {
		for _, pipeline := range []int{0, 4} {
			for _, batch := range []int{1, 8} {
				cfg := base
				cfg.CycleBatch = batch

				// Live reference at this grid point (Pipeline and Workers
				// are garbler-local knobs; the wire contract says they do
				// not move bytes).
				cfgG := cfg
				cfgG.Workers, cfgG.Pipeline = workers, pipeline
				ra, rb, want := runBothAsym(t, cfgG, cfg, alice, bob, 7)
				if len(want) == 0 {
					t.Fatalf("w%d p%d b%d: no reference frames", workers, pipeline, batch)
				}

				rec, rres, err := RecordGarbler(context.Background(), cfgG, alice,
					mrand.New(mrand.NewSource(7)))
				if err != nil {
					t.Fatalf("w%d p%d b%d: record: %v", workers, pipeline, batch, err)
				}
				if rec.TableFrames() != len(want) {
					t.Fatalf("w%d p%d b%d: recorded %d frames, live sent %d",
						workers, pipeline, batch, rec.TableFrames(), len(want))
				}
				if rres.Stats != ra.Stats {
					t.Fatalf("w%d p%d b%d: offline stats %+v, live %+v",
						workers, pipeline, batch, rres.Stats, ra.Stats)
				}

				sa, sb, got := serveBoth(t, cfg, cfg, rec, bob)
				if len(got) != len(want) {
					t.Fatalf("w%d p%d b%d: served %d frames, live sent %d",
						workers, pipeline, batch, len(got), len(want))
				}
				for i := range want {
					if !bytes.Equal(want[i], got[i]) {
						t.Fatalf("w%d p%d b%d: frame %d differs from live garbling",
							workers, pipeline, batch, i)
					}
				}
				if sa.Stats != ra.Stats || sb.Stats != rb.Stats {
					t.Fatalf("w%d p%d b%d: served stats diverge", workers, pipeline, batch)
				}
				for i := range ra.Outputs {
					if sa.Outputs[i] != ra.Outputs[i] || sb.Outputs[i] != rb.Outputs[i] {
						t.Fatalf("w%d p%d b%d: output %d differs from live run",
							workers, pipeline, batch, i)
					}
				}
			}
		}
	}
}

// TestRecordServeTraceReplay pins the pool's steady state: offline
// recording through a compiled classification trace (the producer's warm
// path) must still serve the exact classified bytes.
func TestRecordServeTraceReplay(t *testing.T) {
	base, alice, bob := multiCycleConfig(t, 4)
	trG, _ := recordTraces(t, base, alice, bob, 9)
	_, rb, want := runBothAsym(t, base, base, alice, bob, 9)

	cfgR := base
	cfgR.Trace = trG
	rec, _, err := RecordGarbler(context.Background(), cfgR, alice, mrand.New(mrand.NewSource(9)))
	if err != nil {
		t.Fatalf("record via trace: %v", err)
	}
	_, sb, got := serveBoth(t, base, base, rec, bob)
	if len(got) != len(want) {
		t.Fatalf("trace-recorded stream: %d frames, classified sent %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(want[i], got[i]) {
			t.Fatalf("trace-recorded stream: frame %d differs", i)
		}
	}
	for i := range rb.Outputs {
		if sb.Outputs[i] != rb.Outputs[i] {
			t.Fatalf("trace-recorded stream: output %d differs", i)
		}
	}

	// Record+Record is refused: a replayed run has no scheduler to record.
	cfgR.Record = true
	if _, _, err := RecordGarbler(context.Background(), cfgR, alice, nil); err == nil {
		t.Fatal("Record with Trace set was accepted")
	}
}

// TestRecordServeOutputModes runs the decode phase of a served stream
// under every output mode against the live run's outputs.
func TestRecordServeOutputModes(t *testing.T) {
	for _, mode := range []OutputMode{OutputBoth, OutputGarblerOnly, OutputEvaluatorOnly} {
		base, alice, bob := multiCycleConfig(t, 2)
		base.Outputs = mode
		ra, rb, _ := runBothAsym(t, base, base, alice, bob, 5)

		rec, _, err := RecordGarbler(context.Background(), base, alice, mrand.New(mrand.NewSource(5)))
		if err != nil {
			t.Fatalf("mode %v: record: %v", mode, err)
		}
		sa, sb, _ := serveBoth(t, base, base, rec, bob)
		if len(sa.Outputs) != len(ra.Outputs) || len(sb.Outputs) != len(rb.Outputs) {
			t.Fatalf("mode %v: output lengths diverge (%d/%d vs %d/%d)",
				mode, len(sa.Outputs), len(sb.Outputs), len(ra.Outputs), len(rb.Outputs))
		}
		for i := range ra.Outputs {
			if sa.Outputs[i] != ra.Outputs[i] {
				t.Fatalf("mode %v: garbler output %d differs", mode, i)
			}
		}
		for i := range rb.Outputs {
			if sb.Outputs[i] != rb.Outputs[i] {
				t.Fatalf("mode %v: evaluator output %d differs", mode, i)
			}
		}
	}
}

// TestRecordServeHalted pins the halt edge: a recorded stream of a
// program that raises its stop flag mid-budget must carry exactly the
// frames up to the halt, for batch sizes that do and do not divide the
// halted cycle count.
func TestRecordServeHalted(t *testing.T) {
	for _, batch := range []int{1, 4} {
		cfg, alice, bob := haltingConfig(t, batch)
		ra, rb, want := runBothAsym(t, cfg, cfg, alice, bob, 3)
		if !ra.Halted {
			t.Fatalf("batch %d: live run did not halt", batch)
		}

		rec, _, err := RecordGarbler(context.Background(), cfg, alice, mrand.New(mrand.NewSource(3)))
		if err != nil {
			t.Fatalf("batch %d: record: %v", batch, err)
		}
		if !rec.Halted() {
			t.Fatalf("batch %d: recorded stream does not carry the halt", batch)
		}
		sa, sb, got := serveBoth(t, cfg, cfg, rec, bob)
		if !sa.Halted || !sb.Halted {
			t.Fatalf("batch %d: served session did not halt", batch)
		}
		if len(got) != len(want) {
			t.Fatalf("batch %d: served %d frames, live sent %d", batch, len(got), len(want))
		}
		for i := range want {
			if !bytes.Equal(want[i], got[i]) {
				t.Fatalf("batch %d: frame %d differs across the halt edge", batch, i)
			}
		}
		for i := range rb.Outputs {
			if sb.Outputs[i] != rb.Outputs[i] {
				t.Fatalf("batch %d: output %d differs", batch, i)
			}
		}
	}
}

// TestServeRecordedSessionMismatch: a stream garbled for one option set
// must be refused — before any byte moves — by a config digesting to a
// different session id.
func TestServeRecordedSessionMismatch(t *testing.T) {
	cfg1, alice, _ := multiCycleConfig(t, 1)
	rec, _, err := RecordGarbler(context.Background(), cfg1, alice, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg8 := cfg1
	cfg8.CycleBatch = 8
	ca, cb := net.Pipe()
	defer ca.Close()
	defer cb.Close()
	if _, err := ServeRecorded(context.Background(), ca, cfg8, rec); err == nil ||
		!strings.Contains(err.Error(), "different session") {
		t.Fatalf("mismatched config accepted the stream: %v", err)
	}
}

// TestRecordedMarshalRoundTrip pins the spill format: a marshal/unmarshal
// round trip must serve a byte-identical stream, and corrupted or
// truncated blobs must be refused loudly.
func TestRecordedMarshalRoundTrip(t *testing.T) {
	cfg, alice, bob := haltingConfig(t, 4)
	_, rb, want := runBothAsym(t, cfg, cfg, alice, bob, 13)
	rec, _, err := RecordGarbler(context.Background(), cfg, alice, mrand.New(mrand.NewSource(13)))
	if err != nil {
		t.Fatal(err)
	}

	blob, err := rec.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalRecorded(blob)
	if err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if back.SessionID() != rec.SessionID() || back.Seed() != rec.Seed() ||
		back.TableFrames() != rec.TableFrames() || back.Stats() != rec.Stats() ||
		back.Halted() != rec.Halted() || back.SizeBytes() != rec.SizeBytes() {
		t.Fatal("round trip changed the stream's metadata")
	}
	_, sb, got := serveBoth(t, cfg, cfg, back, bob)
	if len(got) != len(want) {
		t.Fatalf("unmarshaled stream served %d frames, live sent %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(want[i], got[i]) {
			t.Fatalf("unmarshaled stream: frame %d differs", i)
		}
	}
	for i := range rb.Outputs {
		if sb.Outputs[i] != rb.Outputs[i] {
			t.Fatalf("unmarshaled stream: output %d differs", i)
		}
	}

	// Hostile inputs: bad magic, truncation at every boundary class,
	// trailing garbage.
	bad := append([]byte(nil), blob...)
	bad[0] ^= 0xff
	if _, err := UnmarshalRecorded(bad); err == nil {
		t.Fatal("bad magic accepted")
	}
	for _, cut := range []int{len(recordedMagic) - 1, len(recordedMagic) + 16, len(blob) / 2, len(blob) - 1} {
		if _, err := UnmarshalRecorded(blob[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	if _, err := UnmarshalRecorded(append(append([]byte(nil), blob...), 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}
