package proto

import (
	"context"
	"io"

	"arm2gc/internal/core"
)

// garbleStream drives the garbler's table stream, serially or — when
// cfg.Pipeline is positive — with a producer goroutine garbling frames
// ahead of the writer. Both paths share garbleFrames, so the bytes on the
// wire are identical by construction.
func garbleStream(ctx context.Context, conn io.ReadWriter, cfg Config, s *core.Scheduler, g *core.Garbler, run *runState, res *Result) error {
	if cfg.Pipeline > 0 {
		return garblePipelined(ctx, conn, cfg, s, g, run, res)
	}
	return garbleFrames(ctx, cfg, s, g, run, res, func(payload []byte) ([]byte, error) {
		if err := writeFrame(conn, msgTables, payload); err != nil {
			return nil, err
		}
		res.TableFrames++
		return payload, nil
	})
}

// garbleFrames runs the garbler's cycle loop, appending each cycle's
// tables to a payload buffer and handing the buffer to emit at every
// frame boundary: the cycle-batch edge and, regardless of fill, the halt
// or cycle-budget edge, where the evaluator expects the remainder (both
// sides derive identical boundaries from the shared public schedule).
// emit returns the buffer to fill next — the same one in the serial path,
// a recycled one from the pipeline pool when a producer goroutine runs
// ahead of the writer.
func garbleFrames(ctx context.Context, cfg Config, s *core.Scheduler, g *core.Garbler, run *runState, res *Result, emit func(payload []byte) ([]byte, error)) error {
	batch := cfg.batch()
	var payload []byte
	inBatch := 0
	for cyc := 1; cyc <= cfg.Cycles; cyc++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		final := cyc == cfg.Cycles
		cs := s.Classify(final)
		res.Stats.Total.Add(cs)
		res.Stats.Cycles++
		if cfg.Sink != nil {
			cfg.Sink(cyc, cs)
		}
		payload = g.GarbleCycleAppend(payload)
		inBatch++
		halted := run.stopped(s)
		if inBatch == batch || final || halted {
			next, err := emit(payload)
			if err != nil {
				return err
			}
			payload = next[:0]
			inBatch = 0
		}
		if halted {
			res.Halted = true
			break
		}
		g.CopyDFFs()
		s.Commit()
	}
	return nil
}

// garblePipelined overlaps garbling with frame I/O: a producer goroutine
// garbles up to cfg.Pipeline frames ahead into a bounded queue while this
// goroutine streams them to conn. Buffers cycle through a pool, so the
// lookahead is allocation-bounded. The producer owns the scheduler,
// garbler and res.Stats until it finishes; receiving its result channel
// establishes the happens-before edge the output-decoding phase needs.
func garblePipelined(ctx context.Context, conn io.ReadWriter, cfg Config, s *core.Scheduler, g *core.Garbler, run *runState, res *Result) error {
	pctx, cancel := context.WithCancel(ctx)
	defer cancel()
	frames := make(chan []byte, cfg.Pipeline)
	pool := make(chan []byte, cfg.Pipeline+1)
	for i := 0; i < cfg.Pipeline+1; i++ {
		pool <- nil
	}
	prodErr := make(chan error, 1)
	go func() {
		err := garbleFrames(pctx, cfg, s, g, run, res, func(payload []byte) ([]byte, error) {
			select {
			case frames <- payload:
			case <-pctx.Done():
				return nil, pctx.Err()
			}
			select {
			case next := <-pool:
				return next, nil
			case <-pctx.Done():
				return nil, pctx.Err()
			}
		})
		close(frames)
		prodErr <- err
	}()
	var writeErr error
	for payload := range frames {
		if writeErr != nil {
			continue // drain so the cancelled producer can exit
		}
		if writeErr = writeFrame(conn, msgTables, payload); writeErr != nil {
			cancel()
			continue
		}
		res.TableFrames++
		select {
		case pool <- payload:
		default:
		}
	}
	err := <-prodErr
	if writeErr != nil {
		return writeErr
	}
	return err
}
