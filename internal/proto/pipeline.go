package proto

import (
	"context"
	"io"

	"arm2gc/internal/core"
)

// garbleStream drives the garbler's table stream, serially or — when
// cfg.Pipeline is positive — with a producer goroutine garbling frames
// ahead of the writer. Classified and replayed runs share the same frame
// plumbing (and the pipelined writer), so the bytes on the wire are
// identical across all four combinations by construction.
func garbleStream(ctx context.Context, conn io.ReadWriter, cfg Config, s *core.Scheduler, g *core.Garbler, run *runState, res *Result, rec *core.TraceRecorder) error {
	produce := func(ctx context.Context, emit func(payload []byte) ([]byte, error)) error {
		if cfg.Trace != nil {
			return garbleFramesReplay(ctx, cfg, g, res, emit)
		}
		return garbleFrames(ctx, cfg, s, g, run, res, rec, emit)
	}
	if cfg.Pipeline > 0 {
		return garblePipelined(ctx, conn, cfg, res, produce)
	}
	return produce(ctx, func(payload []byte) ([]byte, error) {
		if err := writeFrame(conn, msgTables, payload); err != nil {
			return nil, err
		}
		res.TableFrames++
		return payload, nil
	})
}

// garbleFrames runs the garbler's classified cycle loop, appending each
// cycle's tables to a payload buffer and handing the buffer to emit at
// every frame boundary: the cycle-batch edge and, regardless of fill, the
// halt or cycle-budget edge, where the evaluator expects the remainder
// (both sides derive identical boundaries from the shared public
// schedule). emit returns the buffer to fill next — the same one in the
// serial path, a recycled one from the pipeline pool when a producer
// goroutine runs ahead of the writer. When rec is non-nil the settled
// schedule of every cycle is compiled into a trace as it executes.
func garbleFrames(ctx context.Context, cfg Config, s *core.Scheduler, g *core.Garbler, run *runState, res *Result, rec *core.TraceRecorder, emit func(payload []byte) ([]byte, error)) error {
	batch := cfg.batch()
	var payload []byte
	inBatch := 0
	for cyc := 1; cyc <= cfg.Cycles; cyc++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		final := cyc == cfg.Cycles
		cs := s.Classify(final)
		res.Stats.Total.Add(cs)
		res.Stats.Cycles++
		if cfg.Sink != nil {
			cfg.Sink(cyc, cs)
		}
		// The halt verdict is schedule-only, so it is known right after
		// Classify — the recorder needs it before the cycle is compiled.
		halted := run.stopped(s)
		if rec != nil {
			rec.RecordCycle(cs, halted)
		}
		payload = g.GarbleCycleAppend(payload)
		inBatch++
		if inBatch == batch || final || halted {
			next, err := emit(payload)
			if err != nil {
				return err
			}
			payload = next[:0]
			inBatch = 0
		}
		if halted {
			res.Halted = true
			break
		}
		g.CopyDFFs()
		s.Commit()
	}
	return nil
}

// garbleFramesReplay mirrors garbleFrames over a recorded trace: no
// scheduler, the compiled cycles drive the label work, and the frame
// boundaries come out exactly where the classified loop would put them
// (the trace ends at the recorded halt or at the budget edge).
func garbleFramesReplay(ctx context.Context, cfg Config, g *core.Garbler, res *Result, emit func(payload []byte) ([]byte, error)) error {
	tr := cfg.Trace
	batch := cfg.batch()
	var payload []byte
	inBatch := 0
	n := tr.NumCycles()
	for cyc := 1; cyc <= n; cyc++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		ct := tr.Cycle(cyc)
		res.Stats.Total.Add(ct.Stats)
		res.Stats.Cycles++
		if cfg.Sink != nil {
			cfg.Sink(cyc, ct.Stats)
		}
		payload = g.GarbleCycleTraceAppend(ct, cyc, payload)
		inBatch++
		if inBatch == batch || cyc == cfg.Cycles || ct.Halted {
			next, err := emit(payload)
			if err != nil {
				return err
			}
			payload = next[:0]
			inBatch = 0
		}
		if ct.Halted {
			res.Halted = true
			break
		}
		g.CopyDFFs()
	}
	return nil
}

// garblePipelined overlaps garbling with frame I/O: a producer goroutine
// garbles up to cfg.Pipeline frames ahead into a bounded queue while this
// goroutine streams them to conn. Buffers cycle through a pool, so the
// lookahead is allocation-bounded. The producer owns the garbler (and
// scheduler, when classifying) and res.Stats until it finishes; receiving
// its result channel establishes the happens-before edge the
// output-decoding phase needs.
func garblePipelined(ctx context.Context, conn io.ReadWriter, cfg Config, res *Result, produce func(ctx context.Context, emit func(payload []byte) ([]byte, error)) error) error {
	pctx, cancel := context.WithCancel(ctx)
	defer cancel()
	frames := make(chan []byte, cfg.Pipeline)
	pool := make(chan []byte, cfg.Pipeline+1)
	for i := 0; i < cfg.Pipeline+1; i++ {
		pool <- nil
	}
	prodErr := make(chan error, 1)
	go func() {
		err := produce(pctx, func(payload []byte) ([]byte, error) {
			select {
			case frames <- payload:
			case <-pctx.Done():
				return nil, pctx.Err()
			}
			select {
			case next := <-pool:
				return next, nil
			case <-pctx.Done():
				return nil, pctx.Err()
			}
		})
		close(frames)
		prodErr <- err
	}()
	var writeErr error
	for payload := range frames {
		if writeErr != nil {
			continue // drain so the cancelled producer can exit
		}
		if writeErr = writeFrame(conn, msgTables, payload); writeErr != nil {
			cancel()
			continue
		}
		res.TableFrames++
		// Recycle the frame buffer if the producer is ready for it.
		//lint:ignore determinism wire-stream-neutral: the payload above is already written; dropping the buffer only costs an allocation
		select {
		case pool <- payload:
		default:
		}
	}
	err := <-prodErr
	if writeErr != nil {
		return writeErr
	}
	return err
}
