package proto

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"time"
)

// Negotiation message types: the multi-session framing layered above the
// per-run protocol. A connection carries any number of
// (propose, grant|reject, run) rounds; the evaluator proposes, the
// garbling server grants or rejects.
const (
	msgPropose byte = 0x10 + iota
	msgGrant
	msgReject
)

// Proposal flag bits. The flags byte doubles as the proposal's version
// vector: every optional field is announced by its own bit, a reader
// skips trailing payload it has no bit for, and a bit it does not know
// turns into *VersionError — a parseable verdict the server can turn
// into a rejection instead of a dead connection.
const (
	flagHasOutputs byte = 1 << iota
	flagHasAuth
	flagHasMemBackend

	knownProposalFlags = flagHasOutputs | flagHasAuth | flagHasMemBackend
)

// Negotiation bounds; proposals outside them are refused before any
// session state is touched.
const (
	// MaxProgramName bounds a proposed program name, in bytes.
	MaxProgramName = 1024

	// MaxAuthToken bounds a proposal's bearer token, in bytes.
	MaxAuthToken = 4096

	// MaxMemBackend bounds a proposal's memory-backend name, in bytes.
	MaxMemBackend = 64

	// MaxCycleBatch is the largest cycle batch a client may propose. The
	// garbler buffers a whole batch of tables before flushing, so the
	// bound caps how much memory one remote proposal can pin per session
	// (at 4096 cycles even table-heavy processor layouts stay in the
	// tens of MB, far under readFrame's 1 GiB frame refusal). Server
	// registrations are operator-set and not subject to it.
	MaxCycleBatch = 4096

	// MaxWorkers is the largest per-cycle worker count a client may
	// propose; it mirrors core.MaxWorkers so a remote proposal can never
	// ask a server to spawn an unbounded goroutine fleet. The server
	// additionally caps proposals at its registration's own worker count.
	MaxWorkers = 256
)

// Proposal is the evaluator's opening move of a session: a program name
// the server registered, plus the options it wants. Zero-valued option
// fields (and HasOutputs == false) mean "use the server's registered
// default"; the resolved values come back in the Grant.
type Proposal struct {
	Program string

	// HasOutputs distinguishes "propose OutputBoth" (true, Outputs = 0)
	// from "accept the server's registered mode" (false).
	HasOutputs bool
	Outputs    OutputMode

	CycleBatch int // 0: the server's registered default
	MaxCycles  int // 0: the server's registered default
	Workers    int // 0: the server's registered default

	// Auth optionally carries a bearer token the server checks against
	// the proposed program's registration policy. An empty token encodes
	// to exactly the pre-auth wire bytes, so clients without one remain
	// byte-identical to older builds.
	Auth string

	// MemBackend optionally names the oblivious-memory backend the
	// client resolved for the session ("scan", "sqrt-oram"). The server
	// rejects — cleanly, keeping the connection — when it differs from
	// the registration's own resolved backend: the two sides would
	// synthesize different netlists, and the explicit field turns what
	// would otherwise be an opaque session-id mismatch into a readable
	// reason. Empty means "accept the server's registered backend" and
	// encodes to exactly the pre-backend wire bytes.
	MemBackend string
}

// VersionError reports a proposal that announced a feature bit this side
// does not implement. The frame is length-delimited, so the stream stays
// aligned: a server receiving one rejects the proposal and keeps the
// connection for further (supported) sessions.
type VersionError struct {
	Program string
	Flags   byte
}

func (e *VersionError) Error() string {
	return fmt.Sprintf("proto: proposal %q carries unsupported feature flags %#02x", e.Program, e.Flags)
}

// Grant is the server's acceptance: the fully resolved session options
// and the session id the server computed from them, which the client
// cross-checks against its own before running (catching program-binary or
// layout disagreement with a clear error instead of a mid-handshake
// abort).
type Grant struct {
	Outputs    OutputMode
	CycleBatch int
	MaxCycles  int
	Workers    int
	SessionID  [32]byte
}

// Rejected is the error a proposal comes back with when the server
// declines it: unknown program, an option the registration does not
// offer, an over-budget cycle count — or, from a fleet gateway, load
// shedding, in which case RetryAfter carries the peer's hint.
type Rejected struct {
	Program string
	Reason  string

	// RetryAfter is the rejecting peer's Retry-After hint: how long the
	// proposer should back off before proposing again. Zero on plain
	// policy rejections (retrying those is pointless); positive on load
	// sheds, where the condition is transient.
	RetryAfter time.Duration
}

func (e *Rejected) Error() string {
	return fmt.Sprintf("proto: proposal %q rejected: %s", e.Program, e.Reason)
}

// WriteProposal sends a session proposal (client side).
func WriteProposal(w io.Writer, p Proposal) error {
	if p.Program == "" {
		return fmt.Errorf("proto: proposal without a program name")
	}
	if len(p.Program) > MaxProgramName {
		return fmt.Errorf("proto: program name of %d bytes exceeds %d", len(p.Program), MaxProgramName)
	}
	if p.CycleBatch < 0 || p.MaxCycles < 0 || p.Workers < 0 {
		return fmt.Errorf("proto: negative option in proposal")
	}
	if len(p.Auth) > MaxAuthToken {
		return fmt.Errorf("proto: auth token of %d bytes exceeds %d", len(p.Auth), MaxAuthToken)
	}
	if len(p.MemBackend) > MaxMemBackend {
		return fmt.Errorf("proto: memory-backend name of %d bytes exceeds %d", len(p.MemBackend), MaxMemBackend)
	}
	payload := make([]byte, 0, 2+len(p.Program)+2+4+8+4+2+len(p.Auth)+2+len(p.MemBackend))
	payload = binary.LittleEndian.AppendUint16(payload, uint16(len(p.Program)))
	payload = append(payload, p.Program...)
	var flags byte
	if p.HasOutputs {
		flags |= flagHasOutputs
	}
	if p.Auth != "" {
		flags |= flagHasAuth
	}
	if p.MemBackend != "" {
		flags |= flagHasMemBackend
	}
	payload = append(payload, flags, byte(p.Outputs))
	payload = binary.LittleEndian.AppendUint32(payload, uint32(p.CycleBatch))
	payload = binary.LittleEndian.AppendUint64(payload, uint64(p.MaxCycles))
	payload = binary.LittleEndian.AppendUint32(payload, uint32(p.Workers))
	if p.Auth != "" {
		payload = binary.LittleEndian.AppendUint16(payload, uint16(len(p.Auth)))
		payload = append(payload, p.Auth...)
	}
	if p.MemBackend != "" {
		payload = binary.LittleEndian.AppendUint16(payload, uint16(len(p.MemBackend)))
		payload = append(payload, p.MemBackend...)
	}
	return writeFrame(w, msgPropose, payload)
}

// ReadProposal reads the next session proposal (server side). io.EOF
// means the client finished with the connection cleanly. A proposal
// announcing feature flags this build does not know comes back as
// *VersionError with the program name filled in — the frame has been
// fully consumed, so the caller may reject it and keep reading.
func ReadProposal(r io.Reader) (Proposal, error) {
	b, err := readFrame(r, msgPropose)
	if err != nil {
		return Proposal{}, err
	}
	var p Proposal
	if len(b) < 2 {
		return p, fmt.Errorf("proto: short proposal")
	}
	n := int(binary.LittleEndian.Uint16(b))
	b = b[2:]
	if n > MaxProgramName || len(b) < n+2+4+8+4 {
		return p, fmt.Errorf("proto: malformed proposal")
	}
	p.Program = string(b[:n])
	b = b[n:]
	flags := b[0]
	if unknown := flags &^ knownProposalFlags; unknown != 0 {
		return p, &VersionError{Program: p.Program, Flags: unknown}
	}
	p.HasOutputs = flags&flagHasOutputs != 0
	p.Outputs = OutputMode(b[1])
	p.CycleBatch = int(binary.LittleEndian.Uint32(b[2:]))
	p.MaxCycles = int(binary.LittleEndian.Uint64(b[6:]))
	p.Workers = int(binary.LittleEndian.Uint32(b[14:]))
	if p.CycleBatch < 0 || p.MaxCycles < 0 || p.Workers < 0 {
		return p, fmt.Errorf("proto: proposal option overflow")
	}
	b = b[18:]
	if flags&flagHasAuth != 0 {
		if len(b) < 2 {
			return p, fmt.Errorf("proto: malformed proposal auth")
		}
		an := int(binary.LittleEndian.Uint16(b))
		b = b[2:]
		if an == 0 || an > MaxAuthToken || len(b) < an {
			return p, fmt.Errorf("proto: malformed proposal auth")
		}
		p.Auth = string(b[:an])
		b = b[an:]
	}
	if flags&flagHasMemBackend != 0 {
		if len(b) < 2 {
			return p, fmt.Errorf("proto: malformed proposal memory backend")
		}
		mn := int(binary.LittleEndian.Uint16(b))
		b = b[2:]
		if mn == 0 || mn > MaxMemBackend || len(b) < mn {
			return p, fmt.Errorf("proto: malformed proposal memory backend")
		}
		p.MemBackend = string(b[:mn])
	}
	return p, nil
}

// WriteGrant accepts a proposal (server side).
func WriteGrant(w io.Writer, g Grant) error {
	payload := make([]byte, 0, 1+4+8+4+32)
	payload = append(payload, byte(g.Outputs))
	payload = binary.LittleEndian.AppendUint32(payload, uint32(g.CycleBatch))
	payload = binary.LittleEndian.AppendUint64(payload, uint64(g.MaxCycles))
	payload = binary.LittleEndian.AppendUint32(payload, uint32(g.Workers))
	payload = append(payload, g.SessionID[:]...)
	return writeFrame(w, msgGrant, payload)
}

func parseGrant(b []byte) (Grant, error) {
	var g Grant
	if len(b) != 1+4+8+4+32 {
		return g, fmt.Errorf("proto: malformed grant of %d bytes", len(b))
	}
	g.Outputs = OutputMode(b[0])
	g.CycleBatch = int(binary.LittleEndian.Uint32(b[1:]))
	g.MaxCycles = int(binary.LittleEndian.Uint64(b[5:]))
	g.Workers = int(binary.LittleEndian.Uint32(b[13:]))
	copy(g.SessionID[:], b[17:])
	if g.CycleBatch < 1 || g.MaxCycles < 1 || g.Workers < 1 {
		return g, fmt.Errorf("proto: grant with unresolved options")
	}
	return g, nil
}

// Rejection-frame extension. The PR 5 wire format carries the reason
// text as the whole payload, so — unlike the proposal — there is no flags
// byte to grow behind. The extension therefore rides after a NUL
// separator: reasons are human-readable text that never contains NUL
// (WriteReject strips one defensively), so
//
//	payload := reason                                  (no extension)
//	payload := reason 0x00 flags [field...]            (extended)
//
// is unambiguous. Each extension field is announced by its own flag bit
// and length-prefixed, mirroring the proposal's Auth field: a reader
// skips fields it has no bit for, and the absent extension is
// byte-identical to the PR 5 format (pinned by a golden-bytes test). A
// pre-extension client parses the whole payload as the reason — it still
// sees a plain rejection (typed error, connection kept) whose text
// merely carries a short opaque suffix.
const rejectExtSep byte = 0x00

const (
	flagRejectRetryAfter byte = 1 << iota
)

// MaxRetryAfter bounds a rejection's Retry-After hint; anything longer
// is clamped on write and refused on read (a shed is a transient verdict,
// not a multi-day ban).
const MaxRetryAfter = time.Hour

// WriteReject declines a proposal with a reason (server side); the
// connection stays usable for further proposals.
func WriteReject(w io.Writer, reason string) error {
	return WriteRejectRetry(w, reason, 0)
}

// WriteRejectRetry declines a proposal with a reason and, when after is
// positive, a Retry-After hint telling the peer how long to back off
// before proposing again — the load-shedding verdict of a fleet gateway.
// With after <= 0 the frame is byte-identical to WriteReject's.
func WriteRejectRetry(w io.Writer, reason string, after time.Duration) error {
	if i := bytes.IndexByte([]byte(reason), rejectExtSep); i >= 0 {
		reason = reason[:i] // NUL is the extension separator; reasons are text
	}
	payload := []byte(reason)
	if after > 0 {
		if after > MaxRetryAfter {
			after = MaxRetryAfter
		}
		payload = append(payload, rejectExtSep, flagRejectRetryAfter, 8, 0)
		payload = binary.LittleEndian.AppendUint64(payload, uint64(after/time.Millisecond))
	}
	return writeFrame(w, msgReject, payload)
}

// parseReject decodes a rejection payload into its reason and optional
// Retry-After hint. Unknown flag bits and malformed extensions degrade to
// a plain rejection with the parsed reason — a rejection is already the
// failure path; there is nothing safer to fall back to.
func parseReject(payload []byte) (reason string, after time.Duration) {
	i := bytes.IndexByte(payload, rejectExtSep)
	if i < 0 {
		return string(payload), 0
	}
	reason, b := string(payload[:i]), payload[i+1:]
	if len(b) < 1 {
		return reason, 0
	}
	flags := b[0]
	b = b[1:]
	for bit := byte(1); bit != 0; bit <<= 1 {
		if flags&bit == 0 {
			continue
		}
		if len(b) < 2 {
			return reason, after
		}
		n := int(binary.LittleEndian.Uint16(b))
		b = b[2:]
		if len(b) < n {
			return reason, after
		}
		field := b[:n]
		b = b[n:]
		if bit == flagRejectRetryAfter && n == 8 {
			ms := binary.LittleEndian.Uint64(field)
			if d := time.Duration(ms) * time.Millisecond; d > 0 && d <= MaxRetryAfter {
				after = d
			}
		}
	}
	return reason, after
}

// Negotiate proposes a session and waits for the server's verdict (client
// side). A declined proposal returns *Rejected; cancelling ctx unblocks
// in-flight negotiation I/O as in RunGarbler/RunEvaluator.
func Negotiate(ctx context.Context, conn io.ReadWriter, p Proposal) (Grant, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	stop := watchContext(ctx, conn)
	defer stop()
	g, err := negotiate(conn, p)
	return g, abortErr(ctx, err)
}

func negotiate(conn io.ReadWriter, p Proposal) (Grant, error) {
	if err := WriteProposal(conn, p); err != nil {
		return Grant{}, err
	}
	typ, payload, err := readAnyFrame(conn)
	if err != nil {
		return Grant{}, err
	}
	switch typ {
	case msgGrant:
		return parseGrant(payload)
	case msgReject:
		reason, after := parseReject(payload)
		return Grant{}, &Rejected{Program: p.Program, Reason: reason, RetryAfter: after}
	}
	return Grant{}, fmt.Errorf("proto: negotiation got message type %d", typ)
}

// String renders an output mode for negotiation-rejection messages.
func (m OutputMode) String() string {
	switch m {
	case OutputBoth:
		return "both"
	case OutputGarblerOnly:
		return "garbler-only"
	case OutputEvaluatorOnly:
		return "evaluator-only"
	}
	return fmt.Sprintf("OutputMode(%d)", uint8(m))
}
