package proto

import (
	"bytes"
	"context"
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"arm2gc/internal/build"
	"arm2gc/internal/circuit"
	"arm2gc/internal/sim"
)

func TestProposalRoundTrip(t *testing.T) {
	cases := []Proposal{
		{Program: "sum"},
		{Program: "hamming", HasOutputs: true, Outputs: OutputEvaluatorOnly, CycleBatch: 16, MaxCycles: 12345},
		{Program: "x", HasOutputs: true, Outputs: OutputBoth},
		{Program: "par", CycleBatch: 2, MaxCycles: 64, Workers: 8},
		{Program: "sec", Auth: "bearer-1"},
		{Program: "mem", MemBackend: "sqrt-oram"},
		{Program: "all", HasOutputs: true, Outputs: OutputGarblerOnly, CycleBatch: 4, MaxCycles: 9, Workers: 2, Auth: "k", MemBackend: "scan"},
	}
	for _, want := range cases {
		var buf bytes.Buffer
		if err := WriteProposal(&buf, want); err != nil {
			t.Fatalf("write %+v: %v", want, err)
		}
		got, err := ReadProposal(&buf)
		if err != nil {
			t.Fatalf("read %+v: %v", want, err)
		}
		if got != want {
			t.Errorf("round trip: got %+v, want %+v", got, want)
		}
	}
	if err := WriteProposal(&bytes.Buffer{}, Proposal{}); err == nil {
		t.Error("empty program name accepted")
	}
	long := Proposal{Program: "p", Auth: strings.Repeat("a", MaxAuthToken+1)}
	if err := WriteProposal(&bytes.Buffer{}, long); err == nil {
		t.Error("over-long auth token accepted")
	}
}

// TestProposalWireCompat pins the pre-auth encoding: a proposal without a
// token must produce exactly the bytes PR 3 servers expect (no trailing
// auth field), and those bytes must still parse. This is the
// byte-identical guarantee the frame evolution rides on.
func TestProposalWireCompat(t *testing.T) {
	p := Proposal{Program: "add", HasOutputs: true, Outputs: OutputEvaluatorOnly,
		CycleBatch: 8, MaxCycles: 10_000, Workers: 4}
	var buf bytes.Buffer
	if err := WriteProposal(&buf, p); err != nil {
		t.Fatal(err)
	}
	legacy := []byte{
		msgPropose, 23, 0, 0, 0, // frame header: type + length
		3, 0, 'a', 'd', 'd', // name
		0x01, byte(OutputEvaluatorOnly), // flags, mode
		8, 0, 0, 0, // cycle batch
		0x10, 0x27, 0, 0, 0, 0, 0, 0, // max cycles
		4, 0, 0, 0, // workers
	}
	if !bytes.Equal(buf.Bytes(), legacy) {
		t.Fatalf("token-less proposal encodes to % x, legacy wire format is % x", buf.Bytes(), legacy)
	}
	got, err := ReadProposal(bytes.NewReader(legacy))
	if err != nil {
		t.Fatal(err)
	}
	if got != p {
		t.Fatalf("legacy bytes parsed to %+v, want %+v", got, p)
	}
}

// TestProposalVersionMismatch: a proposal announcing a feature bit this
// build does not implement must come back as *VersionError with the frame
// consumed, so the server can reject it and keep the connection.
func TestProposalVersionMismatch(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteProposal(&buf, Proposal{Program: "future"}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[5+2+len("future")] |= 0x80 // an unassigned flag bit
	// A second, supported proposal behind it must still be readable.
	if err := WriteProposal(&buf, Proposal{Program: "now"}); err != nil {
		t.Fatal(err)
	}
	r := bytes.NewReader(buf.Bytes())
	_, err := ReadProposal(r)
	var ve *VersionError
	if !errors.As(err, &ve) {
		t.Fatalf("got %v, want *VersionError", err)
	}
	if ve.Program != "future" || ve.Flags != 0x80 {
		t.Errorf("version error carried %+v", ve)
	}
	next, err := ReadProposal(r)
	if err != nil || next.Program != "now" {
		t.Fatalf("stream misaligned after a version mismatch: %+v, %v", next, err)
	}
}

// TestProposalMemBackendWire pins the memory-backend extension's
// encoding: the flag bit, the length-prefixed name after the (absent)
// auth field, and the malformed-truncation refusals. Backend-less
// proposals stay byte-identical to the pre-backend format — that is
// TestProposalWireCompat's legacy-bytes assertion.
func TestProposalMemBackendWire(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteProposal(&buf, Proposal{Program: "m", MemBackend: "scan"}); err != nil {
		t.Fatal(err)
	}
	want := []byte{
		msgPropose, 27, 0, 0, 0, // frame header: type + length
		1, 0, 'm', // name
		0x04, 0, // flags (mem-backend bit), mode
		0, 0, 0, 0, // cycle batch
		0, 0, 0, 0, 0, 0, 0, 0, // max cycles
		0, 0, 0, 0, // workers
		4, 0, 's', 'c', 'a', 'n', // backend name
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("proposal encodes to % x, want % x", buf.Bytes(), want)
	}
	got, err := ReadProposal(bytes.NewReader(want))
	if err != nil {
		t.Fatal(err)
	}
	if got.MemBackend != "scan" || got.Program != "m" {
		t.Fatalf("parsed %+v", got)
	}

	if err := WriteProposal(&bytes.Buffer{}, Proposal{
		Program: "p", MemBackend: strings.Repeat("x", MaxMemBackend+1)}); err == nil {
		t.Error("over-long memory-backend name accepted")
	}

	// Truncations inside the backend field must be refused, not read past.
	for cut := len(want) - 1; cut > len(want)-6; cut-- {
		raw := append([]byte(nil), want[:cut]...)
		raw[1] = byte(cut - 5) // fix the frame length to match
		if _, err := ReadProposal(bytes.NewReader(raw)); err == nil {
			t.Errorf("truncated backend field (cut at %d) accepted", cut)
		}
	}
	// A zero-length name under a set flag is malformed too.
	raw := append([]byte(nil), want[:len(want)-4]...)
	raw[1] = byte(len(raw) - 5)
	raw[len(raw)-2], raw[len(raw)-1] = 0, 0
	if _, err := ReadProposal(bytes.NewReader(raw)); err == nil {
		t.Error("zero-length backend name under a set flag accepted")
	}
}

func TestGrantRoundTrip(t *testing.T) {
	want := Grant{Outputs: OutputGarblerOnly, CycleBatch: 8, MaxCycles: 10_000, Workers: 4}
	for i := range want.SessionID {
		want.SessionID[i] = byte(i * 7)
	}
	var buf bytes.Buffer
	if err := WriteGrant(&buf, want); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := readAnyFrame(&buf)
	if err != nil || typ != msgGrant {
		t.Fatalf("frame type %d err %v", typ, err)
	}
	got, err := parseGrant(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("round trip: got %+v, want %+v", got, want)
	}

	// A grant is only valid fully resolved: every negotiable knob >= 1.
	unresolved := want
	unresolved.Workers = 0
	var buf2 bytes.Buffer
	if err := WriteGrant(&buf2, unresolved); err != nil {
		t.Fatal(err)
	}
	if _, payload, err = readAnyFrame(&buf2); err != nil {
		t.Fatal(err)
	}
	if _, err := parseGrant(payload); err == nil {
		t.Error("grant with unresolved worker count accepted")
	}
}

func TestNegotiateReject(t *testing.T) {
	ca, cb := net.Pipe()
	defer ca.Close()
	defer cb.Close()
	go func() {
		prop, err := ReadProposal(cb)
		if err != nil || prop.Program != "nope" {
			t.Errorf("server read %+v, %v", prop, err)
			return
		}
		if err := WriteReject(cb, "unknown program"); err != nil {
			t.Error(err)
		}
	}()
	_, err := Negotiate(context.Background(), ca, Proposal{Program: "nope"})
	var rej *Rejected
	if !errors.As(err, &rej) {
		t.Fatalf("got %v, want *Rejected", err)
	}
	if rej.Program != "nope" || rej.Reason != "unknown program" {
		t.Errorf("rejection carried %+v", rej)
	}
}

func TestNegotiateGrant(t *testing.T) {
	ca, cb := net.Pipe()
	defer ca.Close()
	defer cb.Close()
	want := Grant{Outputs: OutputBoth, CycleBatch: 4, MaxCycles: 99, Workers: 2}
	go func() {
		if _, err := ReadProposal(cb); err != nil {
			t.Error(err)
			return
		}
		if err := WriteGrant(cb, want); err != nil {
			t.Error(err)
		}
	}()
	got, err := Negotiate(context.Background(), ca, Proposal{Program: "sum", CycleBatch: 4, MaxCycles: 99, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("negotiated %+v, want %+v", got, want)
	}
}

// TestRejectWireCompat pins the rejection encodings. A plain rejection
// must stay byte-identical to the PR 5 format (reason text as the whole
// payload), and the Retry-After form is pinned so the extension cannot
// drift: reason, NUL, flags byte, u16 LE field length, u64 LE
// milliseconds.
func TestRejectWireCompat(t *testing.T) {
	var plain bytes.Buffer
	if err := WriteReject(&plain, "unknown program"); err != nil {
		t.Fatal(err)
	}
	legacy := append([]byte{msgReject, 15, 0, 0, 0}, "unknown program"...)
	if !bytes.Equal(plain.Bytes(), legacy) {
		t.Fatalf("plain reject encodes to % x, PR 5 wire format is % x", plain.Bytes(), legacy)
	}

	var hinted bytes.Buffer
	if err := WriteRejectRetry(&hinted, "shed", 1500*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	want := append([]byte{msgReject, 16, 0, 0, 0}, "shed"...)
	want = append(want, 0x00, flagRejectRetryAfter, 8, 0, 0xDC, 0x05, 0, 0, 0, 0, 0, 0)
	if !bytes.Equal(hinted.Bytes(), want) {
		t.Fatalf("hinted reject encodes to % x, pinned format is % x", hinted.Bytes(), want)
	}
}

// TestRejectRetryAfterRoundTrip: the hint survives negotiation as
// Rejected.RetryAfter, is clamped to MaxRetryAfter, and a reason
// containing the NUL separator is truncated rather than corrupting the
// frame.
func TestRejectRetryAfterRoundTrip(t *testing.T) {
	cases := []struct {
		reason     string
		after      time.Duration
		wantReason string
		wantAfter  time.Duration
	}{
		{"unknown program", 0, "unknown program", 0},
		{"shed: backend saturated", 2 * time.Second, "shed: backend saturated", 2 * time.Second},
		{"shed", 500 * time.Microsecond, "shed", 0}, // sub-millisecond truncates to zero
		{"shed", 48 * time.Hour, "shed", MaxRetryAfter},
		{"evil\x00tail", time.Second, "evil", time.Second},
	}
	for _, tc := range cases {
		ca, cb := net.Pipe()
		go func() {
			defer cb.Close()
			if _, err := ReadProposal(cb); err != nil {
				t.Error(err)
				return
			}
			if err := WriteRejectRetry(cb, tc.reason, tc.after); err != nil {
				t.Error(err)
			}
		}()
		_, err := Negotiate(context.Background(), ca, Proposal{Program: "p"})
		ca.Close()
		var rej *Rejected
		if !errors.As(err, &rej) {
			t.Fatalf("%q/%v: got %v, want *Rejected", tc.reason, tc.after, err)
		}
		if rej.Reason != tc.wantReason || rej.RetryAfter != tc.wantAfter {
			t.Errorf("%q/%v: carried reason %q after %v, want %q / %v",
				tc.reason, tc.after, rej.Reason, rej.RetryAfter, tc.wantReason, tc.wantAfter)
		}
	}
}

// TestRejectOldClientCompat: a pre-extension client parses the whole
// payload as the reason. It must still see a plain rejection — reason
// text with an opaque suffix, zero RetryAfter semantics — and the stream
// must stay aligned for the next round. The old parse is simulated
// byte-for-byte (string(payload), as PR 5's negotiate did).
func TestRejectOldClientCompat(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteRejectRetry(&buf, "shed", time.Second); err != nil {
		t.Fatal(err)
	}
	if err := WriteGrant(&buf, Grant{Outputs: OutputBoth, CycleBatch: 1, MaxCycles: 1, Workers: 1}); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := readAnyFrame(&buf)
	if err != nil || typ != msgReject {
		t.Fatalf("frame type %d err %v", typ, err)
	}
	oldReason := string(payload) // the PR 5 parse
	if !strings.HasPrefix(oldReason, "shed\x00") {
		t.Errorf("old parse lost the reason prefix: %q", oldReason)
	}
	// The extension is length-delimited inside the frame, so the next
	// frame is untouched.
	if typ, _, err = readAnyFrame(&buf); err != nil || typ != msgGrant {
		t.Fatalf("stream misaligned after hinted reject: type %d err %v", typ, err)
	}
}

// TestRejectMalformedExtensions: truncated or unknown-bit extensions
// degrade to a plain rejection, never an error or a misparse.
func TestRejectMalformedExtensions(t *testing.T) {
	cases := []struct {
		name    string
		payload []byte
		after   time.Duration
	}{
		{"bare separator", []byte("r\x00"), 0},
		{"flags only", []byte("r\x00\x01"), 0},
		{"short length", []byte("r\x00\x01\x08"), 0},
		{"truncated field", []byte("r\x00\x01\x08\x00\x01\x02"), 0},
		{"unknown bit skipped", append([]byte("r\x00\x03\x08\x00"),
			0xE8, 0x03, 0, 0, 0, 0, 0, 0, 0x02, 0x00, 0xAB, 0xCD), time.Second},
		{"wrong hint size", []byte("r\x00\x01\x04\x00\x01\x02\x03\x04"), 0},
		{"oversized hint refused", append([]byte("r\x00\x01\x08\x00"),
			0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F), 0},
	}
	for _, tc := range cases {
		reason, after := parseReject(tc.payload)
		if reason != "r" || after != tc.after {
			t.Errorf("%s: parsed (%q, %v), want (%q, %v)", tc.name, reason, after, "r", tc.after)
		}
	}
}

// TestProposalFramePeek covers the gateway's raw-frame helpers:
// ProgramOfProposal recovers the routing key from a proposal payload
// (including one carrying future flag bits), and OutputsOfGrant the
// session-terminal mode from a grant.
func TestProposalFramePeek(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteProposal(&buf, Proposal{Program: "hamming", Auth: "tok"}); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := ReadRawFrame(&buf)
	if err != nil || typ != FramePropose {
		t.Fatalf("frame type %d err %v", typ, err)
	}
	name, err := ProgramOfProposal(payload)
	if err != nil || name != "hamming" {
		t.Fatalf("peeked %q, %v", name, err)
	}
	// Future flag bits must not break the peek: the name precedes them.
	payload[2+len("hamming")] |= 0x80
	if name, err = ProgramOfProposal(payload); err != nil || name != "hamming" {
		t.Fatalf("peek with future flags: %q, %v", name, err)
	}
	if _, err := ProgramOfProposal([]byte{7, 0, 'x'}); err == nil {
		t.Error("truncated proposal payload accepted")
	}

	g := Grant{Outputs: OutputGarblerOnly, CycleBatch: 1, MaxCycles: 1, Workers: 1}
	buf.Reset()
	if err := WriteGrant(&buf, g); err != nil {
		t.Fatal(err)
	}
	if typ, payload, err = ReadRawFrame(&buf); err != nil || typ != FrameGrant {
		t.Fatalf("frame type %d err %v", typ, err)
	}
	mode, err := OutputsOfGrant(payload)
	if err != nil || mode != OutputGarblerOnly {
		t.Fatalf("peeked mode %v, %v", mode, err)
	}
	if _, err := OutputsOfGrant(payload[:4]); err == nil {
		t.Error("truncated grant payload accepted")
	}
}

// TestSessionIDLengthDelimited guards the digest against the
// concatenation ambiguity the unprefixed encoding had: ("x", public
// bits packing to 'y') and ("xy", no public bits) fed the hash the same
// byte stream, so two genuinely different sessions shared an id.
func TestSessionIDLengthDelimited(t *testing.T) {
	b := build.New("sid")
	a := b.Input(circuit.Alice, "a", 4)
	b.Output("o", a)
	c := b.MustCompile()

	cfg1 := Config{Circuit: c, Cycles: 1, StopOutput: "x", Public: sim.UnpackUint(uint64('y'), 8)}
	cfg2 := Config{Circuit: c, Cycles: 1, StopOutput: "xy"}
	id1, err := cfg1.SessionID()
	if err != nil {
		t.Fatal(err)
	}
	id2, err := cfg2.SessionID()
	if err != nil {
		t.Fatal(err)
	}
	if id1 == id2 {
		t.Fatal("distinct (StopOutput, Public) pairs digest to the same session id")
	}
}
