package proto

import (
	"bytes"
	"context"
	"errors"
	"net"
	"strings"
	"testing"

	"arm2gc/internal/build"
	"arm2gc/internal/circuit"
	"arm2gc/internal/sim"
)

func TestProposalRoundTrip(t *testing.T) {
	cases := []Proposal{
		{Program: "sum"},
		{Program: "hamming", HasOutputs: true, Outputs: OutputEvaluatorOnly, CycleBatch: 16, MaxCycles: 12345},
		{Program: "x", HasOutputs: true, Outputs: OutputBoth},
		{Program: "par", CycleBatch: 2, MaxCycles: 64, Workers: 8},
		{Program: "sec", Auth: "bearer-1"},
		{Program: "all", HasOutputs: true, Outputs: OutputGarblerOnly, CycleBatch: 4, MaxCycles: 9, Workers: 2, Auth: "k"},
	}
	for _, want := range cases {
		var buf bytes.Buffer
		if err := WriteProposal(&buf, want); err != nil {
			t.Fatalf("write %+v: %v", want, err)
		}
		got, err := ReadProposal(&buf)
		if err != nil {
			t.Fatalf("read %+v: %v", want, err)
		}
		if got != want {
			t.Errorf("round trip: got %+v, want %+v", got, want)
		}
	}
	if err := WriteProposal(&bytes.Buffer{}, Proposal{}); err == nil {
		t.Error("empty program name accepted")
	}
	long := Proposal{Program: "p", Auth: strings.Repeat("a", MaxAuthToken+1)}
	if err := WriteProposal(&bytes.Buffer{}, long); err == nil {
		t.Error("over-long auth token accepted")
	}
}

// TestProposalWireCompat pins the pre-auth encoding: a proposal without a
// token must produce exactly the bytes PR 3 servers expect (no trailing
// auth field), and those bytes must still parse. This is the
// byte-identical guarantee the frame evolution rides on.
func TestProposalWireCompat(t *testing.T) {
	p := Proposal{Program: "add", HasOutputs: true, Outputs: OutputEvaluatorOnly,
		CycleBatch: 8, MaxCycles: 10_000, Workers: 4}
	var buf bytes.Buffer
	if err := WriteProposal(&buf, p); err != nil {
		t.Fatal(err)
	}
	legacy := []byte{
		msgPropose, 23, 0, 0, 0, // frame header: type + length
		3, 0, 'a', 'd', 'd', // name
		0x01, byte(OutputEvaluatorOnly), // flags, mode
		8, 0, 0, 0, // cycle batch
		0x10, 0x27, 0, 0, 0, 0, 0, 0, // max cycles
		4, 0, 0, 0, // workers
	}
	if !bytes.Equal(buf.Bytes(), legacy) {
		t.Fatalf("token-less proposal encodes to % x, legacy wire format is % x", buf.Bytes(), legacy)
	}
	got, err := ReadProposal(bytes.NewReader(legacy))
	if err != nil {
		t.Fatal(err)
	}
	if got != p {
		t.Fatalf("legacy bytes parsed to %+v, want %+v", got, p)
	}
}

// TestProposalVersionMismatch: a proposal announcing a feature bit this
// build does not implement must come back as *VersionError with the frame
// consumed, so the server can reject it and keep the connection.
func TestProposalVersionMismatch(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteProposal(&buf, Proposal{Program: "future"}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[5+2+len("future")] |= 0x80 // an unassigned flag bit
	// A second, supported proposal behind it must still be readable.
	if err := WriteProposal(&buf, Proposal{Program: "now"}); err != nil {
		t.Fatal(err)
	}
	r := bytes.NewReader(buf.Bytes())
	_, err := ReadProposal(r)
	var ve *VersionError
	if !errors.As(err, &ve) {
		t.Fatalf("got %v, want *VersionError", err)
	}
	if ve.Program != "future" || ve.Flags != 0x80 {
		t.Errorf("version error carried %+v", ve)
	}
	next, err := ReadProposal(r)
	if err != nil || next.Program != "now" {
		t.Fatalf("stream misaligned after a version mismatch: %+v, %v", next, err)
	}
}

func TestGrantRoundTrip(t *testing.T) {
	want := Grant{Outputs: OutputGarblerOnly, CycleBatch: 8, MaxCycles: 10_000, Workers: 4}
	for i := range want.SessionID {
		want.SessionID[i] = byte(i * 7)
	}
	var buf bytes.Buffer
	if err := WriteGrant(&buf, want); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := readAnyFrame(&buf)
	if err != nil || typ != msgGrant {
		t.Fatalf("frame type %d err %v", typ, err)
	}
	got, err := parseGrant(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("round trip: got %+v, want %+v", got, want)
	}

	// A grant is only valid fully resolved: every negotiable knob >= 1.
	unresolved := want
	unresolved.Workers = 0
	var buf2 bytes.Buffer
	if err := WriteGrant(&buf2, unresolved); err != nil {
		t.Fatal(err)
	}
	if _, payload, err = readAnyFrame(&buf2); err != nil {
		t.Fatal(err)
	}
	if _, err := parseGrant(payload); err == nil {
		t.Error("grant with unresolved worker count accepted")
	}
}

func TestNegotiateReject(t *testing.T) {
	ca, cb := net.Pipe()
	defer ca.Close()
	defer cb.Close()
	go func() {
		prop, err := ReadProposal(cb)
		if err != nil || prop.Program != "nope" {
			t.Errorf("server read %+v, %v", prop, err)
			return
		}
		if err := WriteReject(cb, "unknown program"); err != nil {
			t.Error(err)
		}
	}()
	_, err := Negotiate(context.Background(), ca, Proposal{Program: "nope"})
	var rej *Rejected
	if !errors.As(err, &rej) {
		t.Fatalf("got %v, want *Rejected", err)
	}
	if rej.Program != "nope" || rej.Reason != "unknown program" {
		t.Errorf("rejection carried %+v", rej)
	}
}

func TestNegotiateGrant(t *testing.T) {
	ca, cb := net.Pipe()
	defer ca.Close()
	defer cb.Close()
	want := Grant{Outputs: OutputBoth, CycleBatch: 4, MaxCycles: 99, Workers: 2}
	go func() {
		if _, err := ReadProposal(cb); err != nil {
			t.Error(err)
			return
		}
		if err := WriteGrant(cb, want); err != nil {
			t.Error(err)
		}
	}()
	got, err := Negotiate(context.Background(), ca, Proposal{Program: "sum", CycleBatch: 4, MaxCycles: 99, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("negotiated %+v, want %+v", got, want)
	}
}

// TestSessionIDLengthDelimited guards the digest against the
// concatenation ambiguity the unprefixed encoding had: ("x", public
// bits packing to 'y') and ("xy", no public bits) fed the hash the same
// byte stream, so two genuinely different sessions shared an id.
func TestSessionIDLengthDelimited(t *testing.T) {
	b := build.New("sid")
	a := b.Input(circuit.Alice, "a", 4)
	b.Output("o", a)
	c := b.MustCompile()

	cfg1 := Config{Circuit: c, Cycles: 1, StopOutput: "x", Public: sim.UnpackUint(uint64('y'), 8)}
	cfg2 := Config{Circuit: c, Cycles: 1, StopOutput: "xy"}
	id1, err := cfg1.SessionID()
	if err != nil {
		t.Fatal(err)
	}
	id2, err := cfg2.SessionID()
	if err != nil {
		t.Fatal(err)
	}
	if id1 == id2 {
		t.Fatal("distinct (StopOutput, Public) pairs digest to the same session id")
	}
}
