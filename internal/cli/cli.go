// Package cli shares flag plumbing between the cmd/ tools: the
// processor-layout flag set (which must stay identical across tools — a
// layout mismatch between parties aborts the protocol handshake) and the
// standard garbled-cost report.
package cli

import (
	"context"
	"crypto/tls"
	"crypto/x509"
	"flag"
	"fmt"
	"os"
	"time"

	"arm2gc"
	"arm2gc/internal/certwatch"
)

// LayoutFlags registers the five processor-layout flags on the process
// flag set; call the returned function after flag.Parse to assemble the
// Layout. imemNote is appended to the -imem-words usage text (the
// two-party tool documents the both-parties-must-agree rule there).
func LayoutFlags(imemNote string) func() arm2gc.Layout {
	imem := flag.Int("imem-words", 64, "instruction memory size (words, power of two)"+imemNote)
	alice := flag.Int("alice-words", 4, "size of Alice's input region (words)")
	bob := flag.Int("bob-words", 4, "size of Bob's input region (words)")
	out := flag.Int("out-words", 4, "size of the output region (words)")
	scratch := flag.Int("scratch", 64, "scratch+stack region (words)")
	return func() arm2gc.Layout {
		return arm2gc.Layout{
			IMemWords: *imem, AliceWords: *alice, BobWords: *bob,
			OutWords: *out, ScratchWords: *scratch,
		}
	}
}

// SessionOpts is the shared session-option flag set (see SessionFlags).
type SessionOpts struct {
	maxCycles  *int
	cycleBatch *int
	outputMode *string
	pipeline   *int
	workers    *int
	readAhead  *int
	memBackend *string
}

// SessionFlags registers the session-option flags the two-party tools
// share: -max-cycles, -cycle-batch, -output-mode, -pipeline, -workers,
// -read-ahead and -mem-backend. Call Options after flag.Parse to assemble
// the option list.
func SessionFlags() *SessionOpts {
	return &SessionOpts{
		maxCycles:  flag.Int("max-cycles", 1_000_000, "cycle budget"),
		cycleBatch: flag.Int("cycle-batch", 1, "cycles of garbled tables per network frame (both parties must agree)"),
		outputMode: flag.String("output-mode", "both", "who learns the outputs: both | garbler | evaluator (both parties must agree)"),
		pipeline:   flag.Int("pipeline", 0, "garbler-side lookahead: frames garbled ahead of the network writer (0 = serial)"),
		workers:    flag.Int("workers", 1, "per-cycle classify/garble worker goroutines (1 = serial; a client proposal is capped by the server's registered count)"),
		readAhead:  flag.Int("read-ahead", 0, "evaluator-side lookahead: frames buffered off the socket ahead of the cycle loop (0 = synchronous)"),
		memBackend: flag.String("mem-backend", "auto", "oblivious data-memory backend: auto | scan | sqrt-oram (both parties must agree; auto picks by memory size)"),
	}
}

// Options assembles the session options. With onlySet, options whose
// flags were left at their defaults are omitted — the client role uses
// this so unset knobs negotiate to the server's registered defaults
// instead of proposing this binary's flag defaults.
func (o *SessionOpts) Options(onlySet bool) ([]arm2gc.Option, error) {
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	include := func(name string) bool { return !onlySet || set[name] }
	var opts []arm2gc.Option
	if include("max-cycles") {
		opts = append(opts, arm2gc.WithMaxCycles(*o.maxCycles))
	}
	if include("cycle-batch") {
		opts = append(opts, arm2gc.WithCycleBatch(*o.cycleBatch))
	}
	if include("output-mode") {
		mode, err := ParseOutputMode(*o.outputMode)
		if err != nil {
			return nil, err
		}
		opts = append(opts, arm2gc.WithOutputMode(mode))
	}
	if include("pipeline") {
		opts = append(opts, arm2gc.WithPipeline(*o.pipeline))
	}
	if include("workers") {
		opts = append(opts, arm2gc.WithWorkers(*o.workers))
	}
	if include("read-ahead") {
		opts = append(opts, arm2gc.WithReadAhead(*o.readAhead))
	}
	if include("mem-backend") {
		opts = append(opts, arm2gc.WithMemoryBackend(*o.memBackend))
	}
	return opts, nil
}

// TLSOpts is the shared TLS flag set (see TLSFlags).
type TLSOpts struct {
	enable     *bool
	cert       *string
	key        *string
	ca         *string
	serverName *string
	insecure   *bool
	rotate     *time.Duration
}

// TLSFlags registers the TLS flags the two-party tools share: -tls,
// -tls-cert, -tls-key, -tls-ca, -tls-server-name and -tls-insecure. The
// serving side enables TLS by passing -tls-cert/-tls-key (with -tls-ca
// switching on mutual TLS); the dialing side enables it with -tls (or
// implicitly by any other TLS flag) and trusts -tls-ca when given,
// the system roots otherwise.
func TLSFlags() *TLSOpts {
	return &TLSOpts{
		enable:     flag.Bool("tls", false, "client: dial with TLS (implied by the other -tls-* flags)"),
		cert:       flag.String("tls-cert", "", "PEM certificate: the server's identity, or the client's under mutual TLS"),
		key:        flag.String("tls-key", "", "PEM private key for -tls-cert"),
		ca:         flag.String("tls-ca", "", "PEM CA bundle: server: require+verify client certs (mutual TLS); client: trust this CA instead of the system roots"),
		serverName: flag.String("tls-server-name", "", "client: expected server certificate name (default: the dialed host)"),
		insecure:   flag.Bool("tls-insecure", false, "client: skip server certificate verification (dev only)"),
		rotate:     flag.Duration("tls-rotate", 0, "server: re-read -tls-cert/-tls-key when they change on disk, checking at most this often (0 = load once; rotation without restart)"),
	}
}

// caPool loads the -tls-ca bundle.
func (o *TLSOpts) caPool() (*x509.CertPool, error) {
	return loadCAPool(*o.ca)
}

// ServerConfig assembles the serving TLS config, nil when the TLS flags
// are unset (plaintext). -tls-cert/-tls-key are both required to enable;
// -tls-ca additionally demands and verifies client certificates. Any
// other TLS flag without the cert pair is an error, never a silent
// plaintext server.
func (o *TLSOpts) ServerConfig() (*tls.Config, error) {
	if *o.cert == "" && *o.key == "" {
		if *o.enable || *o.ca != "" || *o.insecure || *o.serverName != "" || *o.rotate > 0 {
			return nil, fmt.Errorf("server TLS needs -tls-cert and -tls-key; the other -tls flags alone do not enable it")
		}
		return nil, nil
	}
	if *o.cert == "" || *o.key == "" {
		return nil, fmt.Errorf("-tls-cert and -tls-key must be passed together")
	}
	cfg := &tls.Config{MinVersion: tls.VersionTLS12}
	if *o.rotate > 0 {
		reloader, err := certwatch.New(*o.cert, *o.key,
			certwatch.WithPoll(*o.rotate),
			certwatch.WithLogf(func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, format+"\n", args...)
			}))
		if err != nil {
			return nil, err
		}
		cfg.GetCertificate = reloader.GetCertificate
	} else {
		cert, err := tls.LoadX509KeyPair(*o.cert, *o.key)
		if err != nil {
			return nil, err
		}
		cfg.Certificates = []tls.Certificate{cert}
	}
	if *o.ca != "" {
		pool, err := o.caPool()
		if err != nil {
			return nil, err
		}
		cfg.ClientAuth = tls.RequireAndVerifyClientCert
		cfg.ClientCAs = pool
	}
	return cfg, nil
}

// ClientConfig assembles the dialing TLS config, nil when no TLS flag was
// touched (plaintext). -tls-cert/-tls-key add a client certificate for
// mutual TLS.
func (o *TLSOpts) ClientConfig() (*tls.Config, error) {
	if !*o.enable && *o.cert == "" && *o.key == "" && *o.ca == "" &&
		*o.serverName == "" && !*o.insecure {
		return nil, nil
	}
	cfg := &tls.Config{
		ServerName:         *o.serverName,
		InsecureSkipVerify: *o.insecure,
		MinVersion:         tls.VersionTLS12,
	}
	if *o.ca != "" {
		pool, err := o.caPool()
		if err != nil {
			return nil, err
		}
		cfg.RootCAs = pool
	}
	if *o.cert != "" || *o.key != "" {
		if *o.cert == "" || *o.key == "" {
			return nil, fmt.Errorf("-tls-cert and -tls-key must be passed together")
		}
		cert, err := tls.LoadX509KeyPair(*o.cert, *o.key)
		if err != nil {
			return nil, err
		}
		cfg.Certificates = []tls.Certificate{cert}
	}
	return cfg, nil
}

// ParseOutputMode maps the -output-mode flag values onto OutputMode.
func ParseOutputMode(s string) (arm2gc.OutputMode, error) {
	switch s {
	case "both":
		return arm2gc.OutputBoth, nil
	case "garbler":
		return arm2gc.OutputGarblerOnly, nil
	case "evaluator":
		return arm2gc.OutputEvaluatorOnly, nil
	}
	return 0, fmt.Errorf("unknown -output-mode %q (want both, garbler or evaluator)", s)
}

// PrintCost prices a program in garbled tables (schedule only, no
// cryptography) through the shared Engine and prints the standard report.
func PrintCost(ctx context.Context, prog *arm2gc.Program, maxCycles int) error {
	sess, err := arm2gc.DefaultEngine.Session(prog, arm2gc.WithMaxCycles(maxCycles))
	if err != nil {
		return err
	}
	info, err := sess.Count(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d cycles, %d garbled tables (conventional GC: %d)\n",
		prog.Name, info.Cycles, info.GarbledTables, info.Conventional)
	return nil
}
