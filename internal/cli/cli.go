// Package cli shares flag plumbing between the cmd/ tools: the
// processor-layout flag set (which must stay identical across tools — a
// layout mismatch between parties aborts the protocol handshake) and the
// standard garbled-cost report.
package cli

import (
	"context"
	"flag"
	"fmt"

	"arm2gc"
)

// LayoutFlags registers the five processor-layout flags on the process
// flag set; call the returned function after flag.Parse to assemble the
// Layout. imemNote is appended to the -imem-words usage text (the
// two-party tool documents the both-parties-must-agree rule there).
func LayoutFlags(imemNote string) func() arm2gc.Layout {
	imem := flag.Int("imem-words", 64, "instruction memory size (words, power of two)"+imemNote)
	alice := flag.Int("alice-words", 4, "size of Alice's input region (words)")
	bob := flag.Int("bob-words", 4, "size of Bob's input region (words)")
	out := flag.Int("out-words", 4, "size of the output region (words)")
	scratch := flag.Int("scratch", 64, "scratch+stack region (words)")
	return func() arm2gc.Layout {
		return arm2gc.Layout{
			IMemWords: *imem, AliceWords: *alice, BobWords: *bob,
			OutWords: *out, ScratchWords: *scratch,
		}
	}
}

// PrintCost prices a program in garbled tables (schedule only, no
// cryptography) through the shared Engine and prints the standard report.
func PrintCost(ctx context.Context, prog *arm2gc.Program, maxCycles int) error {
	sess, err := arm2gc.DefaultEngine.Session(prog, arm2gc.WithMaxCycles(maxCycles))
	if err != nil {
		return err
	}
	info, err := sess.Count(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d cycles, %d garbled tables (conventional GC: %d)\n",
		prog.Name, info.Cycles, info.GarbledTables, info.Conventional)
	return nil
}
