package cli

import (
	"crypto/tls"
	"crypto/x509"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"arm2gc/internal/gateway"
)

// GatewayOpts is the fleet-gateway flag set (see GatewayFlags).
type GatewayOpts struct {
	backends      *string
	replicas      *int
	maxInflight   *int
	noAffinity    *bool
	rate          *float64
	burst         *float64
	retryAfter    *time.Duration
	programs      *string
	probeInterval *time.Duration
	probeTimeout  *time.Duration
	dialTimeout   *time.Duration
	adminToken    *string

	backendTLS      *bool
	backendCA       *string
	backendName     *string
	backendInsecure *bool
}

// GatewayFlags registers the -role gateway flags: the backend fleet,
// sharding and shedding knobs, health-probe cadence, the admin bearer
// token, and the gateway→backend TLS hop (-backend-tls*). The gateway's
// own listener reuses the shared -tls-cert/-tls-key flags.
func GatewayFlags() *GatewayOpts {
	return &GatewayOpts{
		backends:      flag.String("backends", "", "gateway: comma-separated backend garbler addresses (host:port,...)"),
		replicas:      flag.Int("gw-replicas", 0, "gateway: virtual nodes per backend on the hash ring (0 = default)"),
		maxInflight:   flag.Int("gw-max-inflight", 0, "gateway: concurrent sessions per backend before spilling to the next ring node (0 = unbounded)"),
		noAffinity:    flag.Bool("gw-no-affinity", false, "gateway: route round-robin instead of pinning each program to its hash-ring backend"),
		rate:          flag.Float64("gw-rate", 0, "gateway: sessions/second each client IP may open before being shed (0 = no shedding)"),
		burst:         flag.Float64("gw-burst", 0, "gateway: per-peer burst allowance on top of -gw-rate"),
		retryAfter:    flag.Duration("gw-retry-after", 0, "gateway: Retry-After hint attached to shed rejections (0 = default)"),
		programs:      flag.String("gw-programs", "", "gateway: comma-separated program allowlist (empty = route everything)"),
		probeInterval: flag.Duration("gw-probe-interval", 0, "gateway: backend health-check period (0 = default)"),
		probeTimeout:  flag.Duration("gw-probe-timeout", 0, "gateway: single health-probe budget (0 = default)"),
		dialTimeout:   flag.Duration("gw-dial-timeout", 0, "gateway: single backend-dial budget (0 = default)"),
		adminToken:    flag.String("admin-token", "", "gateway: bearer token for the /admin endpoint on -metrics (empty = admin disabled)"),

		backendTLS:      flag.Bool("backend-tls", false, "gateway: dial backends with TLS (implied by the other -backend-tls-* flags)"),
		backendCA:       flag.String("backend-tls-ca", "", "gateway: PEM CA bundle to verify backend certificates (default: system roots)"),
		backendName:     flag.String("backend-tls-server-name", "", "gateway: expected backend certificate name (default: each backend's host)"),
		backendInsecure: flag.Bool("backend-tls-insecure", false, "gateway: skip backend certificate verification (dev only)"),
	}
}

// AdminToken reports the -admin-token value.
func (o *GatewayOpts) AdminToken() string { return *o.adminToken }

// Config assembles the gateway configuration. listenerTLS is the
// gateway's own serving config (from TLSOpts.ServerConfig; nil for
// plaintext); logf routes diagnostics.
func (o *GatewayOpts) Config(listenerTLS *tls.Config, logf func(format string, args ...any)) (gateway.Config, error) {
	backends := splitList(*o.backends)
	if len(backends) == 0 {
		return gateway.Config{}, fmt.Errorf("-role gateway needs -backends host:port[,host:port...]")
	}
	backendTLS, err := o.backendTLSConfig()
	if err != nil {
		return gateway.Config{}, err
	}
	return gateway.Config{
		Backends:        backends,
		Replicas:        *o.replicas,
		MaxInflight:     *o.maxInflight,
		DisableAffinity: *o.noAffinity,
		RatePerPeer:     *o.rate,
		BurstPerPeer:    *o.burst,
		RetryAfter:      *o.retryAfter,
		Programs:        splitList(*o.programs),
		ProbeInterval:   *o.probeInterval,
		ProbeTimeout:    *o.probeTimeout,
		DialTimeout:     *o.dialTimeout,
		BackendTLS:      backendTLS,
		TLS:             listenerTLS,
		Logf:            logf,
	}, nil
}

// backendTLSConfig assembles the gateway→backend TLS config, nil when no
// -backend-tls flag was touched (plaintext hop).
func (o *GatewayOpts) backendTLSConfig() (*tls.Config, error) {
	if !*o.backendTLS && *o.backendCA == "" && *o.backendName == "" && !*o.backendInsecure {
		return nil, nil
	}
	cfg := &tls.Config{
		ServerName:         *o.backendName,
		InsecureSkipVerify: *o.backendInsecure,
		MinVersion:         tls.VersionTLS12,
	}
	if *o.backendCA != "" {
		pool, err := loadCAPool(*o.backendCA)
		if err != nil {
			return nil, err
		}
		cfg.RootCAs = pool
	}
	return cfg, nil
}

// loadCAPool reads a PEM CA bundle into a cert pool.
func loadCAPool(path string) (*x509.CertPool, error) {
	pem, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	pool := x509.NewCertPool()
	if !pool.AppendCertsFromPEM(pem) {
		return nil, fmt.Errorf("no certificates found in %s", path)
	}
	return pool, nil
}

// splitList splits a comma-separated flag value, dropping empties.
func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}
