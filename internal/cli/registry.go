package cli

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"arm2gc"
)

// RegistryManifest is the on-disk schema of a server program registry
// (see LoadRegistry): a default layout plus one entry per program. Paths
// are resolved relative to the manifest file, so a registry directory is
// relocatable as a unit.
//
//	{
//	  "layout": {"imem_words": 64, "alice_words": 1, "bob_words": 1,
//	             "out_words": 2, "scratch_words": 16},
//	  "programs": [
//	    {"name": "addmax", "c": "addmax.c",
//	     "garbler_input": [1000], "max_cycles": 10000,
//	     "cycle_batch": 8, "pipeline": 2, "workers": 4,
//	     "output_mode": "both", "memory_backend": "auto",
//	     "auth_token": "team-a-secret", "garble_ahead": 4},
//	    {"name": "hamming", "asm": "hamming.s",
//	     "layout": {"alice_words": 4, "bob_words": 4, "out_words": 1}}
//	  ]
//	}
type RegistryManifest struct {
	Layout   *RegistryLayout   `json:"layout"`
	Programs []RegistryProgram `json:"programs"`
}

// RegistryLayout mirrors arm2gc.Layout in manifest JSON. Zero fields in a
// per-program layout fall back to the manifest-level default, then to the
// flag defaults the serve role runs with.
type RegistryLayout struct {
	IMemWords    int `json:"imem_words"`
	AliceWords   int `json:"alice_words"`
	BobWords     int `json:"bob_words"`
	OutWords     int `json:"out_words"`
	ScratchWords int `json:"scratch_words"`
}

// RegistryProgram is one hosted program: a source file (exactly one of c
// or asm), the server's private input, and the registration's option
// bounds. Zero option fields are simply not passed, taking the API
// defaults.
//
// GarbleAhead tunes the server's garble-ahead pool for this program (it
// only matters when the serve role runs with pooling on): absent, the
// program is pooled at the pool's default depth; 0 opts it out; a
// positive value is its target depth of ready pre-garbled streams.
type RegistryProgram struct {
	Name         string          `json:"name"`
	C            string          `json:"c"`
	Asm          string          `json:"asm"`
	GarblerInput []uint32        `json:"garbler_input"`
	MaxCycles    int             `json:"max_cycles"`
	CycleBatch   int             `json:"cycle_batch"`
	Pipeline     int             `json:"pipeline"`
	Workers      int             `json:"workers"`
	OutputMode   string          `json:"output_mode"`
	MemBackend   string          `json:"memory_backend"`
	AuthToken    string          `json:"auth_token"`
	GarbleAhead  *int            `json:"garble_ahead,omitempty"`
	Layout       *RegistryLayout `json:"layout"`
}

// RegistryEntry is a loaded, compiled, ready-to-Register program.
type RegistryEntry struct {
	Name     string
	Program  *arm2gc.Program
	Options  []arm2gc.Option
	Warnings []string
}

// overlay fills l's zero fields from base.
func (l RegistryLayout) overlay(base arm2gc.Layout) arm2gc.Layout {
	pick := func(v, def int) int {
		if v != 0 {
			return v
		}
		return def
	}
	return arm2gc.Layout{
		IMemWords:    pick(l.IMemWords, base.IMemWords),
		AliceWords:   pick(l.AliceWords, base.AliceWords),
		BobWords:     pick(l.BobWords, base.BobWords),
		OutWords:     pick(l.OutWords, base.OutWords),
		ScratchWords: pick(l.ScratchWords, base.ScratchWords),
	}
}

// LoadRegistry reads a registry manifest, compiles every program against
// its layout, and returns the entries ready for Server.Register. base is
// the layout the zero fields of manifest layouts fall back to (typically
// the serve role's layout flags). Every error names the manifest and the
// offending entry.
func LoadRegistry(path string, base arm2gc.Layout) ([]RegistryEntry, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("registry: %w", err)
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	var man RegistryManifest
	if err := dec.Decode(&man); err != nil {
		return nil, fmt.Errorf("registry %s: %w", path, err)
	}
	if len(man.Programs) == 0 {
		return nil, fmt.Errorf("registry %s: no programs", path)
	}
	defLayout := base
	if man.Layout != nil {
		defLayout = man.Layout.overlay(base)
	}
	dir := filepath.Dir(path)
	seen := make(map[string]bool)
	entries := make([]RegistryEntry, 0, len(man.Programs))
	for i, rp := range man.Programs {
		entry, err := loadProgram(dir, rp, defLayout)
		if err != nil {
			return nil, fmt.Errorf("registry %s: program %d (%q): %w", path, i, rp.Name, err)
		}
		if seen[entry.Name] {
			return nil, fmt.Errorf("registry %s: duplicate program name %q", path, entry.Name)
		}
		seen[entry.Name] = true
		entries = append(entries, entry)
	}
	return entries, nil
}

func loadProgram(dir string, rp RegistryProgram, defLayout arm2gc.Layout) (RegistryEntry, error) {
	var e RegistryEntry
	if rp.Name == "" {
		return e, fmt.Errorf("missing name")
	}
	if (rp.C == "") == (rp.Asm == "") {
		return e, fmt.Errorf("exactly one of \"c\" or \"asm\" must be set")
	}
	layout := defLayout
	if rp.Layout != nil {
		layout = rp.Layout.overlay(defLayout)
	}
	srcPath := rp.C
	if srcPath == "" {
		srcPath = rp.Asm
	}
	if !filepath.IsAbs(srcPath) {
		srcPath = filepath.Join(dir, srcPath)
	}
	src, err := os.ReadFile(srcPath)
	if err != nil {
		return e, err
	}
	var prog *arm2gc.Program
	var warnings []string
	if rp.C != "" {
		prog, warnings, err = arm2gc.CompileC(rp.Name, string(src), layout)
	} else {
		prog, err = arm2gc.Assemble(rp.Name, string(src), layout)
	}
	if err != nil {
		return e, err
	}
	var opts []arm2gc.Option
	if rp.GarblerInput != nil {
		opts = append(opts, arm2gc.WithGarblerInput(rp.GarblerInput))
	}
	if rp.MaxCycles != 0 {
		opts = append(opts, arm2gc.WithMaxCycles(rp.MaxCycles))
	}
	if rp.CycleBatch != 0 {
		opts = append(opts, arm2gc.WithCycleBatch(rp.CycleBatch))
	}
	if rp.Pipeline != 0 {
		opts = append(opts, arm2gc.WithPipeline(rp.Pipeline))
	}
	if rp.Workers != 0 {
		opts = append(opts, arm2gc.WithWorkers(rp.Workers))
	}
	if rp.OutputMode != "" {
		mode, err := ParseOutputMode(rp.OutputMode)
		if err != nil {
			return e, err
		}
		opts = append(opts, arm2gc.WithOutputMode(mode))
	}
	if rp.MemBackend != "" {
		opts = append(opts, arm2gc.WithMemoryBackend(rp.MemBackend))
	}
	if rp.AuthToken != "" {
		opts = append(opts, arm2gc.WithAuthToken(rp.AuthToken))
	}
	if rp.GarbleAhead != nil {
		switch n := *rp.GarbleAhead; {
		case n < 0:
			return e, fmt.Errorf("garble_ahead %d: depth cannot be negative (0 opts out)", n)
		case n == 0:
			opts = append(opts, arm2gc.WithGarbleAheadOff())
		default:
			opts = append(opts, arm2gc.WithGarbleAheadDepth(n))
		}
	}
	return RegistryEntry{Name: rp.Name, Program: prog, Options: opts, Warnings: warnings}, nil
}
