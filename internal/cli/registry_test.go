package cli

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"arm2gc"
)

const addC = `void gc_main(const int *a, const int *b, int *c) { c[0] = a[0] + b[0]; }`
const xorC = `void gc_main(const int *a, const int *b, int *c) { c[0] = a[0] ^ b[0]; }`

func baseLayout() arm2gc.Layout {
	return arm2gc.Layout{IMemWords: 64, AliceWords: 1, BobWords: 1, OutWords: 2, ScratchWords: 16}
}

// writeRegistry lays a manifest plus source files into a temp dir and
// returns the manifest path.
func writeRegistry(t *testing.T, manifest string, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join(dir, "registry.json")
	if err := os.WriteFile(path, []byte(manifest), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadRegistry(t *testing.T) {
	path := writeRegistry(t, `{
		"layout": {"imem_words": 64, "alice_words": 1, "bob_words": 1, "out_words": 2, "scratch_words": 16},
		"programs": [
			{"name": "add", "c": "add.c", "garbler_input": [7], "max_cycles": 10000,
			 "cycle_batch": 8, "auth_token": "secret-a"},
			{"name": "xor", "c": "xor.c", "layout": {"out_words": 1}, "output_mode": "evaluator"}
		]
	}`, map[string]string{"add.c": addC, "xor.c": xorC})

	entries, err := LoadRegistry(path, baseLayout())
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("loaded %d entries, want 2", len(entries))
	}
	if entries[0].Name != "add" || entries[1].Name != "xor" {
		t.Fatalf("names = %q, %q", entries[0].Name, entries[1].Name)
	}
	// The per-program layout overlays the manifest default.
	if got := entries[1].Program.Layout.OutWords; got != 1 {
		t.Errorf("xor OutWords = %d, want the per-program override 1", got)
	}
	if got := entries[1].Program.Layout.ScratchWords; got != 16 {
		t.Errorf("xor ScratchWords = %d, want the manifest default 16", got)
	}
	// The entries must register cleanly — options included — on a Server.
	srv := arm2gc.NewServer(arm2gc.NewEngine())
	for _, e := range entries {
		if err := srv.Register(e.Name, e.Program, e.Options...); err != nil {
			t.Fatalf("Register(%q): %v", e.Name, err)
		}
	}
}

func TestLoadRegistryErrors(t *testing.T) {
	cases := []struct {
		name     string
		manifest string
		files    map[string]string
		wantErr  string
	}{
		{
			name:     "not json",
			manifest: `{programs: [}`,
			wantErr:  "invalid character",
		},
		{
			name:     "no programs",
			manifest: `{"programs": []}`,
			wantErr:  "no programs",
		},
		{
			name:     "missing name",
			manifest: `{"programs": [{"c": "add.c"}]}`,
			files:    map[string]string{"add.c": addC},
			wantErr:  "missing name",
		},
		{
			name:     "neither source",
			manifest: `{"programs": [{"name": "p"}]}`,
			wantErr:  `exactly one of "c" or "asm"`,
		},
		{
			name:     "both sources",
			manifest: `{"programs": [{"name": "p", "c": "a.c", "asm": "a.s"}]}`,
			wantErr:  `exactly one of "c" or "asm"`,
		},
		{
			name:     "missing source file",
			manifest: `{"programs": [{"name": "p", "c": "nope.c"}]}`,
			wantErr:  "nope.c",
		},
		{
			name:     "bad output mode",
			manifest: `{"programs": [{"name": "p", "c": "add.c", "output_mode": "everyone"}]}`,
			files:    map[string]string{"add.c": addC},
			wantErr:  "output-mode",
		},
		{
			name: "duplicate names",
			manifest: `{"programs": [{"name": "p", "c": "add.c"},
				{"name": "p", "c": "add.c"}]}`,
			files:   map[string]string{"add.c": addC},
			wantErr: "duplicate program name",
		},
		{
			name:     "unknown field",
			manifest: `{"programs": [{"name": "p", "c": "add.c", "max_cycle": 5}]}`,
			files:    map[string]string{"add.c": addC},
			wantErr:  "unknown field",
		},
		{
			name:     "source does not compile",
			manifest: `{"programs": [{"name": "p", "c": "bad.c"}]}`,
			files:    map[string]string{"bad.c": "void gc_main(int x) {"},
			wantErr:  "",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := writeRegistry(t, tc.manifest, tc.files)
			_, err := LoadRegistry(path, baseLayout())
			if err == nil {
				t.Fatal("LoadRegistry accepted a bad manifest")
			}
			if tc.wantErr != "" && !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
	if _, err := LoadRegistry(filepath.Join(t.TempDir(), "absent.json"), baseLayout()); err == nil {
		t.Fatal("LoadRegistry accepted a missing manifest")
	}
}
