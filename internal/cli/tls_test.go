package cli

import (
	"crypto/tls"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"arm2gc/internal/devcert"
)

func tlsOpts(enable bool, cert, key, ca, serverName string, insecure bool) *TLSOpts {
	rotate := time.Duration(0)
	return &TLSOpts{enable: &enable, cert: &cert, key: &key, ca: &ca,
		serverName: &serverName, insecure: &insecure, rotate: &rotate}
}

func TestTLSOptsConfigs(t *testing.T) {
	dir := t.TempDir()
	if err := devcert.WriteFiles(dir); err != nil {
		t.Fatal(err)
	}
	caPem := filepath.Join(dir, "ca.pem")
	cert := filepath.Join(dir, "server.pem")
	key := filepath.Join(dir, "server-key.pem")

	t.Run("no flags means plaintext", func(t *testing.T) {
		o := tlsOpts(false, "", "", "", "", false)
		if cfg, err := o.ServerConfig(); cfg != nil || err != nil {
			t.Fatalf("ServerConfig = %v, %v; want nil, nil", cfg, err)
		}
		if cfg, err := o.ClientConfig(); cfg != nil || err != nil {
			t.Fatalf("ClientConfig = %v, %v; want nil, nil", cfg, err)
		}
	})
	t.Run("-tls alone must not produce a plaintext server", func(t *testing.T) {
		o := tlsOpts(true, "", "", "", "", false)
		if _, err := o.ServerConfig(); err == nil || !strings.Contains(err.Error(), "-tls-cert") {
			t.Fatalf("ServerConfig = %v, want an error naming -tls-cert", err)
		}
		cfg, err := o.ClientConfig()
		if err != nil || cfg == nil {
			t.Fatalf("ClientConfig = %v, %v; want a config (system roots)", cfg, err)
		}
	})
	t.Run("-tls-ca alone on a server errors", func(t *testing.T) {
		o := tlsOpts(false, "", "", caPem, "", false)
		if _, err := o.ServerConfig(); err == nil {
			t.Fatal("ServerConfig accepted -tls-ca without a cert pair")
		}
	})
	t.Run("cert without key errors both ways", func(t *testing.T) {
		o := tlsOpts(false, cert, "", "", "", false)
		if _, err := o.ServerConfig(); err == nil {
			t.Fatal("ServerConfig accepted -tls-cert without -tls-key")
		}
		if _, err := o.ClientConfig(); err == nil {
			t.Fatal("ClientConfig accepted -tls-cert without -tls-key")
		}
	})
	t.Run("cert pair serves TLS, plus ca means mutual", func(t *testing.T) {
		o := tlsOpts(false, cert, key, "", "", false)
		cfg, err := o.ServerConfig()
		if err != nil || cfg == nil || len(cfg.Certificates) != 1 {
			t.Fatalf("ServerConfig = %+v, %v", cfg, err)
		}
		if cfg.ClientAuth != tls.NoClientCert {
			t.Fatalf("ClientAuth = %v without -tls-ca", cfg.ClientAuth)
		}
		o = tlsOpts(false, cert, key, caPem, "", false)
		cfg, err = o.ServerConfig()
		if err != nil || cfg.ClientAuth != tls.RequireAndVerifyClientCert || cfg.ClientCAs == nil {
			t.Fatalf("mutual ServerConfig = %+v, %v", cfg, err)
		}
	})
	t.Run("client trusts the ca and carries its cert pair", func(t *testing.T) {
		o := tlsOpts(false, filepath.Join(dir, "client.pem"), filepath.Join(dir, "client-key.pem"), caPem, "srv.example", false)
		cfg, err := o.ClientConfig()
		if err != nil || cfg == nil || cfg.RootCAs == nil || len(cfg.Certificates) != 1 ||
			cfg.ServerName != "srv.example" {
			t.Fatalf("ClientConfig = %+v, %v", cfg, err)
		}
	})
	t.Run("-tls-rotate serves via GetCertificate", func(t *testing.T) {
		o := tlsOpts(false, cert, key, "", "", false)
		rotate := time.Second
		o.rotate = &rotate
		cfg, err := o.ServerConfig()
		if err != nil || cfg == nil || cfg.GetCertificate == nil {
			t.Fatalf("rotating ServerConfig = %+v, %v", cfg, err)
		}
		if len(cfg.Certificates) != 0 {
			t.Fatal("rotating config pins a static certificate alongside GetCertificate")
		}
		got, err := cfg.GetCertificate(nil)
		if err != nil || got == nil {
			t.Fatalf("GetCertificate = %v, %v", got, err)
		}
	})
	t.Run("-tls-rotate alone on a server errors", func(t *testing.T) {
		o := tlsOpts(false, "", "", "", "", false)
		rotate := time.Second
		o.rotate = &rotate
		if _, err := o.ServerConfig(); err == nil {
			t.Fatal("ServerConfig accepted -tls-rotate without a cert pair")
		}
	})
	t.Run("bad ca bundle errors", func(t *testing.T) {
		o := tlsOpts(false, cert, key, filepath.Join(dir, "server-key.pem"), "", false)
		if _, err := o.ServerConfig(); err == nil {
			t.Fatal("ServerConfig accepted a CA bundle with no certificates")
		}
	})
}
