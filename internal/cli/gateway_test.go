package cli

import (
	"testing"
	"time"
)

// testGatewayOpts builds a GatewayOpts without touching the process flag
// set (which can only be registered once per test binary), mirroring the
// TLSOpts test idiom.
func testGatewayOpts(mutate func(o *GatewayOpts)) *GatewayOpts {
	var (
		backends, programs, token, ca, name string
		replicas, maxInflight               int
		noAffinity, btls, insecure          bool
		rate, burst                         float64
		retryAfter, probeI, probeT, dialT   time.Duration
	)
	o := &GatewayOpts{
		backends: &backends, replicas: &replicas, maxInflight: &maxInflight,
		noAffinity: &noAffinity, rate: &rate, burst: &burst,
		retryAfter: &retryAfter, programs: &programs,
		probeInterval: &probeI, probeTimeout: &probeT, dialTimeout: &dialT,
		adminToken: &token,
		backendTLS: &btls, backendCA: &ca, backendName: &name,
		backendInsecure: &insecure,
	}
	if mutate != nil {
		mutate(o)
	}
	return o
}

func TestGatewayOptsConfig(t *testing.T) {
	// No backends is a hard error, not a silent zero-backend gateway.
	if _, err := testGatewayOpts(nil).Config(nil, nil); err == nil {
		t.Fatal("Config accepted an empty -backends")
	}

	o := testGatewayOpts(func(o *GatewayOpts) {
		*o.backends = " a:9001, b:9002,,"
		*o.programs = "add,hamming"
		*o.noAffinity = true
		*o.maxInflight = 3
		*o.rate = 2.5
		*o.adminToken = "sesame"
	})
	cfg, err := o.Config(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Backends) != 2 || cfg.Backends[0] != "a:9001" || cfg.Backends[1] != "b:9002" {
		t.Fatalf("backends parsed as %v", cfg.Backends)
	}
	if len(cfg.Programs) != 2 || !cfg.DisableAffinity || cfg.MaxInflight != 3 || cfg.RatePerPeer != 2.5 {
		t.Fatalf("knobs lost in translation: %+v", cfg)
	}
	if cfg.BackendTLS != nil || cfg.TLS != nil {
		t.Fatal("TLS configs materialized from untouched flags")
	}
	if o.AdminToken() != "sesame" {
		t.Fatalf("AdminToken = %q", o.AdminToken())
	}

	// Any -backend-tls-* flag arms the backend hop.
	tcfg, err := testGatewayOpts(func(o *GatewayOpts) {
		*o.backends = "a:9001"
		*o.backendName = "garbler-1"
	}).Config(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tcfg.BackendTLS == nil || tcfg.BackendTLS.ServerName != "garbler-1" {
		t.Fatalf("backend TLS = %+v, want ServerName garbler-1", tcfg.BackendTLS)
	}

	// A bogus CA path fails loudly.
	if _, err := testGatewayOpts(func(o *GatewayOpts) {
		*o.backends = "a:9001"
		*o.backendCA = "/no/such/bundle.pem"
	}).Config(nil, nil); err == nil {
		t.Fatal("Config accepted an unreadable -backend-tls-ca")
	}
}
