package pool

import (
	"math"
	"time"
)

// Adaptive depth. A static per-key depth forces a choice at registration
// time: deep pools burn garbling work (and byte budget) on idle
// programs, shallow ones miss under load spikes. The controller instead
// tracks, per key, an EWMA of the demand inter-arrival time, the
// producer's refill latency, and the hit rate, and sets the target depth
// to the number of entries demand will consume in the time one refill
// takes — the classic Little's-law buffer size — nudged one deeper while
// misses are still happening, clamped between a floor and the registered
// depth (which becomes the per-key cap). An idle program's pool drains
// to the floor; a hot one grows until hits are flat or the cap is hit.
const (
	// ewmaAlpha weighs new observations; ~0.2 remembers the last ~10.
	ewmaAlpha = 0.2

	// missBoostBelow: while the hit-rate EWMA is under this, demand is
	// outrunning supply and the Little's-law estimate is biased low
	// (misses don't consume entries), so the target gets one extra.
	missBoostBelow = 0.9

	// minInterArrival floors the inter-arrival estimate; bursts arriving
	// within the same scheduler tick must not divide by ~zero.
	minInterArrival = 100 * time.Microsecond
)

// depthController adapts one slot's target depth. All methods are called
// under the pool lock.
type depthController struct {
	floor, cap int

	iat     float64 // EWMA inter-arrival time, seconds
	refill  float64 // EWMA producer latency, seconds
	hitRate float64 // EWMA of hit (1) / miss (0) per Get
	lastGet time.Time
	depth   int
}

func newDepthController(floor, cap int, init time.Duration) *depthController {
	if floor < 1 {
		floor = 1
	}
	if cap < floor {
		cap = floor
	}
	return &depthController{
		floor:   floor,
		cap:     cap,
		hitRate: 1, // optimistic start: no evidence of misses yet
		depth:   floor,
		refill:  init.Seconds(),
	}
}

func ewma(old, sample float64) float64 {
	return old + ewmaAlpha*(sample-old)
}

// observeGet folds one demand event (hit or miss) into the estimates and
// recomputes the target.
func (c *depthController) observeGet(now time.Time, hit bool) {
	if !c.lastGet.IsZero() {
		dt := now.Sub(c.lastGet).Seconds()
		if min := minInterArrival.Seconds(); dt < min {
			dt = min
		}
		if c.iat == 0 {
			c.iat = dt
		} else {
			c.iat = ewma(c.iat, dt)
		}
	}
	c.lastGet = now
	sample := 0.0
	if hit {
		sample = 1.0
	}
	c.hitRate = ewma(c.hitRate, sample)
	c.retarget()
}

// observeRefill folds one producer run into the latency estimate.
func (c *depthController) observeRefill(took time.Duration) {
	if c.refill == 0 {
		c.refill = took.Seconds()
	} else {
		c.refill = ewma(c.refill, took.Seconds())
	}
	c.retarget()
}

func (c *depthController) retarget() {
	need := c.floor
	if c.iat > 0 && c.refill > 0 {
		// Entries consumed while one refill is in flight.
		need = int(math.Ceil(c.refill / c.iat))
	}
	if c.hitRate < missBoostBelow {
		need++
	}
	if need < c.floor {
		need = c.floor
	}
	if need > c.cap {
		need = c.cap
	}
	c.depth = need
}

// target is the current depth the refill workers aim for.
func (c *depthController) target() int { return c.depth }
