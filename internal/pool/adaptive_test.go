package pool

import (
	"context"
	"testing"
	"time"

	"arm2gc/internal/proto"
)

// TestDepthControllerScriptedArrivals drives the controller through a
// deterministic load profile and checks the target tracks it: shallow
// while demand is slower than refills, deep under a burst, one extra
// while misses persist, clamped at the cap, and back to the floor when
// the burst ends.
func TestDepthControllerScriptedArrivals(t *testing.T) {
	c := newDepthController(1, 6, 0)
	if c.target() != 1 {
		t.Fatalf("initial target = %d, want the floor", c.target())
	}

	clock := time.Unix(1000, 0)
	step := func(d time.Duration, hit bool) {
		clock = clock.Add(d)
		c.observeGet(clock, hit)
	}

	// Refills take ~100ms (stable across the script).
	for i := 0; i < 10; i++ {
		c.observeRefill(100 * time.Millisecond)
	}

	// Phase 1 — trickle: one Get per second, always hitting. One entry
	// covers a 100ms refill easily; the target stays at the floor.
	for i := 0; i < 20; i++ {
		step(time.Second, true)
	}
	if c.target() != 1 {
		t.Fatalf("trickle target = %d, want 1", c.target())
	}

	// Phase 2 — burst: a Get every 25ms, initially missing (the shallow
	// pool was sized for the trickle). Little's law wants
	// ceil(100ms/25ms) = 4, plus one while the hit EWMA is depressed.
	for i := 0; i < 30; i++ {
		step(25*time.Millisecond, i >= 10)
	}
	if got := c.target(); got < 4 || got > 6 {
		t.Fatalf("burst target = %d, want 4..6", got)
	}

	// Phase 3 — sustained hits at burst rate: the miss boost decays and
	// the target settles on the Little's-law answer.
	for i := 0; i < 40; i++ {
		step(25*time.Millisecond, true)
	}
	if got := c.target(); got != 4 {
		t.Fatalf("settled burst target = %d, want 4", got)
	}

	// Phase 4 — a frenzy beyond the cap: 1ms arrivals want 100 entries;
	// the registered depth caps it.
	for i := 0; i < 60; i++ {
		step(time.Millisecond, i%2 == 0)
	}
	if got := c.target(); got != 6 {
		t.Fatalf("frenzy target = %d, want the cap (6)", got)
	}

	// Phase 5 — back to the trickle: the EWMA forgets the burst and the
	// target drains to the floor. No misses — the deep pool covers the
	// transition, which is exactly the point.
	for i := 0; i < 40; i++ {
		step(time.Second, true)
	}
	if got := c.target(); got != 1 {
		t.Fatalf("post-burst target = %d, want 1", got)
	}
}

// TestDepthControllerBounds: floor/cap degeneracies and the same-instant
// burst guard.
func TestDepthControllerBounds(t *testing.T) {
	c := newDepthController(0, 0, 0) // silly inputs clamp to 1/1
	if c.floor != 1 || c.cap != 1 {
		t.Fatalf("degenerate bounds = %d/%d, want 1/1", c.floor, c.cap)
	}
	c = newDepthController(2, 8, 50*time.Millisecond)
	if c.target() != 2 {
		t.Fatalf("initial target = %d, want floor 2", c.target())
	}
	// Two observations at the same instant must not divide by zero.
	now := time.Unix(5, 0)
	c.observeGet(now, true)
	c.observeGet(now, true)
	c.observeRefill(time.Second)
	if got := c.target(); got != 8 {
		t.Fatalf("same-instant burst target = %d, want cap 8", got)
	}
}

// TestPoolAdaptiveDepth exercises the controller through the Pool API
// with an injected clock: a registered key starts filling only to the
// floor, grows its target under scripted demand, and Stats reports the
// live target.
func TestPoolAdaptiveDepth(t *testing.T) {
	p, err := New(Config{AdaptiveDepth: true, MinDepth: 1, Depth: 4, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	clock := time.Unix(0, 0)
	p.now = func() time.Time { return clock }

	var key Key
	key[0] = 7
	rec := &proto.Recorded{}
	if err := p.Register(key, "prog", 4, func(context.Context) (*proto.Recorded, error) {
		return rec, nil
	}); err != nil {
		t.Fatal(err)
	}

	// Synchronous fill tops up to the adaptive target — the floor, not
	// the registered cap of 4.
	if err := p.Fill(context.Background()); err != nil {
		t.Fatal(err)
	}
	if st := p.Stats(); st.Ready != 1 || st.Programs["prog"].Depth != 1 {
		t.Fatalf("after floor fill: ready=%d depth=%d, want 1/1", st.Ready, st.Programs["prog"].Depth)
	}

	// Teach the controller an expensive refill, then script fast
	// demand: the target must climb toward the cap.
	p.mu.Lock()
	s := p.slots[key]
	for i := 0; i < 5; i++ {
		s.ctrl.observeRefill(400 * time.Millisecond)
	}
	p.mu.Unlock()
	for i := 0; i < 30; i++ {
		clock = clock.Add(150 * time.Millisecond)
		p.Get(key) // mostly misses; demand signal is what matters
	}
	st := p.Stats()
	if d := st.Programs["prog"].Depth; d < 3 || d > 4 {
		t.Fatalf("hot depth = %d, want 3..4 (cap 4)", d)
	}

	// The refill workers honor the moving target.
	if err := p.Fill(context.Background()); err != nil {
		t.Fatal(err)
	}
	if st := p.Stats(); st.Ready < 3 {
		t.Fatalf("ready after hot fill = %d, want >= 3", st.Ready)
	}
}
