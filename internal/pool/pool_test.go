package pool

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"arm2gc/internal/build"
	"arm2gc/internal/circuit"
	"arm2gc/internal/core"
	"arm2gc/internal/proto"
	"arm2gc/internal/sim"
)

// adderConfig builds a small 8-bit adder session config; vary salt to get
// distinct session ids (distinct pool keys) from one circuit.
func adderConfig(t *testing.T, salt int) (proto.Config, []bool) {
	t.Helper()
	b := build.New(fmt.Sprintf("adder%d", salt))
	a := b.Input(circuit.Alice, "a", 8)
	x := b.Input(circuit.Bob, "x", 8)
	b.Output("sum", b.Add(a, x))
	c := b.MustCompile()
	cfg := proto.Config{Circuit: c, Cycles: 1 + salt}
	return cfg, sim.UnpackUint(uint64(40+salt), 8)
}

// recordProducer garbles real entries for tests; every call draws a fresh
// seed, so Seed() doubles as an entry identity.
func recordProducer(cfg proto.Config, alice []bool) Producer {
	return func(ctx context.Context) (*proto.Recorded, error) {
		rec, _, err := proto.RecordGarbler(ctx, cfg, alice, nil)
		return rec, err
	}
}

func keyOf(t *testing.T, cfg proto.Config) Key {
	t.Helper()
	sid, err := cfg.SessionID()
	if err != nil {
		t.Fatal(err)
	}
	return Key(sid)
}

// oneEntrySize produces a throwaway entry to size byte budgets exactly.
func oneEntrySize(t *testing.T, cfg proto.Config, alice []bool) int64 {
	t.Helper()
	rec, _, err := proto.RecordGarbler(context.Background(), cfg, alice, nil)
	if err != nil {
		t.Fatal(err)
	}
	return int64(rec.SizeBytes())
}

// waitReady polls until the pool holds want ready entries (refill workers
// run in the background) or fails the test.
func waitReady(t *testing.T, p *Pool, want int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if got := p.Stats().Ready; got == want {
			return
		} else if time.Now().After(deadline) {
			t.Fatalf("pool holds %d ready entries, want %d", got, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestPoolSingleUse is the core guarantee: with 4 entries filled and 32
// concurrent Gets racing, exactly 4 succeed and no stream is ever handed
// out twice (every Recorded carries a fresh seed; duplicates would share
// one). Run under -race in CI.
func TestPoolSingleUse(t *testing.T) {
	cfg, alice := adderConfig(t, 0)
	p, err := New(Config{Depth: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	key := keyOf(t, cfg)
	if err := p.Register(key, "adder", 0, recordProducer(cfg, alice)); err != nil {
		t.Fatal(err)
	}
	if err := p.Fill(context.Background()); err != nil {
		t.Fatal(err)
	}
	if st := p.Stats(); st.Ready != 4 || st.Refills != 4 {
		t.Fatalf("after Fill: ready %d refills %d, want 4/4", st.Ready, st.Refills)
	}

	var mu sync.Mutex
	seeds := make(map[core.Seed]int)
	var hits int
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rec := p.Get(key)
			if rec == nil {
				return
			}
			mu.Lock()
			seeds[rec.Seed()]++
			hits++
			mu.Unlock()
		}()
	}
	wg.Wait()
	if hits != 4 {
		t.Fatalf("%d Gets succeeded, want exactly 4", hits)
	}
	for s, n := range seeds {
		if n != 1 {
			t.Fatalf("stream %x served %d times", s[:4], n)
		}
	}
	st := p.Stats()
	if st.Hits != 4 || st.Misses != 28 {
		t.Fatalf("hits %d misses %d, want 4/28", st.Hits, st.Misses)
	}
	if got := p.Get(Key{0xff}); got != nil {
		t.Fatal("unregistered key returned an entry")
	}
}

// TestPoolDemandRefill: background workers must restore a key's depth
// after Gets drain it — woken by the Get, not by polling.
func TestPoolDemandRefill(t *testing.T) {
	cfg, alice := adderConfig(t, 0)
	p, err := New(Config{Depth: 3, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	key := keyOf(t, cfg)
	if err := p.Register(key, "adder", 0, recordProducer(cfg, alice)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	p.Start(ctx)
	waitReady(t, p, 3)
	if p.Get(key) == nil {
		t.Fatal("warm pool missed")
	}
	waitReady(t, p, 3) // the Get kicked a refill
	if st := p.Stats(); st.Refills < 4 {
		t.Fatalf("refills %d, want at least 4", st.Refills)
	}
}

// TestPoolConcurrentProducersConsumers races refill workers against
// concurrent Gets (run under -race in CI) and re-checks single use across
// the whole run.
func TestPoolConcurrentProducersConsumers(t *testing.T) {
	cfg, alice := adderConfig(t, 0)
	p, err := New(Config{Depth: 2, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	key := keyOf(t, cfg)
	if err := p.Register(key, "adder", 0, recordProducer(cfg, alice)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	p.Start(ctx)

	var mu sync.Mutex
	seeds := make(map[core.Seed]bool)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if rec := p.Get(key); rec != nil {
					mu.Lock()
					if seeds[rec.Seed()] {
						t.Error("stream served twice")
					}
					seeds[rec.Seed()] = true
					mu.Unlock()
				} else {
					time.Sleep(time.Millisecond)
				}
			}
		}()
	}
	wg.Wait()
	p.Close()
	if len(seeds) == 0 {
		t.Fatal("no Gets were served at all")
	}
	// Close drops whatever is left; a second Close is a no-op.
	p.Close()
	if st := p.Stats(); st.Ready != 0 || st.MemBytes != 0 {
		t.Fatalf("after Close: ready %d memBytes %d", st.Ready, st.MemBytes)
	}
}

// TestPoolByteEviction: a MaxBytes budget of two entries across two keys
// must evict the least-recently-demanded key's oldest entry for the
// incoming one, and never exceed the budget.
func TestPoolByteEviction(t *testing.T) {
	cfgA, aliceA := adderConfig(t, 0)
	cfgB, aliceB := adderConfig(t, 1)
	size := oneEntrySize(t, cfgA, aliceA)
	budget := 2*size + size/2
	p, err := New(Config{Depth: 2, MemBytes: budget, MaxBytes: budget})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	keyA, keyB := keyOf(t, cfgA), keyOf(t, cfgB)
	if err := p.Register(keyA, "a", 0, recordProducer(cfgA, aliceA)); err != nil {
		t.Fatal(err)
	}
	if err := p.Register(keyB, "b", 0, recordProducer(cfgB, aliceB)); err != nil {
		t.Fatal(err)
	}
	// Fill wants 4 entries; only ~2 fit.
	p.Fill(context.Background())
	st := p.Stats()
	if st.MemBytes > budget {
		t.Fatalf("resident %d bytes over the %d budget", st.MemBytes, budget)
	}
	if st.Evictions == 0 {
		t.Fatal("over-budget fill recorded no evictions")
	}
	if st.Ready == 0 || st.Ready > 2 {
		t.Fatalf("ready %d entries, want 1-2 under a 2-entry budget", st.Ready)
	}

	// Demand key A, then overfill: the eviction victim must be B (least
	// recently demanded), never the key being inserted into.
	p.Get(keyA)
	p.Fill(context.Background())
	st = p.Stats()
	if st.Programs["a"].Ready == 0 {
		t.Fatal("recently-demanded key was starved by eviction")
	}
	if st.MemBytes > budget {
		t.Fatalf("resident %d bytes over budget after refill", st.MemBytes)
	}
}

// TestPoolSpill: entries over MemBytes must overflow to crash-safe
// .gcpool files, load back byte-faithfully on Get (deleting the file),
// and vanish on Close.
func TestPoolSpill(t *testing.T) {
	cfg, alice := adderConfig(t, 0)
	size := oneEntrySize(t, cfg, alice)
	dir := t.TempDir()
	p, err := New(Config{Depth: 3, MemBytes: size + size/2, MaxBytes: 10 * size, SpillDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	key := keyOf(t, cfg)
	if err := p.Register(key, "adder", 0, recordProducer(cfg, alice)); err != nil {
		t.Fatal(err)
	}
	if err := p.Fill(context.Background()); err != nil {
		t.Fatal(err)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "*"+spillExt))
	if len(files) != 2 {
		t.Fatalf("%d spill files, want 2 (1 resident + 2 spilled)", len(files))
	}
	if st := p.Stats(); st.Ready != 3 || st.SpillBytes == 0 {
		t.Fatalf("ready %d spillBytes %d after spilling fill", st.Ready, st.SpillBytes)
	}

	// All three entries must come back, distinct, FIFO draining the
	// resident one first and then loading the spilled files (which are
	// deleted as they are consumed).
	seeds := make(map[core.Seed]bool)
	for i := 0; i < 3; i++ {
		rec := p.Get(key)
		if rec == nil {
			t.Fatalf("Get %d missed on a pool holding 3 entries", i)
		}
		seeds[rec.Seed()] = true
	}
	if len(seeds) != 3 {
		t.Fatalf("%d distinct streams served, want 3", len(seeds))
	}
	if files, _ = filepath.Glob(filepath.Join(dir, "*"+spillExt)); len(files) != 0 {
		t.Fatalf("%d spill files survive their entries", len(files))
	}
	if st := p.Stats(); st.SpillBytes != 0 || st.MemBytes != 0 || st.LoadFails != 0 {
		t.Fatalf("drained pool: mem %d spill %d loadFails %d", st.MemBytes, st.SpillBytes, st.LoadFails)
	}

	// Refill to spill again; Close must delete the live files.
	if err := p.Fill(context.Background()); err != nil {
		t.Fatal(err)
	}
	if files, _ = filepath.Glob(filepath.Join(dir, "*"+spillExt)); len(files) == 0 {
		t.Fatal("refill did not spill")
	}
	p.Close()
	if files, _ = filepath.Glob(filepath.Join(dir, "*"+spillExt)); len(files) != 0 {
		t.Fatalf("%d spill files survive Close", len(files))
	}
}

// TestPoolSpillCorruption: a spill file that rots on disk must fail the
// Get loudly into the miss path (live garbling covers it), never serve
// garbage labels.
func TestPoolSpillCorruption(t *testing.T) {
	cfg, alice := adderConfig(t, 0)
	size := oneEntrySize(t, cfg, alice)
	dir := t.TempDir()
	p, err := New(Config{Depth: 2, MemBytes: size / 2, MaxBytes: 10 * size, SpillDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	key := keyOf(t, cfg)
	if err := p.Register(key, "adder", 0, recordProducer(cfg, alice)); err != nil {
		t.Fatal(err)
	}
	if err := p.Fill(context.Background()); err != nil {
		t.Fatal(err)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "*"+spillExt))
	if len(files) != 2 {
		t.Fatalf("%d spill files, want 2 (everything spills below MemBytes)", len(files))
	}
	for _, f := range files {
		if err := os.WriteFile(f, []byte("rot"), 0o600); err != nil {
			t.Fatal(err)
		}
	}
	if rec := p.Get(key); rec != nil {
		t.Fatal("corrupted spill file served a stream")
	}
	if st := p.Stats(); st.LoadFails != 1 {
		t.Fatalf("loadFails %d, want 1", st.LoadFails)
	}
}

// TestPoolStaleSpillCleanup: New must delete leftover .gcpool files of a
// crashed predecessor — they cannot be trusted — and leave foreign files
// alone.
func TestPoolStaleSpillCleanup(t *testing.T) {
	dir := t.TempDir()
	stale := filepath.Join(dir, "entry-999-000001"+spillExt)
	foreign := filepath.Join(dir, "keep.txt")
	for _, f := range []string{stale, foreign} {
		if err := os.WriteFile(f, []byte("x"), 0o600); err != nil {
			t.Fatal(err)
		}
	}
	p, err := New(Config{SpillDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatal("stale spill file survived New")
	}
	if _, err := os.Stat(foreign); err != nil {
		t.Fatal("foreign file was deleted by New")
	}
}

// TestPoolInvalidate drops a key's ready entries (and their spill files)
// while keeping the key registered for refill.
func TestPoolInvalidate(t *testing.T) {
	cfg, alice := adderConfig(t, 0)
	size := oneEntrySize(t, cfg, alice)
	dir := t.TempDir()
	p, err := New(Config{Depth: 3, MemBytes: size + size/2, MaxBytes: 10 * size, SpillDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	key := keyOf(t, cfg)
	if err := p.Register(key, "adder", 0, recordProducer(cfg, alice)); err != nil {
		t.Fatal(err)
	}
	if err := p.Fill(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !p.Invalidate(key) {
		t.Fatal("known key reported unknown")
	}
	if p.Invalidate(Key{1}) {
		t.Fatal("unknown key reported known")
	}
	st := p.Stats()
	if st.Ready != 0 || st.MemBytes != 0 || st.SpillBytes != 0 {
		t.Fatalf("after Invalidate: ready %d mem %d spill %d", st.Ready, st.MemBytes, st.SpillBytes)
	}
	if files, _ := filepath.Glob(filepath.Join(dir, "*"+spillExt)); len(files) != 0 {
		t.Fatalf("%d spill files survive Invalidate", len(files))
	}
	// The key refills afterwards.
	if err := p.Fill(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := p.Stats().Ready; got != 3 {
		t.Fatalf("invalidated key refilled to %d, want 3", got)
	}
}

// TestPoolRegisterValidation covers the registration error paths and the
// closed-pool behavior.
func TestPoolRegisterValidation(t *testing.T) {
	cfg, alice := adderConfig(t, 0)
	p, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	key := keyOf(t, cfg)
	if err := p.Register(key, "adder", 0, nil); err == nil {
		t.Fatal("nil producer accepted")
	}
	if err := p.Register(key, "adder", 0, recordProducer(cfg, alice)); err != nil {
		t.Fatal(err)
	}
	if err := p.Register(key, "adder", 0, recordProducer(cfg, alice)); err == nil {
		t.Fatal("duplicate key accepted")
	}
	p.Close()
	if err := p.Register(Key{2}, "late", 0, recordProducer(cfg, alice)); err == nil {
		t.Fatal("closed pool accepted a registration")
	}
	if rec := p.Get(key); rec != nil {
		t.Fatal("closed pool served an entry")
	}
}

// TestPoolProducerFailure: a failing producer surfaces from Fill, counts
// as a failure, quarantines the key for the pass, and leaves the pool
// serving (misses fall back to live garbling upstream).
func TestPoolProducerFailure(t *testing.T) {
	cfgGood, aliceGood := adderConfig(t, 1)
	p, err := New(Config{Depth: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	bad := func(ctx context.Context) (*proto.Recorded, error) {
		return nil, fmt.Errorf("boom")
	}
	if err := p.Register(Key{3}, "bad", 0, bad); err != nil {
		t.Fatal(err)
	}
	good := keyOf(t, cfgGood)
	if err := p.Register(good, "good", 0, recordProducer(cfgGood, aliceGood)); err != nil {
		t.Fatal(err)
	}
	if err := p.Fill(context.Background()); err == nil {
		t.Fatal("Fill swallowed the producer error")
	}
	st := p.Stats()
	if st.Failures == 0 {
		t.Fatal("producer failure not counted")
	}
	// The healthy key still filled to depth despite the sick one.
	if st.Programs["good"].Ready != 2 {
		t.Fatalf("healthy key ready %d, want 2", st.Programs["good"].Ready)
	}
	if rec := p.Get(Key{3}); rec != nil {
		t.Fatal("failing key served an entry")
	}
	if rec := p.Get(good); rec == nil {
		t.Fatal("healthy key missed")
	}
}

// TestPoolRetire: retiring a key drops its entries and spill files,
// removes the registration (its deficit no longer drives refill), and
// frees the key for a fresh registration.
func TestPoolRetire(t *testing.T) {
	cfg, alice := adderConfig(t, 0)
	size := oneEntrySize(t, cfg, alice)
	dir := t.TempDir()
	p, err := New(Config{Depth: 3, MemBytes: size + size/2, MaxBytes: 10 * size, SpillDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	key := keyOf(t, cfg)
	if err := p.Register(key, "adder", 0, recordProducer(cfg, alice)); err != nil {
		t.Fatal(err)
	}
	if err := p.Fill(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !p.Retire(key) {
		t.Fatal("known key reported unknown")
	}
	if p.Retire(key) {
		t.Fatal("retired key reported known twice")
	}
	st := p.Stats()
	if st.Ready != 0 || st.MemBytes != 0 || st.SpillBytes != 0 {
		t.Fatalf("after Retire: ready %d mem %d spill %d", st.Ready, st.MemBytes, st.SpillBytes)
	}
	if files, _ := filepath.Glob(filepath.Join(dir, "*"+spillExt)); len(files) != 0 {
		t.Fatalf("%d spill files survive Retire", len(files))
	}
	if rec := p.Get(key); rec != nil {
		t.Fatal("retired key still serves entries")
	}
	// Unlike Invalidate, the registration is gone: Fill finds no deficit.
	if err := p.Fill(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := p.Stats().Ready; got != 0 {
		t.Fatalf("retired key refilled to %d, want 0", got)
	}
	// The key can be registered afresh.
	if err := p.Register(key, "adder", 0, recordProducer(cfg, alice)); err != nil {
		t.Fatalf("re-register after Retire: %v", err)
	}
	if err := p.Fill(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := p.Stats().Ready; got != 3 {
		t.Fatalf("re-registered key refilled to %d, want 3", got)
	}
}
