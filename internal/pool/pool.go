// Package pool implements the garble-ahead subsystem: a bounded store of
// pre-garbled session streams (proto.Recorded), keyed by session id, that
// background workers keep topped up so the online phase of a session
// collapses to OT plus frame I/O.
//
// Lifecycle rules the rest of the system leans on:
//
//   - Entries are single-use. Get pops under the pool lock, so no two
//     sessions can ever serve the same pre-garbled stream — each entry's
//     labels come from one fresh seed and must reach one evaluator only.
//   - Producers race consumers: refill workers garble in the background
//     while Get drains the front. The per-key target depth bounds how far
//     producers run ahead; a Get below target wakes them (demand-driven
//     refill, no polling).
//   - Bytes are bounded twice. MemBytes caps what stays resident; beyond
//     it, entries overflow to SpillDir as crash-safe files (written to a
//     temp name, renamed into place; stale files from a crashed process
//     are removed by New, live ones by Close). MaxBytes caps memory and
//     spill together; beyond it the oldest entries of a key demanded
//     strictly less recently than the incoming one are evicted — and when
//     no colder victim exists, the incoming entry is dropped and its key
//     parked until demand moves, so producers never spin against a full
//     budget.
//   - Invalidate drops a key's finished entries (registry or option
//     changes make them unservable); the key stays registered and refills
//     under whatever producer now backs it.
package pool

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"arm2gc/internal/proto"
)

// Key identifies one (program, resolved-options) stream flavor — the
// protocol session id: any client negotiating these exact public
// parameters can be served any entry garbled under the key.
type Key [32]byte

// Producer garbles one fresh entry for its key. It must return a
// never-served Recorded with a fresh seed on every call; it runs on
// refill workers concurrently with other producers and with Get.
type Producer func(ctx context.Context) (*proto.Recorded, error)

// Defaults for zero Config fields.
const (
	DefaultDepth    = 2
	DefaultMemBytes = 256 << 20
	DefaultWorkers  = 2
)

// Config sizes a Pool.
type Config struct {
	// Depth is the target number of ready entries per registered key
	// (default DefaultDepth). A key registered with its own depth
	// overrides it.
	Depth int

	// MemBytes bounds the bytes held in memory (default
	// DefaultMemBytes). Entries beyond it spill to SpillDir, or are
	// refused when there is none.
	MemBytes int64

	// MaxBytes bounds memory and spill together (default: 4× MemBytes
	// when spilling is configured, MemBytes otherwise). Inserting beyond
	// it evicts from the least-recently-demanded key.
	MaxBytes int64

	// SpillDir, when set, receives overflow entries as files. The pool
	// owns the directory's *.gcpool files: New deletes stale ones, Close
	// deletes live ones. Two live pools must not share a SpillDir.
	SpillDir string

	// Workers is how many refill goroutines Start launches (default
	// DefaultWorkers).
	Workers int

	// AdaptiveDepth turns each key's registered depth into a cap instead
	// of a fixed target: a per-key controller tracks demand
	// inter-arrival, refill latency and hit-rate EWMAs and moves the
	// target between MinDepth and the cap (see adaptive.go). Idle
	// programs drain to the floor; hot ones grow until misses stop.
	AdaptiveDepth bool

	// MinDepth floors the adaptive target (default 1). Ignored unless
	// AdaptiveDepth is set.
	MinDepth int
}

func (c Config) withDefaults() Config {
	if c.Depth <= 0 {
		c.Depth = DefaultDepth
	}
	if c.MemBytes <= 0 {
		c.MemBytes = DefaultMemBytes
	}
	if c.MaxBytes <= 0 {
		if c.SpillDir != "" {
			c.MaxBytes = 4 * c.MemBytes
		} else {
			c.MaxBytes = c.MemBytes
		}
	}
	if c.Workers <= 0 {
		c.Workers = DefaultWorkers
	}
	return c
}

// entry is one ready pre-garbled stream: resident (rec != nil) or
// spilled (path != "").
type entry struct {
	rec  *proto.Recorded
	path string
	size int64
}

// slot is one registered key's queue plus its counters.
type slot struct {
	key     Key
	name    string // for stats; the registered program name
	depth   int    // fixed target, or the cap when ctrl is set
	ctrl    *depthController
	produce Producer

	entries []entry // FIFO: oldest first
	filling int     // produces in flight
	lastGet int64   // pool-wide demand sequence at the last Get; LRU rank

	// parked marks a slot whose last produced entry the byte budgets
	// refused (dropped, or failed to spill). A parked slot counts no
	// deficit — otherwise producers would spin garbling entries only to
	// drop them — until a Get or Invalidate moves bytes and unparks it.
	parked bool

	hits, misses, refills, failures, evictions int64
	refillTime                                 time.Duration
}

// target is the depth refill workers aim for: the adaptive controller's
// moving target when one is attached, the registered depth otherwise.
func (s *slot) target() int {
	if s.ctrl != nil {
		return s.ctrl.target()
	}
	return s.depth
}

func (s *slot) deficit() int {
	if s.parked {
		return 0
	}
	return s.target() - len(s.entries) - s.filling
}

// Pool is the garble-ahead store. All methods are safe for concurrent
// use.
type Pool struct {
	cfg Config

	mu         sync.Mutex
	slots      map[Key]*slot
	order      []*slot // registration order; claim scans round-robin
	next       int     // round-robin cursor over order
	memBytes   int64
	spillBytes int64
	getSeq     int64
	spillSeq   int
	loadFails  int64
	closed     bool

	wake    chan struct{}
	started bool
	cancel  context.CancelFunc
	wg      sync.WaitGroup

	now func() time.Time // injectable clock for the adaptive controller
}

const spillExt = ".gcpool"

// New creates a Pool. When cfg.SpillDir is set the directory is created
// and any stale spill files — leftovers of a crashed process — are
// removed, so a restart never serves (or double-counts) a file it cannot
// trust.
func New(cfg Config) (*Pool, error) {
	cfg = cfg.withDefaults()
	if cfg.SpillDir != "" {
		if err := os.MkdirAll(cfg.SpillDir, 0o700); err != nil {
			return nil, fmt.Errorf("pool: spill dir: %w", err)
		}
		stale, err := filepath.Glob(filepath.Join(cfg.SpillDir, "*"+spillExt))
		if err != nil {
			return nil, fmt.Errorf("pool: spill dir: %w", err)
		}
		for _, f := range stale {
			os.Remove(f)
		}
	}
	return &Pool{
		cfg:   cfg,
		slots: make(map[Key]*slot),
		wake:  make(chan struct{}, 1),
		now:   time.Now,
	}, nil
}

// Register adds a key the pool keeps topped up. depth overrides the
// config default when positive. produce garbles one entry per call.
func (p *Pool) Register(key Key, name string, depth int, produce Producer) error {
	if produce == nil {
		return fmt.Errorf("pool: Register(%q): nil producer", name)
	}
	if depth <= 0 {
		depth = p.cfg.Depth
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return fmt.Errorf("pool: Register(%q): pool is closed", name)
	}
	if _, dup := p.slots[key]; dup {
		return fmt.Errorf("pool: Register(%q): key already registered", name)
	}
	s := &slot{key: key, name: name, depth: depth, produce: produce}
	if p.cfg.AdaptiveDepth {
		s.ctrl = newDepthController(p.cfg.MinDepth, depth, 0)
	}
	p.slots[key] = s
	p.order = append(p.order, s)
	p.kick()
	return nil
}

// Get pops the oldest ready entry for key, or nil when the key is
// unregistered or momentarily dry (the caller falls back to live
// garbling). A successful Get consumes the entry permanently — single
// use is enforced right here, under the pool lock — and wakes the refill
// workers to restore the key's depth.
func (p *Pool) Get(key Key) *proto.Recorded {
	p.mu.Lock()
	s := p.slots[key]
	if s == nil {
		p.mu.Unlock()
		return nil
	}
	p.getSeq++
	s.lastGet = p.getSeq
	p.unparkLocked()
	hit := len(s.entries) > 0
	if s.ctrl != nil {
		s.ctrl.observeGet(p.now(), hit)
	}
	if !hit {
		s.misses++
		p.mu.Unlock()
		p.kick()
		return nil
	}
	e := s.entries[0]
	s.entries = s.entries[1:]
	s.hits++
	if e.rec != nil {
		p.memBytes -= e.size
	} else {
		p.spillBytes -= e.size
	}
	p.mu.Unlock()
	p.kick()
	if e.rec != nil {
		return e.rec
	}
	// Spilled entry: load outside the lock — disk reads must not stall
	// other sessions' Gets. The file is exclusively ours (it left the
	// queue above).
	rec, err := p.load(e.path)
	if err != nil {
		p.mu.Lock()
		p.loadFails++
		p.mu.Unlock()
		return nil // count as a miss upstream; live garbling covers it
	}
	return rec
}

func (p *Pool) load(path string) (*proto.Recorded, error) {
	defer os.Remove(path)
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return proto.UnmarshalRecorded(b)
}

// unparkLocked lifts every budget park: called when demand moves (bytes
// may have been freed, and a Get is the only signal the pool waits for),
// it lets parked keys try one more produce each instead of spinning.
func (p *Pool) unparkLocked() {
	for _, s := range p.order {
		s.parked = false
	}
}

// kick nudges the refill workers without blocking.
func (p *Pool) kick() {
	select {
	case p.wake <- struct{}{}:
	default:
	}
}

// Start launches the refill workers; they run until ctx is cancelled or
// Close is called. Idempotent.
func (p *Pool) Start(ctx context.Context) {
	p.mu.Lock()
	if p.started || p.closed {
		p.mu.Unlock()
		return
	}
	p.started = true
	ctx, p.cancel = context.WithCancel(ctx)
	p.mu.Unlock()
	for i := 0; i < p.cfg.Workers; i++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			p.worker(ctx)
		}()
	}
}

func (p *Pool) worker(ctx context.Context) {
	for {
		s := p.claim(nil)
		if s == nil {
			select {
			case <-ctx.Done():
				return
			case <-p.wake:
				continue
			}
		}
		if err := p.fillOne(ctx, s); err != nil {
			if ctx.Err() != nil {
				return
			}
			// A failing producer (bad registration, exhausted disk) must
			// not hot-spin the worker; back off before the next claim.
			select {
			case <-ctx.Done():
				return
			case <-time.After(200 * time.Millisecond):
			}
		}
	}
}

// claim picks the next slot with a deficit, round-robin so one hot key
// cannot starve the rest, and reserves one produce on it. Slots in skip
// are passed over (Fill quarantines failed producers there).
func (p *Pool) claim(skip map[*slot]bool) *slot {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := 0; i < len(p.order); i++ {
		s := p.order[(p.next+i)%len(p.order)]
		if s.deficit() > 0 && !skip[s] {
			p.next = (p.next + i + 1) % len(p.order)
			s.filling++
			return s
		}
	}
	return nil
}

// fillOne produces one entry for a claimed slot and inserts it.
func (p *Pool) fillOne(ctx context.Context, s *slot) error {
	start := time.Now()
	rec, err := s.produce(ctx)
	took := time.Since(start)
	p.mu.Lock()
	defer p.mu.Unlock()
	s.filling--
	if err != nil {
		s.failures++
		return err
	}
	s.refills++
	s.refillTime += took
	if s.ctrl != nil {
		s.ctrl.observeRefill(took)
	}
	if p.closed || p.slots[s.key] != s {
		return nil // produced after Close or Retire: drop
	}
	p.insertLocked(s, rec)
	return nil
}

// Fill synchronously tops every registered key up to its depth — pool
// warming for server startup and deterministic tests. It runs on the
// calling goroutine, one entry at a time, and returns the first producer
// error (later keys are still attempted).
func (p *Pool) Fill(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	var firstErr error
	failed := make(map[*slot]bool)
	for {
		s := p.claim(failed)
		if s == nil {
			return firstErr
		}
		if err := p.fillOne(ctx, s); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			if ctx.Err() != nil {
				return firstErr
			}
			failed[s] = true // one failure quarantines the key this pass
		}
	}
}

// insertLocked adds a produced entry under the byte budgets: evict
// beyond MaxBytes, spill beyond MemBytes, drop when neither helps.
func (p *Pool) insertLocked(s *slot, rec *proto.Recorded) {
	size := int64(rec.SizeBytes())
	for p.memBytes+p.spillBytes+size > p.cfg.MaxBytes {
		if !p.evictOneLocked(s) {
			// Nothing evictable but this key's own entries (or the entry
			// alone exceeds the budget): refusing the newest stream is the
			// only move left.
			s.evictions++
			s.parked = true
			return
		}
	}
	if p.memBytes+size > p.cfg.MemBytes {
		if p.cfg.SpillDir == "" {
			s.evictions++
			s.parked = true
			return
		}
		path, onDisk, err := p.spillLocked(rec)
		if err != nil {
			s.failures++
			s.parked = true
			return
		}
		s.entries = append(s.entries, entry{path: path, size: onDisk})
		p.spillBytes += onDisk
		return
	}
	s.entries = append(s.entries, entry{rec: rec, size: size})
	p.memBytes += size
}

// evictOneLocked drops the oldest entry of the least-recently-demanded
// slot — but only one demanded strictly less recently than keep, the
// slot being inserted into: eviction reorders the pool toward demand,
// and without the strict ordering two equally-cold keys at a full budget
// would evict each other's entries in an endless producer thrash. It
// reports false when no such victim exists.
func (p *Pool) evictOneLocked(keep *slot) bool {
	var victim *slot
	for _, s := range p.order {
		if s == keep || len(s.entries) == 0 || s.lastGet >= keep.lastGet {
			continue
		}
		if victim == nil || s.lastGet < victim.lastGet {
			victim = s
		}
	}
	if victim == nil {
		return false
	}
	e := victim.entries[0]
	victim.entries = victim.entries[1:]
	victim.evictions++
	if e.rec != nil {
		p.memBytes -= e.size
	} else {
		p.spillBytes -= e.size
		os.Remove(e.path)
	}
	return true
}

// spillLocked writes an entry to disk crash-safely: the bytes land under
// a temp name and only a successful rename publishes the .gcpool file,
// so a crash mid-write leaves nothing a restart could half-read.
func (p *Pool) spillLocked(rec *proto.Recorded) (string, int64, error) {
	b, err := rec.MarshalBinary()
	if err != nil {
		return "", 0, err
	}
	p.spillSeq++
	path := filepath.Join(p.cfg.SpillDir, fmt.Sprintf("entry-%d-%06d%s", os.Getpid(), p.spillSeq, spillExt))
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, b, 0o600); err != nil {
		return "", 0, err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return "", 0, err
	}
	return path, int64(len(b)), nil
}

// Invalidate drops every ready entry of a key — call it when the
// registration behind the key changes and pre-garbled streams are no
// longer servable. The key stays registered; refill workers rebuild its
// depth with the (new) producer. It reports whether the key was known.
func (p *Pool) Invalidate(key Key) bool {
	p.mu.Lock()
	s := p.slots[key]
	if s == nil {
		p.mu.Unlock()
		return false
	}
	for _, e := range s.entries {
		if e.rec != nil {
			p.memBytes -= e.size
		} else {
			p.spillBytes -= e.size
			os.Remove(e.path)
		}
	}
	s.entries = nil
	p.unparkLocked() // bytes freed; parked keys may fit now
	p.mu.Unlock()
	p.kick()
	return true
}

// Retire removes a key entirely: its ready entries are dropped like
// Invalidate, and the registration itself goes away, so the key can be
// registered afresh (a retired program coming back with a new producer).
// It reports whether the key was known.
func (p *Pool) Retire(key Key) bool {
	p.mu.Lock()
	s := p.slots[key]
	if s == nil {
		p.mu.Unlock()
		return false
	}
	for _, e := range s.entries {
		if e.rec != nil {
			p.memBytes -= e.size
		} else {
			p.spillBytes -= e.size
			os.Remove(e.path)
		}
	}
	s.entries = nil
	// A produce in flight for this slot may still insert one last entry
	// into the orphaned slot; that entry is unreachable but its bytes
	// must not count, so park the slot to stop further refills and let
	// insertLocked's budget checks see a slot that wants nothing.
	s.parked = true
	delete(p.slots, key)
	for i, o := range p.order {
		if o == s {
			p.order = append(p.order[:i], p.order[i+1:]...)
			if p.next > i {
				p.next--
			}
			break
		}
	}
	p.unparkLocked() // bytes freed; parked keys may fit now
	p.mu.Unlock()
	p.kick()
	return true
}

// Close stops the refill workers, waits for any in-flight produce, and
// deletes every spill file. The pool refuses further work after.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	cancel := p.cancel
	p.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	p.kick() // unblock workers parked on wake
	p.wg.Wait()
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, s := range p.order {
		for _, e := range s.entries {
			if e.path != "" {
				os.Remove(e.path)
			}
		}
		s.entries = nil
	}
	p.memBytes, p.spillBytes = 0, 0
}

// Stats is a point-in-time snapshot of the pool's counters.
type Stats struct {
	Hits      int64 // Gets served from a ready entry
	Misses    int64 // Gets on a registered but dry key
	Refills   int64 // successful background/warming produces
	Failures  int64 // producer errors (plus spill-write failures)
	Evictions int64 // entries dropped for byte budgets
	LoadFails int64 // spill files that would not load (served live instead)

	RefillTime time.Duration // producer time summed over all refills

	MemBytes   int64 // resident entry bytes right now
	SpillBytes int64 // on-disk entry bytes right now
	Ready      int   // ready entries across all keys right now

	Programs map[string]ProgramStats // keyed by registered name
}

// ProgramStats is one registered key's slice of the counters. When
// several keys were registered under one name their counters sum.
type ProgramStats struct {
	Ready   int // entries ready right now
	Depth   int // target depth (the live adaptive target when enabled)
	Hits    int64
	Misses  int64
	Refills int64
}

// Stats snapshots the pool.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := Stats{
		LoadFails:  p.loadFails,
		MemBytes:   p.memBytes,
		SpillBytes: p.spillBytes,
		Programs:   make(map[string]ProgramStats, len(p.order)),
	}
	for _, s := range p.order {
		st.Hits += s.hits
		st.Misses += s.misses
		st.Refills += s.refills
		st.Failures += s.failures
		st.Evictions += s.evictions
		st.RefillTime += s.refillTime
		st.Ready += len(s.entries)
		ps := st.Programs[s.name]
		ps.Ready += len(s.entries)
		ps.Depth += s.target()
		ps.Hits += s.hits
		ps.Misses += s.misses
		ps.Refills += s.refills
		st.Programs[s.name] = ps
	}
	return st
}
