package bencher

import (
	"context"
	"crypto/aes"
	"math/rand"
	"testing"

	"arm2gc/internal/core"
	"arm2gc/internal/ref"
	"arm2gc/internal/sim"
)

func TestTowerFieldIsomorphism(t *testing.T) {
	tw := Tower()
	// φ is a field isomorphism: check multiplicativity on random pairs and
	// additivity exhaustively on a basis (the search already did; re-verify).
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 2000; i++ {
		a, b := uint8(rng.Intn(256)), uint8(rng.Intn(256))
		if tw.Phi[aesMul(a, b)] != gf8Mul(tw.M, tw.Phi[a], tw.Phi[b]) {
			t.Fatalf("phi not multiplicative at %d, %d", a, b)
		}
		if tw.Phi[a^b] != tw.Phi[a]^tw.Phi[b] {
			t.Fatalf("phi not additive at %d, %d", a, b)
		}
		if tw.Psi[tw.Phi[a]] != a {
			t.Fatalf("psi not inverse at %d", a)
		}
	}
}

func TestSboxReference(t *testing.T) {
	// Spot-check the derived S-box against universally known entries.
	tw := Tower()
	known := map[uint8]uint8{0x00: 0x63, 0x01: 0x7c, 0x53: 0xed, 0xff: 0x16}
	for in, want := range known {
		if tw.SboxRef[in] != want {
			t.Errorf("sbox[%#02x] = %#02x, want %#02x", in, tw.SboxRef[in], want)
		}
	}
}

func TestSboxCircuitExhaustive(t *testing.T) {
	// One circuit per 256 inputs would be slow; build once with an Alice
	// input and simulate all values.
	b := newTestBuilder("sbox")
	in := b.Input(aliceOwner(), "x", 8)
	b.Output("y", CSbox(b, in))
	c := b.MustCompile()
	tw := Tower()
	for x := 0; x < 256; x++ {
		out := sim.Run(c, sim.Inputs{Alice: sim.UnpackUint(uint64(x), 8)}, 1)
		if got := uint8(sim.PackUint(out)); got != tw.SboxRef[x] {
			t.Fatalf("sbox circuit(%#02x) = %#02x, want %#02x", x, got, tw.SboxRef[x])
		}
	}
}

func TestAESCircuitMatchesStdlib(t *testing.T) {
	c, cycles := AESCircuit()
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 5; trial++ {
		var pt, key [16]byte
		rng.Read(pt[:])
		rng.Read(key[:])
		in := sim.Inputs{Alice: bytesToBits(pt[:]), Bob: bytesToBits(key[:])}
		out := sim.Run(c, in, cycles)
		got := bitsToBytes(out)
		block, err := aes.NewCipher(key[:])
		if err != nil {
			t.Fatal(err)
		}
		var want [16]byte
		block.Encrypt(want[:], pt[:])
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: AES circuit byte %d = %#02x, want %#02x", trial, i, got[i], want[i])
			}
		}
	}
}

func TestAESSkipGateCount(t *testing.T) {
	c, cycles := AESCircuit()
	st, err := core.Count(context.Background(), c, nil, core.CountOpts{Cycles: cycles})
	if err != nil {
		t.Fatal(err)
	}
	// 20 S-boxes × 36 AND × 10 rounds = 7,200 (paper: 6,400 with the
	// 32-AND Boyar-Peralta S-box).
	if st.Total.Garbled != 7200 {
		t.Errorf("AES garbled %d tables, want 7200", st.Total.Garbled)
	}
}

func TestSHA3CircuitMatchesReference(t *testing.T) {
	c, cycles := SHA3Circuit()
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 3; trial++ {
		// XOR-shared padded block: pick a short message, pad per FIPS 202,
		// split into random shares.
		msg := make([]byte, 40+trial*13)
		rng.Read(msg)
		block := make([]byte, 136)
		copy(block, msg)
		block[len(msg)] = 0x06
		block[135] |= 0x80

		shareA := make([]byte, 136)
		rng.Read(shareA)
		shareB := make([]byte, 136)
		for i := range shareB {
			shareB[i] = shareA[i] ^ block[i]
		}
		in := sim.Inputs{Alice: bytesToBits(shareA), Bob: bytesToBits(shareB)}
		out := sim.Run(c, in, cycles)
		got := bitsToBytes(out)
		want := ref.SHA3_256(msg)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: SHA3 circuit byte %d = %#02x, want %#02x", trial, i, got[i], want[i])
			}
		}
	}
}

func TestSHA3SkipGateCount(t *testing.T) {
	c, cycles := SHA3Circuit()
	st, err := core.Count(context.Background(), c, nil, core.CountOpts{Cycles: cycles})
	if err != nil {
		t.Fatal(err)
	}
	// χ: 1600 AND per round × 24 rounds — exactly the paper's 38,400.
	if st.Total.Garbled != 38400 {
		t.Errorf("SHA3 garbled %d tables, want 38400", st.Total.Garbled)
	}
}

func TestSerialCircuits(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		a64 := rng.Uint32()
		b64 := rng.Uint32()
		av, bv := uint64(a64), uint64(b64)

		sumC, n := SumSerial(32)
		in := sim.Inputs{Alice: sim.UnpackUint(av, 32), Bob: sim.UnpackUint(bv, 32)}
		s := sim.New(sumC, in)
		var got uint64
		for i := 0; i < n; i++ {
			s.Step()
			bits, _ := s.Output("sum")
			if bits[0] {
				got |= 1 << uint(i)
			}
		}
		if got != (av+bv)&0xffffffff {
			t.Fatalf("serial sum = %#x, want %#x", got, (av+bv)&0xffffffff)
		}

		cmpC, n := CompareSerial(32)
		out := sim.Run(cmpC, in, n)
		wantLt := av < bv
		if out[0] != wantLt {
			t.Fatalf("serial compare(%d, %d) = %v, want %v", av, bv, out[0], wantLt)
		}

		hamC, n := HammingSerial(32)
		out = sim.Run(hamC, in, n)
		if got := sim.PackUint(out); got != uint64(ref.Popcount32(a64^b64)) {
			t.Fatalf("serial hamming = %d, want %d", got, ref.Popcount32(a64^b64))
		}

		mulC, n := MultSerial(32)
		out = sim.Run(mulC, in, n)
		if got := sim.PackUint(out); got != av*bv {
			t.Fatalf("serial mult = %#x, want %#x", got, av*bv)
		}
	}
}

func TestSerialSkipGateCounts(t *testing.T) {
	// The Table 1 shape: per-cycle costs and final-cycle skips.
	cases := []struct {
		name             string
		mk               func() (*circuitT, int)
		garbled, skipped int
	}{
		{"sum32", wrap(SumSerial, 32), 31, 1},
		{"compare32", wrap(CompareSerial, 32), 32, 0},
		{"mult32", wrap(MultSerial, 32), 2016, 32},
	}
	for _, tc := range cases {
		c, cycles := tc.mk()
		st, err := core.Count(context.Background(), c, nil, core.CountOpts{Cycles: cycles})
		if err != nil {
			t.Fatal(err)
		}
		if st.Total.Garbled != tc.garbled {
			t.Errorf("%s: garbled %d, want %d", tc.name, st.Total.Garbled, tc.garbled)
		}
		conventional := c.Stats().NonXOR * cycles
		if conventional-st.Total.Garbled != tc.skipped {
			t.Errorf("%s: skipped %d, want %d", tc.name, conventional-st.Total.Garbled, tc.skipped)
		}
	}
}

func TestMatrixMult(t *testing.T) {
	const n, bits = 3, 32
	c, cycles := MatrixMult(n, bits)
	rng := rand.New(rand.NewSource(6))
	am := make([]uint32, n*n)
	bm := make([]uint32, n*n)
	for i := range am {
		am[i] = rng.Uint32() % 1000
		bm[i] = rng.Uint32() % 1000
	}
	in := sim.Inputs{Alice: sim.UnpackWords(am), Bob: sim.UnpackWords(bm)}
	out := sim.Run(c, in, cycles)
	got := sim.PackWords(out)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var want uint32
			for k := 0; k < n; k++ {
				want += am[i*n+k] * bm[k*n+j]
			}
			if got[i*n+j] != want {
				t.Errorf("c[%d][%d] = %d, want %d", i, j, got[i*n+j], want)
			}
		}
	}

	st, err := core.Count(context.Background(), c, nil, core.CountOpts{Cycles: cycles})
	if err != nil {
		t.Fatal(err)
	}
	// ≈ N³ × (mult ≈ 993 + add 31): paper reports 25,668 (TinyGarble) and
	// 27,369 (ARM2GC) for 3×3.
	if st.Total.Garbled < 25000 || st.Total.Garbled > 30000 {
		t.Errorf("matmul 3x3 garbled %d, want ≈27k", st.Total.Garbled)
	}
}
