package bencher

import (
	"arm2gc/internal/build"
	"arm2gc/internal/circuit"
	"arm2gc/internal/ref"
)

// SHA3Circuit builds the sequential SHA3-256 (Keccak-f[1600]) circuit: the
// 1600-bit state in flip-flops and one Keccak round of combinational
// logic, clocked 24 cycles. The 1088-bit rate block is XOR-shared between
// the parties (each supplies 1088 bits; the absorbed block is their XOR),
// which matches the paper's XOR-shared-input convention and costs nothing
// extra under free-XOR.
//
// χ is the only non-linear step: exactly 1600 AND gates per round, which
// is why SkipGate's count for this circuit is 24·1600 = 38,400 — the
// paper's Table 1 value.
func SHA3Circuit() (*circuit.Circuit, int) {
	const rateBits = 1088
	b := build.New("sha3-256")

	state := make([]*build.Reg, 25)
	aliceIn := partyReg(b, circuit.Alice, "ma", rateBits)
	bobIn := partyReg(b, circuit.Bob, "mb", rateBits)
	first := b.RegInit("first", []circuit.Init{{Kind: circuit.InitOne}})
	first.SetNext(build.Bus{build.F})
	aliceIn.SetNext(aliceIn.Q())
	bobIn.SetNext(bobIn.Q())

	// Lanes: x+5y, 64 bits each; the rate covers lanes 0..16.
	var lanes [25]build.Bus
	for i := range state {
		state[i] = b.Reg("lane", 64)
		q := state[i].Q()
		if i < rateBits/64 {
			// Absorb on the first cycle only: lane ⊕= (a ⊕ b) — free, and
			// gated by the public first flag so later cycles pass through.
			share := b.XorBus(aliceIn.Q()[i*64:(i+1)*64], bobIn.Q()[i*64:(i+1)*64])
			q = b.MuxBus(first.Q()[0], b.XorBus(q, share), q)
		}
		lanes[i] = q
	}

	out := keccakRound(b, lanes)
	for i := range state {
		state[i].SetNext(out[i])
	}

	var digest build.Bus
	for i := 0; i < 4; i++ {
		digest = append(digest, state[i].Q()...)
	}
	b.Output("digest", digest)
	// The full sponge state is also an output — a permutation core feeds
	// later absorptions — which keeps the last round's χ fully live
	// (24·1600 = 38,400 garbled tables, the paper's Table 1 figure).
	var full build.Bus
	for i := range state {
		full = append(full, state[i].Q()...)
	}
	b.Output("state", full)
	return b.MustCompile(), 24
}

// keccakRound is one Keccak-f round with the round constant selected by a
// public cycle counter.
func keccakRound(b *build.Builder, a [25]build.Bus) [25]build.Bus {
	// Round counter (public).
	rc := b.Reg("round", 5)
	inc, _ := b.AddCarry(rc.Q(), build.ZeroBus(5), build.T)
	rc.SetNext(inc)

	// θ
	var c [5]build.Bus
	for x := 0; x < 5; x++ {
		c[x] = b.XorBus(b.XorBus(b.XorBus(a[x], a[x+5]), b.XorBus(a[x+10], a[x+15])), a[x+20])
	}
	var d [5]build.Bus
	for x := 0; x < 5; x++ {
		d[x] = b.XorBus(c[(x+4)%5], rotLane(c[(x+1)%5], 1))
	}
	var t [25]build.Bus
	for x := 0; x < 5; x++ {
		for y := 0; y < 5; y++ {
			t[x+5*y] = b.XorBus(a[x+5*y], d[x])
		}
	}
	// ρ and π
	var p [25]build.Bus
	for x := 0; x < 5; x++ {
		for y := 0; y < 5; y++ {
			p[y+5*((2*x+3*y)%5)] = rotLane(t[x+5*y], ref.KeccakRot(x, y))
		}
	}
	// χ: the 1600 AND gates.
	var out [25]build.Bus
	for x := 0; x < 5; x++ {
		for y := 0; y < 5; y++ {
			notB := b.NotBus(p[(x+1)%5+5*y])
			out[x+5*y] = b.XorBus(p[x+5*y], b.AndBus(notB, p[(x+2)%5+5*y]))
		}
	}
	// ι: round-constant mux over the public counter (free).
	items := make([]build.Bus, 32)
	for i := range items {
		items[i] = build.ConstBus(ref.KeccakRC(i%24), 64)
	}
	rcBus := b.MuxTree(rc.Q(), items)
	out[0] = b.XorBus(out[0], rcBus)
	return out
}

// rotLane rotates a 64-bit lane left by n (free rewiring).
func rotLane(l build.Bus, n int) build.Bus {
	n %= 64
	if n == 0 {
		return l
	}
	r := make(build.Bus, 64)
	for i := 0; i < 64; i++ {
		r[(i+n)%64] = l[i]
	}
	return r
}
