package bencher

import (
	"fmt"

	"arm2gc/internal/build"
	"arm2gc/internal/circuit"
)

// The HDL-synthesis path of Tables 1 and 2: hand-built sequential circuits
// in the TinyGarble style. Each circuit takes Alice's and Bob's private
// inputs (no public inputs — Table 1's setting) and runs for a fixed
// number of cycles; Cycles reports it.

// aliceReg and bobReg build shift/holding registers initialized from party
// input bits.
func partyReg(b *build.Builder, owner circuit.Owner, name string, bits int) *build.Reg {
	off := b.AllocInputBits(owner, bits)
	inits := make([]circuit.Init, bits)
	kind := circuit.InitAlice
	if owner == circuit.Bob {
		kind = circuit.InitBob
	}
	for i := range inits {
		inits[i] = circuit.Init{Kind: kind, Idx: off + i}
	}
	return b.RegInit(name, inits)
}

// SumSerial is TinyGarble's bit-serial adder: two n-bit shift registers, a
// single full adder and a carry flip-flop; one sum bit is emitted per
// cycle for n cycles. Conventional GC cost: 1 table/cycle.
func SumSerial(n int) (*circuit.Circuit, int) {
	b := build.New(fmt.Sprintf("sum-serial-%d", n))
	ra := partyReg(b, circuit.Alice, "a", n)
	rb := partyReg(b, circuit.Bob, "b", n)
	carry := b.Reg("carry", 1)
	sum, cout := b.FullAdder(ra.Q()[0], rb.Q()[0], carry.Q()[0])
	carry.SetNext(build.Bus{cout})
	ra.SetNext(build.ShrConst(ra.Q(), 1, build.F))
	rb.SetNext(build.ShrConst(rb.Q(), 1, build.F))
	b.Output("sum", build.Bus{sum})
	return b.MustCompile(), n
}

// CompareSerial compares two n-bit unsigned integers bit-serially from the
// LSB: lt' = diff ? b : lt. Cost: 1 MUX table/cycle over n cycles.
func CompareSerial(n int) (*circuit.Circuit, int) {
	b := build.New(fmt.Sprintf("compare-serial-%d", n))
	ra := partyReg(b, circuit.Alice, "a", n)
	rb := partyReg(b, circuit.Bob, "b", n)
	lt := b.Reg("lt", 1)
	a0, b0 := ra.Q()[0], rb.Q()[0]
	diff := b.Xor(a0, b0)
	ltNext := b.Mux(diff, b0, lt.Q()[0])
	lt.SetNext(build.Bus{ltNext})
	ra.SetNext(build.ShrConst(ra.Q(), 1, build.F))
	rb.SetNext(build.ShrConst(rb.Q(), 1, build.F))
	b.Output("lt", build.Bus{ltNext})
	return b.MustCompile(), n
}

// HammingSerial computes the Hamming distance of two n-bit strings
// bit-serially: a count register incremented by a[i]⊕b[i] each cycle.
// Cost: counter-width ANDs per cycle.
func HammingSerial(n int) (*circuit.Circuit, int) {
	b := build.New(fmt.Sprintf("hamming-serial-%d", n))
	w := 1
	for 1<<w < n+1 {
		w++
	}
	ra := partyReg(b, circuit.Alice, "a", n)
	rb := partyReg(b, circuit.Bob, "b", n)
	cnt := b.Reg("cnt", w)
	diff := b.Xor(ra.Q()[0], rb.Q()[0])
	next, _ := b.AddCarry(cnt.Q(), build.ZeroBus(w), diff)
	cnt.SetNext(next)
	ra.SetNext(build.ShrConst(ra.Q(), 1, build.F))
	rb.SetNext(build.ShrConst(rb.Q(), 1, build.F))
	b.Output("dist", cnt.Q())
	return b.MustCompile(), n
}

// MultSerial is the classic shift-add serial multiplier with a full 2n-bit
// product (TinyGarble's Mult): P ← (P + b₀·(a·2ⁿ)) >> 1. Cost: 2n
// tables/cycle over n cycles (≈2n² total; 2,048 for n=32 conventionally,
// 2,016 with SkipGate thanks to the public zero initialization — the
// paper's Table 1 Mult 32 row).
func MultSerial(n int) (*circuit.Circuit, int) {
	b := build.New(fmt.Sprintf("mult-serial-%d", n))
	ra := partyReg(b, circuit.Alice, "a", n)
	rb := partyReg(b, circuit.Bob, "b", n)
	p := b.Reg("p", 2*n)
	pp := b.AndWith(rb.Q()[0], ra.Q())
	hi, cout := b.AddCarry(p.Q()[n:], pp, build.F)
	full := append(append(build.Bus{}, p.Q()[:n]...), hi...)
	full = append(full, cout)
	p.SetNext(full[1:]) // shift right by one
	rb.SetNext(build.ShrConst(rb.Q(), 1, build.F))
	ra.SetNext(ra.Q())
	b.Output("prod", p.Q())
	return b.MustCompile(), n
}

// MatrixMult is a sequential N×N 32-bit matrix multiplier: one
// multiply-accumulate datapath reused N³ cycles, with public index
// counters steering the memories (so all memory traffic is free under
// SkipGate). Cost/cycle ≈ one truncated multiplier + adder.
func MatrixMult(n, bits int) (*circuit.Circuit, int) {
	b := build.New(fmt.Sprintf("matmul-%dx%d-%d", n, n, bits))
	words := n * n
	aOff := b.AllocInputBits(circuit.Alice, words*bits)
	bOff := b.AllocInputBits(circuit.Bob, words*bits)

	mkMem := func(kind circuit.InitKind, off int, name string) []build.Bus {
		mem := make([]build.Bus, words)
		for w := 0; w < words; w++ {
			inits := make([]circuit.Init, bits)
			for i := range inits {
				inits[i] = circuit.Init{Kind: kind, Idx: off + w*bits + i}
			}
			r := b.RegInit(fmt.Sprintf("%s%d", name, w), inits)
			r.SetNext(r.Q())
			mem[w] = r.Q()
		}
		return mem
	}
	memA := mkMem(circuit.InitAlice, aOff, "a")
	memB := mkMem(circuit.InitBob, bOff, "b")

	// Public index counters i, j, k.
	cw := 1
	for 1<<cw < n {
		cw++
	}
	mkCnt := func(name string) *build.Reg { return b.Reg(name, cw) }
	ci, cj, ck := mkCnt("i"), mkCnt("j"), mkCnt("k")
	nm1 := build.ConstBus(uint64(n-1), cw)
	kWrap := b.Eq(ck.Q(), nm1)
	jWrap := b.And(kWrap, b.Eq(cj.Q(), nm1))
	inc := func(r *build.Reg, en build.W, wrap build.W) {
		plus, _ := b.AddCarry(r.Q(), build.ZeroBus(cw), en)
		r.SetNext(b.MuxBus(wrap, build.ZeroBus(cw), plus))
	}
	inc(ck, build.T, kWrap)
	inc(cj, kWrap, jWrap)
	inc(ci, jWrap, build.F)

	// Flat addresses i*n+k and k*n+j (public arithmetic: free).
	addrW := 1
	for 1<<addrW < words {
		addrW++
	}
	mulN := func(x build.Bus) build.Bus {
		acc := build.ZeroBus(addrW)
		for s := 0; s < addrW; s++ {
			if n>>s&1 == 1 {
				acc = b.Add(acc, build.ShlConst(build.ZeroExtend(x, addrW), s))
			}
		}
		return acc
	}
	addrA := b.Add(mulN(ci.Q()), build.ZeroExtend(ck.Q(), addrW))
	addrB := b.Add(mulN(ck.Q()), build.ZeroExtend(cj.Q(), addrW))
	addrC := b.Add(mulN(ci.Q()), build.ZeroExtend(cj.Q(), addrW))

	pad := make([]build.Bus, 1<<addrW)
	fill := func(mem []build.Bus) []build.Bus {
		for i := range pad {
			if i < len(mem) {
				pad[i] = mem[i]
			} else {
				pad[i] = build.ZeroBus(bits)
			}
		}
		return append([]build.Bus(nil), pad...)
	}
	va := b.MuxTree(addrA, fill(memA))
	vb := b.MuxTree(addrB, fill(memB))

	// MAC: acc += va*vb; write c[i][j] and clear on k wrap.
	acc := b.Reg("acc", bits)
	mac := b.Add(acc.Q(), b.MulLow(va, vb))
	acc.SetNext(b.MuxBus(kWrap, build.ZeroBus(bits), mac))

	memC := make([]*build.Reg, words)
	we := b.Decoder(addrC, kWrap)
	var outs build.Bus
	for w := 0; w < words; w++ {
		memC[w] = b.Reg(fmt.Sprintf("c%d", w), bits)
		memC[w].SetNext(b.MuxBus(we[w], mac, memC[w].Q()))
		outs = append(outs, memC[w].Q()...)
	}
	b.Output("c", outs)
	return b.MustCompile(), n * n * n
}
