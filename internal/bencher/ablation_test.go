package bencher

import (
	"fmt"
	"testing"
)

func TestAblationMuxCell(t *testing.T) {
	tab, err := AblationMuxCell()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", tab.Render())
	atomic0 := parseNumT(t, tab.Rows[0][2])
	decomp0 := parseNumT(t, tab.Rows[1][2])
	atomic1 := parseNumT(t, tab.Rows[2][2])
	decomp1 := parseNumT(t, tab.Rows[3][2])
	atomicSec := parseNumT(t, tab.Rows[4][2])
	decompSec := parseNumT(t, tab.Rows[5][2])
	if atomic0 != decomp0 {
		t.Errorf("select=0: atomic %d vs decomposed %d, want equal (AND-with-0 also prunes)", atomic0, decomp0)
	}
	if float64(decomp1) < 1.8*float64(atomic1) {
		t.Errorf("select=1: decomposition (%d) should cost ≈2x the atomic cell (%d)", decomp1, atomic1)
	}
	if atomicSec != decompSec {
		t.Errorf("secret select: atomic (%d) and decomposed (%d) should cost the same", atomicSec, decompSec)
	}
}

func TestAblationObliviousScan(t *testing.T) {
	tab, err := AblationObliviousScan()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", tab.Render())
	// Linear scaling: cost(256)/cost(32) ≈ 8 within 2x slack.
	var c32, c256 int64
	for _, r := range tab.Rows {
		switch r[0] {
		case "32":
			c32 = parseNumT(t, r[1])
		case "256":
			c256 = parseNumT(t, r[1])
		}
	}
	ratio := float64(c256) / float64(c32)
	if ratio < 4 || ratio > 16 {
		t.Errorf("scan cost ratio 256/32 = %.1f, expected ≈8 (linear)", ratio)
	}
}

func TestAblationZFlag(t *testing.T) {
	tab, err := AblationZFlag()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", tab.Render())
	add := parseNumT(t, tab.Rows[0][1])
	adds := parseNumT(t, tab.Rows[1][1])
	if adds <= add || adds-add < 25 || adds-add > 45 {
		t.Errorf("adds (%d) should cost ≈33 more than add (%d)", adds, add)
	}
}

func TestAblationMemoryBackend(t *testing.T) {
	if testing.Short() {
		t.Skip("six full garbling-cost runs (~90s)")
	}
	tab, err := AblationMemoryBackend(false)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", tab.Render())
	// The ratio column must fall monotonically with size: the ORAM's
	// saving is linear in n, its tax ~√n.
	prev := 2.0
	for _, r := range tab.Rows {
		var ratio float64
		if _, err := fmt.Sscanf(r[4], "%f", &ratio); err != nil {
			t.Fatalf("ratio cell %q: %v", r[4], err)
		}
		if ratio >= prev {
			t.Errorf("ratio not falling with size: %s at %s words (prev %.4f)", r[4], r[0], prev)
		}
		prev = ratio
	}
	if prev >= 1 {
		t.Errorf("largest size ratio %.4f, want < 1 (ORAM must win by 256 words)", prev)
	}
}

func parseNumT(t *testing.T, s string) int64 {
	t.Helper()
	var v int64
	for _, c := range s {
		if c >= '0' && c <= '9' {
			v = v*10 + int64(c-'0')
		}
	}
	return v
}
