package bencher

import (
	"context"
	"fmt"

	"arm2gc/internal/circuit"
	"arm2gc/internal/core"
	"arm2gc/internal/cpu"
	"arm2gc/internal/emu"
	"arm2gc/internal/obliv"
	"arm2gc/internal/sim"
)

// CPUResult is one ARM2GC measurement: a workload executed on the garbled
// processor with SkipGate.
type CPUResult struct {
	Name     string
	Backend  string // resolved data-memory backend the run used
	Cycles   int
	Stats    core.Stats
	PerCycle int // processor non-XOR gates per cycle (conventional cost)
	Warnings []string

	// Conventional is the "w/o SkipGate" cost: cycles × processor non-XOR
	// gates, computed exactly as the paper does for Table 4.
	Conventional int64
}

// Garbled is the headline metric: garbled tables actually transferred.
func (r *CPUResult) Garbled() int { return r.Stats.Total.Garbled }

// RunOnCPU compiles the workload, validates it on the emulator against its
// reference function, builds the processor for its memory layout, and runs
// the SkipGate scheduler to measure garbled-table counts. The data memory
// is the historical linear scan; RunOnCPUMem selects a backend.
func RunOnCPU(w *Workload) (*CPUResult, error) {
	return RunOnCPUMem(w, obliv.Config{Backend: obliv.Scan})
}

// RunOnCPUMem is RunOnCPU with an oblivious-memory backend selection, the
// measurement arm of the backend ablation and the bench-oram gate.
func RunOnCPUMem(w *Workload, mc obliv.Config) (*CPUResult, error) {
	p, warnings, err := w.Program()
	if err != nil {
		return nil, err
	}
	m, err := emu.New(p, w.Alice, w.Bob)
	if err != nil {
		return nil, err
	}
	cycles, err := m.Run(50_000_000)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", w.Name, err)
	}
	if w.Check != nil {
		want := w.Check(w.Alice, w.Bob)
		got := m.Output()
		for i := range want {
			if got[i] != want[i] {
				return nil, fmt.Errorf("%s: emulator output[%d] = %#x, want %#x", w.Name, i, got[i], want[i])
			}
		}
	}

	c, err := cpu.SharedMem(p.Layout, mc)
	if err != nil {
		return nil, err
	}
	pub, err := c.PublicBits(p)
	if err != nil {
		return nil, err
	}
	st, err := core.Count(context.Background(), c.Circuit, pub, core.CountOpts{Cycles: cycles, StopOutput: "halted"})
	if err != nil {
		return nil, err
	}
	perCycle := c.Circuit.Stats().NonXOR
	return &CPUResult{
		Name:         w.Name,
		Backend:      c.Backend,
		Cycles:       cycles,
		Stats:        st,
		PerCycle:     perCycle,
		Warnings:     warnings,
		Conventional: int64(cycles) * int64(perCycle),
	}, nil
}

// VerifyOnCPU runs the full garbled protocol (crypto, not just counting)
// in process and checks the decoded outputs against the reference — the
// end-to-end correctness check used by tests and examples.
func VerifyOnCPU(w *Workload) error {
	p, _, err := w.Program()
	if err != nil {
		return err
	}
	m, err := emu.New(p, w.Alice, w.Bob)
	if err != nil {
		return err
	}
	cycles, err := m.Run(50_000_000)
	if err != nil {
		return err
	}
	c, err := cpu.Shared(p.Layout)
	if err != nil {
		return err
	}
	pub, err := c.PublicBits(p)
	if err != nil {
		return err
	}
	ab, err := c.InputBits(circuit.Alice, w.Alice)
	if err != nil {
		return err
	}
	bb, err := c.InputBits(circuit.Bob, w.Bob)
	if err != nil {
		return err
	}
	res, err := core.RunLocal(context.Background(), c.Circuit, simInputs(pub, ab, bb),
		core.RunOpts{Cycles: cycles, StopOutput: "halted"})
	if err != nil {
		return err
	}
	got := cpu.OutWords(res.Outputs[:p.Layout.OutWords*32])
	want := w.Check(w.Alice, w.Bob)
	for i := range want {
		if got[i] != want[i] {
			return fmt.Errorf("%s: garbled output[%d] = %#x, want %#x", w.Name, i, got[i], want[i])
		}
	}
	return nil
}

// AllWorkloads returns the full CPU-path benchmark suite keyed by the
// paper's tables. big selects the largest parameter sets (slow).
func AllWorkloads(big bool) []*Workload {
	ws := []*Workload{
		SumWorkload(32),
		SumWorkload(1024),
		CompareWorkload(32),
		HammingWorkload(32),
		HammingWorkload(160),
		MultWorkload(),
		MatrixMultWorkload(3),
		BubbleSortWorkload(8),
		CordicWorkload(),
		CordicDivWorkload(),
		DijkstraWorkload(8),
		MergeSortWorkload(8),
	}
	if big {
		ws = append(ws,
			CompareWorkload(16384),
			HammingWorkload(512),
			MatrixMultWorkload(5),
			MatrixMultWorkload(8),
			BubbleSortWorkload(32),
			MergeSortWorkload(32),
		)
	}
	return ws
}

// FindWorkload retrieves a workload by name from the full suite.
func FindWorkload(name string) (*Workload, error) {
	for _, w := range AllWorkloads(true) {
		if w.Name == name {
			return w, nil
		}
	}
	return nil, fmt.Errorf("bencher: no workload %q", name)
}

// simInputs assembles the three-vector input of c = f(a, b, p).
func simInputs(pub, a, b []bool) sim.Inputs {
	return sim.Inputs{Public: pub, Alice: a, Bob: b}
}
