package bencher

import (
	"strings"
	"testing"
)

func TestTablesGenerate(t *testing.T) {
	type gen struct {
		name string
		f    func() (*Table, error)
	}
	gens := []gen{
		{"table1", func() (*Table, error) { return Table1(false) }},
		{"table6", Table6},
		{"figure1", Figure1},
		{"figure2", Figure2},
		{"figure3", Figure3},
		{"figure5", Figure5},
		{"figure6", Figure6},
		{"mips", MIPSTable},
	}
	for _, g := range gens {
		g := g
		t.Run(g.name, func(t *testing.T) {
			tab, err := g.f()
			if err != nil {
				t.Fatal(err)
			}
			out := tab.Render()
			if len(tab.Rows) == 0 || !strings.Contains(out, tab.Header[0]) {
				t.Fatalf("degenerate table:\n%s", out)
			}
			t.Logf("\n%s", out)
		})
	}
}

// TestTable1ExactRows pins the rows where our synthesis matches the
// paper's construction exactly.
func TestTable1ExactRows(t *testing.T) {
	tab, err := Table1(false)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string][2]string{
		"Sum 32":     {"32", "31"},
		"Compare 32": {"32", "32"},
		"Mult 32":    {"2,048", "2,016"},
		"SHA3 256":   {"-", "38,400"}, // w/o differs (no controller overhead here)
	}
	for _, row := range tab.Rows {
		w, ok := want[row[0]]
		if !ok {
			continue
		}
		if w[0] != "-" && row[1] != w[0] {
			t.Errorf("%s: w/o = %s, want %s", row[0], row[1], w[0])
		}
		if row[2] != w[1] {
			t.Errorf("%s: w/ = %s, want %s", row[0], row[2], w[1])
		}
	}
}

// TestFigure5Shape: predication must be orders of magnitude cheaper than a
// secret branch.
func TestFigure5Shape(t *testing.T) {
	tab, err := Figure5()
	if err != nil {
		t.Fatal(err)
	}
	branchy := tab.Rows[0][1]
	pred := tab.Rows[1][1]
	nb := parseNum(t, branchy)
	np := parseNum(t, pred)
	if nb < 20*np {
		t.Errorf("secret branch cost %d vs predicated %d: expected ≥20x blowup", nb, np)
	}
}

func parseNum(t *testing.T, s string) int64 {
	t.Helper()
	var v int64
	for _, c := range s {
		if c >= '0' && c <= '9' {
			v = v*10 + int64(c-'0')
		}
	}
	return v
}
