package bencher

import (
	"arm2gc/internal/build"
	"arm2gc/internal/circuit"
)

// AESCircuit builds sequential AES-128 encryption with on-the-fly key
// expansion (the "missing key expansion module" the paper adds to
// TinyGarble's AES). Alice supplies the 128-bit plaintext, Bob the
// 128-bit key; one round of combinational logic is clocked 10 times.
//
// Non-linear cost per cycle: 16 state S-boxes + 4 key-schedule S-boxes,
// 36 AND each with the tower-field construction (720/cycle, 7,200 total —
// the paper's 6,400 uses the 32-AND Boyar-Peralta S-box; the shape is
// identical). Everything else (ShiftRows, MixColumns, AddRoundKey, round
// constants) is XOR/wiring and free.
func AESCircuit() (*circuit.Circuit, int) {
	b := build.New("aes-128")

	state := partyReg(b, circuit.Alice, "pt", 128)
	rkey := partyReg(b, circuit.Bob, "key", 128)
	first := b.RegInit("first", []circuit.Init{{Kind: circuit.InitOne}})
	first.SetNext(build.Bus{build.F})
	round := b.Reg("round", 4) // counts 0..9 (public)
	rinc, _ := b.AddCarry(round.Q(), build.ZeroBus(4), build.T)
	round.SetNext(rinc)

	byteAt := func(bus build.Bus, i int) build.Bus { return bus[i*8 : (i+1)*8] }

	// The initial AddRoundKey folds into the first cycle via a public mux.
	cur := make([]build.Bus, 16)
	for i := 0; i < 16; i++ {
		st := byteAt(state.Q(), i)
		k0 := byteAt(rkey.Q(), i)
		cur[i] = b.MuxBus(first.Q()[0], b.XorBus(st, k0), st)
	}

	// SubBytes.
	sb := make([]build.Bus, 16)
	for i := range sb {
		sb[i] = CSbox(b, cur[i])
	}

	// ShiftRows: byte (r, c) at index r+4c; row r rotates left by r.
	sr := make([]build.Bus, 16)
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			sr[r+4*c] = sb[r+4*((c+r)%4)]
		}
	}

	// MixColumns (skipped in the last round by a public mux).
	mc := make([]build.Bus, 16)
	for c := 0; c < 4; c++ {
		a0, a1, a2, a3 := sr[4*c], sr[4*c+1], sr[4*c+2], sr[4*c+3]
		x := func(v build.Bus) build.Bus { return cXtime(b, v) }
		xor := func(vs ...build.Bus) build.Bus {
			acc := vs[0]
			for _, v := range vs[1:] {
				acc = b.XorBus(acc, v)
			}
			return acc
		}
		mc[4*c] = xor(x(a0), x(a1), a1, a2, a3)
		mc[4*c+1] = xor(a0, x(a1), x(a2), a2, a3)
		mc[4*c+2] = xor(a0, a1, x(a2), x(a3), a3)
		mc[4*c+3] = xor(x(a0), a0, a1, a2, x(a3))
	}
	lastRound := b.Eq(round.Q(), build.ConstBus(9, 4))
	mixed := make([]build.Bus, 16)
	for i := range mixed {
		mixed[i] = b.MuxBus(lastRound, sr[i], mc[i])
	}

	// Key schedule: round constant muxed by the public counter.
	rcons := []uint64{0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36, 0, 0, 0, 0, 0, 0}
	items := make([]build.Bus, 16)
	for i := range items {
		items[i] = build.ConstBus(rcons[i], 8)
	}
	rcon := b.MuxTree(round.Q(), items)

	// Words w0..w3 are bytes 0-3, 4-7, 8-11, 12-15.
	word := func(i int) []build.Bus {
		return []build.Bus{byteAt(rkey.Q(), 4*i), byteAt(rkey.Q(), 4*i+1), byteAt(rkey.Q(), 4*i+2), byteAt(rkey.Q(), 4*i+3)}
	}
	w3 := word(3)
	// RotWord + SubWord + rcon.
	g := []build.Bus{
		b.XorBus(CSbox(b, w3[1]), rcon),
		CSbox(b, w3[2]),
		CSbox(b, w3[3]),
		CSbox(b, w3[0]),
	}
	var nk [16]build.Bus
	prev := g
	for wi := 0; wi < 4; wi++ {
		cw := word(wi)
		for bi := 0; bi < 4; bi++ {
			nk[4*wi+bi] = b.XorBus(cw[bi], prev[bi])
		}
		prev = []build.Bus{nk[4*wi], nk[4*wi+1], nk[4*wi+2], nk[4*wi+3]}
	}
	var nkFlat build.Bus
	for i := 0; i < 16; i++ {
		nkFlat = append(nkFlat, nk[i]...)
	}
	rkey.SetNext(nkFlat)

	// AddRoundKey with the freshly expanded key.
	var nextState build.Bus
	for i := 0; i < 16; i++ {
		nextState = append(nextState, b.XorBus(mixed[i], nk[i])...)
	}
	state.SetNext(nextState)

	b.Output("ct", state.Q())
	return b.MustCompile(), 10
}
