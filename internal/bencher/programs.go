package bencher

import (
	"fmt"
	"strings"

	"arm2gc/internal/isa"
	"arm2gc/internal/minicc"
	"arm2gc/internal/ref"
)

// Workload is one CPU-path benchmark: a program (MiniC or assembly), its
// memory geometry, representative inputs, and the reference function that
// predicts the outputs.
type Workload struct {
	Name   string
	C      string // MiniC source (preferred)
	Asm    string // assembly source when carry-flag tricks are needed
	Layout isa.Layout
	Alice  []uint32
	Bob    []uint32
	Check  func(alice, bob []uint32) []uint32
}

// Program compiles/assembles and links the workload.
func (w *Workload) Program() (*isa.Program, []string, error) {
	src := w.Asm
	var warnings []string
	if w.C != "" {
		res, err := minicc.Compile(w.C)
		if err != nil {
			return nil, nil, fmt.Errorf("%s: %w", w.Name, err)
		}
		src = res.Asm
		warnings = res.Warnings
	}
	l, err := isa.FitLayout(src, w.Layout)
	if err != nil {
		return nil, nil, fmt.Errorf("%s: %w", w.Name, err)
	}
	p, err := isa.Link(w.Name, src, l)
	if err != nil {
		return nil, nil, err
	}
	return p, warnings, nil
}

func layout(alice, bob, out, scratch int) isa.Layout {
	return isa.Layout{IMemWords: 64, AliceWords: alice, BobWords: bob, OutWords: out, ScratchWords: scratch}
}

const popcountC = `
unsigned popcount(unsigned x) {
	x = x - ((x >> 1) & 0x55555555);
	x = (x & 0x33333333) + ((x >> 2) & 0x33333333);
	x = (x + (x >> 4)) & 0x0F0F0F0F;
	x = x + (x >> 8);
	x = x + (x >> 16);
	return x & 0x3F;
}
`

// SumWorkload: n-bit addition (n multiple of 32). Single-word sums use
// MiniC; multi-word sums need the carry flag and use generated assembly
// with an unrolled ADDS/ADC chain.
func SumWorkload(n int) *Workload {
	words := n / 32
	if words == 1 {
		return &Workload{
			Name:   "Sum 32",
			C:      "void gc_main(const int *a, const int *b, int *c) { c[0] = a[0] + b[0]; }",
			Layout: layout(1, 1, 1, 8),
			Alice:  []uint32{0xdeadbeef},
			Bob:    []uint32{0x12345678},
			Check: func(a, b []uint32) []uint32 {
				return []uint32{a[0] + b[0]}
			},
		}
	}
	var sb strings.Builder
	sb.WriteString("gc_main:\n")
	for i := 0; i < words; i++ {
		op := "adc"
		if i == 0 {
			op = "adds"
		} else if i < words-1 {
			op = "adcs"
		}
		fmt.Fprintf(&sb, "\tldr r3, [r0, #%d]\n\tldr r4, [r1, #%d]\n\t%s r3, r3, r4\n\tstr r3, [r2, #%d]\n", 4*i, 4*i, op, 4*i)
	}
	sb.WriteString("\tmov pc, lr\n")
	alice := make([]uint32, words)
	bob := make([]uint32, words)
	for i := range alice {
		alice[i] = 0xffffffff // worst-case carry chain
		bob[i] = uint32(i + 1)
	}
	return &Workload{
		Name:   fmt.Sprintf("Sum %d", n),
		Asm:    sb.String(),
		Layout: layout(words, words, words, 8),
		Alice:  alice,
		Bob:    bob,
		Check: func(a, b []uint32) []uint32 {
			out := make([]uint32, words)
			var carry uint64
			for i := 0; i < words; i++ {
				s := uint64(a[i]) + uint64(b[i]) + carry
				out[i] = uint32(s)
				carry = s >> 32
			}
			return out
		},
	}
}

// CompareWorkload: n-bit unsigned comparison a < b. Multi-word versions
// use the classic SUBS/SBCS borrow chain.
func CompareWorkload(n int) *Workload {
	words := n / 32
	if words == 1 {
		return &Workload{
			Name: "Compare 32",
			C: `void gc_main(const int *a, const int *b, int *c) {
	unsigned x = a[0];
	unsigned y = b[0];
	c[0] = x < y ? 1 : 0;
}`,
			Layout: layout(1, 1, 1, 8),
			Alice:  []uint32{77},
			Bob:    []uint32{200},
			Check: func(a, b []uint32) []uint32 {
				if a[0] < b[0] {
					return []uint32{1}
				}
				return []uint32{0}
			},
		}
	}
	var sb strings.Builder
	sb.WriteString("gc_main:\n")
	for i := 0; i < words; i++ {
		op := "sbcs"
		if i == 0 {
			op = "subs"
		}
		fmt.Fprintf(&sb, "\tldr r3, [r0, #%d]\n\tldr r4, [r1, #%d]\n\t%s r3, r3, r4\n", 4*i, 4*i, op)
	}
	// a < b  ⇔  borrow  ⇔  carry clear after the chain.
	sb.WriteString("\tmov r3, #0\n\tmovcc r3, #1\n\tstr r3, [r2]\n\tmov pc, lr\n")
	alice := make([]uint32, words)
	bob := make([]uint32, words)
	for i := range alice {
		alice[i] = uint32(i * 7)
		bob[i] = uint32(i * 7)
	}
	bob[words-1]++ // b > a in the top word
	return &Workload{
		Name:   fmt.Sprintf("Compare %d", n),
		Asm:    sb.String(),
		Layout: layout(words, words, 1, 8),
		Alice:  alice,
		Bob:    bob,
		Check: func(a, b []uint32) []uint32 {
			for i := words - 1; i >= 0; i-- {
				if a[i] != b[i] {
					if a[i] < b[i] {
						return []uint32{1}
					}
					return []uint32{0}
				}
			}
			return []uint32{0}
		},
	}
}

// HammingWorkload: Hamming distance of two n-bit strings (n/32 words),
// tree-based popcount per the paper's §5.4 note.
func HammingWorkload(n int) *Workload {
	words := (n + 31) / 32
	src := popcountC + fmt.Sprintf(`
void gc_main(const int *a, const int *b, int *c) {
	unsigned acc = 0;
	for (int i = 0; i < %d; i = i + 1) {
		acc = acc + popcount(a[i] ^ b[i]);
	}
	c[0] = acc;
}`, words)
	alice := make([]uint32, words)
	bob := make([]uint32, words)
	for i := range alice {
		alice[i] = 0xa5a5a5a5 ^ uint32(i*0x1111)
		bob[i] = 0x5a5a5a5a ^ uint32(i*0x2222)
	}
	return &Workload{
		Name:   fmt.Sprintf("Hamming %d", n),
		C:      src,
		Layout: layout(words, words, 1, 16),
		Alice:  alice,
		Bob:    bob,
		Check: func(a, b []uint32) []uint32 {
			return []uint32{ref.HammingWords(a, b)}
		},
	}
}

// HammingIntsWorkload is the garbled-MIPS comparison workload of §5.3:
// the Hamming distance between vectors of 32 32-bit integers, counting
// positions where the integers differ.
func HammingIntsWorkload(n int) *Workload {
	src := fmt.Sprintf(`
void gc_main(const int *a, const int *b, int *c) {
	int acc = 0;
	for (int i = 0; i < %d; i = i + 1) {
		acc = acc + (a[i] != b[i] ? 1 : 0);
	}
	c[0] = acc;
}`, n)
	alice := make([]uint32, n)
	bob := make([]uint32, n)
	for i := range alice {
		alice[i] = uint32(i)
		bob[i] = uint32(i % 5)
	}
	return &Workload{
		Name:   fmt.Sprintf("HammingInts %d", n),
		C:      src,
		Layout: layout(n, n, 1, 16),
		Alice:  alice,
		Bob:    bob,
		Check: func(a, b []uint32) []uint32 {
			var acc uint32
			for i := range a {
				if a[i] != b[i] {
					acc++
				}
			}
			return []uint32{acc}
		},
	}
}

// MultWorkload: 32-bit multiplication.
func MultWorkload() *Workload {
	return &Workload{
		Name:   "Mult 32",
		C:      "void gc_main(const int *a, const int *b, int *c) { c[0] = a[0] * b[0]; }",
		Layout: layout(1, 1, 1, 8),
		Alice:  []uint32{123456789},
		Bob:    []uint32{987654321},
		Check: func(a, b []uint32) []uint32 {
			return []uint32{a[0] * b[0]}
		},
	}
}

// MatrixMultWorkload: N×N 32-bit matrix product.
func MatrixMultWorkload(n int) *Workload {
	src := fmt.Sprintf(`
void gc_main(const int *a, const int *b, int *c) {
	for (int i = 0; i < %[1]d; i = i + 1) {
		for (int j = 0; j < %[1]d; j = j + 1) {
			int acc = 0;
			for (int k = 0; k < %[1]d; k = k + 1) {
				acc = acc + a[i * %[1]d + k] * b[k * %[1]d + j];
			}
			c[i * %[1]d + j] = acc;
		}
	}
}`, n)
	words := n * n
	alice := make([]uint32, words)
	bob := make([]uint32, words)
	for i := range alice {
		alice[i] = uint32(i + 1)
		bob[i] = uint32(2*i + 3)
	}
	return &Workload{
		Name:   fmt.Sprintf("MatrixMult%dx%d 32", n, n),
		C:      src,
		Layout: layout(words, words, words, 32),
		Alice:  alice,
		Bob:    bob,
		Check: func(a, b []uint32) []uint32 {
			out := make([]uint32, words)
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					var acc uint32
					for k := 0; k < n; k++ {
						acc += a[i*n+k] * b[k*n+j]
					}
					out[i*n+j] = acc
				}
			}
			return out
		},
	}
}

// BubbleSortWorkload: sort n XOR-shared 32-bit values (Table 5). All
// indices are public; the compare-and-swap is fully predicated.
func BubbleSortWorkload(n int) *Workload {
	src := fmt.Sprintf(`
void gc_main(const int *a, const int *b, int *c) {
	for (int i = 0; i < %[1]d; i = i + 1) {
		c[i] = a[i] ^ b[i];
	}
	for (int i = 0; i < %[1]d - 1; i = i + 1) {
		for (int j = 0; j < %[1]d - 1 - i; j = j + 1) {
			unsigned x = c[j];
			unsigned y = c[j + 1];
			if (x > y) {
				c[j] = y;
				c[j + 1] = x;
			}
		}
	}
}`, n)
	return sortWorkload("Bubble-Sort", n, src)
}

// MergeSortWorkload: bottom-up oblivious merge sort of n XOR-shared
// values. The merge walks with secret cursors, so every element access is
// an oblivious read at a secret address — the workload the paper uses to
// show SkipGate's subset-scan behaviour on memories (§4.4).
func MergeSortWorkload(n int) *Workload {
	src := fmt.Sprintf(`
void gc_main(const int *a, const int *b, int *c, int *s) {
	for (int i = 0; i < %[1]d; i = i + 1) {
		c[i] = a[i] ^ b[i];
	}
	int *src = c;
	int *dst = s;
	for (int width = 1; width < %[1]d; width = width * 2) {
		for (int lo = 0; lo < %[1]d; lo = lo + 2 * width) {
			int i = 0;
			int j = 0;
			for (int k = 0; k < 2 * width; k = k + 1) {
				unsigned av = i < width ? src[lo + i] : 0xffffffff;
				unsigned bv = j < width ? src[lo + width + j] : 0xffffffff;
				int takeA = av <= bv ? 1 : 0;
				dst[lo + k] = takeA ? av : bv;
				i = i + takeA;
				j = j + 1 - takeA;
			}
		}
		int *t = src;
		src = dst;
		dst = t;
	}
	if (src != c) {
		for (int i = 0; i < %[1]d; i = i + 1) {
			c[i] = s[i];
		}
	}
}`, n)
	return sortWorkload("Merge-Sort", n, src)
}

func sortWorkload(name string, n int, src string) *Workload {
	alice := make([]uint32, n)
	bob := make([]uint32, n)
	for i := range alice {
		alice[i] = uint32((i*2654435761 + 17) % 100000)
		bob[i] = uint32((i * i * 37) % 100000)
	}
	return &Workload{
		Name: fmt.Sprintf("%s%d 32", name, n),
		C:    src,
		// Power-of-two regions keep the arrays span-aligned so secret
		// cursors only make the low address bits secret (subset scans).
		Layout: layout(n, n, n, 2*n+16),
		Alice:  alice,
		Bob:    bob,
		Check: func(a, b []uint32) []uint32 {
			v := make([]uint32, n)
			for i := range v {
				v[i] = a[i] ^ b[i]
			}
			ref.BubbleSort(v)
			return v
		},
	}
}

// DijkstraWorkload: single-source shortest paths on an n-node dense graph
// (n² XOR-shared weights, 0 = no edge), data-oblivious selection of the
// minimum and relaxation through secret-indexed adjacency reads.
func DijkstraWorkload(n int) *Workload {
	src := fmt.Sprintf(`
void gc_main(const int *a, const int *b, int *c, int *s) {
	for (int i = 0; i < %[1]d * %[1]d; i = i + 1) {
		s[i] = a[i] ^ b[i];
	}
	for (int i = 0; i < %[1]d; i = i + 1) {
		c[i] = 0x7fffffff;
	}
	c[0] = 0;
	int visited = 0;
	for (int round = 0; round < %[1]d; round = round + 1) {
		int u = 0;
		unsigned best = 0xffffffff;
		for (int i = 0; i < %[1]d; i = i + 1) {
			unsigned di = c[i];
			int isv = (visited >> i) & 1;
			int better = isv == 0 && di < best;
			best = better ? di : best;
			u = better ? i : u;
		}
		visited = visited | (1 << u);
		int du = c[u];
		for (int v = 0; v < %[1]d; v = v + 1) {
			unsigned w = s[u * %[1]d + v];
			unsigned nd = du + w;
			unsigned dv = c[v];
			int upd = w != 0 && nd < dv;
			c[v] = upd ? nd : dv;
		}
	}
}`, n)
	adjA := make([]uint32, n*n)
	adjB := make([]uint32, n*n)
	// A ring with chords, XOR-shared.
	adj := make([]uint32, n*n)
	for i := 0; i < n; i++ {
		adj[i*n+(i+1)%n] = uint32(1 + i%3)
		adj[i*n+(i+3)%n] = uint32(5 + i%2)
	}
	for i := range adj {
		adjA[i] = uint32(i*2654435761 + 99)
		adjB[i] = adjA[i] ^ adj[i]
	}
	return &Workload{
		Name: fmt.Sprintf("Dijkstra%d 32", n*n),
		C:    src,
		// The adjacency share occupies n² scratch words; the rest is stack
		// headroom (every MiniC local gets its own slot).
		Layout: layout(n*n, n*n, n, n*n+64),
		Alice:  adjA,
		Bob:    adjB,
		Check: func(a, b []uint32) []uint32 {
			adj := make([]uint32, n*n)
			for i := range adj {
				adj[i] = a[i] ^ b[i]
			}
			dist := ref.Dijkstra(adj, n)
			out := make([]uint32, n)
			for i, d := range dist {
				if d == ^uint32(0) {
					out[i] = 0x7fffffff
				} else {
					out[i] = d
				}
			}
			return out
		},
	}
}

// CordicWorkload: 32-iteration circular-rotation CORDIC on Q2.30
// fixed-point. The iteration direction depends on the secret residual
// angle, handled branch-free with a sign mask (conditional negation), so
// the program counter stays public.
func CordicWorkload() *Workload {
	iters := 32
	tab := ref.CordicAtanTable(iters)
	var tabInit strings.Builder
	for i, v := range tab {
		fmt.Fprintf(&tabInit, "\tt[%d] = %d;\n", i, int32(v))
	}
	src := fmt.Sprintf(`
void gc_main(const int *a, const int *b, int *c) {
	int t[%d];
%s
	int x = a[0] ^ b[0];
	int y = a[1] ^ b[1];
	int z = a[2] ^ b[2];
	for (int i = 0; i < %d; i = i + 1) {
		int m = z >> 31;
		int xs = x >> i;
		int ys = y >> i;
		int ti = t[i];
		x = x - ((ys ^ m) - m);
		y = y + ((xs ^ m) - m);
		z = z - ((ti ^ m) - m);
	}
	c[0] = x;
	c[1] = y;
}`, iters, tabInit.String(), iters)

	k := ref.CordicGainQ30(iters)
	z := uint32(0.5 * float64(1<<30)) // rotate (K, 0) by 0.5 rad
	aliceShare := []uint32{0x13572468, 0x89abcdef, 0x52525252}
	bobShare := []uint32{aliceShare[0] ^ k, aliceShare[1] ^ 0, aliceShare[2] ^ z}
	return &Workload{
		Name:   "CORDIC 32",
		C:      src,
		Layout: layout(4, 4, 2, 64),
		Alice:  aliceShare,
		Bob:    bobShare,
		Check: func(a, b []uint32) []uint32 {
			x := int32(a[0] ^ b[0])
			y := int32(a[1] ^ b[1])
			zz := int32(a[2] ^ b[2])
			rx, ry := ref.CordicRotate(x, y, zz, iters, tab)
			return []uint32{uint32(rx), uint32(ry)}
		},
	}
}

// CordicDivWorkload: fixed-point division via linear-vectoring CORDIC —
// the §5.7 comparison point (the paper reports [12] needing 12,546
// non-XOR gates for division, "almost three times more than ARM2GC").
// The iteration direction depends on secret signs, handled branch-free
// with a sign mask as in CordicWorkload.
func CordicDivWorkload() *Workload {
	iters := 30
	src := fmt.Sprintf(`
void gc_main(const int *a, const int *b, int *c) {
	int y = a[0] ^ b[0];
	int x = a[1] ^ b[1];
	int z = 0;
	for (int i = 0; i < %d; i = i + 1) {
		int d = (y >> 31) ^ (x >> 31);
		int xs = x >> i;
		int step = 1 << (30 - i);
		y = y - ((xs ^ d) - d);
		z = z + ((step ^ d) - d);
	}
	c[0] = z;
}`, iters)
	q30 := func(f float64) uint32 { return uint32(int32(f * float64(int64(1)<<30))) }
	aliceShare := []uint32{0x0badf00d, 0x13371337}
	bobShare := []uint32{aliceShare[0] ^ q30(0.75), aliceShare[1] ^ q30(1.5)}
	return &Workload{
		Name:   "CORDIC-Div 32",
		C:      src,
		Layout: layout(2, 2, 1, 64),
		Alice:  aliceShare,
		Bob:    bobShare,
		Check: func(a, b []uint32) []uint32 {
			y := int32(a[0] ^ b[0])
			x := int32(a[1] ^ b[1])
			return []uint32{uint32(ref.CordicDiv(y, x, iters))}
		},
	}
}

// RelaxWorkload is the oblivious-memory crossover workload: a
// relaxation-pass kernel over an n-word array (n a power of two), the
// access pattern of a Dijkstra/Bellman-Ford distance pass where most
// relaxations only read and few update. It performs 256 gather loads and
// 16 scatter stores at secret addresses, interleaved, plus one readback
// load. The array is Alice's input region itself: region-aligned at word
// zero, so the secret addresses have public high bits and the scans (and
// the store poison) stay confined to the array — the stack keeps its
// public classification and the PC stays public throughout.
//
// Under the linear scan each access pays ~32-34 tables per array word;
// under the square-root ORAM the 16 stores stay in the stash (never
// wrapping it), so their ~34n bank write-backs are never paid — a saving
// linear in n against a stash overlay tax on loads that grows as √n.
func RelaxWorkload(n int) *Workload {
	if n&(n-1) != 0 || n < 16 {
		panic("RelaxWorkload: n must be a power of two >= 16")
	}
	src := fmt.Sprintf(`
void gc_main(int *a, const int *b, int *c) {
	unsigned acc = 0;
	for (int k = 0; k < 256; k = k + 1) {
		unsigned i = (b[k & 63] ^ k) & %[1]d;
		unsigned v = a[i];
		acc = acc + v;
		if ((k & 15) == 0) {
			a[i] = acc ^ k;
		}
	}
	c[0] = acc;
	c[1] = a[(b[0] ^ 3) & %[1]d];
}`, n-1)
	alice := make([]uint32, n)
	bob := make([]uint32, 64)
	for i := range alice {
		alice[i] = uint32(i*2654435761 + 17)
	}
	for i := range bob {
		bob[i] = uint32(i*40499 + 3)
	}
	return &Workload{
		Name:   fmt.Sprintf("Relax %d", n),
		C:      src,
		Layout: isa.Layout{IMemWords: 64, AliceWords: n, BobWords: 64, OutWords: 8, ScratchWords: 64},
		Alice:  alice,
		Bob:    bob,
		Check: func(a, b []uint32) []uint32 {
			arr := append([]uint32(nil), a...)
			var acc uint32
			for k := 0; k < 256; k++ {
				i := (b[k&63] ^ uint32(k)) & uint32(n-1)
				acc += arr[i]
				if k&15 == 0 {
					arr[i] = acc ^ uint32(k)
				}
			}
			out := make([]uint32, 8)
			out[0] = acc
			out[1] = arr[(b[0]^3)&uint32(n-1)]
			return out
		},
	}
}

// RelaxAccesses is the kernel's secret-address memory-access count (256
// gather loads + 16 scatter stores + 1 readback load), the denominator of
// the tables-per-access metric.
const RelaxAccesses = 256 + 16 + 1
