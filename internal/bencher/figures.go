package bencher

import (
	"context"
	"fmt"

	"arm2gc/internal/build"
	"arm2gc/internal/circuit"
	"arm2gc/internal/core"
	"arm2gc/internal/cpu"
	"arm2gc/internal/emu"
	"arm2gc/internal/isa"
)

// Figure1 demonstrates the Phase-1 category i/ii rewrites: gates with
// public inputs become constants, wires, or inverters — zero tables.
func Figure1() (*Table, error) {
	t := &Table{
		Title:  "Figure 1 — Phase 1: gates with public inputs are replaced by 0/1/wire/inverter",
		Header: []string{"Gate", "Public input", "Becomes", "Garbled tables"},
	}
	// The secret side is AND(s1,s2) so there is a garbleable producer to
	// release; p is a public input wire.
	cases := []struct {
		name, pub, becomes string
		pval               bool
		mk                 func(b *build.Builder, p, s build.W) build.W
		want               int
	}{
		{"AND(p, s)", "p=0", "constant 0, s released", false,
			func(b *build.Builder, p, s build.W) build.W { return b.And(p, s) }, 0},
		{"OR(p, s)", "p=1", "constant 1, s released", true,
			func(b *build.Builder, p, s build.W) build.W { return b.Or(p, s) }, 1},
		{"AND(p, s)", "p=1", "wire to s", true,
			func(b *build.Builder, p, s build.W) build.W { return b.And(p, s) }, 1 + 1},
		{"NAND(p, s)", "p=1", "inverter of s", true,
			func(b *build.Builder, p, s build.W) build.W { return b.Nand(p, s) }, 1 + 1},
	}
	for _, tc := range cases {
		b := build.New("fig1")
		p := b.Input(circuit.Public, "p", 1)[0]
		s1 := b.Input(circuit.Alice, "s1", 1)[0]
		s2 := b.Input(circuit.Bob, "s2", 1)[0]
		s := b.And(s1, s2) // the secret producer that may be released
		out := tc.mk(b, p, s)
		// A second consumer keeps the producer live in the wire cases.
		b.Output("o", build.Bus{out, b.Xor(out, s1)})
		c, err := b.Compile()
		if err != nil {
			return nil, err
		}
		st, err := core.Count(context.Background(), c, []bool{tc.pval}, core.CountOpts{Cycles: 1})
		if err != nil {
			return nil, err
		}
		want := 0
		if tc.becomes[0] == 'w' || tc.becomes[0] == 'i' {
			want = 1 // only the AND producing s survives
		}
		_ = want
		t.Rows = append(t.Rows, []string{tc.name, tc.pub, tc.becomes, fmt.Sprintf("%d", st.Total.Garbled)})
	}
	t.Notes = append(t.Notes,
		"constant cases release the secret producer cone recursively (0 tables); wire/inverter cases keep only the producer (1 table)")
	return t, nil
}

// Figure2 demonstrates Phase-2 category iii/iv: identical or inverted
// secret labels collapse gates for free. The builder folds textbook x∧x at
// construction time, so each case routes the label through a MUX with a
// public select — the wires are structurally distinct and only SkipGate's
// runtime fingerprint comparison can discover the relation.
func Figure2() (*Table, error) {
	t := &Table{
		Title:  "Figure 2 — Phase 2: gates with identical/inverted secret labels",
		Header: []string{"Gate", "Relation", "Becomes", "Garbled tables"},
	}
	cases := []struct {
		name, rel, becomes string
		mk                 func(b *build.Builder, p, s, s1, s2, alias build.W) build.W
		want               int
	}{
		{"XOR(s, s)", "identical", "constant 0 (producers released)",
			func(b *build.Builder, p, s, s1, s2, alias build.W) build.W {
				return b.Xor(alias, s)
			}, 0},
		{"AND(s, ¬s)", "inverted", "constant 0 (producers released)",
			func(b *build.Builder, p, s, s1, s2, alias build.W) build.W {
				return b.And(alias, b.Not(s))
			}, 0},
		{"AND(s, s)", "identical", "wire to s (producer ships)",
			func(b *build.Builder, p, s, s1, s2, alias build.W) build.W {
				return b.And(alias, s)
			}, 1},
		{"AND(s1, s2)", "unrelated", "garbled (category iv)",
			func(b *build.Builder, p, s, s1, s2, alias build.W) build.W {
				return b.And(b.Xor(s1, s), b.Xor(s2, s))
			}, 2},
	}
	for _, tc := range cases {
		b := build.New("fig2")
		p := b.Input(circuit.Public, "p", 1)[0]
		s1 := b.Input(circuit.Alice, "s1", 1)[0]
		s2 := b.Input(circuit.Bob, "s2", 1)[0]
		s := b.And(s1, s2)
		// alias carries s's label at runtime (public select = 1) but is a
		// distinct wire to the builder.
		alias := b.Mux(p, s, s1)
		out := tc.mk(b, p, s, s1, s2, alias)
		b.Output("o", build.Bus{out})
		c, err := b.Compile()
		if err != nil {
			return nil, err
		}
		st, err := core.Count(context.Background(), c, []bool{true}, core.CountOpts{Cycles: 1})
		if err != nil {
			return nil, err
		}
		if st.Total.Garbled != tc.want {
			return nil, fmt.Errorf("figure 2 %s: garbled %d, want %d", tc.name, st.Total.Garbled, tc.want)
		}
		t.Rows = append(t.Rows, []string{tc.name, tc.rel, tc.becomes, fmt.Sprintf("%d", st.Total.Garbled)})
	}
	return t, nil
}

// Figure3 demonstrates the recursive label_fanout reduction: a public-0
// AND at the end of a chain releases the whole upstream cone, including a
// gate that was already garbled in topological order (its table is
// filtered before sending — Algorithm 4 line 18).
func Figure3() (*Table, error) {
	b := build.New("fig3")
	p := b.Input(circuit.Public, "p", 1)[0]
	a := b.Input(circuit.Alice, "a", 8)
	x := b.Input(circuit.Bob, "x", 8)
	// A 5-gate chain of real work...
	chain := b.And(a[0], x[0])
	for i := 1; i < 5; i++ {
		chain = b.And(chain, b.Xor(a[i], x[i]))
	}
	// ...killed by AND with public 0 at the very end.
	killed := b.And(chain, p)
	// And one surviving gate for contrast.
	alive := b.And(a[7], x[7])
	b.Output("o", build.Bus{killed, alive})
	c, err := b.Compile()
	if err != nil {
		return nil, err
	}
	stOff, err := core.Count(context.Background(), c, []bool{true}, core.CountOpts{Cycles: 1}) // p=1: chain used
	if err != nil {
		return nil, err
	}
	stOn, err := core.Count(context.Background(), c, []bool{false}, core.CountOpts{Cycles: 1}) // p=0: chain dead
	if err != nil {
		return nil, err
	}
	return &Table{
		Title:  "Figure 3 — recursive label_fanout reduction",
		Header: []string{"Public input", "Garbled tables", "Explanation"},
		Rows: [][]string{
			{"p = 1 (chain consumed)", fmt.Sprintf("%d", stOff.Total.Garbled), "5-gate chain + 1 independent gate all garbled"},
			{"p = 0 (AND kills chain)", fmt.Sprintf("%d", stOn.Total.Garbled), "reduction cascades through the chain; only the independent gate ships"},
		},
	}, nil
}

// Figure5 reproduces the conditional-execution comparison: the same
// max()-style computation compiled (a) with branches on a secret
// condition and (b) with predicated instructions. The branch version's
// secret program counter forces the whole fetch path to be garbled.
func Figure5() (*Table, error) {
	l := isa.Layout{IMemWords: 64, AliceWords: 1, BobWords: 1, OutWords: 1, ScratchWords: 8}

	// (a) Without conditional execution: bne over a secret comparison.
	branchy := `
gc_main:
	ldr r8, [r0]
	ldr r9, [r1]
	cmp r8, r9
	bne L0
	mov r1, #10
	b L1
L0:
	mov r2, #20
	nop
L1:
	str r1, [r2]
	swi 0
`
	// (b) With conditional execution (the compiler's predication).
	predicated := `
gc_main:
	ldr r8, [r0]
	ldr r9, [r1]
	cmp r8, r9
	moveq r1, #10
	movne r2, #20
	str r1, [r2]
	swi 0
`
	// The store target differs between the two on purpose in the paper's
	// fragment; we only measure garbling cost, not output equality.
	costOf := func(src string) (int64, int, error) {
		p, err := isa.Link("fig5", src, l)
		if err != nil {
			return 0, 0, err
		}
		c, err := cpu.Shared(l)
		if err != nil {
			return 0, 0, err
		}
		pub, err := c.PublicBits(p)
		if err != nil {
			return 0, 0, err
		}
		// Fixed cycle budget: the branchy version's cycle count is itself
		// secret-dependent, so run both for the worst case.
		st, err := core.Count(context.Background(), c.Circuit, pub, core.CountOpts{Cycles: 14})
		if err != nil {
			return 0, 0, err
		}
		return int64(st.Total.Garbled), st.Cycles, nil
	}
	gb, _, err := costOf(branchy)
	if err != nil {
		return nil, fmt.Errorf("branchy: %w", err)
	}
	gp, _, err := costOf(predicated)
	if err != nil {
		return nil, fmt.Errorf("predicated: %w", err)
	}
	return &Table{
		Title:  "Figure 5 — conditional branches vs conditional execution on a secret comparison",
		Header: []string{"Code shape", "Garbled tables", "Program counter"},
		Rows: [][]string{
			{"(a) bne/b over secret flags", num(gb), "secret after the branch: fetch, decode, everything garbles"},
			{"(b) moveq/movne predication", num(gp), "public throughout: only the compare and the two guarded writes cost"},
		},
	}, nil
}

// Figure6 quantifies the secret-PC blowup per cycle once a branch on
// secret flags executes (the case ARM's conditional execution avoids).
func Figure6() (*Table, error) {
	l := isa.Layout{IMemWords: 64, AliceWords: 1, BobWords: 1, OutWords: 1, ScratchWords: 8}
	src := `
gc_main:
	ldr r8, [r0]
	ldr r9, [r1]
	cmp r8, r9
	bne L0
	add r1, r2, r3
	b L1
L0:
	sub r5, r6, r7
	nop
L1:
	swi 0
`
	p, err := isa.Link("fig6", src, l)
	if err != nil {
		return nil, err
	}
	c, err := cpu.Shared(l)
	if err != nil {
		return nil, err
	}
	pub, err := c.PublicBits(p)
	if err != nil {
		return nil, err
	}
	m, err := emu.New(p, []uint32{5}, []uint32{5})
	if err != nil {
		return nil, err
	}
	if _, err := m.Run(100); err != nil {
		return nil, err
	}
	s := core.NewScheduler(c.Circuit, core.Seed{}, pub)
	t := &Table{
		Title:  "Figure 6 — a secret branch makes the program counter secret (per-cycle garbled tables)",
		Header: []string{"Cycle", "Garbled tables", "What happened"},
	}
	labels := []string{
		"startup (public)", "startup", "startup", "startup", "startup",
		"bl gc_main", "ldr", "ldr", "cmp (secret flags)",
		"bne on secret flags → PC goes secret",
		"secret fetch: both arms garble", "secret fetch", "secret fetch", "secret fetch",
	}
	for cyc := 1; cyc <= 14; cyc++ {
		cs := s.Classify(false)
		what := ""
		if cyc-1 < len(labels) {
			what = labels[cyc-1]
		}
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%d", cyc), num(int64(cs.Garbled)), what})
		s.Commit()
	}
	t.Notes = append(t.Notes,
		"the nop padding keeps both arms the same length so the PC re-converges (the mitigation [45] uses); ARM2GC avoids the whole episode via predication")
	return t, nil
}
