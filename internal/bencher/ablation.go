package bencher

import (
	"context"
	"fmt"

	"arm2gc/internal/build"
	"arm2gc/internal/circuit"
	"arm2gc/internal/core"
	"arm2gc/internal/isa"
	"arm2gc/internal/obliv"
)

// Ablations for the design decisions DESIGN.md calls out: the atomic MUX
// cell, and the linear-scan oblivious memory of §4.4.

// AblationMuxCell quantifies the MUX-cell decision: a 32-bit selection
// between two ≈1,000-table multiplier cones, built (a) with atomic MUX
// cells and (b) with the free-XOR decomposition a0 ⊕ (s ∧ (a0⊕a1)).
// The decomposition happens to prune fine when the public select is 0
// (AND-with-0 releases the difference cone), but at select = 1 the AND
// passes the XOR difference through, whose labels consume *both* cones —
// the atomic cell releases the unselected one in both polarities. Under a
// secret select the two cost the same. The processor's result and memory
// muxes see public selects constantly, which is why the netlist format
// keeps MUX atomic.
func AblationMuxCell() (*Table, error) {
	mk := func(atomic bool, owner circuit.Owner) (*circuit.Circuit, error) {
		b := build.New("mux-ablation")
		sel := b.Input(owner, "sel", 1)[0]
		a := b.Input(circuit.Alice, "a", 32)
		x := b.Input(circuit.Bob, "x", 32)
		// Two cones of real work: a*x and a*¬x (≈993 tables each).
		f0 := b.MulLow(a, x)
		f1 := b.MulLow(a, b.NotBus(x))
		out := make(build.Bus, 32)
		for i := range out {
			if atomic {
				out[i] = b.Mux(sel, f1[i], f0[i])
			} else {
				out[i] = b.Xor(f0[i], b.And(sel, b.Xor(f0[i], f1[i])))
			}
		}
		b.Output("o", out)
		return b.Compile()
	}
	t := &Table{
		Title:  "Ablation — atomic MUX cell vs free-XOR decomposition (select between two ≈1k-table multipliers)",
		Header: []string{"Mux construction", "Select", "Garbled tables"},
	}
	for _, tc := range []struct {
		atomic bool
		owner  circuit.Owner
		sel    bool
		label  string
	}{
		{true, circuit.Public, false, "public 0"},
		{false, circuit.Public, false, "public 0"},
		{true, circuit.Public, true, "public 1"},
		{false, circuit.Public, true, "public 1"},
		{true, circuit.Alice, false, "secret"},
		{false, circuit.Alice, false, "secret"},
	} {
		c, err := mk(tc.atomic, tc.owner)
		if err != nil {
			return nil, err
		}
		var pub []bool
		if tc.owner == circuit.Public {
			pub = []bool{tc.sel}
		}
		st, err := core.Count(context.Background(), c, pub, core.CountOpts{Cycles: 1})
		if err != nil {
			return nil, err
		}
		name := "XOR decomposition"
		if tc.atomic {
			name = "atomic MUX cell"
		}
		t.Rows = append(t.Rows, []string{name, tc.label, num(int64(st.Total.Garbled))})
	}
	t.Notes = append(t.Notes,
		"at public select 1 the decomposition ships both multipliers (≈2x); the atomic cell always ships exactly the selected one",
		"with a secret select both constructions pay one table per output bit plus both cones — atomicity costs nothing")
	return t, nil
}

// AblationObliviousScan measures the paper's §4.4 argument: the garbled
// cost of one load at a secret address as the enclosing memory grows.
// Linear scaling in the scanned region is the reason ARM2GC uses MUX
// arrays instead of ORAM below the break-even sizes — and the reason
// aligned arrays matter (only the aligned enclosing region is scanned).
func AblationObliviousScan() (*Table, error) {
	t := &Table{
		Title:  "Ablation — oblivious load cost vs data-memory size (one LDR at a secret address)",
		Header: []string{"Array words", "Garbled tables/load", "Tables/word"},
	}
	for _, words := range []int{8, 16, 32, 64, 128, 256} {
		// gc_main loads a[x] where x = b[0] is secret, bounded to the
		// array; the array region is words-aligned by construction.
		src := fmt.Sprintf(`
void gc_main(const int *a, const int *b, int *c) {
	int idx = b[0] & %d;
	c[0] = a[idx];
}`, words-1)
		w := &Workload{
			Name:   fmt.Sprintf("scan-%d", words),
			C:      src,
			Layout: isa.Layout{IMemWords: 64, AliceWords: words, BobWords: words, OutWords: words, ScratchWords: words},
			Alice:  seq(words),
			Bob:    []uint32{uint32(words / 2)},
			Check: func(a, b []uint32) []uint32 {
				out := make([]uint32, words)
				out[0] = a[b[0]&uint32(words-1)]
				return out
			},
		}
		res, err := RunOnCPU(w)
		if err != nil {
			return nil, err
		}
		// Subtract the fixed masking cost measured at the smallest size? No:
		// report raw and let the linear trend speak.
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", words),
			num(int64(res.Garbled())),
			fmt.Sprintf("%.1f", float64(res.Garbled())/float64(words)),
		})
	}
	t.Notes = append(t.Notes,
		"cost grows linearly in the scanned region (≈32 tables per word: a 32-bit MUX per candidate), the paper's linear-scan regime; ORAM break-evens cited in §4.4 start at 2-8KB",
		"the whole data memory scales with the array here; with mixed regions only the aligned enclosing region is scanned (see the merge-sort workload)")
	return t, nil
}

// AblationMemoryBackend measures the oblivious-memory backend decision:
// garbled tables per secret-address memory access on the relaxation
// kernel (RelaxWorkload) under the linear scan vs the square-root ORAM,
// as the array grows through the break-even. The scan pays ~32-34 tables
// per array word on every access; the ORAM elides the store write-backs
// (linear in n) against a stash overlay tax on loads (√n), so the ratio
// crosses 1 around 1KB of data memory and the 2KB default threshold sits
// safely inside the win region.
func AblationMemoryBackend(big bool) (*Table, error) {
	t := &Table{
		Title:  "Ablation — oblivious memory backend (relaxation kernel: 256 gather loads, 16 scatter stores at secret addresses)",
		Header: []string{"Array words", "Data memory", "Scan tables/access", "Sqrt-ORAM tables/access", "Ratio"},
	}
	sizes := []int{64, 128, 256}
	if big {
		sizes = append(sizes, 512, 1024)
	}
	for _, n := range sizes {
		w := RelaxWorkload(n)
		scan, err := RunOnCPUMem(w, obliv.Config{Backend: obliv.Scan})
		if err != nil {
			return nil, err
		}
		sqrt, err := RunOnCPUMem(w, obliv.Config{Backend: obliv.SqrtORAM})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%d B", w.Layout.DataWords()*4),
			num(int64(scan.Garbled() / RelaxAccesses)),
			num(int64(sqrt.Garbled() / RelaxAccesses)),
			fmt.Sprintf("%.4f", float64(sqrt.Garbled())/float64(scan.Garbled())),
		})
	}
	t.Notes = append(t.Notes,
		"the ORAM's win is the elided store write-backs: each of the 16 scatter stores saves ~34 tables/word while its deferred value rides the √window stash; loads pay ~40 tables per occupied slot of overlay",
		"below ~1KB the overlay tax outweighs the elision and the scan wins — the auto backend switches at 2KB (obliv.DefaultThreshold), the low end of the paper's cited ORAM break-even range")
	return t, nil
}

func seq(n int) []uint32 {
	v := make([]uint32, n)
	for i := range v {
		v[i] = uint32(i * 31)
	}
	return v
}

// AblationZFlag quantifies the Table 2 Sum-1024 discrepancy: the
// architectural zero flag is an OR-tree over the 32-bit result, garbled
// whenever an S-suffixed instruction executes on secret data even if no
// later instruction reads it.
func AblationZFlag() (*Table, error) {
	adds := &Workload{
		Name: "adds (sets flags)",
		Asm: `
gc_main:
	ldr r3, [r0]
	ldr r4, [r1]
	adds r3, r3, r4
	str r3, [r2]
	mov pc, lr
`,
		Layout: layout(1, 1, 1, 8),
		Alice:  []uint32{1}, Bob: []uint32{2},
		Check: func(a, b []uint32) []uint32 { return []uint32{a[0] + b[0]} },
	}
	add := &Workload{
		Name: "add (no flags)",
		Asm: `
gc_main:
	ldr r3, [r0]
	ldr r4, [r1]
	add r3, r3, r4
	str r3, [r2]
	mov pc, lr
`,
		Layout: layout(1, 1, 1, 8),
		Alice:  []uint32{1}, Bob: []uint32{2},
		Check: func(a, b []uint32) []uint32 { return []uint32{a[0] + b[0]} },
	}
	t := &Table{
		Title:  "Ablation — the architectural Z flag (why our Sum 1024 costs 2x the paper's)",
		Header: []string{"Instruction", "Garbled tables"},
	}
	for _, w := range []*Workload{add, adds} {
		res, err := RunOnCPU(w)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{w.Name, num(int64(res.Garbled()))})
	}
	t.Notes = append(t.Notes,
		"the S suffix adds ≈33 tables: the 31-AND zero-flag OR-tree plus carry/overflow muxes; multi-word arithmetic (ADDS/ADCS chains) pays it per word")
	return t, nil
}
