// Package bencher holds the benchmark library: the TinyGarble-style
// hand-built sequential circuits of Tables 1–2 (Sum, Compare, Hamming,
// Mult, MatrixMult, SHA3-256, AES-128), the MiniC/assembly programs for
// the processor path, and the workloads/parameters of every experiment.
package bencher

import (
	"fmt"
	"sync"

	"arm2gc/internal/build"
)

// GF(2^8) tower-field arithmetic for the AES S-box circuit. The S-box is
// inversion in GF(2^8) plus an affine map; inversion is cheap in the tower
// GF(((2^2)^2)^2) — about 36 AND gates versus thousands for a table scan.
// The basis change between the AES polynomial basis (x^8+x^4+x^3+x+1) and
// the tower is a GF(2)-linear map found by an isomorphism search at
// startup, so no magic matrices are hard-coded.
//
// Tower encodings: a GF(2^2) element is 2 bits (poly u²+u+1); a GF(2^4)
// element is two GF(2^2) crumbs [hi:2|lo:2] (poly v²+v+N); a GF(2^8)
// element is two GF(2^4) nibbles [hi:4|lo:4] (poly w²+w+M).

const gf4N = 2 // N = u: v²+v+u is irreducible over GF(2²)

// gf2Mul multiplies in GF(2²).
func gf2Mul(a, b uint8) uint8 {
	p := (a >> 1) & (b >> 1) & 1
	q := a & b & 1
	m := ((a ^ a>>1) & (b ^ b>>1)) & 1
	return (m^q)<<1 | (q ^ p)
}

// gf4Mul multiplies in GF(2⁴) = GF(2²)[v]/(v²+v+N).
func gf4Mul(a, b uint8) uint8 {
	ah, al := a>>2&3, a&3
	bh, bl := b>>2&3, b&3
	t := gf2Mul(ah, bh)
	u := gf2Mul(al, bl)
	v := gf2Mul(ah^al, bh^bl)
	hi := v ^ u
	lo := u ^ gf2Mul(t, gf4N)
	return hi<<2 | lo
}

// gf8Mul multiplies in GF(2⁸) = GF(2⁴)[w]/(w²+w+M).
func gf8Mul(m, a, b uint8) uint8 {
	ah, al := a>>4&15, a&15
	bh, bl := b>>4&15, b&15
	t := gf4Mul(ah, bh)
	u := gf4Mul(al, bl)
	v := gf4Mul(ah^al, bh^bl)
	hi := v ^ u
	lo := u ^ gf4Mul(t, m)
	return hi<<4 | lo
}

// aesMul multiplies in the AES field GF(2⁸) mod x⁸+x⁴+x³+x+1.
func aesMul(a, b uint8) uint8 {
	var p uint8
	for i := 0; i < 8; i++ {
		if b&1 == 1 {
			p ^= a
		}
		hi := a & 0x80
		a <<= 1
		if hi != 0 {
			a ^= 0x1b
		}
		b >>= 1
	}
	return p
}

// towerParams holds the searched tower description.
type towerParams struct {
	M        uint8      // GF(2⁴) constant of the degree-2 extension
	Phi, Psi [256]uint8 // AES→tower isomorphism and its inverse
	SboxRef  [256]uint8 // reference AES S-box (derived, for tests)
}

var (
	towerOnce sync.Once
	tower     towerParams
)

// Tower returns the tower parameters, computing them on first use.
func Tower() *towerParams {
	towerOnce.Do(func() {
		m, ok := findM()
		if !ok {
			panic("bencher: no irreducible w²+w+M over GF(2⁴)")
		}
		tower.M = m
		phi, psi, ok := findIso(m)
		if !ok {
			panic("bencher: no field isomorphism found")
		}
		tower.Phi, tower.Psi = phi, psi
		for x := 0; x < 256; x++ {
			tower.SboxRef[x] = aesAffine(aesInv(uint8(x)))
		}
	})
	return &tower
}

func findM() (uint8, bool) {
	for m := uint8(1); m < 16; m++ {
		root := false
		for t := uint8(0); t < 16; t++ {
			if gf4Mul(t, t)^t == m {
				root = true
				break
			}
		}
		if !root {
			return m, true
		}
	}
	return 0, false
}

// findIso searches for a field isomorphism φ: AES→tower by mapping the
// AES generator 0x03 to candidate tower generators and checking
// additivity (multiplicativity holds by construction).
func findIso(m uint8) (phi, psi [256]uint8, ok bool) {
	var aesPow [255]uint8
	g := uint8(1)
	for i := range aesPow {
		aesPow[i] = g
		g = aesMul(g, 0x03)
	}
	if g != 1 {
		panic("bencher: 0x03 is not a generator of the AES field")
	}
	for cand := uint8(2); cand != 0; cand++ {
		// Build φ multiplicatively.
		var p [256]uint8
		t := uint8(1)
		okCand := true
		for i := 0; i < 255; i++ {
			p[aesPow[i]] = t
			t = gf8Mul(m, t, cand)
		}
		if t != 1 || p[1] != 1 {
			continue // candidate order divides but is not 255
		}
		// Additivity check over a spanning set: φ(x ⊕ 2^k) = φ(x) ⊕ φ(2^k)
		// for all x and basis elements is equivalent to full linearity.
		for k := 0; k < 8 && okCand; k++ {
			b := uint8(1) << k
			for x := 0; x < 256; x++ {
				if p[uint8(x)^b] != p[x]^p[b] {
					okCand = false
					break
				}
			}
		}
		if !okCand {
			continue
		}
		var q [256]uint8
		for x := 0; x < 256; x++ {
			q[p[x]] = uint8(x)
		}
		return p, q, true
	}
	return phi, psi, false
}

// aesInv computes inversion in the AES field (0 maps to 0).
func aesInv(x uint8) uint8 {
	// x^254 by square-and-multiply.
	r := uint8(1)
	p := x
	for e := 254; e > 0; e >>= 1 {
		if e&1 == 1 {
			r = aesMul(r, p)
		}
		p = aesMul(p, p)
	}
	return r
}

// aesAffine applies the AES S-box affine transform.
func aesAffine(x uint8) uint8 {
	rotl := func(v uint8, n uint) uint8 { return v<<n | v>>(8-n) }
	return x ^ rotl(x, 1) ^ rotl(x, 2) ^ rotl(x, 3) ^ rotl(x, 4) ^ 0x63
}

// --- Circuit-level tower cells ---

// cGf2Mul multiplies two GF(2²) elements. Cost: 3 AND.
func cGf2Mul(b *build.Builder, a, x build.Bus) build.Bus {
	p := b.And(a[1], x[1])
	q := b.And(a[0], x[0])
	m := b.And(b.Xor(a[0], a[1]), b.Xor(x[0], x[1]))
	return build.Bus{b.Xor(q, p), b.Xor(m, q)}
}

// cGf2MulN multiplies by the constant N = u. Cost: 0.
func cGf2MulN(b *build.Builder, a build.Bus) build.Bus {
	// (a1 u + a0)·u = a1 u² + a0 u = a1(u+1) + a0 u = (a0^a1)u + a1.
	return build.Bus{a[1], b.Xor(a[0], a[1])}
}

// cGf2Sq squares (free: Frobenius is linear).
func cGf2Sq(b *build.Builder, a build.Bus) build.Bus {
	// (a1 u + a0)² = a1 u² + a0 = (a0^a1) + a1 u ... square = inverse in GF(4).
	return build.Bus{b.Xor(a[0], a[1]), a[1]}
}

// cGf4Mul multiplies two GF(2⁴) elements. Cost: 9 AND.
func cGf4Mul(b *build.Builder, a, x build.Bus) build.Bus {
	ah, al := a[2:4], a[0:2]
	xh, xl := x[2:4], x[0:2]
	t := cGf2Mul(b, ah, xh)
	u := cGf2Mul(b, al, xl)
	v := cGf2Mul(b, b.XorBus(ah, al), b.XorBus(xh, xl))
	hi := b.XorBus(v, u)
	lo := b.XorBus(u, cGf2MulN(b, t))
	return append(lo, hi...)
}

// cGf4Sq squares in GF(2⁴) (free).
func cGf4Sq(b *build.Builder, a build.Bus) build.Bus {
	ah, al := a[2:4], a[0:2]
	h := cGf2Sq(b, ah)
	l := b.XorBus(cGf2Sq(b, al), cGf2MulN(b, cGf2Sq(b, ah)))
	return append(l, h...)
}

// cGf4Inv inverts in GF(2⁴). Cost: 9 AND.
func cGf4Inv(b *build.Builder, a build.Bus) build.Bus {
	ah, al := a[2:4], a[0:2]
	// Δ = ah²·N ⊕ ah·al ⊕ al²; Δ⁻¹ = Δ² in GF(2²).
	d := b.XorBus(b.XorBus(cGf2MulN(b, cGf2Sq(b, ah)), cGf2Mul(b, ah, al)), cGf2Sq(b, al))
	dInv := cGf2Sq(b, d)
	h := cGf2Mul(b, ah, dInv)
	l := cGf2Mul(b, b.XorBus(ah, al), dInv)
	return append(l, h...)
}

// cGf8Inv inverts in the tower GF(2⁸). Cost: 36 AND.
func cGf8Inv(b *build.Builder, a build.Bus) build.Bus {
	t := Tower()
	mConst := build.ConstBus(uint64(t.M), 4)
	ah, al := a[4:8], a[0:4]
	// Δ = ah²·M ⊕ ah·al ⊕ al².
	sqH := cGf4Sq(b, ah)
	d := b.XorBus(b.XorBus(cGf4Mul(b, sqH, mConst), cGf4Mul(b, ah, al)), cGf4Sq(b, al))
	dInv := cGf4Inv(b, d)
	h := cGf4Mul(b, ah, dInv)
	l := cGf4Mul(b, b.XorBus(ah, al), dInv)
	return append(l, h...)
}

// cLinearMap applies a GF(2)-linear byte map given by its images of the
// basis vectors. Cost: 0 (XOR trees).
func cLinearMap(b *build.Builder, cols [8]uint8, in build.Bus) build.Bus {
	out := make(build.Bus, 8)
	for j := 0; j < 8; j++ {
		var terms []build.W
		for i := 0; i < 8; i++ {
			if cols[i]>>j&1 == 1 {
				terms = append(terms, in[i])
			}
		}
		out[j] = b.XorTree(terms)
	}
	return out
}

// CSbox is the AES S-box circuit: basis change in, tower inversion, basis
// change + affine out. Cost: 36 AND.
func CSbox(b *build.Builder, in build.Bus) build.Bus {
	t := Tower()
	var phiCols, outCols [8]uint8
	for i := 0; i < 8; i++ {
		phiCols[i] = t.Phi[1<<i]
		outCols[i] = aesAffine(t.Psi[1<<i]) ^ 0x63 // linear part only
	}
	tw := cLinearMap(b, phiCols, in)
	inv := cGf8Inv(b, tw)
	lin := cLinearMap(b, outCols, inv)
	return b.XorBus(lin, build.ConstBus(0x63, 8))
}

// cXtime multiplies a state byte by x in the AES field (free).
func cXtime(b *build.Builder, a build.Bus) build.Bus {
	out := make(build.Bus, 8)
	msb := a[7]
	for j := 7; j >= 1; j-- {
		out[j] = a[j-1]
	}
	out[0] = build.F
	// reduce by 0x1b when the msb was set: bits 0,1,3,4 flip.
	for _, j := range []int{0, 1, 3, 4} {
		out[j] = b.Xor(out[j], msb)
	}
	return out
}

func init() {
	// Fail fast if the search space assumptions break on this build.
	if gf2Mul(2, 2) != 3 {
		panic(fmt.Sprintf("bencher: GF(2²) sanity: u·u = %d, want u+1 = 3", gf2Mul(2, 2)))
	}
}
