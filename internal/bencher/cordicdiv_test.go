package bencher

import "testing"

func TestCordicDivWorkload(t *testing.T) {
	w := CordicDivWorkload()
	r, err := RunOnCPU(w)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("CORDIC division: %d garbled over %d cycles (paper cites 12,546 for [12]; ARM2GC ≈1/3 of that)",
		r.Garbled(), r.Cycles)
	// ≈ 2 conditional add/sub per iteration × 30 iterations ≈ 4k.
	if r.Garbled() < 1000 || r.Garbled() > 8000 {
		t.Errorf("division cost %d, want well under [12]'s 12,546", r.Garbled())
	}
	if err := VerifyOnCPU(w); err != nil {
		t.Fatal(err)
	}
}
