package bencher

import (
	"arm2gc/internal/build"
	"arm2gc/internal/circuit"
)

type circuitT = circuit.Circuit

func newTestBuilder(name string) *build.Builder { return build.New(name) }

func aliceOwner() circuit.Owner { return circuit.Alice }

func wrap(f func(int) (*circuit.Circuit, int), n int) func() (*circuitT, int) {
	return func() (*circuitT, int) { return f(n) }
}

// bytesToBits expands bytes LSB-first, matching the bit order of the
// circuits' 8-bit byte buses.
func bytesToBits(bs []byte) []bool {
	bits := make([]bool, 8*len(bs))
	for i, by := range bs {
		for j := 0; j < 8; j++ {
			bits[8*i+j] = by>>uint(j)&1 == 1
		}
	}
	return bits
}

func bitsToBytes(bits []bool) []byte {
	out := make([]byte, (len(bits)+7)/8)
	for i, b := range bits {
		if b {
			out[i/8] |= 1 << uint(i%8)
		}
	}
	return out
}
