package bencher

import (
	"testing"

	"arm2gc/internal/obliv"
)

// TestMemoryBackendCrossover is the golden measurement behind the auto
// backend's threshold: on the relaxation kernel, the square-root ORAM
// must beat the linear scan above the 2KB default threshold and must NOT
// beat it at the smallest size — pinning both sides of the break-even so
// a regression in either backend's cost model fails loudly. The measured
// numbers (tables per secret-address access, 273 accesses):
//
//	n=64   (800B):  scan 2054, sqrt 2055  — scan wins below break-even
//	n=128  (1.0KB): scan 4109, sqrt 4081
//	n=256  (1.5KB): scan 8220, sqrt 8027
//	n=512  (2.6KB): scan 16442, sqrt 15747 — 4.2% fewer tables
//	n=1024 (4.6KB): scan 32886, sqrt 31179 — 5.2%
func TestMemoryBackendCrossover(t *testing.T) {
	if testing.Short() {
		t.Skip("two full garbling-cost runs at n=512 (~2min)")
	}

	// Above the threshold: 512-word array, 2.6KB data memory.
	w := RelaxWorkload(512)
	if dw := w.Layout.DataWords() * 4; dw < 2048 {
		t.Fatalf("crossover workload has %dB data memory, want >= 2KB", dw)
	}
	scan, err := RunOnCPUMem(w, obliv.Config{Backend: obliv.Scan})
	if err != nil {
		t.Fatal(err)
	}
	sqrt, err := RunOnCPUMem(w, obliv.Config{Backend: obliv.SqrtORAM})
	if err != nil {
		t.Fatal(err)
	}
	if scan.Backend != obliv.Scan || sqrt.Backend != obliv.SqrtORAM {
		t.Fatalf("backends = %q/%q, want scan/sqrt-oram", scan.Backend, sqrt.Backend)
	}
	if scan.Cycles != sqrt.Cycles {
		t.Errorf("cycle counts differ: scan %d, sqrt %d (same program, same inputs)", scan.Cycles, sqrt.Cycles)
	}
	scanAcc := scan.Garbled() / RelaxAccesses
	sqrtAcc := sqrt.Garbled() / RelaxAccesses
	t.Logf("n=512: scan %d tables/access, sqrt-oram %d tables/access (ratio %.4f)",
		scanAcc, sqrtAcc, float64(sqrt.Garbled())/float64(scan.Garbled()))
	if sqrtAcc >= scanAcc {
		t.Errorf("above threshold sqrt-oram pays %d tables/access, scan %d — the ORAM must win", sqrtAcc, scanAcc)
	}
	if got := float64(sqrt.Garbled()); got > 0.98*float64(scan.Garbled()) {
		t.Errorf("sqrt-oram saves only %.2f%% at n=512, golden margin is >= 2%%",
			100*(1-got/float64(scan.Garbled())))
	}

	// Auto agrees with the measurement on both sides of the threshold.
	for _, tc := range []struct {
		n    int
		want string
	}{
		{64, obliv.Scan},      // 200 words < 512-word threshold
		{512, obliv.SqrtORAM}, // 648 words >= threshold
	} {
		l := RelaxWorkload(tc.n).Layout
		got, err := (obliv.Config{Backend: obliv.Auto}).Resolve(l.DataWords())
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Errorf("auto(%d data words) = %q, want %q", l.DataWords(), got, tc.want)
		}
	}
}

// TestRelaxEquivalence checks decoded-output equality between the two
// backends end to end at a size small enough for routine runs; the wrap
// path is exercised because 16 scatter stores overflow the 12-slot stash.
func TestRelaxEquivalence(t *testing.T) {
	w := RelaxWorkload(64)
	scan, err := RunOnCPUMem(w, obliv.Config{Backend: obliv.Scan})
	if err != nil {
		t.Fatal(err)
	}
	sqrt, err := RunOnCPUMem(w, obliv.Config{Backend: obliv.SqrtORAM})
	if err != nil {
		t.Fatal(err)
	}
	// RunOnCPUMem already validates the emulator against the reference;
	// the garbled outputs are covered by VerifyOnCPU-style tests in the
	// root package. Here we pin the cost relationship stays sane below
	// the threshold: the scan must not lose by more than the stash tax.
	if sqrt.Garbled() < scan.Garbled() {
		t.Logf("sqrt-oram unexpectedly cheaper below threshold (%d < %d) — threshold could move down",
			sqrt.Garbled(), scan.Garbled())
	}
	if float64(sqrt.Garbled()) > 1.05*float64(scan.Garbled()) {
		t.Errorf("below threshold sqrt-oram pays %d vs scan %d — stash tax above 5%% golden bound",
			sqrt.Garbled(), scan.Garbled())
	}
}
