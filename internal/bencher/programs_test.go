package bencher

import (
	"testing"
)

// TestWorkloadsOnEmulator compiles every workload and validates it against
// its reference on the plaintext emulator (RunOnCPU does both, plus the
// SkipGate count).
func TestWorkloadsOnEmulator(t *testing.T) {
	for _, w := range AllWorkloads(false) {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			r, err := RunOnCPU(w)
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("%s: %d cycles, %d garbled (conventional %d, %.0fx)",
				w.Name, r.Cycles, r.Garbled(), r.Conventional,
				float64(r.Conventional)/float64(max1(r.Garbled())))
		})
	}
}

func max1(v int) int {
	if v < 1 {
		return 1
	}
	return v
}

// TestWorkloadGarbledShapes pins the headline counts to the paper's
// regime: Sum 32 at the bare-adder cost, Mult 32 near the truncated
// multiplier, and bubble-sort strictly cheaper than merge-sort per element
// (public vs secret indexing).
func TestWorkloadGarbledShapes(t *testing.T) {
	get := func(w *Workload) *CPUResult {
		t.Helper()
		r, err := RunOnCPU(w)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	sum := get(SumWorkload(32))
	if sum.Garbled() != 31 {
		t.Errorf("Sum 32 garbled %d, want 31 (paper Table 2)", sum.Garbled())
	}
	mult := get(MultWorkload())
	if mult.Garbled() < 900 || mult.Garbled() > 1100 {
		t.Errorf("Mult 32 garbled %d, want ≈993 (paper Table 2)", mult.Garbled())
	}
	cmp := get(CompareWorkload(32))
	if cmp.Garbled() < 32 || cmp.Garbled() > 200 {
		t.Errorf("Compare 32 garbled %d, want ≈130 (paper Table 4)", cmp.Garbled())
	}
	bub := get(BubbleSortWorkload(8))
	mer := get(MergeSortWorkload(8))
	if bub.Garbled() >= mer.Garbled() {
		t.Errorf("bubble (%d) should garble fewer tables than merge (%d): merge pays for oblivious reads",
			bub.Garbled(), mer.Garbled())
	}
}

// TestVerifyGarbledExecution runs the full cryptographic protocol for a
// few workloads end to end.
func TestVerifyGarbledExecution(t *testing.T) {
	for _, w := range []*Workload{
		SumWorkload(32),
		CompareWorkload(32),
		MultWorkload(),
		BubbleSortWorkload(8),
		CordicWorkload(),
	} {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			if err := VerifyOnCPU(w); err != nil {
				t.Fatal(err)
			}
		})
	}
}
