package cpu

import (
	"crypto/sha256"
	"sync"
	"sync/atomic"

	"arm2gc/internal/circuit"
	"arm2gc/internal/core"
)

// TraceKey identifies one reusable classification schedule. The circuit
// pointer stands in for the netlist identity (machines come from the
// layout cache, so one layout is one pointer); the public-input digest
// covers the program binary and constants; the cycle budget and halt-flag
// name shape the schedule itself (the final budget cycle classifies with
// different fanouts, and the halt flag decides where the trace ends).
// Worker count, pipeline depth and cycle batching are deliberately absent:
// they never change the schedule.
type TraceKey struct {
	Circuit *circuit.Circuit
	Pub     [32]byte
	Cycles  int
	Stop    string
}

// TracePubDigest digests a packed public-input bit vector for a TraceKey.
func TracePubDigest(pub []bool) [32]byte {
	packed := make([]byte, (len(pub)+7)/8+8)
	for i, b := range pub {
		if b {
			packed[i/8] |= 1 << uint(i%8)
		}
	}
	// Length tail: distinct bit counts with equal packing must not collide.
	n := len(pub)
	for i := 0; i < 8; i++ {
		packed[len(packed)-8+i] = byte(n >> (8 * i))
	}
	return sha256.Sum256(packed)
}

// TraceCache is a bounded, singleflight-guarded store of recorded
// classification traces, keyed per program execution (TraceKey). The
// protocol it enforces:
//
//	if tr := cache.Lookup(key); tr != nil  -> replay tr
//	else if cache.BeginRecord(key)         -> classify AND record, then
//	                                          Commit (success) or Abort
//	else                                   -> classify without recording
//
// BeginRecord grants at most one recording slot per key, so concurrent
// first sessions of a program do not all pay the recording pass — the
// losers classify as before and the winner publishes the trace. Nothing
// ever blocks on a recording in flight.
//
// The cache is bounded by an approximate byte budget: committing a trace
// evicts least-recently-replayed entries until the budget holds again. A
// single trace larger than the whole budget is dropped on Commit (the
// session that recorded it still ran fine — it just is not cached).
type TraceCache struct {
	mu      sync.Mutex
	budget  int64
	bytes   int64
	tick    int64 // monotonic use-stamp for LRU ordering, under mu
	entries map[TraceKey]*traceEntry

	recordings atomic.Int64
	replays    atomic.Int64
	evictions  atomic.Int64
}

type traceEntry struct {
	trace   *core.Trace // nil while the recording slot is held
	lastUse int64
}

// NewTraceCache creates a cache holding at most maxBytes of compiled
// traces (approximate, per Trace.MemoryBytes); maxBytes <= 0 means no
// bound.
func NewTraceCache(maxBytes int64) *TraceCache {
	return &TraceCache{budget: maxBytes, entries: make(map[TraceKey]*traceEntry)}
}

// Lookup returns the cached trace for key, or nil. A hit counts as a
// replay and refreshes the entry's LRU stamp.
func (c *TraceCache) Lookup(key TraceKey) *core.Trace {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.entries[key]
	if e == nil || e.trace == nil {
		return nil
	}
	c.tick++
	e.lastUse = c.tick
	c.replays.Add(1)
	return e.trace
}

// BeginRecord claims the recording slot for key. It returns true for
// exactly one caller per key until that caller Commits or Aborts; everyone
// else gets false and should classify without recording.
func (c *TraceCache) BeginRecord(key TraceKey) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.entries[key] != nil {
		return false
	}
	c.entries[key] = &traceEntry{}
	c.recordings.Add(1)
	return true
}

// Commit publishes a recorded trace under key (the caller must hold the
// recording slot from BeginRecord) and evicts LRU entries past the byte
// budget.
func (c *TraceCache) Commit(key TraceKey, t *core.Trace) {
	size := int64(t.MemoryBytes())
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.entries[key]
	if e == nil || e.trace != nil {
		return // not a held recording slot; ignore
	}
	if c.budget > 0 && size > c.budget {
		delete(c.entries, key) // larger than the whole cache: don't keep it
		return
	}
	c.tick++
	e.trace, e.lastUse = t, c.tick
	c.bytes += size
	for c.budget > 0 && c.bytes > c.budget {
		var victimKey TraceKey
		var victim *traceEntry
		for k, cand := range c.entries {
			if cand.trace == nil || cand == e {
				continue // recordings in flight have nothing to free; keep the newcomer
			}
			if victim == nil || cand.lastUse < victim.lastUse {
				victimKey, victim = k, cand
			}
		}
		if victim == nil {
			return
		}
		c.bytes -= int64(victim.trace.MemoryBytes())
		delete(c.entries, victimKey)
		c.evictions.Add(1)
	}
}

// Abort releases a recording slot without publishing (the recording run
// failed); the next session may claim it again.
func (c *TraceCache) Abort(key TraceKey) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e := c.entries[key]; e != nil && e.trace == nil {
		delete(c.entries, key)
	}
}

// Recordings reports how many recording slots have been granted — the
// trace-effectiveness observable mirroring Cache.Builds.
func (c *TraceCache) Recordings() int64 { return c.recordings.Load() }

// Replays reports how many sessions found a cached trace to replay.
func (c *TraceCache) Replays() int64 { return c.replays.Load() }

// Evictions reports how many committed traces the byte budget pushed out.
func (c *TraceCache) Evictions() int64 { return c.evictions.Load() }

// Bytes reports the current approximate footprint of committed traces.
func (c *TraceCache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}
