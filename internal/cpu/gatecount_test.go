package cpu

import (
	"testing"

	"arm2gc/internal/isa"
)

// TestGateCountGolden pins the processor netlist's gate composition for
// two reference layouts: the quickstart layout (the package-comment
// example) and the test-suite layout. The non-XOR count is the paper's
// cost metric — it is what a conventional garbler pays per cycle and the
// ceiling SkipGate prunes from — so an "optimization" that silently
// inflates it is a correctness problem for every Table 1/2/4 comparison.
//
// If a deliberate netlist change moves these numbers, re-derive the
// goldens (t.Logf prints the observed stats) and update them in the same
// commit, noting the per-cycle cost delta in the commit message.
func TestGateCountGolden(t *testing.T) {
	cases := []struct {
		name                string
		layout              isa.Layout
		nonXOR, gates, dffs int
		wires               int
	}{
		{
			name:   "quickstart",
			layout: isa.Layout{IMemWords: 64, AliceWords: 1, BobWords: 1, OutWords: 1, ScratchWords: 16},
			nonXOR: 8445, gates: 11039, dffs: 3173, wires: 14214,
		},
		{
			name:   "testsuite",
			layout: isa.Layout{IMemWords: 64, AliceWords: 8, BobWords: 8, OutWords: 8, ScratchWords: 8},
			nonXOR: 9181, gates: 11775, dffs: 3589, wires: 15366,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c, err := Build(tc.layout)
			if err != nil {
				t.Fatal(err)
			}
			st := c.Circuit.Stats()
			t.Logf("observed: %+v (wires %d)", st, c.Circuit.NumWires())
			if st.NonXOR != tc.nonXOR {
				t.Errorf("non-XOR gates = %d, want %d (garbling cost per cycle changed)", st.NonXOR, tc.nonXOR)
			}
			if st.Gates != tc.gates {
				t.Errorf("total gates = %d, want %d", st.Gates, tc.gates)
			}
			if st.DFFs != tc.dffs {
				t.Errorf("flip-flops = %d, want %d", st.DFFs, tc.dffs)
			}
			if got := c.Circuit.NumWires(); got != tc.wires {
				t.Errorf("wire count = %d, want %d", got, tc.wires)
			}
		})
	}
}

// TestBuildDeterministic: both parties synthesize the processor
// independently and must agree on the exact netlist (the protocol
// compares circuit hashes before garbling).
func TestBuildDeterministic(t *testing.T) {
	l := testLayout()
	a, err := Build(l)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(l)
	if err != nil {
		t.Fatal(err)
	}
	if a.Circuit.Hash() != b.Circuit.Hash() {
		t.Fatal("two builds of the same layout produced different netlists")
	}
}
