package cpu

import (
	"context"
	"testing"

	"arm2gc/internal/circuit"
	"arm2gc/internal/core"
	"arm2gc/internal/emu"
	"arm2gc/internal/isa"
	"arm2gc/internal/sim"
)

func testLayout() isa.Layout {
	return isa.Layout{IMemWords: 64, AliceWords: 8, BobWords: 8, OutWords: 8, ScratchWords: 8}
}

// runBoth executes a program on the emulator and on the processor circuit
// (plaintext simulation) and requires identical outputs and halting.
func runBoth(t *testing.T, src string, alice, bob []uint32) ([]uint32, int) {
	t.Helper()
	l := testLayout()
	p, err := isa.Link("t", src, l)
	if err != nil {
		t.Fatal(err)
	}
	m, err := emu.New(p, alice, bob)
	if err != nil {
		t.Fatal(err)
	}
	cycles, err := m.Run(20000)
	if err != nil {
		t.Fatalf("emulator: %v\n%s", err, p.Disassemble())
	}

	c, err := Build(l)
	if err != nil {
		t.Fatal(err)
	}
	pub, err := c.PublicBits(p)
	if err != nil {
		t.Fatal(err)
	}
	ab, _ := c.InputBits(circuit.Alice, alice)
	bb, _ := c.InputBits(circuit.Bob, bob)
	s := sim.New(c.Circuit, sim.Inputs{Public: pub, Alice: ab, Bob: bb})
	for i := 0; i < cycles; i++ {
		s.Step()
	}
	haltBits, err := s.Output("halted")
	if err != nil {
		t.Fatal(err)
	}
	if !haltBits[0] {
		t.Fatalf("circuit not halted after %d cycles\n%s", cycles, p.Disassemble())
	}
	outBits, err := s.Output("out")
	if err != nil {
		t.Fatal(err)
	}
	got := OutWords(outBits)
	want := m.Output()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("out[%d]: circuit %#x, emulator %#x\n%s", i, got[i], want[i], p.Disassemble())
		}
	}
	return got, cycles
}

func TestCircuitMatchesEmulator(t *testing.T) {
	programs := []struct {
		name       string
		src        string
		alice, bob []uint32
	}{
		{"add", `
gc_main:
	ldr r3, [r0]
	ldr r4, [r1]
	add r3, r3, r4
	str r3, [r2]
	mov pc, lr
`, []uint32{0xffffffff}, []uint32{2}},
		{"predicated-max", `
gc_main:
	ldr r3, [r0]
	ldr r4, [r1]
	cmp r3, r4
	movhi r5, r3
	movls r5, r4
	str r5, [r2]
	mov pc, lr
`, []uint32{123456}, []uint32{77}},
		{"loop-sum", `
gc_main:
	mov r3, #0
	mov r6, #0
loop:
	ldr r4, [r0]
	ldr r5, [r1]
	add r6, r6, r4
	add r6, r6, r5
	add r0, r0, #4
	add r1, r1, #4
	add r3, r3, #1
	cmp r3, #8
	blt loop
	str r6, [r2]
	mov pc, lr
`, []uint32{1, 2, 3, 4, 5, 6, 7, 8}, []uint32{8, 7, 6, 5, 4, 3, 2, 1}},
		{"mul-mla", `
gc_main:
	ldr r3, [r0]
	ldr r4, [r1]
	mul r5, r3, r4
	mla r6, r3, r4, r5
	str r5, [r2]
	str r6, [r2, #4]
	mov pc, lr
`, []uint32{30000}, []uint32{999}},
		{"shifts", `
gc_main:
	ldr r3, [r0]
	ldr r4, [r1]
	mov r5, r3, lsl #4
	str r5, [r2]
	mov r5, r3, lsr r4
	str r5, [r2, #4]
	mov r5, r3, asr #3
	str r5, [r2, #8]
	mov r5, r3, ror #12
	str r5, [r2, #12]
	eor r5, r3, r4, lsl #1
	str r5, [r2, #16]
	mov pc, lr
`, []uint32{0x80001234}, []uint32{5}},
		{"carry-64bit", `
gc_main:
	ldr r3, [r0]
	ldr r4, [r0, #4]
	ldr r5, [r1]
	ldr r6, [r1, #4]
	adds r7, r3, r5
	adc r8, r4, r6
	str r7, [r2]
	str r8, [r2, #4]
	rsb r9, r3, #0
	str r9, [r2, #8]
	sbc r9, r4, r6
	str r9, [r2, #12]
	mov pc, lr
`, []uint32{0xfffffff0, 7}, []uint32{0x30, 9}},
		{"call-stack", `
gc_main:
	str lr, [sp, #-4]
	sub sp, sp, #8
	ldr r3, [r0]
	str r3, [sp]
	bl sq
	ldr r3, [sp]
	str r3, [r2]
	add sp, sp, #8
	ldr lr, [sp, #-4]
	mov pc, lr
sq:
	ldr r4, [sp]
	mul r4, r4, r4
	str r4, [sp]
	mov pc, lr
`, []uint32{11}, nil},
		{"flags-logic", `
gc_main:
	ldr r3, [r0]
	tst r3, #1
	movne r4, #100
	moveq r4, #200
	str r4, [r2]
	teq r3, #0
	movne r5, #1
	moveq r5, #0
	str r5, [r2, #4]
	cmn r3, #1
	moveq r6, #55
	movne r6, #66
	str r6, [r2, #8]
	mov pc, lr
`, []uint32{0xffffffff}, nil},
		{"bic-mvn-orr", `
gc_main:
	ldr r3, [r0]
	ldr r4, [r1]
	bic r5, r3, r4
	str r5, [r2]
	mvn r5, r3
	str r5, [r2, #4]
	orr r5, r3, r4, ror #8
	str r5, [r2, #8]
	and r5, r3, r4
	str r5, [r2, #12]
	mov pc, lr
`, []uint32{0xdeadbeef}, []uint32{0x0000ffff}},
		{"swi-immediate-halt", "gc_main:\n swi 7\n", nil, nil},
	}
	for _, p := range programs {
		p := p
		t.Run(p.name, func(t *testing.T) {
			runBoth(t, p.src, p.alice, p.bob)
		})
	}
}

// TestSkipGateOnCPU is the paper's headline effect: running "add" on the
// garbled processor costs about as much as the bare adder circuit — the
// instruction fetch, decode, register file, and the unused ALU units are
// all skipped because the program is public.
func TestSkipGateOnCPU(t *testing.T) {
	l := testLayout()
	src := `
gc_main:
	ldr r3, [r0]
	ldr r4, [r1]
	add r3, r3, r4
	str r3, [r2]
	swi 0
`
	p, err := isa.Link("add", src, l)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := emu.New(p, []uint32{5}, []uint32{7})
	cycles, err := m.Run(1000)
	if err != nil {
		t.Fatal(err)
	}

	c, err := Build(l)
	if err != nil {
		t.Fatal(err)
	}
	pub, _ := c.PublicBits(p)
	st, err := core.Count(context.Background(), c.Circuit, pub, core.CountOpts{Cycles: cycles})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("CPU stats: %+v over %d cycles (circuit: %d non-XOR/cycle)",
		st.Total, cycles, c.Circuit.Stats().NonXOR)
	// One 32-bit add of two secrets: 31-32 garbled tables. Everything else
	// (fetch, decode, control, memories at public addresses) is free.
	if st.Total.Garbled > 40 {
		t.Errorf("garbled %d tables for a single addition; SkipGate is not pruning the processor", st.Total.Garbled)
	}
	if st.Total.Garbled < 31 {
		t.Errorf("garbled only %d tables; the addition itself must cost ≥31", st.Total.Garbled)
	}
}

// TestSkipGateCPUCorrectness runs the full crypto protocol on the
// processor and checks the decoded output.
func TestSkipGateCPUCorrectness(t *testing.T) {
	l := testLayout()
	src := `
gc_main:
	ldr r3, [r0]
	ldr r4, [r1]
	cmp r3, r4
	movhi r5, r3
	movls r5, r4
	str r5, [r2]
	swi 0
`
	p, err := isa.Link("max", src, l)
	if err != nil {
		t.Fatal(err)
	}
	alice, bob := []uint32{1000001}, []uint32{999999}
	m, _ := emu.New(p, alice, bob)
	cycles, err := m.Run(1000)
	if err != nil {
		t.Fatal(err)
	}

	c, err := Build(l)
	if err != nil {
		t.Fatal(err)
	}
	pub, _ := c.PublicBits(p)
	ab, _ := c.InputBits(circuit.Alice, alice)
	bb, _ := c.InputBits(circuit.Bob, bob)
	res, err := core.RunLocal(context.Background(), c.Circuit, sim.Inputs{Public: pub, Alice: ab, Bob: bb},
		core.RunOpts{Cycles: cycles, StopOutput: "halted"})
	if err != nil {
		t.Fatal(err)
	}
	outBits := res.Outputs[:l.OutWords*32]
	got := OutWords(outBits)[0]
	if got != 1000001 {
		t.Errorf("garbled max = %d, want 1000001", got)
	}
	t.Logf("predicated max cost: %d garbled tables over %d cycles", res.Stats.Total.Garbled, res.Stats.Cycles)
}
