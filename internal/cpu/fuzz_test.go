package cpu

import (
	"math/rand"
	"sync"
	"testing"

	"arm2gc/internal/circuit"
	"arm2gc/internal/emu"
	"arm2gc/internal/isa"
	"arm2gc/internal/sim"
)

// fuzzCPU caches the processor circuit shared by the differential
// harnesses below: the netlist depends only on the layout, so rebuilding
// it per fuzz iteration would waste nearly the whole time budget.
var fuzzCPU = sync.OnceValues(func() (*CPU, error) {
	return Build(isa.Layout{IMemWords: 256, AliceWords: 8, BobWords: 8, OutWords: 13, ScratchWords: 16})
})

// checkCircuitVsEmulator runs one program on the reference emulator and on
// the processor circuit (plaintext simulation) and fails the test on any
// output-region mismatch.
func checkCircuitVsEmulator(t *testing.T, c *CPU, prog *isa.Program, alice, bob []uint32) {
	t.Helper()
	m, err := emu.New(prog, alice, bob)
	if err != nil {
		t.Fatal(err)
	}
	cycles, err := m.Run(10000)
	if err != nil {
		t.Fatalf("emulator: %v\n%s", err, prog.Disassemble())
	}

	pub, err := c.PublicBits(prog)
	if err != nil {
		t.Fatal(err)
	}
	ab, err := c.InputBits(circuit.Alice, alice)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := c.InputBits(circuit.Bob, bob)
	if err != nil {
		t.Fatal(err)
	}
	s := sim.New(c.Circuit, sim.Inputs{Public: pub, Alice: ab, Bob: bb})
	for i := 0; i < cycles; i++ {
		s.Step()
	}
	outBits, err := s.Output("out")
	if err != nil {
		t.Fatal(err)
	}
	got := OutWords(outBits)
	want := m.Output()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("out[%d] = %#x, emulator %#x\nprogram:\n%s",
				i, got[i], want[i], prog.Disassemble())
		}
	}
}

// TestRandomInstructionFuzz generates random straight-line programs over
// the full data-processing/multiply/memory instruction set (predicated
// and flag-setting variants included) and checks the processor circuit
// against the emulator register-for-register via a store-out epilogue.
func TestRandomInstructionFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	c, err := fuzzCPU()
	if err != nil {
		t.Fatal(err)
	}

	trials := 20
	if testing.Short() {
		trials = 5
	}
	for trial := 0; trial < trials; trial++ {
		prog := &isa.Program{Words: randomProgram(rng), Layout: c.Layout, Name: "fuzz"}
		alice := make([]uint32, 8)
		bob := make([]uint32, 8)
		for i := range alice {
			alice[i] = rng.Uint32()
			bob[i] = rng.Uint32()
		}
		t.Logf("trial %d", trial)
		checkCircuitVsEmulator(t, c, prog, alice, bob)
	}
}

// FuzzInstructionStream is the native fuzz entry (go test -fuzz). The
// program comes from the seeded generator (arbitrary instruction words
// would rarely assemble into halting programs), while the parties' input
// words are taken directly from the fuzz data so coverage-guided mutation
// meaningfully explores the data-dependent paths: flags, predication,
// register-specified shift amounts, carry chains. The emulator and the
// processor circuit must agree on the stored register file and flag
// observations.
func FuzzInstructionStream(f *testing.F) {
	f.Add(int64(4242), []byte{1, 0, 0, 0, 2})
	f.Add(int64(-1), []byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0x80})
	f.Add(int64(31337), append(make([]byte, 32), 0x7f, 0xff, 0x80, 0x01))
	f.Fuzz(func(t *testing.T, seed int64, data []byte) {
		c, err := fuzzCPU()
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed))
		prog := &isa.Program{Words: randomProgram(rng), Layout: c.Layout, Name: "fuzz"}

		// First 32 bytes feed Alice's words, next 32 Bob's; short inputs
		// read as zero.
		at := func(i int) uint32 {
			if i < len(data) {
				return uint32(data[i])
			}
			return 0
		}
		word := func(i int) uint32 {
			return at(4*i) | at(4*i+1)<<8 | at(4*i+2)<<16 | at(4*i+3)<<24
		}
		alice := make([]uint32, 8)
		bob := make([]uint32, 8)
		for i := range alice {
			alice[i] = word(i)
			bob[i] = word(8 + i)
		}
		checkCircuitVsEmulator(t, c, prog, alice, bob)
	})
}

// randomProgram builds: load 8+8 input words into r3..r10 (xor-combining),
// then ~40 random ALU/predication/memory instructions over r3..r10, then
// stores r3..r10 and NZCV observations to the output region and halts.
func randomProgram(rng *rand.Rand) []uint32 {
	var words []uint32
	emit := func(i isa.Instr) {
		w, err := isa.Encode(i)
		if err != nil {
			panic(err)
		}
		words = append(words, w)
	}
	reg := func() uint8 { return uint8(3 + rng.Intn(8)) } // r3..r10

	// Prologue: r0=alice base (0), r1=bob base (32), r2=out base (64).
	// Addresses are tiny, so plain MOV immediates encode.
	emit(isa.Instr{Kind: isa.KindDP, Cond: isa.AL, Op: isa.OpMOV, Rd: 0, Imm: true, Imm8: 0})
	emit(isa.Instr{Kind: isa.KindDP, Cond: isa.AL, Op: isa.OpMOV, Rd: 1, Imm: true, Imm8: 32})
	emit(isa.Instr{Kind: isa.KindDP, Cond: isa.AL, Op: isa.OpMOV, Rd: 2, Imm: true, Imm8: 64})
	for i := 0; i < 8; i++ {
		emit(isa.Instr{Kind: isa.KindMem, Cond: isa.AL, Load: true, Up: true, Rn: 0, Rd: uint8(3 + i), Off12: uint16(4 * i)})
		emit(isa.Instr{Kind: isa.KindMem, Cond: isa.AL, Load: true, Up: true, Rn: 1, Rd: 11, Off12: uint16(4 * i)})
		emit(isa.Instr{Kind: isa.KindDP, Cond: isa.AL, Op: isa.OpEOR, Rd: uint8(3 + i), Rn: uint8(3 + i), Rm: 11})
	}

	conds := []isa.Cond{isa.AL, isa.AL, isa.AL, isa.EQ, isa.NE, isa.CS, isa.CC, isa.MI, isa.PL,
		isa.HI, isa.LS, isa.GE, isa.LT, isa.GT, isa.LE, isa.VS, isa.VC}
	dpOps := []isa.DPOp{isa.OpAND, isa.OpEOR, isa.OpSUB, isa.OpRSB, isa.OpADD, isa.OpADC,
		isa.OpSBC, isa.OpRSC, isa.OpTST, isa.OpTEQ, isa.OpCMP, isa.OpCMN, isa.OpORR,
		isa.OpMOV, isa.OpBIC, isa.OpMVN}

	n := 30 + rng.Intn(20)
	for i := 0; i < n; i++ {
		switch rng.Intn(10) {
		case 0: // multiply
			ins := isa.Instr{Kind: isa.KindMul, Cond: conds[rng.Intn(len(conds))],
				S: rng.Intn(2) == 1, Rd: reg(), Rm: reg(), Rs: reg()}
			if rng.Intn(2) == 1 {
				ins.Acc = true
				ins.Rn = reg()
			}
			emit(ins)
		case 1: // scratch store+load round trip at a random slot
			slot := uint16(4 * rng.Intn(8))
			r := reg()
			emit(isa.Instr{Kind: isa.KindMem, Cond: isa.AL, Load: false, Up: true, Rn: 2, Rd: r, Off12: slot + 52})
			emit(isa.Instr{Kind: isa.KindMem, Cond: conds[rng.Intn(len(conds))], Load: true, Up: true, Rn: 2, Rd: reg(), Off12: slot + 52})
		default: // data processing
			ins := isa.Instr{Kind: isa.KindDP, Cond: conds[rng.Intn(len(conds))],
				Op: dpOps[rng.Intn(len(dpOps))], S: rng.Intn(2) == 1,
				Rd: reg(), Rn: reg()}
			if rng.Intn(3) == 0 {
				ins.Imm = true
				ins.Imm8 = uint8(rng.Intn(256))
				ins.Rot = uint8(rng.Intn(16))
			} else {
				ins.Rm = reg()
				ins.Sh = isa.Shift(rng.Intn(4))
				if rng.Intn(4) == 0 {
					ins.ShReg = true
					ins.Rs = reg()
				} else {
					ins.ShImm = uint8(rng.Intn(32))
				}
			}
			emit(ins)
		}
	}

	// Epilogue: store r3..r10, then flags via predicated moves, halt.
	for i := 0; i < 8; i++ {
		emit(isa.Instr{Kind: isa.KindMem, Cond: isa.AL, Up: true, Rn: 2, Rd: uint8(3 + i), Off12: uint16(4 * i)})
	}
	flagConds := []isa.Cond{isa.EQ, isa.MI, isa.CS, isa.VS}
	for i, fc := range flagConds {
		emit(isa.Instr{Kind: isa.KindDP, Cond: isa.AL, Op: isa.OpMOV, Rd: 11, Imm: true, Imm8: 0})
		emit(isa.Instr{Kind: isa.KindDP, Cond: fc, Op: isa.OpMOV, Rd: 11, Imm: true, Imm8: 1})
		emit(isa.Instr{Kind: isa.KindMem, Cond: isa.AL, Up: true, Rn: 2, Rd: 11, Off12: uint16(32 + 4*i)})
	}
	emit(isa.Instr{Kind: isa.KindSWI, Cond: isa.AL})
	return words
}
