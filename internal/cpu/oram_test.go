package cpu

import (
	"math/rand"
	"strings"
	"sync"
	"testing"

	"arm2gc/internal/circuit"
	"arm2gc/internal/isa"
	"arm2gc/internal/obliv"
	"arm2gc/internal/sim"
)

// oramCPUs caches the scan/sqrt pair for the fuzz layout.
var oramCPUs = sync.OnceValues(func() (*[2]*CPU, error) {
	l := isa.Layout{IMemWords: 256, AliceWords: 8, BobWords: 8, OutWords: 13, ScratchWords: 16}
	scan, err := BuildMem(l, obliv.Config{Backend: obliv.Scan})
	if err != nil {
		return nil, err
	}
	sqrt, err := BuildMem(l, obliv.Config{Backend: obliv.SqrtORAM})
	if err != nil {
		return nil, err
	}
	return &[2]*CPU{scan, sqrt}, nil
})

// simOutputs runs a program on a processor circuit in plaintext simulation
// for a fixed cycle count and returns the decoded output words.
func simOutputs(t *testing.T, c *CPU, prog *isa.Program, alice, bob []uint32, cycles int) []uint32 {
	t.Helper()
	pub, err := c.PublicBits(prog)
	if err != nil {
		t.Fatal(err)
	}
	ab, err := c.InputBits(circuit.Alice, alice)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := c.InputBits(circuit.Bob, bob)
	if err != nil {
		t.Fatal(err)
	}
	s := sim.New(c.Circuit, sim.Inputs{Public: pub, Alice: ab, Bob: bb})
	for i := 0; i < cycles; i++ {
		s.Step()
	}
	outBits, err := s.Output("out")
	if err != nil {
		t.Fatal(err)
	}
	return OutWords(outBits)
}

// haltCycle runs the program on the scan circuit until the halted output
// goes high (every test program here halts well inside the bound).
func haltCycle(t *testing.T, c *CPU, prog *isa.Program, alice, bob []uint32) int {
	t.Helper()
	pub, err := c.PublicBits(prog)
	if err != nil {
		t.Fatal(err)
	}
	ab, _ := c.InputBits(circuit.Alice, alice)
	bb, _ := c.InputBits(circuit.Bob, bob)
	s := sim.New(c.Circuit, sim.Inputs{Public: pub, Alice: ab, Bob: bb})
	for i := 1; i <= 10000; i++ {
		s.Step()
		h, err := s.Output("halted")
		if err != nil {
			t.Fatal(err)
		}
		if h[0] {
			return i
		}
	}
	t.Fatal("program did not halt within 10000 cycles")
	return 0
}

// checkBackendsAgree runs a halting program under both backends and fails
// on any output-word divergence.
func checkBackendsAgree(t *testing.T, scan, sqrt *CPU, prog *isa.Program, alice, bob []uint32) {
	t.Helper()
	cycles := haltCycle(t, scan, prog, alice, bob)
	got := simOutputs(t, scan, prog, alice, bob, cycles)
	oram := simOutputs(t, sqrt, prog, alice, bob, cycles)
	for i := range got {
		if got[i] != oram[i] {
			t.Fatalf("out[%d]: scan %#x, sqrt-oram %#x (halt at cycle %d)\nprogram:\n%s",
				i, got[i], oram[i], cycles, prog.Disassemble())
		}
	}
}

// TestSqrtORAMFuzzEquivalence runs the random-program generator under both
// memory backends: the stash ring + halt overlay must be observationally
// identical to the linear scan on every halting program. The generated
// programs store 16–30 words against a 7-slot stash, so wrap eviction and
// duplicate invalidation both run hot.
func TestSqrtORAMFuzzEquivalence(t *testing.T) {
	pair, err := oramCPUs()
	if err != nil {
		t.Fatal(err)
	}
	scan, sqrt := pair[0], pair[1]
	rng := rand.New(rand.NewSource(777))
	trials := 20
	if testing.Short() {
		trials = 5
	}
	for trial := 0; trial < trials; trial++ {
		prog := &isa.Program{Words: randomProgram(rng), Layout: scan.Layout, Name: "oram-fuzz"}
		alice := make([]uint32, 8)
		bob := make([]uint32, 8)
		for i := range alice {
			alice[i] = rng.Uint32()
			bob[i] = rng.Uint32()
		}
		// The emulator stays in the loop so a bug shared by both backends
		// cannot hide behind the equivalence check.
		checkCircuitVsEmulator(t, sqrt, prog, alice, bob)
		checkBackendsAgree(t, scan, sqrt, prog, alice, bob)
	}
}

// TestSqrtORAMDirectedPrograms covers the stash edge cases the random
// generator reaches only by luck: untaken conditional stores (the ring
// advances but the slot must stay dead), repeated stores to one address
// (duplicate invalidation), loads immediately after stores (stash hit
// path), and out-of-range accesses (must read zero and store nowhere,
// like the scan's padded tree).
func TestSqrtORAMDirectedPrograms(t *testing.T) {
	pair, err := oramCPUs()
	if err != nil {
		t.Fatal(err)
	}
	scan, sqrt := pair[0], pair[1]
	l := scan.Layout
	outByte := uint16(l.OutBase())

	type directed struct {
		name string
		asm  func(emit func(isa.Instr))
	}
	cases := []directed{
		{"untaken-conditional-stores", func(emit func(isa.Instr)) {
			// r3=1, r4=2; CMP r3,r4 sets NE; EQ-stores must not land.
			emit(isa.Instr{Kind: isa.KindDP, Cond: isa.AL, Op: isa.OpMOV, Rd: 3, Imm: true, Imm8: 1})
			emit(isa.Instr{Kind: isa.KindDP, Cond: isa.AL, Op: isa.OpMOV, Rd: 4, Imm: true, Imm8: 2})
			emit(isa.Instr{Kind: isa.KindDP, Cond: isa.AL, Op: isa.OpCMP, Rn: 3, Rm: 4})
			for i := 0; i < 10; i++ {
				emit(isa.Instr{Kind: isa.KindMem, Cond: isa.EQ, Up: true, Rn: 2, Rd: 3, Off12: uint16(4 * (i % 4))})
				emit(isa.Instr{Kind: isa.KindMem, Cond: isa.NE, Up: true, Rn: 2, Rd: 4, Off12: uint16(4 * (i % 4))})
			}
			// Read the stored slots back out.
			for i := 0; i < 4; i++ {
				emit(isa.Instr{Kind: isa.KindMem, Cond: isa.AL, Load: true, Up: true, Rn: 2, Rd: 5, Off12: uint16(4 * i)})
				emit(isa.Instr{Kind: isa.KindMem, Cond: isa.AL, Up: true, Rn: 2, Rd: 5, Off12: uint16(16 + 4*i)})
			}
		}},
		{"same-address-overwrite-chain", func(emit func(isa.Instr)) {
			// 12 stores to one word; only the last may be visible. With 7
			// stash slots the chain wraps and the evicted duplicates must
			// all be dead when the bank write-back fires.
			for i := 0; i < 12; i++ {
				emit(isa.Instr{Kind: isa.KindDP, Cond: isa.AL, Op: isa.OpMOV, Rd: 3, Imm: true, Imm8: uint8(10 + i)})
				emit(isa.Instr{Kind: isa.KindMem, Cond: isa.AL, Up: true, Rn: 2, Rd: 3, Off12: 0})
			}
			emit(isa.Instr{Kind: isa.KindMem, Cond: isa.AL, Load: true, Up: true, Rn: 2, Rd: 4, Off12: 0})
			emit(isa.Instr{Kind: isa.KindMem, Cond: isa.AL, Up: true, Rn: 2, Rd: 4, Off12: 4})
		}},
		{"store-load-interleave", func(emit func(isa.Instr)) {
			for i := 0; i < 8; i++ {
				emit(isa.Instr{Kind: isa.KindDP, Cond: isa.AL, Op: isa.OpMOV, Rd: 3, Imm: true, Imm8: uint8(100 + i)})
				emit(isa.Instr{Kind: isa.KindMem, Cond: isa.AL, Up: true, Rn: 2, Rd: 3, Off12: uint16(4 * i)})
				emit(isa.Instr{Kind: isa.KindMem, Cond: isa.AL, Load: true, Up: true, Rn: 2, Rd: 4, Off12: uint16(4 * i)})
				emit(isa.Instr{Kind: isa.KindDP, Cond: isa.AL, Op: isa.OpADD, Rd: 4, Rn: 4, Imm: true, Imm8: 1})
				emit(isa.Instr{Kind: isa.KindMem, Cond: isa.AL, Up: true, Rn: 2, Rd: 4, Off12: uint16(4 * i)})
			}
		}},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var words []uint32
			emit := func(i isa.Instr) {
				w, err := isa.Encode(i)
				if err != nil {
					t.Fatal(err)
				}
				words = append(words, w)
			}
			// r2 = output base, shared prologue; everything halts via SWI.
			emit(isa.Instr{Kind: isa.KindDP, Cond: isa.AL, Op: isa.OpMOV, Rd: 2, Imm: true, Imm8: uint8(outByte)})
			tc.asm(emit)
			emit(isa.Instr{Kind: isa.KindSWI, Cond: isa.AL})
			prog := &isa.Program{Words: words, Layout: l, Name: tc.name}
			alice := []uint32{1, 2, 3, 4, 5, 6, 7, 8}
			bob := []uint32{9, 10, 11, 12, 13, 14, 15, 16}
			checkCircuitVsEmulator(t, sqrt, prog, alice, bob)
			checkBackendsAgree(t, scan, sqrt, prog, alice, bob)
		})
	}
}

// TestSqrtORAMOutOfRange compares the two backends (circuit vs circuit;
// the emulator rejects wild addresses) on accesses past DataWords but
// inside the padded address space: loads read zero, stores vanish — the
// stash must not resurrect them.
func TestSqrtORAMOutOfRange(t *testing.T) {
	pair, err := oramCPUs()
	if err != nil {
		t.Fatal(err)
	}
	scan, sqrt := pair[0], pair[1]
	l := scan.Layout // 45 data words, 64-word padded space
	var words []uint32
	emit := func(i isa.Instr) {
		w, err := isa.Encode(i)
		if err != nil {
			t.Fatal(err)
		}
		words = append(words, w)
	}
	emit(isa.Instr{Kind: isa.KindDP, Cond: isa.AL, Op: isa.OpMOV, Rd: 2, Imm: true, Imm8: uint8(l.OutBase())})
	// Store 0xAB at padded word 50 (byte 200), then load it back and store
	// the result to the output region: must be 0, not 0xAB.
	emit(isa.Instr{Kind: isa.KindDP, Cond: isa.AL, Op: isa.OpMOV, Rd: 3, Imm: true, Imm8: 0xAB})
	emit(isa.Instr{Kind: isa.KindDP, Cond: isa.AL, Op: isa.OpMOV, Rd: 4, Imm: true, Imm8: 200})
	emit(isa.Instr{Kind: isa.KindMem, Cond: isa.AL, Up: true, Rn: 4, Rd: 3, Off12: 0})
	emit(isa.Instr{Kind: isa.KindMem, Cond: isa.AL, Load: true, Up: true, Rn: 4, Rd: 5, Off12: 0})
	emit(isa.Instr{Kind: isa.KindMem, Cond: isa.AL, Up: true, Rn: 2, Rd: 5, Off12: 0})
	emit(isa.Instr{Kind: isa.KindSWI, Cond: isa.AL})
	prog := &isa.Program{Words: words, Layout: l, Name: "oob"}
	alice := make([]uint32, 8)
	bob := make([]uint32, 8)

	checkBackendsAgree(t, scan, sqrt, prog, alice, bob)
	cycles := haltCycle(t, scan, prog, alice, bob)
	if out := simOutputs(t, sqrt, prog, alice, bob, cycles); out[0] != 0 {
		t.Fatalf("out-of-range load read %#x through the stash, want 0", out[0])
	}
}

// TestSqrtORAMRandomLayouts sweeps randomized memory geometries under both
// backends with a store/load mixing program, so the stash sizing, padding
// and output-region overlay are exercised at sizes other than the one
// fuzz layout.
func TestSqrtORAMRandomLayouts(t *testing.T) {
	rng := rand.New(rand.NewSource(31007))
	trials := 6
	if testing.Short() {
		trials = 3
	}
	for trial := 0; trial < trials; trial++ {
		l := isa.Layout{
			IMemWords:    64,
			AliceWords:   1 + rng.Intn(8),
			BobWords:     1 + rng.Intn(8),
			OutWords:     1 + rng.Intn(6),
			ScratchWords: 4 + rng.Intn(40),
		}
		if l.DataWords() < obliv.MinSqrtWords {
			l.ScratchWords += obliv.MinSqrtWords
		}
		scan, err := BuildMem(l, obliv.Config{Backend: obliv.Scan})
		if err != nil {
			t.Fatal(err)
		}
		sqrt, err := BuildMem(l, obliv.Config{Backend: obliv.SqrtORAM})
		if err != nil {
			t.Fatal(err)
		}

		var words []uint32
		emit := func(i isa.Instr) {
			w, err := isa.Encode(i)
			if err != nil {
				t.Fatal(err)
			}
			words = append(words, w)
		}
		// r1 = alice base, r2 = out base; fold Alice's first word through
		// a store/load chain across the scratch+out region.
		emit(isa.Instr{Kind: isa.KindDP, Cond: isa.AL, Op: isa.OpMOV, Rd: 1, Imm: true, Imm8: 0})
		emit(isa.Instr{Kind: isa.KindDP, Cond: isa.AL, Op: isa.OpMOV, Rd: 2, Imm: true, Imm8: uint8(l.OutBase())})
		emit(isa.Instr{Kind: isa.KindMem, Cond: isa.AL, Load: true, Up: true, Rn: 1, Rd: 3, Off12: 0})
		steps := 6 + rng.Intn(10)
		for i := 0; i < steps; i++ {
			slot := uint16(4 * rng.Intn(l.OutWords))
			emit(isa.Instr{Kind: isa.KindDP, Cond: isa.AL, Op: isa.OpADD, Rd: 3, Rn: 3, Imm: true, Imm8: uint8(1 + rng.Intn(200))})
			emit(isa.Instr{Kind: isa.KindMem, Cond: isa.AL, Up: true, Rn: 2, Rd: 3, Off12: slot})
			emit(isa.Instr{Kind: isa.KindMem, Cond: isa.AL, Load: true, Up: true, Rn: 2, Rd: 3, Off12: slot})
		}
		emit(isa.Instr{Kind: isa.KindSWI, Cond: isa.AL})
		prog := &isa.Program{Words: words, Layout: l, Name: "layout-sweep"}
		alice := make([]uint32, l.AliceWords)
		bob := make([]uint32, l.BobWords)
		for i := range alice {
			alice[i] = rng.Uint32()
		}
		for i := range bob {
			bob[i] = rng.Uint32()
		}
		t.Logf("trial %d: layout %+v (data words %d, stash %d)",
			trial, l, l.DataWords(), obliv.StashSlots(l.DataWords()))
		checkCircuitVsEmulator(t, sqrt, prog, alice, bob)
		checkBackendsAgree(t, scan, sqrt, prog, alice, bob)
	}
}

// TestBuildDataWordsValidation is the ISSUE's small fix: the data-memory
// word count gets the same up-front validation as IMemWords, with a clear
// error instead of a multi-GB synthesis attempt or a confusing downstream
// failure.
func TestBuildDataWordsValidation(t *testing.T) {
	l := isa.Layout{IMemWords: 64, AliceWords: obliv.MaxDataWords, BobWords: 1, OutWords: 1, ScratchWords: 16}
	_, err := Build(l)
	if err == nil {
		t.Fatal("Build accepted a data memory beyond the buildable range")
	}
	if !strings.Contains(err.Error(), "data memory") {
		t.Fatalf("error %q does not name the data memory", err)
	}

	// The sqrt backend additionally refuses degenerate tiny memories with
	// an error that names the fallback.
	tiny := isa.Layout{IMemWords: 64, AliceWords: 1, BobWords: 1, OutWords: 1, ScratchWords: 4}
	if tiny.DataWords() >= obliv.MinSqrtWords {
		t.Fatalf("test layout too big: %d", tiny.DataWords())
	}
	_, err = BuildMem(tiny, obliv.Config{Backend: obliv.SqrtORAM})
	if err == nil || !strings.Contains(err.Error(), "sqrt-oram") {
		t.Fatalf("BuildMem(tiny, sqrt-oram) error = %v, want a sqrt-oram size error", err)
	}
}

// TestCacheBackendSeparation pins the machine-cache key: the same layout
// under different backends yields different machines, while Get and the
// scan-resolved GetMem share one.
func TestCacheBackendSeparation(t *testing.T) {
	var c Cache
	l := testLayout()
	scan1, err := c.Get(l)
	if err != nil {
		t.Fatal(err)
	}
	scan2, err := c.GetMem(l, obliv.Config{Backend: obliv.Scan})
	if err != nil {
		t.Fatal(err)
	}
	if scan1 != scan2 {
		t.Fatal("Get and GetMem(scan) built separate machines for one layout")
	}
	sqrt, err := c.GetMem(l, obliv.Config{Backend: obliv.SqrtORAM})
	if err != nil {
		t.Fatal(err)
	}
	if sqrt == scan1 {
		t.Fatal("scan and sqrt-oram shared a cache entry")
	}
	if sqrt.Backend != obliv.SqrtORAM || scan1.Backend != obliv.Scan {
		t.Fatalf("backend labels: scan=%q sqrt=%q", scan1.Backend, sqrt.Backend)
	}
	if sqrt.Circuit.Hash() == scan1.Circuit.Hash() {
		t.Fatal("backends produced identical netlists — session ids would collide")
	}
	if got := c.Builds(); got != 2 {
		t.Fatalf("builds = %d, want 2", got)
	}
	// Auto resolves before the key: below the threshold it shares the
	// scan entry.
	auto, err := c.GetMem(l, obliv.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if auto != scan1 {
		t.Fatal("auto below the threshold did not reuse the scan machine")
	}
	if got := c.Builds(); got != 2 {
		t.Fatalf("builds after auto = %d, want 2 (cache hit)", got)
	}
}

// TestDebugLint: with ARM2GC_DEBUG_LINT on, BuildMem runs the backend's
// width self-check and the netlist structural lint on every build — both
// backends must come through clean, proving the debug assertion is
// usable (a failure here means either a backend regression or a lint
// false positive on a real processor netlist).
func TestDebugLint(t *testing.T) {
	old := DebugLint
	DebugLint = true
	defer func() { DebugLint = old }()
	l := isa.Layout{IMemWords: 64, AliceWords: 4, BobWords: 4, OutWords: 4, ScratchWords: 20}
	for _, backend := range []string{obliv.Scan, obliv.SqrtORAM} {
		if _, err := BuildMem(l, obliv.Config{Backend: backend}); err != nil {
			t.Errorf("BuildMem(%s) under debug lint: %v", backend, err)
		}
	}
}
