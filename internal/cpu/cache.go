package cpu

import (
	"fmt"
	"sync"
	"sync/atomic"

	"arm2gc/internal/isa"
	"arm2gc/internal/obliv"
)

// Cache is a concurrency-safe, layout-keyed store of built processors.
// Build for the 256-word-imem layout synthesizes ~29k wires and costs
// ~10ms, so a server running many sessions over the same memory geometry
// must not pay it per session. Get deduplicates concurrent builds
// (singleflight): N goroutines asking for the same Layout share one Build
// call and one immutable *CPU. A CPU is read-only after Build — every run
// derives its own scheduler and label state — so sharing is safe.
//
// The cache never evicts: entries are a few MB each and the set of layouts
// a process uses is small and fixed (a serving process typically has one).
type Cache struct {
	m      sync.Map // cacheKey -> *cacheEntry
	builds atomic.Int64
}

// cacheKey separates machines by layout AND resolved memory backend (plus
// the sqrt-ORAM's resolved stash window): the backends synthesize
// different netlists for the same layout, and a cached machine (or a
// classification trace keyed off its circuit) must never serve sessions
// negotiated for another.
type cacheKey struct {
	layout  isa.Layout
	backend string
	window  int
}

type cacheEntry struct {
	once sync.Once
	cpu  *CPU
	err  error
}

// Get returns the cached scan-backend processor for a layout, building it
// on first use. It is the pre-backend API, kept for call sites that want
// the historical netlist; GetMem selects a backend.
func (c *Cache) Get(l isa.Layout) (*CPU, error) {
	return c.GetMem(l, obliv.Config{Backend: obliv.Scan})
}

// GetMem returns the cached processor for a layout and memory
// configuration, building it on first use. The configuration resolves to
// a concrete backend *before* the cache lookup, so auto and an explicit
// matching name share one machine. Build errors are cached too: Build is
// deterministic, so retrying an invalid layout cannot succeed.
func (c *Cache) GetMem(l isa.Layout, mc obliv.Config) (*CPU, error) {
	backend, err := mc.Resolve(l.DataWords())
	if err != nil {
		return nil, err
	}
	window := 0
	if backend == obliv.SqrtORAM {
		if window, err = mc.ResolveWindow(l.DataWords()); err != nil {
			return nil, err
		}
	}
	v, _ := c.m.LoadOrStore(cacheKey{l, backend, window}, &cacheEntry{})
	e := v.(*cacheEntry)
	e.once.Do(func() {
		c.builds.Add(1)
		// Pre-set the error so a panic inside Build (which sync.Once still
		// marks done) leaves the entry failed-closed, not (nil, nil).
		e.err = fmt.Errorf("cpu: build for layout %+v panicked", l)
		e.cpu, e.err = BuildMem(l, obliv.Config{Backend: backend, Window: window})
	})
	return e.cpu, e.err
}

// Builds reports how many netlist syntheses this cache has performed —
// the cache-hit observable tests and benchmarks assert on.
func (c *Cache) Builds() int64 { return c.builds.Load() }

var shared Cache

// Shared serves from the process-wide cache, for tools (the bencher) that
// build the same layout from several call sites.
func Shared(l isa.Layout) (*CPU, error) { return shared.Get(l) }

// SharedMem is Shared with backend selection.
func SharedMem(l isa.Layout, mc obliv.Config) (*CPU, error) { return shared.GetMem(l, mc) }

// SharedCache exposes the process-wide cache itself, so the root
// package's default engine and the internal tools share one set of
// machines instead of maintaining parallel caches.
func SharedCache() *Cache { return &shared }
