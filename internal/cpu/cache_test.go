package cpu

import (
	"sync"
	"testing"

	"arm2gc/internal/isa"
)

func TestCacheSingleflight(t *testing.T) {
	l := isa.Layout{IMemWords: 16, AliceWords: 1, BobWords: 1, OutWords: 1, ScratchWords: 4}
	var c Cache
	const n = 8
	cpus := make([]*CPU, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m, err := c.Get(l)
			if err != nil {
				t.Error(err)
				return
			}
			cpus[i] = m
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if cpus[i] != cpus[0] {
			t.Fatalf("goroutine %d got a distinct CPU instance", i)
		}
	}
	if got := c.Builds(); got != 1 {
		t.Fatalf("%d builds for %d concurrent gets, want 1", got, n)
	}

	// A different layout is a distinct entry.
	l2 := l
	l2.ScratchWords = 8
	m2, err := c.Get(l2)
	if err != nil {
		t.Fatal(err)
	}
	if m2 == cpus[0] {
		t.Fatal("distinct layouts shared a CPU")
	}
	if got := c.Builds(); got != 2 {
		t.Fatalf("builds = %d, want 2", got)
	}
}

func TestCacheCachesErrors(t *testing.T) {
	var c Cache
	bad := isa.Layout{IMemWords: 3, AliceWords: 1, BobWords: 1, OutWords: 1, ScratchWords: 4}
	if _, err := c.Get(bad); err == nil {
		t.Fatal("non-power-of-two imem accepted")
	}
	if _, err := c.Get(bad); err == nil {
		t.Fatal("cached entry lost the build error")
	}
	if got := c.Builds(); got != 1 {
		t.Fatalf("failed layout rebuilt: %d builds", got)
	}
}
