package cpu

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"arm2gc/internal/circuit/circtest"
	"arm2gc/internal/core"
	"arm2gc/internal/sim"
)

// makeTrace records a small real trace to exercise the cache with honest
// MemoryBytes accounting.
func makeTrace(t *testing.T, seed int64, cycles int) *core.Trace {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	c, aBits, bBits := circtest.Random(rng, 200, 6)
	in := sim.Inputs{
		Public: circtest.RandBits(rng, c.PublicBits),
		Alice:  circtest.RandBits(rng, aBits),
		Bob:    circtest.RandBits(rng, bBits),
	}
	res, err := core.RunLocal(context.Background(), c, in, core.RunOpts{Cycles: cycles, Record: true})
	if err != nil {
		t.Fatalf("record run: %v", err)
	}
	return res.Trace
}

func key(b byte) TraceKey {
	var k TraceKey
	k.Pub[0] = b
	k.Cycles = 4
	return k
}

func TestTraceCacheSingleflight(t *testing.T) {
	tr := makeTrace(t, 1, 4)
	c := NewTraceCache(0)
	k := key(1)
	if !c.BeginRecord(k) {
		t.Fatalf("first BeginRecord refused")
	}
	if c.BeginRecord(k) {
		t.Fatalf("second BeginRecord granted while the slot is held")
	}
	if c.Lookup(k) != nil {
		t.Fatalf("Lookup returned a trace while recording is in flight")
	}
	c.Abort(k)
	if !c.BeginRecord(k) {
		t.Fatalf("BeginRecord refused after Abort")
	}
	c.Commit(k, tr)
	if got := c.Lookup(k); got != tr {
		t.Fatalf("Lookup after Commit = %v, want the committed trace", got)
	}
	if c.BeginRecord(k) {
		t.Fatalf("BeginRecord granted for a committed key")
	}
	if c.Recordings() != 2 || c.Replays() != 1 {
		t.Fatalf("recordings %d replays %d, want 2 and 1", c.Recordings(), c.Replays())
	}
}

func TestTraceCacheSingleflightConcurrent(t *testing.T) {
	c := NewTraceCache(0)
	k := key(9)
	var wins atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if c.BeginRecord(k) {
				wins.Add(1)
			}
		}()
	}
	wg.Wait()
	if wins.Load() != 1 {
		t.Fatalf("%d goroutines won the recording slot, want exactly 1", wins.Load())
	}
}

func TestTraceCacheLRUEviction(t *testing.T) {
	tr := makeTrace(t, 2, 4)
	size := int64(tr.MemoryBytes())
	c := NewTraceCache(2*size + size/2) // room for two committed traces
	k1, k2, k3 := key(1), key(2), key(3)
	for _, k := range []TraceKey{k1, k2} {
		if !c.BeginRecord(k) {
			t.Fatalf("BeginRecord(%v) refused", k.Pub[0])
		}
		c.Commit(k, tr)
	}
	if c.Lookup(k1) == nil { // refresh k1: k2 becomes the LRU victim
		t.Fatalf("k1 missing after commit")
	}
	if !c.BeginRecord(k3) {
		t.Fatalf("BeginRecord(k3) refused")
	}
	c.Commit(k3, tr)
	if c.Lookup(k2) != nil {
		t.Fatalf("k2 survived; want it evicted as the least recently replayed")
	}
	if c.Lookup(k1) == nil || c.Lookup(k3) == nil {
		t.Fatalf("k1/k3 missing after eviction")
	}
	if c.Evictions() != 1 {
		t.Fatalf("evictions = %d, want 1", c.Evictions())
	}
	if got := c.Bytes(); got != 2*size {
		t.Fatalf("cache holds %d bytes, want %d", got, 2*size)
	}
}

func TestTraceCacheOversizedCommitDropped(t *testing.T) {
	tr := makeTrace(t, 3, 4)
	c := NewTraceCache(1) // nothing fits
	k := key(5)
	if !c.BeginRecord(k) {
		t.Fatalf("BeginRecord refused")
	}
	c.Commit(k, tr)
	if c.Lookup(k) != nil {
		t.Fatalf("oversized trace was cached")
	}
	if !c.BeginRecord(k) {
		t.Fatalf("slot not reclaimable after an oversized commit was dropped")
	}
	if c.Bytes() != 0 {
		t.Fatalf("cache charges %d bytes for a dropped trace", c.Bytes())
	}
}

func TestTracePubDigest(t *testing.T) {
	a := TracePubDigest([]bool{true, false, true})
	b := TracePubDigest([]bool{true, false, false})
	if a == b {
		t.Fatalf("distinct bit vectors digest equal")
	}
	// Equal packed bytes, different lengths: the length tail must split them.
	c := TracePubDigest([]bool{true})
	d := TracePubDigest([]bool{true, false})
	if c == d {
		t.Fatalf("distinct lengths digest equal")
	}
	if TracePubDigest(nil) == TracePubDigest([]bool{false}) {
		t.Fatalf("nil and one-zero-bit digest equal")
	}
}
