// Package cpu generates the garbled processor netlist: an ARM-style 32-bit
// single-cycle core implementing the isa package spec, built from MUXes
// and flip-flops exactly as the paper describes — five memory elements
// (instructions, Alice's inputs, Bob's inputs, outputs, stack/scratch; the
// four data regions share one word-addressed RAM), a 15×32 register file
// with the PC read as r15 = PC+8, full conditional execution, a barrel
// shifter, the 16 data-processing operations, MUL/MLA, and LDR/STR.
//
// Following Section 4.2, there is no pipeline, cache, or interrupt logic:
// those structures cannot help a garbled execution, where cost is the
// number of garbled non-XOR gates, not critical-path latency. Every module
// is tagged with a builder scope so the instruction-level-pruning baseline
// (package baseline) can charge whole modules the way garbled MIPS does.
package cpu

import (
	"fmt"
	"os"

	"arm2gc/internal/build"
	"arm2gc/internal/circuit"
	"arm2gc/internal/isa"
	"arm2gc/internal/obliv"
	"arm2gc/internal/sim"
)

// CPU is a frozen processor instance for one memory layout and one
// resolved data-memory backend.
type CPU struct {
	Circuit *circuit.Circuit
	Layout  isa.Layout

	// Backend is the resolved obliv backend name the data memory was
	// built with (obliv.Scan or obliv.SqrtORAM, never obliv.Auto).
	Backend string
}

// DebugLint makes BuildMem run the netlist structural linter
// (build.Lint) and the memory backend's width self-check on every
// compiled circuit, failing the build on any Error-severity finding.
// Off by default: the checks are O(gates) per cold build and the
// builder's own fold rules make them redundant in healthy operation.
// Tests and `arm2gc-vet -netlist` turn it on; set ARM2GC_DEBUG_LINT=1
// to enable it process-wide.
var DebugLint = os.Getenv("ARM2GC_DEBUG_LINT") == "1"

// Build generates the processor circuit for a memory layout with the
// linear-scan data memory — the historical netlist, bit-for-bit. New code
// that wants backend selection should use BuildMem.
func Build(l isa.Layout) (*CPU, error) {
	return BuildMem(l, obliv.Config{Backend: obliv.Scan})
}

// BuildMem generates the processor circuit for a memory layout with the
// data-memory backend chosen by mc (obliv.Auto resolves against the
// layout's DataWords()).
func BuildMem(l isa.Layout, mc obliv.Config) (*CPU, error) {
	if err := l.Validate(); err != nil {
		return nil, err
	}
	if l.IMemWords&(l.IMemWords-1) != 0 {
		return nil, fmt.Errorf("cpu: IMemWords %d must be a power of two", l.IMemWords)
	}
	// The data-memory word count gets the same up-front validation as
	// IMemWords: both the scan and the ORAM bank synthesize netlists
	// linear in it, so a corrupt layout must fail here with a clear
	// error, not deep inside the builder.
	if dw := l.DataWords(); dw <= 0 || dw > obliv.MaxDataWords {
		return nil, fmt.Errorf("cpu: data memory of %d words is outside the buildable range [1, %d]",
			dw, obliv.MaxDataWords)
	}
	backend, err := mc.Resolve(l.DataWords())
	if err != nil {
		return nil, err
	}

	b := build.New(fmt.Sprintf("arm2gc-cpu-i%d-d%d-%s", l.IMemWords, l.DataWords(), backend))

	// Input bit-vector reservations: the program image is the public input
	// p; the parties' arrays initialize their data-memory regions.
	pubOff := b.AllocInputBits(circuit.Public, l.IMemWords*32)
	aliceOff := b.AllocInputBits(circuit.Alice, l.AliceWords*32)
	bobOff := b.AllocInputBits(circuit.Bob, l.BobWords*32)

	// Architectural state.
	pcReg := b.Reg("pc", 32)
	pc := pcReg.Q()
	regs := make([]*build.Reg, 15)
	for i := range regs {
		regs[i] = b.Reg(fmt.Sprintf("r%d", i), 32)
	}
	flagN := b.Reg("N", 1)
	flagZ := b.Reg("Z", 1)
	flagC := b.Reg("C", 1)
	flagV := b.Reg("V", 1)
	haltedReg := b.Reg("halted", 1)
	halted := haltedReg.Q()[0]
	running := b.Not(halted)

	// Instruction memory: public flip-flops holding the program p.
	closeScope := b.Scope("imem")
	imem := make([]build.Bus, l.IMemWords)
	for w := range imem {
		inits := make([]circuit.Init, 32)
		for bit := range inits {
			inits[bit] = circuit.Init{Kind: circuit.InitPublic, Idx: pubOff + w*32 + bit}
		}
		r := b.RegInit(fmt.Sprintf("imem%d", w), inits)
		r.SetNext(r.Q()) // ROM: holds forever
		imem[w] = r.Q()
	}
	closeScope()

	// Data memory: one RAM behind the selected oblivious backend; regions
	// set initialization.
	closeScope = b.Scope("dmem")
	mem, err := obliv.Instantiate(b, backend, mc, l, aliceOff, bobOff)
	if err != nil {
		return nil, err
	}
	closeScope()

	// Fetch.
	closeScope = b.Scope("fetch")
	ibits := log2(l.IMemWords)
	instr := b.MuxTree(pc[2:2+ibits], imem)
	pcPlus4 := b.Add(pc, build.ConstBus(4, 32))
	pcPlus8 := b.Add(pc, build.ConstBus(8, 32))
	closeScope()

	// Decode (all public when the PC is public).
	closeScope = b.Scope("decode")
	is1001 := b.AndTree([]build.W{instr[4], b.Not(instr[5]), b.Not(instr[6]), instr[7]})
	mulHigh := b.Nor(b.OrTree(instr[22:28]), b.Not(is1001))
	isMul := mulHigh
	isDP := b.And(b.Nor(instr[26], instr[27]), b.Not(isMul))
	isMem := b.And(instr[26], b.Not(instr[27]))
	isBranch := b.AndTree([]build.W{instr[27], b.Not(instr[26]), instr[25]})
	isSWI := b.AndTree([]build.W{instr[27], instr[26], instr[25], instr[24]})
	opcode := instr[21:25]
	sBit := instr[20]
	closeScope()

	// Condition evaluation.
	closeScope = b.Scope("cond")
	n, z := flagN.Q()[0], flagZ.Q()[0]
	cf, v := flagC.Q()[0], flagV.Q()[0]
	geSig := b.Xnor(n, v)
	conds := []build.Bus{
		{z}, {b.Not(z)}, {cf}, {b.Not(cf)},
		{n}, {b.Not(n)}, {v}, {b.Not(v)},
		{b.And(cf, b.Not(z))}, {b.Or(b.Not(cf), z)},
		{geSig}, {b.Not(geSig)},
		{b.And(b.Not(z), geSig)}, {b.Or(z, b.Not(geSig))},
		{build.T}, {build.T},
	}
	condPass := b.MuxTree(instr[28:32], conds)[0]
	closeScope()

	// Register file reads (r15 reads as PC+8).
	closeScope = b.Scope("regfile.read")
	items := make([]build.Bus, 16)
	for i := 0; i < 15; i++ {
		items[i] = regs[i].Q()
	}
	items[15] = pcPlus8
	rnVal := b.MuxTree(instr[16:20], items)
	rdVal := b.MuxTree(instr[12:16], items) // store data / MLA accumulator
	rmVal := b.MuxTree(instr[0:4], items)
	rsVal := b.MuxTree(instr[8:12], items)
	closeScope()

	// Operand 2: rotated immediate or shifted register.
	closeScope = b.Scope("shifter")
	immRot := build.Bus{build.F, instr[8], instr[9], instr[10], instr[11]}
	immVal := b.RorVar(build.ZeroExtend(instr[0:8], 32), immRot)
	shAmt := b.MuxBus(instr[4], rsVal[0:6], build.ZeroExtend(instr[7:12], 6))
	lslV := b.ShlVar(rmVal, shAmt)
	lsrV := b.ShrVar(rmVal, shAmt, false)
	asrV := b.ShrVar(rmVal, shAmt, true)
	rorV := b.RorVar(rmVal, shAmt)
	shifted := b.MuxTree(instr[5:7], []build.Bus{lslV, lsrV, asrV, rorV})
	op2 := b.MuxBus(instr[25], immVal, shifted)
	closeScope()

	// ALU adder path: covers ADD/ADC/SUB/SBC/RSB/RSC/CMP/CMN.
	closeScope = b.Scope("alu.adder")
	// RSB (0011) and RSC (0111) swap the adder operands.
	isRsbLike := b.AndTree([]build.W{opcode[0], opcode[1], b.Not(opcode[3])})
	x := b.MuxBus(isRsbLike, op2, rnVal)
	y := b.MuxBus(isRsbLike, rnVal, op2)
	// Control tables indexed by opcode (AND EOR SUB RSB ADD ADC SBC RSC
	// TST TEQ CMP CMN ORR MOV BIC MVN).
	invY := muxtreeBits(b, opcode, "0011001100100000")   // subtracting ops invert y
	cinC := muxtreeBits(b, opcode, "0000011100000000")   // ADC/SBC/RSC: carry-in = C
	cinOne := muxtreeBits(b, opcode, "0011000000100000") // SUB/RSB/CMP: carry-in = 1
	cin := b.Or(b.And(cinC, cf), cinOne)
	yEff := make(build.Bus, 32)
	for i := range yEff {
		yEff[i] = b.Xor(y[i], invY)
	}
	sum, cout := b.AddCarry(x, yEff, cin)
	ovf := b.And(b.Xnor(x[31], yEff[31]), b.Xor(sum[31], x[31]))
	closeScope()

	// ALU logical path.
	closeScope = b.Scope("alu.logic")
	andV := b.AndBus(rnVal, op2)
	eorV := b.XorBus(rnVal, op2)
	orrV := b.OrBus(rnVal, op2)
	bicV := b.AndBus(rnVal, b.NotBus(op2))
	movV := op2
	mvnV := b.NotBus(op2)
	closeScope()

	// Multiplier (truncated 32×32→32, plus MLA accumulate).
	closeScope = b.Scope("alu.mul")
	mulV := b.MulLow(rmVal, rsVal)
	mlaV := b.Add(mulV, rdVal)
	mulOut := b.MuxBus(instr[21], mlaV, mulV)
	closeScope()

	// Data-processing result mux (public opcode releases the idle units).
	closeScope = b.Scope("alu.select")
	dpResult := b.MuxTree(opcode, []build.Bus{
		andV, eorV, sum, sum, sum, sum, sum, sum,
		andV, eorV, sum, sum, orrV, movV, bicV, mvnV,
	})
	closeScope()

	// Memory access.
	closeScope = b.Scope("dmem.agu")
	off32 := build.ZeroExtend(instr[0:12], 32)
	invU := b.Not(instr[23])
	offEff := make(build.Bus, 32)
	for i := range offEff {
		offEff[i] = b.Xor(off32[i], invU)
	}
	memAddr, _ := b.AddCarry(rnVal, offEff, invU)
	dbits := log2ceil(l.DataWords())
	wordAddr := memAddr[2 : 2+dbits]
	closeScope()

	closeScope = b.Scope("dmem.read")
	memRead := mem.Read(wordAddr)
	closeScope()

	// Writeback value and destination.
	closeScope = b.Scope("writeback")
	isLoad := b.And(isMem, instr[20])
	wbData := b.MuxBus(isLoad, memRead, b.MuxBus(isMul, mulOut, dpResult))
	// TST/TEQ/CMP/CMN (10xx) do not write.
	dpWrites := b.And(isDP, b.Nand(opcode[3], b.Not(opcode[2])))
	writesRd := b.OrTree([]build.W{dpWrites, isMul, isLoad})
	wbEn := b.AndTree([]build.W{writesRd, condPass, running})
	rdSel := b.MuxBus(isMul, instr[16:20], instr[12:16])
	rdOnehot := b.Decoder(rdSel, wbEn)

	blEn := b.AndTree([]build.W{isBranch, instr[24], condPass, running})
	for i := 0; i < 15; i++ {
		next := b.MuxBus(rdOnehot[i], wbData, regs[i].Q())
		if i == 14 {
			next = b.MuxBus(blEn, pcPlus4, next)
		}
		regs[i].SetNext(next)
	}
	closeScope()

	// Flags.
	// TST/TEQ/CMP/CMN (opcodes 10xx) are compare-only: they set flags
	// whether or not S is encoded, matching the emulator's semantics.
	closeScope = b.Scope("flags")
	flagSrc := b.MuxBus(isMul, mulOut, dpResult)
	isTstClass := b.And(opcode[3], b.Not(opcode[2]))
	effS := b.Or(sBit, b.And(isDP, isTstClass))
	setNZ := b.AndTree([]build.W{b.Or(isDP, isMul), effS, condPass, running})
	newZ := b.EqZero(flagSrc)
	arith := muxtreeBits(b, opcode, "0011111100110000")
	setCV := b.AndTree([]build.W{isDP, arith, effS, condPass, running})
	flagN.SetNext(build.Bus{b.Mux(setNZ, flagSrc[31], n)})
	flagZ.SetNext(build.Bus{b.Mux(setNZ, newZ, z)})
	flagC.SetNext(build.Bus{b.Mux(setCV, cout, cf)})
	flagV.SetNext(build.Bus{b.Mux(setCV, ovf, v)})
	closeScope()

	// Memory write port. The backend gets the architectural store decode
	// (public with the instruction stream) separately from the fully
	// gated enable: a deferring backend keys its bookkeeping off the
	// full enable, which stays public for public instruction streams
	// with public store predicates.
	closeScope = b.Scope("dmem.write")
	isStore := b.And(isMem, b.Not(instr[20]))
	stEn := b.AndTree([]build.W{isStore, condPass, running})
	mem.Write(wordAddr, rdVal, stEn)
	closeScope()

	// Next PC.
	closeScope = b.Scope("pc")
	brOff := build.SignExtend(instr[0:24], 30)
	brTarget := b.Add(pcPlus8, append(build.Bus{build.F, build.F}, brOff...))
	takeBranch := b.AndTree([]build.W{isBranch, condPass, running})
	doHalt := b.AndTree([]build.W{isSWI, condPass, running})
	haltNow := b.Or(halted, doHalt)
	pcNext := b.MuxBus(rdOnehot[15], wbData, pcPlus4)
	pcNext = b.MuxBus(takeBranch, brTarget, pcNext)
	pcNext = b.MuxBus(haltNow, pc, pcNext)
	pcReg.SetNext(pcNext)
	haltedReg.SetNext(build.Bus{haltNow})
	closeScope()

	// Outputs: the output memory region as the backend reconciles it at
	// the halting cycle, and the halt flag.
	closeScope = b.Scope("dmem.out")
	outWires := mem.Outputs(haltNow)
	closeScope()
	b.Output("out", outWires)
	b.Output("halted", haltedReg.Q())

	c, err := b.Compile()
	if err != nil {
		return nil, err
	}
	if DebugLint {
		if err := mem.Check(); err != nil {
			return nil, err
		}
		if err := build.Lint(c, build.LintOpts{}).Err(); err != nil {
			return nil, err
		}
	}
	// Pre-warm the topological level partition so every cached machine
	// carries it: parallel sessions (WithWorkers) then find it for free
	// instead of each first scheduler paying the O(gates) computation.
	c.Levels()
	return &CPU{Circuit: c, Layout: l, Backend: mem.Name()}, nil
}

// muxtreeBits selects a per-opcode control bit from a 16-character table
// (table[i] = '1' when opcode i asserts the signal); since the opcode is
// usually public this costs nothing at runtime.
func muxtreeBits(b *build.Builder, opcode build.Bus, table string) build.W {
	if len(table) != 16 {
		panic("cpu: control table must have 16 entries")
	}
	items := make([]build.Bus, 16)
	for i := range items {
		items[i] = build.Bus{build.Const(table[i] == '1')}
	}
	return b.MuxTree(opcode, items)[0]
}

func log2(n int) int {
	k := 0
	for 1<<k < n {
		k++
	}
	return k
}

func log2ceil(n int) int { return log2(n) }

// PublicBits expands a program into the public input bit-vector p (the
// instruction-memory image).
func (c *CPU) PublicBits(p *isa.Program) ([]bool, error) {
	if p.Layout != c.Layout {
		return nil, fmt.Errorf("cpu: program layout %+v does not match processor %+v", p.Layout, c.Layout)
	}
	if len(p.Words) > c.Layout.IMemWords {
		return nil, fmt.Errorf("cpu: program of %d words exceeds imem %d", len(p.Words), c.Layout.IMemWords)
	}
	img := make([]uint32, c.Layout.IMemWords)
	copy(img, p.Words)
	return sim.UnpackWords(img), nil
}

// InputBits expands a party's input words into its input bit-vector,
// padded to the region size.
func (c *CPU) InputBits(owner circuit.Owner, words []uint32) ([]bool, error) {
	var region int
	switch owner {
	case circuit.Alice:
		region = c.Layout.AliceWords
	case circuit.Bob:
		region = c.Layout.BobWords
	default:
		return nil, fmt.Errorf("cpu: InputBits owner must be Alice or Bob")
	}
	if len(words) > region {
		return nil, fmt.Errorf("cpu: %d input words exceed region of %d", len(words), region)
	}
	img := make([]uint32, region)
	copy(img, words)
	return sim.UnpackWords(img), nil
}

// OutWords packs the "out" output bus back into words.
func OutWords(bits []bool) []uint32 { return sim.PackWords(bits) }
