package cpu

import (
	"bytes"
	"context"
	"math/rand"
	"testing"

	"arm2gc/internal/core"
	"arm2gc/internal/isa"
	"arm2gc/internal/sim"
)

// TestParallelRandomLayouts is the fuzz-style layout sweep for the
// parallel engine: random processor geometries (and random instruction
// images, which push the decoder through garbage encodings) must
// classify to identical statistics and garble to identical bytes at
// every worker count. Each geometry has its own level structure — narrow
// layouts exercise the serial-segment path, the wider ones the split
// levels — so this is where the segment planner earns its keep.
func TestParallelRandomLayouts(t *testing.T) {
	rng := rand.New(rand.NewSource(2026))
	imems := []int{16, 32, 64}
	for trial := 0; trial < 4; trial++ {
		l := isa.Layout{
			IMemWords:    imems[rng.Intn(len(imems))],
			AliceWords:   1 + rng.Intn(4),
			BobWords:     1 + rng.Intn(4),
			OutWords:     1 + rng.Intn(3),
			ScratchWords: 4 + rng.Intn(12),
		}
		c, err := Build(l)
		if err != nil {
			t.Fatalf("trial %d: layout %+v: %v", trial, l, err)
		}
		words := make([]uint32, l.IMemWords)
		for i := range words {
			words[i] = rng.Uint32()
		}
		pub := sim.UnpackWords(words)

		const cycles = 4
		want, err := core.Count(context.Background(), c.Circuit, pub, core.CountOpts{Cycles: cycles})
		if err != nil {
			t.Fatalf("trial %d serial count: %v", trial, err)
		}
		for _, workers := range []int{3, 8} {
			got, err := core.Count(context.Background(), c.Circuit, pub,
				core.CountOpts{Cycles: cycles, Workers: workers})
			if err != nil {
				t.Fatalf("trial %d workers %d: %v", trial, workers, err)
			}
			if got != want {
				t.Fatalf("trial %d layout %+v workers %d: stats %+v, serial %+v", trial, l, workers, got, want)
			}
		}

		serial := garbleFrames(t, c, pub, cycles, 1)
		par := garbleFrames(t, c, pub, cycles, 8)
		for cyc := range serial {
			if !bytes.Equal(serial[cyc], par[cyc]) {
				t.Fatalf("trial %d layout %+v: cycle %d garbled bytes differ", trial, l, cyc+1)
			}
		}
	}
}

// garbleFrames garbles `cycles` cycles of the processor with fixed label
// randomness and returns each cycle's serialized tables.
func garbleFrames(t *testing.T, c *CPU, pub []bool, cycles, workers int) [][]byte {
	t.Helper()
	s := core.NewScheduler(c.Circuit, core.Seed{9}, pub)
	s.SetWorkers(workers)
	g := core.NewGarbler(s, rand.New(rand.NewSource(4)))
	var frames [][]byte
	for cyc := 1; cyc <= cycles; cyc++ {
		s.Classify(cyc == cycles)
		frames = append(frames, g.GarbleCycleAppend(nil))
		g.CopyDFFs()
		s.Commit()
	}
	return frames
}
