package obliv

import (
	"strings"
	"testing"

	"arm2gc/internal/build"
	"arm2gc/internal/circuit"
	"arm2gc/internal/isa"
)

// checkLayout is big enough for the sqrt-ORAM (>= MinSqrtWords data
// words) and small enough to instantiate in microseconds.
func checkLayout() isa.Layout {
	return isa.Layout{IMemWords: 16, AliceWords: 4, BobWords: 4, OutWords: 4, ScratchWords: 20}
}

func instantiate(t *testing.T, name string) Memory {
	t.Helper()
	l := checkLayout()
	b := build.New("check-" + name)
	aliceOff := b.AllocInputBits(circuit.Alice, l.AliceWords*32)
	bobOff := b.AllocInputBits(circuit.Bob, l.BobWords*32)
	m, err := Instantiate(b, name, Config{}, l, aliceOff, bobOff)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestCheckHealthyBackends: both backends pass their width self-check
// right after instantiation — the state cpu.BuildMem verifies under
// ARM2GC_DEBUG_LINT.
func TestCheckHealthyBackends(t *testing.T) {
	for _, name := range []string{Scan, SqrtORAM} {
		if err := instantiate(t, name).Check(); err != nil {
			t.Errorf("%s: Check() = %v, want nil", name, err)
		}
	}
}

// TestCheckCorruptedScan: a bank that lost a word no longer covers the
// layout's address space.
func TestCheckCorruptedScan(t *testing.T) {
	m := instantiate(t, Scan).(*scanMem)
	m.dmem = m.dmem[:len(m.dmem)-1]
	err := m.Check()
	if err == nil || !strings.Contains(err.Error(), "bank has") {
		t.Fatalf("truncated scan bank: Check() = %v, want a bank-size error", err)
	}
}

// TestCheckCorruptedSqrt: each invariant class trips on its own
// corruption.
func TestCheckCorruptedSqrt(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(m *sqrtMem)
		wantSub string
	}{
		{"truncated-bank", func(m *sqrtMem) { m.bank = m.bank[:len(m.bank)-1] }, "bank has"},
		{"narrow-address", func(m *sqrtMem) { m.dbits-- }, "address width"},
		{"non-pow2-window", func(m *sqrtMem) { m.window = 3 }, "not a positive power of two"},
		{"missing-slot", func(m *sqrtMem) { m.slots = m.slots[:len(m.slots)-1] }, "stash slots"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := instantiate(t, SqrtORAM).(*sqrtMem)
			tc.corrupt(m)
			err := m.Check()
			if err == nil || !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("Check() = %v, want an error containing %q", err, tc.wantSub)
			}
		})
	}
}
