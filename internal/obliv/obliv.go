// Package obliv provides the oblivious data-memory backends of the
// garbled processor: circuit-level implementations of the CPU's
// word-addressed RAM, selectable per session.
//
// Two backends exist. Scan is the paper's §4.4 linear scan — a MUX tree
// over every word on loads and a full decoder + write-mux array on stores
// (~32 garbled tables per scanned word once the address is secret).
// SqrtORAM keeps the same word array as a bank but routes stores through
// a √n-slot stash ring addressed at *public* ring positions, so a store
// appends for ~free and the 34n-table bank write-back is deferred until
// the ring wraps — and never paid at all for the trailing √n stores of a
// run (the output region is reconciled by a halt-gated overlay instead).
// Loads pay the bank scan plus a small per-slot overlay tax, which is the
// break-even: big memories with bounded store counts win, small or
// store-saturated ones lose. See the README's "Oblivious memory" section
// for the measured crossover.
//
// The Auto backend picks between them by memory size against a threshold
// (default DefaultThreshold words, the measured 2KB crossover), which is
// the paper's "linear scan below the ORAM break-even" rule made
// operational.
//
// Everything here is wire-stream-critical: both parties must derive
// byte-identical public circuit state, so code in this package must be
// fully deterministic (no map-order, wall-clock, global-rand, or
// scheduling dependence). The arm2gc-vet determinism analyzer enforces
// this; the next line is its machine-readable annotation.
//
//arm2gc:deterministic
package obliv

import (
	"fmt"
	"math"

	"arm2gc/internal/build"
	"arm2gc/internal/isa"
)

// Backend names. Auto resolves to one of the concrete two at machine
// build time; every cache key, trace key and session id sees only the
// resolved name.
const (
	Auto     = "auto"
	Scan     = "scan"
	SqrtORAM = "sqrt-oram"
)

// DefaultThreshold is the data-memory size (words) at which Auto switches
// from the linear scan to the square-root ORAM: 512 words = 2 KB, the
// low end of the paper's cited 2–8 KB ORAM break-even range and the
// measured crossover for relaxation-class workloads (see
// TestMemoryBackendCrossover and `make bench-oram`).
const DefaultThreshold = 512

// MinSqrtWords is the smallest data memory the square-root ORAM accepts:
// below it the stash ring degenerates (fewer than 4 slots) and the scan
// is strictly better anyway.
const MinSqrtWords = 16

// MaxDataWords bounds the data-memory size any backend will build. The
// load scan and the store decoder are both linear in the padded word
// count, so a mistyped layout would otherwise synthesize a multi-GB
// netlist before failing somewhere confusing.
const MaxDataWords = 1 << 20

// Config is the memory-configuration surface of the API: which backend,
// over how many words, switching at what threshold. The zero value means
// "auto over the layout's own size at the default threshold" — exactly
// what sessions run with unless WithMemoryBackend says otherwise.
type Config struct {
	// Backend is Auto, Scan, SqrtORAM, or "" (Auto).
	Backend string

	// Words overrides the data-word count Auto resolves against; 0 means
	// the layout's DataWords(). The circuit is always built for the
	// layout's true size — Words only biases the auto selection, e.g. to
	// pin the decision a fleet made for a family of layouts.
	Words int

	// Threshold is the word count at which Auto switches from Scan to
	// SqrtORAM; 0 means DefaultThreshold.
	Threshold int

	// Window is the stash coverage of the square-root ORAM: the number of
	// words, from address zero, whose stores are absorbed by the stash
	// (must be a power of two ≤ the data-memory size). Stores above the
	// window write the bank directly — free when their addresses are
	// public, which is what keeps compiler stack spills from flooding the
	// stash ring and evicting the deferred array stores early. 0 means
	// auto: the largest power-of-two strictly below the data-memory size
	// (the region-aligned prefix where the parties' arrays live; the
	// MiniC stack sits at the top of scratch, above it).
	Window int
}

// ParseBackend validates a backend name ("" means Auto).
func ParseBackend(s string) (string, error) {
	switch s {
	case "", Auto:
		return Auto, nil
	case Scan:
		return Scan, nil
	case SqrtORAM:
		return SqrtORAM, nil
	}
	return "", fmt.Errorf("obliv: unknown memory backend %q (want %q, %q or %q)", s, Auto, Scan, SqrtORAM)
}

// Resolve picks the concrete backend for a data memory of dataWords
// words: explicit names pass through (validated), Auto compares against
// the threshold.
func (c Config) Resolve(dataWords int) (string, error) {
	name, err := ParseBackend(c.Backend)
	if err != nil {
		return "", err
	}
	if name != Auto {
		return name, nil
	}
	words := c.Words
	if words <= 0 {
		words = dataWords
	}
	threshold := c.Threshold
	if threshold <= 0 {
		threshold = DefaultThreshold
	}
	if words >= threshold && dataWords >= MinSqrtWords {
		return SqrtORAM, nil
	}
	return Scan, nil
}

// ResolveWindow picks the concrete stash window for a data memory of
// dataWords words: an explicit Config.Window passes through (validated),
// 0 resolves to the largest power of two strictly below dataWords. The
// "strictly" matters: a window equal to the whole memory would put the
// stack back inside the stash's coverage and recreate the ring-flooding
// problem the window exists to solve.
func (c Config) ResolveWindow(dataWords int) (int, error) {
	if c.Window != 0 {
		w := c.Window
		if w < 0 || w&(w-1) != 0 {
			return 0, fmt.Errorf("obliv: stash window %d is not a power of two", w)
		}
		if w > dataWords {
			return 0, fmt.Errorf("obliv: stash window %d exceeds the %d-word data memory", w, dataWords)
		}
		return w, nil
	}
	w := 1
	for w*2 < dataWords {
		w *= 2
	}
	return w, nil
}

// Memory is one instantiated data-memory backend inside a processor
// netlist under construction. The CPU generator drives it through four
// calls, in order: Instantiate (registers + initialization), Read (the
// load port), Write (the store port), Outputs (the output-region view).
type Memory interface {
	// Name is the resolved backend name this memory was built with.
	Name() string

	// Read returns the 32-bit load value for a word address (width
	// log2ceil(DataWords)). Pure combinational read of this cycle's
	// state.
	Read(addr build.Bus) build.Bus

	// Write wires the store port: data is stored at addr when en (the
	// fully gated store enable: isStore ∧ condPass ∧ running) holds. en
	// is public whenever the instruction stream and the store's
	// predicate are — which the sqrt-ORAM relies on to keep its stash
	// ring positions public (a secret-PC or secret-predicate program
	// still computes correctly, just without the free-append discount).
	Write(addr build.Bus, data build.Bus, en build.W)

	// Outputs returns the output region (l.OutWords words starting at
	// l.OutBase) as seen at the cycle where halt is true. halt is the
	// halted-after-this-cycle wire; backends that defer writes reconcile
	// them into this view under a halt-gated overlay, so the decoded
	// outputs match the scan's exactly on every halting run. (On a run
	// that exhausts its cycle budget without halting, a deferring
	// backend's outputs reflect only the written-back state — halting
	// programs are the architectural contract.)
	Outputs(halt build.W) build.Bus

	// Check verifies the backend's internal width invariants (bank size
	// vs layout, stash tag/data/slot-counter widths) after construction.
	// cpu.BuildMem runs it when debug linting is on; a failure means the
	// backend wired a bus that cannot address or hold what the layout
	// requires, which would otherwise surface only as wrong outputs.
	Check() error
}

// Instantiate builds the named backend's state (registers and
// initialization) into b. aliceOff and bobOff are the parties' input-bit
// offsets for the Alice/Bob region initialization, as reserved by the CPU
// generator. mc supplies backend tuning (the sqrt-ORAM stash window); the
// name must be concrete (Resolve first); Auto is refused.
func Instantiate(b *build.Builder, name string, mc Config, l isa.Layout, aliceOff, bobOff int) (Memory, error) {
	if l.DataWords() > MaxDataWords {
		return nil, fmt.Errorf("obliv: data memory of %d words exceeds the %d-word bound", l.DataWords(), MaxDataWords)
	}
	switch name {
	case Scan:
		return newScan(b, l, aliceOff, bobOff), nil
	case SqrtORAM:
		if l.DataWords() < MinSqrtWords {
			return nil, fmt.Errorf("obliv: sqrt-oram needs at least %d data words, layout has %d (use %q)",
				MinSqrtWords, l.DataWords(), Scan)
		}
		window, err := mc.ResolveWindow(l.DataWords())
		if err != nil {
			return nil, err
		}
		return newSqrt(b, l, window, aliceOff, bobOff), nil
	case Auto, "":
		return nil, fmt.Errorf("obliv: Instantiate needs a resolved backend, not %q", Auto)
	}
	return nil, fmt.Errorf("obliv: unknown memory backend %q", name)
}

// StashSlots is the stash ring size the sqrt-ORAM uses for a memory of n
// words: ⌈√n⌉, floored at 4 slots.
func StashSlots(n int) int {
	s := int(math.Ceil(math.Sqrt(float64(n))))
	if s < 4 {
		s = 4
	}
	return s
}

// log2ceil returns the smallest k with 1<<k >= n.
func log2ceil(n int) int {
	k := 0
	for 1<<k < n {
		k++
	}
	return k
}
