package obliv

import (
	"fmt"

	"arm2gc/internal/build"
	"arm2gc/internal/circuit"
	"arm2gc/internal/isa"
)

// scanMem is the paper's linear-scan data memory, extracted verbatim from
// the original dmem scopes of the CPU generator: one flip-flop word array,
// a zero-padded MUX tree on the load port, a full decoder + per-word
// write mux on the store port. The extraction is gate-for-gate identical
// to the pre-backend netlist — the gate-count golden tests pin it — so
// machine caches, traces and recorded streams for scan machines carry
// over unchanged.
type scanMem struct {
	b     *build.Builder
	l     isa.Layout
	dmem  []*build.Reg
	dmemQ []build.Bus
}

// bankRegs builds the shared word array with its region initialization:
// Alice's words from her input bits, Bob's from his, the rest zero. Both
// backends use it, so input wiring never depends on the backend.
func bankRegs(b *build.Builder, l isa.Layout, aliceOff, bobOff int) ([]*build.Reg, []build.Bus) {
	dmem := make([]*build.Reg, l.DataWords())
	dmemQ := make([]build.Bus, len(dmem))
	for w := range dmem {
		inits := make([]circuit.Init, 32)
		for bit := range inits {
			switch {
			case w < l.AliceWords:
				inits[bit] = circuit.Init{Kind: circuit.InitAlice, Idx: aliceOff + w*32 + bit}
			case w < l.AliceWords+l.BobWords:
				inits[bit] = circuit.Init{Kind: circuit.InitBob, Idx: bobOff + (w-l.AliceWords)*32 + bit}
			default:
				inits[bit] = circuit.Init{Kind: circuit.InitZero}
			}
		}
		dmem[w] = b.RegInit(fmt.Sprintf("dmem%d", w), inits)
		dmemQ[w] = dmem[w].Q()
	}
	return dmem, dmemQ
}

func newScan(b *build.Builder, l isa.Layout, aliceOff, bobOff int) *scanMem {
	m := &scanMem{b: b, l: l}
	m.dmem, m.dmemQ = bankRegs(b, l, aliceOff, bobOff)
	return m
}

func (m *scanMem) Name() string { return Scan }

func (m *scanMem) Read(addr build.Bus) build.Bus {
	padded := make([]build.Bus, 1<<len(addr))
	for i := range padded {
		if i < len(m.dmemQ) {
			padded[i] = m.dmemQ[i]
		} else {
			padded[i] = build.ZeroBus(32)
		}
	}
	return m.b.MuxTree(addr, padded)
}

func (m *scanMem) Write(addr build.Bus, data build.Bus, en build.W) {
	weOnehot := m.b.Decoder(addr, en)
	for i, r := range m.dmem {
		r.SetNext(m.b.MuxBus(weOnehot[i], data, r.Q()))
	}
}

func (m *scanMem) Check() error {
	if len(m.dmem) != m.l.DataWords() {
		return fmt.Errorf("obliv: scan bank has %d words, layout needs %d", len(m.dmem), m.l.DataWords())
	}
	for w, q := range m.dmemQ {
		if len(q) != 32 {
			return fmt.Errorf("obliv: scan bank word %d is %d bits wide, want 32", w, len(q))
		}
	}
	return nil
}

func (m *scanMem) Outputs(halt build.W) build.Bus {
	var out build.Bus
	base := int(m.l.OutBase() / 4)
	for w := base; w < base+m.l.OutWords; w++ {
		out = append(out, m.dmemQ[w]...)
	}
	return out
}
