package obliv

import (
	"fmt"

	"arm2gc/internal/build"
	"arm2gc/internal/circuit"
	"arm2gc/internal/isa"
)

// sqrtMem is the square-root ORAM backend: the same word bank as the
// linear scan, plus a stash ring of ⌈√window⌉ {tag, data, valid} slots
// that absorbs stores into the low `window` words at *public* ring
// positions.
//
// The window is the load-bearing design point. A compiled program's store
// stream is dominated by stack spills at public addresses (MiniC spills
// every local), and those cost the scan nothing once SkipGate sees the
// public one-hot decoder. If they entered the stash they would advance
// the ring ~√n times per loop iteration and evict the deferred array
// stores almost immediately — turning the elision into a ~100-cycle
// deferral worth 0.1%. So only stores below the window (the aligned
// low-address prefix where the parties' arrays live) use the stash;
// everything above writes the bank directly through its own decoder,
// which is free exactly when the address is public. The split wire is a
// zero-test of the address bits above the window, public whenever those
// bits are.
//
// Cost model under SkipGate (public instruction stream):
//
//   - In-window store: the append slot is chosen by a public ring
//     counter, so the tag/data muxes fold to free copies; only the
//     duplicate-invalidation pass pays (~(dbits+2) tables per occupied
//     slot). The scan pays ~34n tables per store (decoder + write muxes)
//     — this is the win.
//   - Above-window store: direct bank write; free for public addresses,
//     ~34n for secret ones (same as the scan).
//   - Wrap: once the ring is full, each in-window store first evicts the
//     oldest slot back to the bank through a decoder + write-mux pass
//     (~34·window, the deferred store cost). The final ≤√window
//     in-window stores of a run never wrap and never pay it.
//   - Load: the bank scan (~32n) plus a stash overlay (~(dbits+33)
//     tables per occupied slot) — the per-load tax the break-even
//     threshold balances against the store savings. Loads above the
//     window skip the overlay for free: an in-window tag cannot equal an
//     above-window address, and the comparison is public when the
//     address's high bits are.
//   - Halt: the output region is reconciled by an overlay gated on the
//     halt wire: free every running cycle (the public-false select
//     releases the whole overlay cone), paid once at halt.
//
// Duplicate invalidation keeps the invariant that at most one valid slot
// matches any address, so the overlay is order-free; the eviction decoder
// then writes back the unique surviving copy. If an address's high bits
// are secret the window split itself goes secret — the circuit stays
// correct through the complementary write enables, it just pays like the
// scan plus the stash tax from then on.
type sqrtMem struct {
	b      *build.Builder
	l      isa.Layout
	bank   []*build.Reg
	bankQ  []build.Bus
	dbits  int
	window int

	slots []stashSlot
	tail  *build.Reg // next append position: public ring counter
	full  *build.Reg // the ring has wrapped at least once
}

type stashSlot struct {
	tag   *build.Reg // word address, dbits wide
	data  *build.Reg // 32-bit stored value
	valid *build.Reg // slot holds a live (not yet evicted) store
}

func newSqrt(b *build.Builder, l isa.Layout, window, aliceOff, bobOff int) *sqrtMem {
	m := &sqrtMem{b: b, l: l, dbits: log2ceil(l.DataWords()), window: window}
	m.bank, m.bankQ = bankRegs(b, l, aliceOff, bobOff)
	n := StashSlots(window)
	m.slots = make([]stashSlot, n)
	zero := func(bits int) []circuit.Init {
		inits := make([]circuit.Init, bits)
		for i := range inits {
			inits[i] = circuit.Init{Kind: circuit.InitZero}
		}
		return inits
	}
	for j := range m.slots {
		m.slots[j] = stashSlot{
			tag:   b.RegInit(fmt.Sprintf("stash%d.tag", j), zero(m.dbits)),
			data:  b.RegInit(fmt.Sprintf("stash%d.data", j), zero(32)),
			valid: b.RegInit(fmt.Sprintf("stash%d.valid", j), zero(1)),
		}
	}
	m.tail = b.RegInit("stash.tail", zero(log2ceil(n)))
	m.full = b.RegInit("stash.full", zero(1))
	return m
}

func (m *sqrtMem) Name() string { return SqrtORAM }

func (m *sqrtMem) Check() error {
	if len(m.bank) != m.l.DataWords() {
		return fmt.Errorf("obliv: sqrt-oram bank has %d words, layout needs %d", len(m.bank), m.l.DataWords())
	}
	if m.dbits != log2ceil(m.l.DataWords()) {
		return fmt.Errorf("obliv: sqrt-oram address width %d cannot index %d words (want %d)",
			m.dbits, m.l.DataWords(), log2ceil(m.l.DataWords()))
	}
	if m.window <= 0 || m.window&(m.window-1) != 0 {
		return fmt.Errorf("obliv: sqrt-oram stash window %d is not a positive power of two", m.window)
	}
	if want := StashSlots(m.window); len(m.slots) != want {
		return fmt.Errorf("obliv: sqrt-oram has %d stash slots for a %d-word window, want %d", len(m.slots), m.window, want)
	}
	for j, s := range m.slots {
		if s.tag.Bits() != m.dbits {
			return fmt.Errorf("obliv: stash slot %d tag is %d bits, want address width %d", j, s.tag.Bits(), m.dbits)
		}
		if s.data.Bits() != 32 {
			return fmt.Errorf("obliv: stash slot %d data is %d bits, want 32", j, s.data.Bits())
		}
		if s.valid.Bits() != 1 {
			return fmt.Errorf("obliv: stash slot %d valid is %d bits, want 1", j, s.valid.Bits())
		}
	}
	if want := log2ceil(len(m.slots)); m.tail.Bits() != want {
		return fmt.Errorf("obliv: stash tail counter is %d bits for %d slots, want %d", m.tail.Bits(), len(m.slots), want)
	}
	return nil
}

// bankRead is the scan's load port over the bank alone.
func (m *sqrtMem) bankRead(addr build.Bus) build.Bus {
	padded := make([]build.Bus, 1<<len(addr))
	for i := range padded {
		if i < len(m.bankQ) {
			padded[i] = m.bankQ[i]
		} else {
			padded[i] = build.ZeroBus(32)
		}
	}
	return m.b.MuxTree(addr, padded)
}

// hit is the slot-matches-address wire, gated by the address's own
// window test. The gate is not an optimization nicety — it is what keeps
// above-window traffic free: stash tags are secret once a secret store
// lands, so Eq(tag, addr) is secret even against a public stack address,
// and without the public-false inWin conjunct every stack load of the
// run would pay the overlay muxes for every occupied slot. The Eq node
// is shared (by structural hashing) with the invalidation pass of Write,
// so a cycle doing both pays it once.
func (m *sqrtMem) hit(j int, addr build.Bus, inWin build.W) build.W {
	b := m.b
	return b.And(m.slots[j].valid.Q()[0], b.And(b.Eq(m.slots[j].tag.Q(), addr), inWin))
}

// inWindow tests addr < window: a zero-test of the address bits above the
// window boundary, public whenever they are. Window is a power of two ≤
// DataWords, so every in-window address is also in range of the bank.
func (m *sqrtMem) inWindow(addr build.Bus) build.W {
	wbits := log2ceil(m.window)
	if wbits >= len(addr) {
		return build.T
	}
	high := make([]build.W, 0, len(addr)-wbits)
	for _, w := range addr[wbits:] {
		high = append(high, w)
	}
	return m.b.Not(m.b.OrTree(high))
}

func (m *sqrtMem) Read(addr build.Bus) build.Bus {
	acc := m.bankRead(addr)
	inWin := m.inWindow(addr)
	// ≤1 slot can be valid for addr, so overlay order is irrelevant.
	for j := range m.slots {
		acc = m.b.MuxBus(m.hit(j, addr, inWin), m.slots[j].data.Q(), acc)
	}
	return acc
}

func (m *sqrtMem) Write(addr build.Bus, data build.Bus, en build.W) {
	b := m.b
	n := len(m.slots)
	tailQ := m.tail.Q()

	// The window split. stash gates the ring; its complement gates the
	// direct bank port. At runtime at most one path is enabled per cycle,
	// for any address — secret high bits (or a secret store predicate)
	// just make the split, and everything downstream of the ring, cost
	// like the scan instead of being free. stash conjoins the *full*
	// store enable, not the decode-level store bit: MiniC predicates
	// conditional stores rather than branching around them, so an
	// untaken store still executes the instruction — and if it advanced
	// the ring it would wrap it once per √window untaken iterations,
	// evicting the live entries early (a full secret write-back each)
	// exactly like the stack-spill flooding the window exists to stop.
	inWin := m.inWindow(addr)
	stash := b.And(en, inWin)

	// Ring control: all-public arithmetic whenever the split is public.
	tailIs := make([]build.W, n)
	for j := range tailIs {
		tailIs[j] = b.Eq(tailQ, build.ConstBus(uint64(j), len(tailQ)))
	}
	inc, _ := b.Inc(tailQ)
	atEnd := tailIs[n-1]
	tailNext := b.MuxBus(atEnd, build.ZeroBus(len(tailQ)), inc)
	m.tail.SetNext(b.MuxBus(stash, tailNext, tailQ))
	fullQ := m.full.Q()[0]
	m.full.SetNext(build.Bus{b.Or(fullQ, b.And(stash, atEnd))})

	// Direct port: stores above the window write the bank immediately,
	// exactly like the scan — a free public one-hot for stack spills and
	// output writes, which is what keeps them out of the ring.
	weDirect := b.Decoder(addr, b.And(en, b.Not(inWin)))

	// Wrap eviction: with the ring full, the append position still holds
	// the oldest live in-window store — write it back to the bank first.
	// The decoder enable is public-false until the first wrap, so runs
	// with ≤√window array stores never garble a single write-back.
	wrapping := b.And(stash, fullQ)
	tagQs := make([]build.Bus, n)
	dataQs := make([]build.Bus, n)
	validQs := make([]build.Bus, n)
	for j, s := range m.slots {
		tagQs[j], dataQs[j], validQs[j] = s.tag.Q(), s.data.Q(), s.valid.Q()
	}
	victimTag := b.MuxTree(tailQ, tagQs)
	victimData := b.MuxTree(tailQ, dataQs)
	victimValid := b.MuxTree(tailQ, validQs)[0]
	weEvict := b.Decoder(victimTag, b.And(victimValid, wrapping))

	// The two bank ports are runtime-exclusive (complementary enables),
	// so the merge order is arbitrary; an inactive port's public-false
	// select folds its mux away.
	for i, r := range m.bank {
		r.SetNext(b.MuxBus(weEvict[i], victimData, b.MuxBus(weDirect[i], data, r.Q())))
	}

	// Append + duplicate invalidation. The append slot is public, so its
	// tag/data muxes are free copies; every other slot pays only the
	// invalidation AND. Invalidation keeps the ≤1-match invariant that
	// makes Read's overlay order-free — and it must see the same
	// windowed, gated enable: an untaken conditional store invalidates
	// nothing, and an above-window store (which can never match an
	// in-window tag) must leave the valid bits publicly untouched —
	// against a secret tag even a public stack address yields a secret
	// Eq, and conjoining the raw enable instead would turn every valid
	// bit secret at the first stack spill.
	for j, s := range m.slots {
		appendHere := b.And(tailIs[j], stash)
		match := b.Eq(s.tag.Q(), addr)
		keepValid := b.And(s.valid.Q()[0], b.Not(b.And(match, stash)))
		s.tag.SetNext(b.MuxBus(appendHere, addr, s.tag.Q()))
		s.data.SetNext(b.MuxBus(appendHere, data, s.data.Q()))
		s.valid.SetNext(build.Bus{b.Mux(appendHere, build.T, keepValid)})
	}
}

func (m *sqrtMem) Outputs(halt build.W) build.Bus {
	b := m.b
	out := make(build.Bus, 0, m.l.OutWords*32)
	base := int(m.l.OutBase() / 4)
	for w := base; w < base+m.l.OutWords; w++ {
		ov := m.bankQ[w]
		waddr := build.ConstBus(uint64(w), m.dbits)
		inWin := m.inWindow(waddr) // constant: folds the overlay away for out regions above the window
		for j := range m.slots {
			ov = b.MuxBus(m.hit(j, waddr, inWin), m.slots[j].data.Q(), ov)
		}
		// halt is public-false on every running cycle: the mux folds to
		// the bank word and releases the whole overlay cone, so the
		// reconciliation is garbled exactly once, on the halting cycle.
		out = append(out, b.MuxBus(halt, ov, m.bankQ[w])...)
	}
	return out
}
