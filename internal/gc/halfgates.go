package gc

import (
	"fmt"

	"arm2gc/internal/circuit"
)

// Table is one garbled gate: the two half-gate ciphertexts (TG, TE).
// With free-XOR + half gates, every non-XOR 2-input gate costs exactly one
// Table (2·128 bits) of communication.
type Table struct {
	TG, TE Label
}

// TableBytes is the wire size of one garbled table.
const TableBytes = 32

// andForm maps each AND-class operator onto an AND with optional input and
// output complements: op(a,b) = outInv ⊕ AND(a ⊕ aInv, b ⊕ bInv).
// Complements are free: the garbler offsets the corresponding false label
// by R; the evaluator's computation is unchanged.
func andForm(op circuit.Op) (aInv, bInv, outInv bool) {
	switch op {
	case circuit.AND:
		return false, false, false
	case circuit.NAND:
		return false, false, true
	case circuit.OR:
		return true, true, true // a∨b = ¬(¬a ∧ ¬b)
	case circuit.NOR:
		return true, true, false
	}
	panic(fmt.Sprintf("gc: %v is not an AND-class op", op))
}

// GarbleAnd garbles one AND gate with the half-gates construction.
// a0 and b0 are the false labels of the inputs, r the global offset, gid
// the gate's unique index (two hash tweaks 2gid and 2gid+1 are consumed).
// It returns the output false label and the table.
func GarbleAnd(h *Hash, r Label, a0, b0 Label, gid uint64) (Label, Table) {
	pa := a0.Bit()
	pb := b0.Bit()
	a1 := a0.Xor(r)
	b1 := b0.Xor(r)
	j0 := 2 * gid
	j1 := 2*gid + 1

	ha0 := h.H(a0, j0)
	ha1 := h.H(a1, j0)
	hb0 := h.H(b0, j1)
	hb1 := h.H(b1, j1)

	// Garbler half gate: computes a ∧ pb.
	tg := ha0.Xor(ha1)
	if pb {
		tg = tg.Xor(r)
	}
	wg := ha0
	if pa {
		wg = wg.Xor(tg)
	}
	// Evaluator half gate: computes a ∧ (b ⊕ pb).
	te := hb0.Xor(hb1).Xor(a0)
	we := hb0
	if pb {
		we = we.Xor(te.Xor(a0))
	}
	return wg.Xor(we), Table{TG: tg, TE: te}
}

// EvalAnd evaluates one half-gates AND with the active input labels.
func EvalAnd(h *Hash, a, b Label, t Table, gid uint64) Label {
	j0 := 2 * gid
	j1 := 2*gid + 1
	wg := h.H(a, j0)
	if a.Bit() {
		wg = wg.Xor(t.TG)
	}
	we := h.H(b, j1)
	if b.Bit() {
		we = we.Xor(t.TE.Xor(a))
	}
	return wg.Xor(we)
}

// GarbleAndInv garbles outInv ⊕ AND(a ⊕ aInv, b ⊕ bInv): an AND gate with
// complemented terminals. Complements are free — they only shift the
// garbler's false labels by R; evaluation is plain EvalAnd.
func GarbleAndInv(h *Hash, r Label, a0, b0 Label, gid uint64, aInv, bInv, outInv bool) (Label, Table) {
	if aInv {
		a0 = a0.Xor(r)
	}
	if bInv {
		b0 = b0.Xor(r)
	}
	c0, t := GarbleAnd(h, r, a0, b0, gid)
	if outInv {
		c0 = c0.Xor(r)
	}
	return c0, t
}

// GarbleGate garbles any AND-class gate (AND/OR/NAND/NOR) by reducing it to
// an AND with complemented terminals.
func GarbleGate(h *Hash, r Label, op circuit.Op, a0, b0 Label, gid uint64) (Label, Table) {
	aInv, bInv, outInv := andForm(op)
	return GarbleAndInv(h, r, a0, b0, gid, aInv, bInv, outInv)
}

// GarbleMux garbles the atomic multiplexer out = S ? B : A as
// A ⊕ AND(S, A⊕B): one table.
func GarbleMux(h *Hash, r Label, s0, a0, b0 Label, gid uint64) (Label, Table) {
	c0, t := GarbleAnd(h, r, s0, a0.Xor(b0), gid)
	return c0.Xor(a0), t
}

// EvalMux evaluates a garbled multiplexer.
func EvalMux(h *Hash, s, a, b Label, t Table, gid uint64) Label {
	return EvalAnd(h, s, a.Xor(b), t, gid).Xor(a)
}

// EvalGate evaluates any AND-class gate garbled by GarbleGate. The
// complements live entirely on the garbler's side, so evaluation is plain
// EvalAnd.
func EvalGate(h *Hash, op circuit.Op, a, b Label, t Table, gid uint64) Label {
	if op != circuit.AND && op != circuit.OR && op != circuit.NAND && op != circuit.NOR {
		panic(fmt.Sprintf("gc: %v is not an AND-class op", op))
	}
	return EvalAnd(h, a, b, t, gid)
}
