package gc

import (
	"fmt"
	"io"

	"arm2gc/internal/circuit"
)

// WireInit describes where one wire's initial label comes from: a constant,
// or bit Idx of an owner's input vector. EnumerateInits fixes the order in
// which initial active labels travel from garbler to evaluator.
type WireInit struct {
	Wire circuit.Wire
	Kind circuit.InitKind // InitZero/InitOne/InitPublic/InitAlice/InitBob
	Idx  int
}

// EnumerateInits lists every wire that needs an initial label: the two
// constants, all port wires, and all flip-flop outputs (cycle-1 values),
// in a canonical order both parties derive independently.
func EnumerateInits(c *circuit.Circuit) []WireInit {
	inits := []WireInit{
		{Wire: circuit.Const0, Kind: circuit.InitZero},
		{Wire: circuit.Const1, Kind: circuit.InitOne},
	}
	for _, p := range c.Ports {
		kind := circuit.InitPublic
		switch p.Owner {
		case circuit.Alice:
			kind = circuit.InitAlice
		case circuit.Bob:
			kind = circuit.InitBob
		}
		for b := 0; b < p.Bits; b++ {
			inits = append(inits, WireInit{Wire: p.Base + circuit.Wire(b), Kind: kind, Idx: p.Off + b})
		}
	}
	for i, d := range c.DFFs {
		inits = append(inits, WireInit{Wire: c.QWire(i), Kind: d.Init.Kind, Idx: d.Init.Idx})
	}
	return inits
}

// Garbler runs the conventional sequential GC protocol (every gate garbled
// every cycle): the TinyGarble baseline without SkipGate.
type Garbler struct {
	C *circuit.Circuit
	R Label
	H *Hash

	x0  []Label // false label per wire
	gid uint64

	pub, alice, bob []Label // false labels per input bit
	inits           []WireInit
	next            []Label
}

// NewGarbler creates a garbler with fresh randomness from rnd.
func NewGarbler(c *circuit.Circuit, rnd io.Reader) *Garbler {
	g := &Garbler{
		C:     c,
		R:     RandDelta(rnd),
		H:     NewHash(),
		x0:    make([]Label, c.NumWires()),
		pub:   randLabels(rnd, c.PublicBits),
		alice: randLabels(rnd, c.AliceBits),
		bob:   randLabels(rnd, c.BobBits),
		inits: EnumerateInits(c),
		next:  make([]Label, len(c.DFFs)),
	}
	for _, wi := range g.inits {
		switch wi.Kind {
		case circuit.InitZero, circuit.InitOne:
			g.x0[wi.Wire] = RandLabel(rnd)
		case circuit.InitPublic:
			g.x0[wi.Wire] = g.pub[wi.Idx]
		case circuit.InitAlice:
			g.x0[wi.Wire] = g.alice[wi.Idx]
		case circuit.InitBob:
			g.x0[wi.Wire] = g.bob[wi.Idx]
		}
	}
	return g
}

func randLabels(rnd io.Reader, n int) []Label {
	ls := make([]Label, n)
	for i := range ls {
		ls[i] = RandLabel(rnd)
	}
	return ls
}

// BobPairs returns the (X0, X1) label pairs for Bob's input bits, to be
// transferred through OT.
func (g *Garbler) BobPairs() [][2]Label {
	ps := make([][2]Label, len(g.bob))
	for i, x0 := range g.bob {
		ps[i] = [2]Label{x0, x0.Xor(g.R)}
	}
	return ps
}

// ActiveInitLabels returns, in EnumerateInits order, the active label for
// every non-Bob-owned initial wire given the public and Alice input values.
// Bob-owned entries are zero labels (delivered via OT instead).
func (g *Garbler) ActiveInitLabels(pub, alice []bool) []Label {
	out := make([]Label, len(g.inits))
	for i, wi := range g.inits {
		var v bool
		switch wi.Kind {
		case circuit.InitZero:
			v = false
		case circuit.InitOne:
			v = true
		case circuit.InitPublic:
			v = bitAt(pub, wi.Idx)
		case circuit.InitAlice:
			v = bitAt(alice, wi.Idx)
		case circuit.InitBob:
			continue // via OT
		}
		out[i] = g.x0[wi.Wire]
		if v {
			out[i] = out[i].Xor(g.R)
		}
	}
	return out
}

func bitAt(v []bool, i int) bool { return i >= 0 && i < len(v) && v[i] }

// GarbleCycle garbles one clock cycle, appending one Table per AND-class
// gate to dst and returning the extended slice; it ends with the flip-flop
// label copy.
func (g *Garbler) GarbleCycle(dst []Table) []Table {
	c := g.C
	x0 := g.x0
	for i, gate := range c.Gates {
		out := int(c.GateBase) + i
		switch gate.Op {
		case circuit.XOR:
			x0[out] = x0[gate.A].Xor(x0[gate.B])
		case circuit.XNOR:
			x0[out] = x0[gate.A].Xor(x0[gate.B]).Xor(g.R)
		case circuit.NOT:
			x0[out] = x0[gate.A].Xor(g.R)
		case circuit.BUF:
			x0[out] = x0[gate.A]
		case circuit.MUX:
			c0, t := GarbleMux(g.H, g.R, x0[gate.S], x0[gate.A], x0[gate.B], g.gid)
			g.gid++
			x0[out] = c0
			dst = append(dst, t)
		default:
			c0, t := GarbleGate(g.H, g.R, gate.Op, x0[gate.A], x0[gate.B], g.gid)
			g.gid++
			x0[out] = c0
			dst = append(dst, t)
		}
	}
	for i, d := range c.DFFs {
		g.next[i] = x0[d.D]
	}
	for i := range c.DFFs {
		x0[c.QWire(i)] = g.next[i]
	}
	return dst
}

// X0 exposes the current false label of a wire (post-cycle).
func (g *Garbler) X0(w circuit.Wire) Label { return g.x0[w] }

// DecodeBits returns the point-and-permute bits of the given wires; the
// evaluator combines them with its active labels to decode outputs.
func (g *Garbler) DecodeBits(ws []circuit.Wire) []bool {
	bits := make([]bool, len(ws))
	for i, w := range ws {
		bits[i] = g.x0[w].Bit()
	}
	return bits
}

// DecodeWith maps an active label back to a cleartext bit given the false
// label: errors if the label is neither X0 nor X1.
func (g *Garbler) DecodeWith(w circuit.Wire, active Label) (bool, error) {
	switch active {
	case g.x0[w]:
		return false, nil
	case g.x0[w].Xor(g.R):
		return true, nil
	}
	return false, fmt.Errorf("gc: active label on wire %d matches neither X0 nor X1", w)
}

// Evaluator runs the evaluator side of the conventional protocol.
type Evaluator struct {
	C *circuit.Circuit
	H *Hash

	x   []Label // active label per wire
	gid uint64

	inits []WireInit
	next  []Label
}

// NewEvaluator creates an evaluator for c.
func NewEvaluator(c *circuit.Circuit) *Evaluator {
	return &Evaluator{
		C:     c,
		H:     NewHash(),
		x:     make([]Label, c.NumWires()),
		inits: EnumerateInits(c),
		next:  make([]Label, len(c.DFFs)),
	}
}

// SetInitLabels installs the garbler-sent active labels (EnumerateInits
// order; Bob entries ignored) and the OT-received labels for Bob's bits.
func (e *Evaluator) SetInitLabels(sent []Label, bobChosen []Label) error {
	if len(sent) != len(e.inits) {
		return fmt.Errorf("gc: got %d init labels, want %d", len(sent), len(e.inits))
	}
	for i, wi := range e.inits {
		if wi.Kind == circuit.InitBob {
			if wi.Idx >= len(bobChosen) {
				return fmt.Errorf("gc: missing OT label for bob bit %d", wi.Idx)
			}
			e.x[wi.Wire] = bobChosen[wi.Idx]
		} else {
			e.x[wi.Wire] = sent[i]
		}
	}
	return nil
}

// EvalCycle evaluates one clock cycle, consuming tables from ts in garbling
// order, and returns the remainder of ts.
func (e *Evaluator) EvalCycle(ts []Table) ([]Table, error) {
	c := e.C
	x := e.x
	for i, gate := range c.Gates {
		out := int(c.GateBase) + i
		switch gate.Op {
		case circuit.XOR, circuit.XNOR:
			x[out] = x[gate.A].Xor(x[gate.B])
		case circuit.NOT, circuit.BUF:
			x[out] = x[gate.A]
		case circuit.MUX:
			if len(ts) == 0 {
				return nil, fmt.Errorf("gc: table stream exhausted at gate %d", i)
			}
			x[out] = EvalMux(e.H, x[gate.S], x[gate.A], x[gate.B], ts[0], e.gid)
			e.gid++
			ts = ts[1:]
		default:
			if len(ts) == 0 {
				return nil, fmt.Errorf("gc: table stream exhausted at gate %d", i)
			}
			x[out] = EvalGate(e.H, gate.Op, x[gate.A], x[gate.B], ts[0], e.gid)
			e.gid++
			ts = ts[1:]
		}
	}
	for i, d := range c.DFFs {
		e.next[i] = x[d.D]
	}
	for i := range c.DFFs {
		x[c.QWire(i)] = e.next[i]
	}
	return ts, nil
}

// Active exposes the current active label of a wire.
func (e *Evaluator) Active(w circuit.Wire) Label { return e.x[w] }

// Decode combines active labels with the garbler's decode bits.
func (e *Evaluator) Decode(ws []circuit.Wire, decode []bool) []bool {
	out := make([]bool, len(ws))
	for i, w := range ws {
		out[i] = e.x[w].Bit() != decode[i]
	}
	return out
}
