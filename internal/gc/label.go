// Package gc implements the Yao garbled-circuit back-end used by both the
// conventional engine and SkipGate: 128-bit wire labels with the free-XOR
// convention [Kolesnikov-Schneider], point-and-permute, fixed-key-AES
// hashing [Bellare et al.], and half-gates AND garbling [Zahur-Rosulek-
// Evans], plus a conventional sequential-circuit garbler/evaluator in the
// TinyGarble style (every gate garbled every cycle) that serves as the
// "w/o SkipGate" baseline.
//
// Everything here is wire-stream-critical: both parties must derive
// byte-identical public circuit state, so code in this package must be
// fully deterministic (no map-order, wall-clock, global-rand, or
// scheduling dependence). The arm2gc-vet determinism analyzer enforces
// this; the next line is its machine-readable annotation.
//
//arm2gc:deterministic
package gc

import (
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"io"
)

// Label is a 128-bit wire label. Under free-XOR, the label for logical 1 on
// a wire is X0 ⊕ R for the garbler's global offset R; the low bit of a
// label is its point-and-permute bit.
type Label struct {
	Lo, Hi uint64
}

// Xor returns l ⊕ m.
func (l Label) Xor(m Label) Label { return Label{l.Lo ^ m.Lo, l.Hi ^ m.Hi} }

// Bit returns the point-and-permute (low) bit.
func (l Label) Bit() bool { return l.Lo&1 != 0 }

// IsZero reports whether the label is all-zero (the engine's "no label"
// sentinel; a random label is zero with probability 2^-128).
func (l Label) IsZero() bool { return l.Lo == 0 && l.Hi == 0 }

// Bytes serializes the label little-endian.
func (l Label) Bytes() [16]byte {
	var b [16]byte
	binary.LittleEndian.PutUint64(b[0:8], l.Lo)
	binary.LittleEndian.PutUint64(b[8:16], l.Hi)
	return b
}

// LabelFromBytes deserializes a little-endian label.
func LabelFromBytes(b []byte) Label {
	return Label{
		Lo: binary.LittleEndian.Uint64(b[0:8]),
		Hi: binary.LittleEndian.Uint64(b[8:16]),
	}
}

func (l Label) String() string { return fmt.Sprintf("%016x%016x", l.Hi, l.Lo) }

// double multiplies the label by x in GF(2^128) (modulus x^128+x^7+x^2+x+1),
// the standard tweakable-hash doubling.
func (l Label) double() Label {
	carry := l.Hi >> 63
	hi := l.Hi<<1 | l.Lo>>63
	lo := l.Lo << 1
	if carry != 0 {
		lo ^= 0x87
	}
	return Label{lo, hi}
}

// RandLabel draws a uniform label from rnd.
func RandLabel(rnd io.Reader) Label {
	var b [16]byte
	if _, err := io.ReadFull(rnd, b[:]); err != nil {
		panic(fmt.Sprintf("gc: label randomness: %v", err))
	}
	return LabelFromBytes(b[:])
}

// RandDelta draws the garbler's global free-XOR offset R; its permute bit
// is forced to 1 so that the two labels of every wire carry opposite
// point-and-permute bits.
func RandDelta(rnd io.Reader) Label {
	r := RandLabel(rnd)
	r.Lo |= 1
	return r
}

// CryptoRand is the process-wide CSPRNG reader.
var CryptoRand io.Reader = rand.Reader
