package gc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"arm2gc/internal/build"
	"arm2gc/internal/circuit"
	"arm2gc/internal/circuit/circtest"
	"arm2gc/internal/sim"
)

func TestLabelAlgebra(t *testing.T) {
	f := func(a, b, c Label) bool {
		if a.Xor(b) != b.Xor(a) {
			return false
		}
		if a.Xor(a) != (Label{}) {
			return false
		}
		if a.Xor(b).Xor(b) != a {
			return false
		}
		return a.Xor(b).Xor(c) == a.Xor(b.Xor(c))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLabelBytesRoundTrip(t *testing.T) {
	f := func(l Label) bool {
		b := l.Bytes()
		return LabelFromBytes(b[:]) == l
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDeltaPermuteBit(t *testing.T) {
	for i := 0; i < 64; i++ {
		if !RandDelta(CryptoRand).Bit() {
			t.Fatal("RandDelta produced delta with permute bit 0")
		}
	}
}

func TestDoubleLinear(t *testing.T) {
	// Doubling is linear over GF(2): (a ⊕ b)·x = a·x ⊕ b·x.
	f := func(a, b Label) bool {
		return a.Xor(b).double() == a.double().Xor(b.double())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHashTweakSeparation(t *testing.T) {
	h := NewHash()
	l := RandLabel(CryptoRand)
	if h.H(l, 1) == h.H(l, 2) {
		t.Error("same hash for different tweaks")
	}
	if h.H(l, 1) != h.H(l, 1) {
		t.Error("hash not deterministic")
	}
}

// TestHalfGatesTruthTables garbles each AND-class op and checks all four
// input combinations decode to the op's truth table.
func TestHalfGatesTruthTables(t *testing.T) {
	h := NewHash()
	ops := []circuit.Op{circuit.AND, circuit.OR, circuit.NAND, circuit.NOR}
	for trial := 0; trial < 50; trial++ {
		r := RandDelta(CryptoRand)
		a0 := RandLabel(CryptoRand)
		b0 := RandLabel(CryptoRand)
		for _, op := range ops {
			gid := uint64(trial*4) + uint64(op)
			c0, tab := GarbleGate(h, r, op, a0, b0, gid)
			for _, va := range []bool{false, true} {
				for _, vb := range []bool{false, true} {
					a := a0
					if va {
						a = a.Xor(r)
					}
					b := b0
					if vb {
						b = b.Xor(r)
					}
					got := EvalGate(h, op, a, b, tab, gid)
					want := c0
					if op.Eval(va, vb) {
						want = want.Xor(r)
					}
					if got != want {
						t.Fatalf("%v(%v,%v): eval label mismatch", op, va, vb)
					}
				}
			}
		}
	}
}

// runConventional executes the full conventional protocol in process and
// returns decoded outputs after the given number of cycles.
func runConventional(t *testing.T, c *circuit.Circuit, in sim.Inputs, cycles int) []bool {
	t.Helper()
	g := NewGarbler(c, CryptoRand)
	e := NewEvaluator(c)

	// OT is simulated: hand Bob his chosen labels directly.
	pairs := g.BobPairs()
	chosen := make([]Label, len(pairs))
	for i := range pairs {
		if in.Bit(circuit.Bob, i) {
			chosen[i] = pairs[i][1]
		} else {
			chosen[i] = pairs[i][0]
		}
	}
	if err := e.SetInitLabels(g.ActiveInitLabels(in.Public, in.Alice), chosen); err != nil {
		t.Fatal(err)
	}
	for cyc := 0; cyc < cycles; cyc++ {
		ts := g.GarbleCycle(nil)
		rest, err := e.EvalCycle(ts)
		if err != nil {
			t.Fatal(err)
		}
		if len(rest) != 0 {
			t.Fatalf("cycle %d: %d tables left over", cyc, len(rest))
		}
	}
	ws := c.OutputWires()
	return e.Decode(ws, g.DecodeBits(ws))
}

func TestConventionalAdder(t *testing.T) {
	b := build.New("adder")
	a := b.Input(circuit.Alice, "a", 16)
	x := b.Input(circuit.Bob, "x", 16)
	sum, cout := b.AddCarry(a, x, build.F)
	b.Output("sum", append(sum, cout))
	c := b.MustCompile()

	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 20; i++ {
		av := uint64(rng.Uint32() & 0xffff)
		xv := uint64(rng.Uint32() & 0xffff)
		in := sim.Inputs{Alice: sim.UnpackUint(av, 16), Bob: sim.UnpackUint(xv, 16)}
		got := sim.PackUint(runConventional(t, c, in, 1))
		if got != av+xv {
			t.Fatalf("garbled add(%d,%d) = %d, want %d", av, xv, got, av+xv)
		}
	}
}

func TestConventionalSequential(t *testing.T) {
	// Accumulator: acc += alice_in XOR bob_in each cycle via DFF feedback,
	// initialized from Alice and Bob memory bits.
	b := build.New("accum")
	aOff := b.AllocInputBits(circuit.Alice, 8)
	bOff := b.AllocInputBits(circuit.Bob, 8)
	inits := make([]circuit.Init, 8)
	for i := range inits {
		inits[i] = circuit.Init{Kind: circuit.InitAlice, Idx: aOff + i}
	}
	ra := b.RegInit("ra", inits)
	for i := range inits {
		inits[i] = circuit.Init{Kind: circuit.InitBob, Idx: bOff + i}
	}
	rb := b.RegInit("rb", inits)
	acc := b.Reg("acc", 8)
	acc.SetNext(b.Add(acc.Q(), b.XorBus(ra.Q(), rb.Q())))
	ra.SetNext(ra.Q())
	rb.SetNext(rb.Q())
	b.Output("acc", acc.Q())
	c := b.MustCompile()

	const cycles = 5
	av, bv := uint64(0x5a), uint64(0x33)
	in := sim.Inputs{Alice: sim.UnpackUint(av, 8), Bob: sim.UnpackUint(bv, 8)}
	want := sim.PackUint(sim.Run(c, in, cycles))
	got := sim.PackUint(runConventional(t, c, in, cycles))
	if got != want {
		t.Fatalf("sequential garbled = %d, want %d (plaintext %d)", got, want, ((av^bv)*(cycles-1))&0xff)
	}
}

// TestConventionalRandomCircuits cross-checks garbled evaluation against
// the plaintext simulator on randomly generated sequential circuits.
func TestConventionalRandomCircuits(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		c, nAlice, nBob := circtest.Random(rng, 60, 8)
		in := sim.Inputs{
			Alice:  randBits(rng, nAlice),
			Bob:    randBits(rng, nBob),
			Public: randBits(rng, c.PublicBits),
		}
		cycles := 1 + rng.Intn(4)
		want := sim.Run(c, in, cycles)
		got := runConventional(t, c, in, cycles)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: output bit %d = %v, want %v", trial, i, got[i], want[i])
			}
		}
	}
}

func randBits(rng *rand.Rand, n int) []bool {
	b := make([]bool, n)
	for i := range b {
		b[i] = rng.Intn(2) == 1
	}
	return b
}
