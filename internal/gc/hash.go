package gc

import (
	"crypto/aes"
	"crypto/cipher"
	"encoding/binary"
)

// Hash is the fixed-key-AES correlation-robust hash
// H(X, t) = π(2X ⊕ t) ⊕ (2X ⊕ t), with π a fixed AES-128 permutation
// [Bellare-Hoang-Keelveedhi-Rogaway]. One Hash instance is shared by a
// whole session; it is stateless and safe for concurrent use.
type Hash struct {
	block cipher.Block
}

// fixedKey is an arbitrary public constant; the security of the scheme
// rests on π being a random permutation, not on key secrecy.
var fixedKey = []byte("arm2gc-fixed-key")

// NewHash builds the fixed-key hash.
func NewHash() *Hash {
	b, err := aes.NewCipher(fixedKey)
	if err != nil {
		panic("gc: aes: " + err.Error())
	}
	return &Hash{block: b}
}

// H computes H(x, tweak).
func (h *Hash) H(x Label, tweak uint64) Label {
	k := x.double()
	k.Lo ^= tweak
	var in, out [16]byte
	binary.LittleEndian.PutUint64(in[0:8], k.Lo)
	binary.LittleEndian.PutUint64(in[8:16], k.Hi)
	h.block.Encrypt(out[:], in[:])
	return LabelFromBytes(out[:]).Xor(k)
}
