package arm2gc

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"arm2gc/internal/proto"
)

// shortErrConn returns bytes alongside an error — the partial-transfer
// shape net.Conn permits and TCP produces when a peer dies mid-read.
type shortErrConn struct{ net.Conn }

func (shortErrConn) Read(p []byte) (int, error)  { return 3, io.ErrUnexpectedEOF }
func (shortErrConn) Write(p []byte) (int, error) { return 5, io.ErrClosedPipe }

// TestCountedConnCountsBytesWithError pins partial-transfer accounting:
// a Read or Write that moves n > 0 bytes and then fails must still count
// those n bytes — they crossed the wire.
func TestCountedConnCountsBytesWithError(t *testing.T) {
	m := &serverMetrics{programs: make(map[string]*programCounters)}
	c := &countedConn{Conn: shortErrConn{}, m: m}

	n, err := c.Read(make([]byte, 8))
	if n != 3 || !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("Read = (%d, %v), want (3, unexpected EOF)", n, err)
	}
	n, err = c.Write(make([]byte, 8))
	if n != 5 || !errors.Is(err, io.ErrClosedPipe) {
		t.Fatalf("Write = (%d, %v), want (5, closed pipe)", n, err)
	}
	if got := m.bytesRead.Load(); got != 3 {
		t.Errorf("bytesRead = %d, want 3: bytes delivered before the error were dropped", got)
	}
	if got := m.bytesWritten.Load(); got != 5 {
		t.Errorf("bytesWritten = %d, want 5: bytes sent before the error were dropped", got)
	}
}

// waitActiveZero polls until the active-session gauge settles at zero;
// serveOne decrements it on its way out, which can race the client
// observing its own end of the session.
func waitActiveZero(t *testing.T, srv *Server) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if srv.Metrics().SessionsActive == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("SessionsActive stuck at %d", srv.Metrics().SessionsActive)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestServerActiveGaugeStageFailures fails sessions at every stage of
// serveOne — admission, negotiation, mid-protocol — and checks the
// active-session gauge returns to zero each time, counts exactly the
// garbling window on success, and the failure lands in the right
// counter.
func TestServerActiveGaugeStageFailures(t *testing.T) {
	prog := compileAdd(t)
	eng := NewEngine()
	srv := NewServer(eng)
	var activeDuring atomic.Int64
	if err := srv.Register("add", prog,
		WithMaxCycles(10_000),
		WithGarblerInput([]uint32{1}),
		WithStatsSink(func(CycleUpdate) {
			// Runs inside the server's garbling loop: the gauge must
			// show this session.
			if a := srv.Metrics().SessionsActive; a > activeDuring.Load() {
				activeDuring.Store(a)
			}
		})); err != nil {
		t.Fatal(err)
	}
	if err := srv.Register("locked", prog,
		WithMaxCycles(10_000), WithAuthToken("secret"), WithGarblerInput([]uint32{1})); err != nil {
		t.Fatal(err)
	}
	addr, shutdown := startServer(t, srv)
	defer shutdown()

	cl, err := Dial(context.Background(), addr, WithClientEngine(eng))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for _, name := range []string{"add", "locked", "ghost"} {
		if err := cl.Register(name, prog); err != nil {
			t.Fatal(err)
		}
	}

	// Stage 1: admission failures — unknown program, then a bad bearer
	// token. Both are rejections; the gauge never rises.
	var rej *RejectedError
	if _, err := cl.Evaluate(context.Background(), "ghost", []uint32{2}); !errors.As(err, &rej) {
		t.Fatalf("unknown program: got %v, want *RejectedError", err)
	}
	if _, err := cl.Evaluate(context.Background(), "locked", []uint32{2},
		WithAuthToken("wrong")); !errors.As(err, &rej) {
		t.Fatalf("bad token: got %v, want *RejectedError", err)
	}
	m := srv.Metrics()
	if m.SessionsRejected != 2 || m.SessionsActive != 0 || m.SessionsFailed != 0 {
		t.Fatalf("after admission failures: %+v", m)
	}

	// Stage 2: negotiation failure — an over-budget proposal.
	if _, err := cl.Evaluate(context.Background(), "add", []uint32{2},
		WithMaxCycles(100_000)); !errors.As(err, &rej) {
		t.Fatalf("over budget: got %v, want *RejectedError", err)
	}
	if m = srv.Metrics(); m.SessionsRejected != 3 || m.SessionsActive != 0 {
		t.Fatalf("after negotiation failure: %+v", m)
	}

	// Stage 3: mid-protocol death — win the grant, then hang up while
	// the server is garbling. The gauge must come back down and the
	// failure must land in SessionsFailed, not SessionsRejected.
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := proto.Negotiate(context.Background(), raw, proto.Proposal{Program: "add"}); err != nil {
		t.Fatal(err)
	}
	raw.Close()
	deadline := time.Now().Add(5 * time.Second)
	for srv.Metrics().SessionsFailed == 0 {
		if time.Now().After(deadline) {
			t.Fatal("mid-protocol disconnect never counted as a failed session")
		}
		time.Sleep(time.Millisecond)
	}
	waitActiveZero(t, srv)

	// Stage 4: success — the gauge shows the session while it garbles
	// and is back to zero after.
	info, err := cl.Evaluate(context.Background(), "add", []uint32{2})
	if err != nil {
		t.Fatal(err)
	}
	if info.Outputs[0] != 3 {
		t.Fatalf("sum = %d, want 3", info.Outputs[0])
	}
	waitActiveZero(t, srv)
	if got := activeDuring.Load(); got != 1 {
		t.Fatalf("gauge read %d during garbling, want 1", got)
	}
	if m = srv.Metrics(); m.SessionsServed != 1 || m.SessionsFailed != 1 || m.SessionsRejected != 3 {
		t.Fatalf("final counters: %+v", m)
	}
}

// TestServerMetricsHandlerNegotiatesFormat pins the scrape endpoint's
// content negotiation: one snapshot renders as Prometheus text by
// default and as JSON with ?format=json, and the two views report the
// same numbers.
func TestServerMetricsHandlerNegotiatesFormat(t *testing.T) {
	prog := compileAdd(t)
	eng := NewEngine()
	srv := NewServer(eng)
	if err := srv.Register("add", prog,
		WithMaxCycles(10_000),
		WithGarblerInput([]uint32{100}),
		WithAuthToken("secret")); err != nil {
		t.Fatal(err)
	}
	addr, shutdown := startServer(t, srv)
	defer shutdown()
	cl, err := Dial(context.Background(), addr, WithClientEngine(eng))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Register("add", prog); err != nil {
		t.Fatal(err)
	}
	// One rejected session (wrong token) and one served, so both
	// per-program counters are non-zero in the scrape.
	var rej *RejectedError
	if _, err := cl.Evaluate(context.Background(), "add", []uint32{1},
		WithAuthToken("wrong")); !errors.As(err, &rej) {
		t.Fatalf("got %v, want a rejection", err)
	}
	if _, err := cl.Evaluate(context.Background(), "add", []uint32{1},
		WithAuthToken("secret")); err != nil {
		t.Fatal(err)
	}
	// The session's tail (the outputs frame) is still in flight when
	// Evaluate returns; wait for the server to account it.
	for deadline := time.Now().Add(10 * time.Second); srv.Metrics().SessionsServed < 1; {
		if time.Now().After(deadline) {
			t.Fatal("session never accounted")
		}
		time.Sleep(time.Millisecond)
	}

	h := srv.MetricsHandler()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("default Content-Type = %q, want the Prometheus text format", ct)
	}
	text := rec.Body.String()
	for _, want := range []string{
		"arm2gc_sessions_served_total 1",
		"arm2gc_sessions_rejected_total 1",
		`arm2gc_program_sessions_served_total{program="add"} 1`,
		`arm2gc_program_sessions_rejected_total{program="add"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("text scrape missing %q:\n%s", want, text)
		}
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics?format=json", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("?format=json Content-Type = %q", ct)
	}
	var m ServerMetrics
	if err := json.Unmarshal(rec.Body.Bytes(), &m); err != nil {
		t.Fatalf("JSON scrape does not parse: %v", err)
	}
	if m.SessionsServed != 1 || m.SessionsRejected != 1 {
		t.Fatalf("JSON view served=%d rejected=%d, want 1/1", m.SessionsServed, m.SessionsRejected)
	}
	if p := m.Programs["add"]; p.Served != 1 || p.Rejected != 1 {
		t.Fatalf("JSON per-program view %+v, want served 1 rejected 1", p)
	}
}

// TestServerMetricsSurviveFailedNegotiation: a frame-layer negotiation
// failure (unassigned feature flag) is counted without disturbing the
// per-program counters, and both scrape formats keep rendering.
func TestServerMetricsSurviveFailedNegotiation(t *testing.T) {
	prog := compileAdd(t)
	eng := NewEngine()
	srv := NewServer(eng)
	if err := srv.Register("add", prog,
		WithMaxCycles(10_000),
		WithGarblerInput([]uint32{100})); err != nil {
		t.Fatal(err)
	}
	addr, shutdown := startServer(t, srv)
	defer shutdown()
	cl, err := Dial(context.Background(), addr, WithClientEngine(eng))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Register("add", prog); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Evaluate(context.Background(), "add", []uint32{1}); err != nil {
		t.Fatal(err)
	}
	for deadline := time.Now().Add(10 * time.Second); srv.Metrics().SessionsServed < 1; {
		if time.Now().After(deadline) {
			t.Fatal("session never accounted")
		}
		time.Sleep(time.Millisecond)
	}

	// A hand-crafted proposal announcing flag 0x80, which no build
	// implements — the same shape as the version-mismatch serving test.
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	frame := []byte{
		0x10, 21, 0, 0, 0,
		1, 0, 'p',
		0x80, 0,
		0, 0, 0, 0,
		0, 0, 0, 0, 0, 0, 0, 0,
		0, 0, 0, 0,
	}
	if _, err := raw.Write(frame); err != nil {
		t.Fatal(err)
	}
	var protoRej *proto.Rejected
	if _, err := proto.Negotiate(context.Background(), raw, proto.Proposal{Program: "add"}); !errors.As(err, &protoRej) {
		t.Fatalf("got %v, want the version rejection", err)
	}

	m := srv.Metrics()
	if m.NegotiationFailures != 1 {
		t.Fatalf("negotiation failures = %d, want 1", m.NegotiationFailures)
	}
	if p := m.Programs["add"]; p.Served != 1 || p.Rejected != 0 {
		t.Fatalf("per-program counters disturbed by a failed negotiation: %+v", p)
	}
	rec := httptest.NewRecorder()
	srv.MetricsHandler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if want := "arm2gc_negotiation_failures_total 1"; !strings.Contains(rec.Body.String(), want) {
		t.Fatalf("text scrape missing %q after a failed negotiation", want)
	}
	rec = httptest.NewRecorder()
	srv.MetricsHandler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics?format=json", nil))
	var js ServerMetrics
	if err := json.Unmarshal(rec.Body.Bytes(), &js); err != nil {
		t.Fatalf("JSON scrape after a failed negotiation: %v", err)
	}
	if js.Programs["add"].Served != 1 {
		t.Fatalf("JSON per-program view lost the served count: %+v", js.Programs)
	}
}
