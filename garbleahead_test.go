package arm2gc

import (
	"context"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// waitMetric polls the server's metrics until check passes or the
// deadline fails the test — for counters the pool's background refill
// workers move.
func waitMetric(t *testing.T, srv *Server, what string, check func(*GarbleAheadMetrics) bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if m := srv.Metrics().GarbleAhead; m != nil && check(m) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("garble-ahead metrics never reached: %s (%+v)", what, srv.Metrics().GarbleAhead)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestServerGarbleAheadHit is the subsystem's acceptance anchor: a warmed
// pool serves client sessions from pre-garbled streams — correct outputs,
// every session a pool hit, and the background workers restore the depth
// afterwards.
func TestServerGarbleAheadHit(t *testing.T) {
	prog := compileAdd(t)
	eng := NewEngine()
	srv := NewServer(eng, WithGarbleAhead(PoolConfig{Depth: 2}))
	if err := srv.Register("add", prog,
		WithMaxCycles(10_000), WithGarblerInput([]uint32{100})); err != nil {
		t.Fatal(err)
	}
	if err := srv.WarmGarbleAhead(context.Background()); err != nil {
		t.Fatal(err)
	}
	if m := srv.Metrics().GarbleAhead; m == nil || m.Ready != 2 || m.Refills != 2 {
		t.Fatalf("after warming: %+v, want 2 ready / 2 refills", m)
	}
	addr, shutdown := startServer(t, srv)

	cl, err := Dial(context.Background(), addr, WithClientEngine(eng))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Register("add", prog); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		info, err := cl.Evaluate(context.Background(), "add", []uint32{uint32(7 + i)})
		if err != nil {
			t.Fatal(err)
		}
		if info.Outputs[0] != uint32(107+i) {
			t.Fatalf("session %d: sum = %d, want %d", i, info.Outputs[0], 107+i)
		}
	}
	m := srv.Metrics().GarbleAhead
	if m.Hits != 2 || m.Misses != 0 {
		t.Fatalf("hits %d misses %d, want 2/0", m.Hits, m.Misses)
	}
	if p := m.Programs["add"]; p.Depth != 2 {
		t.Fatalf("program depth %d, want 2", p.Depth)
	}
	// Demand-driven refill: the hits woke the workers Serve started.
	waitMetric(t, srv, "refill to depth after hits", func(m *GarbleAheadMetrics) bool {
		return m.Ready == 2 && m.Refills >= 4
	})

	// The same numbers must be scrapable from the Prometheus endpoint.
	rec := httptest.NewRecorder()
	srv.MetricsHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	for _, want := range []string{
		"arm2gc_pool_hits_total 2",
		"arm2gc_pool_misses_total 0",
		"arm2gc_pool_ready 2",
		`arm2gc_pool_program_ready{program="add"} 2`,
		`arm2gc_pool_program_depth{program="add"} 2`,
	} {
		if !strings.Contains(body, want+"\n") {
			t.Fatalf("scrape missing %q:\n%s", want, body)
		}
	}
	shutdown()
}

// TestServerGarbleAheadMissFallsBack: a client proposing a non-default
// option negotiates a different session id, misses the pool, and must be
// garbled live — correct outputs, counted as a miss.
func TestServerGarbleAheadMissFallsBack(t *testing.T) {
	prog := compileAdd(t)
	eng := NewEngine()
	srv := NewServer(eng, WithGarbleAhead(PoolConfig{Depth: 1}))
	if err := srv.Register("add", prog,
		WithMaxCycles(10_000), WithGarblerInput([]uint32{50})); err != nil {
		t.Fatal(err)
	}
	if err := srv.WarmGarbleAhead(context.Background()); err != nil {
		t.Fatal(err)
	}
	addr, shutdown := startServer(t, srv)
	defer shutdown()

	cl, err := Dial(context.Background(), addr, WithClientEngine(eng))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Register("add", prog); err != nil {
		t.Fatal(err)
	}
	info, err := cl.Evaluate(context.Background(), "add", []uint32{3}, WithCycleBatch(4))
	if err != nil {
		t.Fatal(err)
	}
	if info.Outputs[0] != 53 {
		t.Fatalf("sum = %d, want 53", info.Outputs[0])
	}
	m := srv.Metrics().GarbleAhead
	if m.Hits != 0 || m.Misses != 1 {
		t.Fatalf("hits %d misses %d, want 0/1 for a non-default proposal", m.Hits, m.Misses)
	}
	if m.Ready == 0 {
		t.Fatal("the miss consumed a pooled entry")
	}

	// A default-option session right after still hits the warm entry.
	info, err = cl.Evaluate(context.Background(), "add", []uint32{4})
	if err != nil {
		t.Fatal(err)
	}
	if info.Outputs[0] != 54 {
		t.Fatalf("sum = %d, want 54", info.Outputs[0])
	}
	if m = srv.Metrics().GarbleAhead; m.Hits != 1 {
		t.Fatalf("hits %d after a default-option session, want 1", m.Hits)
	}
}

// TestServerGarbleAheadOptOut: WithGarbleAheadOff keeps a program out of
// the pool entirely — served live, counted neither hit nor miss — while a
// WithGarbleAheadDepth sibling pools at its own depth.
func TestServerGarbleAheadOptOut(t *testing.T) {
	prog := compileAdd(t)
	eng := NewEngine()
	srv := NewServer(eng, WithGarbleAhead(PoolConfig{Depth: 1}))
	if err := srv.Register("off", prog,
		WithMaxCycles(10_000), WithGarblerInput([]uint32{10}), WithGarbleAheadOff()); err != nil {
		t.Fatal(err)
	}
	if err := srv.Register("deep", prog,
		WithMaxCycles(10_000), WithGarblerInput([]uint32{20}), WithGarbleAheadDepth(3)); err != nil {
		t.Fatal(err)
	}
	if err := srv.WarmGarbleAhead(context.Background()); err != nil {
		t.Fatal(err)
	}
	m := srv.Metrics().GarbleAhead
	if m.Ready != 3 {
		t.Fatalf("ready %d, want 3 (only the deep program pools)", m.Ready)
	}
	if _, pooled := m.Programs["off"]; pooled {
		t.Fatal("opted-out program appears in the pool")
	}
	if p := m.Programs["deep"]; p.Depth != 3 || p.Ready != 3 {
		t.Fatalf("deep program %+v, want depth 3 ready 3", p)
	}
	addr, shutdown := startServer(t, srv)
	defer shutdown()

	cl, err := Dial(context.Background(), addr, WithClientEngine(eng))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Register("off", prog); err != nil {
		t.Fatal(err)
	}
	info, err := cl.Evaluate(context.Background(), "off", []uint32{5})
	if err != nil {
		t.Fatal(err)
	}
	if info.Outputs[0] != 15 {
		t.Fatalf("sum = %d, want 15", info.Outputs[0])
	}
	if m = srv.Metrics().GarbleAhead; m.Hits != 0 || m.Misses != 0 {
		t.Fatalf("opted-out session counted against the pool: hits %d misses %d", m.Hits, m.Misses)
	}
}

// TestServerGarbleAheadSpillCleanup: a pool under a tiny resident budget
// spills its warmed entries to disk, serves them back (the session is
// still correct), and Serve's shutdown deletes every remaining file.
func TestServerGarbleAheadSpillCleanup(t *testing.T) {
	prog := compileAdd(t)
	eng := NewEngine()
	dir := t.TempDir()
	srv := NewServer(eng, WithGarbleAhead(PoolConfig{
		Depth: 2, MemBytes: 1, MaxBytes: 64 << 20, SpillDir: dir,
	}))
	if err := srv.Register("add", prog,
		WithMaxCycles(10_000), WithGarblerInput([]uint32{30})); err != nil {
		t.Fatal(err)
	}
	if err := srv.WarmGarbleAhead(context.Background()); err != nil {
		t.Fatal(err)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "*.gcpool"))
	if len(files) != 2 {
		t.Fatalf("%d spill files after warming, want 2 (MemBytes holds nothing)", len(files))
	}
	m := srv.Metrics().GarbleAhead
	if m.SpillBytes == 0 || m.Ready != 2 {
		t.Fatalf("spillBytes %d ready %d after warming", m.SpillBytes, m.Ready)
	}
	addr, shutdown := startServer(t, srv)

	cl, err := Dial(context.Background(), addr, WithClientEngine(eng))
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Register("add", prog); err != nil {
		t.Fatal(err)
	}
	info, err := cl.Evaluate(context.Background(), "add", []uint32{9})
	if err != nil {
		t.Fatal(err)
	}
	if info.Outputs[0] != 39 {
		t.Fatalf("sum = %d, want 39 (served from a spilled stream)", info.Outputs[0])
	}
	if m = srv.Metrics().GarbleAhead; m.Hits != 1 {
		t.Fatalf("hits %d, want 1", m.Hits)
	}
	cl.Close()
	shutdown() // Serve's deferred pool.Close must delete the files
	if files, _ = filepath.Glob(filepath.Join(dir, "*.gcpool")); len(files) != 0 {
		t.Fatalf("%d spill files survive server shutdown", len(files))
	}
}
