package arm2gc

import (
	"context"
	"fmt"
	"io"

	"arm2gc/internal/circuit"
	"arm2gc/internal/core"
	"arm2gc/internal/cpu"
	"arm2gc/internal/obliv"
	"arm2gc/internal/proto"
	"arm2gc/internal/sim"
)

// OutputMode selects who learns a two-party execution's outputs (the
// paper's "one or both of them learn the output c"). The default is
// OutputBoth; use WithOutputMode to restrict decoding to one side.
type OutputMode = proto.OutputMode

// Output modes, re-exported at the root so callers never import internal
// packages.
const (
	OutputBoth          = proto.OutputBoth
	OutputGarblerOnly   = proto.OutputGarblerOnly
	OutputEvaluatorOnly = proto.OutputEvaluatorOnly
)

// DefaultMaxCycles is the cycle budget a Session runs with unless
// WithMaxCycles overrides it.
const DefaultMaxCycles = 1_000_000

// DefaultTraceCacheBytes bounds an Engine's classification-trace cache
// (see WithTraceReuse). A compiled trace costs roughly 20 bytes per live
// gate-cycle — a 500-cycle program on the 256-word layout compiles to a
// few MB — so the default comfortably holds dozens of programs; least
// recently replayed traces are evicted beyond the budget.
const DefaultTraceCacheBytes = 256 << 20

// Engine is the process-wide entry point of the API: a concurrency-safe
// factory of garbled-processor sessions with a layout-keyed machine
// cache. Synthesizing the processor netlist costs ~10ms for the 256-word
// layouts (~29k wires), so the Engine builds each Layout exactly once —
// concurrent requests for the same Layout share one in-flight build — and
// every Session over that geometry reuses the immutable netlist.
//
// An Engine is safe for concurrent use; a server typically holds one for
// its lifetime. The cache never evicts (entries are a few MB and layouts
// are few); create a throwaway Engine for one-off geometries if that ever
// matters.
type Engine struct {
	cache  *cpu.Cache
	traces *cpu.TraceCache
}

// NewEngine creates an Engine with its own empty cache. DefaultEngine
// serves callers that do not need cache isolation.
func NewEngine() *Engine {
	return &Engine{cache: new(cpu.Cache), traces: cpu.NewTraceCache(DefaultTraceCacheBytes)}
}

// DefaultEngine backs the package-level compatibility shims (NewMachine,
// Verify) and is free for direct use. It shares the process-wide machine
// cache with the internal tooling, so a binary mixing both (the bencher)
// never synthesizes a layout twice.
var DefaultEngine = &Engine{cache: cpu.SharedCache(), traces: cpu.NewTraceCache(DefaultTraceCacheBytes)}

// Machine returns the cached processor for a layout, synthesizing it on
// first use. The returned Machine shares the Engine's immutable netlist
// and is safe for concurrent use.
func (e *Engine) Machine(l Layout) (*Machine, error) {
	c, err := e.cache.Get(l)
	if err != nil {
		return nil, err
	}
	return &Machine{cpu: c}, nil
}

// Builds reports how many netlist syntheses this Engine has performed —
// an observable for cache-effectiveness tests and monitoring.
func (e *Engine) Builds() int64 { return e.cache.Builds() }

// TraceRecordings reports how many classification traces this Engine has
// recorded and committed to its trace cache — the SkipGate passes that
// WithTraceReuse sessions have paid. Like Builds, an observable for
// cache-effectiveness tests and monitoring.
func (e *Engine) TraceRecordings() int64 { return e.traces.Recordings() }

// TraceReplays reports how many session runs were served from a cached
// classification trace, skipping the SkipGate pass entirely.
func (e *Engine) TraceReplays() int64 { return e.traces.Replays() }

// StatsSink receives per-cycle scheduling statistics as a run progresses
// (see WithStatsSink). It is called synchronously from the cycle loop, so
// it must be fast; hand off to a channel for slow consumers.
type StatsSink func(CycleUpdate)

// CycleUpdate is one cycle's scheduling outcome, streamed to a StatsSink.
type CycleUpdate struct {
	Cycle int // 1-based clock cycle
	Stats core.CycleStats
}

// sessionConfig collects the option-settable knobs of a Session. The
// *Set flags record which negotiable knobs were set explicitly: a Client
// proposes only those to a Server and takes the registered defaults for
// the rest.
type sessionConfig struct {
	maxCycles     int
	maxCyclesSet  bool
	outputs       OutputMode
	outputsSet    bool
	cycleBatch    int
	cycleBatchSet bool
	pipeline      int
	workers       int
	workersSet    bool
	traceReuse    bool
	memory        MemoryConfig
	memorySet     bool
	readAhead     int
	garbleAhead   int // 0: server default; -1: off; >0: explicit depth
	garblerInput  []uint32
	rand          io.Reader
	sink          StatsSink
	authToken     string
	authorize     func(Peer, string) error
	retries       int
}

// Option configures a Session (functional options).
type Option func(*sessionConfig)

// WithMaxCycles sets the cycle budget (default DefaultMaxCycles). Runs
// stop earlier at the program's halt flag; the budget bounds runaway
// programs. A Client proposing a budget must stay within the Server
// registration's budget, or the session is rejected.
func WithMaxCycles(n int) Option {
	return func(c *sessionConfig) { c.maxCycles = n; c.maxCyclesSet = true }
}

// WithOutputMode restricts which party's networked run decodes the
// outputs (default OutputBoth). Both parties must configure the same
// mode; it is part of the protocol's session id, so a mismatch aborts the
// handshake — and a Server rejects a Client proposing a mode other than
// the registered one (who learns the result is server policy).
// In-process Run ignores the mode (it plays both parties).
func WithOutputMode(m OutputMode) Option {
	return func(c *sessionConfig) { c.outputs = m; c.outputsSet = true }
}

// WithCycleBatch makes the networked protocol pack n cycles of garbled
// tables into each table frame (default 1), cutting the frame count — and
// the per-frame syscall and round-trip overhead — by ~n× without changing
// any table byte. Both parties must agree on n (it is part of the session
// id). Larger batches trade streaming latency for throughput.
func WithCycleBatch(n int) Option {
	return func(c *sessionConfig) { c.cycleBatch = n; c.cycleBatchSet = true }
}

// WithPipeline makes the garbling side run its compute loop in a producer
// goroutine that garbles up to depth frames ahead of the network writer,
// overlapping table generation with frame I/O (default 0: serial). The
// wire stream is byte-identical to the serial path; the knob is local to
// the garbler — it is not part of the session id and need not match the
// peer's. The evaluating side ignores it.
func WithPipeline(depth int) Option { return func(c *sessionConfig) { c.pipeline = depth } }

// WithWorkers spreads each cycle's SkipGate classification and label work
// across n goroutines (default 1: serial). The schedule, the statistics
// and every byte of the garbled stream are identical for any worker
// count — parallelism only changes who computes each gate — so the knob
// need not match the peer's and is not part of the session id. It
// composes with WithPipeline: workers parallelize the compute inside a
// cycle, the pipeline overlaps whole frames with network I/O. A Client
// proposing a worker count is capped by the Server registration's own
// count (server compute is operator policy); n is clamped to the
// protocol's MaxWorkers bound.
func WithWorkers(n int) Option {
	return func(c *sessionConfig) { c.workers = n; c.workersSet = true }
}

// WithTraceReuse makes the session draw on the Engine's classification-
// trace cache: the first run of a program records the per-cycle SkipGate
// schedule as a compiled trace, and every later run of the same program
// (same circuit, public inputs, cycle budget and stop flag) replays it,
// garbling straight from precompiled gate lists with no classification
// pass at all. The replayed wire stream is byte-identical to the
// classified one — the schedule is a pure function of public data — so
// the knob is local, like WithWorkers and WithPipeline: it is not part
// of the session id and need not match the peer's. Concurrent first runs
// singleflight the recording (one records, the rest classify without
// recording); the cache holds up to DefaultTraceCacheBytes of traces per
// Engine, evicting the least recently replayed. Observe effectiveness
// via Engine.TraceRecordings and Engine.TraceReplays.
func WithTraceReuse() Option { return func(c *sessionConfig) { c.traceReuse = true } }

// WithMemoryBackend selects the oblivious data-memory backend the
// session's processor is synthesized with: MemoryAuto (the default; scan
// below the 2KB break-even, square-root ORAM at or above it), MemoryScan
// (the mux-tree linear scan), or MemorySqrtORAM. The backend changes the
// processor netlist and therefore the garbled stream, so both parties
// must agree: it is part of the session id, a Client proposing a backend
// sends it by name during negotiation, and a Server rejects a proposal
// whose backend differs from the registration's resolved one — cleanly,
// before any cryptography, keeping the connection alive. Sessions over
// one Engine cache one machine per (layout, backend) pair. The deprecated
// NewMachine/Engine.Machine path stays layout-only and always scans.
func WithMemoryBackend(name string) Option {
	return func(c *sessionConfig) { c.memory.Backend = name; c.memorySet = true }
}

// WithMemoryConfig sets the full oblivious-memory configuration —
// backend plus tuning knobs (auto-selection threshold, ORAM stash
// window). Most callers want WithMemoryBackend; this is the escape hatch
// for non-default thresholds and windows. Like the backend name, the
// whole configuration shapes the netlist and is part of the session id.
func WithMemoryConfig(mc MemoryConfig) Option {
	return func(c *sessionConfig) { c.memory = mc; c.memorySet = true }
}

// WithReadAhead makes an evaluating session pull up to depth frames off
// the connection in a reader goroutine ahead of its cycle loop (default
// 0: synchronous reads). The reader peeks at frame types, buffering
// table frames and parking the stream's trailing frame for the post-halt
// decode read, so a garbler that streams faster than labels evaluate —
// a pool-fed garbler always does — never blocks on a full socket. Like
// WithPipeline on the garbling side, the knob is local: it changes no
// wire byte and is not part of the session id. The garbling side and the
// in-process Run ignore it.
func WithReadAhead(depth int) Option { return func(c *sessionConfig) { c.readAhead = depth } }

// WithGarbleAheadDepth sets, on a Server registration, how many
// pre-garbled streams the garble-ahead pool keeps ready for this program
// (overriding the pool's default depth). It has no effect unless the
// Server was built WithGarbleAhead; sessions outside a Server ignore it.
func WithGarbleAheadDepth(n int) Option {
	return func(c *sessionConfig) { c.garbleAhead = n }
}

// WithGarbleAheadOff opts a Server registration out of the garble-ahead
// pool: every session for the program garbles live, even on a Server
// built WithGarbleAhead.
func WithGarbleAheadOff() Option { return func(c *sessionConfig) { c.garbleAhead = -1 } }

// WithGarblerInput fixes Alice's input words on a session's garbling
// side. Server registrations use it to bind the server's private input to
// a program: Server sessions garble with these words (nil means an
// all-zero input region). Session.Garble's explicit argument takes
// precedence when non-nil; evaluating sessions ignore the option.
func WithGarblerInput(alice []uint32) Option {
	return func(c *sessionConfig) { c.garblerInput = alice }
}

// WithAuthToken sets a bearer token on a session. It is symmetric: in a
// Server registration's defaults it is the token clients must present to
// propose that program; on a Client's Evaluate it is the token carried in
// the proposal's Auth field. The token never enters the session id or any
// cryptographic material — it is pure admission policy — and on a
// plaintext connection it crosses the wire in the clear, so pair it with
// TLS (WithTLSConfig / WithDialTLS) outside of tests.
func WithAuthToken(token string) Option {
	return func(c *sessionConfig) { c.authToken = token }
}

// WithRetry makes a Client's Evaluate re-propose a session up to n extra
// times when the peer sheds it with a Retry-After hint (see
// RetryableError), sleeping a jittered backoff derived from the hint
// between attempts (default 0: surface the first shed). Only hinted
// rejections retry — a plain policy rejection (unknown program, bad
// token) is permanent and retrying it is pointless. Retries happen
// strictly at the negotiation stage, before any cryptographic material
// has flowed; a session that failed mid-run is never replayed. Garbling
// sessions and the in-process Run ignore the option.
func WithRetry(n int) Option {
	return func(c *sessionConfig) { c.retries = n }
}

// WithAuthorize sets a per-program admission callback on a Server
// registration: during negotiation fn is called with the proposing peer
// (its address, bearer token if any, and TLS state including verified
// client certificates under mutual TLS) and the proposed program name.
// A non-nil error rejects the proposal — before any cryptography runs and
// without dropping the connection; the error text is sent to the client
// as the rejection reason. It composes with WithAuthToken: the token
// check runs first. Evaluating sessions ignore the option.
func WithAuthorize(fn func(peer Peer, program string) error) Option {
	return func(c *sessionConfig) { c.authorize = fn }
}

// WithRand sets the label-randomness source for the garbling side
// (default crypto/rand). Only deterministic tests should override it.
func WithRand(r io.Reader) Option { return func(c *sessionConfig) { c.rand = r } }

// WithStatsSink streams every cycle's scheduling statistics to sink as
// the run progresses — live SkipGate telemetry for long executions.
func WithStatsSink(sink StatsSink) Option { return func(c *sessionConfig) { c.sink = sink } }

// Session is one garbled execution of a program: a cached Machine plus
// the per-run configuration. Sessions are cheap — all the weight lives in
// the Engine's machine cache — so create one per execution. A Session is
// stateless across its method calls; reusing one for several sequential
// runs is fine, but a single networked run should own its connection.
type Session struct {
	m    *Machine
	prog *Program
	cfg  sessionConfig
	eng  *Engine // for WithTraceReuse; nil on the deprecated Machine path
}

// Session creates a session for a program, drawing the machine from the
// layout cache (the first session for a Layout pays the netlist build;
// every later one finds it for free).
func (e *Engine) Session(p *Program, opts ...Option) (*Session, error) {
	cfg, err := newSessionConfig(opts)
	if err != nil {
		return nil, err
	}
	c, err := e.cache.GetMem(p.Layout, cfg.memory)
	if err != nil {
		return nil, err
	}
	return &Session{m: &Machine{cpu: c}, prog: p, cfg: cfg, eng: e}, nil
}

// newSessionConfig applies opts over the defaults and validates — the one
// place session defaults live (Engine.Session and the deprecated Machine
// shims both go through it).
func newSessionConfig(opts []Option) (sessionConfig, error) {
	cfg := sessionConfig{maxCycles: DefaultMaxCycles, cycleBatch: 1, workers: 1}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.maxCycles <= 0 {
		return cfg, fmt.Errorf("arm2gc: WithMaxCycles(%d): cycle budget must be positive", cfg.maxCycles)
	}
	if cfg.cycleBatch < 1 {
		return cfg, fmt.Errorf("arm2gc: WithCycleBatch(%d): batch must be at least 1", cfg.cycleBatch)
	}
	if cfg.pipeline < 0 {
		return cfg, fmt.Errorf("arm2gc: WithPipeline(%d): depth cannot be negative", cfg.pipeline)
	}
	if cfg.workers < 1 || cfg.workers > proto.MaxWorkers {
		return cfg, fmt.Errorf("arm2gc: WithWorkers(%d): worker count must be in [1, %d]", cfg.workers, proto.MaxWorkers)
	}
	if cfg.readAhead < 0 {
		return cfg, fmt.Errorf("arm2gc: WithReadAhead(%d): depth cannot be negative", cfg.readAhead)
	}
	if cfg.memorySet {
		if _, err := obliv.ParseBackend(cfg.memory.Backend); err != nil {
			return cfg, fmt.Errorf("arm2gc: WithMemoryBackend: %w", err)
		}
	}
	if cfg.garbleAhead < -1 {
		return cfg, fmt.Errorf("arm2gc: WithGarbleAheadDepth(%d): depth must be positive", cfg.garbleAhead)
	}
	if cfg.retries < 0 {
		return cfg, fmt.Errorf("arm2gc: WithRetry(%d): retry count cannot be negative", cfg.retries)
	}
	return cfg, nil
}

// Machine exposes the session's shared processor instance.
func (s *Session) Machine() *Machine { return s.m }

// Program returns the program this session executes.
func (s *Session) Program() *Program { return s.prog }

// coreSink adapts the session's StatsSink to the cycle-loop callback.
func (s *Session) coreSink() func(int, core.CycleStats) {
	if s.cfg.sink == nil {
		return nil
	}
	sink := s.cfg.sink
	return func(cyc int, cs core.CycleStats) { sink(CycleUpdate{Cycle: cyc, Stats: cs}) }
}

// traceKey identifies this session's schedule in the Engine's trace
// cache. The SkipGate schedule is a pure function of the circuit, the
// public input bits, the cycle budget (the final cycle switches fanout
// handling) and the stop flag — exactly the key's fields.
func (s *Session) traceKey(pub []bool) cpu.TraceKey {
	return cpu.TraceKey{Circuit: s.m.cpu.Circuit, Pub: cpu.TracePubDigest(pub),
		Cycles: s.cfg.maxCycles, Stop: "halted"}
}

// traceSession is one run's view of the Engine trace cache: a cached
// trace to replay, or a claimed recording slot to settle after the run.
// The zero value (trace reuse off, or the deprecated Machine path with
// no Engine) replays and records nothing.
type traceSession struct {
	cache  *cpu.TraceCache
	key    cpu.TraceKey
	trace  *core.Trace // replay this when non-nil
	record bool        // this run holds the key's recording slot
}

func (s *Session) traceFor(pub []bool) traceSession {
	var ts traceSession
	if !s.cfg.traceReuse || s.eng == nil {
		return ts
	}
	ts.cache = s.eng.traces
	ts.key = s.traceKey(pub)
	if ts.trace = ts.cache.Lookup(ts.key); ts.trace == nil {
		ts.record = ts.cache.BeginRecord(ts.key)
	}
	return ts
}

// settle commits the recorded trace or, when the run failed to produce
// one, releases the slot so a later run can record. A no-op unless this
// run claimed the recording.
func (ts traceSession) settle(tr *core.Trace, err error) {
	if !ts.record {
		return
	}
	if err != nil || tr == nil {
		ts.cache.Abort(ts.key)
		return
	}
	ts.cache.Commit(ts.key, tr)
}

// Run executes the full garbled protocol in process (both parties), with
// real garbling and evaluation; use it to validate programs and measure
// costs before deploying the two-party version. Cancelling ctx aborts the
// cycle loop with ctx.Err().
func (s *Session) Run(ctx context.Context, alice, bob []uint32) (*RunInfo, error) {
	pub, ab, bb, err := s.m.inputs(s.prog, alice, bob)
	if err != nil {
		return nil, err
	}
	ts := s.traceFor(pub)
	res, err := core.RunLocal(ctx, s.m.cpu.Circuit, sim.Inputs{Public: pub, Alice: ab, Bob: bb},
		core.RunOpts{Cycles: s.cfg.maxCycles, StopOutput: "halted", Rand: s.cfg.rand, Sink: s.coreSink(),
			Workers: s.cfg.workers, Trace: ts.trace, Record: ts.record})
	if err != nil {
		ts.settle(nil, err)
		return nil, err
	}
	ts.settle(res.Trace, nil)
	return s.m.info(s.prog, res.Outputs, res.Stats, res.Halted), nil
}

// Count measures the garbled-table counts of the program without doing
// any cryptography (the schedule is independent of label values, so the
// counts are exact). Cancelling ctx aborts with ctx.Err().
func (s *Session) Count(ctx context.Context) (*RunInfo, error) {
	pub, err := s.m.cpu.PublicBits(s.prog)
	if err != nil {
		return nil, err
	}
	// A cached trace already holds the exact schedule totals; serve them
	// without re-counting. (With a per-cycle sink the count still runs,
	// so the sink sees every cycle.) Count never records — it produces
	// no trace — so a miss just falls through.
	if s.cfg.traceReuse && s.eng != nil && s.cfg.sink == nil {
		if tr := s.eng.traces.Lookup(s.traceKey(pub)); tr != nil {
			return s.m.info(s.prog, nil, tr.TotalStats(), true), nil
		}
	}
	st, err := core.Count(ctx, s.m.cpu.Circuit, pub,
		core.CountOpts{Cycles: s.cfg.maxCycles, StopOutput: "halted", Sink: s.coreSink(),
			Workers: s.cfg.workers})
	if err != nil {
		return nil, err
	}
	return s.m.info(s.prog, nil, st, true), nil
}

// Garble plays Alice (the garbler) over a connection: she contributes the
// alice[] input array and, unless WithOutputMode says otherwise, learns
// the outputs. Cancelling ctx aborts the protocol — including any
// in-flight read or write when conn supports deadlines (every net.Conn
// does) — with an error wrapping ctx.Err().
func (s *Session) Garble(ctx context.Context, conn io.ReadWriter, alice []uint32) (*RunInfo, error) {
	if alice == nil {
		alice = s.cfg.garblerInput
	}
	pub, ab, err := s.m.partyBits(s.prog, circuit.Alice, alice)
	if err != nil {
		return nil, err
	}
	ts := s.traceFor(pub)
	cfg := s.protoConfig(pub)
	cfg.Trace, cfg.Record = ts.trace, ts.record
	res, err := proto.RunGarbler(ctx, conn, cfg, ab, s.cfg.rand)
	if err != nil {
		ts.settle(nil, err)
		return nil, err
	}
	ts.settle(res.Trace, nil)
	info := s.m.info(s.prog, res.Outputs, res.Stats, res.Halted)
	info.TableFrames = res.TableFrames
	return info, nil
}

// RecordedStream is one complete pre-garbled session: everything the
// garbler would put on the wire (hello, input labels, OT pairs, the full
// table stream) plus the output-decode metadata, produced offline by
// Session.Record and served online by Session.GarbleRecorded. A stream
// is single-use — its labels come from one fresh seed and must reach one
// evaluator only; the garble-ahead pool enforces this, direct callers
// must. See Server's WithGarbleAhead for the managed path.
type RecordedStream = proto.Recorded

// Record runs the garbler's offline phase with no peer: it garbles this
// session's complete table stream into memory — through exactly the loop
// a live Garble uses, so serving the result later is byte-identical to
// garbling live — using the registration's garbler input
// (WithGarblerInput; nil means all-zero). With WithTraceReuse the first
// Record pays the classification pass and every later one replays the
// cached trace, making offline passes ~an order of magnitude cheaper.
// Cancelling ctx aborts between cycles.
func (s *Session) Record(ctx context.Context) (*RecordedStream, error) {
	pub, ab, err := s.m.partyBits(s.prog, circuit.Alice, s.cfg.garblerInput)
	if err != nil {
		return nil, err
	}
	ts := s.traceFor(pub)
	cfg := s.protoConfig(pub)
	cfg.Trace, cfg.Record = ts.trace, ts.record
	rec, res, err := proto.RecordGarbler(ctx, cfg, ab, s.cfg.rand)
	if err != nil {
		ts.settle(nil, err)
		return nil, err
	}
	ts.settle(res.Trace, nil)
	return rec, nil
}

// GarbleRecorded plays Alice from a pre-garbled stream: the online phase
// is the handshake, OT and frame I/O — no garbling at all. The stream
// must have been recorded by a session with the same program, public
// input and negotiated options (its session id is checked), and must
// never have been served before. Cancellation behaves as in Garble.
func (s *Session) GarbleRecorded(ctx context.Context, conn io.ReadWriter, rec *RecordedStream) (*RunInfo, error) {
	pub, err := s.m.cpu.PublicBits(s.prog)
	if err != nil {
		return nil, err
	}
	res, err := proto.ServeRecorded(ctx, conn, s.protoConfig(pub), rec)
	if err != nil {
		return nil, err
	}
	info := s.m.info(s.prog, res.Outputs, res.Stats, res.Halted)
	info.TableFrames = res.TableFrames
	return info, nil
}

// Evaluate plays Bob (the evaluator) over a connection. Cancellation
// behaves as in Garble.
func (s *Session) Evaluate(ctx context.Context, conn io.ReadWriter, bob []uint32) (*RunInfo, error) {
	pub, bb, err := s.m.partyBits(s.prog, circuit.Bob, bob)
	if err != nil {
		return nil, err
	}
	ts := s.traceFor(pub)
	cfg := s.protoConfig(pub)
	cfg.Trace, cfg.Record = ts.trace, ts.record
	res, err := proto.RunEvaluator(ctx, conn, cfg, bb)
	if err != nil {
		ts.settle(nil, err)
		return nil, err
	}
	ts.settle(res.Trace, nil)
	info := s.m.info(s.prog, res.Outputs, res.Stats, res.Halted)
	info.TableFrames = res.TableFrames
	return info, nil
}

func (s *Session) protoConfig(pub []bool) proto.Config {
	return proto.Config{
		Circuit:    s.m.cpu.Circuit,
		Public:     pub,
		Cycles:     s.cfg.maxCycles,
		StopOutput: "halted",
		Outputs:    s.cfg.outputs,
		CycleBatch: s.cfg.cycleBatch,
		Pipeline:   s.cfg.pipeline,
		Workers:    s.cfg.workers,
		ReadAhead:  s.cfg.readAhead,
		Sink:       s.coreSink(),
	}
}

// sessionID is the protocol session digest this session would handshake
// with; Server and Client exchange it during negotiation to verify full
// program/layout/option agreement before a run starts.
func (s *Session) sessionID() ([32]byte, error) {
	pub, err := s.m.cpu.PublicBits(s.prog)
	if err != nil {
		return [32]byte{}, err
	}
	return s.protoConfig(pub).SessionID()
}

// Verify cross-checks a garbled run against native execution, returning
// an error on any mismatch — the quickest way to validate a new program.
// The machine comes from the Engine cache, so verifying after a Run (or
// cross-checking many programs on one layout) pays no extra netlist
// build.
func (e *Engine) Verify(ctx context.Context, p *Program, alice, bob []uint32, opts ...Option) (*RunInfo, error) {
	s, err := e.Session(p, opts...)
	if err != nil {
		return nil, err
	}
	want, _, err := Emulate(p, alice, bob, s.cfg.maxCycles)
	if err != nil {
		return nil, err
	}
	info, err := s.Run(ctx, alice, bob)
	if err != nil {
		return nil, err
	}
	for i := range want {
		if info.Outputs[i] != want[i] {
			return nil, fmt.Errorf("arm2gc: garbled output[%d] = %#x, native %#x", i, info.Outputs[i], want[i])
		}
	}
	return info, nil
}
