package arm2gc

import (
	"crypto/tls"
	"time"

	"arm2gc/internal/certwatch"
)

// NewCertReloader returns a tls.Config.GetCertificate callback serving
// the certificate/key pair at the given paths and re-reading them when
// they change on disk — TLS rotation without restarting the listener.
// The files are stat'ed lazily from inside handshakes, at most once per
// poll interval (poll <= 0 uses a 5s default); a reload that fails keeps
// serving the previous certificate. The pair is loaded eagerly once, so
// a broken certificate is a construction error rather than a surprise at
// first handshake.
//
//	getCert, err := arm2gc.NewCertReloader("server.pem", "server-key.pem", 0)
//	srv := arm2gc.NewServer(eng, arm2gc.WithTLSConfig(&tls.Config{
//	    GetCertificate: getCert,
//	}))
//
// The same callback plugs into a fleet gateway's listener config; both
// ends of the deployment rotate certificates the same way.
func NewCertReloader(certFile, keyFile string, poll time.Duration) (func(*tls.ClientHelloInfo) (*tls.Certificate, error), error) {
	var opts []certwatch.Option
	if poll > 0 {
		opts = append(opts, certwatch.WithPoll(poll))
	}
	r, err := certwatch.New(certFile, keyFile, opts...)
	if err != nil {
		return nil, err
	}
	return r.GetCertificate, nil
}
