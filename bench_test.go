package arm2gc

// One benchmark per table and figure of the paper's evaluation (the same
// generators cmd/arm2gc-bench uses), plus microbenchmarks of the
// throughput-critical primitives: half-gates garbling, the SkipGate
// scheduler on the processor netlist, and full crypto per processor cycle.
//
// Run: go test -bench=. -benchmem

import (
	"context"
	"net"
	"runtime"
	"testing"
	"time"

	"arm2gc/internal/bencher"
	"arm2gc/internal/core"
	"arm2gc/internal/cpu"
	"arm2gc/internal/gc"
	"arm2gc/internal/obliv"
	"arm2gc/internal/sim"
)

func benchTable(b *testing.B, f func() (*bencher.Table, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		t, err := f()
		if err != nil {
			b.Fatal(err)
		}
		if len(t.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTable1_SkipGateOnHDLCircuits(b *testing.B) {
	benchTable(b, func() (*bencher.Table, error) { return bencher.Table1(false) })
}

func BenchmarkTable2_ARM2GCvsHDL(b *testing.B) {
	benchTable(b, func() (*bencher.Table, error) { return bencher.Table2(false) })
}

func BenchmarkTable3_ARM2GCvsFrameworks(b *testing.B) {
	benchTable(b, func() (*bencher.Table, error) { return bencher.Table3(false) })
}

func BenchmarkTable4_SkipGateOnARM(b *testing.B) {
	benchTable(b, func() (*bencher.Table, error) { return bencher.Table4(false) })
}

func BenchmarkTable5_ComplexFunctions(b *testing.B) {
	benchTable(b, func() (*bencher.Table, error) { return bencher.Table5(false) })
}

func BenchmarkTable6_FrameworkFeatures(b *testing.B) {
	benchTable(b, bencher.Table6)
}

func BenchmarkMIPS_InstructionLevelBaseline(b *testing.B) {
	benchTable(b, bencher.MIPSTable)
}

func BenchmarkFigure1_Phase1Rewrites(b *testing.B) { benchTable(b, bencher.Figure1) }
func BenchmarkFigure2_Phase2Rewrites(b *testing.B) { benchTable(b, bencher.Figure2) }
func BenchmarkFigure3_RecursiveReduction(b *testing.B) {
	benchTable(b, bencher.Figure3)
}
func BenchmarkFigure5_ConditionalExecution(b *testing.B) { benchTable(b, bencher.Figure5) }
func BenchmarkFigure6_SecretBranchBlowup(b *testing.B)   { benchTable(b, bencher.Figure6) }

func BenchmarkAblationMuxCell(b *testing.B)       { benchTable(b, bencher.AblationMuxCell) }
func BenchmarkAblationObliviousScan(b *testing.B) { benchTable(b, bencher.AblationObliviousScan) }
func BenchmarkAblationZFlag(b *testing.B)         { benchTable(b, bencher.AblationZFlag) }

// --- Oblivious-memory crossover (make bench-oram) ---

// memAccessBench counts garbled tables per data-memory access for one
// backend on the 512-word (2KB) relaxation workload — above the
// scan/ORAM break-even, where the square-root ORAM must come in under
// the scan. The count is an exact property of the schedule (no crypto,
// no jitter), so the tables/access metric gates machine-independently
// in bench-compare; regressing either backend past the threshold — or
// losing the ORAM's win — fails the gate.
func memAccessBench(b *testing.B, backend string) {
	// 256 gather loads + 16 scatter stores + 1 readback load.
	const accesses = 273
	w := bencher.RelaxWorkload(512)
	var perAccess float64
	for i := 0; i < b.N; i++ {
		res, err := bencher.RunOnCPUMem(w, obliv.Config{Backend: backend})
		if err != nil {
			b.Fatal(err)
		}
		perAccess = float64(res.Garbled()) / accesses
	}
	b.ReportMetric(perAccess, "tables/access")
}

func BenchmarkMemAccessScan(b *testing.B)     { memAccessBench(b, obliv.Scan) }
func BenchmarkMemAccessSqrtORAM(b *testing.B) { memAccessBench(b, obliv.SqrtORAM) }

// --- Primitive throughput ---

func BenchmarkHalfGatesGarble(b *testing.B) {
	h := gc.NewHash()
	r := gc.RandDelta(gc.CryptoRand)
	a0 := gc.RandLabel(gc.CryptoRand)
	b0 := gc.RandLabel(gc.CryptoRand)
	b.ReportAllocs()
	b.SetBytes(gc.TableBytes)
	for i := 0; i < b.N; i++ {
		_, _ = gc.GarbleAnd(h, r, a0, b0, uint64(i))
	}
}

func BenchmarkHalfGatesEval(b *testing.B) {
	h := gc.NewHash()
	r := gc.RandDelta(gc.CryptoRand)
	a0 := gc.RandLabel(gc.CryptoRand)
	b0 := gc.RandLabel(gc.CryptoRand)
	c0, tab := gc.GarbleAnd(h, r, a0, b0, 1)
	_ = c0
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = gc.EvalAnd(h, a0, b0, tab, 1)
	}
}

func cpuForBench(b *testing.B) (*cpu.CPU, []bool, int) {
	b.Helper()
	w := bencher.HammingWorkload(160)
	p, _, err := w.Program()
	if err != nil {
		b.Fatal(err)
	}
	c, err := cpu.Build(p.Layout)
	if err != nil {
		b.Fatal(err)
	}
	pub, err := c.PublicBits(p)
	if err != nil {
		b.Fatal(err)
	}
	return c, pub, 470 // emulator-measured cycle count for this workload
}

// BenchmarkSchedulerCycle measures the SkipGate decision pass (no crypto)
// per processor clock cycle — the local-computation price the paper trades
// for communication.
func BenchmarkSchedulerCycle(b *testing.B) {
	c, pub, _ := cpuForBench(b)
	s := core.NewScheduler(c.Circuit, core.Seed{}, pub)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Classify(false)
		s.Commit()
	}
	b.ReportMetric(float64(len(c.Circuit.Gates)), "gates/cycle")
}

// BenchmarkTraceReplay measures the garbler's cost when the SkipGate
// pass is already compiled into a trace (WithTraceReuse warm path): no
// classification, just the surviving label ops and the few garbled
// tables, straight from the trace's gate lists. Each op replays the
// full recorded run; the ns/cycle metric sits next to
// BenchmarkSchedulerCycle's ns/op — the classify-only price per cycle
// that replay removes — and the baseline keeps replay several times
// cheaper.
func BenchmarkTraceReplay(b *testing.B) {
	c, pub, cycles := cpuForBench(b)
	res, err := core.RunLocal(context.Background(), c.Circuit, sim.Inputs{Public: pub},
		core.RunOpts{Cycles: cycles, Record: true})
	if err != nil {
		b.Fatal(err)
	}
	tr := res.Trace
	n := tr.NumCycles()
	g := core.NewReplayGarbler(c.Circuit, gc.CryptoRand)
	var tables []gc.Table
	garbled := 0
	b.ReportAllocs()
	b.ResetTimer()
	// One op = one whole warm session's garbling (every recorded cycle),
	// so the measurement window is milliseconds even at small -benchtime.
	for i := 0; i < b.N; i++ {
		for cyc := 1; cyc <= n; cyc++ {
			tables = g.GarbleCycleTrace(tr.Cycle(cyc), cyc, tables[:0])
			garbled += len(tables)
			g.CopyDFFs()
		}
	}
	b.ReportMetric(float64(garbled)/float64(b.N*n), "tables/cycle")
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*n), "ns/cycle")
}

// BenchmarkGarbledProcessorCycle measures a full crypto cycle (scheduler +
// garbler + evaluator) on the processor.
func BenchmarkGarbledProcessorCycle(b *testing.B) {
	c, pub, _ := cpuForBench(b)
	s := core.NewScheduler(c.Circuit, core.Seed{}, pub)
	g := core.NewGarbler(s, gc.CryptoRand)
	e := core.NewEvaluator(s)
	pairs := g.BobPairs()
	chosen := make([]gc.Label, len(pairs))
	for i := range pairs {
		chosen[i] = pairs[i][0]
	}
	if err := e.SetInputs(g.AliceActiveLabels(nil), chosen); err != nil {
		b.Fatal(err)
	}
	var tables []gc.Table
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Classify(false)
		tables = g.GarbleCycle(tables[:0])
		if _, err := e.EvalCycle(tables); err != nil {
			b.Fatal(err)
		}
		g.CopyDFFs()
		e.CopyDFFs()
		s.Commit()
	}
}

// cpu256ForBench builds the 256-word-imem processor (~35k wires, the
// ROADMAP's hot-path geometry) loaded with a Hamming-512 program image.
func cpu256ForBench(b *testing.B) (*cpu.CPU, []bool) {
	b.Helper()
	w := bencher.HammingWorkload(512)
	w.Layout.IMemWords = 256
	w.Layout.ScratchWords = 64
	p, _, err := w.Program()
	if err != nil {
		b.Fatal(err)
	}
	c, err := cpu.Shared(p.Layout)
	if err != nil {
		b.Fatal(err)
	}
	pub, err := c.PublicBits(p)
	if err != nil {
		b.Fatal(err)
	}
	return c, pub
}

// benchParallelCycle measures the garbler-side hot path — SkipGate
// classification plus label work and table garbling — per processor
// clock cycle on the 256-word layout, at a given worker count.
func benchParallelCycle(b *testing.B, workers int) {
	c, pub := cpu256ForBench(b)
	s := core.NewScheduler(c.Circuit, core.Seed{}, pub)
	s.SetWorkers(workers)
	g := core.NewGarbler(s, gc.CryptoRand)
	var tables []gc.Table
	garbled := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Classify(false)
		tables = g.GarbleCycle(tables[:0])
		garbled += len(tables)
		g.CopyDFFs()
		s.Commit()
	}
	b.ReportMetric(float64(garbled)/float64(b.N), "tables/cycle")
}

// BenchmarkParallelCycle compares the serial per-cycle engine against the
// WithWorkers pool on the big processor layout (`make bench-json` tracks
// it). The streams are byte-identical; the gap is pure wall clock. The
// parallel sub-benchmark keeps a fixed name — the worker count rides
// along as a metric — so the bench-regression gate matches it against
// the baseline on any hardware; on a single-core runner it measures the
// coordination overhead instead, and the hardware fingerprint in the
// JSON keeps such wall-clock numbers from gating cross-machine.
func BenchmarkParallelCycle(b *testing.B) {
	b.Run("serial", func(b *testing.B) { benchParallelCycle(b, 1) })
	b.Run("parallel", func(b *testing.B) {
		n := runtime.NumCPU()
		if n < 2 {
			n = 2
		}
		benchParallelCycle(b, n)
		// After benchParallelCycle's ResetTimer, which deletes
		// user-reported metrics.
		b.ReportMetric(float64(n), "workers")
	})
}

// BenchmarkConventionalGCCycle garbles the whole processor conventionally
// (the paper's w/o-SkipGate column) for one cycle — the cost SkipGate
// removes.
func BenchmarkConventionalGCCycle(b *testing.B) {
	c, _, _ := cpuForBench(b)
	g := gc.NewGarbler(c.Circuit, gc.CryptoRand)
	var tables []gc.Table
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tables = g.GarbleCycle(tables[:0])
	}
	b.ReportMetric(float64(len(tables)*gc.TableBytes), "bytes/cycle")
}

// BenchmarkEndToEndSum32 runs the complete garbled execution of the Sum 32
// program (the paper's headline example) through the Engine API.
func BenchmarkEndToEndSum32(b *testing.B) {
	prog, _, err := CompileC("sum", "void gc_main(const int *a, const int *b, int *c) { c[0] = a[0] + b[0]; }",
		Layout{IMemWords: 64, AliceWords: 1, BobWords: 1, OutWords: 1, ScratchWords: 8})
	if err != nil {
		b.Fatal(err)
	}
	eng := NewEngine()
	sess, err := eng.Session(prog, WithMaxCycles(1000))
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		info, err := sess.Run(ctx, []uint32{uint32(i)}, []uint32{7})
		if err != nil {
			b.Fatal(err)
		}
		if info.Outputs[0] != uint32(i)+7 {
			b.Fatal("wrong sum")
		}
	}
}

// BenchmarkEngineSessionReuse guards the machine cache: creating a
// session on a cold Engine pays the ~10ms netlist synthesis; every
// subsequent session for the same Layout must find the machine for free
// (the warm case runs Session + a schedule-only Count to show the
// end-to-end reuse path, and asserts zero extra builds).
func BenchmarkEngineSessionReuse(b *testing.B) {
	prog, _, err := CompileC("sum", "void gc_main(const int *a, const int *b, int *c) { c[0] = a[0] + b[0]; }",
		Layout{IMemWords: 64, AliceWords: 1, BobWords: 1, OutWords: 1, ScratchWords: 8})
	if err != nil {
		b.Fatal(err)
	}

	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			eng := NewEngine()
			if _, err := eng.Session(prog, WithMaxCycles(1000)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		eng := NewEngine()
		if _, err := eng.Session(prog, WithMaxCycles(1000)); err != nil {
			b.Fatal(err)
		}
		// A warm session costs a few hundred ns; batch them so the
		// measurement window is far above scheduler jitter even at
		// small -benchtime. ns/session is the per-session cost.
		const batch = 1024
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := 0; j < batch; j++ {
				if _, err := eng.Session(prog, WithMaxCycles(1000)); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*batch), "ns/session")
		if got := eng.Builds(); got != 1 {
			b.Fatalf("warm sessions rebuilt the netlist: %d builds", got)
		}
	})
}

// slowConn models a link with per-write transmission time: each Write
// costs latency wall-clock before the bytes move. Over a raw net.Pipe a
// write completes the moment the peer reads, so frame I/O is free and
// serial garbling already overlaps with peer compute; the latency is what
// a real network adds and what the pipelined garbler hides.
type slowConn struct {
	net.Conn
	latency time.Duration
}

func (c slowConn) Write(p []byte) (int, error) {
	time.Sleep(c.latency)
	return c.Conn.Write(p)
}

// benchTwoParty runs complete two-party executions of the Hamming
// workload over net.Pipe with 1ms of garbler-side write latency, the
// garbler pipelining `pipeline` frames ahead of the writer (0 = the
// serial path).
func benchTwoParty(b *testing.B, pipeline int) {
	w := bencher.HammingWorkload(160)
	prog, _, err := w.Program()
	if err != nil {
		b.Fatal(err)
	}
	eng := NewEngine()
	opts := []Option{WithMaxCycles(1000), WithCycleBatch(8), WithPipeline(pipeline)}
	alice := make([]uint32, prog.Layout.AliceWords)
	bob := make([]uint32, prog.Layout.BobWords)
	for i := range alice {
		alice[i] = 0xa5a5a5a5
	}
	for i := range bob {
		bob[i] = uint32(0x5a5a5a5a + i)
	}
	if _, err := eng.Session(prog, opts...); err != nil { // pay the netlist build untimed
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gs, err := eng.Session(prog, opts...)
		if err != nil {
			b.Fatal(err)
		}
		es, err := eng.Session(prog, opts...)
		if err != nil {
			b.Fatal(err)
		}
		ca, cb := net.Pipe()
		done := make(chan error, 1)
		go func() {
			_, err := gs.Garble(ctx, slowConn{Conn: ca, latency: time.Millisecond}, alice)
			done <- err
		}()
		if _, err := es.Evaluate(ctx, cb, bob); err != nil {
			b.Fatal(err)
		}
		if err := <-done; err != nil {
			b.Fatal(err)
		}
		ca.Close()
		cb.Close()
	}
}

// BenchmarkGarblerPipeline compares the serial and pipelined garbler
// paths end to end (`make bench-pipeline`). Over net.Pipe each write
// rendezvous with the evaluator's read, so the serial path alternates
// compute and I/O while the pipelined one overlaps them; the gap between
// the two sub-benchmarks is the overlap won.
func BenchmarkGarblerPipeline(b *testing.B) {
	b.Run("serial", func(b *testing.B) { benchTwoParty(b, 0) })
	b.Run("pipeline4", func(b *testing.B) { benchTwoParty(b, 4) })
}

// benchOnlineSession times the online phase of complete two-party
// Hamming sessions over net.Pipe: the garbler either garbles live inside
// the session (cold) or serves a stream pre-garbled offline by
// Session.Record (pooled — the Server's garble-ahead path). The
// evaluator replays a warm classification trace and reads ahead in both
// variants, so the gap between them is exactly the garbling work the
// offline phase moved off the critical path. The 512-bit workload keeps
// the per-cycle work dominant over the fixed per-session handshake-and-OT
// cost both variants pay. Recording happens with the timer stopped —
// that is the offline phase by definition.
func benchOnlineSession(b *testing.B, pooled bool) {
	w := bencher.HammingWorkload(512)
	prog, _, err := w.Program()
	if err != nil {
		b.Fatal(err)
	}
	eng := NewEngine()
	alice := make([]uint32, prog.Layout.AliceWords)
	bob := make([]uint32, prog.Layout.BobWords)
	for i := range alice {
		alice[i] = 0xa5a5a5a5
	}
	for i := range bob {
		bob[i] = uint32(0x5a5a5a5a + i)
	}
	gopts := []Option{WithMaxCycles(4000), WithCycleBatch(8), WithGarblerInput(alice)}
	eopts := []Option{WithMaxCycles(4000), WithCycleBatch(8), WithTraceReuse(), WithReadAhead(4)}
	ctx := context.Background()
	runOnce := func(rec *RecordedStream) {
		gs, err := eng.Session(prog, gopts...)
		if err != nil {
			b.Fatal(err)
		}
		es, err := eng.Session(prog, eopts...)
		if err != nil {
			b.Fatal(err)
		}
		ca, cb := net.Pipe()
		done := make(chan error, 1)
		go func() {
			var err error
			if rec != nil {
				_, err = gs.GarbleRecorded(ctx, ca, rec)
			} else {
				_, err = gs.Garble(ctx, ca, nil)
			}
			done <- err
		}()
		if _, err := es.Evaluate(ctx, cb, bob); err != nil {
			b.Fatal(err)
		}
		if err := <-done; err != nil {
			b.Fatal(err)
		}
		ca.Close()
		cb.Close()
	}
	runOnce(nil) // untimed: netlist build + the evaluator's trace recording
	rs, err := eng.Session(prog, append(gopts[:len(gopts):len(gopts)], WithTraceReuse())...)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var rec *RecordedStream
		if pooled {
			b.StopTimer()
			if rec, err = rs.Record(ctx); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
		runOnce(rec)
	}
}

// BenchmarkColdSession is the online phase with no pool: the garbler
// classifies and garbles every table inside the session.
func BenchmarkColdSession(b *testing.B) { benchOnlineSession(b, false) }

// BenchmarkPooledSession is the online phase served from a pre-garbled
// stream — handshake, OT and frame I/O only, the state a garble-ahead
// pool hit puts the server in. The baseline keeps it several times
// cheaper than BenchmarkColdSession (`make bench-compare` gates the
// ratio's two sides).
func BenchmarkPooledSession(b *testing.B) { benchOnlineSession(b, true) }

// BenchmarkPlainSimCPU is the plaintext-simulation floor for the same
// processor netlist.
func BenchmarkPlainSimCPU(b *testing.B) {
	c, pub, _ := cpuForBench(b)
	s := sim.New(c.Circuit, sim.Inputs{Public: pub})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}
