package arm2gc

import (
	"context"
	"crypto/tls"
	"errors"
	"fmt"
	"net"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"arm2gc/internal/devcert"
	"arm2gc/internal/proto"
)

// compileXor is a second distinct program for multi-program servers.
func compileXor(t testing.TB) *Program {
	t.Helper()
	prog, _, err := CompileC("xor", `void gc_main(const int *a, const int *b, int *c) { c[0] = a[0] ^ b[0]; }`, testLayout())
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// newTestCA mints a fresh throwaway CA per test.
func newTestCA(t testing.TB) *devcert.CA {
	t.Helper()
	ca, err := devcert.NewCA("test CA")
	if err != nil {
		t.Fatal(err)
	}
	return ca
}

// TestServerTLSRoundTrip is the hardening acceptance anchor: a server
// with TLS and per-program bearer tokens hosts two programs; one
// authorized client runs both over a single TLS connection, an
// unauthorized proposal in between is rejected without dropping that
// connection, and the metrics report the exact counts.
func TestServerTLSRoundTrip(t *testing.T) {
	add, xor := compileAdd(t), compileXor(t)
	ca := newTestCA(t)
	srvTLS, err := devcert.ServerConfig(ca, false)
	if err != nil {
		t.Fatal(err)
	}
	clTLS, err := devcert.ClientConfig(ca, "")
	if err != nil {
		t.Fatal(err)
	}

	eng := NewEngine()
	srv := NewServer(eng, WithTLSConfig(srvTLS))
	if err := srv.Register("add", add, WithMaxCycles(10_000), WithGarblerInput([]uint32{100}), WithAuthToken("team-a")); err != nil {
		t.Fatal(err)
	}
	if err := srv.Register("xor", xor, WithMaxCycles(10_000), WithGarblerInput([]uint32{0xf0}), WithAuthToken("team-a")); err != nil {
		t.Fatal(err)
	}
	addr, shutdown := startServer(t, srv)

	cl, err := DialTLS(context.Background(), addr, clTLS, WithClientEngine(eng))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Register("add", add); err != nil {
		t.Fatal(err)
	}
	if err := cl.Register("xor", xor); err != nil {
		t.Fatal(err)
	}

	// Two different programs over the one TLS connection.
	info, err := cl.Evaluate(context.Background(), "add", []uint32{23}, WithAuthToken("team-a"))
	if err != nil {
		t.Fatalf("add over TLS: %v", err)
	}
	if info.Outputs[0] != 123 {
		t.Fatalf("add = %d, want 123", info.Outputs[0])
	}
	// An unauthorized proposal in between must not cost the connection.
	_, err = cl.Evaluate(context.Background(), "xor", []uint32{0x0f}, WithAuthToken("wrong"))
	var rej *RejectedError
	if !errors.As(err, &rej) {
		t.Fatalf("wrong token: got %v, want *RejectedError", err)
	}
	if !strings.Contains(rej.Reason, "not available") {
		t.Errorf("rejection reason %q is not the uniform admission rejection", rej.Reason)
	}
	info, err = cl.Evaluate(context.Background(), "xor", []uint32{0x0f}, WithAuthToken("team-a"))
	if err != nil {
		t.Fatalf("xor after a rejection on the same conn: %v", err)
	}
	if info.Outputs[0] != 0xff {
		t.Fatalf("xor = %#x, want 0xff", info.Outputs[0])
	}
	cl.Close()
	shutdown()

	m := srv.Metrics()
	if m.SessionsServed != 2 || m.SessionsRejected != 1 || m.SessionsActive != 0 {
		t.Fatalf("metrics served/rejected/active = %d/%d/%d, want 2/1/0",
			m.SessionsServed, m.SessionsRejected, m.SessionsActive)
	}
	if p := m.Programs["add"]; p.Served != 1 || p.Rejected != 0 {
		t.Errorf("add counters %+v, want served 1 rejected 0", p)
	}
	if p := m.Programs["xor"]; p.Served != 1 || p.Rejected != 1 {
		t.Errorf("xor counters %+v, want served 1 rejected 1", p)
	}
	if m.ConnectionsAccepted != 1 {
		t.Errorf("connections accepted = %d, want 1", m.ConnectionsAccepted)
	}
	if m.BytesRead == 0 || m.BytesWritten == 0 || m.TableFrames == 0 || m.Cycles == 0 {
		t.Errorf("wire/work counters empty: %+v", m)
	}
	// One netlist build per distinct fitted layout — CompileC sizes the
	// instruction memory to each program, so the two may or may not share.
	wantBuilds := int64(2)
	if add.Layout == xor.Layout {
		wantBuilds = 1
	}
	if m.EngineBuilds != wantBuilds {
		t.Errorf("engine builds = %d, want %d", m.EngineBuilds, wantBuilds)
	}
}

// TestServerMutualTLSAuthorize: the WithAuthorize policy sees the
// verified client-certificate identity under mutual TLS and admits by
// common name; a client with the wrong identity is rejected before any
// cryptography, without losing its connection.
func TestServerMutualTLSAuthorize(t *testing.T) {
	prog := compileAdd(t)
	ca := newTestCA(t)
	srvTLS, err := devcert.ServerConfig(ca, true)
	if err != nil {
		t.Fatal(err)
	}
	goodTLS, err := devcert.ClientConfig(ca, "alice")
	if err != nil {
		t.Fatal(err)
	}
	badTLS, err := devcert.ClientConfig(ca, "mallory")
	if err != nil {
		t.Fatal(err)
	}

	eng := NewEngine()
	srv := NewServer(eng, WithTLSConfig(srvTLS))
	err = srv.Register("add", prog, WithMaxCycles(10_000), WithGarblerInput([]uint32{1}),
		WithAuthorize(func(peer Peer, program string) error {
			if peer.CommonName() != "alice" {
				return fmt.Errorf("peer %q is not allowed to run %q", peer.CommonName(), program)
			}
			return nil
		}))
	if err != nil {
		t.Fatal(err)
	}
	addr, shutdown := startServer(t, srv)
	defer shutdown()

	good, err := DialTLS(context.Background(), addr, goodTLS, WithClientEngine(eng))
	if err != nil {
		t.Fatal(err)
	}
	defer good.Close()
	if err := good.Register("add", prog); err != nil {
		t.Fatal(err)
	}
	info, err := good.Evaluate(context.Background(), "add", []uint32{41})
	if err != nil {
		t.Fatalf("authorized mTLS client: %v", err)
	}
	if info.Outputs[0] != 42 {
		t.Fatalf("sum = %d, want 42", info.Outputs[0])
	}

	bad, err := DialTLS(context.Background(), addr, badTLS, WithClientEngine(eng))
	if err != nil {
		t.Fatal(err)
	}
	defer bad.Close()
	if err := bad.Register("add", prog); err != nil {
		t.Fatal(err)
	}
	_, err = bad.Evaluate(context.Background(), "add", []uint32{41})
	var rej *RejectedError
	if !errors.As(err, &rej) {
		t.Fatalf("mallory: got %v, want *RejectedError", err)
	}
	if !strings.Contains(rej.Reason, "mallory") {
		t.Errorf("rejection reason %q does not name the peer", rej.Reason)
	}
	// The rejected client's connection survives: an authorized follow-up
	// would need a different cert, but unauthenticated traffic like a
	// second (still rejected) proposal must not find a dead conn.
	if _, err = bad.Evaluate(context.Background(), "add", []uint32{41}); !errors.As(err, &rej) {
		t.Fatalf("second proposal on the rejected conn: got %v, want *RejectedError", err)
	}

	// A client without any certificate fails the TLS handshake itself.
	nocert, err := devcert.ClientConfig(ca, "")
	if err != nil {
		t.Fatal(err)
	}
	anon, err := DialTLS(context.Background(), addr, nocert, WithClientEngine(eng))
	if err == nil {
		// TLS 1.3 reports missing client certs on first read, not in the
		// handshake; the proposal must then fail.
		if err := anon.Register("add", prog); err != nil {
			t.Fatal(err)
		}
		if _, err := anon.Evaluate(context.Background(), "add", []uint32{1}); err == nil {
			t.Fatal("certificate-less client ran a session under mutual TLS")
		}
		anon.Close()
	}
}

// TestServerTLSListenerPassThrough: an operator terminating TLS with
// tls.NewListener instead of WithTLSConfig must still get the mTLS peer
// identity in WithAuthorize — the byte counter wraps outside the
// *tls.Conn in that layering, and peerOf must look through it.
func TestServerTLSListenerPassThrough(t *testing.T) {
	prog := compileAdd(t)
	ca := newTestCA(t)
	srvTLS, err := devcert.ServerConfig(ca, true)
	if err != nil {
		t.Fatal(err)
	}
	clTLS, err := devcert.ClientConfig(ca, "alice")
	if err != nil {
		t.Fatal(err)
	}

	eng := NewEngine()
	srv := NewServer(eng) // no WithTLSConfig: the listener terminates TLS
	if err := srv.Register("add", prog, WithMaxCycles(10_000), WithGarblerInput([]uint32{1}),
		WithAuthorize(func(peer Peer, program string) error {
			if peer.CommonName() != "alice" {
				return fmt.Errorf("peer %q is not allowed", peer.CommonName())
			}
			return nil
		})); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, tls.NewListener(ln, srvTLS)) }()

	cl, err := DialTLS(context.Background(), ln.Addr().String(), clTLS, WithClientEngine(eng))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Register("add", prog); err != nil {
		t.Fatal(err)
	}
	info, err := cl.Evaluate(context.Background(), "add", []uint32{41})
	if err != nil {
		t.Fatalf("mTLS identity lost through a TLS listener: %v", err)
	}
	if info.Outputs[0] != 42 {
		t.Fatalf("sum = %d, want 42", info.Outputs[0])
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("Serve returned %v on shutdown", err)
	}
}

// TestServerBearerTokenPlaintext: bearer-token policy stands alone on a
// plaintext connection — the wrong token is rejected, the right one runs,
// both over one conn (the follow-up authorized session the issue pins).
func TestServerBearerTokenPlaintext(t *testing.T) {
	prog := compileAdd(t)
	eng := NewEngine()
	srv := NewServer(eng)
	if err := srv.Register("add", prog, WithMaxCycles(10_000), WithGarblerInput([]uint32{5}), WithAuthToken("s3cret")); err != nil {
		t.Fatal(err)
	}
	addr, shutdown := startServer(t, srv)

	cl, err := Dial(context.Background(), addr, WithClientEngine(eng))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Register("add", prog); err != nil {
		t.Fatal(err)
	}
	var rej *RejectedError
	if _, err := cl.Evaluate(context.Background(), "add", []uint32{1}); !errors.As(err, &rej) {
		t.Fatalf("no token: got %v, want *RejectedError", err)
	}
	noToken := rej.Reason
	if _, err := cl.Evaluate(context.Background(), "add", []uint32{1}, WithAuthToken("nope")); !errors.As(err, &rej) {
		t.Fatalf("wrong token: got %v, want *RejectedError", err)
	}
	// Anti-enumeration: an unknown program and a failed token check must
	// read identically (modulo the proposed name), or unauthenticated
	// peers could probe which programs the server hosts.
	if err := cl.Register("ghost", prog); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Evaluate(context.Background(), "ghost", []uint32{1}); !errors.As(err, &rej) {
		t.Fatalf("unknown program: got %v, want *RejectedError", err)
	}
	if got := strings.ReplaceAll(rej.Reason, `"ghost"`, `"add"`); got != noToken {
		t.Errorf("unknown-program rejection %q is distinguishable from the failed-token rejection %q", rej.Reason, noToken)
	}
	info, err := cl.Evaluate(context.Background(), "add", []uint32{1}, WithAuthToken("s3cret"))
	if err != nil {
		t.Fatalf("right token after two rejections on the same conn: %v", err)
	}
	if info.Outputs[0] != 6 {
		t.Fatalf("sum = %d, want 6", info.Outputs[0])
	}
	cl.Close()
	shutdown()
	m := srv.Metrics()
	if m.SessionsServed != 1 || m.SessionsRejected != 3 {
		t.Fatalf("served/rejected = %d/%d, want 1/3", m.SessionsServed, m.SessionsRejected)
	}
	// The unknown-program probe has no per-program slot (unbounded-
	// cardinality names never enter the map); "add" saw the two token
	// failures.
	if p := m.Programs["add"]; p.Served != 1 || p.Rejected != 2 {
		t.Fatalf("program counters %+v, want served 1 rejected 2", p)
	}
	if _, ok := m.Programs["ghost"]; ok {
		t.Error("an unregistered probe name leaked into the per-program metrics")
	}
}

// TestServerMetricsExactness reuses the concurrency harness: N concurrent
// clients each run one valid and one rejected session; every counter must
// land exactly, and the HTTP endpoint must serve the same numbers.
func TestServerMetricsExactness(t *testing.T) {
	prog := compileAdd(t)
	eng := NewEngine()
	srv := NewServer(eng, WithMaxSessions(4))
	if err := srv.Register("add", prog, WithMaxCycles(10_000), WithCycleBatch(4), WithGarblerInput([]uint32{10})); err != nil {
		t.Fatal(err)
	}
	addr, shutdown := startServer(t, srv)

	const clients = 6
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cl, err := Dial(context.Background(), addr, WithClientEngine(eng))
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			if err := cl.Register("add", prog); err != nil {
				errs <- err
				return
			}
			// One over-budget rejection...
			var rej *RejectedError
			if _, err := cl.Evaluate(context.Background(), "add", []uint32{1}, WithMaxCycles(100_000)); !errors.As(err, &rej) {
				errs <- fmt.Errorf("client %d: over-budget proposal: %v", i, err)
				return
			}
			// ...then one served session on the same conn.
			info, err := cl.Evaluate(context.Background(), "add", []uint32{uint32(i)})
			if err != nil {
				errs <- fmt.Errorf("client %d: %w", i, err)
				return
			}
			if info.Outputs[0] != 10+uint32(i) {
				errs <- fmt.Errorf("client %d: sum = %d", i, info.Outputs[0])
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	shutdown()

	m := srv.Metrics()
	if m.SessionsServed != clients || m.SessionsRejected != clients {
		t.Fatalf("served/rejected = %d/%d, want %d/%d", m.SessionsServed, m.SessionsRejected, clients, clients)
	}
	if m.SessionsActive != 0 || m.ConnectionsActive != 0 {
		t.Fatalf("active sessions/conns = %d/%d after shutdown, want 0/0", m.SessionsActive, m.ConnectionsActive)
	}
	if m.ConnectionsAccepted != clients {
		t.Fatalf("connections accepted = %d, want %d", m.ConnectionsAccepted, clients)
	}
	if p := m.Programs["add"]; p.Served != clients || p.Rejected != clients {
		t.Fatalf("program counters %+v, want %d/%d", p, clients, clients)
	}
	if m.EngineBuilds != 1 {
		t.Fatalf("engine builds = %d, want 1", m.EngineBuilds)
	}
	if m.SessionsFailed != 0 || m.NegotiationFailures != 0 {
		t.Fatalf("failed/negotiation-failures = %d/%d, want 0/0", m.SessionsFailed, m.NegotiationFailures)
	}

	// The scrape endpoint serves the same exact numbers.
	rec := httptest.NewRecorder()
	srv.MetricsHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	for _, want := range []string{
		fmt.Sprintf("arm2gc_sessions_served_total %d", clients),
		fmt.Sprintf("arm2gc_sessions_rejected_total %d", clients),
		fmt.Sprintf(`arm2gc_program_sessions_served_total{program="add"} %d`, clients),
		"arm2gc_engine_builds_total 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics endpoint missing %q in:\n%s", want, body)
		}
	}
	recJSON := httptest.NewRecorder()
	srv.MetricsHandler().ServeHTTP(recJSON, httptest.NewRequest("GET", "/metrics?format=json", nil))
	if !strings.Contains(recJSON.Body.String(), fmt.Sprintf(`"sessions_served": %d`, clients)) {
		t.Errorf("JSON metrics missing the served count:\n%s", recJSON.Body.String())
	}
}

// TestServerVersionMismatchKeepsServing: a proposal with an unassigned
// feature flag is rejected at the frame layer; the server counts it and
// keeps serving other clients.
func TestServerVersionMismatchKeepsServing(t *testing.T) {
	prog := compileAdd(t)
	eng := NewEngine()
	srv := NewServer(eng)
	if err := srv.Register("add", prog, WithMaxCycles(10_000), WithGarblerInput([]uint32{1})); err != nil {
		t.Fatal(err)
	}
	addr, shutdown := startServer(t, srv)
	defer shutdown()

	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	// A hand-crafted proposal frame announcing flag 0x80, which no build
	// implements: type, length, name, flags, mode, batch, cycles, workers.
	frame := []byte{
		0x10, 21, 0, 0, 0,
		1, 0, 'p',
		0x80, 0,
		0, 0, 0, 0,
		0, 0, 0, 0, 0, 0, 0, 0,
		0, 0, 0, 0,
	}
	if _, err := raw.Write(frame); err != nil {
		t.Fatal(err)
	}
	// The server must answer with a rejection, not close the conn: a
	// follow-up supported proposal on the same conn gets the pending
	// rejection first (Negotiate reads responses in order).
	_, err = proto.Negotiate(context.Background(), raw, proto.Proposal{Program: "add"})
	var rej *proto.Rejected
	if !errors.As(err, &rej) {
		t.Fatalf("got %v, want the version rejection", err)
	}
	if !strings.Contains(rej.Reason, "unsupported") {
		t.Errorf("rejection reason %q does not mention the version mismatch", rej.Reason)
	}
	raw.Close()

	// The server survives and still serves healthy clients.
	cl, err := Dial(context.Background(), addr, WithClientEngine(eng))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Register("add", prog); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Evaluate(context.Background(), "add", []uint32{2}); err != nil {
		t.Fatalf("healthy client after a version-mismatch conn: %v", err)
	}
	if got := srv.Metrics().NegotiationFailures; got != 1 {
		t.Fatalf("negotiation failures = %d, want 1", got)
	}
}
