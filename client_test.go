package arm2gc

import (
	"context"
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"arm2gc/internal/proto"
)

// TestClientEvaluateCancelMidHandshake pins the negotiation window: a
// context cancelled after the proposal is written but before the server
// answers must abort Evaluate promptly — not hang until the crypto run's
// own watcher would have armed.
func TestClientEvaluateCancelMidHandshake(t *testing.T) {
	prog := compileAdd(t)
	ca, cb := net.Pipe()
	defer ca.Close()
	defer cb.Close()

	proposalRead := make(chan struct{})
	go func() {
		// The silent server: consume the proposal, then never answer.
		if _, err := proto.ReadProposal(cb); err != nil {
			t.Error(err)
		}
		close(proposalRead)
	}()

	cl := NewClient(ca, WithClientEngine(NewEngine()))
	if err := cl.Register("add", prog); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := cl.Evaluate(ctx, "add", []uint32{1})
		done <- err
	}()
	<-proposalRead
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled mid-handshake Evaluate returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Evaluate did not honor cancellation during the handshake")
	}
	// The connection state is unknown mid-handshake: the client must have
	// latched broken.
	if _, err := cl.Evaluate(context.Background(), "add", []uint32{1}); err == nil ||
		!strings.Contains(err.Error(), "broken") {
		t.Fatalf("client after a cancelled handshake: %v, want broken", err)
	}
}

// TestClientEvaluateCancelWhileQueued pins the pre-handshake window the
// seed left open: sessions serialize on the connection, and a caller
// queued behind a stuck session used to block on a bare mutex with its
// context ignored. The cancelled waiter must return promptly and leave
// the connection untouched for the session in flight.
func TestClientEvaluateCancelWhileQueued(t *testing.T) {
	prog := compileAdd(t)
	ca, cb := net.Pipe()
	defer ca.Close()
	defer cb.Close()

	// The first session wedges: its proposal is consumed, no answer comes.
	go func() {
		if _, err := proto.ReadProposal(cb); err != nil {
			t.Error(err)
		}
	}()
	cl := NewClient(ca, WithClientEngine(NewEngine()))
	if err := cl.Register("add", prog); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	firstCtx, stopFirst := context.WithCancel(context.Background())
	defer stopFirst()
	go func() {
		defer wg.Done()
		cl.Evaluate(firstCtx, "add", []uint32{1})
	}()

	// Second caller: a deadline well shorter than the first session's
	// lifetime. Before the fix this blocked until the first returned.
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := cl.Evaluate(ctx, "add", []uint32{2})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued Evaluate returned %v, want context.DeadlineExceeded", err)
	}
	if waited := time.Since(start); waited > 3*time.Second {
		t.Fatalf("queued Evaluate ignored its context for %v", waited)
	}
	stopFirst()
	wg.Wait()
}

// pipeListener feeds net.Pipe connections through the net.Listener
// interface, so server tests can exercise true rendezvous writes (a pipe
// write blocks until the peer reads — unlike TCP, whose kernel buffers
// absorb small frames).
type pipeListener struct {
	conns chan net.Conn
	done  chan struct{}
	once  sync.Once
}

func newPipeListener() *pipeListener {
	return &pipeListener{conns: make(chan net.Conn), done: make(chan struct{})}
}

func (l *pipeListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.conns:
		return c, nil
	case <-l.done:
		return nil, net.ErrClosed
	}
}

func (l *pipeListener) Close() error {
	l.once.Do(func() { close(l.done) })
	return nil
}

type pipeAddr struct{}

func (pipeAddr) Network() string { return "pipe" }
func (pipeAddr) String() string  { return "pipe" }

func (l *pipeListener) Addr() net.Addr { return pipeAddr{} }

// dial hands one end of a fresh pipe to the accept loop.
func (l *pipeListener) dial(t *testing.T) net.Conn {
	t.Helper()
	a, b := net.Pipe()
	select {
	case l.conns <- b:
	case <-time.After(5 * time.Second):
		t.Fatal("server did not accept the pipe connection")
	}
	return a
}

// TestServerShutdownUnblocksStuckGrant pins the drain-path leak the seed
// had: a handler blocked writing a grant to a peer that never reads it
// sits outside any context-guarded protocol run, so cancelling the
// session context could not unblock it and Serve's wg.Wait hung forever.
// Shutdown must now force-close surviving connections after the drain and
// return.
func TestServerShutdownUnblocksStuckGrant(t *testing.T) {
	prog := compileAdd(t)
	eng := NewEngine()
	srv := NewServer(eng, WithDrainTimeout(200*time.Millisecond))
	if err := srv.Register("add", prog, WithMaxCycles(10_000), WithGarblerInput([]uint32{1})); err != nil {
		t.Fatal(err)
	}
	ln := newPipeListener()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, ln) }()

	// The hostile peer: propose, then never read the grant. Over a pipe
	// the server's grant write blocks at the rendezvous.
	conn := ln.dial(t)
	defer conn.Close()
	if err := proto.WriteProposal(conn, proto.Proposal{Program: "add"}); err != nil {
		t.Fatal(err)
	}
	// Give the handler time to reach the blocked grant write.
	time.Sleep(100 * time.Millisecond)

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve returned %v on shutdown, want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve leaked the handler stuck writing a grant: wg.Wait never returned")
	}
}

// TestServerShutdownWithIdleAndFreshConns: shutdown with an idle
// connection (no proposal yet) and a connection mid-dial must still
// return promptly — the helper's shutdown asserts Serve comes back —
// and the completed session stays counted.
func TestServerShutdownWithIdleAndFreshConns(t *testing.T) {
	prog := compileAdd(t)
	eng := NewEngine()
	srv := NewServer(eng, WithDrainTimeout(10*time.Second))
	if err := srv.Register("add", prog, WithMaxCycles(10_000), WithGarblerInput([]uint32{7})); err != nil {
		t.Fatal(err)
	}
	addr, shutdown := startServer(t, srv)

	// An idle connection: dialed, no proposal.
	idle, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer idle.Close()

	cl, err := Dial(context.Background(), addr, WithClientEngine(eng))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Register("add", prog); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Evaluate(context.Background(), "add", []uint32{1}); err != nil {
		t.Fatal(err)
	}
	shutdown()
	m := srv.Metrics()
	if m.SessionsServed != 1 {
		t.Fatalf("served = %d, want 1", m.SessionsServed)
	}
	if m.ConnectionsActive != 0 {
		t.Fatalf("connections still active after shutdown: %d", m.ConnectionsActive)
	}
}
