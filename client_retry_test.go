package arm2gc

import (
	"context"
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"arm2gc/internal/proto"
)

// shedPeer plays the rejecting end of a Client connection over net.Pipe:
// for each proposal it reads, it answers from the scripted verdicts
// (positive duration: shed with that Retry-After; zero: plain reject),
// counting proposals as it goes.
func shedPeer(t *testing.T, conn net.Conn, verdicts []time.Duration, proposals *atomic.Int64) {
	t.Helper()
	go func() {
		for _, after := range verdicts {
			if _, err := proto.ReadProposal(conn); err != nil {
				return // client gave up early; the test asserts the count
			}
			proposals.Add(1)
			var err error
			if after > 0 {
				err = proto.WriteRejectRetry(conn, "shed: saturated", after)
			} else {
				err = proto.WriteReject(conn, "unknown program")
			}
			if err != nil {
				t.Error(err)
				return
			}
		}
	}()
}

// TestClientRetryableError: a hinted rejection surfaces as
// *RetryableError carrying the hint, errors.As still finds the wrapped
// *RejectedError, and the connection survives — a later Evaluate reaches
// the peer again.
func TestClientRetryableError(t *testing.T) {
	ca, cb := net.Pipe()
	defer ca.Close()
	defer cb.Close()
	var proposals atomic.Int64
	shedPeer(t, cb, []time.Duration{2 * time.Second, 0}, &proposals)

	c := NewClient(ca)
	if err := c.Register("add", compileAdd(t)); err != nil {
		t.Fatal(err)
	}
	_, err := c.Evaluate(context.Background(), "add", []uint32{1})
	var retry *RetryableError
	if !errors.As(err, &retry) {
		t.Fatalf("got %v, want *RetryableError", err)
	}
	if retry.After != 2*time.Second {
		t.Errorf("After = %v, want 2s", retry.After)
	}
	var rej *RejectedError
	if !errors.As(err, &rej) || rej.RetryAfter != 2*time.Second {
		t.Fatalf("wrapped rejection not reachable: %v", err)
	}

	// The shed did not break the client: the next call proposes again
	// and gets the scripted plain rejection, not a broken-connection
	// error.
	_, err = c.Evaluate(context.Background(), "add", []uint32{1})
	if !errors.As(err, &rej) {
		t.Fatalf("post-shed evaluate: got %v, want *RejectedError", err)
	}
	if errors.As(err, &retry) {
		t.Error("plain rejection surfaced as retryable")
	}
	if n := proposals.Load(); n != 2 {
		t.Errorf("peer saw %d proposals, want 2", n)
	}
}

// TestClientWithRetry: WithRetry(n) re-proposes hinted sheds with
// backoff — the peer sees n+1 proposals before the typed error comes
// back — while a plain rejection stops the loop immediately.
func TestClientWithRetry(t *testing.T) {
	ca, cb := net.Pipe()
	defer ca.Close()
	defer cb.Close()
	var proposals atomic.Int64
	// Three hinted sheds (tiny hints keep the backoff microscopic),
	// then a plain rejection for the second Evaluate.
	hint := 4 * time.Millisecond
	shedPeer(t, cb, []time.Duration{hint, hint, hint, hint, 0}, &proposals)

	c := NewClient(ca)
	if err := c.Register("add", compileAdd(t)); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err := c.Evaluate(context.Background(), "add", []uint32{1}, WithRetry(2))
	var retry *RetryableError
	if !errors.As(err, &retry) {
		t.Fatalf("got %v, want *RetryableError after exhausting retries", err)
	}
	if n := proposals.Load(); n != 3 {
		t.Fatalf("peer saw %d proposals, want 3 (1 + WithRetry(2))", n)
	}
	// Two backoffs of at least hint/2 each must have elapsed.
	if elapsed := time.Since(start); elapsed < hint {
		t.Errorf("retries elapsed %v, want at least %v of backoff", elapsed, hint)
	}

	// A hinted shed followed by a plain rejection: the retry loop runs
	// once more, then stops on the permanent verdict without consuming
	// the remaining budget.
	_, err = c.Evaluate(context.Background(), "add", []uint32{1}, WithRetry(5))
	var rej *RejectedError
	if !errors.As(err, &rej) || rej.RetryAfter != 0 {
		t.Fatalf("got %v, want plain *RejectedError", err)
	}
	if errors.As(err, &retry) {
		t.Error("permanent rejection surfaced as retryable")
	}
	if n := proposals.Load(); n != 5 {
		t.Errorf("peer saw %d proposals total, want 5", n)
	}
}

// TestClientRetryHonorsContext: a cancelled context unblocks the backoff
// sleep instead of waiting the full hint out.
func TestClientRetryHonorsContext(t *testing.T) {
	ca, cb := net.Pipe()
	defer ca.Close()
	defer cb.Close()
	var proposals atomic.Int64
	shedPeer(t, cb, []time.Duration{time.Minute}, &proposals)

	c := NewClient(ca)
	if err := c.Register("add", compileAdd(t)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c.Evaluate(ctx, "add", []uint32{1}, WithRetry(1))
		done <- err
	}()
	// Wait for the first shed round trip, then cancel mid-backoff.
	for proposals.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(5 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("got %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Evaluate did not unblock from the backoff sleep")
	}
}
