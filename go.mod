module arm2gc

go 1.24
